package hack

import (
	"context"
	"fmt"
	"io"
	"time"

	"github.com/hackkv/hack/internal/chaos"
	"github.com/hackkv/hack/internal/disagg"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
	"github.com/hackkv/hack/internal/serve"
)

// Role names a process's job in a disaggregated deployment. A local
// engine (RoleLocal, the zero value) serves prefill and decode in one
// process via Listen; the other roles split them across a real TCP wire
// via ListenDisagg.
type Role string

// The disaggregated serving roles.
const (
	// RoleLocal is the single-process runtime (Engine.Listen).
	RoleLocal Role = "local"
	// RolePrefill runs kernel prefills and ships quantized KV caches.
	RolePrefill Role = "prefill"
	// RoleDecode adopts shipped KV caches into the continuous-batching
	// decode loop.
	RoleDecode Role = "decode"
	// RoleRouter fronts the deployment: it drives prefill, places each
	// decode on the least-loaded healthy replica, and proxies tokens.
	RoleRouter Role = "router"
)

// Roles lists the valid role names.
func Roles() []string {
	return []string{string(RoleLocal), string(RolePrefill), string(RoleDecode), string(RoleRouter)}
}

// ParseRole resolves a role by name ("" means local).
func ParseRole(s string) (Role, error) {
	switch Role(s) {
	case RoleLocal, RolePrefill, RoleDecode, RoleRouter:
		return Role(s), nil
	case "":
		return RoleLocal, nil
	}
	return "", fmt.Errorf("hack: unknown role %q (valid: local, prefill, decode, router)", s)
}

// WithRole assigns the engine's disaggregated serving role, used by
// ListenDisagg. The default is RoleLocal.
func WithRole(r Role) Option {
	return func(e *Engine) error {
		if _, err := ParseRole(string(r)); err != nil {
			return err
		}
		if r == "" {
			r = RoleLocal
		}
		e.role = r
		return nil
	}
}

// WithPeers names the deployment's peer wire addresses: the prefill
// nodes and decode replicas a router fronts. Only RoleRouter uses them.
func WithPeers(prefills, decodes []string) Option {
	return func(e *Engine) error {
		e.peerPrefills = append([]string(nil), prefills...)
		e.peerDecodes = append([]string(nil), decodes...)
		return nil
	}
}

// DisaggConfig sizes the wire-facing side of a disaggregated node. The
// zero value of every field selects a default.
type DisaggConfig struct {
	// WireAddr is the TCP listen address for the KV wire protocol
	// (prefill and decode roles; default 127.0.0.1:0).
	WireAddr string
	// HTTPAddr serves the node's /healthz and /metrics; empty disables
	// it (the router polls decode replicas' endpoints for health).
	HTTPAddr string
	// NodeID names the node in handshakes (default: the wire address).
	NodeID string
	// MaxConcurrentPrefills bounds simultaneous prefill executions on a
	// prefill node (default 2).
	MaxConcurrentPrefills int
	// HealthInterval is the router's /healthz polling period (default
	// 500ms); DialTimeout bounds each dial+handshake (default 2s).
	HealthInterval time.Duration
	DialTimeout    time.Duration
	// RetryMax caps the router's decode retries after the first attempt
	// (default 2; negative means budget-only, no count cap);
	// RetryBackoff is the initial backoff, doubling per retry with
	// ±RetryJitter/2 jitter (defaults 50ms, 0.2), all under the
	// wall-clock RetryBudget (default 5s).
	RetryMax     int
	RetryBackoff time.Duration
	RetryBudget  time.Duration
	RetryJitter  float64
	// FrameTimeout bounds each framed read/write inside a KV transfer or
	// token stream (default 10s) so a half-open peer surfaces as a
	// retryable timeout; negative disables the deadline.
	FrameTimeout time.Duration
	// Each decode replica sits behind a circuit breaker that opens after
	// BreakerThreshold consecutive transport failures (default 3) and
	// half-opens after BreakerCooldown (default 500ms). An open breaker
	// removes the replica from placement even while /healthz answers.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ChaosScript names a fault-injection script (see ChaosScripts) the
	// router replays against its own links after startup — a chaos-testing
	// knob for drills against a live deployment. Kill actions are modeled
	// as partitions of the target replica's link, since a router cannot
	// kill a remote process. Empty disables injection. ChaosSeed drives
	// the injector's deterministic corruption (default 1).
	ChaosScript string
	ChaosSeed   int64
}

// ChaosScripts lists the named fault-injection scripts a router role can
// replay via DisaggConfig.ChaosScript, sorted.
func ChaosScripts() []string { return chaos.Scripts() }

// WithDisaggConfig sizes the node started by ListenDisagg.
func WithDisaggConfig(dc DisaggConfig) Option {
	return func(e *Engine) error {
		if dc.MaxConcurrentPrefills < 0 {
			return fmt.Errorf("disagg config fields must be >= 0 (%+v)", dc)
		}
		if dc.ChaosScript != "" {
			if _, err := chaos.ScriptNamed(dc.ChaosScript); err != nil {
				return err
			}
		}
		e.disaggCfg = dc
		return nil
	}
}

// Disaggregated-serving types re-exported from the internal subsystem.
type (
	// RoutedRequest is one generation job submitted through a router.
	RoutedRequest = disagg.Request
	// RoutedStream delivers a routed request's tokens in order; Err()
	// reports how it ended once the channel closes.
	RoutedStream = disagg.Stream
	// DisaggReport is the router's live deployment view: request and
	// retry counters, per-link KV bytes, transfer latency percentiles,
	// and per-replica occupancy.
	DisaggReport = disagg.Report
	// ReplicaStatus is one decode replica's row in a DisaggReport.
	ReplicaStatus = disagg.ReplicaStatus
)

// Disaggregated-serving sentinel errors.
var (
	// ErrNoPrefill means no healthy prefill node could be reached.
	ErrNoPrefill = disagg.ErrNoPrefill
	// ErrNoReplicas means no healthy, non-draining decode replica was
	// available for placement.
	ErrNoReplicas = disagg.ErrNoReplicas
	// ErrTransferFailed means a KV transfer failed on every retry.
	ErrTransferFailed = disagg.ErrTransferFailed
	// ErrHandshakeRefused means a peer rejected the wire handshake —
	// mismatched method, model spec, or model seed — so the nodes
	// belong to incompatible deployments.
	ErrHandshakeRefused = netsim.ErrHandshakeRefused
)

// DisaggServer is one running node of a disaggregated deployment,
// started by Engine.ListenDisagg. Its useful surface depends on the
// role: every role has WireAddr/HTTPAddr/Close; routers additionally
// submit requests and report deployment state; decode nodes drain.
type DisaggServer struct {
	role    Role
	spec    ModelSpec
	prefill *disagg.PrefillNode
	decode  *disagg.DecodeNode
	router  *disagg.Router
	// chaosStop cancels a ChaosScript replay in flight (router role).
	chaosStop context.CancelFunc
}

// ListenDisagg starts the engine's disaggregated role (see WithRole):
// a prefill node, a decode replica, or a router over the peers named by
// WithPeers. The deployment's method, model spec, and model seed are
// carried in the wire handshake, so mismatched nodes refuse to pair.
// Cancelling ctx closes the node in the background.
func (e *Engine) ListenDisagg(ctx context.Context) (*DisaggServer, error) {
	dc := e.disaggCfg
	if dc.WireAddr == "" {
		dc.WireAddr = "127.0.0.1:0"
	}
	sc := e.serveCfg
	if sc.PrefixCacheBytes > 0 || e.prefixBytes > 0 {
		// Prefix-shareable heads keep per-operand stream positions and
		// refuse the classic single-stream wire export the KV transfer
		// protocol ships, so the two features cannot share a backend.
		return nil, fmt.Errorf("hack: the shared-prefix cache is not supported in disaggregated roles (prefix-shareable backends do not speak the classic KV wire)")
	}
	ds := &DisaggServer{role: e.role, spec: sc.Model}
	if ds.spec.Layers == 0 && ds.spec.Hidden == 0 {
		// Match the serving runtime's zero-spec default so Model() (and
		// the HTTP layer's tokenizer shim) sees the architecture the
		// deployment actually runs.
		ds.spec = model.Toy()
	}
	var err error
	switch e.role {
	case RolePrefill:
		ds.prefill, err = disagg.NewPrefillNode(disagg.PrefillConfig{
			Addr: dc.WireAddr, HTTPAddr: dc.HTTPAddr, NodeID: dc.NodeID,
			Spec: sc.Model, ModelSeed: sc.ModelSeed,
			Backend:       serve.BackendForMethod(e.method, e.kernelPar),
			MethodName:    e.method.Name,
			MaxConcurrent: dc.MaxConcurrentPrefills,
		})
	case RoleDecode:
		ds.decode, err = disagg.NewDecodeNode(disagg.DecodeConfig{
			Addr: dc.WireAddr, HTTPAddr: dc.HTTPAddr, NodeID: dc.NodeID,
			MethodName: e.method.Name,
			Serve: serve.Config{
				Spec:              sc.Model,
				ModelSeed:         sc.ModelSeed,
				Backend:           serve.BackendForMethod(e.method, e.kernelPar),
				Scheduler:         e.scheduler,
				PrefillWorkers:    sc.PrefillWorkers,
				MaxBatch:          sc.MaxBatch,
				QueueCap:          sc.QueueCap,
				MaxNewTokens:      sc.MaxNewTokens,
				DecodeParallelism: sc.DecodeParallelism,
			},
		})
	case RoleRouter:
		var inj *chaos.Injector
		if dc.ChaosScript != "" {
			seed := dc.ChaosSeed
			if seed == 0 {
				seed = 1
			}
			inj = chaos.NewInjector(seed)
		}
		ds.router, err = disagg.NewRouter(disagg.RouterConfig{
			Prefills: e.peerPrefills, Decodes: e.peerDecodes,
			NodeID: dc.NodeID, HTTPAddr: dc.HTTPAddr,
			Spec: sc.Model, ModelSeed: sc.ModelSeed, MethodName: e.method.Name,
			DialTimeout: dc.DialTimeout, HealthInterval: dc.HealthInterval,
			FrameTimeout: dc.FrameTimeout,
			RetryMax:     dc.RetryMax, RetryBackoff: dc.RetryBackoff,
			RetryBudget: dc.RetryBudget, RetryJitter: dc.RetryJitter,
			BreakerThreshold: dc.BreakerThreshold, BreakerCooldown: dc.BreakerCooldown,
			Chaos: inj,
		})
		if err == nil && inj != nil {
			script, serr := chaos.ScriptNamed(dc.ChaosScript)
			if serr != nil {
				ds.router.Close()
				return nil, fmt.Errorf("hack: %w", serr)
			}
			pctx, cancel := context.WithCancel(context.Background())
			ds.chaosStop = cancel
			go func() {
				_ = script.Play(pctx, routerChaosApply(inj, e.peerPrefills, e.peerDecodes))
			}()
		}
	default:
		return nil, fmt.Errorf("hack: engine role %q is not disaggregated; use Listen", e.role)
	}
	if err != nil {
		return nil, fmt.Errorf("hack: %w", err)
	}
	if ctx != nil && ctx.Done() != nil {
		go func() {
			<-ctx.Done()
			_ = ds.Close()
		}()
	}
	return ds, nil
}

// Role returns the node's role.
func (s *DisaggServer) Role() Role { return s.role }

// Model returns the numeric architecture the deployment serves (the
// spec carried in every wire handshake).
func (s *DisaggServer) Model() ModelSpec { return s.spec }

// WireAddr returns the node's KV wire address ("" for routers, which
// initiate connections rather than accept them).
func (s *DisaggServer) WireAddr() string {
	switch s.role {
	case RolePrefill:
		return s.prefill.Addr()
	case RoleDecode:
		return s.decode.Addr()
	}
	return ""
}

// HTTPAddr returns the node's health/metrics address ("" if disabled).
func (s *DisaggServer) HTTPAddr() string {
	switch s.role {
	case RolePrefill:
		return s.prefill.HTTPAddr()
	case RoleDecode:
		return s.decode.HTTPAddr()
	case RoleRouter:
		return s.router.HTTPAddr()
	}
	return ""
}

// Submit routes one generation request through the disaggregated
// pipeline (router role only): prefill on a prefill node, KV transfer,
// load-aware placement on a decode replica, token proxying with
// failover. The stream is live immediately.
func (s *DisaggServer) Submit(ctx context.Context, req RoutedRequest) (*RoutedStream, error) {
	if s.role != RoleRouter {
		return nil, fmt.Errorf("hack: role %q cannot submit requests", s.role)
	}
	return s.router.Submit(ctx, req)
}

// Report returns the router's deployment view (router role only; other
// roles return the zero report).
func (s *DisaggServer) Report() DisaggReport {
	if s.role != RoleRouter {
		return DisaggReport{}
	}
	return s.router.Report()
}

// WritePrometheus renders the node's metrics in Prometheus text format
// (router role only; prefill and decode nodes expose theirs on their
// own HTTP endpoints).
func (s *DisaggServer) WritePrometheus(w io.Writer) error {
	if s.role != RoleRouter {
		return fmt.Errorf("hack: role %q has no router metrics", s.role)
	}
	return s.router.WritePrometheus(w)
}

// AddReplica registers a decode replica with the router at runtime.
func (s *DisaggServer) AddReplica(addr string) error {
	if s.role != RoleRouter {
		return fmt.Errorf("hack: role %q has no replica set", s.role)
	}
	return s.router.AddReplica(addr)
}

// RemoveReplica deregisters a decode replica from the router.
func (s *DisaggServer) RemoveReplica(addr string) error {
	if s.role != RoleRouter {
		return fmt.Errorf("hack: role %q has no replica set", s.role)
	}
	s.router.RemoveReplica(addr)
	return nil
}

// Drain begins a graceful drain (decode role only): /healthz flips to
// 503, routers stop placing work here, and in-flight requests finish.
func (s *DisaggServer) Drain() error {
	if s.role != RoleDecode {
		return fmt.Errorf("hack: role %q does not drain", s.role)
	}
	s.decode.Drain()
	return nil
}

// routerChaosApply maps script actions onto a router-attached injector.
// The router owns only its side of each link, so kill actions become
// partitions of the target replica's link; everything else applies the
// event's plan to the addressed links (-1 targets all of them).
func routerChaosApply(inj *chaos.Injector, prefills, decodes []string) func(chaos.Action) {
	links := func(target int) []string {
		if target < 0 {
			return append(append([]string{}, prefills...), decodes...)
		}
		if target < len(decodes) {
			return []string{decodes[target]}
		}
		return nil
	}
	return func(a chaos.Action) {
		switch a.Kind {
		case chaos.ActKillDecode, chaos.ActPartition:
			for _, addr := range links(a.Target) {
				inj.SetPlan(addr, chaos.Plan{Partition: true})
			}
		case chaos.ActDegradeLink, chaos.ActCorruptFrame:
			if a.Target < 0 {
				inj.SetDefaultPlan(a.Plan)
				return
			}
			for _, addr := range links(a.Target) {
				inj.SetPlan(addr, a.Plan)
			}
		case chaos.ActHeal:
			inj.Heal()
		}
	}
}

// Close stops the node. For decode replicas it drains the wrapped
// runtime; for routers it waits for in-flight submissions.
func (s *DisaggServer) Close() error {
	if s.chaosStop != nil {
		s.chaosStop()
	}
	switch s.role {
	case RolePrefill:
		return s.prefill.Close()
	case RoleDecode:
		return s.decode.Close()
	case RoleRouter:
		return s.router.Close()
	}
	return nil
}
