package hack

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"

	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/sweeprun"
	"github.com/hackkv/hack/internal/workload"
)

// The sweep subsystem: the paper's headline results (Figs. 9–14,
// Table 5) are grids — method × dataset × GPU × load — and RunSweep
// executes such a grid as one batch job on a bounded worker pool.
// Identical specs yield byte-identical reports: every cell's trace seed
// is a pure function of the spec, and results are ordered by cell index
// regardless of completion order.

// ReplicaCount is one prefill/decode pool sizing of a sweep's replica
// axis.
type ReplicaCount struct {
	Prefill int `json:"prefill"`
	Decode  int `json:"decode"`
}

// SweepSpec declares a grid of Engine configurations. Every axis is a
// list; the grid is the cartesian product of all seven, expanded in
// row-major order with Model outermost and Method × Dataset innermost
// (so each method's row over the datasets is contiguous, the paper's
// table layout). Empty axes default to the paper's evaluation setting:
// the four evaluated methods, all four datasets, A10G prefill, Llama-70B,
// 5×4 replicas, shortest-queue scheduling, 0.5 RPS.
type SweepSpec struct {
	// Methods, Datasets, GPUs and Models name registry entries; unknown
	// names fail RunSweep with the valid spellings. Names are
	// canonicalized, so specs differing only in case expand identically.
	Methods  []string `json:"methods"`
	Datasets []string `json:"datasets"`
	GPUs     []string `json:"gpus"`
	Models   []string `json:"models"`
	// Replicas lists prefill/decode pool sizings.
	Replicas []ReplicaCount `json:"replicas"`
	// Schedulers lists prefill placement policies.
	Schedulers []Scheduler `json:"schedulers"`
	// RPS lists arrival rates (the load axis).
	RPS []float64 `json:"rps"`

	// Requests is the trace length per cell (default 100).
	Requests int `json:"requests"`
	// Seed fixes all randomness. Cells covering the same workload point
	// (model, dataset, rate) derive the same trace seed from it, so
	// methods are compared on identical traces.
	Seed int64 `json:"seed"`
	// MaxBatch caps a decode replica's concurrent batch (default 256).
	MaxBatch int `json:"max_batch"`
	// MemCapFrac is the usable decode-memory fraction (default 0.95).
	MemCapFrac float64 `json:"mem_cap_frac"`
	// Pipeline overlaps KV transfer with prefill computation (§2.1).
	Pipeline bool `json:"pipeline"`
	// SLOTTFT and SLOTBT are the serving targets in seconds every cell
	// is judged against (time to first token; mean time between
	// subsequent tokens). Zero targets are untracked — attainment is
	// then 1. The slo scheduler also admits against them.
	SLOTTFT float64 `json:"slo_ttft,omitempty"`
	SLOTBT  float64 `json:"slo_tbt,omitempty"`
	// PrefillChunk bounds prefill passes to this many tokens (0 = whole
	// prompts).
	PrefillChunk int `json:"prefill_chunk,omitempty"`
	// Preemption enables decode-side eviction with KV re-transfer for
	// memory-starved requests.
	Preemption bool `json:"preemption,omitempty"`
	// Baseline names the method speedups are measured against; default
	// "Baseline" when that method is in the grid, otherwise no speedup
	// column is computed.
	Baseline string `json:"baseline,omitempty"`
}

// SweepCell identifies one expanded grid point.
type SweepCell struct {
	// Index is the cell's position in the row-major expansion; results
	// are ordered by it.
	Index   int    `json:"index"`
	Model   string `json:"model"`
	GPU     string `json:"gpu"`
	Prefill int    `json:"prefill_replicas"`
	Decode  int    `json:"decode_replicas"`
	// Scheduler is the policy's display name (shortest-queue, ...).
	Scheduler string  `json:"scheduler"`
	RPS       float64 `json:"rps"`
	Method    string  `json:"method"`
	Dataset   string  `json:"dataset"`
	// Seed is the cell's derived trace seed.
	Seed int64 `json:"seed"`
	// sched is the policy value behind the display name, carried so
	// execution never re-parses the string.
	sched Scheduler
}

// JCTBreakdown is the per-cell mean of the paper's JCT decomposition, in
// seconds.
type JCTBreakdown struct {
	Queue    float64 `json:"queue"`
	Prefill  float64 `json:"prefill"`
	Quant    float64 `json:"quant"`
	Comm     float64 `json:"comm"`
	Overhead float64 `json:"overhead"`
	Decode   float64 `json:"decode"`
	KVMem    float64 `json:"kv_mem"`
}

// CellResult is one simulated grid point. A cell that fails (say, a
// model/GPU pair outside the Table 3 parallelism catalog, or a panic in
// the simulator) records its error and zero metrics; the rest of the
// sweep proceeds.
type CellResult struct {
	SweepCell
	Err       string       `json:"error,omitempty"`
	AvgJCT    float64      `json:"avg_jct_s"`
	P50JCT    float64      `json:"p50_jct_s"`
	P99JCT    float64      `json:"p99_jct_s"`
	Breakdown JCTBreakdown `json:"avg_times_s"`
	// The SLO columns: nearest-rank TTFT/TBT percentiles and the
	// fraction of requests attaining the spec's targets (1 when no
	// target is set).
	P50TTFT     float64 `json:"p50_ttft_s"`
	P99TTFT     float64 `json:"p99_ttft_s"`
	P50TBT      float64 `json:"p50_tbt_s"`
	P99TBT      float64 `json:"p99_tbt_s"`
	Attainment  float64 `json:"slo_attainment"`
	PeakMemFrac float64 `json:"peak_mem_frac"`
	Swapped     int     `json:"swapped"`
	Preempted   int     `json:"preempted"`
	// Speedup is baseline-JCT / this-JCT within the cell's workload
	// point (1 for the baseline itself); 0 when no baseline applies.
	Speedup float64 `json:"speedup_vs_baseline,omitempty"`
}

// SweepResult aggregates a sweep: the normalized spec it ran and one
// CellResult per grid point, ordered by cell index.
type SweepResult struct {
	Spec  SweepSpec    `json:"spec"`
	Cells []CellResult `json:"cells"`
}

// sweepCfg carries the run-time knobs that are not part of the
// (serialized, determinism-bearing) spec.
type sweepCfg struct {
	workers  int
	progress func(done, total int, r CellResult)
}

// SweepOption configures how RunSweep executes, without affecting what
// it computes.
type SweepOption func(*sweepCfg)

// SweepWorkers bounds the worker pool; n <= 0 selects one worker per
// available CPU. The cell results are identical for every pool width.
func SweepWorkers(n int) SweepOption {
	return func(c *sweepCfg) { c.workers = n }
}

// SweepProgress streams per-cell completion: fn is invoked serially, in
// completion order, with the running completed count.
func SweepProgress(fn func(done, total int, r CellResult)) SweepOption {
	return func(c *sweepCfg) { c.progress = fn }
}

// normalize fills defaults, canonicalizes every axis name through its
// registry, and validates the numeric fields.
func (s SweepSpec) normalize() (SweepSpec, error) {
	out := s
	if len(out.Methods) == 0 {
		for _, m := range cluster.EvaluatedMethods() {
			out.Methods = append(out.Methods, m.Name)
		}
	} else {
		out.Methods = append([]string(nil), out.Methods...)
		for i, name := range out.Methods {
			m, err := cluster.MethodRegistry.Lookup(name)
			if err != nil {
				return out, err
			}
			out.Methods[i] = m.Name
		}
	}
	if len(out.Datasets) == 0 {
		for _, d := range workload.Datasets() {
			out.Datasets = append(out.Datasets, d.Name)
		}
	} else {
		out.Datasets = append([]string(nil), out.Datasets...)
		for i, name := range out.Datasets {
			d, err := workload.Registry.Lookup(name)
			if err != nil {
				return out, err
			}
			out.Datasets[i] = d.Name
		}
	}
	if len(out.GPUs) == 0 {
		out.GPUs = []string{"A10G"}
	}
	out.GPUs = append([]string(nil), out.GPUs...)
	for i, name := range out.GPUs {
		in, err := cluster.GPURegistry.Lookup(name)
		if err != nil {
			return out, err
		}
		out.GPUs[i] = in.GPUName
	}
	if len(out.Models) == 0 {
		out.Models = []string{"L"}
	}
	out.Models = append([]string(nil), out.Models...)
	for i, name := range out.Models {
		spec, err := model.Registry.Lookup(name)
		if err != nil {
			return out, err
		}
		out.Models[i] = spec.ShortName
	}
	if len(out.Replicas) == 0 {
		out.Replicas = []ReplicaCount{{Prefill: 5, Decode: 4}}
	}
	for _, rc := range out.Replicas {
		if rc.Prefill <= 0 || rc.Decode <= 0 {
			return out, fmt.Errorf("sweep: replicas %d/%d must be positive", rc.Prefill, rc.Decode)
		}
	}
	if len(out.Schedulers) == 0 {
		out.Schedulers = []Scheduler{ShortestQueue}
	}
	for _, sched := range out.Schedulers {
		switch sched {
		case ShortestQueue, RoundRobin, FewestRequests, LoadAware, SLOAware:
		default:
			return out, fmt.Errorf("sweep: unknown scheduler %d (valid: %v)",
				sched, Schedulers())
		}
	}
	if len(out.RPS) == 0 {
		out.RPS = []float64{0.5}
	}
	for _, r := range out.RPS {
		if r <= 0 {
			return out, fmt.Errorf("sweep: rps %v must be positive", r)
		}
	}
	if out.Requests == 0 {
		out.Requests = 100
	}
	if out.Requests < 0 {
		return out, fmt.Errorf("sweep: requests %d must be positive", out.Requests)
	}
	if out.MaxBatch == 0 {
		out.MaxBatch = 256
	}
	if out.MaxBatch < 0 {
		return out, fmt.Errorf("sweep: max batch %d must be positive", out.MaxBatch)
	}
	if out.MemCapFrac == 0 {
		out.MemCapFrac = 0.95
	}
	if out.MemCapFrac < 0 || out.MemCapFrac > 1 {
		return out, fmt.Errorf("sweep: mem cap fraction %v outside (0, 1]", out.MemCapFrac)
	}
	if out.SLOTTFT < 0 || out.SLOTBT < 0 {
		return out, fmt.Errorf("sweep: SLO targets %v/%v must be >= 0", out.SLOTTFT, out.SLOTBT)
	}
	if out.PrefillChunk < 0 {
		return out, fmt.Errorf("sweep: prefill chunk %d must be >= 0", out.PrefillChunk)
	}
	if out.Baseline != "" {
		m, err := cluster.MethodRegistry.Lookup(out.Baseline)
		if err != nil {
			return out, err
		}
		out.Baseline = m.Name
		found := false
		for _, name := range out.Methods {
			found = found || name == out.Baseline
		}
		if !found {
			return out, fmt.Errorf("sweep: baseline %q not among the swept methods %v", out.Baseline, out.Methods)
		}
	} else {
		for _, name := range out.Methods {
			if name == "Baseline" {
				out.Baseline = name
			}
		}
	}
	return out, nil
}

// Cells expands the normalized spec into its grid points in index order.
// The trace seed of a cell depends only on the spec seed and the cell's
// workload point (model, dataset, rate), so cells differing only in
// method, GPU, replicas or scheduler replay the same trace.
func (s SweepSpec) Cells() ([]SweepCell, error) {
	n, err := s.normalize()
	if err != nil {
		return nil, err
	}
	return n.cells(), nil
}

// cells expands an already-normalized spec.
func (n SweepSpec) cells() []SweepCell {
	cells := make([]SweepCell, 0, len(n.Models)*len(n.GPUs)*len(n.Replicas)*
		len(n.Schedulers)*len(n.RPS)*len(n.Methods)*len(n.Datasets))
	for mi, mod := range n.Models {
		for _, gpu := range n.GPUs {
			for _, rc := range n.Replicas {
				for _, sched := range n.Schedulers {
					for ri, rps := range n.RPS {
						for _, method := range n.Methods {
							for di, ds := range n.Datasets {
								cells = append(cells, SweepCell{
									Index: len(cells), Model: mod, GPU: gpu,
									Prefill: rc.Prefill, Decode: rc.Decode,
									Scheduler: sched.String(), RPS: rps,
									Method: method, Dataset: ds,
									Seed:  n.Seed + int64(mi)*1_000_003 + int64(di)*10_007 + int64(ri)*101,
									sched: sched,
								})
							}
						}
					}
				}
			}
		}
	}
	return cells
}

// NumCells returns the grid size of the spec after defaulting, or 0 for
// a spec Cells would reject.
func (s SweepSpec) NumCells() int {
	n, err := s.normalize()
	if err != nil {
		return 0
	}
	return len(n.Models) * len(n.GPUs) * len(n.Replicas) * len(n.Schedulers) *
		len(n.RPS) * len(n.Methods) * len(n.Datasets)
}

// RunSweep expands the spec and simulates every cell on a bounded worker
// pool. The run honors ctx cancellation (the pool drains and ctx.Err()
// is returned), isolates per-cell failures and panics into CellResult.Err,
// and returns results ordered by cell index regardless of completion
// order, so identical specs yield byte-identical reports at any pool
// width.
func RunSweep(ctx context.Context, spec SweepSpec, opts ...SweepOption) (*SweepResult, error) {
	var cfg sweepCfg
	for _, opt := range opts {
		opt(&cfg)
	}
	norm, err := spec.normalize()
	if err != nil {
		return nil, fmt.Errorf("hack: %w", err)
	}
	cells := norm.cells()
	if len(cells) == 0 {
		return nil, fmt.Errorf("hack: sweep expands to no cells")
	}

	results := make([]CellResult, len(cells))
	var (
		mu   sync.Mutex
		done int
	)
	err = sweeprun.Map(ctx, len(cells), cfg.workers, func(ctx context.Context, i int) error {
		r := runSweepCell(ctx, norm, cells[i])
		// Cooperative cancellation surfaces as the cell error; abort the
		// sweep rather than recording a half-run grid.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		results[i] = r
		if cfg.progress != nil {
			mu.Lock()
			done++
			cfg.progress(done, len(cells), r)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		var pe *sweeprun.PanicError
		if errors.As(err, &pe) {
			// A panic that escaped the per-cell recover (i.e. out of the
			// pool plumbing itself) is a bug; report it as such.
			return nil, fmt.Errorf("hack: %w", pe)
		}
		return nil, err
	}

	attachSpeedups(norm, results)
	return &SweepResult{Spec: norm, Cells: results}, nil
}

// runSweepCell simulates one grid point, converting failures — including
// panics from the engine or simulator — into the cell's Err field.
func runSweepCell(ctx context.Context, spec SweepSpec, c SweepCell) (out CellResult) {
	out.SweepCell = c
	defer func() {
		if r := recover(); r != nil {
			out = CellResult{SweepCell: c, Err: fmt.Sprintf("panic: %v", r)}
		}
	}()
	eng, err := New(
		WithModel(c.Model),
		WithGPU(c.GPU),
		WithMethod(c.Method),
		WithReplicas(c.Prefill, c.Decode),
		WithScheduler(c.sched),
		WithMaxBatch(spec.MaxBatch),
		WithMemCapFrac(spec.MemCapFrac),
		WithPipeline(spec.Pipeline),
		WithSLO(spec.SLOTTFT, spec.SLOTBT),
		WithPrefillChunk(spec.PrefillChunk),
		WithPreemption(spec.Preemption),
	)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	res, err := eng.Run(ctx, Workload{
		Dataset: c.Dataset, RPS: c.RPS, Requests: spec.Requests, Seed: c.Seed,
	})
	if err != nil {
		out.Err = err.Error()
		return out
	}
	at := res.AvgTimes()
	out.AvgJCT = res.AvgJCT()
	out.P50JCT = res.P50JCT()
	out.P99JCT = res.P99JCT()
	out.Breakdown = JCTBreakdown{Queue: at.Queue, Prefill: at.Prefill, Quant: at.Quant,
		Comm: at.Comm, Overhead: at.Overhead, Decode: at.Decode, KVMem: at.KVMem}
	sum := res.Summarize(SLO{TTFT: spec.SLOTTFT, TBT: spec.SLOTBT})
	out.P50TTFT = sum.TTFT.P50
	out.P99TTFT = sum.TTFT.P99
	out.P50TBT = sum.TBT.P50
	out.P99TBT = sum.TBT.P99
	out.Attainment = sum.Attainment
	out.PeakMemFrac = res.PeakMemFrac
	out.Swapped = res.SwappedCount
	out.Preempted = res.PreemptedCount
	return out
}

// attachSpeedups fills Speedup for every cell whose workload point also
// ran the baseline method successfully.
func attachSpeedups(spec SweepSpec, cells []CellResult) {
	if spec.Baseline == "" {
		return
	}
	nm, nd := len(spec.Methods), len(spec.Datasets)
	// Cells sharing index/(nm*nd) and index%nd differ only in method.
	baseJCT := map[int]float64{}
	for _, c := range cells {
		if c.Method == spec.Baseline && c.Err == "" && c.AvgJCT > 0 {
			baseJCT[c.Index/(nm*nd)*nd+c.Index%nd] = c.AvgJCT
		}
	}
	for i := range cells {
		c := &cells[i]
		if c.Err != "" || c.AvgJCT <= 0 {
			continue
		}
		if base, ok := baseJCT[c.Index/(nm*nd)*nd+c.Index%nd]; ok {
			c.Speedup = base / c.AvgJCT
		}
	}
}

// WriteJSON emits the sweep as indented JSON. The bytes are a pure
// function of the spec: two runs of the same spec — at any worker count —
// produce identical output, which the golden tests pin.
func (r *SweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV emits one RFC-4180 row per cell with a header row, in cell
// order.
func (r *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"index", "model", "gpu", "prefill_replicas", "decode_replicas", "scheduler",
		"rps", "method", "dataset", "seed", "avg_jct_s", "p50_jct_s", "p99_jct_s",
		"p50_ttft_s", "p99_ttft_s", "p50_tbt_s", "p99_tbt_s", "slo_attainment",
		"queue_s", "prefill_s", "quant_s", "comm_s", "overhead_s", "decode_s",
		"kv_mem_s", "peak_mem_frac", "swapped", "preempted", "speedup_vs_baseline", "error",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range r.Cells {
		if err := cw.Write([]string{
			strconv.Itoa(c.Index), c.Model, c.GPU,
			strconv.Itoa(c.Prefill), strconv.Itoa(c.Decode), c.Scheduler,
			f(c.RPS), c.Method, c.Dataset, strconv.FormatInt(c.Seed, 10),
			f(c.AvgJCT), f(c.P50JCT), f(c.P99JCT),
			f(c.P50TTFT), f(c.P99TTFT), f(c.P50TBT), f(c.P99TBT), f(c.Attainment),
			f(c.Breakdown.Queue), f(c.Breakdown.Prefill), f(c.Breakdown.Quant),
			f(c.Breakdown.Comm), f(c.Breakdown.Overhead), f(c.Breakdown.Decode),
			f(c.Breakdown.KVMem), f(c.PeakMemFrac), strconv.Itoa(c.Swapped),
			strconv.Itoa(c.Preempted), f(c.Speedup), c.Err,
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SweepMetric selects which per-cell number the markdown pivot reports.
type SweepMetric string

// The pivotable metrics.
const (
	// MetricAvgJCT reports mean job completion time (Figs. 9, 11, 12).
	MetricAvgJCT SweepMetric = "avgjct"
	// MetricP99JCT reports tail job completion time.
	MetricP99JCT SweepMetric = "p99jct"
	// MetricPeakMem reports peak decode memory utilization (Table 5).
	MetricPeakMem SweepMetric = "peakmem"
	// MetricSpeedup reports speedup over the baseline method.
	MetricSpeedup SweepMetric = "speedup"
	// MetricP99TTFT reports tail time-to-first-token.
	MetricP99TTFT SweepMetric = "p99ttft"
	// MetricAttainment reports the fraction of requests meeting the
	// spec's SLO targets.
	MetricAttainment SweepMetric = "attainment"
)

// SweepMetrics lists the valid metric spellings.
func SweepMetrics() []SweepMetric {
	return []SweepMetric{MetricAvgJCT, MetricP99JCT, MetricPeakMem, MetricSpeedup,
		MetricP99TTFT, MetricAttainment}
}

func (m SweepMetric) cell(c CellResult) string {
	if c.Err != "" {
		return "error"
	}
	switch m {
	case MetricP99JCT:
		return fmt.Sprintf("%.2fs", c.P99JCT)
	case MetricPeakMem:
		return fmt.Sprintf("%.1f%%", 100*c.PeakMemFrac)
	case MetricSpeedup:
		if c.Speedup == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", c.Speedup)
	case MetricP99TTFT:
		return fmt.Sprintf("%.2fs", c.P99TTFT)
	case MetricAttainment:
		return fmt.Sprintf("%.1f%%", 100*c.Attainment)
	default:
		return fmt.Sprintf("%.2fs", c.AvgJCT)
	}
}

func (m SweepMetric) describe() string {
	switch m {
	case MetricP99JCT:
		return "p99 JCT"
	case MetricPeakMem:
		return "peak decode memory"
	case MetricSpeedup:
		return "speedup vs baseline"
	case MetricP99TTFT:
		return "p99 TTFT"
	case MetricAttainment:
		return "SLO attainment"
	default:
		return "average JCT"
	}
}

// Tables pivots the sweep into the paper's Table 5 layout — one table
// per deployment point (model, GPU, replicas, scheduler, rate) with
// method rows and dataset columns — reporting the chosen metric.
func (r *SweepResult) Tables(metric SweepMetric) []*ResultTable {
	spec := r.Spec
	nm, nd := len(spec.Methods), len(spec.Datasets)
	if nm == 0 || nd == 0 || len(r.Cells) == 0 {
		return nil
	}
	var tables []*ResultTable
	for block := 0; block*nm*nd < len(r.Cells); block++ {
		first := r.Cells[block*nm*nd]
		t := &ResultTable{
			ID: "Sweep",
			Title: fmt.Sprintf("%s by method and dataset (%s, %s, %dx%d replicas, %s, %g rps)",
				metric.describe(), first.Model, first.GPU, first.Prefill, first.Decode,
				first.Scheduler, first.RPS),
			Header: append([]string{"Method"}, spec.Datasets...),
		}
		for mi := 0; mi < nm; mi++ {
			row := []string{spec.Methods[mi]}
			for di := 0; di < nd; di++ {
				// A hand-built or filtered result may end mid-block;
				// render the absent cells rather than panicking.
				if idx := block*nm*nd + mi*nd + di; idx < len(r.Cells) {
					row = append(row, metric.cell(r.Cells[idx]))
				} else {
					row = append(row, "-")
				}
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables
}

// WriteMarkdown renders the Tables pivot as GitHub-flavored markdown.
func (r *SweepResult) WriteMarkdown(w io.Writer, metric SweepMetric) error {
	for _, t := range r.Tables(metric) {
		if err := t.WriteMarkdown(w); err != nil {
			return err
		}
	}
	return nil
}
