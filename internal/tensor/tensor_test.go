package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("New(2,3) = %+v", m)
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	if got := m.Row(1); got[2] != 7 {
		t.Errorf("Row(1) = %v", got)
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 2, []float32{1, 2, 3, 4})
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float32{1})
}

func TestCloneIndependence(t *testing.T) {
	m := FromSlice(1, 2, []float32{1, 2})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestSliceRowsAliases(t *testing.T) {
	m := FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	v := m.SliceRows(1, 3)
	if v.Rows != 2 || v.At(0, 0) != 3 {
		t.Fatalf("SliceRows view wrong: %+v", v)
	}
	v.Set(0, 0, 99)
	if m.At(1, 0) != 99 {
		t.Error("SliceRows should alias the parent storage")
	}
}

func TestSliceColsCopies(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	c := m.SliceCols(1, 3)
	if c.Rows != 2 || c.Cols != 2 || c.At(0, 0) != 2 || c.At(1, 1) != 6 {
		t.Fatalf("SliceCols = %+v", c)
	}
	c.Set(0, 0, 99)
	if m.At(0, 1) != 2 {
		t.Error("SliceCols must copy")
	}
}

func TestAppendRows(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(2, 2, []float32{3, 4, 5, 6})
	out := AppendRows(a, b)
	if out.Rows != 3 || out.At(2, 1) != 6 {
		t.Fatalf("AppendRows = %+v", out)
	}
	// Appending to nil creates a copy of b.
	out2 := AppendRows(nil, b)
	out2.Set(0, 0, 42)
	if b.At(0, 0) == 42 {
		t.Error("AppendRows(nil, b) must copy b")
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulTransBMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 4, 6, 1)
	b := RandNormal(rng, 5, 6, 1)
	got := MatMulTransB(a, b)
	want := MatMul(a, b.Transpose())
	if d := MaxAbsDiff(got, want); d > 1e-5 {
		t.Errorf("MatMulTransB differs from MatMul by %v", d)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MatMul with mismatched shapes did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

// Property: matmul distributes over blockwise splitting of the inner
// dimension — the identity the Fig. 6(b) block decomposition relies on.
func TestMatMulBlockDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, z, n := 3+rng.Intn(4), 4+2*rng.Intn(4), 3+rng.Intn(4)
		a := RandNormal(rng, m, z, 1)
		b := RandNormal(rng, z, n, 1)
		full := MatMul(a, b)
		half := z / 2
		a1, a2 := a.SliceCols(0, half), a.SliceCols(half, z)
		b1, b2 := b.SliceRows(0, half), b.SliceRows(half, z)
		sum := MatMul(a1, b1).Add(MatMul(a2, b2))
		return MaxAbsDiff(full, sum) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := RandNormal(rng, 5, 9, 3)
	Softmax(m)
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of [0,1]", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	m := FromSlice(1, 3, []float32{1e4, 1e4 + 1, 1e4 - 1})
	Softmax(m)
	for _, v := range m.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("softmax overflowed: %v", m.Data)
		}
	}
	if !(m.At(0, 1) > m.At(0, 0) && m.At(0, 0) > m.At(0, 2)) {
		t.Errorf("softmax ordering wrong: %v", m.Data)
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	f := func(seed int64, shift float32) bool {
		if math.IsNaN(float64(shift)) || math.Abs(float64(shift)) > 100 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		a := RandNormal(rng, 2, 6, 1)
		b := a.Clone()
		for i := range b.Data {
			b.Data[i] += shift
		}
		Softmax(a)
		Softmax(b)
		return MaxAbsDiff(a, b) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCausalMask(t *testing.T) {
	m := New(3, 5)
	CausalMask(m, 2)
	// Row 0 attends to 0..2; row 1 to 0..3; row 2 to all.
	if !math.IsInf(float64(m.At(0, 3)), -1) || !math.IsInf(float64(m.At(1, 4)), -1) {
		t.Error("mask did not set -inf above the offset diagonal")
	}
	if math.IsInf(float64(m.At(0, 2)), -1) || math.IsInf(float64(m.At(2, 4)), -1) {
		t.Error("mask clobbered allowed positions")
	}
}

func TestRandNormalDeterministic(t *testing.T) {
	a := RandNormal(rand.New(rand.NewSource(7)), 3, 3, 1)
	b := RandNormal(rand.New(rand.NewSource(7)), 3, 3, 1)
	if MaxAbsDiff(a, b) != 0 {
		t.Error("seeded RandNormal is not deterministic")
	}
}

func TestRandUniformRange(t *testing.T) {
	m := RandUniform(rand.New(rand.NewSource(3)), 10, 10, -2, 5)
	for _, v := range m.Data {
		if v < -2 || v >= 5 {
			t.Fatalf("uniform value %v out of [-2,5)", v)
		}
	}
}

func TestErrorNorms(t *testing.T) {
	a := FromSlice(1, 2, []float32{1, 2})
	b := FromSlice(1, 2, []float32{1, 4})
	if d := MaxAbsDiff(a, b); d != 2 {
		t.Errorf("MaxAbsDiff = %v, want 2", d)
	}
	want := 2 / math.Sqrt(17)
	if d := RelFrobenius(a, b); math.Abs(d-want) > 1e-9 {
		t.Errorf("RelFrobenius = %v, want %v", d, want)
	}
	zero := New(1, 2)
	if d := RelFrobenius(zero, zero); d != 0 {
		t.Errorf("RelFrobenius(0,0) = %v, want 0", d)
	}
}

func TestMeanAbs(t *testing.T) {
	m := FromSlice(1, 4, []float32{-1, 2, -3, 4})
	if got := MeanAbs(m); got != 2.5 {
		t.Errorf("MeanAbs = %v, want 2.5", got)
	}
	if got := MeanAbs(New(0, 0)); got != 0 {
		t.Errorf("MeanAbs(empty) = %v, want 0", got)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 128, 128, 1)
	y := RandNormal(rng, 128, 128, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkSoftmax(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := RandNormal(rng, 64, 1024, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(x)
	}
}
