package tensor

import (
	"math/rand"
	"testing"
)

// Reset must reuse capacity, zero reused storage, and grow geometrically.
func TestReset(t *testing.T) {
	m := New(4, 8)
	for i := range m.Data {
		m.Data[i] = 7
	}
	base := &m.Data[0]
	m.Reset(2, 8)
	if m.Rows != 2 || m.Cols != 8 || &m.Data[0] != base {
		t.Error("shrinking Reset reallocated or misshaped")
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Reset left stale values")
		}
	}
	m.Reset(100, 8)
	if m.Rows != 100 || len(m.Data) != 800 {
		t.Error("growing Reset misshaped")
	}
	// One-row-at-a-time growth must not reallocate every step.
	allocs := testing.AllocsPerRun(1, func() {
		s := &Matrix{}
		for r := 1; r <= 256; r++ {
			s.Reset(1, r)
		}
	})
	if allocs > 12 { // geometric: ~log2(256)+1 allocations
		t.Errorf("incremental Reset allocated %.0f times for 256 steps", allocs)
	}
}

// The Into kernels must match their allocating counterparts and fully
// overwrite reused destinations.
func TestMatMulIntoVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dst := New(9, 9) // stale contents, wrong shape
	for i := range dst.Data {
		dst.Data[i] = 5
	}
	a := RandNormal(rng, 5, 7, 1)
	b := RandNormal(rng, 7, 6, 1)
	if d := MaxAbsDiff(MatMulInto(dst, a, b), MatMul(a, b)); d != 0 {
		t.Errorf("MatMulInto differs by %v", d)
	}
	bT := RandNormal(rng, 6, 7, 1)
	if d := MaxAbsDiff(MatMulTransBInto(dst, a, bT), MatMulTransB(a, bT)); d != 0 {
		t.Errorf("MatMulTransBInto differs by %v", d)
	}
	m := RandNormal(rng, 4, 10, 1)
	if d := MaxAbsDiff(m.SliceColsInto(dst, 2, 9), m.SliceCols(2, 9)); d != 0 {
		t.Errorf("SliceColsInto differs by %v", d)
	}
	if d := MaxAbsDiff(dst.CopyInto(m), m); d != 0 {
		t.Errorf("CopyInto differs by %v", d)
	}
}

// AppendRows on an emptied matrix must reuse its backing array.
func TestAppendRowsReusesEmptiedStorage(t *testing.T) {
	m := New(0, 4)
	m.Data = make([]float32, 0, 64)
	base := cap(m.Data)
	row := FromSlice(1, 4, []float32{1, 2, 3, 4})
	m = AppendRows(m, row)
	if cap(m.Data) != base {
		t.Error("AppendRows on empty matrix dropped its capacity")
	}
	if m.Rows != 1 || m.At(0, 2) != 3 {
		t.Error("AppendRows content wrong")
	}
	// Appended data must be copied, not aliased.
	row.Data[0] = 42
	if m.At(0, 0) != 1 {
		t.Error("AppendRows aliased the source row")
	}
}
