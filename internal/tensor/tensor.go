// Package tensor provides the dense row-major matrix type used throughout
// the HACK reproduction, together with the reference floating-point
// kernels (matmul, softmax, transpose) that the quantized paths are
// validated against.
//
// All higher-precision computation in this repository uses float32 as the
// stand-in for the paper's FP16/FP32 mix; FP16 storage effects are applied
// explicitly via the fp16 package where the paper stores or transmits
// half-precision data.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix of float32 values.
type Matrix struct {
	Rows, Cols int
	// Data holds Rows*Cols values; element (i, j) is Data[i*Cols+j].
	Data []float32
}

// New allocates a zero matrix with the given shape. It panics if either
// dimension is negative.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols matrix. It panics if
// len(data) != rows*cols.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Reset reshapes m to rows×cols and zeroes every element, reusing the
// backing array when it has capacity. It is the destination-reuse
// primitive behind the *Into kernels: a matrix Reset in a loop allocates
// only when it grows past its high-water mark. It panics on a negative
// dimension and returns m.
func (m *Matrix) Reset(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.Data) < n {
		// Grow geometrically so a matrix resized upward one row at a
		// time (the decode loop's score buffer) reallocates O(log n)
		// times, not every call.
		c := 2 * cap(m.Data)
		if c < n {
			c = n
		}
		m.Data = make([]float32, n, c)
	} else {
		m.Data = m.Data[:n]
		for i := range m.Data {
			m.Data[i] = 0
		}
	}
	m.Rows, m.Cols = rows, cols
	return m
}

// CopyInto copies src into m, reshaping m as needed, and returns m.
func (m *Matrix) CopyInto(src *Matrix) *Matrix {
	m.Reset(src.Rows, src.Cols)
	copy(m.Data, src.Data)
	return m
}

// SliceRows returns a view of rows [lo, hi) sharing storage with m.
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: row slice [%d:%d) out of range for %d rows", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// SliceCols returns a copy of columns [lo, hi) of m. Column slices cannot
// share row-major storage, so this always copies.
func (m *Matrix) SliceCols(lo, hi int) *Matrix {
	return m.SliceColsInto(&Matrix{}, lo, hi)
}

// SliceColsInto copies columns [lo, hi) of m into dst (reshaped as
// needed) and returns dst — SliceCols without the per-call allocation.
func (m *Matrix) SliceColsInto(dst *Matrix, lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("tensor: col slice [%d:%d) out of range for %d cols", lo, hi, m.Cols))
	}
	dst.Reset(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(dst.Row(i), m.Row(i)[lo:hi])
	}
	return dst
}

// AppendRows appends the rows of b to m, returning a matrix that may reuse
// m's storage. The column counts must match; m may be nil or empty — an
// empty non-nil m keeps its backing array, so a buffer cycled through
// fill/flush (the RQE V tail) stops allocating at steady state.
func AppendRows(m, b *Matrix) *Matrix {
	if m == nil {
		out := New(b.Rows, b.Cols)
		copy(out.Data, b.Data)
		return out
	}
	if m.Rows == 0 {
		m.Cols = b.Cols
		m.Data = append(m.Data[:0], b.Data...)
		m.Rows = b.Rows
		return m
	}
	if m.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: AppendRows cols %d != %d", m.Cols, b.Cols))
	}
	m.Data = append(m.Data, b.Data...)
	m.Rows += b.Rows
	return m
}

// Grow extends a buffer to n elements, reallocating geometrically so a
// slice regrown one step at a time (the decode loop's per-token scratch)
// amortizes to O(log n) allocations. Newly exposed elements are zero;
// reused elements keep their contents — callers overwrite them. Shared
// by the quantizer and kernel scratch buffers.
func Grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return append(s[:cap(s)], make([]T, n-cap(s))...)[:n]
	}
	return s[:n]
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// MatMul computes a × b with float32 accumulation, the reference kernel
// the quantized paths approximate. It panics on a shape mismatch.
func MatMul(a, b *Matrix) *Matrix {
	return MatMulInto(&Matrix{}, a, b)
}

// MatMulInto computes a × b into dst (reshaped and zeroed first),
// returning dst. Identical results to MatMul without the per-call output
// allocation once dst has grown to its steady-state size.
func MatMulInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul shape %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Reset(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for z, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(z)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return dst
}

// MatMulTransB computes a × bᵀ, the natural layout for QKᵀ where K is
// stored token-major.
func MatMulTransB(a, b *Matrix) *Matrix {
	return MatMulTransBInto(&Matrix{}, a, b)
}

// MatMulTransBInto computes a × bᵀ into dst (reshaped first), returning
// dst — MatMulTransB without the per-call output allocation.
func MatMulTransBInto(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulT shape %dx%d × (%dx%d)ᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	dst.Reset(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var acc float32
			for z := range arow {
				acc += arow[z] * brow[z]
			}
			orow[j] = acc
		}
	}
	return dst
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Matrix) Scale(s float32) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Add adds b to m element-wise in place and returns m.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: add shape %dx%d + %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	for i, v := range b.Data {
		m.Data[i] += v
	}
	return m
}

// Softmax applies the row-wise softmax of Eq. (3) in place and returns m.
// Each row is shifted by its maximum before exponentiation for numerical
// stability, matching production attention kernels.
func Softmax(m *Matrix) *Matrix {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		maxv := float32(math.Inf(-1))
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float32
		for j, v := range row {
			e := float32(math.Exp(float64(v - maxv)))
			row[j] = e
			sum += e
		}
		if sum == 0 {
			continue
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
	return m
}

// CausalMask sets entries above the main diagonal offset to -inf so that
// token i attends only to tokens 0..i+offset. offset is the number of
// cached tokens preceding the first row's token (0 during prefill).
func CausalMask(m *Matrix, offset int) *Matrix {
	negInf := float32(math.Inf(-1))
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := i + offset + 1; j < m.Cols; j++ {
			row[j] = negInf
		}
	}
	return m
}

// RandNormal fills a new rows x cols matrix with N(0, stddev²) values from
// the given source. A seeded source makes experiments reproducible.
func RandNormal(rng *rand.Rand, rows, cols int, stddev float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * stddev)
	}
	return m
}

// RandUniform fills a new rows x cols matrix with Uniform[lo, hi) values.
func RandUniform(rng *rand.Rand, rows, cols int, lo, hi float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
	return m
}

// MaxAbsDiff returns the maximum absolute element-wise difference between
// a and b. It panics on shape mismatch.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: MaxAbsDiff shape mismatch")
	}
	var max float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i] - b.Data[i]))
		if d > max {
			max = d
		}
	}
	return max
}

// RelFrobenius returns ‖a−b‖_F / ‖b‖_F, the relative Frobenius-norm error
// of a against reference b. Returns 0 when both are zero.
func RelFrobenius(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("tensor: RelFrobenius shape mismatch")
	}
	var num, den float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		num += d * d
		den += float64(b.Data[i]) * float64(b.Data[i])
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}

// MeanAbs returns the mean absolute value of the elements of m, or 0 for
// an empty matrix.
func MeanAbs(m *Matrix) float64 {
	if len(m.Data) == 0 {
		return 0
	}
	var s float64
	for _, v := range m.Data {
		s += math.Abs(float64(v))
	}
	return s / float64(len(m.Data))
}
