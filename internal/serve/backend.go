package serve

import (
	"fmt"
	"strings"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/quant"
)

// BackendForMethod maps a serving-method profile (the cost model's
// view) to its numeric attention-backend factory (the runtime's view),
// so a deployment simulated with some method can be served live with
// the matching kernels:
//
//   - Homomorphic profiles (HACK and variants) run the homomorphic
//     quantized kernels at the profile's Π/SE/RQE, with kernelPar
//     bounding the per-multiplication goroutine fan-out.
//   - CacheGen / KVQuant run the dequantize-before-compute backend at
//     their calibrated group sizes (96 / 112).
//   - FP4/FP6/FP8 run dequantize-before-compute at the format's bit
//     width.
//   - Baseline (and any other non-quantizing profile) runs the FP16
//     backend.
func BackendForMethod(m cluster.Method, kernelPar int) BackendFactory {
	switch {
	case m.Homomorphic:
		return func(seed int64) (attention.Backend, error) {
			cfg := attention.DefaultHACKConfig(seed)
			if m.Pi > 0 {
				cfg.Pi = m.Pi
			}
			cfg.SummationElimination = m.SE
			cfg.RequantizationElimination = m.RQE
			cfg.Parallelism = kernelPar
			return attention.NewHACK(cfg)
		}
	case m.Dequant:
		pi, bits, wire := 64, 2, 1.0
		switch {
		case strings.EqualFold(m.Name, "CacheGen"):
			pi, wire = 96, 0.9
		case strings.EqualFold(m.Name, "KVQuant"):
			pi = 112
		case strings.HasPrefix(strings.ToUpper(m.Name), "FP"):
			if _, err := fmt.Sscanf(strings.ToUpper(m.Name), "FP%d", &bits); err != nil {
				bits = 8
			}
		}
		return func(seed int64) (attention.Backend, error) {
			return attention.NewDequant(attention.DequantConfig{
				MethodName: m.Name, Pi: pi, KVBits: bits,
				Rounding: quant.StochasticRounding, Seed: seed, WireFactor: wire,
			})
		}
	default:
		return func(int64) (attention.Backend, error) { return attention.FP16Backend{}, nil }
	}
}

// PrefixBackendForMethod maps a serving-method profile to a factory of
// prefix-shareable backends — the attention configuration the shared-
// prefix KV tier requires. Only homomorphic profiles qualify: page
// export restores quantized partitions directly, which the dequantize-
// before-compute and FP16 backends cannot express, and the profile must
// run requantization elimination (pages hold complete partitions only).
func PrefixBackendForMethod(m cluster.Method, kernelPar int) (BackendFactory, error) {
	if !m.Homomorphic {
		return nil, fmt.Errorf("serve: prefix caching requires a homomorphic method, not %q", m.Name)
	}
	if !m.RQE {
		return nil, fmt.Errorf("serve: prefix caching requires requantization elimination, which %q disables", m.Name)
	}
	return func(seed int64) (attention.Backend, error) {
		cfg := attention.DefaultHACKConfig(seed)
		if m.Pi > 0 {
			cfg.Pi = m.Pi
		}
		cfg.SummationElimination = m.SE
		cfg.RequantizationElimination = true
		cfg.Parallelism = kernelPar
		cfg.PrefixShareable = true
		return attention.NewHACK(cfg)
	}, nil
}
