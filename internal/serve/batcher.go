package serve

import (
	"github.com/hackkv/hack/internal/sweeprun"
)

// runBatcher is the continuous-batching decode loop. Every iteration it
// re-forms the batch — pulling newly prefilled sessions from the admit
// channel up to MaxBatch — then advances every active request by one
// token through the real decode kernels, and retires the requests that
// finished. Sessions are independent, so the step fans out across
// DecodeParallelism goroutines without changing any stream's bytes.
func (s *Server) runBatcher() {
	// The batcher is the last goroutine standing (the admit channel only
	// closes after every prefill worker has exited), so its exit marks
	// the runtime fully drained.
	defer close(s.done)
	defer s.batchWG.Done()
	var batch []*active
	admitOpen := true
	for {
		// Re-form the batch: admit without blocking while slots remain.
		for admitOpen && len(batch) < s.cfg.MaxBatch {
			select {
			case a, ok := <-s.admit:
				if !ok {
					admitOpen = false
				} else {
					batch = append(batch, a)
				}
			default:
				goto formed
			}
		}
	formed:
		if len(batch) == 0 {
			if !admitOpen {
				return
			}
			// Idle: block until the next prefilled session (or drain).
			a, ok := <-s.admit
			if !ok {
				admitOpen = false
				continue
			}
			batch = append(batch, a)
			continue
		}

		s.rec.step(len(batch))
		s.stepBatch(batch)

		// Track the decode batch's resident KV-cache footprint (the live
		// counterpart of the simulator's peak-memory fraction).
		var kv int64
		for _, a := range batch {
			kv += int64(a.sess.CacheUsageTotal())
		}
		s.rec.kv(kv)

		// Retire finished requests, preserving admission order for the
		// survivors so single-worker mode is reproducible.
		live := batch[:0]
		for _, a := range batch {
			if a.done {
				s.finishRequest(a, a.err)
			} else {
				live = append(live, a)
			}
		}
		for i := len(live); i < len(batch); i++ {
			batch[i] = nil
		}
		batch = live
	}
}

// stepBatch advances every request one decode step. Each session owns
// its KV caches and quantizer RNGs, so steps are independent and the
// fan-out is free of cross-request effects.
func (s *Server) stepBatch(batch []*active) {
	workers := s.cfg.DecodeParallelism
	if workers == 0 || workers > len(batch) {
		workers = len(batch)
	}
	sweeprun.ParallelFor(len(batch), workers, func(lo, hi int) {
		for _, a := range batch[lo:hi] {
			s.stepOne(a)
		}
	})
}

// stepOne advances one request by one token (or, for requests carrying
// a speculation draft, by up to SpecK tokens via specStep), marking it
// done when its budget, stop token, context, or a forced drain ends it.
func (s *Server) stepOne(a *active) {
	if a.draft != nil {
		s.specStep(a)
		return
	}
	if err := a.ctx.Err(); err != nil {
		a.done, a.err = true, err
		return
	}
	if s.forced() {
		a.done, a.err = true, ErrDrained
		return
	}
	tok, err := a.sess.Decode(a.last)
	if err != nil {
		a.done, a.err = true, err
		return
	}
	a.emit(tok, &s.rec)
	if a.n >= a.maxNew || (a.req.EOS > 0 && tok == a.req.EOS) {
		a.done = true
	}
}
