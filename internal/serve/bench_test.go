package serve

import (
	"context"
	"testing"
)

// BenchmarkServerRequest measures end-to-end request latency through
// the full runtime — admission, routed prefill, continuous-batching
// decode over the homomorphic kernels, stream delivery.
func BenchmarkServerRequest(b *testing.B) {
	s, err := New(Config{PrefillWorkers: 2, MaxBatch: 8, QueueCap: 256, MaxNewTokens: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	prompt := promptFor(1, 10, s.Spec().Vocab)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := s.Submit(context.Background(), Request{Prompt: prompt, MaxNewTokens: 4, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for range st.Tokens() {
			n++
		}
		if err := st.Err(); err != nil {
			b.Fatal(err)
		}
		if n != 4 {
			b.Fatalf("got %d tokens", n)
		}
	}
}

// BenchmarkPrefixPrefill compares time-to-first-token through the full
// runtime with the shared-prefix tier: "cold" submits distinct prompts
// (every request misses and prefills itself), "warm" re-submits one
// prompt whose prefix is cached (every request skips prefill over the
// matched span). Both run the same prefix-shareable backend, so the gap
// is the prefill-skip saving.
func BenchmarkPrefixPrefill(b *testing.B) {
	cfg := Config{
		PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4, MaxNewTokens: 1,
		Backend:               prefixTestBackend,
		PrefixCacheBytes:      1 << 24,
		PrefixCachePageTokens: 8,
	}
	run := func(b *testing.B, prompt func(i int) []int) {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = s.Shutdown(context.Background()) }()
		// Seed the cache so warm iterations hit from the first request.
		st, err := s.Submit(context.Background(), Request{Prompt: prompt(0), MaxNewTokens: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		for range st.Tokens() {
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := s.Submit(context.Background(), Request{Prompt: prompt(i + 1), MaxNewTokens: 1, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			for range st.Tokens() {
			}
			if err := st.Err(); err != nil {
				b.Fatal(err)
			}
		}
	}
	vocabOf := func(b *testing.B) int {
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		v := s.Spec().Vocab
		_ = s.Shutdown(context.Background())
		return v
	}
	b.Run("cold", func(b *testing.B) {
		vocab := vocabOf(b)
		run(b, func(i int) []int { return promptFor(i, 65, vocab) })
	})
	b.Run("warm", func(b *testing.B) {
		vocab := vocabOf(b)
		fixed := promptFor(0, 65, vocab)
		run(b, func(int) []int { return fixed })
	})
}
