package serve

import (
	"context"
	"testing"
)

// BenchmarkServerRequest measures end-to-end request latency through
// the full runtime — admission, routed prefill, continuous-batching
// decode over the homomorphic kernels, stream delivery.
func BenchmarkServerRequest(b *testing.B) {
	s, err := New(Config{PrefillWorkers: 2, MaxBatch: 8, QueueCap: 256, MaxNewTokens: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	prompt := promptFor(1, 10, s.Spec().Vocab)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := s.Submit(context.Background(), Request{Prompt: prompt, MaxNewTokens: 4, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for range st.Tokens() {
			n++
		}
		if err := st.Err(); err != nil {
			b.Fatal(err)
		}
		if n != 4 {
			b.Fatalf("got %d tokens", n)
		}
	}
}
