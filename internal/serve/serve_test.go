package serve

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/sim"
)

// collect reads a stream to completion and returns its token IDs,
// failing the test if indices are not contiguous from zero.
func collect(t *testing.T, st *Stream) []int {
	t.Helper()
	var out []int
	for tok := range st.Tokens() {
		if tok.Index != len(out) {
			t.Fatalf("token index %d, want %d (dropped or reordered token)", tok.Index, len(out))
		}
		out = append(out, tok.ID)
	}
	return out
}

// promptFor returns a deterministic prompt of the given length.
func promptFor(i, n, vocab int) []int {
	p := make([]int, n)
	for j := range p {
		p[j] = (7*i + 3*j + 1) % vocab
	}
	return p
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// runAll submits n requests and returns each request's full token
// sequence, reading streams concurrently so decode is never blocked on
// an unconsumed channel (it never is anyway: streams are buffered).
func runAll(t *testing.T, s *Server, n, promptLen, maxNew int) [][]int {
	t.Helper()
	vocab := s.Spec().Vocab
	streams := make([]*Stream, n)
	for i := 0; i < n; i++ {
		st, err := s.Submit(context.Background(), Request{
			Prompt: promptFor(i, promptLen, vocab), MaxNewTokens: maxNew, Seed: int64(i),
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		streams[i] = st
	}
	out := make([][]int, n)
	for i, st := range streams {
		out[i] = collect(t, st)
		if err := st.Err(); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	return out
}

// TestSingleWorkerDeterministic pins the headline determinism property:
// in single-worker mode (one prefill worker, serial decode stepping)
// the full token streams are byte-identical across server instances.
func TestSingleWorkerDeterministic(t *testing.T) {
	cfg := Config{PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4, MaxNewTokens: 8}
	first := runAll(t, newTestServer(t, cfg), 6, 12, 8)
	second := runAll(t, newTestServer(t, cfg), 6, 12, 8)
	for i := range first {
		if fmt.Sprint(first[i]) != fmt.Sprint(second[i]) {
			t.Errorf("request %d diverged across reruns:\n  %v\n  %v", i, first[i], second[i])
		}
		if len(first[i]) != 8 {
			t.Errorf("request %d: %d tokens, want 8", i, len(first[i]))
		}
	}
}

// TestBatchingInvariance verifies that a request's tokens do not depend
// on batch composition or parallelism: every quantizer RNG is derived
// from the request seed, so wildly different serving configurations
// stream identical bytes.
func TestBatchingInvariance(t *testing.T) {
	serial := runAll(t, newTestServer(t,
		Config{PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 1, MaxNewTokens: 8}), 6, 12, 8)
	parallel := runAll(t, newTestServer(t,
		Config{PrefillWorkers: 3, DecodeParallelism: 4, MaxBatch: 8, MaxNewTokens: 8}), 6, 12, 8)
	for i := range serial {
		if fmt.Sprint(serial[i]) != fmt.Sprint(parallel[i]) {
			t.Errorf("request %d depends on batching:\n  serial   %v\n  parallel %v",
				i, serial[i], parallel[i])
		}
	}
}

// TestEOSStopsGeneration learns a generated token from a free run and
// resubmits with it as the stop token: the stream must end right there.
func TestEOSStopsGeneration(t *testing.T) {
	s := newTestServer(t, Config{PrefillWorkers: 1, DecodeParallelism: 1, MaxNewTokens: 16})
	free := runAll(t, s, 1, 12, 16)[0]
	stopAt := -1
	for i, tok := range free {
		if tok > 0 {
			stopAt = i
			break
		}
	}
	if stopAt < 0 {
		t.Skip("free run generated only token 0; nothing usable as EOS")
	}
	st, err := s.Submit(context.Background(), Request{
		Prompt: promptFor(0, 12, s.Spec().Vocab), MaxNewTokens: 16, Seed: 0, EOS: free[stopAt],
	})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, st)
	if len(got) != stopAt+1 || got[stopAt] != free[stopAt] {
		t.Errorf("EOS run = %v, want prefix of %v ending at index %d", got, free, stopAt)
	}
}

// TestSubmitValidation exercises the request validation paths.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx := context.Background()
	if _, err := s.Submit(ctx, Request{}); err == nil {
		t.Error("empty prompt accepted")
	}
	if _, err := s.Submit(ctx, Request{Prompt: []int{0, s.Spec().Vocab}}); err == nil {
		t.Error("out-of-vocab token accepted")
	}
	if _, err := s.Submit(ctx, Request{Prompt: []int{1}, MaxNewTokens: -1}); err == nil {
		t.Error("negative MaxNewTokens accepted")
	}
}

// TestConfigValidation exercises the server construction paths.
func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Scheduler: sim.Scheduler(99)}); err == nil {
		t.Error("unknown scheduler accepted")
	}
	if _, err := New(Config{MaxBatch: -1}); err == nil {
		t.Error("negative MaxBatch accepted")
	}
	for _, sched := range sim.AllSchedulers() {
		s, err := New(Config{Scheduler: sched, PrefillWorkers: 3})
		if err != nil {
			t.Fatalf("%v: %v", sched, err)
		}
		got := runAll(t, s, 5, 8, 3)
		for i, toks := range got {
			if len(toks) != 3 {
				t.Errorf("%v: request %d got %d tokens, want 3", sched, i, len(toks))
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("%v: shutdown: %v", sched, err)
		}
		cancel()
	}
}

// TestContextCancellation submits a long request, cancels it mid-stream
// and expects the stream to seal with the context error.
func TestContextCancellation(t *testing.T) {
	s := newTestServer(t, Config{MaxNewTokens: 512})
	ctx, cancel := context.WithCancel(context.Background())
	st, err := s.Submit(ctx, Request{Prompt: promptFor(0, 12, s.Spec().Vocab), MaxNewTokens: 512})
	if err != nil {
		t.Fatal(err)
	}
	// Read two tokens, then cancel.
	for i := 0; i < 2; i++ {
		if _, ok := <-st.Tokens(); !ok {
			t.Fatal("stream ended before cancellation")
		}
	}
	cancel()
	for range st.Tokens() {
	}
	if err := st.Err(); err != context.Canceled {
		t.Errorf("Err() = %v, want context.Canceled", err)
	}
}

// TestMetricsSnapshot checks the live snapshot's accounting after a
// fully drained run.
func TestMetricsSnapshot(t *testing.T) {
	s := newTestServer(t, Config{PrefillWorkers: 2, MaxBatch: 4, MaxNewTokens: 5})
	const n, maxNew = 10, 5
	got := runAll(t, s, n, 10, maxNew)
	total := 0
	for _, toks := range got {
		total += len(toks)
	}
	snap := s.Metrics()
	if snap.Submitted != n || snap.Completed != n {
		t.Errorf("submitted %d completed %d, want %d/%d", snap.Submitted, snap.Completed, n, n)
	}
	if snap.TokensStreamed != int64(total) {
		t.Errorf("tokens streamed %d, want %d", snap.TokensStreamed, total)
	}
	if snap.DecodeSteps <= 0 || snap.BatchOccupancy <= 0 {
		t.Errorf("decode steps %d, occupancy %v: batcher never recorded a step",
			snap.DecodeSteps, snap.BatchOccupancy)
	}
	if snap.BatchOccupancy > 4 {
		t.Errorf("occupancy %v exceeds MaxBatch", snap.BatchOccupancy)
	}
	if snap.TTFT.P50 <= 0 || snap.TBT.P50 <= 0 {
		t.Errorf("latency percentiles not recorded: ttft %+v tbt %+v", snap.TTFT, snap.TBT)
	}
	if snap.Failed != 0 || snap.Canceled != 0 || snap.RejectedFull != 0 {
		t.Errorf("unexpected failures in snapshot: %+v", snap)
	}
}

// TestBackendFactoryError verifies a failing backend seals the stream
// with the factory's error instead of hanging the pipeline.
func TestBackendFactoryError(t *testing.T) {
	s := newTestServer(t, Config{
		PrefillWorkers: 1,
		Backend: func(seed int64) (attention.Backend, error) {
			if seed == 13 {
				return nil, fmt.Errorf("boom")
			}
			return attention.NewHACK(attention.DefaultHACKConfig(seed))
		},
	})
	bad, err := s.Submit(context.Background(), Request{Prompt: []int{1, 2, 3}, Seed: 13, MaxNewTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	good, err := s.Submit(context.Background(), Request{Prompt: []int{1, 2, 3}, Seed: 1, MaxNewTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	if toks := collect(t, bad); len(toks) != 0 {
		t.Errorf("failed request streamed tokens: %v", toks)
	}
	if err := bad.Err(); err == nil || err.Error() != "boom" {
		t.Errorf("Err() = %v, want boom", err)
	}
	if toks := collect(t, good); len(toks) != 2 {
		t.Errorf("healthy request got %v, want 2 tokens", toks)
	}
	if snap := s.Metrics(); snap.Failed != 1 {
		t.Errorf("failed count %d, want 1", snap.Failed)
	}
}
