package serve

import (
	"context"
	"strings"
	"testing"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
	"github.com/hackkv/hack/internal/sim"
)

// shipSessionInto runs prefill outside the server, round-trips every
// head's cache through the KVFrame codec, and returns the restored
// session plus the first token — the decode node's ingest path in
// miniature.
func shipSessionInto(t *testing.T, s *Server, req Request) (restored *model.Session, firstTok int) {
	t.Helper()
	backend, err := s.BackendFor(req.Seed)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := s.Model().NewSession(backend)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := sess.Prefill(req.Prompt)
	if err != nil {
		t.Fatal(err)
	}
	spec := s.Spec()
	hb, ok := backend.(*attention.HACKBackend)
	if !ok {
		t.Fatalf("backend %T is not restorable", backend)
	}
	heads := make([][]attention.Head, spec.Layers)
	for l := 0; l < spec.Layers; l++ {
		heads[l] = make([]attention.Head, spec.Heads)
		for h := 0; h < spec.Heads; h++ {
			exp := sess.Head(l, h).(attention.WireExporter)
			k, v, tail, draws, err := exp.ExportWire()
			if err != nil {
				t.Fatal(err)
			}
			fr, err := netsim.FrameFromTensors(1, l, h, tok, k, v, tail.Data)
			if err != nil {
				t.Fatal(err)
			}
			fr.RNGDraws = draws
			rk, rv, rtail, err := fr.Tensors()
			if err != nil {
				t.Fatal(err)
			}
			heads[l][h], err = hb.RestoreHead(spec.HeadDim, rk, rv, rtail, draws)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	rs, err := s.Model().RestoreSession(backend, heads)
	if err != nil {
		t.Fatal(err)
	}
	return rs, tok
}

// TestSubmitPrefilledMatchesLocal runs the same request through the
// normal Submit path and the remote-prefill path and requires identical
// token streams — the decode half of the disaggregated byte-identity
// guarantee.
func TestSubmitPrefilledMatchesLocal(t *testing.T) {
	newServer := func() *Server {
		s, err := New(Config{PrefillWorkers: 1, MaxBatch: 4, DecodeParallelism: 1,
			Scheduler: sim.LoadAware, MaxNewTokens: 16})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	req := Request{Prompt: []int{5, 4, 3, 2, 1, 0, 1, 2}, Seed: 99}
	ctx := context.Background()

	local := newServer()
	defer local.Shutdown(ctx)
	want := collectLocal(t, local, req)

	remote := newServer()
	defer remote.Shutdown(ctx)
	// Prefill outside the runtime, ship through the frame codec, and
	// enter via SubmitPrefilled.
	restored, firstTok := shipSessionInto(t, remote, req)
	st, err := remote.SubmitPrefilled(ctx, req, restored, firstTok)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	for tok := range st.Tokens() {
		if tok.Index != len(got) {
			t.Fatalf("token index %d at position %d", tok.Index, len(got))
		}
		got = append(got, tok.ID)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}

	if len(got) != len(want) {
		t.Fatalf("remote path streamed %d tokens, local %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d diverged: remote %d, local %d\nremote %v\nlocal  %v",
				i, got[i], want[i], got, want)
		}
	}

	snap := remote.Metrics()
	if snap.RemotePrefills != 1 {
		t.Fatalf("remote prefills %d, want 1", snap.RemotePrefills)
	}
	if local.Metrics().RemotePrefills != 0 {
		t.Fatalf("local path counted a remote prefill")
	}
}

func collectLocal(t *testing.T, s *Server, req Request) []int {
	t.Helper()
	st, err := s.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for tok := range st.Tokens() {
		out = append(out, tok.ID)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSubmitPrefilledRejections covers the validation and drain paths.
func TestSubmitPrefilledRejections(t *testing.T) {
	s, err := New(Config{PrefillWorkers: 1, MaxBatch: 2, MaxNewTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	req := Request{Prompt: []int{1, 2, 3}, Seed: 1}
	restored, firstTok := shipSessionInto(t, s, req)

	if _, err := s.SubmitPrefilled(ctx, req, nil, firstTok); err == nil {
		t.Fatal("accepted a nil session")
	}
	if _, err := s.SubmitPrefilled(ctx, req, restored, -1); err == nil {
		t.Fatal("accepted an out-of-vocab first token")
	}

	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitPrefilled(ctx, req, restored, firstTok); err != ErrDraining {
		t.Fatalf("draining server returned %v, want ErrDraining", err)
	}
}

// TestWritePrometheusGolden locks the exposition format: a snapshot with
// every field populated renders exactly this text.
func TestWritePrometheusGolden(t *testing.T) {
	snap := Snapshot{
		Submitted: 10, RejectedFull: 1, RejectedDraining: 2,
		Completed: 7, Canceled: 1, Failed: 1, TokensStreamed: 224,
		RemotePrefills: 3, DecodeSteps: 50, BatchNow: 4, QueueDepth: 2,
		BatchOccupancy: 3.5, KVBytesNow: 4096, KVBytesPeak: 8192,
		Draining: true,
	}
	snap.TTFT.P50, snap.TTFT.P90, snap.TTFT.P99 = 0.01, 0.02, 0.05
	snap.TBT.P50, snap.TBT.P90, snap.TBT.P99 = 0.001, 0.002, 0.003
	snap.QueueDelay.P50, snap.QueueDelay.P90, snap.QueueDelay.P99 = 0, 0.5, 1

	var b strings.Builder
	if err := snap.WritePrometheus(&b, "hackserved"); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP hackserved_submitted_total Requests admitted.
# TYPE hackserved_submitted_total counter
hackserved_submitted_total 10
# HELP hackserved_rejected_queue_full_total Requests load-shed on a full admission queue.
# TYPE hackserved_rejected_queue_full_total counter
hackserved_rejected_queue_full_total 1
# HELP hackserved_rejected_draining_total Requests rejected during drain.
# TYPE hackserved_rejected_draining_total counter
hackserved_rejected_draining_total 2
# HELP hackserved_completed_total Requests finished naturally.
# TYPE hackserved_completed_total counter
hackserved_completed_total 7
# HELP hackserved_canceled_total Requests canceled or aborted by shutdown.
# TYPE hackserved_canceled_total counter
hackserved_canceled_total 1
# HELP hackserved_failed_total Requests that failed.
# TYPE hackserved_failed_total counter
hackserved_failed_total 1
# HELP hackserved_tokens_streamed_total Tokens streamed to clients.
# TYPE hackserved_tokens_streamed_total counter
hackserved_tokens_streamed_total 224
# HELP hackserved_remote_prefills_total Requests admitted with a remotely-prefilled KV cache.
# TYPE hackserved_remote_prefills_total counter
hackserved_remote_prefills_total 3
# HELP hackserved_decode_steps_total Continuous-batching decode iterations.
# TYPE hackserved_decode_steps_total counter
hackserved_decode_steps_total 50
# HELP hackserved_batch_size Decode batch size at the last step.
# TYPE hackserved_batch_size gauge
hackserved_batch_size 4
# HELP hackserved_queue_depth Requests waiting in admission queues.
# TYPE hackserved_queue_depth gauge
hackserved_queue_depth 2
# HELP hackserved_batch_occupancy Mean decode batch size over all steps.
# TYPE hackserved_batch_occupancy gauge
hackserved_batch_occupancy 3.5
# HELP hackserved_kv_bytes Resident KV-cache bytes across the decode batch.
# TYPE hackserved_kv_bytes gauge
hackserved_kv_bytes 4096
# HELP hackserved_kv_bytes_peak Peak resident KV-cache bytes.
# TYPE hackserved_kv_bytes_peak gauge
hackserved_kv_bytes_peak 8192
# HELP hackserved_ttft_seconds Time to first token.
# TYPE hackserved_ttft_seconds summary
hackserved_ttft_seconds{quantile="0.5"} 0.01
hackserved_ttft_seconds{quantile="0.9"} 0.02
hackserved_ttft_seconds{quantile="0.99"} 0.05
# HELP hackserved_tbt_seconds Mean time between tokens.
# TYPE hackserved_tbt_seconds summary
hackserved_tbt_seconds{quantile="0.5"} 0.001
hackserved_tbt_seconds{quantile="0.9"} 0.002
hackserved_tbt_seconds{quantile="0.99"} 0.003
# HELP hackserved_queue_delay_seconds Admission queue delay.
# TYPE hackserved_queue_delay_seconds summary
hackserved_queue_delay_seconds{quantile="0.5"} 0
hackserved_queue_delay_seconds{quantile="0.9"} 0.5
hackserved_queue_delay_seconds{quantile="0.99"} 1
# HELP hackserved_draining Whether shutdown has begun.
# TYPE hackserved_draining gauge
hackserved_draining 1
`
	if got := b.String(); got != want {
		t.Fatalf("prometheus format drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
