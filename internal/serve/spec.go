package serve

import (
	"fmt"
	"sort"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/quant"
)

// This file is the serving loop's speculative decoding: a cheap draft
// session (a coarser HACK quantization class on the same weights)
// proposes up to SpecK-1 tokens per step, and the request's
// full-precision session verifies the window in one batched attention
// call (model.Session.DecodeBatch). The accepted prefix is committed,
// the rejected suffix is rolled out of both sessions' KV caches and
// quantizer streams, and the emitted stream stays byte-identical to the
// non-speculative server at the same (prompt, seed) — speculation only
// changes how many kernel calls produce the tokens, never which tokens.
//
// The draft mirrors the target: both caches always hold exactly the
// committed token rows, so the draft's proposals are a deterministic
// function of (prompt, seed) and acceptance rates reproduce run-to-run.

// draftSeedSalt decorrelates the draft backend's quantizer streams from
// the target's without costing determinism (both derive from the
// request seed).
const draftSeedSalt = 0x5bd1e995b4793a1d

// draftClasses enumerates the named draft quantization classes. All are
// prefix-shareable (the draft must support rollback) with SE+RQE; they
// differ in partition width and rounding. Wider partitions and nearest
// rounding make the kernels cheaper — Π=128 nearest is the fastest
// class (widest SE reuse, zero per-element RNG draws) and the default.
var draftClasses = map[string]func(cfg *attention.HACKConfig){
	"pi128-nearest": func(c *attention.HACKConfig) { c.Pi = 128; c.Rounding = quant.NearestRounding },
	"pi64-nearest":  func(c *attention.HACKConfig) { c.Pi = 64; c.Rounding = quant.NearestRounding },
	"pi32-nearest":  func(c *attention.HACKConfig) { c.Pi = 32; c.Rounding = quant.NearestRounding },
	"pi128":         func(c *attention.HACKConfig) { c.Pi = 128 },
	"pi64":          func(c *attention.HACKConfig) { c.Pi = 64 },
}

// DefaultDraftClass is the draft class an empty Config.SpecDraft selects.
const DefaultDraftClass = "pi128-nearest"

// DraftClasses lists the recognized draft class names, sorted.
func DraftClasses() []string {
	out := make([]string, 0, len(draftClasses))
	for name := range draftClasses {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// draftConfig resolves a draft class name (empty = DefaultDraftClass)
// into its backend configuration for one request seed.
func draftConfig(name string, seed int64) (attention.HACKConfig, error) {
	if name == "" {
		name = DefaultDraftClass
	}
	mut, ok := draftClasses[name]
	if !ok {
		return attention.HACKConfig{}, fmt.Errorf("serve: unknown draft class %q (have %v)", name, DraftClasses())
	}
	cfg := attention.DefaultHACKConfig(int64(uint64(seed) ^ draftSeedSalt))
	cfg.PrefixShareable = true
	cfg.NameOverride = "draft-" + name
	mut(&cfg)
	return cfg, nil
}

// newDraftSession builds and prefills the request's draft session. The
// draft always cold-prefills the whole prompt (its quantization class
// differs from the target's, so prefix pages don't transfer); that cost
// is the speculation overhead the verify speedup has to beat.
func (s *Server) newDraftSession(req Request) (*model.Session, error) {
	cfg, err := draftConfig(s.cfg.SpecDraft, req.Seed)
	if err != nil {
		return nil, err
	}
	backend, err := attention.NewHACK(cfg)
	if err != nil {
		return nil, err
	}
	sess, err := s.m.NewSession(backend)
	if err != nil {
		return nil, err
	}
	// The draft's own first-token prediction is discarded: the target
	// already produced the true first token. Prefill only seeds the
	// draft's KV cache with the prompt rows.
	if _, err := sess.Prefill(req.Prompt); err != nil {
		return nil, err
	}
	return sess, nil
}

// specStep advances one request by up to SpecK tokens: the draft
// proposes, the target batch-verifies, the accepted prefix is emitted.
// Called instead of stepOne for requests that carry a draft session.
func (s *Server) specStep(a *active) {
	if err := a.ctx.Err(); err != nil {
		a.done, a.err = true, err
		return
	}
	if s.forced() {
		a.done, a.err = true, ErrDrained
		return
	}
	// Clamp the window: the request's remaining budget, then the
	// largest flush-free batch the target accepts, then the largest
	// flush-free run of appends the draft can roll back (the draft
	// ingests kEff-1 rows while proposing).
	kEff := s.cfg.SpecK
	if rem := a.maxNew - a.n; kEff > rem {
		kEff = rem
	}
	kEff = a.sess.VerifyWindow(kEff)
	if kEff >= 2 {
		if room := a.draft.VerifyWindow(kEff-1) + 1; kEff > room {
			kEff = room
		}
	}
	if kEff < 2 {
		// No speculative room this step (open partition nearly full, or
		// budget down to one token): plain decode, mirroring the
		// committed row into the draft so the caches stay lockstep.
		tok, err := a.sess.Decode(a.last)
		if err != nil {
			a.done, a.err = true, err
			return
		}
		if _, err := a.draft.Decode(a.last); err != nil {
			a.done, a.err = true, err
			return
		}
		a.emit(tok, &s.rec)
		if a.n >= a.maxNew || (a.req.EOS > 0 && tok == a.req.EOS) {
			a.done = true
		}
		return
	}

	// Draft pass: propose kEff-1 tokens. Each Decode ingests the
	// previous token, so after the loop the draft holds the window's
	// first kEff-1 rows.
	before := a.sess.Len()
	window := make([]int, 1, kEff)
	window[0] = a.last
	cur := a.last
	for len(window) < kEff {
		next, err := a.draft.Decode(cur)
		if err != nil {
			a.done, a.err = true, err
			return
		}
		window = append(window, next)
		cur = next
	}

	// Verify pass: one batched call over the full-precision kernels.
	// outs[i] is the model's true token after ingesting window[0..i].
	outs, err := a.sess.DecodeBatch(window)
	if err != nil {
		a.done, a.err = true, err
		return
	}
	match := 0
	for match+1 < len(window) && window[match+1] == outs[match] {
		match++
	}
	emitN := match + 1 // accepted drafts plus the verify's own token

	// Commit the accepted prefix; roll the rejected suffix out of both
	// sessions. A full accept needs no target rollback, and the draft
	// catches up by ingesting the final draft token (its prediction is
	// discarded — the verify already produced that position's token).
	if err := a.sess.Truncate(before + emitN); err != nil {
		a.done, a.err = true, err
		return
	}
	if emitN == kEff {
		if _, err := a.draft.Decode(window[kEff-1]); err != nil {
			a.done, a.err = true, err
			return
		}
	} else if err := a.draft.Truncate(before + emitN); err != nil {
		a.done, a.err = true, err
		return
	}

	s.rec.specWindows.Add(1)
	s.rec.specProposed.Add(int64(kEff - 1))
	s.rec.specAccepted.Add(int64(match))
	a.specProposed += int64(kEff - 1)
	a.specAccepted += int64(match)

	for _, tok := range outs[:emitN] {
		a.emit(tok, &s.rec)
		s.rec.specEmitted.Add(1)
		if a.n >= a.maxNew || (a.req.EOS > 0 && tok == a.req.EOS) {
			a.done = true
			return
		}
	}
}
