package serve

import (
	"fmt"
	"time"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/chaos"
	"github.com/hackkv/hack/internal/kvcache"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
	"github.com/hackkv/hack/internal/quant"
)

// This file is the serving half of the shared-prefix KV tier: requests
// whose prompts share a block-aligned token prefix reuse the quantized
// KV pages a previous request already produced, skipping prefill over
// the matched span. The index side lives in kvcache.PrefixIndex (a trie
// over Π-aligned blocks with ref-counted LRU eviction under a byte
// budget); the numeric side in attention's prefix-shareable heads,
// whose counted per-operand quantizer streams make a restored page
// bit-identical to the cold path for the same (prompt, seed).
//
// Pages cross the tier boundary as netsim KV frames — the same framing
// the disaggregated wire uses — so the in-process backend and the
// remote cache-node stub store exactly the bytes a network tier would.

// PrefixCacheStats is the tier's counter snapshot, surfaced in
// Snapshot.PrefixCache and the Prometheus exposition.
type PrefixCacheStats struct {
	// Hits counts lookups that matched at least one block; Misses the
	// rest.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Inserts counts blocks cached; InsertRejected blocks skipped
	// because no budget room could be made; Evictions blocks freed.
	Inserts        int64 `json:"inserts"`
	InsertRejected int64 `json:"insert_rejected"`
	Evictions      int64 `json:"evictions"`
	// TokensReused is the total prefill tokens skipped across hits;
	// BytesSaved the KV bytes that did not have to be recomputed.
	TokensReused int64 `json:"tokens_reused"`
	BytesSaved   int64 `json:"bytes_saved"`
	// Nodes / BytesUsed / BytesBudget describe residency.
	Nodes       int   `json:"nodes"`
	BytesUsed   int64 `json:"bytes_used"`
	BytesBudget int64 `json:"bytes_budget"`
	// Errors counts tier failures the server absorbed by falling back
	// to a cold prefill (the tier degrades, requests never fail on it).
	Errors int64 `json:"errors"`
	// ColdFallbacks counts requests that skipped the tier because its
	// circuit breaker was open — degraded-but-serving requests that
	// paid a cold prefill without even attempting the backend.
	ColdFallbacks int64 `json:"cold_fallbacks"`
	// Breaker is this runtime's view of the tier breaker (zero from a
	// raw backend; the serving snapshot fills it in).
	Breaker chaos.BreakerStatus `json:"breaker"`
}

// PrefixMatch is one lookup's result: the longest cached block-aligned
// prefix, as per-block frame sets (one frame per (layer, head), with
// the frame's RequestID field carrying the block's start token index).
// Callers must Release the match once the pages are restored; until
// then the backing blocks are pinned against eviction.
type PrefixMatch struct {
	// Tokens is the matched token count, a multiple of the page size.
	Tokens int
	// Blocks holds each matched block's frames, shallowest first.
	Blocks [][]*netsim.KVFrame

	release func()
}

// Release unpins the match. Idempotent and nil-safe.
func (m *PrefixMatch) Release() {
	if m == nil || m.release == nil {
		return
	}
	m.release()
	m.release = nil
}

// PrefixCacheBackend is the storage tier behind the shared-prefix
// cache. The in-process default (NewPrefixCache) indexes pages in
// memory; NewRemotePrefixCache speaks the same contract to a shared
// cache node over the netsim wire. Implementations must be safe for
// concurrent use; seed namespaces isolate quantizer streams.
type PrefixCacheBackend interface {
	// Lookup returns the longest cached block-aligned prefix of prompt
	// in the seed's namespace, capped at maxTokens, or (nil, nil) on a
	// complete miss.
	Lookup(seed int64, prompt []int, maxTokens int) (*PrefixMatch, error)
	// Insert caches prompt[:upTo]'s block-aligned prefix, calling build
	// once per block not already cached. It returns the blocks added;
	// blocks that don't fit the budget are skipped, not errors.
	Insert(seed int64, prompt []int, upTo int, build func(lo, hi int) ([]*netsim.KVFrame, error)) (int, error)
	// Stats snapshots the tier's counters.
	Stats() (PrefixCacheStats, error)
	// Close releases the tier's resources.
	Close() error
}

// prefixBytesPerToken is the budget-accounting cost of one cached
// token: the framed wire size of its quantized K and V rows (codes
// plus FP16 min/scale metadata) summed over every (layer, head).
func prefixBytesPerToken(spec model.Spec, pi, kvBits, pageTokens int) int {
	dh := spec.HeadDim
	kMetaBlocks := pageTokens * ((dh + pi - 1) / pi)        // K: per-row partitions
	vMetaBlocks := dh * (pageTokens / pi)                   // V: per-column partitions
	perHead := 2*quant.PackedBytes(pageTokens*dh, kvBits) + // K + V codes
		4*(kMetaBlocks+vMetaBlocks) // fp16 min+scale per partition
	perBlock := perHead * spec.Layers * spec.Heads
	return (perBlock + pageTokens - 1) / pageTokens
}

// localPrefixCache is the in-process backend: a kvcache.PrefixIndex
// whose payloads are per-block frame sets.
type localPrefixCache struct {
	ix *kvcache.PrefixIndex
}

// NewPrefixCache builds the in-process prefix tier: resident pages are
// bounded by budgetBytes, in pages of pageTokens tokens (which must be
// a positive multiple of the quantization partition pi — the typed
// kvcache.PageAlignmentError otherwise) at bytesPerToken each.
func NewPrefixCache(budgetBytes int64, pageTokens, pi, bytesPerToken int) (PrefixCacheBackend, error) {
	ix, err := kvcache.NewPrefixIndex(budgetBytes, pageTokens, pi, bytesPerToken)
	if err != nil {
		return nil, err
	}
	return &localPrefixCache{ix: ix}, nil
}

func (c *localPrefixCache) Lookup(seed int64, prompt []int, maxTokens int) (*PrefixMatch, error) {
	m := c.ix.Lookup(seed, prompt, maxTokens)
	if m == nil {
		return nil, nil
	}
	out := &PrefixMatch{Tokens: m.Tokens, release: m.Release}
	for _, p := range m.Payloads {
		blk, ok := p.([]*netsim.KVFrame)
		if !ok {
			m.Release()
			return nil, fmt.Errorf("serve: prefix payload holds %T, want KV frames", p)
		}
		out.Blocks = append(out.Blocks, blk)
	}
	return out, nil
}

func (c *localPrefixCache) Insert(seed int64, prompt []int, upTo int, build func(lo, hi int) ([]*netsim.KVFrame, error)) (int, error) {
	return c.ix.Insert(seed, prompt, upTo, func(lo, hi int) (any, error) {
		return build(lo, hi)
	})
}

func (c *localPrefixCache) Stats() (PrefixCacheStats, error) {
	st := c.ix.Stats()
	return PrefixCacheStats{
		Hits: st.Hits, Misses: st.Misses,
		Inserts: st.Inserts, InsertRejected: st.InsertRejected, Evictions: st.Evictions,
		TokensReused: st.ReusedTokens, BytesSaved: st.BytesSaved,
		Nodes: st.Nodes, BytesUsed: st.BytesUsed, BytesBudget: st.BytesBudget,
	}, nil
}

func (c *localPrefixCache) Close() error { return nil }

// prefixTier is the server's view of an enabled prefix cache. Every
// backend call routes through the breaker: when the tier is failing
// (dead cache node, poisoned link), the breaker opens and requests
// take the cold path without touching the backend at all.
type prefixTier struct {
	backend    PrefixCacheBackend
	owned      bool // Close on Shutdown only if the server built it
	pageTokens int
	pi         int
	breaker    *chaos.Breaker
}

// newPrefixTier validates the serving configuration's prefix-cache
// settings against the attention backend and builds the tier. The
// backend factory must produce prefix-shareable backends
// (attention.PrefixBackend); the page granularity must be a positive
// multiple of the backend's partition Π.
func newPrefixTier(cfg Config) (*prefixTier, error) {
	probe, err := cfg.Backend(0)
	if err != nil {
		return nil, fmt.Errorf("serve: prefix cache backend probe: %w", err)
	}
	pb, ok := probe.(attention.PrefixBackend)
	if !ok {
		return nil, fmt.Errorf("serve: prefix cache requires a prefix-shareable attention backend; %s exports no pages", probe.Name())
	}
	pi, kvBits, err := pb.PrefixLayout()
	if err != nil {
		return nil, fmt.Errorf("serve: prefix cache: %w", err)
	}
	pageTokens := cfg.PrefixCachePageTokens
	if pageTokens == 0 {
		pageTokens = pi
	}
	if pageTokens < 0 || pageTokens%pi != 0 {
		return nil, &kvcache.PageAlignmentError{PageTokens: pageTokens, Pi: pi}
	}
	cooldown := cfg.PrefixBreakerCooldown
	if cooldown <= 0 {
		cooldown = time.Second
	}
	t := &prefixTier{pageTokens: pageTokens, pi: pi,
		breaker: chaos.NewBreaker(cfg.PrefixBreakerThreshold, cooldown)}
	if cfg.PrefixCache != nil {
		t.backend = cfg.PrefixCache
		return t, nil
	}
	bpt := prefixBytesPerToken(cfg.Spec, pi, kvBits, pageTokens)
	be, err := NewPrefixCache(cfg.PrefixCacheBytes, pageTokens, pi, bpt)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	t.backend = be
	t.owned = true
	return t, nil
}

// insertable returns the block-aligned token count of prompt that may
// be cached: the last prompt position is never cached (its logits are
// what prefill produces, so at least one suffix token must remain to
// resume over).
func (t *prefixTier) insertable(promptLen int) int {
	return ((promptLen - 1) / t.pageTokens) * t.pageTokens
}

// tryPrefixPrefill attempts the warm path for one request: look up the
// longest cached prefix, restore its pages into a fresh session, and
// resume prefill over the remaining suffix. It reports (firstToken,
// true) on success. Any tier failure is counted and absorbed — the
// caller falls back to a cold prefill, so a degraded tier can never
// fail a request.
func (s *Server) tryPrefixPrefill(a *active, backend attention.Backend) (int, bool) {
	t := s.prefix
	max := t.insertable(len(a.req.Prompt))
	if max <= 0 {
		return 0, false
	}
	if !t.breaker.Allow() {
		// Tier breaker open: degrade to cold without touching the
		// backend — no lookup, and (for a remote tier) no dial.
		s.rec.prefixSkips.Add(1)
		return 0, false
	}
	match, err := t.backend.Lookup(a.req.Seed, a.req.Prompt, max)
	if err != nil {
		s.rec.prefixErrors.Add(1)
		t.breaker.Failure()
		return 0, false
	}
	if match == nil || match.Tokens <= 0 {
		t.breaker.Success() // a miss is still a healthy tier answering
		return 0, false
	}
	defer match.Release()
	sess, err := s.restorePrefixSession(backend, match)
	var tok int
	if err == nil {
		tok, err = sess.ResumePrefill(a.req.Prompt, match.Tokens)
	}
	if err != nil {
		s.rec.prefixErrors.Add(1)
		t.breaker.Failure()
		return 0, false
	}
	t.breaker.Success()
	a.sess = sess
	// Extend the cached prefix past the matched blocks (the index
	// builds only the blocks it is missing).
	s.insertPrefix(a)
	return tok, true
}

// restorePrefixSession rebuilds a session whose first match.Tokens
// prompt positions are already quantized: each block's frames are
// decoded and concatenated per (layer, head), then restored into
// prefix-shareable attention heads.
func (s *Server) restorePrefixSession(backend attention.Backend, match *PrefixMatch) (*model.Session, error) {
	pb, ok := backend.(attention.PrefixBackend)
	if !ok {
		return nil, fmt.Errorf("serve: backend %s cannot restore prefix pages", backend.Name())
	}
	spec := s.cfg.Spec
	type cell struct{ k, v *quant.Tensor }
	grid := make([][]cell, spec.Layers)
	for l := range grid {
		grid[l] = make([]cell, spec.Heads)
	}
	for bi, blk := range match.Blocks {
		if len(blk) != spec.Layers*spec.Heads {
			return nil, fmt.Errorf("serve: prefix block %d carries %d frames, want %d",
				bi, len(blk), spec.Layers*spec.Heads)
		}
		for _, f := range blk {
			l, h := int(f.Layer), int(f.Head)
			if l >= spec.Layers || h >= spec.Heads {
				return nil, fmt.Errorf("serve: prefix frame for (layer %d, head %d) outside %d×%d",
					l, h, spec.Layers, spec.Heads)
			}
			k, v, tail, err := f.Tensors()
			if err != nil {
				return nil, err
			}
			if tail.Rows != 0 {
				return nil, fmt.Errorf("serve: prefix page with a %d-row FP16 tail", tail.Rows)
			}
			c := &grid[l][h]
			if c.k == nil {
				c.k, c.v = k, v
				continue
			}
			if err := c.k.AppendRows(k); err != nil {
				return nil, err
			}
			if err := c.v.AppendRowBlocks(v); err != nil {
				return nil, err
			}
		}
	}
	heads := make([][]attention.Head, spec.Layers)
	for l := range heads {
		row := make([]attention.Head, spec.Heads)
		for h := range row {
			c := grid[l][h]
			if c.k == nil || c.k.Rows != match.Tokens {
				rows := 0
				if c.k != nil {
					rows = c.k.Rows
				}
				return nil, fmt.Errorf("serve: prefix pages cover %d of %d tokens for (layer %d, head %d)",
					rows, match.Tokens, l, h)
			}
			hd, err := pb.RestorePrefixHead(spec.HeadDim, c.k, c.v)
			if err != nil {
				return nil, err
			}
			row[h] = hd
		}
		heads[l] = row
	}
	return s.m.RestoreSession(backend, heads)
}

// insertPrefix offers a freshly prefilled (or resumed) session's pages
// to the tier. The build callback exports each missing block's
// Π-aligned page span from every head; failures are counted, never
// propagated to the request.
func (s *Server) insertPrefix(a *active) {
	t := s.prefix
	if t == nil || a.sess == nil {
		return
	}
	upTo := t.insertable(len(a.req.Prompt))
	if upTo <= 0 {
		return
	}
	if !t.breaker.Allow() {
		s.rec.prefixSkips.Add(1)
		return
	}
	spec := s.cfg.Spec
	_, err := t.backend.Insert(a.req.Seed, a.req.Prompt, upTo, func(lo, hi int) ([]*netsim.KVFrame, error) {
		frames := make([]*netsim.KVFrame, 0, spec.Layers*spec.Heads)
		for l := 0; l < spec.Layers; l++ {
			for h := 0; h < spec.Heads; h++ {
				exp, ok := a.sess.Head(l, h).(attention.PrefixPageExporter)
				if !ok {
					return nil, fmt.Errorf("serve: head (%d,%d) cannot export prefix pages", l, h)
				}
				k, v, err := exp.ExportPrefixPages(lo, hi)
				if err != nil {
					return nil, err
				}
				// RequestID carries the block's start token index so
				// every receiver can place the page without context.
				f, err := netsim.FrameFromTensors(uint64(lo), l, h, 0, k, v, nil)
				if err != nil {
					return nil, err
				}
				frames = append(frames, f)
			}
		}
		return frames, nil
	})
	if err != nil {
		s.rec.prefixErrors.Add(1)
		t.breaker.Failure()
		return
	}
	t.breaker.Success()
}
