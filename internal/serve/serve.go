// Package serve is the live serving runtime: where package sim prices
// requests with the analytic cost model, serve actually runs them —
// concurrent requests are admitted into bounded queues, routed across
// prefill workers by the simulator's placement policies, prefilled
// through the real numeric transformer, and then decoded by a
// continuous-batching loop that re-forms the decode batch every step
// over the homomorphic HACK kernels (or any other attention backend).
//
// The runtime is the execution counterpart of the FlowKV/KVServe-style
// serving loops the simulator models: per-request streamed token
// channels with context cancellation, load shedding when the admission
// queues fill, graceful drain on shutdown, and a live metrics snapshot
// (TTFT/TBT percentiles, queue depth, batch occupancy) built on the
// same nearest-rank percentile code as the simulator summaries.
//
// Token streams are deterministic per request: each request's attention
// backend derives all quantizer randomness from the request seed, so a
// request's tokens do not depend on which other requests share its
// batch. With a single prefill worker and serial decode stepping the
// whole runtime is byte-identical across reruns.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/sim"
)

// BackendFactory builds the per-request attention backend. The seed is
// the request's quantizer seed, so repeated submissions with the same
// seed generate identical tokens regardless of batching.
type BackendFactory func(seed int64) (attention.Backend, error)

// Config parameterizes a Server. The zero value of every field selects
// a sensible default (see New).
type Config struct {
	// Spec is the numeric model architecture. The zero Spec selects
	// model.Toy() — the multi-layer, multi-head instance the accuracy
	// experiments use. Catalog-scale specs (billions of parameters)
	// are not numerically servable on a CPU: passing one attempts to
	// materialize its synthetic weights. Serve Toy-sized specs here and
	// let Run/Serve price the catalog deployments.
	Spec model.Spec
	// ModelSeed seeds the transformer's deterministic synthetic weights.
	ModelSeed int64
	// Backend builds each request's attention state; nil selects the
	// paper's shipping HACK configuration (Π=64, SE+RQE, stochastic
	// rounding).
	Backend BackendFactory
	// Scheduler routes arrivals across the prefill workers, reusing the
	// simulator's placement policies: ShortestQueue (queued prompt
	// tokens), RoundRobin, FewestRequests, and LoadAware/SLOAware
	// (estimated drain including the in-flight prompt).
	Scheduler sim.Scheduler
	// PrefillWorkers is the number of concurrent prefill goroutines,
	// each with its own bounded admission queue. Default 2; 1 gives the
	// deterministic single-worker mode.
	PrefillWorkers int
	// MaxBatch caps the decode batch; the batcher re-forms the batch up
	// to this size every step. Default 8.
	MaxBatch int
	// QueueCap bounds each prefill worker's admission queue; a Submit
	// that finds its routed queue full is load-shed with ErrQueueFull.
	// Default 64.
	QueueCap int
	// MaxNewTokens caps tokens generated per request (requests may ask
	// for fewer). Default 32.
	MaxNewTokens int
	// DecodeParallelism is the goroutine fan-out when stepping the
	// decode batch (sessions are stepped independently; outputs are
	// identical at every setting). 0 sizes to the batch, 1 steps
	// serially — the deterministic single-worker mode.
	DecodeParallelism int

	// PrefixCacheBytes > 0 enables the shared-prefix KV tier with that
	// byte budget: requests whose prompts share a block-aligned prefix
	// (within one quantizer seed) reuse the cached quantized pages and
	// skip prefill over the matched span, streaming tokens that are
	// byte-identical to a cold prefill of the same (prompt, seed). The
	// attention backend must be prefix-shareable (the nil-Backend
	// default switches to the PrefixShareable HACK configuration when
	// the tier is enabled); note the prefix-shareable quantizer
	// discipline draws different stochastic-rounding streams than the
	// classic one, so enabling the tier changes token streams relative
	// to a classic server at the same seed (but stays deterministic
	// per (prompt, seed) and identical warm vs cold).
	PrefixCacheBytes int64
	// PrefixCachePageTokens is the tier's block granularity in tokens;
	// it must be a positive multiple of the backend's partition Π.
	// 0 selects Π itself.
	PrefixCachePageTokens int
	// PrefixCache plugs in an external tier backend (e.g. a remote
	// cache node via NewRemotePrefixCacheDialer) instead of the
	// in-process index; it is not closed on Shutdown. Setting it
	// enables the tier regardless of PrefixCacheBytes.
	PrefixCache PrefixCacheBackend
	// The prefix tier sits behind a circuit breaker: after
	// PrefixBreakerThreshold consecutive tier failures (default 3) the
	// server stops calling the backend entirely — every request takes
	// the cold path with no lookup, no insert, and, for a remote tier,
	// no per-request dial storm — then re-probes with single requests
	// after PrefixBreakerCooldown (default 1s). Requests never fail on
	// the tier either way; the breaker only bounds the cost of a dead
	// or flapping cache node.
	PrefixBreakerThreshold int
	PrefixBreakerCooldown  time.Duration

	// SpecK > 1 enables speculative decoding with that window size: each
	// decode step a cheap draft session proposes up to SpecK-1 tokens,
	// and the request's full-precision session verifies the whole window
	// (proposals plus the step's own token) in one batched attention
	// call, emitting the accepted prefix and rolling the rejected suffix
	// back out of the KV caches and quantizer streams. 0 and 1 disable.
	// Token streams stay byte-identical to the non-speculative server at
	// the same (prompt, seed): speculation changes how many kernel calls
	// produce the stream, never its bytes. Like the prefix tier,
	// enabling speculation needs the prefix-shareable discipline, so the
	// nil-Backend default switches to the PrefixShareable HACK
	// configuration (see the PrefixCacheBytes note on how that changes
	// streams relative to a classic server at the same seed). Requests
	// whose backend cannot batch-verify fall back to plain decoding.
	SpecK int
	// SpecDraft names the draft quantization class (DraftClasses lists
	// them); empty selects DefaultDraftClass — Π=128 nearest-rounding
	// HACK, the cheapest kernel class.
	SpecDraft string
}

// Request is one generation job.
type Request struct {
	// Prompt is the token-ID prompt; every ID must be in [0, vocab).
	Prompt []int
	// MaxNewTokens caps this request's generated tokens; 0 or anything
	// above the server's MaxNewTokens uses the server cap.
	MaxNewTokens int
	// EOS stops generation after the end-of-sequence token is emitted.
	// 0 (the zero value) and negative values disable the check: the
	// synthetic serving vocabulary reserves no stop token by default.
	EOS int
	// Seed seeds the request's attention-backend quantizers; the same
	// (prompt, seed) pair always streams identical tokens.
	Seed int64
}

// Token is one streamed generation event.
type Token struct {
	// Index is the token's 0-based position in the generated sequence.
	Index int `json:"index"`
	// ID is the generated token ID.
	ID int `json:"id"`
}

// Stream delivers one request's tokens. Tokens() yields them in order
// and is closed when the request finishes; Err() reports why (nil for a
// natural finish, the context error for a cancelled request, ErrDrained
// for a request aborted by a forced shutdown).
type Stream struct {
	tokens chan Token
	closed chan struct{}
	err    error
	once   sync.Once
}

// Tokens returns the ordered token channel. It is buffered to the
// request's token budget, so the runtime never blocks on (and never
// drops tokens for) a slow consumer.
func (s *Stream) Tokens() <-chan Token { return s.tokens }

// Err reports the request's terminal error. It is valid once Tokens()
// has been closed (and blocks until then).
func (s *Stream) Err() error {
	<-s.closed
	return s.err
}

// finish seals the stream exactly once.
func (s *Stream) finish(err error) {
	s.once.Do(func() {
		s.err = err
		close(s.tokens)
		close(s.closed)
	})
}

var (
	// ErrQueueFull is the load-shedding signal: the routed admission
	// queue is at capacity and the request was rejected, not queued.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining rejects submissions after Shutdown has begun.
	ErrDraining = errors.New("serve: server draining")
	// ErrDrained aborts in-flight requests when a Shutdown deadline
	// expires before they finish.
	ErrDrained = errors.New("serve: aborted by shutdown")
)

// active is one admitted request's runtime state as it moves from the
// admission queue through prefill into the decode batch.
type active struct {
	req    Request
	ctx    context.Context
	stream *Stream
	sess   *model.Session
	maxNew int
	last   int // last generated token (decode input)
	n      int // tokens emitted so far
	done   bool

	// draft is the request's speculation draft session, nil when
	// speculation is off or the request fell back to plain decoding.
	// specProposed/specAccepted count its draft tokens for the
	// per-request acceptance metric.
	draft        *model.Session
	specProposed int64
	specAccepted int64

	submitted time.Time
	started   time.Time // prefill start (queue delay = started - submitted)
	first     time.Time // first token emission
	lastTok   time.Time
	err       error // terminal error recorded by the step that finished it
}

// emit delivers one token to the stream; the channel is pre-sized to
// maxNew so the send cannot block or drop.
func (a *active) emit(id int, rec *recorder) {
	now := time.Now()
	if a.n == 0 {
		a.first = now
	}
	a.lastTok = now
	a.stream.tokens <- Token{Index: a.n, ID: id}
	a.n++
	a.last = id
	rec.tokens.Add(1)
}

// Server is the concurrent serving runtime. Build one with New; it is
// immediately accepting. Shut it down with Shutdown.
type Server struct {
	cfg     Config
	m       *model.Transformer
	backend BackendFactory

	mu       sync.Mutex // guards draining, rr and queue sends
	draining bool
	rr       int // round-robin cursor

	workers []*prefillWorker
	admit   chan *active // prefill → decode handoff

	forceCtx    context.Context // cancelled when a drain deadline expires
	forceCancel context.CancelFunc
	done        chan struct{} // closed when the runtime has fully drained

	// prefix is the shared-prefix KV tier, nil when disabled.
	prefix *prefixTier

	prefillWG sync.WaitGroup
	batchWG   sync.WaitGroup
	// remoteWG tracks SubmitPrefilled calls that passed the draining
	// check but have not yet entered the admit channel, so Shutdown
	// cannot close the channel underneath them.
	remoteWG sync.WaitGroup

	rec recorder
}

// New validates the configuration, applies defaults, builds the model,
// and starts the prefill workers and the decode batcher. The returned
// Server accepts submissions immediately.
func New(cfg Config) (*Server, error) {
	if cfg.Spec.Layers == 0 && cfg.Spec.Hidden == 0 {
		cfg.Spec = model.Toy()
	}
	if cfg.PrefillWorkers == 0 {
		cfg.PrefillWorkers = 2
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 8
	}
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 64
	}
	if cfg.MaxNewTokens == 0 {
		cfg.MaxNewTokens = 32
	}
	if cfg.PrefillWorkers < 0 || cfg.MaxBatch < 0 || cfg.QueueCap < 0 ||
		cfg.MaxNewTokens < 0 || cfg.DecodeParallelism < 0 {
		return nil, fmt.Errorf("serve: negative config (workers %d batch %d queue %d maxNew %d par %d)",
			cfg.PrefillWorkers, cfg.MaxBatch, cfg.QueueCap, cfg.MaxNewTokens, cfg.DecodeParallelism)
	}
	if !validScheduler(cfg.Scheduler) {
		return nil, fmt.Errorf("serve: unknown scheduler %d", cfg.Scheduler)
	}
	if cfg.PrefixCacheBytes < 0 || cfg.PrefixCachePageTokens < 0 {
		return nil, fmt.Errorf("serve: negative prefix cache config (bytes %d page %d)",
			cfg.PrefixCacheBytes, cfg.PrefixCachePageTokens)
	}
	if cfg.SpecK < 0 {
		return nil, fmt.Errorf("serve: negative speculation window %d", cfg.SpecK)
	}
	if cfg.SpecK > 1 {
		// Resolve the draft class now so a typo fails construction, not
		// every request.
		if _, err := draftConfig(cfg.SpecDraft, 0); err != nil {
			return nil, err
		}
	}
	usePrefix := cfg.PrefixCacheBytes > 0 || cfg.PrefixCache != nil
	useSpec := cfg.SpecK > 1
	if cfg.Backend == nil {
		cfg.Backend = func(seed int64) (attention.Backend, error) {
			c := attention.DefaultHACKConfig(seed)
			// The tier and the speculative verifier both need the
			// shared-prefix quantization discipline (position-stable
			// per-operand rounding streams).
			c.PrefixShareable = usePrefix || useSpec
			return attention.NewHACK(c)
		}
	}
	var prefix *prefixTier
	if usePrefix {
		var err error
		if prefix, err = newPrefixTier(cfg); err != nil {
			return nil, err
		}
	}
	m, err := model.NewTransformer(cfg.Spec, cfg.ModelSeed)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	s := &Server{
		cfg:     cfg,
		m:       m,
		backend: cfg.Backend,
		prefix:  prefix,
		admit:   make(chan *active, cfg.MaxBatch),
		done:    make(chan struct{}),
	}
	s.forceCtx, s.forceCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.PrefillWorkers; i++ {
		w := &prefillWorker{queue: make(chan *active, cfg.QueueCap)}
		s.workers = append(s.workers, w)
		s.prefillWG.Add(1)
		go s.runPrefill(w)
	}
	s.batchWG.Add(1)
	go s.runBatcher()
	return s, nil
}

func validScheduler(sc sim.Scheduler) bool {
	for _, v := range sim.AllSchedulers() {
		if sc == v {
			return true
		}
	}
	return false
}

// Spec returns the served numeric architecture.
func (s *Server) Spec() model.Spec { return s.cfg.Spec }

// Model returns the served transformer. Disaggregated nodes prefill
// against it and restore shipped sessions onto it; both sides hold the
// same (spec, seed) weights by construction.
func (s *Server) Model() *model.Transformer { return s.m }

// BackendFor builds the per-request attention backend for a quantizer
// seed — the same factory the prefill workers use, exposed so a decode
// node can restore heads under an identical configuration.
func (s *Server) BackendFor(seed int64) (attention.Backend, error) { return s.backend(seed) }

// Done returns a channel closed once the runtime has fully drained:
// every queue empty, every stream sealed, every goroutine exited.
func (s *Server) Done() <-chan struct{} { return s.done }

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Submit validates and admits one request, returning its token stream.
// A full routed queue load-sheds with ErrQueueFull; a draining server
// rejects with ErrDraining. The request's tokens stop flowing when ctx
// is cancelled.
func (s *Server) Submit(ctx context.Context, req Request) (*Stream, error) {
	if len(req.Prompt) == 0 {
		return nil, fmt.Errorf("serve: empty prompt")
	}
	for i, tok := range req.Prompt {
		if tok < 0 || tok >= s.cfg.Spec.Vocab {
			return nil, fmt.Errorf("serve: prompt token %d at position %d outside vocab [0, %d)",
				tok, i, s.cfg.Spec.Vocab)
		}
	}
	if req.MaxNewTokens < 0 {
		return nil, fmt.Errorf("serve: max new tokens %d must be >= 0", req.MaxNewTokens)
	}
	maxNew := req.MaxNewTokens
	if maxNew == 0 || maxNew > s.cfg.MaxNewTokens {
		maxNew = s.cfg.MaxNewTokens
	}
	a := &active{
		req:       req,
		ctx:       ctx,
		maxNew:    maxNew,
		stream:    &Stream{tokens: make(chan Token, maxNew), closed: make(chan struct{})},
		submitted: time.Now(),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rec.rejectedDrain.Add(1)
		return nil, ErrDraining
	}
	w := s.route(len(req.Prompt))
	// Count before the send: the worker decrements on dequeue, so
	// incrementing after could transiently drive the counters negative
	// and skew routing scores.
	w.queuedReqs.Add(1)
	w.queuedToks.Add(int64(len(req.Prompt)))
	select {
	case w.queue <- a:
		s.mu.Unlock()
	default:
		w.queuedReqs.Add(-1)
		w.queuedToks.Add(-int64(len(req.Prompt)))
		s.mu.Unlock()
		s.rec.rejectedFull.Add(1)
		return nil, ErrQueueFull
	}
	s.rec.submitted.Add(1)
	return a.stream, nil
}

// Shutdown gracefully drains the server: new submissions are rejected,
// queued and in-flight requests run to completion, and Shutdown returns
// once every stream has been sealed. If ctx expires first, remaining
// requests are aborted (their streams finish with ErrDrained) and
// Shutdown returns the context error. Shutdown is idempotent; later
// calls wait for the same drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		for _, w := range s.workers {
			close(w.queue)
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.prefillWG.Wait()
		s.remoteWG.Wait()
		if !already {
			close(s.admit)
		}
		s.batchWG.Wait()
		if !already && s.prefix != nil && s.prefix.owned {
			_ = s.prefix.backend.Close()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.forceCancel()
		<-done
		return ctx.Err()
	}
}

// forced reports whether the drain deadline has expired.
func (s *Server) forced() bool {
	select {
	case <-s.forceCtx.Done():
		return true
	default:
		return false
	}
}
