package serve

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentSoak is the acceptance soak: at least 64 requests
// submitted from concurrent goroutines, streamed concurrently, with
// zero dropped tokens — every stream must deliver exactly its token
// budget with contiguous indices — and every request's bytes must match
// a solo (unbatched) reference run of the same (prompt, seed). Run
// under -race in CI.
func TestConcurrentSoak(t *testing.T) {
	const (
		nReqs     = 64
		promptLen = 10
		maxNew    = 6
	)
	s := newTestServer(t, Config{
		PrefillWorkers: 4, MaxBatch: 16, QueueCap: nReqs, MaxNewTokens: maxNew,
		DecodeParallelism: 4,
	})
	vocab := s.Spec().Vocab

	got := make([][]int, nReqs)
	errs := make([]error, nReqs)
	var wg sync.WaitGroup
	for i := 0; i < nReqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(context.Background(), Request{
				Prompt: promptFor(i, promptLen, vocab), MaxNewTokens: maxNew, Seed: int64(i),
			})
			if err != nil {
				errs[i] = err
				return
			}
			for tok := range st.Tokens() {
				if tok.Index != len(got[i]) {
					errs[i] = fmt.Errorf("token index %d at position %d", tok.Index, len(got[i]))
					return
				}
				got[i] = append(got[i], tok.ID)
			}
			errs[i] = st.Err()
		}(i)
	}
	wg.Wait()

	for i := 0; i < nReqs; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if len(got[i]) != maxNew {
			t.Errorf("request %d: %d tokens, want %d (dropped tokens)", i, len(got[i]), maxNew)
		}
	}

	snap := s.Metrics()
	if snap.Submitted != nReqs || snap.Completed != nReqs {
		t.Errorf("snapshot submitted %d completed %d, want %d/%d",
			snap.Submitted, snap.Completed, nReqs, nReqs)
	}
	if want := int64(nReqs * maxNew); snap.TokensStreamed != want {
		t.Errorf("tokens streamed %d, want %d", snap.TokensStreamed, want)
	}

	// Spot-check batching invariance against solo runs: a request served
	// alone on a fresh single-worker server streams the same bytes it
	// streamed inside the 64-way soak.
	solo := newTestServer(t, Config{
		PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 1, MaxNewTokens: maxNew,
	})
	for _, i := range []int{0, 17, 42, 63} {
		st, err := solo.Submit(context.Background(), Request{
			Prompt: promptFor(i, promptLen, vocab), MaxNewTokens: maxNew, Seed: int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		ref := collect(t, st)
		if fmt.Sprint(ref) != fmt.Sprint(got[i]) {
			t.Errorf("request %d diverged from solo run:\n  soak %v\n  solo %v", i, got[i], ref)
		}
	}
}

// TestSoakWithCancellationChurn mixes completing, cancelled, and
// rejected requests under concurrency and requires the runtime to stay
// consistent: every stream seals, and the accounting adds up.
func TestSoakWithCancellationChurn(t *testing.T) {
	const nReqs = 48
	s := newTestServer(t, Config{
		PrefillWorkers: 2, MaxBatch: 8, QueueCap: nReqs, MaxNewTokens: 24,
	})
	vocab := s.Spec().Vocab
	var wg sync.WaitGroup
	var sealed, toks int64
	var mu sync.Mutex
	for i := 0; i < nReqs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if i%3 == 0 {
				// Cancel a third of the requests mid-flight.
				go func() {
					time.Sleep(time.Duration(i%7) * time.Millisecond)
					cancel()
				}()
			}
			st, err := s.Submit(ctx, Request{
				Prompt: promptFor(i, 8, vocab), MaxNewTokens: 24, Seed: int64(i)})
			if err != nil {
				return
			}
			n := 0
			for range st.Tokens() {
				n++
			}
			_ = st.Err() // must not hang
			mu.Lock()
			sealed++
			toks += int64(n)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	snap := s.Metrics()
	if snap.Completed+snap.Canceled+snap.Failed != sealed {
		t.Errorf("accounting: completed %d + canceled %d + failed %d != sealed %d",
			snap.Completed, snap.Canceled, snap.Failed, sealed)
	}
	if snap.Failed != 0 {
		t.Errorf("unexpected failures: %d", snap.Failed)
	}
	if snap.TokensStreamed != toks {
		t.Errorf("tokens streamed %d, but consumers saw %d", snap.TokensStreamed, toks)
	}
}
