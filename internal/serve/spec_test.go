package serve

import (
	"fmt"
	"testing"

	"github.com/hackkv/hack/internal/attention"
)

// prefixShareableFactory is the speculation-off reference backend: the
// same quantization discipline a SpecK server's nil-Backend default
// selects, so stream comparisons isolate speculation itself.
func prefixShareableFactory(seed int64) (attention.Backend, error) {
	c := attention.DefaultHACKConfig(seed)
	c.PrefixShareable = true
	return attention.NewHACK(c)
}

// TestSpeculationStreamsByteIdentical pins the tentpole invariant:
// for every draft class and window size, a speculative server's token
// streams are byte-identical to the non-speculative prefix-shareable
// server at the same (prompt, seed). Speculation may change when tokens
// are produced, never which.
func TestSpeculationStreamsByteIdentical(t *testing.T) {
	const nReq, promptLen, maxNew = 4, 12, 24
	base := Config{PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4,
		MaxNewTokens: maxNew, Backend: prefixShareableFactory}
	want := runAll(t, newTestServer(t, base), nReq, promptLen, maxNew)

	for _, draft := range []string{"pi128-nearest", "pi64-nearest", "pi128", "pi64"} {
		for _, k := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s-k%d", draft, k), func(t *testing.T) {
				cfg := Config{PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4,
					MaxNewTokens: maxNew, SpecK: k, SpecDraft: draft}
				if k <= 1 {
					// SpecK 1 disables speculation, and with it the
					// nil-Backend switch to the prefix-shareable
					// discipline; pin the discipline so the comparison
					// isolates speculation.
					cfg.Backend = prefixShareableFactory
				}
				s := newTestServer(t, cfg)
				got := runAll(t, s, nReq, promptLen, maxNew)
				for i := range want {
					if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
						t.Errorf("request %d diverged under speculation:\nspec %v\nbase %v",
							i, got[i], want[i])
					}
				}
				if k > 1 {
					sp := s.Metrics().Speculation
					if sp == nil {
						t.Fatal("speculation stats missing")
					}
					if sp.Windows == 0 {
						t.Error("no verify windows ran")
					}
					if sp.Fallbacks != 0 {
						t.Errorf("%d requests fell back to plain decoding", sp.Fallbacks)
					}
					if sp.Windows > 0 && sp.TokensPerStep < 1 {
						t.Errorf("tokens per step %.3f < 1", sp.TokensPerStep)
					}
				}
			})
		}
	}
}

// TestSpeculationAcceptanceDeterministic pins that acceptance behavior
// — not just the streams — reproduces per (prompt, seed): two identical
// speculative servers agree on every window/proposed/accepted count.
func TestSpeculationAcceptanceDeterministic(t *testing.T) {
	cfg := Config{PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4,
		MaxNewTokens: 24, SpecK: 4}
	s1 := newTestServer(t, cfg)
	first := runAll(t, s1, 4, 12, 24)
	m1 := s1.Metrics().Speculation
	s2 := newTestServer(t, cfg)
	second := runAll(t, s2, 4, 12, 24)
	m2 := s2.Metrics().Speculation
	for i := range first {
		if fmt.Sprint(first[i]) != fmt.Sprint(second[i]) {
			t.Errorf("request %d diverged across reruns:\n  %v\n  %v", i, first[i], second[i])
		}
	}
	if m1 == nil || m2 == nil {
		t.Fatal("speculation stats missing")
	}
	if m1.Windows != m2.Windows || m1.Proposed != m2.Proposed || m1.Accepted != m2.Accepted {
		t.Errorf("acceptance not deterministic: run1 {w %d p %d a %d} run2 {w %d p %d a %d}",
			m1.Windows, m1.Proposed, m1.Accepted, m2.Windows, m2.Proposed, m2.Accepted)
	}
	if m1.Proposed > 0 && m1.Accepted == 0 {
		t.Logf("note: zero acceptance (draft class never agrees with target on this workload)")
	}
}

// TestSpeculationClassicBackendFallsBack pins the degradation path: a
// SpecK server over a classic (non-prefix-shareable) backend serves
// identically to a plain classic server, counting fallbacks instead of
// failing requests.
func TestSpeculationClassicBackendFallsBack(t *testing.T) {
	classic := func(seed int64) (attention.Backend, error) {
		return attention.NewHACK(attention.DefaultHACKConfig(seed))
	}
	base := Config{PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4,
		MaxNewTokens: 16, Backend: classic}
	want := runAll(t, newTestServer(t, base), 3, 10, 16)

	cfg := base
	cfg.SpecK = 4
	s := newTestServer(t, cfg)
	got := runAll(t, s, 3, 10, 16)
	for i := range want {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Errorf("request %d diverged:\n  %v\n  %v", i, got[i], want[i])
		}
	}
	sp := s.Metrics().Speculation
	if sp == nil || sp.Fallbacks != 3 {
		t.Fatalf("speculation stats = %+v, want 3 fallbacks", sp)
	}
	if sp.Windows != 0 {
		t.Errorf("%d verify windows ran on a classic backend", sp.Windows)
	}
}

// TestSpeculationUnknownDraftClass pins construction-time validation.
func TestSpeculationUnknownDraftClass(t *testing.T) {
	if _, err := New(Config{SpecK: 4, SpecDraft: "nope"}); err == nil {
		t.Fatal("unknown draft class accepted")
	}
	if _, err := New(Config{SpecK: -1}); err == nil {
		t.Fatal("negative SpecK accepted")
	}
}
