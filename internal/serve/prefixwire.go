package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/hackkv/hack/internal/chaos"
	"github.com/hackkv/hack/internal/netsim"
)

// The wire-framed prefix-tier stub: a PrefixCacheServer exposes any
// PrefixCacheBackend (normally the in-process index) over the netsim
// wire protocol, and NewRemotePrefixCache is the client side — a
// PrefixCacheBackend a serving runtime plugs into Config.PrefixCache
// so several replicas share one cache node. Pages cross the link as
// the same KV frames the disaggregated handoff ships.
//
// Protocol (after the standard netsim handshake):
//
//	Lookup: client MsgPrefixLookup{seed, prompt, max} →
//	        server MsgPrefixHit{tokens, frames},
//	        then the matched frames as MsgFrame messages (block-major,
//	        ascending block), then MsgTransferEnd.
//	Insert: client MsgPrefixInsert{seed, prompt, upTo} →
//	        server one MsgPrefixNeed{lo, hi} per missing block, each
//	        answered by the client with that block's frames as
//	        MsgFrame messages + MsgTransferEnd (zero frames aborts);
//	        server closes with MsgPrefixDone{added, err}.
//	Stats:  client MsgPrefixStats (empty) →
//	        server MsgPrefixStats carrying a PrefixCacheStats JSON.
//
// This is a stub, deliberately simple: exchanges on one connection are
// strictly sequential. An Insert's need/answer round-trips do NOT hold
// the backing index's lock — the index reserves the missing blocks,
// releases its lock for the wire I/O, and relocks to attach the pages —
// so a slow insert on one connection never stalls lookups or inserts on
// the others. A production tier would additionally pipeline frames and
// shard the index; the contract and the framing are what this fixes.

// prefixLookupMsg is the MsgPrefixLookup payload.
type prefixLookupMsg struct {
	Seed      int64 `json:"seed"`
	Prompt    []int `json:"prompt"`
	MaxTokens int   `json:"max_tokens"`
}

// prefixHitMsg is the MsgPrefixHit payload. Tokens 0 is a miss (no
// frames follow).
type prefixHitMsg struct {
	Tokens int `json:"tokens"`
	Frames int `json:"frames"`
}

// prefixInsertMsg is the MsgPrefixInsert payload.
type prefixInsertMsg struct {
	Seed   int64 `json:"seed"`
	Prompt []int `json:"prompt"`
	UpTo   int   `json:"up_to"`
}

// prefixNeedMsg asks the client for one missing block's frames.
type prefixNeedMsg struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// prefixDoneMsg closes an insert exchange.
type prefixDoneMsg struct {
	Added int    `json:"added"`
	Err   string `json:"err,omitempty"`
}

func writeJSON(w io.Writer, t netsim.MsgType, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return netsim.WriteMessage(w, t, payload)
}

func writeFrame(w io.Writer, f *netsim.KVFrame) error {
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		return err
	}
	return netsim.WriteMessage(w, netsim.MsgFrame, buf.Bytes())
}

// readFrames consumes MsgFrame messages until MsgTransferEnd.
func readFrames(r io.Reader) ([]*netsim.KVFrame, error) {
	var frames []*netsim.KVFrame
	for {
		t, payload, err := netsim.ReadMessage(r)
		if err != nil {
			return nil, err
		}
		switch t {
		case netsim.MsgFrame:
			f := &netsim.KVFrame{}
			if _, err := f.ReadFrom(bytes.NewReader(payload)); err != nil {
				return nil, err
			}
			frames = append(frames, f)
		case netsim.MsgTransferEnd:
			return frames, nil
		default:
			return nil, fmt.Errorf("serve: prefix transfer got %v", t)
		}
	}
}

// PrefixCacheServer serves one PrefixCacheBackend over the netsim wire.
type PrefixCacheServer struct {
	backend PrefixCacheBackend
	self    netsim.Hello
	ln      net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ServePrefixCache starts a cache node on ln. Its handshake identity is
// self (Role is forced to "prefix-cache"); connecting clients must
// advertise a matching deployment (method, model seed, spec, vocab) or
// are refused. Each connection gets its own handler goroutine — see
// the stub note in the file comment for what stays serialized.
func ServePrefixCache(ln net.Listener, backend PrefixCacheBackend, self netsim.Hello) *PrefixCacheServer {
	self.Role = "prefix-cache"
	if self.NodeID == "" {
		self.NodeID = ln.Addr().String()
	}
	s := &PrefixCacheServer{backend: backend, self: self, ln: ln, conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener address.
func (s *PrefixCacheServer) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting, drops every active connection, and waits for
// the handler goroutines to exit. The backing cache is not closed (the
// server does not own it).
func (s *PrefixCacheServer) Close() error {
	s.mu.Lock()
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *PrefixCacheServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			_ = conn.Close()
		}()
	}
}

// checkPeer refuses clients from a different deployment: pages are only
// bit-compatible between runtimes serving the same model with the same
// method configuration.
func (s *PrefixCacheServer) checkPeer(peer netsim.Hello) error {
	if peer.Method != s.self.Method || peer.ModelSeed != s.self.ModelSeed ||
		peer.SpecName != s.self.SpecName || peer.Vocab != s.self.Vocab {
		return fmt.Errorf("serve: prefix cache serves (%s, %s, seed %d, vocab %d), client wants (%s, %s, seed %d, vocab %d)",
			s.self.Method, s.self.SpecName, s.self.ModelSeed, s.self.Vocab,
			peer.Method, peer.SpecName, peer.ModelSeed, peer.Vocab)
	}
	return nil
}

func (s *PrefixCacheServer) handleConn(conn net.Conn) {
	if _, err := netsim.AcceptHandshake(conn, s.self, s.checkPeer); err != nil {
		return
	}
	for {
		t, payload, err := netsim.ReadMessage(conn)
		if err != nil {
			return
		}
		switch t {
		case netsim.MsgPing:
			err = netsim.WriteMessage(conn, netsim.MsgPong, nil)
		case netsim.MsgPrefixLookup:
			err = s.handleLookup(conn, payload)
		case netsim.MsgPrefixInsert:
			err = s.handleInsert(conn, payload)
		case netsim.MsgPrefixStats:
			err = s.handleStats(conn)
		default:
			err = fmt.Errorf("serve: prefix cache got %v", t)
		}
		if err != nil {
			return
		}
	}
}

func (s *PrefixCacheServer) handleLookup(conn net.Conn, payload []byte) error {
	var req prefixLookupMsg
	if err := json.Unmarshal(payload, &req); err != nil {
		return err
	}
	match, err := s.backend.Lookup(req.Seed, req.Prompt, req.MaxTokens)
	if err != nil || match == nil {
		return writeJSON(conn, netsim.MsgPrefixHit, prefixHitMsg{})
	}
	defer match.Release()
	n := 0
	for _, blk := range match.Blocks {
		n += len(blk)
	}
	if err := writeJSON(conn, netsim.MsgPrefixHit, prefixHitMsg{Tokens: match.Tokens, Frames: n}); err != nil {
		return err
	}
	for _, blk := range match.Blocks {
		for _, f := range blk {
			if err := writeFrame(conn, f); err != nil {
				return err
			}
		}
	}
	return netsim.WriteMessage(conn, netsim.MsgTransferEnd, nil)
}

func (s *PrefixCacheServer) handleInsert(conn net.Conn, payload []byte) error {
	var req prefixInsertMsg
	if err := json.Unmarshal(payload, &req); err != nil {
		return err
	}
	var connErr error
	added, insErr := s.backend.Insert(req.Seed, req.Prompt, req.UpTo, func(lo, hi int) ([]*netsim.KVFrame, error) {
		if connErr != nil {
			return nil, connErr
		}
		if connErr = writeJSON(conn, netsim.MsgPrefixNeed, prefixNeedMsg{Lo: lo, Hi: hi}); connErr != nil {
			return nil, connErr
		}
		frames, err := readFrames(conn)
		if err != nil {
			connErr = err
			return nil, err
		}
		if len(frames) == 0 {
			return nil, errors.New("serve: client aborted block transfer")
		}
		return frames, nil
	})
	if connErr != nil {
		return connErr
	}
	done := prefixDoneMsg{Added: added}
	if insErr != nil {
		done.Err = insErr.Error()
	}
	return writeJSON(conn, netsim.MsgPrefixDone, done)
}

func (s *PrefixCacheServer) handleStats(conn net.Conn) error {
	st, err := s.backend.Stats()
	if err != nil {
		return err
	}
	return writeJSON(conn, netsim.MsgPrefixStats, st)
}

// remotePrefixCache is the client side: a PrefixCacheBackend over one
// wire connection, serialized by a mutex (one exchange in flight).
type remotePrefixCache struct {
	mu   sync.Mutex
	conn net.Conn
}

// NewRemotePrefixCache attaches to a prefix cache node over conn,
// running the handshake with self as this runtime's identity (Role is
// forced to "serve"). The returned backend serializes exchanges, so it
// is safe for concurrent use by the prefill workers; Close closes the
// connection.
func NewRemotePrefixCache(conn net.Conn, self netsim.Hello) (PrefixCacheBackend, error) {
	self.Role = "serve"
	peer, err := netsim.Handshake(conn, self)
	if err != nil {
		return nil, err
	}
	if peer.Role != "prefix-cache" {
		return nil, fmt.Errorf("serve: peer role %q, want prefix-cache", peer.Role)
	}
	return &remotePrefixCache{conn: conn}, nil
}

func (c *remotePrefixCache) Lookup(seed int64, prompt []int, maxTokens int) (*PrefixMatch, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeJSON(c.conn, netsim.MsgPrefixLookup, prefixLookupMsg{Seed: seed, Prompt: prompt, MaxTokens: maxTokens}); err != nil {
		return nil, err
	}
	t, payload, err := netsim.ReadMessage(c.conn)
	if err != nil {
		return nil, err
	}
	if t != netsim.MsgPrefixHit {
		return nil, fmt.Errorf("serve: prefix lookup answered with %v", t)
	}
	var hit prefixHitMsg
	if err := json.Unmarshal(payload, &hit); err != nil {
		return nil, err
	}
	if hit.Tokens == 0 {
		return nil, nil
	}
	frames, err := readFrames(c.conn)
	if err != nil {
		return nil, err
	}
	if len(frames) != hit.Frames {
		return nil, fmt.Errorf("serve: prefix lookup streamed %d frames, announced %d", len(frames), hit.Frames)
	}
	// Re-group block-major: the frame's RequestID carries its block's
	// start token index, and the server streams blocks in ascending
	// order.
	m := &PrefixMatch{Tokens: hit.Tokens}
	for _, f := range frames {
		if n := len(m.Blocks); n == 0 || m.Blocks[n-1][0].RequestID != f.RequestID {
			m.Blocks = append(m.Blocks, nil)
		}
		m.Blocks[len(m.Blocks)-1] = append(m.Blocks[len(m.Blocks)-1], f)
	}
	// The frames are private copies; nothing remote stays pinned.
	return m, nil
}

func (c *remotePrefixCache) Insert(seed int64, prompt []int, upTo int, build func(lo, hi int) ([]*netsim.KVFrame, error)) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeJSON(c.conn, netsim.MsgPrefixInsert, prefixInsertMsg{Seed: seed, Prompt: prompt, UpTo: upTo}); err != nil {
		return 0, err
	}
	var buildErr error
	for {
		t, payload, err := netsim.ReadMessage(c.conn)
		if err != nil {
			return 0, err
		}
		switch t {
		case netsim.MsgPrefixNeed:
			var need prefixNeedMsg
			if err := json.Unmarshal(payload, &need); err != nil {
				return 0, err
			}
			frames, err := build(need.Lo, need.Hi)
			if err != nil {
				// Zero frames before MsgTransferEnd tells the server to
				// abort this insert.
				buildErr = err
				frames = nil
			}
			for _, f := range frames {
				if err := writeFrame(c.conn, f); err != nil {
					return 0, err
				}
			}
			if err := netsim.WriteMessage(c.conn, netsim.MsgTransferEnd, nil); err != nil {
				return 0, err
			}
		case netsim.MsgPrefixDone:
			var done prefixDoneMsg
			if err := json.Unmarshal(payload, &done); err != nil {
				return 0, err
			}
			if buildErr != nil {
				return done.Added, buildErr
			}
			if done.Err != "" {
				return done.Added, errors.New(done.Err)
			}
			return done.Added, nil
		default:
			return 0, fmt.Errorf("serve: prefix insert got %v", t)
		}
	}
}

func (c *remotePrefixCache) Stats() (PrefixCacheStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := netsim.WriteMessage(c.conn, netsim.MsgPrefixStats, nil); err != nil {
		return PrefixCacheStats{}, err
	}
	t, payload, err := netsim.ReadMessage(c.conn)
	if err != nil {
		return PrefixCacheStats{}, err
	}
	if t != netsim.MsgPrefixStats {
		return PrefixCacheStats{}, fmt.Errorf("serve: prefix stats answered with %v", t)
	}
	var st PrefixCacheStats
	if err := json.Unmarshal(payload, &st); err != nil {
		return PrefixCacheStats{}, err
	}
	return st, nil
}

func (c *remotePrefixCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// redialPrefixCache wraps the single-connection client with lazy
// dialing and redial-on-failure: an exchange error closes the (now
// protocol-desynced) connection and the next exchange dials fresh,
// so one cache-node restart or network blip does not poison the
// backend forever the way a raw NewRemotePrefixCache conn does.
type redialPrefixCache struct {
	addr    string
	self    netsim.Hello
	timeout time.Duration
	dialer  chaos.Dialer

	mu     sync.Mutex
	cur    *remotePrefixCache
	closed bool
}

// NewRemotePrefixCacheDialer returns a PrefixCacheBackend client for
// the cache node at addr that dials lazily and redials after failures.
// timeout bounds each dial+handshake and each exchange (default 5s);
// dialer replaces the network dialer (nil means the real network — the
// hook chaos harnesses use to inject link faults). The returned backend
// serializes exchanges and is safe for concurrent use.
func NewRemotePrefixCacheDialer(addr string, self netsim.Hello, timeout time.Duration, dialer chaos.Dialer) PrefixCacheBackend {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &redialPrefixCache{addr: addr, self: self, timeout: timeout, dialer: dialer}
}

// client returns the live connection, dialing if needed. Caller holds mu.
func (c *redialPrefixCache) client() (*remotePrefixCache, error) {
	if c.closed {
		return nil, errors.New("serve: prefix cache client closed")
	}
	if c.cur != nil {
		return c.cur, nil
	}
	dialer := c.dialer
	if dialer == nil {
		dialer = func(network, addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout(network, addr, timeout)
		}
	}
	conn, err := dialer("tcp", c.addr, c.timeout)
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(time.Now().Add(c.timeout))
	cl, err := NewRemotePrefixCache(conn, c.self)
	if err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	c.cur = cl.(*remotePrefixCache)
	return c.cur, nil
}

// drop discards the connection after a failed exchange (its protocol
// state is unknown; resyncing mid-stream is not possible). Caller
// holds mu.
func (c *redialPrefixCache) drop() {
	if c.cur != nil {
		_ = c.cur.conn.Close()
		c.cur = nil
	}
}

// exchange runs one op against the live connection under a deadline,
// dropping the connection on failure so the next exchange redials.
func (c *redialPrefixCache) exchange(op func(*remotePrefixCache) error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	cl, err := c.client()
	if err != nil {
		return err
	}
	_ = cl.conn.SetDeadline(time.Now().Add(c.timeout))
	err = op(cl)
	if err != nil {
		c.drop()
		return err
	}
	_ = cl.conn.SetDeadline(time.Time{})
	return nil
}

func (c *redialPrefixCache) Lookup(seed int64, prompt []int, maxTokens int) (m *PrefixMatch, err error) {
	err = c.exchange(func(cl *remotePrefixCache) error {
		m, err = cl.Lookup(seed, prompt, maxTokens)
		return err
	})
	return m, err
}

func (c *redialPrefixCache) Insert(seed int64, prompt []int, upTo int, build func(lo, hi int) ([]*netsim.KVFrame, error)) (n int, err error) {
	err = c.exchange(func(cl *remotePrefixCache) error {
		n, err = cl.Insert(seed, prompt, upTo, build)
		return err
	})
	return n, err
}

func (c *redialPrefixCache) Stats() (st PrefixCacheStats, err error) {
	err = c.exchange(func(cl *remotePrefixCache) error {
		st, err = cl.Stats()
		return err
	})
	return st, err
}

func (c *redialPrefixCache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.cur != nil {
		err := c.cur.conn.Close()
		c.cur = nil
		return err
	}
	return nil
}
