package serve

import (
	"context"
	"fmt"

	"github.com/hackkv/hack/internal/model"
)

// SubmitPrefilled admits a request whose prefill already ran on a remote
// prefill instance — the decode half of the disaggregated split. sess is
// the session restored from the shipped KV cache (model.RestoreSession
// over heads rebuilt by the attention backend), and firstTok is the
// prefill-stage token the remote instance produced. The token is emitted
// on the returned stream immediately and the request enters the decode
// batch directly, bypassing the prefill workers; the same continuous-
// batching loop then steps it alongside locally-prefilled requests.
//
// The call blocks while the decode batch is saturated (the admit
// channel's backpressure), which is what bounds a router's in-flight
// transfers to this replica.
func (s *Server) SubmitPrefilled(ctx context.Context, req Request, sess *model.Session, firstTok int) (*Stream, error) {
	if sess == nil {
		return nil, fmt.Errorf("serve: prefilled submission without a session")
	}
	if firstTok < 0 || firstTok >= s.cfg.Spec.Vocab {
		return nil, fmt.Errorf("serve: prefilled first token %d outside vocab [0, %d)", firstTok, s.cfg.Spec.Vocab)
	}
	if req.MaxNewTokens < 0 {
		return nil, fmt.Errorf("serve: max new tokens %d must be >= 0", req.MaxNewTokens)
	}
	maxNew := req.MaxNewTokens
	if maxNew == 0 || maxNew > s.cfg.MaxNewTokens {
		maxNew = s.cfg.MaxNewTokens
	}
	a := &active{
		req:    req,
		ctx:    ctx,
		maxNew: maxNew,
		sess:   sess,
		stream: &Stream{tokens: make(chan Token, maxNew), closed: make(chan struct{})},
	}

	// The remoteWG handoff keeps Shutdown from closing the admit channel
	// underneath a submission that already passed the draining check.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rec.rejectedDrain.Add(1)
		return nil, ErrDraining
	}
	s.remoteWG.Add(1)
	s.mu.Unlock()
	defer s.remoteWG.Done()

	s.rec.submitted.Add(1)
	s.rec.remotePrefills.Add(1)
	a.emit(firstTok, &s.rec)
	if a.n >= a.maxNew || (req.EOS > 0 && firstTok == req.EOS) {
		s.finishRequest(a, nil)
		return a.stream, nil
	}
	select {
	case s.admit <- a:
		return a.stream, nil
	case <-ctx.Done():
		s.finishRequest(a, ctx.Err())
		return a.stream, ctx.Err()
	case <-s.forceCtx.Done():
		s.finishRequest(a, ErrDrained)
		return a.stream, ErrDrained
	}
}
