package serve

import (
	"net"
	"strings"
	"testing"
	"time"

	"github.com/hackkv/hack/internal/chaos"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
)

// TestRemotePrefixCacheDialerRedials is the regression for the poisoned
// single-connection client: a cache-node restart must cost one failed
// exchange, not every exchange forever.
func TestRemotePrefixCacheDialerRedials(t *testing.T) {
	spec := model.Toy()
	hello := netsim.Hello{Method: "HACK", SpecName: "toy", Vocab: spec.Vocab}
	shared, err := NewPrefixCache(1<<20, 8, 8, prefixBytesPerToken(spec, 8, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	node := ServePrefixCache(ln, shared, hello)

	client := NewRemotePrefixCacheDialer(addr, hello, 2*time.Second, nil)
	defer client.Close()
	if _, err := client.Stats(); err != nil {
		t.Fatalf("stats against live node: %v", err)
	}

	// Kill the node: the next exchange fails (and drops the conn)...
	node.Close()
	if _, err := client.Stats(); err == nil {
		t.Fatal("stats against dead node succeeded")
	}

	// ...and once the node is back on the same address, the client
	// redials by itself.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	node2 := ServePrefixCache(ln2, shared, hello)
	defer node2.Close()
	st, err := client.Stats()
	if err != nil {
		t.Fatalf("stats after node restart: %v", err)
	}
	if st.BytesBudget <= 0 {
		t.Fatalf("stats after restart look wrong: %+v", st)
	}
}

// TestPrefixBreakerColdFallback kills the remote prefix tier outright
// and requires graceful degradation: every request completes via cold
// prefill, the tier breaker opens after the threshold, and — the
// dial-storm bound — the dead node is dialed only until the breaker
// trips, not once per request.
func TestPrefixBreakerColdFallback(t *testing.T) {
	// A dead address: bind a port, then free it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := ln.Addr().String()
	ln.Close()

	inj := chaos.NewInjector(1) // zero fault plan: used only to count dials
	hello := netsim.Hello{Method: "HACK", SpecName: "toy", Vocab: model.Toy().Vocab}
	cfg := prefixServerConfig(0)
	cfg.PrefixCache = NewRemotePrefixCacheDialer(deadAddr, hello, 500*time.Millisecond, inj.Dialer(nil))
	cfg.PrefixBreakerThreshold = 2
	cfg.PrefixBreakerCooldown = time.Hour // no re-probe inside the test
	s := newTestServer(t, cfg)

	vocab := s.Spec().Vocab
	var streams [][]int
	for i := 0; i < 5; i++ {
		streams = append(streams, submitOne(t, s, promptFor(i, 21, vocab), int64(i)))
	}
	for i, out := range streams {
		if len(out) == 0 {
			t.Fatalf("request %d produced no tokens under a dead tier", i)
		}
	}

	pc := s.Metrics().PrefixCache
	if pc == nil {
		t.Fatal("prefix tier enabled but snapshot carries no stats")
	}
	if pc.Breaker.State != "open" {
		t.Fatalf("breaker %q after a dead tier, want open (%+v)", pc.Breaker.State, pc)
	}
	if pc.Errors < 2 {
		t.Fatalf("tier errors %d, want >= threshold 2 (%+v)", pc.Errors, pc)
	}
	if pc.ColdFallbacks == 0 {
		t.Fatalf("no cold fallbacks recorded after the trip (%+v)", pc)
	}
	// Each request makes up to two tier calls (lookup + insert); only
	// the pre-trip calls may dial. Threshold 2 → exactly 2 dials, not
	// one per request.
	if dials := inj.Stats().Dials; dials != 2 {
		t.Fatalf("dead tier dialed %d times, want 2 (breaker should stop the storm)", dials)
	}

	// The breaker surfaces in the Prometheus exposition.
	var b strings.Builder
	if err := s.Metrics().WritePrometheus(&b, "hackserved"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"hackserved_prefix_breaker_state 1",
		"hackserved_prefix_breaker_trips_total 1",
		"hackserved_prefix_cold_fallbacks_total",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
