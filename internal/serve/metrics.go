package serve

import (
	"sync"
	"sync/atomic"

	"github.com/hackkv/hack/internal/chaos"
	"github.com/hackkv/hack/internal/metrics"
)

// maxSamples bounds each latency reservoir; once full, new samples
// overwrite the oldest so snapshots track recent behavior at O(1)
// memory under sustained load.
const maxSamples = 4096

// ring is a bounded latency sample buffer.
type ring struct {
	xs   []float64
	next int
}

func (r *ring) add(x float64) {
	if len(r.xs) < maxSamples {
		r.xs = append(r.xs, x)
		return
	}
	r.xs[r.next] = x
	r.next = (r.next + 1) % maxSamples
}

func (r *ring) snapshot() []float64 { return append([]float64(nil), r.xs...) }

// recorder aggregates the live serving metrics: lock-free counters on
// the hot paths, and mutex-guarded bounded reservoirs for the latency
// percentiles.
type recorder struct {
	submitted      atomic.Int64
	rejectedFull   atomic.Int64
	rejectedDrain  atomic.Int64
	completed      atomic.Int64
	canceled       atomic.Int64
	failed         atomic.Int64
	tokens         atomic.Int64
	remotePrefills atomic.Int64
	steps          atomic.Int64
	batchSizeSum   atomic.Int64

	batchNow atomic.Int64
	kvNow    atomic.Int64
	kvPeak   atomic.Int64

	// prefixErrors counts shared-prefix tier failures the server
	// absorbed by falling back to a cold prefill; prefixSkips counts
	// tier calls refused up front by its open circuit breaker.
	prefixErrors atomic.Int64
	prefixSkips  atomic.Int64

	// Speculative decoding: verify windows run, draft tokens proposed
	// and accepted, tokens emitted by verify steps, and requests that
	// fell back to plain decoding (draft setup failure or a backend
	// that cannot batch-verify).
	specWindows   atomic.Int64
	specProposed  atomic.Int64
	specAccepted  atomic.Int64
	specEmitted   atomic.Int64
	specFallbacks atomic.Int64

	mu        sync.Mutex
	ttfts     ring
	tbts      ring
	queueDs   ring
	specRates ring
}

func (r *recorder) ttft(s float64) {
	r.mu.Lock()
	r.ttfts.add(s)
	r.mu.Unlock()
}

func (r *recorder) tbt(s float64) {
	r.mu.Lock()
	r.tbts.add(s)
	r.mu.Unlock()
}

func (r *recorder) queueDelay(s float64) {
	r.mu.Lock()
	r.queueDs.add(s)
	r.mu.Unlock()
}

// specRate records one finished request's draft acceptance rate.
func (r *recorder) specRate(s float64) {
	r.mu.Lock()
	r.specRates.add(s)
	r.mu.Unlock()
}

// kv records the batch's resident KV-cache bytes after a decode step,
// tracking the peak. Only the batcher writes, so the read-then-store
// max needs no CAS loop.
func (r *recorder) kv(bytes int64) {
	r.kvNow.Store(bytes)
	if bytes > r.kvPeak.Load() {
		r.kvPeak.Store(bytes)
	}
}

// step records one decode iteration's batch size.
func (r *recorder) step(batch int) {
	r.steps.Add(1)
	r.batchSizeSum.Add(int64(batch))
	r.batchNow.Store(int64(batch))
}

// Snapshot is one point-in-time view of the runtime's serving metrics.
// Percentiles are nearest-rank (the simulator's definition) over the
// most recent completions.
type Snapshot struct {
	// Request accounting.
	Submitted        int64 `json:"submitted"`
	RejectedFull     int64 `json:"rejected_queue_full"`
	RejectedDraining int64 `json:"rejected_draining"`
	Completed        int64 `json:"completed"`
	Canceled         int64 `json:"canceled"`
	Failed           int64 `json:"failed"`
	TokensStreamed   int64 `json:"tokens_streamed"`
	// RemotePrefills counts requests admitted via SubmitPrefilled — the
	// disaggregated path where prefill ran on another instance.
	RemotePrefills int64 `json:"remote_prefills"`

	// Continuous-batching state.
	DecodeSteps    int64   `json:"decode_steps"`
	BatchNow       int     `json:"batch_now"`
	QueueDepth     int     `json:"queue_depth"`
	BatchOccupancy float64 `json:"batch_occupancy"`
	KVBytesNow     int64   `json:"kv_bytes_now"`
	KVBytesPeak    int64   `json:"kv_bytes_peak"`

	// PrefixCache reports the shared-prefix KV tier, nil when the tier
	// is disabled (so existing JSON consumers see no new field).
	PrefixCache *PrefixCacheStats `json:"prefix_cache,omitempty"`

	// Speculation reports speculative decoding, nil when SpecK <= 1.
	Speculation *SpeculationStats `json:"speculation,omitempty"`

	// Latency percentiles, in seconds.
	TTFT       metrics.PercentileSummary `json:"ttft_s"`
	TBT        metrics.PercentileSummary `json:"tbt_s"`
	QueueDelay metrics.PercentileSummary `json:"queue_delay_s"`

	// Draining reports whether shutdown has begun.
	Draining bool `json:"draining"`
}

// SpeculationStats is the Snapshot's view of speculative decoding.
type SpeculationStats struct {
	// K and Draft echo the configuration (window size, draft class).
	K     int    `json:"k"`
	Draft string `json:"draft"`
	// Windows counts batched verify calls; Proposed/Accepted count
	// draft tokens offered and accepted by them.
	Windows  int64 `json:"windows"`
	Proposed int64 `json:"proposed"`
	Accepted int64 `json:"accepted"`
	// Fallbacks counts requests that degraded to plain decoding.
	Fallbacks int64 `json:"fallbacks"`
	// AcceptanceRate is Accepted/Proposed over the server's lifetime;
	// TokensPerStep is the mean tokens emitted per verify call (the
	// speculation speedup's numerator).
	AcceptanceRate float64 `json:"acceptance_rate"`
	TokensPerStep  float64 `json:"tokens_per_step"`
	// RequestAcceptance summarizes per-request acceptance rates over
	// recent completions.
	RequestAcceptance metrics.PercentileSummary `json:"request_acceptance"`
}

// Metrics returns the current serving snapshot.
func (s *Server) Metrics() Snapshot {
	r := &s.rec
	out := Snapshot{
		Submitted:        r.submitted.Load(),
		RejectedFull:     r.rejectedFull.Load(),
		RejectedDraining: r.rejectedDrain.Load(),
		Completed:        r.completed.Load(),
		Canceled:         r.canceled.Load(),
		Failed:           r.failed.Load(),
		TokensStreamed:   r.tokens.Load(),
		RemotePrefills:   r.remotePrefills.Load(),
		DecodeSteps:      r.steps.Load(),
		BatchNow:         int(r.batchNow.Load()),
		QueueDepth:       s.queueDepth(),
		KVBytesNow:       r.kvNow.Load(),
		KVBytesPeak:      r.kvPeak.Load(),
		Draining:         s.Draining(),
	}
	if out.DecodeSteps > 0 {
		out.BatchOccupancy = float64(r.batchSizeSum.Load()) / float64(out.DecodeSteps)
	}
	if s.prefix != nil {
		var st PrefixCacheStats
		// Behind an open breaker the backend may be unreachable; the
		// snapshot must not pay a dial (or count a spurious error) just
		// to render stats.
		if s.prefix.breaker.State() == chaos.BreakerClosed {
			var err error
			if st, err = s.prefix.backend.Stats(); err != nil {
				r.prefixErrors.Add(1)
				s.prefix.breaker.Failure()
			}
		}
		st.Errors = r.prefixErrors.Load()
		st.ColdFallbacks = r.prefixSkips.Load()
		st.Breaker = s.prefix.breaker.Status()
		out.PrefixCache = &st
	}
	if s.cfg.SpecK > 1 {
		sp := &SpeculationStats{
			K:         s.cfg.SpecK,
			Draft:     s.cfg.SpecDraft,
			Windows:   r.specWindows.Load(),
			Proposed:  r.specProposed.Load(),
			Accepted:  r.specAccepted.Load(),
			Fallbacks: r.specFallbacks.Load(),
		}
		if sp.Draft == "" {
			sp.Draft = DefaultDraftClass
		}
		if sp.Proposed > 0 {
			sp.AcceptanceRate = float64(sp.Accepted) / float64(sp.Proposed)
		}
		if sp.Windows > 0 {
			sp.TokensPerStep = float64(r.specEmitted.Load()) / float64(sp.Windows)
		}
		r.mu.Lock()
		rates := r.specRates.snapshot()
		r.mu.Unlock()
		sp.RequestAcceptance = metrics.Summarize(rates)
		out.Speculation = sp
	}
	r.mu.Lock()
	ttfts, tbts, qds := r.ttfts.snapshot(), r.tbts.snapshot(), r.queueDs.snapshot()
	r.mu.Unlock()
	out.TTFT = metrics.Summarize(ttfts)
	out.TBT = metrics.Summarize(tbts)
	out.QueueDelay = metrics.Summarize(qds)
	return out
}
