package serve

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"time"

	"github.com/hackkv/hack/internal/sim"
)

// prefillWorker is one prefill goroutine's admission queue plus the
// load counters the router scores. queuedToks/queuedReqs count waiting
// work; inflightToks is the prompt currently being prefilled (0 when
// idle).
type prefillWorker struct {
	queue       chan *active
	queuedToks  atomic.Int64
	queuedReqs  atomic.Int64
	inflightTok atomic.Int64
}

// route picks the prefill worker for an arriving prompt, mirroring the
// simulator's placement policies (sim.pickPrefill): ShortestQueue by
// queued prompt tokens, RoundRobin by cursor, FewestRequests by queued
// request count, and LoadAware/SLOAware by estimated drain — queued
// plus in-flight tokens. (SLOAware's per-request compression-class
// admission is a cost-model construct; at the numeric runtime it routes
// like LoadAware.) Called with s.mu held.
func (s *Server) route(promptLen int) *prefillWorker {
	best := 0
	switch s.cfg.Scheduler {
	case sim.RoundRobin:
		best = s.rr % len(s.workers)
		s.rr++
	case sim.FewestRequests:
		bestN := int64(math.MaxInt64)
		for i, w := range s.workers {
			n := w.queuedReqs.Load()
			if w.inflightTok.Load() > 0 {
				n++
			}
			if n < bestN {
				best, bestN = i, n
			}
		}
	case sim.LoadAware, sim.SLOAware:
		bestScore := int64(math.MaxInt64)
		for i, w := range s.workers {
			score := w.queuedToks.Load() + w.inflightTok.Load()
			if score < bestScore {
				best, bestScore = i, score
			}
		}
	default: // ShortestQueue
		bestToks := int64(math.MaxInt64)
		for i, w := range s.workers {
			if toks := w.queuedToks.Load(); toks < bestToks {
				best, bestToks = i, toks
			}
		}
	}
	return s.workers[best]
}

// queueDepth sums the waiting requests across all admission queues.
func (s *Server) queueDepth() int {
	var n int64
	for _, w := range s.workers {
		n += w.queuedReqs.Load()
	}
	return int(n)
}

// runPrefill drains one admission queue: for each request it builds the
// per-request backend and session, runs the real prefill kernel over
// the prompt, streams the first token, and hands the session to the
// decode batcher. The loop exits when Shutdown closes the queue and the
// remaining entries have drained.
func (s *Server) runPrefill(w *prefillWorker) {
	defer s.prefillWG.Done()
	for a := range w.queue {
		w.queuedReqs.Add(-1)
		w.queuedToks.Add(-int64(len(a.req.Prompt)))
		w.inflightTok.Store(int64(len(a.req.Prompt)))
		s.prefillOne(a)
		w.inflightTok.Store(0)
	}
}

// prefillOne runs one request's prefill and either seals its stream (on
// cancellation or error) or forwards it to the decode batcher.
func (s *Server) prefillOne(a *active) {
	if err := a.ctx.Err(); err != nil {
		s.rec.canceled.Add(1)
		a.stream.finish(err)
		return
	}
	if s.forced() {
		s.rec.canceled.Add(1)
		a.stream.finish(ErrDrained)
		return
	}
	a.started = time.Now()
	s.rec.queueDelay(a.started.Sub(a.submitted).Seconds())

	backend, err := s.backend(a.req.Seed)
	var tok int
	var warm bool
	if err == nil && s.prefix != nil {
		// Warm path: restore the longest cached prompt prefix and
		// resume prefill over the suffix only. Tier failures fall
		// through to the cold path below.
		tok, warm = s.tryPrefixPrefill(a, backend)
	}
	if err == nil && !warm {
		a.sess, err = s.m.NewSession(backend)
		if err == nil {
			tok, err = a.sess.Prefill(a.req.Prompt)
		}
		if err == nil {
			s.insertPrefix(a)
		}
	}
	if err != nil {
		s.rec.failed.Add(1)
		a.stream.finish(err)
		return
	}
	a.emit(tok, &s.rec)
	s.rec.ttft(time.Since(a.submitted).Seconds())
	if a.n >= a.maxNew || (a.req.EOS > 0 && tok == a.req.EOS) {
		s.finishRequest(a, nil)
		return
	}
	if s.cfg.SpecK > 1 {
		// Speculation: build and prefill the draft session for the
		// decode phase. Failures (and backends that cannot batch-verify)
		// degrade to plain decoding rather than fail the request.
		if !a.sess.SupportsVerify() {
			s.rec.specFallbacks.Add(1)
		} else if draft, derr := s.newDraftSession(a.req); derr == nil {
			a.draft = draft
		} else {
			s.rec.specFallbacks.Add(1)
		}
	}
	// Hand off to the decode batcher. The admit channel applies
	// backpressure: when the decode side is saturated, prefill blocks
	// here (and its queue fills behind it) until batch slots free up.
	s.admit <- a
}

// finishRequest seals a completed or aborted request's stream and
// records its terminal metrics.
func (s *Server) finishRequest(a *active, err error) {
	if a.specProposed > 0 {
		s.rec.specRate(float64(a.specAccepted) / float64(a.specProposed))
	}
	switch {
	case err == nil:
		s.rec.completed.Add(1)
		if a.n >= 2 {
			// Mean time between tokens over the decode phase.
			s.rec.tbt(a.lastTok.Sub(a.first).Seconds() / float64(a.n-1))
		}
	case errors.Is(err, ErrDrained), errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		s.rec.canceled.Add(1)
	default:
		s.rec.failed.Add(1)
	}
	a.stream.finish(err)
}
