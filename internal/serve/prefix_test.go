package serve

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/kvcache"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
)

// prefixTestBackend builds prefix-shareable HACK backends with a small
// Π so short prompts span several cache blocks.
func prefixTestBackend(seed int64) (attention.Backend, error) {
	cfg := attention.DefaultHACKConfig(seed)
	cfg.Pi = 8
	cfg.PrefixShareable = true
	return attention.NewHACK(cfg)
}

// prefixServerConfig is the deterministic single-worker configuration
// with the shared-prefix tier enabled.
func prefixServerConfig(budget int64) Config {
	return Config{
		PrefillWorkers: 1, DecodeParallelism: 1, MaxBatch: 4, MaxNewTokens: 8,
		Backend:               prefixTestBackend,
		PrefixCacheBytes:      budget,
		PrefixCachePageTokens: 8,
	}
}

func submitOne(t *testing.T, s *Server, prompt []int, seed int64) []int {
	t.Helper()
	st, err := s.Submit(context.Background(), Request{Prompt: prompt, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out := collect(t, st)
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPrefixCacheWarmColdIdentity is the tentpole acceptance property
// at the serving level: a request that hits the prefix cache skips
// prefill over the matched span yet streams tokens byte-identical to
// the cold path for the same (prompt, seed), and the hit/miss/bytes-
// saved counters expose the reuse.
func TestPrefixCacheWarmColdIdentity(t *testing.T) {
	s := newTestServer(t, prefixServerConfig(1<<20))
	prompt := promptFor(1, 21, s.Spec().Vocab)

	cold := submitOne(t, s, prompt, 5)
	snap := s.Metrics()
	if snap.PrefixCache == nil {
		t.Fatal("prefix tier enabled but snapshot carries no stats")
	}
	if snap.PrefixCache.Hits != 0 || snap.PrefixCache.Misses != 1 || snap.PrefixCache.Inserts != 2 {
		t.Fatalf("after cold request: %+v", snap.PrefixCache)
	}

	warm := submitOne(t, s, prompt, 5)
	if len(warm) != len(cold) {
		t.Fatalf("warm streamed %d tokens, cold %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i] != cold[i] {
			t.Fatalf("token %d diverged: warm %d, cold %d", i, warm[i], cold[i])
		}
	}
	snap = s.Metrics()
	pc := snap.PrefixCache
	if pc.Hits != 1 || pc.TokensReused != 16 {
		t.Fatalf("after warm request: %+v", pc)
	}
	if pc.BytesSaved <= 0 || pc.BytesUsed <= 0 || pc.BytesBudget <= 0 {
		t.Fatalf("byte accounting missing: %+v", pc)
	}
	if pc.Errors != 0 {
		t.Fatalf("tier recorded %d errors", pc.Errors)
	}

	// A fresh prefix-enabled server's cold answer for the same request
	// must equal the warm one — warm vs cold, not just warm vs warm.
	s2 := newTestServer(t, prefixServerConfig(1<<20))
	cold2 := submitOne(t, s2, prompt, 5)
	for i := range warm {
		if warm[i] != cold2[i] {
			t.Fatalf("token %d: warm %d vs fresh cold %d", i, warm[i], cold2[i])
		}
	}
}

// TestPrefixCacheSeedNamespaces checks that cached pages never cross
// quantizer seeds: the same prompt under a different seed is a miss.
func TestPrefixCacheSeedNamespaces(t *testing.T) {
	s := newTestServer(t, prefixServerConfig(1<<20))
	prompt := promptFor(2, 17, s.Spec().Vocab)
	submitOne(t, s, prompt, 1)
	submitOne(t, s, prompt, 2)
	pc := s.Metrics().PrefixCache
	if pc.Hits != 0 || pc.Misses != 2 {
		t.Fatalf("cross-seed stats %+v, want 2 misses", pc)
	}
}

// TestPrefixCacheShortPromptsBypass checks that prompts too short to
// leave a cacheable block (the last position is never cached) bypass
// the tier entirely.
func TestPrefixCacheShortPromptsBypass(t *testing.T) {
	s := newTestServer(t, prefixServerConfig(1<<20))
	submitOne(t, s, promptFor(3, 8, s.Spec().Vocab), 1) // insertable(8) == 0
	pc := s.Metrics().PrefixCache
	if pc.Hits != 0 || pc.Misses != 0 || pc.Inserts != 0 {
		t.Fatalf("short prompt touched the tier: %+v", pc)
	}
}

// TestPrefixCacheEvictionUnderPressure is the ref-counted eviction
// scenario (run under -race in CI): a budget of a few blocks, many
// distinct prompts submitted concurrently across two prefill workers.
// Every request must complete, eviction must occur, and a re-submitted
// prompt must reproduce its original stream whether it hits or misses.
func TestPrefixCacheEvictionUnderPressure(t *testing.T) {
	cfg := prefixServerConfig(0)
	// Room for 4 blocks of 8 tokens at the Toy spec's framed page cost.
	cfg.PrefixCacheBytes = int64(4 * 8 * prefixBytesPerToken(model.Toy(), 8, 2, 8))
	cfg.PrefillWorkers = 2
	s := newTestServer(t, cfg)
	vocab := s.Spec().Vocab

	const n = 10
	first := make([][]int, n)
	streams := make([]*Stream, n)
	for i := 0; i < n; i++ {
		st, err := s.Submit(context.Background(), Request{
			Prompt: promptFor(i, 17, vocab), Seed: int64(i), MaxNewTokens: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = st
	}
	for i, st := range streams {
		first[i] = collect(t, st)
		if err := st.Err(); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	pc := s.Metrics().PrefixCache
	if pc.Evictions == 0 && pc.InsertRejected == 0 {
		t.Fatalf("10 distinct prompts against a 4-block budget caused no pressure: %+v", pc)
	}
	if pc.Errors != 0 {
		t.Fatalf("tier errors under pressure: %+v", pc)
	}
	for i := 0; i < n; i++ {
		again := submitOne(t, s, promptFor(i, 17, vocab), int64(i))
		for j := range again {
			if j < len(first[i]) && again[j] != first[i][j] {
				t.Fatalf("request %d token %d: resubmit %d, original %d", i, j, again[j], first[i][j])
			}
		}
	}
}

// TestPrefixCacheConfigValidation pins tier construction errors: page
// granularity off the partition grid surfaces the typed alignment
// error, and a non-shareable backend is rejected outright.
func TestPrefixCacheConfigValidation(t *testing.T) {
	cfg := prefixServerConfig(1 << 20)
	cfg.PrefixCachePageTokens = 12 // not a multiple of Π=8
	_, err := New(cfg)
	var pe *kvcache.PageAlignmentError
	if !errors.As(err, &pe) {
		t.Fatalf("misaligned page tokens: %v", err)
	}

	cfg = prefixServerConfig(1 << 20)
	cfg.Backend = func(seed int64) (attention.Backend, error) {
		return attention.NewHACK(attention.DefaultHACKConfig(seed)) // classic
	}
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "prefix") {
		t.Fatalf("classic backend accepted for prefix tier: %v", err)
	}

	cfg = prefixServerConfig(-1)
	if _, err := New(cfg); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// TestPrefixSnapshotOmittedWhenDisabled keeps the JSON surface stable
// for deployments without the tier.
func TestPrefixSnapshotOmittedWhenDisabled(t *testing.T) {
	s := newTestServer(t, Config{PrefillWorkers: 1, DecodeParallelism: 1})
	if s.Metrics().PrefixCache != nil {
		t.Fatal("prefix stats present with the tier disabled")
	}
}

// TestRemotePrefixCacheRoundTrip exercises the wire-framed tier stub:
// two serving replicas share one cache node over TCP, so a prompt
// prefilled on replica A warm-starts on replica B with an identical
// stream.
func TestRemotePrefixCacheRoundTrip(t *testing.T) {
	spec := model.Toy()
	hello := netsim.Hello{
		Method: "HACK", SpecName: "toy", Vocab: spec.Vocab, ModelSeed: 0,
	}
	shared, err := NewPrefixCache(1<<20, 8, 8, prefixBytesPerToken(spec, 8, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node := ServePrefixCache(ln, shared, hello)
	defer node.Close()

	dial := func() PrefixCacheBackend {
		t.Helper()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		be, err := NewRemotePrefixCache(conn, hello)
		if err != nil {
			t.Fatal(err)
		}
		return be
	}
	newReplica := func() *Server {
		cfg := prefixServerConfig(0)
		cfg.PrefixCache = dial()
		return newTestServer(t, cfg)
	}
	a, b := newReplica(), newReplica()
	prompt := promptFor(4, 21, spec.Vocab)

	coldA := submitOne(t, a, prompt, 9)
	warmB := submitOne(t, b, prompt, 9)
	for i := range coldA {
		if coldA[i] != warmB[i] {
			t.Fatalf("token %d: replica A %d, replica B %d", i, coldA[i], warmB[i])
		}
	}
	if pcB := b.Metrics().PrefixCache; pcB.Hits != 1 || pcB.TokensReused != 16 {
		t.Fatalf("replica B stats %+v, want 1 hit of 16 tokens", pcB)
	}
	st, err := shared.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.Inserts != 2 {
		t.Fatalf("cache node stats %+v", st)
	}
}

// TestRemotePrefixCacheRefusesMismatch checks the deployment guard:
// a client advertising a different model seed is refused at handshake.
func TestRemotePrefixCacheRefusesMismatch(t *testing.T) {
	spec := model.Toy()
	shared, err := NewPrefixCache(1<<20, 8, 8, prefixBytesPerToken(spec, 8, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node := ServePrefixCache(ln, shared, netsim.Hello{Method: "HACK", SpecName: "toy", Vocab: spec.Vocab})
	defer node.Close()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	_, err = NewRemotePrefixCache(conn, netsim.Hello{Method: "HACK", SpecName: "toy", Vocab: spec.Vocab, ModelSeed: 999})
	if err == nil {
		t.Fatal("mismatched deployment accepted")
	}
}
