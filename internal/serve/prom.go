package serve

import (
	"fmt"
	"io"
	"strconv"

	"github.com/hackkv/hack/internal/metrics"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format (version 0.0.4) under the given metric prefix, so a fleet of
// routers and replicas is scrapeable alongside the JSON snapshot.
// Output order is fixed, making the format testable against a golden.
func (s Snapshot) WritePrometheus(w io.Writer, prefix string) error {
	if prefix == "" {
		prefix = "hackserved"
	}
	var err error
	emit := func(f string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, f, args...)
		}
	}
	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	counter := func(name, help string, v int64) {
		emit("# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %d\n",
			prefix, name, help, prefix, name, prefix, name, v)
	}
	gauge := func(name, help string, v string) {
		emit("# HELP %s_%s %s\n# TYPE %s_%s gauge\n%s_%s %s\n",
			prefix, name, help, prefix, name, prefix, name, v)
	}
	summary := func(name, help string, ps metrics.PercentileSummary) {
		emit("# HELP %s_%s %s\n# TYPE %s_%s summary\n", prefix, name, help, prefix, name)
		emit("%s_%s{quantile=\"0.5\"} %s\n", prefix, name, num(ps.P50))
		emit("%s_%s{quantile=\"0.9\"} %s\n", prefix, name, num(ps.P90))
		emit("%s_%s{quantile=\"0.99\"} %s\n", prefix, name, num(ps.P99))
	}

	counter("submitted_total", "Requests admitted.", s.Submitted)
	counter("rejected_queue_full_total", "Requests load-shed on a full admission queue.", s.RejectedFull)
	counter("rejected_draining_total", "Requests rejected during drain.", s.RejectedDraining)
	counter("completed_total", "Requests finished naturally.", s.Completed)
	counter("canceled_total", "Requests canceled or aborted by shutdown.", s.Canceled)
	counter("failed_total", "Requests that failed.", s.Failed)
	counter("tokens_streamed_total", "Tokens streamed to clients.", s.TokensStreamed)
	counter("remote_prefills_total", "Requests admitted with a remotely-prefilled KV cache.", s.RemotePrefills)
	counter("decode_steps_total", "Continuous-batching decode iterations.", s.DecodeSteps)
	gauge("batch_size", "Decode batch size at the last step.", strconv.Itoa(s.BatchNow))
	gauge("queue_depth", "Requests waiting in admission queues.", strconv.Itoa(s.QueueDepth))
	gauge("batch_occupancy", "Mean decode batch size over all steps.", num(s.BatchOccupancy))
	gauge("kv_bytes", "Resident KV-cache bytes across the decode batch.", strconv.FormatInt(s.KVBytesNow, 10))
	gauge("kv_bytes_peak", "Peak resident KV-cache bytes.", strconv.FormatInt(s.KVBytesPeak, 10))
	if pc := s.PrefixCache; pc != nil {
		counter("prefix_hits_total", "Prefix-cache lookups matching at least one block.", pc.Hits)
		counter("prefix_misses_total", "Prefix-cache lookups matching nothing.", pc.Misses)
		counter("prefix_inserts_total", "Prefix-cache blocks inserted.", pc.Inserts)
		counter("prefix_insert_rejected_total", "Prefix-cache blocks rejected for lack of budget.", pc.InsertRejected)
		counter("prefix_evictions_total", "Prefix-cache blocks evicted.", pc.Evictions)
		counter("prefix_tokens_reused_total", "Prompt tokens whose prefill was skipped.", pc.TokensReused)
		counter("prefix_bytes_saved_total", "KV bytes restored instead of recomputed.", pc.BytesSaved)
		counter("prefix_errors_total", "Prefix-tier failures absorbed by cold fallback.", pc.Errors)
		gauge("prefix_nodes", "Resident prefix-cache blocks.", strconv.Itoa(pc.Nodes))
		gauge("prefix_bytes", "Resident prefix-cache bytes.", strconv.FormatInt(pc.BytesUsed, 10))
		gauge("prefix_bytes_budget", "Prefix-cache byte budget.", strconv.FormatInt(pc.BytesBudget, 10))
		counter("prefix_cold_fallbacks_total", "Tier calls refused by the open prefix breaker.", pc.ColdFallbacks)
		counter("prefix_breaker_trips_total", "Prefix-tier breaker open transitions.", pc.Breaker.Trips)
		counter("prefix_breaker_probes_total", "Prefix-tier breaker half-open probes.", pc.Breaker.Probes)
		breakerState := 0
		switch pc.Breaker.State {
		case "open":
			breakerState = 1
		case "half-open":
			breakerState = 2
		}
		gauge("prefix_breaker_state", "Prefix-tier breaker position (0=closed, 1=open, 2=half-open).", strconv.Itoa(breakerState))
	}
	if sp := s.Speculation; sp != nil {
		counter("spec_windows_total", "Speculative batched verify calls.", sp.Windows)
		counter("spec_proposed_total", "Draft tokens proposed.", sp.Proposed)
		counter("spec_accepted_total", "Draft tokens accepted by verification.", sp.Accepted)
		counter("spec_fallbacks_total", "Requests degraded to plain decoding.", sp.Fallbacks)
		gauge("spec_acceptance_rate", "Lifetime draft acceptance rate.", num(sp.AcceptanceRate))
		gauge("spec_tokens_per_step", "Mean tokens emitted per verify call.", num(sp.TokensPerStep))
		summary("spec_request_acceptance", "Per-request draft acceptance rate.", sp.RequestAcceptance)
	}
	summary("ttft_seconds", "Time to first token.", s.TTFT)
	summary("tbt_seconds", "Mean time between tokens.", s.TBT)
	summary("queue_delay_seconds", "Admission queue delay.", s.QueueDelay)
	draining := "0"
	if s.Draining {
		draining = "1"
	}
	gauge("draining", "Whether shutdown has begun.", draining)
	return err
}
