package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/hackkv/hack/internal/attention"
)

// gatedBackend blocks backend construction until the gate closes,
// letting tests deterministically wedge the prefill worker and fill the
// admission queue behind it.
func gatedBackend(gate <-chan struct{}) BackendFactory {
	return func(seed int64) (attention.Backend, error) {
		<-gate
		return attention.NewHACK(attention.DefaultHACKConfig(seed))
	}
}

// TestBackpressureQueueFull wedges the single prefill worker, fills its
// bounded queue, and verifies the next submission is load-shed with
// ErrQueueFull — then releases the gate and checks every admitted
// request still completes.
func TestBackpressureQueueFull(t *testing.T) {
	gate := make(chan struct{})
	s := newTestServer(t, Config{
		PrefillWorkers: 1, QueueCap: 2, MaxBatch: 2, MaxNewTokens: 2,
		Backend: gatedBackend(gate),
	})
	// Runs before the server-shutdown cleanup (LIFO), so a test failure
	// cannot leave Shutdown waiting on the wedged worker.
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	prompt := []int{1, 2, 3, 4}
	var admitted []*Stream

	// First request is dequeued by the worker and wedges in the backend
	// factory; poll until the queue is empty again so the two queue
	// slots are genuinely free.
	st, err := s.Submit(context.Background(), Request{Prompt: prompt})
	if err != nil {
		t.Fatal(err)
	}
	admitted = append(admitted, st)
	deadline := time.Now().Add(5 * time.Second)
	for s.Metrics().QueueDepth != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the wedged request")
		}
		time.Sleep(time.Millisecond)
	}

	for i := 0; i < 2; i++ { // fill the two queue slots
		st, err := s.Submit(context.Background(), Request{Prompt: prompt})
		if err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
		admitted = append(admitted, st)
	}
	if _, err := s.Submit(context.Background(), Request{Prompt: prompt}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
	if snap := s.Metrics(); snap.RejectedFull != 1 {
		t.Errorf("rejected_queue_full %d, want 1", snap.RejectedFull)
	}

	release()
	for i, st := range admitted {
		if toks := collect(t, st); len(toks) != 2 {
			t.Errorf("admitted request %d: %d tokens, want 2", i, len(toks))
		}
		if err := st.Err(); err != nil {
			t.Errorf("admitted request %d: %v", i, err)
		}
	}
}

// TestGracefulDrain submits a burst, shuts down with a generous
// deadline, and requires every in-flight request to finish completely:
// zero dropped tokens, nil errors, and post-drain submissions rejected
// with ErrDraining.
func TestGracefulDrain(t *testing.T) {
	s, err := New(Config{PrefillWorkers: 2, MaxBatch: 4, MaxNewTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	streams := make([]*Stream, n)
	for i := range streams {
		st, err := s.Submit(context.Background(), Request{
			Prompt: promptFor(i, 10, s.Spec().Vocab), MaxNewTokens: 4, Seed: int64(i)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		streams[i] = st
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := s.Submit(context.Background(), Request{Prompt: []int{1}}); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit: %v, want ErrDraining", err)
	}
	for i, st := range streams {
		if toks := collect(t, st); len(toks) != 4 {
			t.Errorf("request %d drained with %d tokens, want 4", i, len(toks))
		}
		if err := st.Err(); err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
	if snap := s.Metrics(); snap.Completed != n || !snap.Draining {
		t.Errorf("post-drain snapshot: completed %d draining %v, want %d/true",
			snap.Completed, snap.Draining, n)
	}

	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

// TestForcedDrain gives Shutdown an immediate deadline: remaining work
// must abort promptly, every stream must still seal (with ErrDrained or
// nil — never hang), and Shutdown must report the deadline error.
func TestForcedDrain(t *testing.T) {
	s, err := New(Config{PrefillWorkers: 2, MaxBatch: 2, MaxNewTokens: 4096, QueueCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	streams := make([]*Stream, n)
	for i := range streams {
		st, err := s.Submit(context.Background(), Request{
			Prompt: promptFor(i, 24, s.Spec().Vocab), MaxNewTokens: 4096, Seed: int64(i)})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		streams[i] = st
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err = s.Shutdown(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown: %v, want deadline exceeded", err)
	}

	aborted := 0
	var wg sync.WaitGroup
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for range streams[i].Tokens() {
			}
		}(i)
	}
	wg.Wait() // every stream seals; a hang here fails via test timeout
	for i := range streams {
		switch err := streams[i].Err(); {
		case err == nil:
		case errors.Is(err, ErrDrained):
			aborted++
		default:
			t.Errorf("request %d: unexpected error %v", i, err)
		}
	}
	if aborted == 0 {
		t.Error("no request was aborted by the forced drain (work finished implausibly fast)")
	}
}
