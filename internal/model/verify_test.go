package model

import (
	"testing"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/quant"
)

// prefixBackend builds the prefix-shareable HACK backend the verify
// tests run on (counted stochastic rounding unless nearest is asked).
func prefixBackend(t *testing.T, seed int64, pi int, nearest bool) attention.Backend {
	t.Helper()
	cfg := attention.DefaultHACKConfig(seed)
	cfg.Pi = pi
	cfg.PrefixShareable = true
	if nearest {
		cfg.Rounding = quant.NearestRounding
	}
	b, err := attention.NewHACK(cfg)
	if err != nil {
		t.Fatalf("NewHACK: %v", err)
	}
	return b
}

// sequentialTokens runs the plain greedy decode loop and returns the
// generated stream.
func sequentialTokens(t *testing.T, b attention.Backend, prompt []int, n int) []int {
	t.Helper()
	m, err := NewTransformer(Toy(), 7)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.NewSession(b)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := sess.Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	out := []int{tok}
	for len(out) < n {
		if tok, err = sess.Decode(tok); err != nil {
			t.Fatal(err)
		}
		out = append(out, tok)
	}
	return out
}

// TestDecodeBatchMatchesSequential drives the speculative loop with a
// perfect oracle draft (the sequential stream itself) across window
// sizes and rounding modes, asserting the committed stream is
// bit-identical to plain decoding. Full-accept windows exercise the
// no-rollback fast path.
func TestDecodeBatchMatchesSequential(t *testing.T) {
	prompt := []int{5, 9, 2, 33, 17, 4, 21, 8}
	const n = 48
	for _, tc := range []struct {
		name    string
		pi      int
		nearest bool
		k       int
	}{
		{"pi32-counted-k2", 32, false, 2},
		{"pi32-counted-k4", 32, false, 4},
		{"pi64-counted-k8", 64, false, 8},
		{"pi64-nearest-k4", 64, true, 4},
		{"pi128-nearest-k8", 128, true, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := sequentialTokens(t, prefixBackend(t, 42, tc.pi, tc.nearest), prompt, n)

			m, err := NewTransformer(Toy(), 7)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := m.NewSession(prefixBackend(t, 42, tc.pi, tc.nearest))
			if err != nil {
				t.Fatal(err)
			}
			tok, err := sess.Prefill(prompt)
			if err != nil {
				t.Fatal(err)
			}
			got := []int{tok}
			if tok != want[0] {
				t.Fatalf("first token %d, want %d", tok, want[0])
			}
			for len(got) < n {
				kEff := sess.VerifyWindow(tc.k)
				if kEff < 2 {
					if tok, err = sess.Decode(tok); err != nil {
						t.Fatal(err)
					}
					got = append(got, tok)
					continue
				}
				// Oracle drafts: the known sequential continuation, so
				// every window fully accepts.
				window := []int{tok}
				for i := 1; i < kEff && len(got)+i <= n && len(got)+i <= len(want); i++ {
					window = append(window, want[len(got)+i-1])
				}
				outs, err := sess.DecodeBatch(window)
				if err != nil {
					t.Fatal(err)
				}
				m := 0
				for m+1 < len(window) && window[m+1] == outs[m] {
					m++
				}
				if m+1 != len(window) {
					t.Fatalf("oracle draft rejected at %d of %d", m+1, len(window))
				}
				got = append(got, outs[:m+1]...)
				tok = outs[m]
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("token %d: spec %d vs sequential %d\nspec %v\nseq  %v", i, got[i], want[i], got, want)
				}
			}
		})
	}
}

// TestTruncateLeavesNoResidue forces rejected windows — garbage drafts
// that never match — and asserts the rolled-back session continues
// bit-identically to plain decoding: no KV rows and no RNG draws from
// the rejected suffix survive.
func TestTruncateLeavesNoResidue(t *testing.T) {
	prompt := []int{3, 1, 4, 1, 5, 9, 2, 6}
	const n = 40
	for _, tc := range []struct {
		name    string
		pi      int
		nearest bool
		k       int
	}{
		{"pi32-counted-k4", 32, false, 4},
		{"pi64-counted-k8", 64, false, 8},
		{"pi64-nearest-k4", 64, true, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want := sequentialTokens(t, prefixBackend(t, 11, tc.pi, tc.nearest), prompt, n)

			m, err := NewTransformer(Toy(), 7)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := m.NewSession(prefixBackend(t, 11, tc.pi, tc.nearest))
			if err != nil {
				t.Fatal(err)
			}
			tok, err := sess.Prefill(prompt)
			if err != nil {
				t.Fatal(err)
			}
			got := []int{tok}
			for len(got) < n {
				kEff := sess.VerifyWindow(tc.k)
				if kEff < 2 {
					if tok, err = sess.Decode(tok); err != nil {
						t.Fatal(err)
					}
					got = append(got, tok)
					continue
				}
				before := sess.Len()
				// Adversarial drafts: tokens chosen to disagree with the
				// model (vocab-shifted), so at most the free token lands.
				window := []int{tok}
				for i := 1; i < kEff && len(got)+i-1 < len(want); i++ {
					window = append(window, (want[len(got)+i-1]+1)%Toy().Vocab)
				}
				outs, err := sess.DecodeBatch(window)
				if err != nil {
					t.Fatal(err)
				}
				m := 0
				for m+1 < len(window) && window[m+1] == outs[m] {
					m++
				}
				if err := sess.Truncate(before + m + 1); err != nil {
					t.Fatalf("truncate: %v", err)
				}
				if sess.Len() != before+m+1 {
					t.Fatalf("len %d after truncate, want %d", sess.Len(), before+m+1)
				}
				got = append(got, outs[:m+1]...)
				tok = outs[m]
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("token %d: spec %d vs sequential %d (rollback residue)\nspec %v\nseq  %v",
						i, got[i], want[i], got, want)
				}
			}
		})
	}
}

// TestVerifyWindowClamp pins the clamp: a window may never span a
// V-partition flush, and a full open partition forces plain decoding.
func TestVerifyWindowClamp(t *testing.T) {
	m, err := NewTransformer(Toy(), 7)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.NewSession(prefixBackend(t, 1, 32, false))
	if err != nil {
		t.Fatal(err)
	}
	// Prompt of 30 tokens: tail holds 30 rows of the Π=32 partition, so
	// only one slot stays below the flush boundary.
	prompt := make([]int, 30)
	for i := range prompt {
		prompt[i] = i % Toy().Vocab
	}
	if _, err := sess.Prefill(prompt); err != nil {
		t.Fatal(err)
	}
	if got := sess.VerifyWindow(8); got != 1 {
		t.Fatalf("VerifyWindow(8) at tail 30/32 = %d, want 1", got)
	}
	if tok, err := sess.Decode(0); err != nil || tok < 0 {
		t.Fatalf("decode: %v", err)
	}
	// Tail now 31 = Π-1: no room at all.
	if got := sess.VerifyWindow(8); got != 0 {
		t.Fatalf("VerifyWindow(8) at tail 31/32 = %d, want 0", got)
	}
}

// TestDecodeBatchRejectsNonPrefixHeads pins the capability gate for
// classic (non-prefix-shareable) backends.
func TestDecodeBatchRejectsNonPrefixHeads(t *testing.T) {
	m, err := NewTransformer(Toy(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := attention.NewHACK(attention.DefaultHACKConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	sess, err := m.NewSession(b)
	if err != nil {
		t.Fatal(err)
	}
	if sess.SupportsVerify() {
		t.Fatal("classic HACK head claims batch-verify support")
	}
	if got := sess.VerifyWindow(4); got != 0 {
		t.Fatalf("VerifyWindow on classic head = %d, want 0", got)
	}
}
