// Package model provides (a) the catalog of model architectures the
// paper evaluates — used by the performance model to size compute, KV
// and weight traffic — and (b) a real numeric transformer with
// deterministic synthetic weights, used to measure how each attention
// backend perturbs generation (the Table 6/7/8 accuracy experiments).
//
// Substitution note (DESIGN.md §3): the catalog entries carry the public
// architecture shapes of the real models; the numeric transformer is a
// small seeded-random instance because trained weights are unavailable.
// Quantization-error propagation depends on activation distributions and
// shapes, which the synthetic instance preserves.
package model

import (
	"fmt"

	"github.com/hackkv/hack/internal/registry"
)

// Spec describes a transformer architecture.
type Spec struct {
	// Name is the model's display name; ShortName its one-letter tag
	// from the paper (M, P, Y, L, F).
	Name      string
	ShortName string
	// Layers is the transformer depth.
	Layers int
	// Hidden is the model (embedding) dimension.
	Hidden int
	// Heads is the number of query heads; KVHeads the number of
	// key/value heads (grouped-query attention when smaller).
	Heads, KVHeads int
	// HeadDim is d_h.
	HeadDim int
	// MLPDim is the feed-forward inner dimension.
	MLPDim int
	// Vocab is the vocabulary size.
	Vocab int
	// Params is the total parameter count.
	Params int64
	// MaxContext is the model's context window (Falcon-180B's 2K cap is
	// why the paper pairs it with arXiv instead of Cocktail).
	MaxContext int
	// ScoreGain scales attention scores in the numeric transformer
	// (default 1). Trained models produce peaked attention; raising the
	// gain reproduces that property in the synthetic instance, which is
	// what makes generation robust to small KV perturbations.
	ScoreGain float64
}

// KVBytesPerTokenFP16 returns the FP16 KV-cache footprint of one token
// across all layers: 2 (K and V) × layers × kvHeads × d_h × 2 bytes.
func (s Spec) KVBytesPerTokenFP16() int64 {
	return 2 * int64(s.Layers) * int64(s.KVHeads) * int64(s.HeadDim) * 2
}

// WeightBytesFP16 returns the FP16 weight footprint.
func (s Spec) WeightBytesFP16() int64 { return 2 * s.Params }

// PrefillFLOPs estimates the floating-point work of prefilling l tokens:
// the standard 2·params·l term plus the causal-attention quadratic term
// 2·layers·hidden·l² (QKᵀ and PV each cost layers·hidden·l²/2 after the
// causal halving, summed over K and V and doubled for MACs).
func (s Spec) PrefillFLOPs(l int) int64 {
	linear := 2 * s.Params * int64(l)
	attn := 2 * int64(s.Layers) * int64(s.Hidden) * int64(l) * int64(l)
	return linear + attn
}

// DecodeFLOPsPerToken estimates the floating-point work of one decode
// step with l cached tokens: 2·params for the dense path plus the
// KV-length-dependent attention term 4·layers·hidden·l.
func (s Spec) DecodeFLOPsPerToken(l int) int64 {
	return 2*s.Params + 4*int64(s.Layers)*int64(s.Hidden)*int64(l)
}

// AttnFLOPsPrefill returns only the KV-related matmul work of prefill
// (the part HACK accelerates with INT8): 2·layers·hidden·l².
func (s Spec) AttnFLOPsPrefill(l int) int64 {
	return 2 * int64(s.Layers) * int64(s.Hidden) * int64(l) * int64(l)
}

// AttnFLOPsDecode returns only the KV-related matmul work of one decode
// step: 4·layers·hidden·l.
func (s Spec) AttnFLOPsDecode(l int) int64 {
	return 4 * int64(s.Layers) * int64(s.Hidden) * int64(l)
}

// Validate checks internal consistency.
func (s Spec) Validate() error {
	if s.Layers <= 0 || s.Hidden <= 0 || s.Heads <= 0 || s.KVHeads <= 0 || s.HeadDim <= 0 {
		return fmt.Errorf("model: malformed spec %q", s.Name)
	}
	if s.Heads%s.KVHeads != 0 {
		return fmt.Errorf("model: %q heads %d not a multiple of kv heads %d", s.Name, s.Heads, s.KVHeads)
	}
	return nil
}

// Catalog entries carry the public architecture parameters of the five
// evaluated models (Table 3's rows).
//
// KV sizing note: KVHeads is set equal to Heads (full multi-head KV
// caches, the pre-GQA vLLM layout) even though several of these models
// ship grouped-query variants. This is the sizing that simultaneously
// fits the paper's measurements: ≈20% communication share of JCT on
// 40 Gbps instances for Cocktail prompts (Fig. 1a), 93.7% peak decode
// memory (Table 5), 16–33% KV memory-access share (§2.1), and 17–38%
// dequantization share for the quantization baselines (Figs. 2–4).
// GQA-sized KV (8 KV heads) would make all four of those effects an
// order of magnitude too small at the paper's request rates; see
// EXPERIMENTS.md for the calibration discussion.

// Mistral7B returns the Mistral-v0.3 7B architecture.
func Mistral7B() Spec {
	return Spec{Name: "Mistral-v0.3 7B", ShortName: "M", Layers: 32, Hidden: 4096,
		Heads: 32, KVHeads: 32, HeadDim: 128, MLPDim: 14336, Vocab: 32768,
		Params: 7_250_000_000, MaxContext: 32768}
}

// Phi3_14B returns the Phi-3 14B (medium) architecture.
func Phi3_14B() Spec {
	return Spec{Name: "Phi-3 14B", ShortName: "P", Layers: 40, Hidden: 5120,
		Heads: 40, KVHeads: 40, HeadDim: 128, MLPDim: 17920, Vocab: 32064,
		Params: 14_000_000_000, MaxContext: 131072}
}

// Yi34B returns the 01-ai Yi 34B architecture.
func Yi34B() Spec {
	return Spec{Name: "Yi 34B", ShortName: "Y", Layers: 60, Hidden: 7168,
		Heads: 56, KVHeads: 56, HeadDim: 128, MLPDim: 20480, Vocab: 64000,
		Params: 34_400_000_000, MaxContext: 200000}
}

// Llama70B returns the Meta Llama-3.1 70B architecture — the paper's
// default model.
func Llama70B() Spec {
	return Spec{Name: "Llama-3.1 70B", ShortName: "L", Layers: 80, Hidden: 8192,
		Heads: 64, KVHeads: 64, HeadDim: 128, MLPDim: 28672, Vocab: 128256,
		Params: 70_600_000_000, MaxContext: 131072}
}

// Falcon180B returns the TII Falcon 180B architecture (2K context cap).
func Falcon180B() Spec {
	return Spec{Name: "Falcon 180B", ShortName: "F", Layers: 80, Hidden: 14848,
		Heads: 232, KVHeads: 232, HeadDim: 64, MLPDim: 59392, Vocab: 65024,
		Params: 180_000_000_000, MaxContext: 2048}
}

// Registry resolves catalog models by one-letter tag or full display
// name (case-insensitive). Entries self-register in init; registration
// order is the paper's M, P, Y, L, F order.
var Registry = registry.New[Spec]("model")

func init() {
	for _, s := range []Spec{Mistral7B(), Phi3_14B(), Yi34B(), Llama70B(), Falcon180B()} {
		Registry.Register(s.ShortName, s, s.Name)
	}
}

// Catalog returns the five evaluated models in the paper's M, P, Y, L, F
// order.
func Catalog() []Spec { return Registry.Values() }

// ByShortName returns the catalog model with the given one-letter tag
// (or full display name) through the registry.
func ByShortName(tag string) (Spec, error) { return Registry.Lookup(tag) }

// Toy returns a small architecture for the numeric accuracy runs: big
// enough to exhibit realistic error propagation (multi-layer, multi-head,
// MLP, residuals), small enough to generate hundreds of tokens per
// method in milliseconds.
func Toy() Spec {
	return Spec{Name: "Toy", ShortName: "T", Layers: 2, Hidden: 64,
		Heads: 2, KVHeads: 2, HeadDim: 32, MLPDim: 128, Vocab: 128,
		Params: 0, MaxContext: 4096}
}
