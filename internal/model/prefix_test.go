package model

import (
	"testing"

	"github.com/hackkv/hack/internal/attention"
)

// TestResumePrefillMatchesColdPrefill is the shared-prefix warm path in
// miniature at the model level: prefill a donor session, export every
// head's Π-aligned page span, restore the pages into a fresh session,
// and resume the prefill over the prompt suffix. The resumed logits and
// every subsequent greedy decode step must be bit-identical to a cold
// session prefilling the whole prompt itself.
func TestResumePrefillMatchesColdPrefill(t *testing.T) {
	spec := Toy()
	const modelSeed, quantSeed = 11, 7
	const cached, maxNew = 16, 12

	cfg := attention.DefaultHACKConfig(quantSeed)
	cfg.Pi = 8
	cfg.PrefixShareable = true
	backend, err := attention.NewHACK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewTransformer(spec, modelSeed)
	if err != nil {
		t.Fatal(err)
	}
	prompt := make([]int, 21)
	for i := range prompt {
		prompt[i] = (13*i + 5) % spec.Vocab
	}

	// Cold reference.
	cold, err := m.NewSession(backend)
	if err != nil {
		t.Fatal(err)
	}
	wantLogits, err := cold.PrefillLogits(prompt)
	if err != nil {
		t.Fatal(err)
	}

	// Donor session supplies the cached pages.
	donor, err := m.NewSession(backend)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := donor.Prefill(prompt); err != nil {
		t.Fatal(err)
	}
	heads := make([][]attention.Head, spec.Layers)
	for l := 0; l < spec.Layers; l++ {
		row := make([]attention.Head, spec.Heads)
		for h := 0; h < spec.Heads; h++ {
			k, v, err := donor.Head(l, h).(attention.PrefixPageExporter).ExportPrefixPages(0, cached)
			if err != nil {
				t.Fatal(err)
			}
			if row[h], err = backend.RestorePrefixHead(spec.HeadDim, k, v); err != nil {
				t.Fatal(err)
			}
		}
		heads[l] = row
	}
	warm, err := m.RestoreSession(backend, heads)
	if err != nil {
		t.Fatal(err)
	}
	gotLogits, err := warm.ResumePrefillLogits(prompt, cached)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotLogits) != len(wantLogits) {
		t.Fatalf("logit count %d, want %d", len(gotLogits), len(wantLogits))
	}
	for i := range gotLogits {
		if gotLogits[i] != wantLogits[i] {
			t.Fatalf("logit %d diverged: %v vs %v", i, gotLogits[i], wantLogits[i])
		}
	}

	// Greedy decode must stay locked to the cold session.
	coldTok, warmTok := argmax(wantLogits), argmax(gotLogits)
	for step := 0; step < maxNew; step++ {
		if warmTok != coldTok {
			t.Fatalf("step %d: warm token %d, cold %d", step, warmTok, coldTok)
		}
		var err error
		if coldTok, err = cold.Decode(coldTok); err != nil {
			t.Fatal(err)
		}
		if warmTok, err = warm.Decode(warmTok); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResumePrefillValidation pins the resume entry point's bounds.
func TestResumePrefillValidation(t *testing.T) {
	cfg := attention.DefaultHACKConfig(1)
	cfg.Pi = 8
	cfg.PrefixShareable = true
	backend, err := attention.NewHACK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewTransformer(Toy(), 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewSession(backend)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{1, 2, 3, 4}
	for _, cached := range []int{0, -1, 4, 5} {
		if _, err := s.ResumePrefillLogits(prompt, cached); err == nil {
			t.Fatalf("cached=%d accepted", cached)
		}
	}
}
