package model

import (
	"math/rand"
	"testing"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/metrics"
)

func TestCatalogSpecsValid(t *testing.T) {
	for _, s := range Catalog() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if s.Params <= 0 || s.KVBytesPerTokenFP16() <= 0 {
			t.Errorf("%s: params/KV sizes missing", s.Name)
		}
	}
	if len(Catalog()) != 5 {
		t.Errorf("catalog has %d models, want 5", len(Catalog()))
	}
}

func TestByShortName(t *testing.T) {
	s, err := ByShortName("L")
	if err != nil || s.Name != "Llama-3.1 70B" {
		t.Errorf("ByShortName(L) = %v, %v", s.Name, err)
	}
	if _, err := ByShortName("Z"); err == nil {
		t.Error("unknown tag accepted")
	}
}

func TestSpecFormulas(t *testing.T) {
	l := Llama70B()
	// MHA KV sizing (see spec.go note): 2 × 80 layers × 64 heads × 128 d_h × 2 B.
	if got, want := l.KVBytesPerTokenFP16(), int64(2*80*64*128*2); got != want {
		t.Errorf("KVBytesPerTokenFP16 = %d, want %d", got, want)
	}
	if got, want := l.WeightBytesFP16(), 2*l.Params; got != want {
		t.Errorf("WeightBytesFP16 = %d, want %d", got, want)
	}
	// Prefill FLOPs dominated by 2·P·L for short prompts.
	if got := l.PrefillFLOPs(100); got < 2*l.Params*100 {
		t.Errorf("PrefillFLOPs(100) = %d below linear term", got)
	}
	// Attention share grows quadratically.
	a1, a2 := l.AttnFLOPsPrefill(1000), l.AttnFLOPsPrefill(2000)
	if a2 != 4*a1 {
		t.Errorf("attention FLOPs not quadratic: %d vs %d", a1, a2)
	}
	if got := l.DecodeFLOPsPerToken(0); got != 2*l.Params {
		t.Errorf("DecodeFLOPsPerToken(0) = %d", got)
	}
	// Falcon's context cap is the reason the paper swaps in arXiv.
	if Falcon180B().MaxContext != 2048 {
		t.Error("Falcon context cap missing")
	}
}

func TestNewTransformerValidation(t *testing.T) {
	bad := Toy()
	bad.HeadDim = 16 // heads·d_h no longer equals hidden
	if _, err := NewTransformer(bad, 1); err == nil {
		t.Error("inconsistent head dims accepted")
	}
	bad = Toy()
	bad.Vocab = 1
	if _, err := NewTransformer(bad, 1); err == nil {
		t.Error("vocab=1 accepted")
	}
}

func TestDeterministicWeights(t *testing.T) {
	a, err := NewTransformer(Toy(), 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewTransformer(Toy(), 42)
	for i := range a.Embed.Data {
		if a.Embed.Data[i] != b.Embed.Data[i] {
			t.Fatal("same seed produced different weights")
		}
	}
	c, _ := NewTransformer(Toy(), 43)
	same := true
	for i := range a.Embed.Data {
		if a.Embed.Data[i] != c.Embed.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical weights")
	}
}

func randPrompt(rng *rand.Rand, n, vocab int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = rng.Intn(vocab)
	}
	return p
}

func TestGenerateDeterministicAndSeparateSessions(t *testing.T) {
	m, err := NewTransformer(Toy(), 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	prompt := randPrompt(rng, 24, m.Spec().Vocab)

	gen := func() []int {
		s, err := m.NewSession(attention.ExactBackend{})
		if err != nil {
			t.Fatal(err)
		}
		out, err := s.Generate(prompt, 20, -1)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := gen(), gen()
	if len(a) != 20 {
		t.Fatalf("generated %d tokens, want 20", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic generation at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	m, _ := NewTransformer(Toy(), 7)
	s, _ := m.NewSession(attention.ExactBackend{})
	if _, err := s.Generate(nil, 5, -1); err == nil {
		t.Error("empty prompt accepted")
	}
	if _, err := s.Prefill([]int{99999}); err == nil {
		t.Error("out-of-vocab token accepted")
	}
	if _, err := s.Decode(-1); err == nil {
		t.Error("negative token accepted")
	}
}

func TestEOSStopsGeneration(t *testing.T) {
	m, _ := NewTransformer(Toy(), 7)
	rng := rand.New(rand.NewSource(2))
	prompt := randPrompt(rng, 16, m.Spec().Vocab)
	s, _ := m.NewSession(attention.ExactBackend{})
	full, err := s.Generate(prompt, 30, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Skip("generation too short to test EOS")
	}
	// Rerun with eos = the first generated token: must stop immediately.
	s2, _ := m.NewSession(attention.ExactBackend{})
	out, err := s2.Generate(prompt, 30, full[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("generation did not stop at EOS: %d tokens", len(out))
	}
}

// FP16 baseline generations stay close to the exact reference; the
// quantized backends perturb more but still produce overlapping content.
// This is the mechanism behind the Table 6 accuracy ladder.
func TestBackendAccuracyLadder(t *testing.T) {
	m, err := NewTransformer(Toy(), 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))

	type result struct {
		name  string
		score float64
	}
	const prompts = 4
	const maxNew = 24
	scores := map[string]float64{}
	for p := 0; p < prompts; p++ {
		prompt := randPrompt(rng, 32, m.Spec().Vocab)
		ref := mustGenerate(t, m, attention.ExactBackend{}, prompt, maxNew)
		hk, err := attention.NewHACK(attention.DefaultHACKConfig(int64(p)))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range []attention.Backend{attention.FP16Backend{}, hk} {
			out := mustGenerate(t, m, b, prompt, maxNew)
			scores[b.Name()] += metrics.Rouge1(out, ref) / prompts
		}
	}
	if scores["Baseline"] < 0.95 {
		t.Errorf("FP16 baseline ROUGE-1 %.3f vs exact, want ≥ 0.95", scores["Baseline"])
	}
	if scores["HACK"] > scores["Baseline"]+1e-9 {
		t.Errorf("HACK %.3f above baseline %.3f", scores["HACK"], scores["Baseline"])
	}
	if scores["HACK"] < 0.2 {
		t.Errorf("HACK ROUGE-1 %.3f collapsed", scores["HACK"])
	}
	_ = result{}
}

func mustGenerate(t *testing.T, m *Transformer, b attention.Backend, prompt []int, maxNew int) []int {
	t.Helper()
	s, err := m.NewSession(b)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Generate(prompt, maxNew, -1)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSessionAccounting(t *testing.T) {
	m, _ := NewTransformer(Toy(), 5)
	hk, _ := attention.NewHACK(attention.DefaultHACKConfig(1))
	s, _ := m.NewSession(hk)
	rng := rand.New(rand.NewSource(4))
	if _, err := s.Generate(randPrompt(rng, 40, m.Spec().Vocab), 8, -1); err != nil {
		t.Fatal(err)
	}
	if s.Stats.IntOps == 0 || s.Stats.QuantOps == 0 {
		t.Error("session stats not accumulated")
	}
	if s.CacheUsageTotal() == 0 || s.WireSizeTotal() == 0 {
		t.Error("session cache accounting empty")
	}
	// HACK cache much smaller than the FP16 baseline's.
	sb, _ := m.NewSession(attention.FP16Backend{})
	if _, err := sb.Generate(randPrompt(rng, 40, m.Spec().Vocab), 8, -1); err != nil {
		t.Fatal(err)
	}
	if s.CacheUsageTotal() >= sb.CacheUsageTotal() {
		t.Errorf("HACK cache %d not below FP16 %d", s.CacheUsageTotal(), sb.CacheUsageTotal())
	}
}

func BenchmarkToyGenerateHACK(b *testing.B) {
	m, _ := NewTransformer(Toy(), 1)
	rng := rand.New(rand.NewSource(1))
	prompt := randPrompt(rng, 64, m.Spec().Vocab)
	hk, _ := attention.NewHACK(attention.DefaultHACKConfig(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _ := m.NewSession(hk)
		if _, err := s.Generate(prompt, 16, -1); err != nil {
			b.Fatal(err)
		}
	}
}

// Grouped-query attention: a model with fewer KV heads than query heads
// runs end to end, and two query heads of the same group see identical
// KV projections.
func TestGQAModel(t *testing.T) {
	spec := Toy()
	spec.KVHeads = 1 // 2 query heads share one KV group
	m, err := NewTransformer(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	s, err := m.NewSession(attention.ExactBackend{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Generate(randPrompt(rng, 24, spec.Vocab), 12, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 12 {
		t.Fatalf("generated %d tokens", len(out))
	}
	// Both heads' caches hold the same tokens (identical group KV).
	if s.HeadUsage(0, 0).Total() != s.HeadUsage(0, 1).Total() {
		t.Error("GQA group caches diverged in size")
	}
	// A GQA model differs from its MHA sibling (different wk shapes).
	mha, _ := NewTransformer(Toy(), 9)
	s2, _ := mha.NewSession(attention.ExactBackend{})
	out2, err := s2.Generate(randPrompt(rand.New(rand.NewSource(1)), 24, spec.Vocab), 12, -1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range out {
		if out[i] != out2[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("GQA and MHA generations coincide (possible but unlikely); not failing")
	}
}
