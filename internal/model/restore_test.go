package model

import (
	"bytes"
	"testing"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/netsim"
)

// TestRestoreSessionContinuesBitIdentically is the disaggregated handoff
// in miniature: prefill a session on the "prefill instance", ship every
// head's cache through the real KVFrame codec (v2, carrying the RNG draw
// count), restore a fresh session on the "decode instance", and require
// the continued greedy decode to match a single-process run token for
// token — stochastic rounding and all.
func TestRestoreSessionContinuesBitIdentically(t *testing.T) {
	spec := Toy()
	const modelSeed, quantSeed = 11, 7
	const maxNew = 24

	m, err := NewTransformer(spec, modelSeed)
	if err != nil {
		t.Fatal(err)
	}
	backend, err := attention.NewHACK(attention.DefaultHACKConfig(quantSeed))
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}

	// Reference: single-process prefill + decode.
	ref, err := m.NewSession(backend)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Generate(prompt, maxNew, -1)
	if err != nil {
		t.Fatal(err)
	}

	// Prefill instance: prefill only, then export each head over the
	// frame codec.
	src, err := m.NewSession(backend)
	if err != nil {
		t.Fatal(err)
	}
	firstTok, err := src.Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	if firstTok != want[0] {
		t.Fatalf("prefill token %d, reference %d", firstTok, want[0])
	}

	heads := make([][]attention.Head, spec.Layers)
	for l := 0; l < spec.Layers; l++ {
		heads[l] = make([]attention.Head, spec.Heads)
		for h := 0; h < spec.Heads; h++ {
			exp, ok := src.Head(l, h).(attention.WireExporter)
			if !ok {
				t.Fatalf("layer %d head %d does not export", l, h)
			}
			k, v, tail, draws, err := exp.ExportWire()
			if err != nil {
				t.Fatal(err)
			}
			fr, err := netsim.FrameFromTensors(1, l, h, firstTok, k, v, tail.Data)
			if err != nil {
				t.Fatal(err)
			}
			fr.RNGDraws = draws

			// Round-trip the actual bytes.
			var buf bytes.Buffer
			if _, err := fr.WriteTo(&buf); err != nil {
				t.Fatal(err)
			}
			var recv netsim.KVFrame
			if _, err := recv.ReadFrom(&buf); err != nil {
				t.Fatal(err)
			}
			if recv.RNGDraws != draws {
				t.Fatalf("draw count lost in transit: %d vs %d", recv.RNGDraws, draws)
			}

			rk, rv, rtail, err := recv.Tensors()
			if err != nil {
				t.Fatal(err)
			}
			restored, err := backend.RestoreHead(spec.HeadDim, rk, rv, rtail, recv.RNGDraws)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Len() != len(prompt) {
				t.Fatalf("restored head has %d tokens, want %d", restored.Len(), len(prompt))
			}
			heads[l][h] = restored
		}
	}

	// Decode instance: restore and continue.
	dst, err := m.RestoreSession(backend, heads)
	if err != nil {
		t.Fatal(err)
	}
	got := []int{firstTok}
	tok := firstTok
	for len(got) < maxNew {
		tok, err = dst.Decode(tok)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tok)
	}

	if len(got) != len(want) {
		t.Fatalf("restored decode produced %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d diverged after restore: got %d, want %d\ngot  %v\nwant %v",
				i, got[i], want[i], got, want)
		}
	}
}

// TestRestoreRejectsBadShapes covers the refusal paths: mismatched
// layer/head grids and non-RQE exports.
func TestRestoreRejectsBadShapes(t *testing.T) {
	spec := Toy()
	m, err := NewTransformer(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	backend, err := attention.NewHACK(attention.DefaultHACKConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RestoreSession(backend, nil); err == nil {
		t.Fatal("restored a session with no heads")
	}
	if _, err := m.RestoreSession(backend, make([][]attention.Head, spec.Layers)); err == nil {
		t.Fatal("restored a session with empty head rows")
	}

	cfg := attention.DefaultHACKConfig(1)
	cfg.RequantizationElimination = false
	noRQE, err := attention.NewHACK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	head, err := noRQE.NewHead(spec.HeadDim)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := head.(attention.WireExporter).ExportWire(); err == nil {
		t.Fatal("exported a quantized-tail ablation cache")
	}
	if _, err := noRQE.RestoreHead(spec.HeadDim, nil, nil, nil, 0); err == nil {
		t.Fatal("restored under the quantized-tail ablation")
	}
}
