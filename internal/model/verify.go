package model

import (
	"fmt"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/tensor"
)

// This file is the model-level face of speculative decoding: a batched
// verify pass that scores a window of tokens in one forward call, and
// the rollback that removes a rejected suffix from every head. The
// per-row outputs of DecodeBatch are bit-identical to the corresponding
// sequential Decode calls (see internal/attention/spec.go for the
// head-level argument; every other layer op — rmsNorm, the dense
// matmuls, SiLU, the residual adds — computes each row independently of
// how many rows share the matrix).

// SupportsVerify reports whether the session's attention heads
// implement the batched-verify/rollback contract (the prefix-shareable
// HACK discipline). Callers use it to fall back to plain decoding
// rather than fail a request.
func (s *Session) SupportsVerify() bool {
	bv, ok := s.heads[0][0].(attention.BatchVerifier)
	return ok && bv.CanBatchVerify()
}

// Len returns the cached token count. Every head advances in lockstep,
// so layer 0 head 0 speaks for the session.
func (s *Session) Len() int { return s.heads[0][0].Len() }

// VerifyWindow clamps a proposed verify window to what every head can
// batch without breaking bit-identity (no V-partition flush inside the
// window): the largest b <= k all heads accept, possibly 0 when some
// head's open partition has no spare slot (or some head cannot batch at
// all) — the caller then runs a plain Decode for that step.
func (s *Session) VerifyWindow(k int) int {
	for _, row := range s.heads {
		for _, head := range row {
			bv, ok := head.(attention.BatchVerifier)
			if !ok {
				return 0
			}
			if k = bv.VerifyWindow(k); k == 0 {
				return 0
			}
		}
	}
	if k < 0 {
		return 0
	}
	return k
}

// DecodeBatch feeds a window of tokens — toks[0] the last committed
// token, toks[1:] draft proposals — through one causally-masked batched
// pass and returns one greedy token per input row: out[i] is the token
// the model generates after ingesting toks[0..i], bit-identical to what
// i+1 sequential Decode calls would have produced. The window appends
// len(toks) rows to every head's cache; the caller commits the accepted
// prefix and rolls the rest back with Truncate. Windows larger than 1
// must respect VerifyWindow.
func (s *Session) DecodeBatch(toks []int) ([]int, error) {
	if len(toks) == 0 {
		return nil, fmt.Errorf("model: empty verify window")
	}
	x := tensor.New(len(toks), s.m.spec.Hidden)
	for i, tok := range toks {
		if tok < 0 || tok >= s.m.spec.Vocab {
			return nil, fmt.Errorf("model: token %d out of vocab %d", tok, s.m.spec.Vocab)
		}
		copy(x.Row(i), s.m.Embed.Row(tok))
	}
	out, err := s.forward(x, passVerify)
	if err != nil {
		return nil, err
	}
	// Per-row logits: rmsNorm and the tied-embedding projection are
	// row-wise, so row i here equals logits() of a 1-row forward ending
	// at that row.
	lg := tensor.MatMulTransB(rmsNorm(out), s.m.Embed)
	next := make([]int, len(toks))
	for i := range next {
		next[i] = argmax(lg.Row(i))
	}
	return next, nil
}

// Truncate rolls every head's cache back to n tokens, discarding the
// most recently appended rows — the rejected suffix of a verify window.
// After it returns, the session's state (cache contents and quantizer
// stream positions) is bit-identical to one that never saw the dropped
// tokens.
func (s *Session) Truncate(n int) error {
	for l, row := range s.heads {
		for h, head := range row {
			bv, ok := head.(attention.BatchVerifier)
			if !ok {
				return fmt.Errorf("model: layer %d head %d cannot truncate", l, h)
			}
			if err := bv.Truncate(n); err != nil {
				return fmt.Errorf("layer %d head %d: %w", l, h, err)
			}
		}
	}
	return nil
}
