package model

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/kvcache"
	"github.com/hackkv/hack/internal/tensor"
)

// Transformer is a numeric decoder-only transformer with deterministic
// synthetic weights. It is the substrate for the accuracy experiments:
// the same Transformer is run once per attention backend and the
// generated token sequences are compared.
type Transformer struct {
	spec Spec
	// Embed maps tokens to hidden states (vocab × hidden); the output
	// projection is tied to Embedᵀ, which keeps logits well-scaled.
	Embed *tensor.Matrix
	// layers holds the per-layer weights.
	layers []layerWeights
}

type layerWeights struct {
	wq     *tensor.Matrix // hidden × heads·d_h
	wk, wv *tensor.Matrix // hidden × kvHeads·d_h (grouped-query attention)
	wo     *tensor.Matrix // heads·d_h × hidden
	w1     *tensor.Matrix // hidden × mlp
	w2     *tensor.Matrix // mlp × hidden
}

// NewTransformer builds a model with N(0, 1/√fanIn) weights from the
// given seed. The same (spec, seed) pair always yields bit-identical
// weights, so backends see the same model.
func NewTransformer(spec Spec, seed int64) (*Transformer, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Heads*spec.HeadDim != spec.Hidden {
		return nil, fmt.Errorf("model: heads·d_h %d != hidden %d (numeric model requires equality)",
			spec.Heads*spec.HeadDim, spec.Hidden)
	}
	if spec.Vocab <= 1 || spec.MLPDim <= 0 {
		return nil, fmt.Errorf("model: vocab %d / mlp %d", spec.Vocab, spec.MLPDim)
	}
	rng := rand.New(rand.NewSource(seed))
	h := spec.Hidden
	kvWidth := spec.KVHeads * spec.HeadDim
	m := &Transformer{
		spec:  spec,
		Embed: tensor.RandNormal(rng, spec.Vocab, h, 1/math.Sqrt(float64(h))),
	}
	for l := 0; l < spec.Layers; l++ {
		m.layers = append(m.layers, layerWeights{
			wq: tensor.RandNormal(rng, h, h, 1/math.Sqrt(float64(h))),
			wk: tensor.RandNormal(rng, h, kvWidth, 1/math.Sqrt(float64(h))),
			wv: tensor.RandNormal(rng, h, kvWidth, 1/math.Sqrt(float64(h))),
			wo: tensor.RandNormal(rng, h, h, 1/math.Sqrt(float64(h))),
			w1: tensor.RandNormal(rng, h, spec.MLPDim, 1/math.Sqrt(float64(h))),
			w2: tensor.RandNormal(rng, spec.MLPDim, h, 1/math.Sqrt(float64(spec.MLPDim))),
		})
	}
	return m, nil
}

// Spec returns the architecture.
func (m *Transformer) Spec() Spec { return m.spec }

// rmsNorm normalizes each row to unit RMS.
func rmsNorm(x *tensor.Matrix) *tensor.Matrix {
	out := x.Clone()
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		var ss float64
		for _, v := range row {
			ss += float64(v) * float64(v)
		}
		inv := float32(1 / math.Sqrt(ss/float64(len(row))+1e-6))
		for j := range row {
			row[j] *= inv
		}
	}
	return out
}

// silu applies x·σ(x) in place.
func silu(x *tensor.Matrix) *tensor.Matrix {
	for i, v := range x.Data {
		x.Data[i] = v / float32(1+math.Exp(float64(-v)))
	}
	return x
}

// Session is per-sequence inference state: one attention.Head per
// (layer, head) built from the chosen backend.
type Session struct {
	m       *Transformer
	backend attention.Backend
	heads   [][]attention.Head
	// Stats accumulates attention work across the whole session.
	Stats attention.Stats
}

// NewSession prepares a fresh sequence against the given backend.
func (m *Transformer) NewSession(b attention.Backend) (*Session, error) {
	s := &Session{m: m, backend: b}
	for l := 0; l < m.spec.Layers; l++ {
		var row []attention.Head
		for h := 0; h < m.spec.Heads; h++ {
			head, err := b.NewHead(m.spec.HeadDim)
			if err != nil {
				return nil, err
			}
			row = append(row, head)
		}
		s.heads = append(s.heads, row)
	}
	return s, nil
}

// RestoreSession rebuilds a sequence's inference state from per-(layer,
// head) attention heads reconstructed elsewhere — the decode instance's
// entry point after a disaggregated KV transfer. heads must be indexed
// [layer][head] and match the architecture exactly.
func (m *Transformer) RestoreSession(b attention.Backend, heads [][]attention.Head) (*Session, error) {
	if len(heads) != m.spec.Layers {
		return nil, fmt.Errorf("model: restore with %d layers, want %d", len(heads), m.spec.Layers)
	}
	for l, row := range heads {
		if len(row) != m.spec.Heads {
			return nil, fmt.Errorf("model: restore layer %d with %d heads, want %d", l, len(row), m.spec.Heads)
		}
		for h, head := range row {
			if head == nil {
				return nil, fmt.Errorf("model: restore layer %d head %d is nil", l, h)
			}
		}
	}
	return &Session{m: m, backend: b, heads: heads}, nil
}

// Head returns the attention state of one (layer, head) — the prefill
// instance reads cache contents through this for the KV transfer.
func (s *Session) Head(layer, head int) attention.Head { return s.heads[layer][head] }

// pass selects which per-head attention entry point a forward run uses.
type pass int

const (
	passPrefill pass = iota
	passDecode
	// passResume continues a prefill over restored prefix pages: x holds
	// only the prompt suffix's hidden states, and each head must
	// implement attention.PrefixResumer.
	passResume
	// passVerify batch-verifies a speculative window: x holds the
	// window's hidden states, and each head must implement
	// attention.BatchVerifier.
	passVerify
)

// forward runs the transformer over x (L×hidden) through the selected
// pass and returns the final hidden states.
func (s *Session) forward(x *tensor.Matrix, p pass) (*tensor.Matrix, error) {
	spec := s.m.spec
	for l, w := range s.m.layers {
		xn := rmsNorm(x)
		q := tensor.MatMul(xn, w.wq)
		if g := s.m.spec.ScoreGain; g > 0 && g != 1 {
			q.Scale(float32(g))
		}
		k := tensor.MatMul(xn, w.wk)
		v := tensor.MatMul(xn, w.wv)
		concat := tensor.New(x.Rows, spec.Hidden)
		group := spec.Heads / spec.KVHeads
		for h := 0; h < spec.Heads; h++ {
			lo, hi := h*spec.HeadDim, (h+1)*spec.HeadDim
			// Grouped-query attention: query head h reads the KV
			// projection of group h/group (each query head keeps its
			// own backend cache; sharing is a memory optimization the
			// cluster-level model accounts for separately).
			klo := (h / group) * spec.HeadDim
			qh := q.SliceCols(lo, hi)
			kh := k.SliceCols(klo, klo+spec.HeadDim)
			vh := v.SliceCols(klo, klo+spec.HeadDim)
			var (
				oh  *tensor.Matrix
				st  attention.Stats
				err error
			)
			switch p {
			case passPrefill:
				oh, st, err = s.heads[l][h].Prefill(qh, kh, vh)
			case passResume:
				r, ok := s.heads[l][h].(attention.PrefixResumer)
				if !ok {
					return nil, fmt.Errorf("layer %d head %d: backend cannot resume a prefill", l, h)
				}
				oh, st, err = r.ResumePrefill(qh, kh, vh)
			case passVerify:
				bv, ok := s.heads[l][h].(attention.BatchVerifier)
				if !ok {
					return nil, fmt.Errorf("layer %d head %d: backend cannot batch-verify", l, h)
				}
				oh, st, err = bv.DecodeBatch(qh, kh, vh)
			default:
				oh, st, err = s.heads[l][h].Decode(qh, kh, vh)
			}
			if err != nil {
				return nil, fmt.Errorf("layer %d head %d: %w", l, h, err)
			}
			s.Stats.Add(st)
			for i := 0; i < oh.Rows; i++ {
				copy(concat.Row(i)[lo:hi], oh.Row(i))
			}
		}
		x = x.Clone().Add(tensor.MatMul(concat, w.wo))
		mlpIn := rmsNorm(x)
		x = x.Add(tensor.MatMul(silu(tensor.MatMul(mlpIn, w.w1)), w.w2))
	}
	return x, nil
}

// logits projects the last row of hidden states onto the tied embedding.
func (s *Session) logits(x *tensor.Matrix) []float32 {
	last := tensor.FromSlice(1, x.Cols, x.Row(x.Rows-1))
	return tensor.MatMulTransB(rmsNorm(last), s.m.Embed).Row(0)
}

// argmax returns the index of the largest logit, breaking ties low.
func argmax(xs []float32) int {
	best, bestV := 0, float32(math.Inf(-1))
	for i, v := range xs {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// PrefillLogits processes the prompt and returns the next-token logits.
func (s *Session) PrefillLogits(prompt []int) ([]float32, error) {
	if len(prompt) == 0 {
		return nil, fmt.Errorf("model: empty prompt")
	}
	x := tensor.New(len(prompt), s.m.spec.Hidden)
	for i, tok := range prompt {
		if tok < 0 || tok >= s.m.spec.Vocab {
			return nil, fmt.Errorf("model: token %d out of vocab %d", tok, s.m.spec.Vocab)
		}
		copy(x.Row(i), s.m.Embed.Row(tok))
	}
	out, err := s.forward(x, passPrefill)
	if err != nil {
		return nil, err
	}
	return s.logits(out), nil
}

// ResumePrefillLogits continues a prefill whose first cached prompt
// tokens already sit in every head's restored KV cache (the shared-
// prefix warm path): only prompt[cached:] is embedded and forwarded,
// and the returned next-token logits are bit-identical to a cold
// PrefillLogits over the whole prompt for the same backend seed.
// Requires 0 < cached < len(prompt) and heads that implement
// attention.PrefixResumer.
func (s *Session) ResumePrefillLogits(prompt []int, cached int) ([]float32, error) {
	if cached <= 0 || cached >= len(prompt) {
		return nil, fmt.Errorf("model: resume with %d cached of %d prompt tokens", cached, len(prompt))
	}
	suffix := prompt[cached:]
	x := tensor.New(len(suffix), s.m.spec.Hidden)
	for i, tok := range suffix {
		if tok < 0 || tok >= s.m.spec.Vocab {
			return nil, fmt.Errorf("model: token %d out of vocab %d", tok, s.m.spec.Vocab)
		}
		copy(x.Row(i), s.m.Embed.Row(tok))
	}
	out, err := s.forward(x, passResume)
	if err != nil {
		return nil, err
	}
	return s.logits(out), nil
}

// ResumePrefill continues a prefill over restored prefix pages (see
// ResumePrefillLogits) and returns the first generated token.
func (s *Session) ResumePrefill(prompt []int, cached int) (int, error) {
	lg, err := s.ResumePrefillLogits(prompt, cached)
	if err != nil {
		return 0, err
	}
	return argmax(lg), nil
}

// DecodeLogits feeds one token and returns the next-token logits.
func (s *Session) DecodeLogits(tok int) ([]float32, error) {
	if tok < 0 || tok >= s.m.spec.Vocab {
		return nil, fmt.Errorf("model: token %d out of vocab %d", tok, s.m.spec.Vocab)
	}
	x := tensor.New(1, s.m.spec.Hidden)
	copy(x.Row(0), s.m.Embed.Row(tok))
	out, err := s.forward(x, passDecode)
	if err != nil {
		return nil, err
	}
	return s.logits(out), nil
}

// Prefill processes the prompt and returns the first generated token.
func (s *Session) Prefill(prompt []int) (int, error) {
	lg, err := s.PrefillLogits(prompt)
	if err != nil {
		return 0, err
	}
	return argmax(lg), nil
}

// Decode feeds one token and returns the next.
func (s *Session) Decode(tok int) (int, error) {
	lg, err := s.DecodeLogits(tok)
	if err != nil {
		return 0, err
	}
	return argmax(lg), nil
}

// Generate runs prefill on the prompt and greedy decoding for up to
// maxNew tokens, stopping early on eos (pass a negative eos to disable).
// It returns the generated tokens (excluding the prompt).
func (s *Session) Generate(prompt []int, maxNew, eos int) ([]int, error) {
	tok, err := s.Prefill(prompt)
	if err != nil {
		return nil, err
	}
	out := []int{tok}
	for len(out) < maxNew {
		if tok == eos {
			break
		}
		tok, err = s.Decode(tok)
		if err != nil {
			return out, err
		}
		out = append(out, tok)
	}
	return out, nil
}

// HeadUsage returns the KV cache usage of one (layer, head).
func (s *Session) HeadUsage(layer, head int) kvcache.Usage {
	return s.heads[layer][head].CacheUsage()
}

// CacheUsageTotal sums the KV cache footprint across all layers/heads.
func (s *Session) CacheUsageTotal() int {
	total := 0
	for _, row := range s.heads {
		for _, h := range row {
			total += h.CacheUsage().Total()
		}
	}
	return total
}

// WireSizeTotal sums the prefill→decode KV transfer size across all
// layers/heads.
func (s *Session) WireSizeTotal() int {
	total := 0
	for _, row := range s.heads {
		for _, h := range row {
			total += h.WireSize()
		}
	}
	return total
}
