package hack

// Analytic operation-count formulas from §5.2 and §5.3 of the paper.
// The performance model (internal/cluster) prices these against each
// instance's INT8 and FP16 throughput; the numeric kernels in this
// package report measured tallies so tests can cross-check the formulas.

// IntMatMulOps returns the integer operation count of the quantized
// matmul C′ = A′·B′ for an M×Z by Z×N product: 2·M·Z·N.
func IntMatMulOps(m, z, n int) int64 { return 2 * int64(m) * int64(z) * int64(n) }

// ApproxOps returns the cost of approximating C′ into C per Eq. (4)
// without summation elimination: 9MN + MZ + NZ.
func ApproxOps(m, z, n int) int64 {
	return 9*int64(m)*int64(n) + int64(m)*int64(z) + int64(n)*int64(z)
}

// ApproxOpsSE returns the Eq. (4) approximation cost when the Σ b′ column
// sums are cached (summation elimination): 9MN + MZ.
func ApproxOpsSE(m, z, n int) int64 {
	return 9*int64(m)*int64(n) + int64(m)*int64(z)
}

// DecodeApproxOpsSE returns the total approximation cost of one decode
// iteration with SE across both attention matmuls (Q·Kᵀ with M=1, Z=d_h,
// N=L and P·V with M=1, Z=L, N=d_h): 10·(d_h + L), the §5.3 result.
func DecodeApproxOpsSE(dh, lkv int) int64 {
	return ApproxOpsSE(1, dh, lkv) + ApproxOpsSE(1, lkv, dh)
}

// DecodeApproxOps is DecodeApproxOpsSE without summation elimination:
// 10·(d_h + L) + 2·d_h·L, the HACK/SE ablation cost.
func DecodeApproxOps(dh, lkv int) int64 {
	return ApproxOps(1, dh, lkv) + ApproxOps(1, lkv, dh)
}

// DequantKVOps returns the per-iteration cost of dequantizing the full K
// and V for one head in the baseline quantization methods: 2·d_h·L for
// each of K and V, totaling 4·d_h·L (§5.3).
func DequantKVOps(dh, lkv int) int64 { return 4 * int64(dh) * int64(lkv) }
