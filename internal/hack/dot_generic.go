//go:build !amd64

package hack

// Non-amd64 builds always take the unrolled pure-Go dot product.
const hasAVX2 = false

// dotMADD is never reached when hasAVX2 is false; it exists so the
// kernels compile on every architecture.
func dotMADD(u, s []uint8) int32 { return dotU8(u, s) }

// dotU8MADDBlocks is likewise unreachable off amd64.
func dotU8MADDBlocks(u, s *uint8, blocks, bl int, out *int32) {
	panic("hack: dotU8MADDBlocks without AVX2")
}

// dotU8MADDBlocks4 is likewise unreachable off amd64.
func dotU8MADDBlocks4(u0, u1, u2, u3, s *uint8, blocks, bl int, out *int32) {
	panic("hack: dotU8MADDBlocks4 without AVX2")
}

// dotU8MADDBlocks8 is likewise unreachable off amd64.
func dotU8MADDBlocks8(u *uint8, ustride int, s *uint8, blocks, bl int, out *int32) {
	panic("hack: dotU8MADDBlocks8 without AVX2")
}
