// Package hack implements the paper's primary contribution: homomorphic
// quantization for matrix multiplication (§5.2, Eq. 4).
//
// For C = A·B with A and B quantized per partition (min m, scale s), the
// integer product C′ = A′·B′ is computed directly on the quantized codes
// — on GPUs this runs on INT8 tensor cores; here it runs on uint8 codes
// with int32 accumulation — and is then transformed into an approximation
// of C:
//
//	Σ_z a_iz·b_zj ≈ s_ai·s_bj·Σ_z a′_iz·b′_zj   (quantized matmul)
//	             + m_bj·s_ai·Σ_z a′_iz          (cached row sums of A′)
//	             + m_ai·s_bj·Σ_z b′_zj          (cached col sums of B′ — SE)
//	             + Z·m_ai·m_bj
//
// applied per partition block (Fig. 6b) and summed across blocks. The
// inputs are never dequantized; that is the entire point.
//
// Two implementations coexist. MatMulScalar/MatMulTransBScalar (scalar.go)
// are the straight-line reference kernels. MatMul/MatMulTransB are the
// fast kernels: B's block codes are packed once per call into contiguous
// per-column panels (fixing the column-strided walk), the per-block
// (min, scale, Σ) metadata is gathered into block-major arrays, the i/j
// loops are tiled for cache reuse, the uint8×uint8→int32 dot product is
// unrolled eight wide, and independent output tiles run in parallel on a
// bounded worker pool sized like the sweep pool (Options.Parallelism).
// Because every output element still accumulates its per-block terms in
// the same order with the same float expression, the fast kernels are
// bit-identical to the scalar reference at every parallelism level — the
// property the deterministic experiment goldens rely on.
//
// The package also exposes the op-count formulas of §5.2/§5.3 used by the
// performance model, and an Ops accumulator that the numeric kernels fill
// in so benchmarks can cross-check the analytic counts.
package hack

import (
	"sync"

	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/sweeprun"
	"github.com/hackkv/hack/internal/tensor"
)

// Options control the homomorphic multiplication.
type Options struct {
	// ReuseSums applies summation elimination (§5.3): the per-partition
	// integer column sums Σ b′ cached on the quantized tensor are used
	// directly. When false (the HACK/SE ablation) the sums are
	// recomputed from the codes on every call and charged to Ops.
	ReuseSums bool
	// Parallelism bounds the worker goroutines one multiplication may
	// fan out across output tiles: 0 picks one worker per CPU (the same
	// sizing as the sweep pool), 1 — or any negative value — forces the
	// serial path, and n > 1 caps the fan-out at n. Small products
	// always run serially, and the result is bit-identical at every
	// setting.
	Parallelism int
}

// DefaultOptions enables every HACK optimization.
func DefaultOptions() Options { return Options{ReuseSums: true} }

// Ops tallies the work performed by a homomorphic multiplication, split
// the way the paper's cost analysis splits it.
type Ops struct {
	// IntMACs counts integer multiply-accumulates in the quantized
	// matmul C′ = A′·B′ (2·M·Z·N operations counting mul+add).
	IntMACs int64
	// ApproxFlops counts floating-point operations in the Eq. (4)
	// correction terms.
	ApproxFlops int64
	// SumRecomputeOps counts integer additions spent recomputing Σ b′
	// when summation elimination is disabled.
	SumRecomputeOps int64
}

// Add accumulates o2 into o.
func (o *Ops) Add(o2 Ops) {
	o.IntMACs += o2.IntMACs
	o.ApproxFlops += o2.ApproxFlops
	o.SumRecomputeOps += o2.SumRecomputeOps
}

// tileJ is the output-column tile width: a panel tile (tileJ × Π codes)
// stays resident in L1 while successive A rows stream against it.
const tileJ = 64

// parallelMinMACs is the work floor (M·Z·N) below which a multiplication
// never fans out: goroutine startup would cost more than it saves on
// decode-sized operands from short sequences.
const parallelMinMACs = 128 << 10

// kernelScratch holds the per-call packing buffers, recycled through a
// sync.Pool so steady-state multiplications allocate nothing.
type kernelScratch struct {
	panel      []uint8   // B codes packed into per-column contiguous panels
	mb, sb, bs []float32 // block-major min / scale / Σ-as-float32 of B
	sums       []int32   // recomputed Σ b′ for the no-SE ablation
	accs       []int32   // per-column integer accumulators (sweep kernel)
}

var scratchPool = sync.Pool{New: func() any { return new(kernelScratch) }}

// workersFor resolves the Parallelism knob against the work size.
func workersFor(parallelism int, m, z, n int) int {
	if int64(m)*int64(z)*int64(n) < parallelMinMACs {
		return 1
	}
	if parallelism == 1 || parallelism < 0 {
		return 1 // explicit serial; negative is treated as "no fan-out"
	}
	w := sweeprun.DefaultWorkers()
	if parallelism > 1 && parallelism < w {
		w = parallelism
	}
	return w
}

// maddMode selects the dot-product implementation for one multiplication.
type maddMode int

const (
	maddOff     maddMode = iota // pure-Go unrolled dot
	maddBSigned                 // AVX2, B codes in the signed lane
	maddASigned                 // AVX2, A codes in the signed lane
)

// maddFor picks the dot path: the AVX2 VPMADDUBSW kernel needs one
// operand whose codes fit 6 bits in the signed lane (see dot_amd64.go);
// the other side may use the full 8. Results are bit-identical on every
// path.
func maddFor(aBits, bBits int) maddMode {
	if !hasAVX2 {
		return maddOff
	}
	if bBits <= 6 {
		return maddBSigned
	}
	if aBits <= 6 {
		return maddASigned
	}
	return maddOff
}

// dot computes the block dot product under the selected mode.
func dot(mode maddMode, aRow, bRow []uint8) int32 {
	switch mode {
	case maddBSigned:
		return dotMADD(aRow, bRow)
	case maddASigned:
		return dotMADD(bRow, aRow)
	default:
		return dotU8(aRow, bRow)
	}
}

// dotU8 returns Σ a[k]·b[k] over uint8 codes with int32 accumulation,
// unrolled eight wide into four independent accumulators so the compiler
// can keep the adds off the critical path (and vectorize where it can).
// Integer addition is associative, so the result is exact regardless of
// the accumulation order.
func dotU8(a, b []uint8) int32 {
	b = b[:len(a)] // bounds-check hint
	var s0, s1, s2, s3 int32
	k := 0
	for ; k+8 <= len(a); k += 8 {
		s0 += int32(a[k])*int32(b[k]) + int32(a[k+4])*int32(b[k+4])
		s1 += int32(a[k+1])*int32(b[k+1]) + int32(a[k+5])*int32(b[k+5])
		s2 += int32(a[k+2])*int32(b[k+2]) + int32(a[k+6])*int32(b[k+6])
		s3 += int32(a[k+3])*int32(b[k+3]) + int32(a[k+7])*int32(b[k+7])
	}
	for ; k < len(a); k++ {
		s0 += int32(a[k]) * int32(b[k])
	}
	return s0 + s1 + s2 + s3
}

// packMeta gathers B's per-(vector, block) metadata — laid out
// vector-major on the tensor — into block-major arrays (index g·n + j),
// so the generic tile's inner j loop reads it contiguously. The Σ sums
// are converted to float32 here, exactly the conversion the scalar
// kernel performs per element.
func packMeta(ks *kernelScratch, min, scale []float32, sums []int32, n, nb int) {
	ks.mb = tensor.Grow(ks.mb, nb*n)
	ks.sb = tensor.Grow(ks.sb, nb*n)
	ks.bs = tensor.Grow(ks.bs, nb*n)
	for j := 0; j < n; j++ {
		base := j * nb
		for g := 0; g < nb; g++ {
			ks.mb[g*n+j] = min[base+g]
			ks.sb[g*n+j] = scale[base+g]
			ks.bs[g*n+j] = float32(sums[base+g])
		}
	}
}

// maxBlockedNB caps the per-row block count the single-call AVX2 block
// kernel handles (its accumulator array lives on the tile's stack).
const maxBlockedNB = 64

// verifyRowsMax bounds the row count treated as a batch-verify shape
// (column-outer loop order in blockedTile): beyond it the query rows no
// longer fit comfortably in L1 and the row-outer prefill order wins.
const verifyRowsMax = 32

// packMinRows is the output-row count below which MatMul skips the
// transposed pack of B: packing costs one O(Z·N) pass, so it must be
// amortized over at least a few rows to win over the row-major sweep.
const packMinRows = 8

// packAmortRows scales that threshold with the inner dimension: the
// pack is a cache-hostile column-scatter over the whole Z×N panel, so
// for long inner dimensions (a verify window's P·V over a deep cache)
// it dwarfs the SIMD saving unless enough output rows share it.
// Empirically the pack pays for itself at roughly one output row per
// 128 columns of Z: an 8-row window over Z=2048 runs faster swept,
// while a 32-row prefill over Z=256 is ~7× faster packed.
const packAmortRows = 128

// sweepRows computes an M-row (M < packMinRows) product against B in its
// original row-major layout: for each partition, the inner rows of B
// stream contiguously while every output column accumulates in
// ks.accs — no packing pass, no strided reads. Integer accumulation is
// exact and each output element applies its Eq. (4) correction in
// ascending block order with the scalar kernel's expression, so the
// result is bit-identical to the reference. Runs serially: decode-shaped
// callers parallelize across heads, not within this product.
func sweepRows(dst *tensor.Matrix, a *quant.Tensor, ks *kernelScratch, bCodes []uint8,
	bMin, bScale []float32, bSums []int32, m, z, n int) {
	nb := a.NBlocks
	ks.accs = tensor.Grow(ks.accs, n)
	accs := ks.accs[:n]
	for i := 0; i < m; i++ {
		aRow := a.Codes[i*z : (i+1)*z]
		oRow := dst.Row(i)
		for g := 0; g < nb; g++ {
			lo, hi := a.BlockRange(g)
			blockLen := float32(hi - lo)
			for j := range accs {
				accs[j] = 0
			}
			for k := lo; k < hi; k++ {
				av := int32(aRow[k])
				if av == 0 {
					continue
				}
				brow := bCodes[k*n : (k+1)*n]
				for j, c := range brow {
					accs[j] += av * int32(c)
				}
			}
			ma, sa := a.Meta(i, g)
			aSum := float32(a.Sum(i, g))
			for j := 0; j < n; j++ {
				mb, sb := bMin[j*nb+g], bScale[j*nb+g]
				bSum := float32(bSums[j*nb+g])
				// Eq. (4) correction terms, scalar expression and order.
				oRow[j] += sa*sb*float32(accs[j]) +
					mb*sa*aSum +
					ma*sb*bSum +
					blockLen*ma*mb
			}
		}
	}
}

// MatMul computes the homomorphic-quantized product of a (M×Z, quantized
// along columns) and b (Z×N, quantized along rows). The partition sizes
// must match so the blocks of the two operands align on the inner
// dimension. It returns the approximated real-valued product and the op
// tally.
func MatMul(a, b *quant.Tensor, opt Options) (*tensor.Matrix, Ops) {
	out := &tensor.Matrix{}
	ops := MatMulInto(out, a, b, opt)
	return out, ops
}

// MatMulInto is MatMul with a caller-supplied destination: dst is
// reshaped to M×N (reusing its backing array when possible) and
// overwritten with the product. It is the allocation-free path the
// attention decode loop runs every token.
//
// Tall products (M ≥ packMinRows) pack B's codes once per call into a
// transposed copy — per-output-column contiguous runs, fixing the scalar
// kernel's column-strided inner loop — after which the multiplication
// shares the Q·Kᵀ kernel's tiles; the O(Z·N) packing pass amortizes
// across the M output rows. Short products (the decode P·V step, M = 1)
// skip packing entirely and sweep B row-major instead, accumulating all
// N output columns per inner row — for those shapes a per-call repack
// would cost as much as the multiply itself.
func MatMulInto(dst *tensor.Matrix, a, b *quant.Tensor, opt Options) Ops {
	checkMatMulShapes(a, b)
	m, z, n := a.Rows, a.Cols, b.Cols
	dst.Reset(m, n)
	var ops Ops
	if z == 0 {
		return ops
	}

	ks := scratchPool.Get().(*kernelScratch)
	defer scratchPool.Put(ks)

	bSums := b.Sums
	if !opt.ReuseSums {
		ks.sums = tensor.Grow(ks.sums, len(b.Sums))
		recomputeColSumsInto(ks.sums, b)
		bSums = ks.sums
		ops.SumRecomputeOps += int64(z) * int64(n)
	}

	if m < packMinRows || m*packAmortRows < z {
		sweepRows(dst, a, ks, b.Codes, b.Min, b.Scale, bSums, m, z, n)
	} else {
		// Pack B transposed: column j's codes become the contiguous run
		// ks.panel[j·z : (j+1)·z]. Reads stream row-major.
		ks.panel = tensor.Grow(ks.panel, n*z)
		for zi := 0; zi < z; zi++ {
			row := b.Codes[zi*n : (zi+1)*n]
			for j, c := range row {
				ks.panel[j*z+zi] = c
			}
		}
		runTiles(dst, a, ks, ks.panel, b.Min, b.Scale, bSums, b.Bits, opt, m, z, n)
	}

	nb := a.NBlocks
	ops.IntMACs = 2 * int64(m) * int64(z) * int64(n)
	// Approximation flop count per the §5.2 analysis: 9MN per block pair
	// plus the A row sums (MZ); the B column sums (NZ) are either cached
	// (SE) or counted above as SumRecomputeOps.
	ops.ApproxFlops = int64(nb)*9*int64(m)*int64(n) + int64(m)*int64(z)
	return ops
}

// MatMulTransB computes the homomorphic product A·Bᵀ where bT holds B
// row-major with shape N×Z quantized along columns — the natural layout
// for Q·Kᵀ with K stored token-major. Partition blocks align on the
// shared inner dimension Z.
func MatMulTransB(a, bT *quant.Tensor, opt Options) (*tensor.Matrix, Ops) {
	out := &tensor.Matrix{}
	ops := MatMulTransBInto(out, a, bT, opt)
	return out, ops
}

// MatMulTransBInto is MatMulTransB with a caller-supplied destination,
// reshaped to M×N and overwritten. bT's rows are already contiguous along
// the inner dimension, so no packing is needed — the codes feed the
// shared tiles directly.
func MatMulTransBInto(dst *tensor.Matrix, a, bT *quant.Tensor, opt Options) Ops {
	checkMatMulTransBShapes(a, bT)
	m, z, n := a.Rows, a.Cols, bT.Rows
	dst.Reset(m, n)
	var ops Ops
	if z == 0 {
		return ops
	}

	ks := scratchPool.Get().(*kernelScratch)
	defer scratchPool.Put(ks)

	bSums := bT.Sums
	if !opt.ReuseSums {
		ks.sums = tensor.Grow(ks.sums, len(bT.Sums))
		recomputeRowSumsInto(ks.sums, bT)
		bSums = ks.sums
		ops.SumRecomputeOps += int64(z) * int64(n)
	}

	runTiles(dst, a, ks, bT.Codes, bT.Min, bT.Scale, bSums, bT.Bits, opt, m, z, n)

	nb := a.NBlocks
	ops.IntMACs = 2 * int64(m) * int64(z) * int64(n)
	ops.ApproxFlops = int64(nb)*9*int64(m)*int64(n) + int64(m)*int64(z)
	return ops
}

// runTiles executes the shared kernel body over output tiles. bCodes
// holds B with per-output-column contiguous inner runs (bCodes[j·z+k]),
// bMin/bScale/bSums its vector-major metadata. Two inner kernels exist:
// the AVX2 block kernel computes every partition dot of a row pair in
// one call (eligible when the partitions are full multiples of 32, the
// usual d_h/Π geometry), and the generic tile handles everything else.
// Both accumulate each output element's per-block terms in ascending
// block order with the scalar kernel's exact float expression, so any
// tiling and either kernel is bit-identical to the reference.
func runTiles(dst *tensor.Matrix, a *quant.Tensor, ks *kernelScratch, bCodes []uint8,
	bMin, bScale []float32, bSums []int32, bBits int, opt Options, m, z, n int) {
	nb := a.NBlocks
	mode := maddFor(a.Bits, bBits)
	blocked := mode != maddOff && a.Pi%32 == 0 && nb*a.Pi == z && nb <= maxBlockedNB
	if !blocked {
		packMeta(ks, bMin, bScale, bSums, n, nb)
	}
	workers := workersFor(opt.Parallelism, m, z, n)
	if workers == 1 {
		// Direct calls: the serial hot path must not allocate a closure.
		if blocked {
			blockedTile(dst, a, bCodes, bMin, bScale, bSums, mode, 0, m, 0, n)
		} else {
			genericTile(dst, a, ks, bCodes, mode, 0, m, 0, n)
		}
		return
	}
	tile := func(rlo, rhi, clo, chi int) {
		if blocked {
			blockedTile(dst, a, bCodes, bMin, bScale, bSums, mode, rlo, rhi, clo, chi)
		} else {
			genericTile(dst, a, ks, bCodes, mode, rlo, rhi, clo, chi)
		}
	}
	if m >= workers {
		sweeprun.ParallelFor(m, workers, func(rlo, rhi int) { tile(rlo, rhi, 0, n) })
	} else {
		sweeprun.ParallelFor(n, workers, func(clo, chi int) { tile(0, m, clo, chi) })
	}
}

// blockedTile computes output rows [rlo, rhi) × columns [clo, chi) with
// one dotU8MADDBlocks call per output element covering all partitions.
func blockedTile(dst *tensor.Matrix, a *quant.Tensor, bCodes []uint8,
	bMin, bScale []float32, bSums []int32, mode maddMode, rlo, rhi, clo, chi int) {
	z := a.Cols
	nb := a.NBlocks
	pi := a.Pi
	blockLen := float32(pi)
	var accs [maxBlockedNB]int32
	if rhi-rlo > 1 && rhi-rlo <= verifyRowsMax {
		// Batch-verify shape: a handful of query rows against a long
		// cache. The rows are processed in register-blocked groups of
		// eight, then four, then singles; each group sweeps the columns
		// in buffered tiles (verifyTile) so every loaded cache row is
		// scored against the whole resident group and the float
		// corrections run with the column index innermost. Each output
		// element accumulates its per-block terms in the same order and
		// expression as the row-outer path, so both are bit-identical to
		// the scalar reference.
		i := rlo
		for i < rhi {
			gw := 1
			if mode == maddBSigned {
				switch {
				case rhi-i >= 8:
					gw = 8
				case rhi-i >= 4:
					gw = 4
				}
			}
			verifyTile(dst, a, bCodes, bMin, bScale, bSums, mode, i, gw, clo, chi)
			i += gw
		}
		return
	}
	for i := rlo; i < rhi; i++ {
		aRow := a.Codes[i*z : (i+1)*z]
		aMin := a.Min[i*nb : (i+1)*nb]
		aScale := a.Scale[i*nb : (i+1)*nb]
		aSums := a.Sums[i*nb : (i+1)*nb]
		oRow := dst.Row(i)
		for j := clo; j < chi; j++ {
			bRow := bCodes[j*z : (j+1)*z]
			if mode == maddBSigned {
				dotU8MADDBlocks(&aRow[0], &bRow[0], nb, pi, &accs[0])
			} else {
				dotU8MADDBlocks(&bRow[0], &aRow[0], nb, pi, &accs[0])
			}
			bMinJ := bMin[j*nb : (j+1)*nb]
			bScaleJ := bScale[j*nb : (j+1)*nb]
			bSumJ := bSums[j*nb : (j+1)*nb]
			v := oRow[j]
			for g := 0; g < nb; g++ {
				ma, sa := aMin[g], aScale[g]
				aSum := float32(aSums[g])
				mb, sb := bMinJ[g], bScaleJ[g]
				bSum := float32(bSumJ[g])
				// Eq. (4) correction terms, in the scalar kernel's exact
				// expression and block order.
				v += sa*sb*float32(accs[g]) +
					mb*sa*aSum +
					ma*sb*bSum +
					blockLen*ma*mb
			}
			oRow[j] = v
		}
	}
}

// verifyTileBuf is the per-call dot buffer of verifyTile in int32s:
// large enough to keep a useful run of columns per tile (≥ 8 columns at
// the widest nb·group product of 64·8) while staying a 16 KiB stack
// frame.
const verifyTileBuf = 4096

// verifyTile computes one register-blocked row group [i0, i0+gw) of a
// batch-verify product across columns [clo, chi). Columns are processed
// in buffered tiles: first the integer dots of the whole tile land in
// buf — one dotU8MADDBlocks8/4 call per column scores every row of the
// group against that cache row while its codes sit in registers — then
// the Eq. (4) corrections sweep the tile row-major, column innermost,
// so the float pass streams oRow and the per-column metadata
// contiguously instead of re-deriving them per element. The per-element
// correction keeps the scalar kernel's exact expression and ascending
// block order, so the result stays bit-identical to the reference.
func verifyTile(dst *tensor.Matrix, a *quant.Tensor, bCodes []uint8,
	bMin, bScale []float32, bSums []int32, mode maddMode, i0, gw, clo, chi int) {
	z := a.Cols
	nb := a.NBlocks
	pi := a.Pi
	blockLen := float32(pi)
	var buf [verifyTileBuf]int32
	stride := nb * gw // one column's dots in buf
	tj := verifyTileBuf / stride
	var oRows [8][]float32
	var aMinR, aScaleR [8][]float32
	var aSumsR [8][]int32
	for r := 0; r < gw; r++ {
		ir := i0 + r
		oRows[r] = dst.Row(ir)
		aMinR[r] = a.Min[ir*nb : (ir+1)*nb]
		aScaleR[r] = a.Scale[ir*nb : (ir+1)*nb]
		aSumsR[r] = a.Sums[ir*nb : (ir+1)*nb]
	}
	for j0 := clo; j0 < chi; j0 += tj {
		j1 := j0 + tj
		if j1 > chi {
			j1 = chi
		}
		for jj, j := 0, j0; j < j1; jj, j = jj+1, j+1 {
			bRow := bCodes[j*z : (j+1)*z]
			out := &buf[jj*stride]
			switch gw {
			case 8:
				dotU8MADDBlocks8(&a.Codes[i0*z], z, &bRow[0], nb, pi, out)
			case 4:
				dotU8MADDBlocks4(&a.Codes[i0*z], &a.Codes[(i0+1)*z],
					&a.Codes[(i0+2)*z], &a.Codes[(i0+3)*z], &bRow[0], nb, pi, out)
			default:
				aRow := a.Codes[i0*z : (i0+1)*z]
				if mode == maddBSigned {
					dotU8MADDBlocks(&aRow[0], &bRow[0], nb, pi, out)
				} else {
					dotU8MADDBlocks(&bRow[0], &aRow[0], nb, pi, out)
				}
			}
		}
		// Corrections, column-outer with the rows innermost: the dots of
		// one (column, block) pair sit contiguously in buf, the column's
		// metadata loads once for the whole group, and each element still
		// receives its per-block terms in ascending block order with the
		// scalar expression, so bit-identity with the reference holds.
		for jj, j := 0, j0; j < j1; jj, j = jj+1, j+1 {
			base := jj * stride
			for g := 0; g < nb; g++ {
				mb, sb := bMin[j*nb+g], bScale[j*nb+g]
				bSum := float32(bSums[j*nb+g])
				dots := buf[base+g*gw : base+(g+1)*gw]
				for r := 0; r < gw; r++ {
					ma, sa := aMinR[r][g], aScaleR[r][g]
					aSum := float32(aSumsR[r][g])
					oRows[r][j] += sa*sb*float32(dots[r]) +
						mb*sa*aSum +
						ma*sb*bSum +
						blockLen*ma*mb
				}
			}
		}
	}
}

// genericTile computes output rows [rlo, rhi) × columns [clo, chi) with
// per-block dots: block-major packed metadata, j-tiling for cache reuse,
// and the dispatched dot product.
func genericTile(dst *tensor.Matrix, a *quant.Tensor, ks *kernelScratch, bCodes []uint8,
	mode maddMode, rlo, rhi, clo, chi int) {
	z := a.Cols
	n := dst.Cols
	nb := a.NBlocks
	for g := 0; g < nb; g++ {
		lo, hi := a.BlockRange(g)
		blockLen := float32(hi - lo)
		mbs := ks.mb[g*n : g*n+n]
		sbs := ks.sb[g*n : g*n+n]
		bss := ks.bs[g*n : g*n+n]
		for j0 := clo; j0 < chi; j0 += tileJ {
			j1 := j0 + tileJ
			if j1 > chi {
				j1 = chi
			}
			for i := rlo; i < rhi; i++ {
				ma, sa := a.Meta(i, g)
				aSum := float32(a.Sum(i, g))
				aRow := a.Codes[i*z+lo : i*z+hi]
				oRow := dst.Row(i)
				for j := j0; j < j1; j++ {
					// Integer dot product over the block — the part GPUs
					// accelerate with INT8 tensor cores.
					acc := dot(mode, aRow, bCodes[j*z+lo:j*z+hi])
					mb, sb, bSum := mbs[j], sbs[j], bss[j]
					// Eq. (4) correction terms.
					oRow[j] += sa*sb*float32(acc) +
						mb*sa*aSum +
						ma*sb*bSum +
						blockLen*ma*mb
				}
			}
		}
	}
}
