// Package hack implements the paper's primary contribution: homomorphic
// quantization for matrix multiplication (§5.2, Eq. 4).
//
// For C = A·B with A and B quantized per partition (min m, scale s), the
// integer product C′ = A′·B′ is computed directly on the quantized codes
// — on GPUs this runs on INT8 tensor cores; here it runs on uint8 codes
// with int32 accumulation — and is then transformed into an approximation
// of C:
//
//	Σ_z a_iz·b_zj ≈ s_ai·s_bj·Σ_z a′_iz·b′_zj   (quantized matmul)
//	             + m_bj·s_ai·Σ_z a′_iz          (cached row sums of A′)
//	             + m_ai·s_bj·Σ_z b′_zj          (cached col sums of B′ — SE)
//	             + Z·m_ai·m_bj
//
// applied per partition block (Fig. 6b) and summed across blocks. The
// inputs are never dequantized; that is the entire point.
//
// The package also exposes the op-count formulas of §5.2/§5.3 used by the
// performance model, and an Ops accumulator that the numeric kernels fill
// in so benchmarks can cross-check the analytic counts.
package hack

import (
	"fmt"

	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// Options control the homomorphic multiplication.
type Options struct {
	// ReuseSums applies summation elimination (§5.3): the per-partition
	// integer column sums Σ b′ cached on the quantized tensor are used
	// directly. When false (the HACK/SE ablation) the sums are
	// recomputed from the codes on every call and charged to Ops.
	ReuseSums bool
}

// DefaultOptions enables every HACK optimization.
func DefaultOptions() Options { return Options{ReuseSums: true} }

// Ops tallies the work performed by a homomorphic multiplication, split
// the way the paper's cost analysis splits it.
type Ops struct {
	// IntMACs counts integer multiply-accumulates in the quantized
	// matmul C′ = A′·B′ (2·M·Z·N operations counting mul+add).
	IntMACs int64
	// ApproxFlops counts floating-point operations in the Eq. (4)
	// correction terms.
	ApproxFlops int64
	// SumRecomputeOps counts integer additions spent recomputing Σ b′
	// when summation elimination is disabled.
	SumRecomputeOps int64
}

// Add accumulates o2 into o.
func (o *Ops) Add(o2 Ops) {
	o.IntMACs += o2.IntMACs
	o.ApproxFlops += o2.ApproxFlops
	o.SumRecomputeOps += o2.SumRecomputeOps
}

// MatMul computes the homomorphic-quantized product of a (M×Z, quantized
// along columns) and b (Z×N, quantized along rows). The partition sizes
// must match so the blocks of the two operands align on the inner
// dimension. It returns the approximated real-valued product and the op
// tally.
func MatMul(a, b *quant.Tensor, opt Options) (*tensor.Matrix, Ops) {
	if a.Axis != quant.AlongCols || b.Axis != quant.AlongRows {
		panic(fmt.Sprintf("hack: MatMul needs A along-cols × B along-rows, got %v × %v", a.Axis, b.Axis))
	}
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("hack: inner dims %d != %d", a.Cols, b.Rows))
	}
	if a.Pi != b.Pi {
		panic(fmt.Sprintf("hack: partition sizes %d != %d", a.Pi, b.Pi))
	}
	m, z, n := a.Rows, a.Cols, b.Cols
	out := tensor.New(m, n)
	var ops Ops
	if z == 0 {
		return out, ops
	}

	bSums := b.Sums
	if !opt.ReuseSums {
		bSums = recomputeColSums(b)
		ops.SumRecomputeOps += int64(z) * int64(n)
	}

	nb := a.NBlocks
	for g := 0; g < nb; g++ {
		lo, hi := a.BlockRange(g)
		blockLen := float32(hi - lo)
		for i := 0; i < m; i++ {
			ma, sa := a.Meta(i, g)
			aSum := float32(a.Sum(i, g))
			aRow := a.Codes[i*z+lo : i*z+hi]
			oRow := out.Row(i)
			for j := 0; j < n; j++ {
				mb, sb := b.Meta(j, g)
				// Integer dot product over the block — the part GPUs
				// accelerate with INT8 tensor cores.
				var acc int32
				for k, av := range aRow {
					acc += int32(av) * int32(b.Codes[(lo+k)*n+j])
				}
				bSum := float32(bSums[j*nb+g])
				// Eq. (4) correction terms.
				oRow[j] += sa*sb*float32(acc) +
					mb*sa*aSum +
					ma*sb*bSum +
					blockLen*ma*mb
			}
		}
		ops.IntMACs += 2 * int64(m) * int64(hi-lo) * int64(n)
	}
	// Approximation flop count per the §5.2 analysis: 9MN per block pair
	// plus the A row sums (MZ); the B column sums (NZ) are either cached
	// (SE) or counted above as SumRecomputeOps.
	ops.ApproxFlops = int64(nb)*9*int64(m)*int64(n) + int64(m)*int64(z)
	return out, ops
}

// MatMulTransB computes the homomorphic product A·Bᵀ where bT holds B
// row-major with shape N×Z quantized along columns — the natural layout
// for Q·Kᵀ with K stored token-major. Partition blocks align on the
// shared inner dimension Z.
func MatMulTransB(a, bT *quant.Tensor, opt Options) (*tensor.Matrix, Ops) {
	if a.Axis != quant.AlongCols || bT.Axis != quant.AlongCols {
		panic(fmt.Sprintf("hack: MatMulTransB needs both operands along-cols, got %v × %v", a.Axis, bT.Axis))
	}
	if a.Cols != bT.Cols {
		panic(fmt.Sprintf("hack: inner dims %d != %d", a.Cols, bT.Cols))
	}
	if a.Pi != bT.Pi {
		panic(fmt.Sprintf("hack: partition sizes %d != %d", a.Pi, bT.Pi))
	}
	m, z, n := a.Rows, a.Cols, bT.Rows
	out := tensor.New(m, n)
	var ops Ops
	if z == 0 {
		return out, ops
	}

	bSums := bT.Sums
	if !opt.ReuseSums {
		bSums = recomputeRowSums(bT)
		ops.SumRecomputeOps += int64(z) * int64(n)
	}

	nb := a.NBlocks
	for g := 0; g < nb; g++ {
		lo, hi := a.BlockRange(g)
		blockLen := float32(hi - lo)
		for i := 0; i < m; i++ {
			ma, sa := a.Meta(i, g)
			aSum := float32(a.Sum(i, g))
			aRow := a.Codes[i*z+lo : i*z+hi]
			oRow := out.Row(i)
			for j := 0; j < n; j++ {
				mb, sb := bT.Meta(j, g)
				bRow := bT.Codes[j*z+lo : j*z+hi]
				var acc int32
				for k, av := range aRow {
					acc += int32(av) * int32(bRow[k])
				}
				bSum := float32(bSums[j*nb+g])
				oRow[j] += sa*sb*float32(acc) +
					mb*sa*aSum +
					ma*sb*bSum +
					blockLen*ma*mb
			}
		}
		ops.IntMACs += 2 * int64(m) * int64(hi-lo) * int64(n)
	}
	ops.ApproxFlops = int64(nb)*9*int64(m)*int64(n) + int64(m)*int64(z)
	return out, ops
}

// recomputeColSums rebuilds the per-(column, block) code sums of an
// along-rows tensor, the work SE avoids.
func recomputeColSums(b *quant.Tensor) []int32 {
	sums := make([]int32, len(b.Sums))
	nb := b.NBlocks
	for g := 0; g < nb; g++ {
		lo, hi := b.BlockRange(g)
		for z := lo; z < hi; z++ {
			row := b.Codes[z*b.Cols : (z+1)*b.Cols]
			for j, c := range row {
				sums[j*nb+g] += int32(c)
			}
		}
	}
	return sums
}

// recomputeRowSums rebuilds the per-(row, block) code sums of an
// along-cols tensor.
func recomputeRowSums(bT *quant.Tensor) []int32 {
	sums := make([]int32, len(bT.Sums))
	nb := bT.NBlocks
	for j := 0; j < bT.Rows; j++ {
		for g := 0; g < nb; g++ {
			lo, hi := bT.BlockRange(g)
			var s int32
			for _, c := range bT.Codes[j*bT.Cols+lo : j*bT.Cols+hi] {
				s += int32(c)
			}
			sums[j*nb+g] = s
		}
	}
	return sums
}
