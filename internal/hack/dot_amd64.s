//go:build amd64

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotU8MADD(u, s *uint8, n int) int32
//
// Σ u[k]·s[k] over n bytes (n a multiple of 32): u unsigned, s signed.
// Per 32-byte step: VPMADDUBSW forms 16 int16 pair-sums, VPMADDWD (by a
// vector of ones) widens them into 8 int32 lanes, VPADDD accumulates.
// The caller guarantees s's codes fit 6 bits so the int16 stage cannot
// saturate.
TEXT ·dotU8MADD(SB), NOSPLIT, $0-28
	MOVQ u+0(FP), SI
	MOVQ s+8(FP), DI
	MOVQ n+16(FP), CX
	VPXOR    Y0, Y0, Y0  // Y0: int32x8 accumulator
	VPCMPEQW Y3, Y3, Y3
	VPSRLW   $15, Y3, Y3 // Y3: int16x16 of ones

loop32:
	VMOVDQU    (SI), Y1     // unsigned bytes
	VMOVDQU    (DI), Y2     // signed bytes
	VPMADDUBSW Y2, Y1, Y1   // int16 pair-sums u*s
	VPMADDWD   Y3, Y1, Y1   // widen to int32 quads
	VPADDD     Y1, Y0, Y0
	ADDQ       $32, SI
	ADDQ       $32, DI
	SUBQ       $32, CX
	JNZ        loop32

	// Horizontal reduction of the 8 int32 lanes.
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xEE, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x55, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, AX
	VZEROUPPER
	MOVL AX, ret+24(FP)
	RET

// func dotU8MADDBlocks(u, s *uint8, blocks, bl int, out *int32)
//
// Per-partition dot products in one call: for b in [0, blocks), writes
// Σ u[b·bl+k]·s[b·bl+k] over k in [0, bl) to out[b]. bl must be a
// positive multiple of 32. Amortizes the call overhead the per-block
// kernel pays on small partitions (Π=32/64).
TEXT ·dotU8MADDBlocks(SB), NOSPLIT, $0-40
	MOVQ u+0(FP), SI
	MOVQ s+8(FP), DI
	MOVQ blocks+16(FP), BX
	MOVQ bl+24(FP), DX
	MOVQ out+32(FP), R8
	VPCMPEQW Y3, Y3, Y3
	VPSRLW   $15, Y3, Y3 // int16x16 of ones

blockLoop:
	VPXOR Y0, Y0, Y0
	MOVQ  DX, CX

chunk32:
	VMOVDQU    (SI), Y1
	VMOVDQU    (DI), Y2
	VPMADDUBSW Y2, Y1, Y1
	VPMADDWD   Y3, Y1, Y1
	VPADDD     Y1, Y0, Y0
	ADDQ       $32, SI
	ADDQ       $32, DI
	SUBQ       $32, CX
	JNZ        chunk32

	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xEE, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x55, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, AX
	MOVL         AX, (R8)
	ADDQ         $4, R8
	DECQ         BX
	JNZ          blockLoop

	VZEROUPPER
	RET
