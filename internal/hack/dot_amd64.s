//go:build amd64

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotU8MADD(u, s *uint8, n int) int32
//
// Σ u[k]·s[k] over n bytes (n a multiple of 32): u unsigned, s signed.
// Per 32-byte step: VPMADDUBSW forms 16 int16 pair-sums, VPMADDWD (by a
// vector of ones) widens them into 8 int32 lanes, VPADDD accumulates.
// The caller guarantees s's codes fit 6 bits so the int16 stage cannot
// saturate.
TEXT ·dotU8MADD(SB), NOSPLIT, $0-28
	MOVQ u+0(FP), SI
	MOVQ s+8(FP), DI
	MOVQ n+16(FP), CX
	VPXOR    Y0, Y0, Y0  // Y0: int32x8 accumulator
	VPCMPEQW Y3, Y3, Y3
	VPSRLW   $15, Y3, Y3 // Y3: int16x16 of ones

loop32:
	VMOVDQU    (SI), Y1     // unsigned bytes
	VMOVDQU    (DI), Y2     // signed bytes
	VPMADDUBSW Y2, Y1, Y1   // int16 pair-sums u*s
	VPMADDWD   Y3, Y1, Y1   // widen to int32 quads
	VPADDD     Y1, Y0, Y0
	ADDQ       $32, SI
	ADDQ       $32, DI
	SUBQ       $32, CX
	JNZ        loop32

	// Horizontal reduction of the 8 int32 lanes.
	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xEE, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x55, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, AX
	VZEROUPPER
	MOVL AX, ret+24(FP)
	RET

// func dotU8MADDBlocks(u, s *uint8, blocks, bl int, out *int32)
//
// Per-partition dot products in one call: for b in [0, blocks), writes
// Σ u[b·bl+k]·s[b·bl+k] over k in [0, bl) to out[b]. bl must be a
// positive multiple of 32. Amortizes the call overhead the per-block
// kernel pays on small partitions (Π=32/64).
TEXT ·dotU8MADDBlocks(SB), NOSPLIT, $0-40
	MOVQ u+0(FP), SI
	MOVQ s+8(FP), DI
	MOVQ blocks+16(FP), BX
	MOVQ bl+24(FP), DX
	MOVQ out+32(FP), R8
	VPCMPEQW Y3, Y3, Y3
	VPSRLW   $15, Y3, Y3 // int16x16 of ones

blockLoop:
	VPXOR Y0, Y0, Y0
	MOVQ  DX, CX

chunk32:
	VMOVDQU    (SI), Y1
	VMOVDQU    (DI), Y2
	VPMADDUBSW Y2, Y1, Y1
	VPMADDWD   Y3, Y1, Y1
	VPADDD     Y1, Y0, Y0
	ADDQ       $32, SI
	ADDQ       $32, DI
	SUBQ       $32, CX
	JNZ        chunk32

	VEXTRACTI128 $1, Y0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0xEE, X0, X1
	VPADDD       X1, X0, X0
	VPSHUFD      $0x55, X0, X1
	VPADDD       X1, X0, X0
	VMOVD        X0, AX
	MOVL         AX, (R8)
	ADDQ         $4, R8
	DECQ         BX
	JNZ          blockLoop

	VZEROUPPER
	RET

// func dotU8MADDBlocks4(u0, u1, u2, u3, s *uint8, blocks, bl int, out *int32)
//
// Four-row register-blocked variant: the per-partition dots of four
// unsigned rows against one shared signed row in a single call. Each
// 32-byte chunk of s is loaded once and MADDed against all four u rows
// while it sits in a register, cutting the shared-operand loads and the
// loop control to a quarter of four single-row calls — the batched
// verify's Q rows sweep the same cache row. out is interleaved: block
// b's four dots land at out[4b..4b+3], in row order.
TEXT ·dotU8MADDBlocks4(SB), NOSPLIT, $0-64
	MOVQ u0+0(FP), SI
	MOVQ u1+8(FP), R9
	MOVQ u2+16(FP), R10
	MOVQ u3+24(FP), R11
	MOVQ s+32(FP), DI
	MOVQ blocks+40(FP), BX
	MOVQ bl+48(FP), DX
	MOVQ out+56(FP), R8
	VPCMPEQW Y3, Y3, Y3
	VPSRLW   $15, Y3, Y3 // int16x16 of ones

blockLoop4:
	VPXOR Y0, Y0, Y0 // row 0 accumulator
	VPXOR Y1, Y1, Y1 // row 1
	VPXOR Y4, Y4, Y4 // row 2
	VPXOR Y5, Y5, Y5 // row 3
	MOVQ  DX, CX

chunk32x4:
	VMOVDQU    (DI), Y2 // shared signed bytes, loaded once per chunk
	VMOVDQU    (SI), Y6
	VPMADDUBSW Y2, Y6, Y6
	VPMADDWD   Y3, Y6, Y6
	VPADDD     Y6, Y0, Y0
	VMOVDQU    (R9), Y6
	VPMADDUBSW Y2, Y6, Y6
	VPMADDWD   Y3, Y6, Y6
	VPADDD     Y6, Y1, Y1
	VMOVDQU    (R10), Y6
	VPMADDUBSW Y2, Y6, Y6
	VPMADDWD   Y3, Y6, Y6
	VPADDD     Y6, Y4, Y4
	VMOVDQU    (R11), Y6
	VPMADDUBSW Y2, Y6, Y6
	VPMADDWD   Y3, Y6, Y6
	VPADDD     Y6, Y5, Y5
	ADDQ       $32, SI
	ADDQ       $32, R9
	ADDQ       $32, R10
	ADDQ       $32, R11
	ADDQ       $32, DI
	SUBQ       $32, CX
	JNZ        chunk32x4

	// Reduce the four accumulators; store interleaved per block.
	VEXTRACTI128 $1, Y0, X6
	VPADDD       X6, X0, X0
	VPSHUFD      $0xEE, X0, X6
	VPADDD       X6, X0, X0
	VPSHUFD      $0x55, X0, X6
	VPADDD       X6, X0, X0
	VMOVD        X0, AX
	MOVL         AX, (R8)
	VEXTRACTI128 $1, Y1, X6
	VPADDD       X6, X1, X1
	VPSHUFD      $0xEE, X1, X6
	VPADDD       X6, X1, X1
	VPSHUFD      $0x55, X1, X6
	VPADDD       X6, X1, X1
	VMOVD        X1, AX
	MOVL         AX, 4(R8)
	VEXTRACTI128 $1, Y4, X6
	VPADDD       X6, X4, X4
	VPSHUFD      $0xEE, X4, X6
	VPADDD       X6, X4, X4
	VPSHUFD      $0x55, X4, X6
	VPADDD       X6, X4, X4
	VMOVD        X4, AX
	MOVL         AX, 8(R8)
	VEXTRACTI128 $1, Y5, X6
	VPADDD       X6, X5, X5
	VPSHUFD      $0xEE, X5, X6
	VPADDD       X6, X5, X5
	VPSHUFD      $0x55, X5, X6
	VPADDD       X6, X5, X5
	VMOVD        X5, AX
	MOVL         AX, 12(R8)
	ADDQ         $16, R8
	DECQ         BX
	JNZ          blockLoop4

	VZEROUPPER
	RET

// func dotU8MADDBlocks8(u *uint8, ustride int, s *uint8, blocks, bl int, out *int32)
//
// Eight-row register-blocked variant over rows laid out contiguously at
// stride ustride from u — the quantized tensor's natural row layout, so
// one base pointer addresses the whole group. Each 32-byte chunk of the
// shared signed row is loaded once and MADDed against all eight resident
// rows, amortizing the shared-operand loads and loop control across the
// full verify window. out is interleaved: block b's eight dots land at
// out[8b..8b+7], in row order.
TEXT ·dotU8MADDBlocks8(SB), NOSPLIT, $0-48
	MOVQ u+0(FP), SI
	MOVQ ustride+8(FP), AX
	MOVQ s+16(FP), DI
	MOVQ blocks+24(FP), BX
	MOVQ bl+32(FP), DX
	MOVQ out+40(FP), R8
	LEAQ (SI)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11
	LEAQ (R11)(AX*1), R12
	LEAQ (R12)(AX*1), R13
	LEAQ (R13)(AX*1), R14
	LEAQ (R14)(AX*1), R15
	VPCMPEQW Y3, Y3, Y3
	VPSRLW   $15, Y3, Y3 // int16x16 of ones

blockLoop8:
	VPXOR Y0, Y0, Y0   // row 0 accumulator
	VPXOR Y1, Y1, Y1   // row 1
	VPXOR Y4, Y4, Y4   // row 2
	VPXOR Y5, Y5, Y5   // row 3
	VPXOR Y7, Y7, Y7   // row 4
	VPXOR Y8, Y8, Y8   // row 5
	VPXOR Y9, Y9, Y9   // row 6
	VPXOR Y10, Y10, Y10 // row 7
	MOVQ  DX, CX

chunk32x8:
	VMOVDQU    (DI), Y2 // shared signed bytes, loaded once per chunk
	VMOVDQU    (SI), Y6
	VPMADDUBSW Y2, Y6, Y6
	VPMADDWD   Y3, Y6, Y6
	VPADDD     Y6, Y0, Y0
	VMOVDQU    (R9), Y6
	VPMADDUBSW Y2, Y6, Y6
	VPMADDWD   Y3, Y6, Y6
	VPADDD     Y6, Y1, Y1
	VMOVDQU    (R10), Y6
	VPMADDUBSW Y2, Y6, Y6
	VPMADDWD   Y3, Y6, Y6
	VPADDD     Y6, Y4, Y4
	VMOVDQU    (R11), Y6
	VPMADDUBSW Y2, Y6, Y6
	VPMADDWD   Y3, Y6, Y6
	VPADDD     Y6, Y5, Y5
	VMOVDQU    (R12), Y6
	VPMADDUBSW Y2, Y6, Y6
	VPMADDWD   Y3, Y6, Y6
	VPADDD     Y6, Y7, Y7
	VMOVDQU    (R13), Y6
	VPMADDUBSW Y2, Y6, Y6
	VPMADDWD   Y3, Y6, Y6
	VPADDD     Y6, Y8, Y8
	VMOVDQU    (R14), Y6
	VPMADDUBSW Y2, Y6, Y6
	VPMADDWD   Y3, Y6, Y6
	VPADDD     Y6, Y9, Y9
	VMOVDQU    (R15), Y6
	VPMADDUBSW Y2, Y6, Y6
	VPMADDWD   Y3, Y6, Y6
	VPADDD     Y6, Y10, Y10
	ADDQ       $32, SI
	ADDQ       $32, R9
	ADDQ       $32, R10
	ADDQ       $32, R11
	ADDQ       $32, R12
	ADDQ       $32, R13
	ADDQ       $32, R14
	ADDQ       $32, R15
	ADDQ       $32, DI
	SUBQ       $32, CX
	JNZ        chunk32x8

	// Reduce the eight accumulators; store interleaved per block.
	VEXTRACTI128 $1, Y0, X6
	VPADDD       X6, X0, X0
	VPSHUFD      $0xEE, X0, X6
	VPADDD       X6, X0, X0
	VPSHUFD      $0x55, X0, X6
	VPADDD       X6, X0, X0
	VMOVD        X0, AX
	MOVL         AX, (R8)
	VEXTRACTI128 $1, Y1, X6
	VPADDD       X6, X1, X1
	VPSHUFD      $0xEE, X1, X6
	VPADDD       X6, X1, X1
	VPSHUFD      $0x55, X1, X6
	VPADDD       X6, X1, X1
	VMOVD        X1, AX
	MOVL         AX, 4(R8)
	VEXTRACTI128 $1, Y4, X6
	VPADDD       X6, X4, X4
	VPSHUFD      $0xEE, X4, X6
	VPADDD       X6, X4, X4
	VPSHUFD      $0x55, X4, X6
	VPADDD       X6, X4, X4
	VMOVD        X4, AX
	MOVL         AX, 8(R8)
	VEXTRACTI128 $1, Y5, X6
	VPADDD       X6, X5, X5
	VPSHUFD      $0xEE, X5, X6
	VPADDD       X6, X5, X5
	VPSHUFD      $0x55, X5, X6
	VPADDD       X6, X5, X5
	VMOVD        X5, AX
	MOVL         AX, 12(R8)
	VEXTRACTI128 $1, Y7, X6
	VPADDD       X6, X7, X7
	VPSHUFD      $0xEE, X7, X6
	VPADDD       X6, X7, X7
	VPSHUFD      $0x55, X7, X6
	VPADDD       X6, X7, X7
	VMOVD        X7, AX
	MOVL         AX, 16(R8)
	VEXTRACTI128 $1, Y8, X6
	VPADDD       X6, X8, X8
	VPSHUFD      $0xEE, X8, X6
	VPADDD       X6, X8, X8
	VPSHUFD      $0x55, X8, X6
	VPADDD       X6, X8, X8
	VMOVD        X8, AX
	MOVL         AX, 20(R8)
	VEXTRACTI128 $1, Y9, X6
	VPADDD       X6, X9, X9
	VPSHUFD      $0xEE, X9, X6
	VPADDD       X6, X9, X9
	VPSHUFD      $0x55, X9, X6
	VPADDD       X6, X9, X9
	VMOVD        X9, AX
	MOVL         AX, 24(R8)
	VEXTRACTI128 $1, Y10, X6
	VPADDD       X6, X10, X10
	VPSHUFD      $0xEE, X10, X6
	VPADDD       X6, X10, X10
	VPSHUFD      $0x55, X10, X6
	VPADDD       X6, X10, X10
	VMOVD        X10, AX
	MOVL         AX, 28(R8)
	ADDQ         $32, R8
	DECQ         BX
	JNZ          blockLoop8

	VZEROUPPER
	RET
