package hack

import (
	"fmt"

	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// The scalar reference kernels: straight-line triple loops with no
// packing, tiling, unrolling or parallelism. They are the semantic
// definition of the homomorphic product — the fast kernels in this
// package must produce bit-identical output (the cross-check tests
// enforce this over a shape grid), and the BENCH_kernels.json speedups
// are measured against them.

// MatMulScalar is the reference implementation of MatMul.
func MatMulScalar(a, b *quant.Tensor, opt Options) (*tensor.Matrix, Ops) {
	checkMatMulShapes(a, b)
	m, z, n := a.Rows, a.Cols, b.Cols
	out := tensor.New(m, n)
	var ops Ops
	if z == 0 {
		return out, ops
	}

	bSums := b.Sums
	if !opt.ReuseSums {
		sums := make([]int32, len(b.Sums))
		recomputeColSumsInto(sums, b)
		bSums = sums
		ops.SumRecomputeOps += int64(z) * int64(n)
	}

	nb := a.NBlocks
	for g := 0; g < nb; g++ {
		lo, hi := a.BlockRange(g)
		blockLen := float32(hi - lo)
		for i := 0; i < m; i++ {
			ma, sa := a.Meta(i, g)
			aSum := float32(a.Sum(i, g))
			aRow := a.Codes[i*z+lo : i*z+hi]
			oRow := out.Row(i)
			for j := 0; j < n; j++ {
				mb, sb := b.Meta(j, g)
				// Integer dot product over the block — the part GPUs
				// accelerate with INT8 tensor cores.
				var acc int32
				for k, av := range aRow {
					acc += int32(av) * int32(b.Codes[(lo+k)*n+j])
				}
				bSum := float32(bSums[j*nb+g])
				// Eq. (4) correction terms.
				oRow[j] += sa*sb*float32(acc) +
					mb*sa*aSum +
					ma*sb*bSum +
					blockLen*ma*mb
			}
		}
		ops.IntMACs += 2 * int64(m) * int64(hi-lo) * int64(n)
	}
	// Approximation flop count per the §5.2 analysis: 9MN per block pair
	// plus the A row sums (MZ); the B column sums (NZ) are either cached
	// (SE) or counted above as SumRecomputeOps.
	ops.ApproxFlops = int64(nb)*9*int64(m)*int64(n) + int64(m)*int64(z)
	return out, ops
}

// MatMulTransBScalar is the reference implementation of MatMulTransB.
func MatMulTransBScalar(a, bT *quant.Tensor, opt Options) (*tensor.Matrix, Ops) {
	checkMatMulTransBShapes(a, bT)
	m, z, n := a.Rows, a.Cols, bT.Rows
	out := tensor.New(m, n)
	var ops Ops
	if z == 0 {
		return out, ops
	}

	bSums := bT.Sums
	if !opt.ReuseSums {
		sums := make([]int32, len(bT.Sums))
		recomputeRowSumsInto(sums, bT)
		bSums = sums
		ops.SumRecomputeOps += int64(z) * int64(n)
	}

	nb := a.NBlocks
	for g := 0; g < nb; g++ {
		lo, hi := a.BlockRange(g)
		blockLen := float32(hi - lo)
		for i := 0; i < m; i++ {
			ma, sa := a.Meta(i, g)
			aSum := float32(a.Sum(i, g))
			aRow := a.Codes[i*z+lo : i*z+hi]
			oRow := out.Row(i)
			for j := 0; j < n; j++ {
				mb, sb := bT.Meta(j, g)
				bRow := bT.Codes[j*z+lo : j*z+hi]
				var acc int32
				for k, av := range aRow {
					acc += int32(av) * int32(bRow[k])
				}
				bSum := float32(bSums[j*nb+g])
				oRow[j] += sa*sb*float32(acc) +
					mb*sa*aSum +
					ma*sb*bSum +
					blockLen*ma*mb
			}
		}
		ops.IntMACs += 2 * int64(m) * int64(hi-lo) * int64(n)
	}
	ops.ApproxFlops = int64(nb)*9*int64(m)*int64(n) + int64(m)*int64(z)
	return out, ops
}

// checkMatMulShapes panics on an operand mismatch for A·B.
func checkMatMulShapes(a, b *quant.Tensor) {
	if a.Axis != quant.AlongCols || b.Axis != quant.AlongRows {
		panic(fmt.Sprintf("hack: MatMul needs A along-cols × B along-rows, got %v × %v", a.Axis, b.Axis))
	}
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("hack: inner dims %d != %d", a.Cols, b.Rows))
	}
	if a.Pi != b.Pi {
		panic(fmt.Sprintf("hack: partition sizes %d != %d", a.Pi, b.Pi))
	}
}

// checkMatMulTransBShapes panics on an operand mismatch for A·Bᵀ.
func checkMatMulTransBShapes(a, bT *quant.Tensor) {
	if a.Axis != quant.AlongCols || bT.Axis != quant.AlongCols {
		panic(fmt.Sprintf("hack: MatMulTransB needs both operands along-cols, got %v × %v", a.Axis, bT.Axis))
	}
	if a.Cols != bT.Cols {
		panic(fmt.Sprintf("hack: inner dims %d != %d", a.Cols, bT.Cols))
	}
	if a.Pi != bT.Pi {
		panic(fmt.Sprintf("hack: partition sizes %d != %d", a.Pi, bT.Pi))
	}
}

// recomputeColSumsInto rebuilds the per-(column, block) code sums of an
// along-rows tensor into dst (length len(b.Sums), zeroed here) — the
// work SE avoids.
func recomputeColSumsInto(dst []int32, b *quant.Tensor) {
	for i := range dst {
		dst[i] = 0
	}
	nb := b.NBlocks
	for g := 0; g < nb; g++ {
		lo, hi := b.BlockRange(g)
		for z := lo; z < hi; z++ {
			row := b.Codes[z*b.Cols : (z+1)*b.Cols]
			for j, c := range row {
				dst[j*nb+g] += int32(c)
			}
		}
	}
}

// recomputeRowSumsInto rebuilds the per-(row, block) code sums of an
// along-cols tensor into dst.
func recomputeRowSumsInto(dst []int32, bT *quant.Tensor) {
	nb := bT.NBlocks
	for j := 0; j < bT.Rows; j++ {
		for g := 0; g < nb; g++ {
			lo, hi := bT.BlockRange(g)
			var s int32
			for _, c := range bT.Codes[j*bT.Cols+lo : j*bT.Cols+hi] {
				s += int32(c)
			}
			dst[j*nb+g] = s
		}
	}
}
