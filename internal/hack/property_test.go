package hack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// randShape draws a random (m, z, n, Π) MatMul geometry, including
// ragged last blocks and decode-shaped M=1 rows.
func randShape(rng *rand.Rand) (m, z, n, pi int) {
	m = 1 + rng.Intn(8)
	z = 8 + rng.Intn(160)
	n = 1 + rng.Intn(24)
	pi = []int{8, 16, 32, 64, 128}[rng.Intn(5)]
	return m, z, n, pi
}

// TestPropertyMatMulNearExactReference bounds the end-to-end error of
// the homomorphic product against the float32 reference product of the
// ORIGINAL matrices, over random shapes and partition sizes. Two layers
// of guarantee:
//
//   - against the dequantized operands the product is an algebraic
//     identity (tight bound, float rounding only);
//   - against the original operands the only error source is
//     quantization noise, which at 8-bit codes must keep the relative
//     Frobenius error small for any shape/partition combination.
func TestPropertyMatMulNearExactReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, z, n, pi := randShape(rng)
		a := tensor.RandNormal(rng, m, z, 1)
		b := tensor.RandNormal(rng, z, n, 1)
		aq := q(a, quant.AlongCols, 8, pi, rng)
		bq := q(b, quant.AlongRows, 8, pi, rng)
		got, _ := MatMul(aq, bq, DefaultOptions())

		// Identity layer: homomorphic == dequantize-then-multiply.
		if tensor.RelFrobenius(got, tensor.MatMul(aq.Dequantize(), bq.Dequantize())) > 1e-3 {
			return false
		}
		// Accuracy layer: 8-bit quantization noise stays small relative
		// to the exact product of the original matrices.
		return tensor.RelFrobenius(got, tensor.MatMul(a, b)) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(101))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMatMulTransBNearExactReference is the same property for
// the Q·Kᵀ-shaped kernel.
func TestPropertyMatMulTransBNearExactReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, z, n, pi := randShape(rng)
		a := tensor.RandNormal(rng, m, z, 1)
		bT := tensor.RandNormal(rng, n, z, 1)
		aq := q(a, quant.AlongCols, 8, pi, rng)
		bq := q(bT, quant.AlongCols, 8, pi, rng)
		got, _ := MatMulTransB(aq, bq, DefaultOptions())
		if tensor.RelFrobenius(got, tensor.MatMulTransB(aq.Dequantize(), bq.Dequantize())) > 1e-3 {
			return false
		}
		return tensor.RelFrobenius(got, tensor.MatMulTransB(a, bT)) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(102))}); err != nil {
		t.Error(err)
	}
}

// TestPropertyOpsMatchAnalyticFormulas cross-checks the kernels'
// measured Ops tallies against the closed-form §5.2 costs over random
// shapes:
//
//   - IntMACs is always 2·M·Z·N;
//   - without SE, SumRecomputeOps is always N·Z;
//   - ApproxFlops is 9·M·N per partition block plus the A row sums
//     (M·Z), which collapses to the paper's 9MN + MZ (ApproxOpsSE)
//     whenever one partition spans the inner dimension — and together
//     with the recomputed sums to ApproxOps.
func TestPropertyOpsMatchAnalyticFormulas(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, z, n, pi := randShape(rng)
		a := tensor.RandNormal(rng, m, z, 1)
		b := tensor.RandNormal(rng, z, n, 1)
		aq := q(a, quant.AlongCols, 8, pi, rng)
		bq := q(b, quant.AlongRows, 2, pi, rng)

		_, se := MatMul(aq, bq, Options{ReuseSums: true})
		_, noSE := MatMul(aq, bq, Options{ReuseSums: false})

		if se.IntMACs != IntMatMulOps(m, z, n) || noSE.IntMACs != se.IntMACs {
			return false
		}
		if se.SumRecomputeOps != 0 || noSE.SumRecomputeOps != int64(n)*int64(z) {
			return false
		}
		nb := int64((z + pi - 1) / pi)
		if se.ApproxFlops != nb*9*int64(m)*int64(n)+int64(m)*int64(z) {
			return false
		}
		if nb == 1 {
			// Single inner block: exactly the §5.2 formulas.
			if se.ApproxFlops != ApproxOpsSE(m, z, n) {
				return false
			}
			if noSE.ApproxFlops+noSE.SumRecomputeOps != ApproxOps(m, z, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(103))}); err != nil {
		t.Error(err)
	}
}

// TestDecodeOpsMatchSection53 reproduces the §5.3 decode accounting on
// measured tallies: one decode step is Q·Kᵀ (M=1, Z=d_h, N=L) plus P·V
// (M=1, Z=L, N=d_h); with partitions spanning each inner dimension the
// two measured approximation costs sum to DecodeApproxOpsSE = 10(d_h+L).
func TestDecodeOpsMatchSection53(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dh, l = 128, 96
	qv := tensor.RandNormal(rng, 1, dh, 1)
	k := tensor.RandNormal(rng, l, dh, 1)
	p := tensor.RandNormal(rng, 1, l, 1)
	v := tensor.RandNormal(rng, l, dh, 1)

	qq := q(qv, quant.AlongCols, 8, dh, rng)
	kq := q(k, quant.AlongCols, 2, dh, rng)
	_, qkOps := MatMulTransB(qq, kq, DefaultOptions())

	pq := q(p, quant.AlongCols, 8, l, rng)
	vq := q(v, quant.AlongRows, 2, l, rng)
	_, pvOps := MatMul(pq, vq, DefaultOptions())

	if got, want := qkOps.ApproxFlops+pvOps.ApproxFlops, DecodeApproxOpsSE(dh, l); got != want {
		t.Errorf("measured decode approx cost %d, want §5.3's 10(d_h+L) = %d", got, want)
	}
	if got, want := qkOps.IntMACs+pvOps.IntMACs, IntMatMulOps(1, dh, l)+IntMatMulOps(1, l, dh); got != want {
		t.Errorf("measured decode IntMACs %d, want %d", got, want)
	}
}
