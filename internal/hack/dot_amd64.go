//go:build amd64

package hack

// AVX2 fast path for the quantized dot product. VPMADDUBSW is the CPU's
// closest analogue to the INT8 tensor-core MACs the paper computes on
// (§5.2): it multiplies 32 unsigned×signed byte pairs per instruction
// into saturating int16 lanes, which VPMADDWD then widens into int32
// accumulators. Saturation cannot trigger as long as the signed-side
// operand's codes fit 6 bits (2·255·63 = 32130 < 2¹⁵), which covers
// every shipping HACK configuration — 2-bit KV codes, 4-bit INT4
// extension — with the 8-bit side riding in the unsigned lane. The
// kernels fall back to the unrolled pure-Go dot otherwise, with
// bit-identical results either way: integer accumulation is exact.

// cpuid executes the CPUID instruction (implemented in dot_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (implemented in dot_amd64.s).
func xgetbv() (eax, edx uint32)

// dotU8MADD computes Σ u[k]·s[k] over n bytes (n must be a multiple of
// 32) with u treated as unsigned and s as signed bytes.
//
//go:noescape
func dotU8MADD(u, s *uint8, n int) int32

// dotU8MADDBlocks computes the per-partition dots of one row pair in a
// single call: out[b] = Σ u[b·bl+k]·s[b·bl+k] for k in [0, bl), for b in
// [0, blocks). bl must be a positive multiple of 32.
//
//go:noescape
func dotU8MADDBlocks(u, s *uint8, blocks, bl int, out *int32)

// dotU8MADDBlocks4 is the four-row register-blocked variant: the
// per-partition dots of four unsigned rows u0..u3 against one shared
// signed row s in a single call. Block b's four dots land interleaved
// at out[4b..4b+3] in row order. bl must be a positive multiple of 32.
//
//go:noescape
func dotU8MADDBlocks4(u0, u1, u2, u3, s *uint8, blocks, bl int, out *int32)

// dotU8MADDBlocks8 is the eight-row register-blocked variant over rows
// laid out contiguously at stride ustride from u (the quantized
// tensor's natural row layout). Block b's eight dots land interleaved
// at out[8b..8b+7] in row order. bl must be a positive multiple of 32.
//
//go:noescape
func dotU8MADDBlocks8(u *uint8, ustride int, s *uint8, blocks, bl int, out *int32)

// hasAVX2 reports whether the CPU and OS support the AVX2 fast path.
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c&osxsave == 0 || c&avx == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&6 != 6 { // OS saves XMM+YMM state
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0 // AVX2
}

// dotMADD is the dispatched dot product: the AVX2 body over the largest
// 32-byte-aligned prefix, a scalar tail for ragged block lengths. u is
// the unsigned operand (any 8-bit codes), s the signed-safe one (codes
// ≤ 6 bits).
func dotMADD(u, s []uint8) int32 {
	n := len(u) &^ 31
	var acc int32
	if n > 0 {
		acc = dotU8MADD(&u[0], &s[0], n)
	}
	for k := n; k < len(u); k++ {
		acc += int32(u[k]) * int32(s[k])
	}
	return acc
}
