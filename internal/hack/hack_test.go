package hack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

func q(m *tensor.Matrix, axis quant.Axis, bitsN, pi int, rng *rand.Rand) *quant.Tensor {
	return quant.MustQuantize(m, axis, quant.Config{
		Bits: bitsN, Partition: pi, Rounding: quant.StochasticRounding, RNG: rng,
	})
}

// The fundamental identity of Eq. (4): the homomorphic product of the
// quantized operands equals the ordinary product of their dequantized
// forms, up to float rounding. HACK's result is algebraically identical
// to dequantize-then-multiply — it just never materializes the
// dequantized matrices.
func TestHomomorphicEqualsDequantized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ m, z, n, bitsA, bitsB, pi int }{
		{4, 32, 8, 8, 2, 16},
		{1, 128, 64, 8, 2, 32}, // decode-shaped Q·Kᵀ
		{1, 96, 128, 8, 2, 32}, // decode-shaped P·V
		{16, 64, 16, 2, 2, 64}, // single block
		{3, 80, 5, 8, 2, 32},   // ragged last block
		{7, 48, 9, 4, 4, 16},   // INT4 everywhere
		{5, 16, 5, 8, 8, 16},   // INT8 everywhere
	} {
		a := tensor.RandNormal(rng, tc.m, tc.z, 1.5)
		b := tensor.RandNormal(rng, tc.z, tc.n, 1.5)
		aq := q(a, quant.AlongCols, tc.bitsA, tc.pi, rng)
		bq := q(b, quant.AlongRows, tc.bitsB, tc.pi, rng)
		got, _ := MatMul(aq, bq, DefaultOptions())
		want := tensor.MatMul(aq.Dequantize(), bq.Dequantize())
		// Tolerance scales with the magnitude of the accumulated sums.
		tol := 1e-3 * float64(tc.z) * (1 + tensor.MeanAbs(want))
		if d := tensor.MaxAbsDiff(got, want); d > tol {
			t.Errorf("%+v: homomorphic vs dequantized diff %v > %v", tc, d, tol)
		}
	}
}

func TestHomomorphicTransBEqualsDequantized(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ m, z, n, pi int }{
		{1, 128, 200, 64}, // decode Q·Kᵀ: one query row against 200 cached keys
		{64, 128, 64, 32}, // prefill Q·Kᵀ
		{3, 40, 7, 16},    // ragged
	} {
		a := tensor.RandNormal(rng, tc.m, tc.z, 1)
		bT := tensor.RandNormal(rng, tc.n, tc.z, 1)
		aq := q(a, quant.AlongCols, 8, tc.pi, rng)
		bq := q(bT, quant.AlongCols, 2, tc.pi, rng)
		got, _ := MatMulTransB(aq, bq, DefaultOptions())
		want := tensor.MatMulTransB(aq.Dequantize(), bq.Dequantize())
		tol := 1e-3 * float64(tc.z) * (1 + tensor.MeanAbs(want))
		if d := tensor.MaxAbsDiff(got, want); d > tol {
			t.Errorf("%+v: diff %v > %v", tc, d, tol)
		}
	}
}

// Property test over random shapes: Eq. (4) identity holds for every
// shape/partition combination.
func TestHomomorphicIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(6)
		z := 8 + rng.Intn(100)
		n := 1 + rng.Intn(20)
		pi := []int{8, 16, 32, 64}[rng.Intn(4)]
		a := tensor.RandNormal(rng, m, z, 2)
		b := tensor.RandNormal(rng, z, n, 2)
		aq := q(a, quant.AlongCols, 8, pi, rng)
		bq := q(b, quant.AlongRows, 2, pi, rng)
		got, _ := MatMul(aq, bq, DefaultOptions())
		want := tensor.MatMul(aq.Dequantize(), bq.Dequantize())
		tol := 2e-3 * float64(z) * (1 + tensor.MeanAbs(want))
		return tensor.MaxAbsDiff(got, want) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(101))}); err != nil {
		t.Error(err)
	}
}

// Disabling summation elimination must not change the numeric result —
// only the op count.
func TestSumRecomputationMatchesCache(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := tensor.RandNormal(rng, 4, 64, 1)
	b := tensor.RandNormal(rng, 64, 12, 1)
	aq := q(a, quant.AlongCols, 8, 32, rng)
	bq := q(b, quant.AlongRows, 2, 32, rng)
	withSE, opsSE := MatMul(aq, bq, Options{ReuseSums: true})
	without, opsNoSE := MatMul(aq, bq, Options{ReuseSums: false})
	if d := tensor.MaxAbsDiff(withSE, without); d != 0 {
		t.Errorf("SE changed the result by %v", d)
	}
	if opsSE.SumRecomputeOps != 0 {
		t.Errorf("SE path charged %d sum ops", opsSE.SumRecomputeOps)
	}
	if want := int64(64 * 12); opsNoSE.SumRecomputeOps != want {
		t.Errorf("no-SE sum ops = %d, want %d", opsNoSE.SumRecomputeOps, want)
	}

	// Same check for the transposed kernel.
	bT := tensor.RandNormal(rng, 12, 64, 1)
	bTq := q(bT, quant.AlongCols, 2, 32, rng)
	r1, _ := MatMulTransB(aq, bTq, Options{ReuseSums: true})
	r2, o2 := MatMulTransB(aq, bTq, Options{ReuseSums: false})
	if d := tensor.MaxAbsDiff(r1, r2); d != 0 {
		t.Errorf("transB SE changed the result by %v", d)
	}
	if o2.SumRecomputeOps == 0 {
		t.Error("transB no-SE path charged no sum ops")
	}
}

// A quantization with zero error (values already on the grid) must make
// the homomorphic product exact.
func TestExactWhenLossless(t *testing.T) {
	// Every row of A and every column of B holds integer values spanning
	// exactly [0, 3], so 2-bit quantization has min=0, scale=1 and is
	// lossless.
	a := tensor.FromSlice(2, 4, []float32{0, 1, 2, 3, 3, 2, 1, 0})
	b := tensor.FromSlice(4, 2, []float32{1, 0, 2, 1, 0, 3, 3, 2})
	rng := rand.New(rand.NewSource(4))
	aq := q(a, quant.AlongCols, 2, 4, rng)
	bq := q(b, quant.AlongRows, 2, 4, rng)
	got, _ := MatMul(aq, bq, DefaultOptions())
	want := tensor.MatMul(a, b)
	if d := tensor.MaxAbsDiff(got, want); d > 1e-4 {
		t.Errorf("lossless case differs by %v\n got %v\nwant %v", d, got.Data, want.Data)
	}
}

func TestOpCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, z, n, pi := 3, 64, 5, 32
	a := tensor.RandNormal(rng, m, z, 1)
	b := tensor.RandNormal(rng, z, n, 1)
	aq := q(a, quant.AlongCols, 8, pi, rng)
	bq := q(b, quant.AlongRows, 2, pi, rng)
	_, ops := MatMul(aq, bq, DefaultOptions())
	if want := IntMatMulOps(m, z, n); ops.IntMACs != want {
		t.Errorf("IntMACs = %d, want %d", ops.IntMACs, want)
	}
	// 2 blocks × 9MN + MZ.
	if want := 2*9*int64(m)*int64(n) + int64(m)*int64(z); ops.ApproxFlops != want {
		t.Errorf("ApproxFlops = %d, want %d", ops.ApproxFlops, want)
	}
}

func TestOpsAdd(t *testing.T) {
	a := Ops{IntMACs: 1, ApproxFlops: 2, SumRecomputeOps: 3}
	a.Add(Ops{IntMACs: 10, ApproxFlops: 20, SumRecomputeOps: 30})
	if a.IntMACs != 11 || a.ApproxFlops != 22 || a.SumRecomputeOps != 33 {
		t.Errorf("Ops.Add = %+v", a)
	}
}

func TestShapePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := q(tensor.RandNormal(rng, 2, 8, 1), quant.AlongCols, 2, 8, rng)
	badInner := q(tensor.RandNormal(rng, 9, 2, 1), quant.AlongRows, 2, 8, rng)
	badAxis := q(tensor.RandNormal(rng, 8, 2, 1), quant.AlongCols, 2, 8, rng)
	badPi := q(tensor.RandNormal(rng, 8, 2, 1), quant.AlongRows, 2, 4, rng)
	for name, fn := range map[string]func(){
		"inner": func() { MatMul(a, badInner, DefaultOptions()) },
		"axis":  func() { MatMul(a, badAxis, DefaultOptions()) },
		"pi":    func() { MatMul(a, badPi, DefaultOptions()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCostFormulas(t *testing.T) {
	if got := IntMatMulOps(2, 3, 4); got != 48 {
		t.Errorf("IntMatMulOps = %d, want 48", got)
	}
	if got := ApproxOps(2, 3, 4); got != 9*8+6+12 {
		t.Errorf("ApproxOps = %d", got)
	}
	if got := ApproxOpsSE(2, 3, 4); got != 9*8+6 {
		t.Errorf("ApproxOpsSE = %d", got)
	}
	// §5.3: with SE the decode approximation cost is 10(d_h + L).
	dh, l := 128, 1000
	if got, want := DecodeApproxOpsSE(dh, l), int64(10*(dh+l)); got != want {
		t.Errorf("DecodeApproxOpsSE = %d, want %d", got, want)
	}
	// Without SE it grows by 2·d_h·L.
	if got, want := DecodeApproxOps(dh, l), int64(10*(dh+l)+2*dh*l); got != want {
		t.Errorf("DecodeApproxOps = %d, want %d", got, want)
	}
	// §5.3: dequantization cost 4·d_h·L exceeds the SE approximation
	// cost by roughly an order of magnitude once L > 30, and the gap
	// keeps widening with L.
	r31 := float64(DequantKVOps(dh, 31)) / float64(DecodeApproxOpsSE(dh, 31))
	r1k := float64(DequantKVOps(dh, 1000)) / float64(DecodeApproxOpsSE(dh, 1000))
	if r31 < 9 {
		t.Errorf("dequant/approx ratio at L=31 is %.1f, want ~10", r31)
	}
	if r1k < 40 {
		t.Errorf("dequant/approx ratio at L=1000 is %.1f, want to keep growing", r1k)
	}
}

// Error scaling of the homomorphic attention-score product: 2-bit K is
// noisy per-score (the softmax and head aggregation absorb it end to
// end), 8-bit K must be near-exact, and finer partitions must beat
// coarser ones — the premises behind Tables 6 and 8.
func TestRelativeErrorScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dh, l := 128, 512
	qm := tensor.RandNormal(rng, 1, dh, 1)
	k := tensor.RandNormal(rng, l, dh, 1)
	want := tensor.MatMulTransB(qm, k)

	relAt := func(bitsN, pi int) float64 {
		qq := q(qm, quant.AlongCols, 8, pi, rng)
		kq := q(k, quant.AlongCols, bitsN, pi, rng)
		got, _ := MatMulTransB(qq, kq, DefaultOptions())
		return tensor.RelFrobenius(got, want)
	}
	r2 := relAt(2, 64)
	r8 := relAt(8, 64)
	if r2 > 1.0 {
		t.Errorf("2-bit relative error %v unexpectedly above signal level", r2)
	}
	if r8 > 0.02 {
		t.Errorf("8-bit relative error %v, want near-exact", r8)
	}
	if r8 >= r2 {
		t.Errorf("8-bit error %v not below 2-bit error %v", r8, r2)
	}
	// Finer partitions reduce error (Π=32 vs Π=128), averaged over a few
	// stochastic trials to kill rounding luck.
	var fine, coarse float64
	const trials = 5
	for i := 0; i < trials; i++ {
		fine += relAt(2, 32)
		coarse += relAt(2, 128)
	}
	if fine >= coarse {
		t.Errorf("Π=32 error %v not below Π=128 error %v", fine/trials, coarse/trials)
	}
}

func BenchmarkHomomorphicDecodeQK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dh, l := 128, 2048
	qm := q(tensor.RandNormal(rng, 1, dh, 1), quant.AlongCols, 8, 64, rng)
	k := q(tensor.RandNormal(rng, l, dh, 1), quant.AlongCols, 2, 64, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(qm, k, DefaultOptions())
	}
}

func BenchmarkHomomorphicDecodePV(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dh, l := 128, 2048
	p := q(tensor.RandNormal(rng, 1, l, 1), quant.AlongCols, 8, 64, rng)
	v := q(tensor.RandNormal(rng, l, dh, 1), quant.AlongRows, 2, 64, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(p, v, DefaultOptions())
	}
}

// Baseline for comparison: dequantize-then-multiply, what CacheGen and
// KVQuant pay every decode iteration.
func BenchmarkDequantizeThenMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dh, l := 128, 2048
	qm := tensor.RandNormal(rng, 1, dh, 1)
	k := q(tensor.RandNormal(rng, l, dh, 1), quant.AlongCols, 2, 64, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kd := k.Dequantize()
		tensor.MatMulTransB(qm, kd)
	}
}
