package hack_test

// Kernel microbenchmarks: prefill- and decode-shaped homomorphic matmuls
// at Π=32/128 against the retained scalar reference, the quantizer, and
// the end-to-end attention decode step. `go run ./cmd/kernelbench` runs
// the same operand shapes outside the testing framework and writes the
// BENCH_kernels.json trajectory file the README documents.

import (
	"math/rand"
	"testing"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/hack"
	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// Decode shape (acceptance shape): one 8-bit query row against a 4096-
// token 2-bit K cache, 1×128 · (4096×128)ᵀ.
func decodeOperands(pi int) (a, kT *quant.Tensor) {
	rng := rand.New(rand.NewSource(1))
	cfgQ := quant.Config{Bits: 8, Partition: pi, Rounding: quant.NearestRounding}
	cfgK := quant.Config{Bits: 2, Partition: pi, Rounding: quant.NearestRounding}
	a = quant.MustQuantize(tensor.RandNormal(rng, 1, 128, 1), quant.AlongCols, cfgQ)
	kT = quant.MustQuantize(tensor.RandNormal(rng, 4096, 128, 1), quant.AlongCols, cfgK)
	return a, kT
}

// Prefill shape: a 256-row 8-bit P block against a 2048×128 2-bit V.
func prefillOperands(pi int) (p, v *quant.Tensor) {
	rng := rand.New(rand.NewSource(2))
	cfgP := quant.Config{Bits: 8, Partition: pi, Rounding: quant.NearestRounding}
	cfgV := quant.Config{Bits: 2, Partition: pi, Rounding: quant.NearestRounding}
	p = quant.MustQuantize(tensor.RandNormal(rng, 256, 2048, 1), quant.AlongCols, cfgP)
	v = quant.MustQuantize(tensor.RandNormal(rng, 2048, 128, 1), quant.AlongRows, cfgV)
	return p, v
}

func benchTransB(b *testing.B, pi int, fn func(a, kT *quant.Tensor)) {
	b.Helper()
	a, kT := decodeOperands(pi)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(a, kT)
	}
}

func benchMatMul(b *testing.B, pi int, fn func(p, v *quant.Tensor)) {
	b.Helper()
	p, v := prefillOperands(pi)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(p, v)
	}
}

func BenchmarkMatMulTransBDecodePi32(b *testing.B) {
	dst := &tensor.Matrix{}
	benchTransB(b, 32, func(a, kT *quant.Tensor) {
		hack.MatMulTransBInto(dst, a, kT, hack.DefaultOptions())
	})
}

func BenchmarkMatMulTransBDecodePi128(b *testing.B) {
	dst := &tensor.Matrix{}
	benchTransB(b, 128, func(a, kT *quant.Tensor) {
		hack.MatMulTransBInto(dst, a, kT, hack.DefaultOptions())
	})
}

func BenchmarkMatMulTransBDecodeScalarPi128(b *testing.B) {
	benchTransB(b, 128, func(a, kT *quant.Tensor) {
		hack.MatMulTransBScalar(a, kT, hack.DefaultOptions())
	})
}

func BenchmarkMatMulPrefillPi32(b *testing.B) {
	dst := &tensor.Matrix{}
	benchMatMul(b, 32, func(p, v *quant.Tensor) {
		hack.MatMulInto(dst, p, v, hack.DefaultOptions())
	})
}

func BenchmarkMatMulPrefillPi128(b *testing.B) {
	dst := &tensor.Matrix{}
	benchMatMul(b, 128, func(p, v *quant.Tensor) {
		hack.MatMulInto(dst, p, v, hack.DefaultOptions())
	})
}

func BenchmarkMatMulPrefillScalarPi128(b *testing.B) {
	benchMatMul(b, 128, func(p, v *quant.Tensor) {
		hack.MatMulScalar(p, v, hack.DefaultOptions())
	})
}

func BenchmarkQuantize8BitPi32(b *testing.B) { benchQuantize(b, 8, 32) }

func BenchmarkQuantize2BitPi128(b *testing.B) { benchQuantize(b, 2, 128) }

func benchQuantize(b *testing.B, bits, pi int) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	m := tensor.RandNormal(rng, 512, 128, 1)
	cfg := quant.Config{Bits: bits, Partition: pi, Rounding: quant.NearestRounding}
	var t *quant.Tensor
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		t, err = quant.QuantizeInto(t, m, quant.AlongCols, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttentionDecode measures one full HACK attention decode step
// — quantize Q, homomorphic Q·Kᵀ, softmax, homomorphic P·V, cache append
// — on a prefilled head. allocs/op is the headline: the scratch-reuse
// paths keep it at ~0.
func BenchmarkAttentionDecode(b *testing.B) {
	for _, pi := range []int{32, 128} {
		b.Run(map[int]string{32: "Pi32", 128: "Pi128"}[pi], func(b *testing.B) {
			cfg := attention.DefaultHACKConfig(11)
			cfg.Pi = pi
			backend, err := attention.NewHACK(cfg)
			if err != nil {
				b.Fatal(err)
			}
			h, err := backend.NewHead(128)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(4))
			const l = 2048
			q := tensor.RandNormal(rng, l, 128, 1)
			k := tensor.RandNormal(rng, l, 128, 1)
			v := tensor.RandNormal(rng, l, 128, 1)
			if _, _, err := h.Prefill(q, k, v); err != nil {
				b.Fatal(err)
			}
			dq := tensor.RandNormal(rng, 1, 128, 1)
			dk := tensor.RandNormal(rng, 1, 128, 1)
			dv := tensor.RandNormal(rng, 1, 128, 1)
			// Warm the head's scratch high-water marks.
			if _, _, err := h.Decode(dq, dk, dv); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := h.Decode(dq, dk, dv); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAttentionDecodeDequant is the baseline counterpart: the
// CacheGen-style head pays a full-cache dequantization every step.
func BenchmarkAttentionDecodeDequant(b *testing.B) {
	backend, err := attention.NewDequant(attention.DequantConfig{
		MethodName: "CacheGen", Pi: 96, KVBits: 2,
		Rounding: quant.StochasticRounding, Seed: 12, WireFactor: 0.9,
	})
	if err != nil {
		b.Fatal(err)
	}
	h, err := backend.NewHead(128)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const l = 2048
	if _, _, err := h.Prefill(tensor.RandNormal(rng, l, 128, 1),
		tensor.RandNormal(rng, l, 128, 1), tensor.RandNormal(rng, l, 128, 1)); err != nil {
		b.Fatal(err)
	}
	dq := tensor.RandNormal(rng, 1, 128, 1)
	dk := tensor.RandNormal(rng, 1, 128, 1)
	dv := tensor.RandNormal(rng, 1, 128, 1)
	if _, _, err := h.Decode(dq, dk, dv); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.Decode(dq, dk, dv); err != nil {
			b.Fatal(err)
		}
	}
}
