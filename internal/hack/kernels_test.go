package hack

import (
	"math/rand"
	"testing"

	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// The packed/tiled/parallel kernels must be bit-identical to the retained
// scalar reference on every shape — including ragged blocks (Π not
// dividing Z), degenerate Z=0 and 1×1 operands — at every parallelism
// level and bit-width pairing (the AVX2 dot dispatches on bits; 8×8 falls
// back to pure Go, low-bit A exercises the swapped signed lane). CI runs
// this under -race, which also proves the row/column tile fan-out never
// writes overlapping output.
func TestFastKernelsMatchScalarReference(t *testing.T) {
	shapes := []struct{ m, z, n, pi int }{
		{1, 1, 1, 8}, // minimal
		{1, 128, 4096, 32} /* decode Q·Kᵀ shaped */, {1, 128, 4096, 128},
		{256, 512, 128, 64}, // prefill shaped, parallel over rows
		{3, 100, 33, 32},    // odd M/Z/N, Π not dividing Z
		{7, 65, 9, 64},      // single ragged block
		{2, 0, 5, 16},       // Z=0
		{5, 33, 1, 8},       // N=1
		{1, 200, 1300, 16},  // parallel over columns (M < workers)
	}
	bitCombos := []struct{ aBits, bBits int }{{8, 2}, {8, 8}, {2, 8}, {4, 4}}
	for _, sh := range shapes {
		for _, bits := range bitCombos {
			rng := rand.New(rand.NewSource(int64(sh.m*1000 + sh.z*10 + sh.n + bits.aBits)))
			a := tensor.RandNormal(rng, sh.m, sh.z, 1)
			b := tensor.RandNormal(rng, sh.z, sh.n, 1)
			bT := tensor.RandNormal(rng, sh.n, sh.z, 1)
			aq := q(a, quant.AlongCols, bits.aBits, sh.pi, rng)
			bq := q(b, quant.AlongRows, bits.bBits, sh.pi, rng)
			bTq := q(bT, quant.AlongCols, bits.bBits, sh.pi, rng)
			for _, se := range []bool{true, false} {
				wantMM, wantOpsMM := MatMulScalar(aq, bq, Options{ReuseSums: se})
				wantTB, wantOpsTB := MatMulTransBScalar(aq, bTq, Options{ReuseSums: se})
				for _, par := range []int{-1, 0, 1, 2, 5} {
					opt := Options{ReuseSums: se, Parallelism: par}
					got, ops := MatMul(aq, bq, opt)
					if d := tensor.MaxAbsDiff(got, wantMM); d != 0 {
						t.Errorf("MatMul %+v bits=%+v se=%v par=%d: diff %v from scalar", sh, bits, se, par, d)
					}
					if ops != wantOpsMM {
						t.Errorf("MatMul %+v se=%v par=%d: ops %+v != scalar %+v", sh, se, par, ops, wantOpsMM)
					}
					gotTB, opsTB := MatMulTransB(aq, bTq, opt)
					if d := tensor.MaxAbsDiff(gotTB, wantTB); d != 0 {
						t.Errorf("MatMulTransB %+v bits=%+v se=%v par=%d: diff %v from scalar", sh, bits, se, par, d)
					}
					if opsTB != wantOpsTB {
						t.Errorf("MatMulTransB %+v se=%v par=%d: ops %+v != scalar %+v", sh, se, par, opsTB, wantOpsTB)
					}
				}
			}
		}
	}
}

// MatMulInto must reshape and fully overwrite its destination, so a
// buffer cycled through different shapes never leaks stale values.
func TestMatMulIntoReusesDestination(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dst := &tensor.Matrix{}
	dstT := &tensor.Matrix{}
	for _, sh := range []struct{ m, z, n int }{{4, 64, 12}, {2, 32, 5}, {6, 96, 20}, {1, 0, 3}} {
		a := tensor.RandNormal(rng, sh.m, sh.z, 1)
		b := tensor.RandNormal(rng, sh.z, sh.n, 1)
		bT := tensor.RandNormal(rng, sh.n, sh.z, 1)
		aq := q(a, quant.AlongCols, 8, 32, rng)
		bq := q(b, quant.AlongRows, 2, 32, rng)
		bTq := q(bT, quant.AlongCols, 2, 32, rng)

		ops := MatMulInto(dst, aq, bq, DefaultOptions())
		want, wantOps := MatMulScalar(aq, bq, DefaultOptions())
		if d := tensor.MaxAbsDiff(dst, want); d != 0 {
			t.Errorf("%+v: MatMulInto diff %v", sh, d)
		}
		if ops != wantOps {
			t.Errorf("%+v: MatMulInto ops %+v != %+v", sh, ops, wantOps)
		}

		MatMulTransBInto(dstT, aq, bTq, DefaultOptions())
		wantT, _ := MatMulTransBScalar(aq, bTq, DefaultOptions())
		if d := tensor.MaxAbsDiff(dstT, wantT); d != 0 {
			t.Errorf("%+v: MatMulTransBInto diff %v", sh, d)
		}
	}
}

// The steady-state Into path must not allocate: operands stay fixed, the
// destination and the pooled kernel scratch are reused.
func TestMatMulIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	aq := q(tensor.RandNormal(rng, 1, 128, 1), quant.AlongCols, 8, 64, rng)
	kq := q(tensor.RandNormal(rng, 512, 128, 1), quant.AlongCols, 2, 64, rng)
	dst := &tensor.Matrix{}
	opt := Options{ReuseSums: true, Parallelism: 1} // serial: fan-out spawns goroutines
	MatMulTransBInto(dst, aq, kq, opt)              // warm the buffers
	avg := testing.AllocsPerRun(50, func() {
		MatMulTransBInto(dst, aq, kq, opt)
	})
	if avg > 0.5 {
		t.Errorf("steady-state MatMulTransBInto allocates %.1f times per call, want 0", avg)
	}
}
