// Package cluster models the hardware side of the evaluation: the AWS
// GPU instances of Table 2, the tensor/pipeline parallelism degrees of
// Table 3, and the analytic cost model that prices compute, KV transfer,
// memory access, (de)quantization and the Eq. (4) approximation on that
// hardware.
//
// Substitution note (DESIGN.md §3): instead of real GPUs, each instance
// carries published throughput numbers (dense FP16 tensor TFLOPS, INT8
// TOPS, HBM bandwidth, NIC bandwidth). Every JCT component in the paper
// is throughput-bound, so the component *ratios* — which the figures are
// about — depend only on these relative numbers. An efficiency factor
// derates peak throughput to a realistic sustained fraction.
package cluster

import (
	"fmt"

	"github.com/hackkv/hack/internal/model"
)

// GPU describes one accelerator's sustained-relevant capabilities.
type GPU struct {
	Name string
	// FP16TFLOPS is peak dense FP16 tensor throughput.
	FP16TFLOPS float64
	// INT8TOPS is peak INT8 tensor throughput; 0 means the GPU cannot
	// run INT8 tensor-core matmuls (V100), forcing FP16 fallback — the
	// reason HACK's prefill gains vanish on V100 (§7.2).
	INT8TOPS float64
	// MemGiB is HBM capacity; MemBWGBs its bandwidth in GB/s.
	MemGiB   float64
	MemBWGBs float64
}

// Instance describes one cloud instance type (Table 2).
type Instance struct {
	Name string
	// GPUName tags the accelerator for display (figures key on it).
	GPUName string
	GPU     GPU
	NumGPUs int
	// NetGbps is the instance NIC bandwidth.
	NetGbps float64
	// PricePerHour is the on-demand us-east-1 price in USD, used for
	// the cost-effectiveness accounting that motivates disaggregation
	// (§1: cheap prefill GPUs cost 10-20x less than A100s).
	PricePerHour float64
	// PoolInstances is the paper's §7.1 prefill pool size for this
	// instance type: ten g5.12xlarge (A10G), sixteen p3.8xlarge (V100),
	// sixteen g4dn.12xlarge (T4), ten g6.12xlarge (L4), two
	// p4de.24xlarge (A100).
	PoolInstances int
}

// TotalMemGiB returns the instance's aggregate GPU memory.
func (i Instance) TotalMemGiB() float64 { return float64(i.NumGPUs) * i.GPU.MemGiB }

// Table 2 instances. Throughputs are the public spec-sheet numbers for
// each accelerator (dense, no sparsity).

// A10G returns the g5.12xlarge instance (4×A10G, 40 Gbps).
func A10G() Instance {
	return Instance{Name: "g5.12xlarge", GPUName: "A10G", NumGPUs: 4, NetGbps: 40, PricePerHour: 5.672,
		PoolInstances: 10,
		GPU:           GPU{Name: "A10G", FP16TFLOPS: 125, INT8TOPS: 250, MemGiB: 24, MemBWGBs: 600}}
}

// V100 returns the p3.8xlarge instance (4×V100, 10 Gbps). V100 tensor
// cores predate INT8 matmul support.
func V100() Instance {
	return Instance{Name: "p3.8xlarge", GPUName: "V100", NumGPUs: 4, NetGbps: 10, PricePerHour: 12.24,
		PoolInstances: 16,
		GPU:           GPU{Name: "V100", FP16TFLOPS: 112, INT8TOPS: 0, MemGiB: 16, MemBWGBs: 900}}
}

// T4 returns the g4dn.12xlarge instance (4×T4, 50 Gbps).
func T4() Instance {
	return Instance{Name: "g4dn.12xlarge", GPUName: "T4", NumGPUs: 4, NetGbps: 50, PricePerHour: 3.912,
		PoolInstances: 16,
		GPU:           GPU{Name: "T4", FP16TFLOPS: 65, INT8TOPS: 130, MemGiB: 16, MemBWGBs: 300}}
}

// L4 returns the g6.12xlarge instance (4×L4, 40 Gbps).
func L4() Instance {
	return Instance{Name: "g6.12xlarge", GPUName: "L4", NumGPUs: 4, NetGbps: 40, PricePerHour: 4.602,
		PoolInstances: 10,
		GPU:           GPU{Name: "L4", FP16TFLOPS: 121, INT8TOPS: 242, MemGiB: 24, MemBWGBs: 300}}
}

// A100 returns the p4de.24xlarge instance (8×A100-80GB, 400 Gbps).
func A100() Instance {
	return Instance{Name: "p4de.24xlarge", GPUName: "A100", NumGPUs: 8, NetGbps: 400, PricePerHour: 40.966,
		PoolInstances: 2,
		GPU:           GPU{Name: "A100", FP16TFLOPS: 312, INT8TOPS: 624, MemGiB: 80, MemBWGBs: 2039}}
}

// PrefillInstances returns the five prefill instance types in the
// paper's A10G/V100/T4/L4/A100 presentation order.
func PrefillInstances() []Instance {
	return []Instance{A10G(), V100(), T4(), L4(), A100()}
}

// ByGPUName resolves an instance by accelerator tag through the GPU
// registry (case-insensitive; unknown names list the valid tags).
func ByGPUName(name string) (Instance, error) { return GPURegistry.Lookup(name) }

// Parallelism is a (TP, PP) degree pair from Table 3.
type Parallelism struct{ TP, PP int }

// GPUsPerReplica returns how many GPUs one model replica occupies.
func (p Parallelism) GPUsPerReplica() int { return p.TP * p.PP }

// ParallelismFor returns the Table 3 TP/PP degrees for a model on a GPU
// class. GPU classes are keyed by accelerator name.
func ParallelismFor(spec model.Spec, gpuName string) (Parallelism, error) {
	type key struct{ model, gpu string }
	table := map[key]Parallelism{
		{"M", "A10G"}: {4, 1}, {"M", "L4"}: {4, 1}, {"M", "V100"}: {4, 1}, {"M", "T4"}: {4, 1}, {"M", "A100"}: {1, 1},
		{"P", "A10G"}: {2, 2}, {"P", "L4"}: {2, 2}, {"P", "V100"}: {2, 2}, {"P", "T4"}: {2, 2}, {"P", "A100"}: {1, 1},
		{"Y", "A10G"}: {4, 2}, {"Y", "L4"}: {4, 2}, {"Y", "V100"}: {4, 2}, {"Y", "T4"}: {4, 2}, {"Y", "A100"}: {4, 1},
		{"L", "A10G"}: {4, 2}, {"L", "L4"}: {4, 2}, {"L", "V100"}: {4, 4}, {"L", "T4"}: {4, 4}, {"L", "A100"}: {4, 1},
		{"F", "A10G"}: {4, 5}, {"F", "L4"}: {4, 5}, {"F", "V100"}: {4, 8}, {"F", "T4"}: {4, 8}, {"F", "A100"}: {4, 2},
	}
	p, ok := table[key{spec.ShortName, gpuName}]
	if !ok {
		return Parallelism{}, fmt.Errorf("cluster: no TP/PP entry for model %s on %s", spec.ShortName, gpuName)
	}
	return p, nil
}
