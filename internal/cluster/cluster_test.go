package cluster

import (
	"testing"

	"github.com/hackkv/hack/internal/model"
)

func TestInstanceCatalog(t *testing.T) {
	ins := PrefillInstances()
	if len(ins) != 5 {
		t.Fatalf("%d prefill instances, want 5", len(ins))
	}
	// Table 2 checks.
	for _, tc := range []struct {
		gpu  string
		gbps float64
		mem  float64
	}{
		{"A10G", 40, 96}, {"V100", 10, 64}, {"T4", 50, 64}, {"L4", 40, 96}, {"A100", 400, 640},
	} {
		in, err := ByGPUName(tc.gpu)
		if err != nil {
			t.Fatal(err)
		}
		if in.NetGbps != tc.gbps {
			t.Errorf("%s bandwidth %v, want %v", tc.gpu, in.NetGbps, tc.gbps)
		}
		if in.TotalMemGiB() != tc.mem {
			t.Errorf("%s memory %v, want %v", tc.gpu, in.TotalMemGiB(), tc.mem)
		}
	}
	if _, err := ByGPUName("H100"); err == nil {
		t.Error("unknown GPU accepted")
	}
	// V100 predates INT8 tensor cores (§7.2).
	if V100().GPU.INT8TOPS != 0 {
		t.Error("V100 must not support INT8 matmul")
	}
	if A10G().GPU.INT8TOPS <= A10G().GPU.FP16TFLOPS {
		t.Error("INT8 should be faster than FP16 on A10G")
	}
}

func TestParallelismTable(t *testing.T) {
	// Spot-check Table 3 entries.
	p, err := ParallelismFor(model.Llama70B(), "V100")
	if err != nil || p.TP != 4 || p.PP != 4 {
		t.Errorf("L on V100 = %+v, %v; want TP4 PP4", p, err)
	}
	p, _ = ParallelismFor(model.Mistral7B(), "A100")
	if p.TP != 1 || p.PP != 1 {
		t.Errorf("M on A100 = %+v, want no TP/PP", p)
	}
	p, _ = ParallelismFor(model.Falcon180B(), "A100")
	if p.GPUsPerReplica() != 8 {
		t.Errorf("F on A100 occupies %d GPUs, want 8", p.GPUsPerReplica())
	}
	if _, err := ParallelismFor(model.Toy(), "A10G"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestMethodProfiles(t *testing.T) {
	b := Baseline()
	if b.WireFraction != 1 || b.Dequant || b.Homomorphic {
		t.Errorf("baseline profile wrong: %+v", b)
	}
	cg, kq, hk := CacheGen(), KVQuant(), DefaultHACK()
	// All quantized methods compress KV to ~14–16% of FP16 (≈85%
	// compression, §2.2).
	for _, m := range []Method{cg, kq, hk} {
		if m.WireFraction < 0.10 || m.WireFraction > 0.17 {
			t.Errorf("%s wire fraction %.3f outside the ~86%%-compression band", m.Name, m.WireFraction)
		}
		if !m.QuantizesKV {
			t.Errorf("%s must quantize", m.Name)
		}
	}
	// CacheGen's entropy coding beats KVQuant's raw packing on the wire.
	if cg.WireFraction >= kq.WireFraction {
		t.Error("CacheGen wire fraction should be below KVQuant")
	}
	// Only the baselines dequantize; only HACK is homomorphic.
	if !cg.Dequant || !kq.Dequant || hk.Dequant {
		t.Error("dequant flags wrong")
	}
	if !hk.Homomorphic || cg.Homomorphic {
		t.Error("homomorphic flags wrong")
	}
	// HACK stores slightly more than the plain 2-bit methods (SE sums +
	// FP16 tail), mirroring Table 5's +0.6–2.9%.
	if hk.ResidentFraction <= kq.ResidentFraction {
		t.Error("HACK resident fraction should exceed KVQuant")
	}
	if hk.ResidentFraction > kq.ResidentFraction*1.2 {
		t.Error("HACK resident overhead implausibly large")
	}
	if len(EvaluatedMethods()) != 4 {
		t.Error("EvaluatedMethods should list the four headline methods")
	}
}

func TestHACKAblationProfiles(t *testing.T) {
	if HACK(64, false, true).Name != "HACK/SE" || HACK(64, true, false).Name != "HACK/RQE" {
		t.Error("ablation names wrong")
	}
	// Π=128 sums need INT16 (§6), so SE costs more per element there.
	over128 := HACK(128, true, true).ResidentFraction - twoBitFraction(128)
	over64 := HACK(64, true, true).ResidentFraction - twoBitFraction(64)
	if over128 <= over64-0.004 {
		t.Errorf("Π=128 SE overhead %.4f should not be far below Π=64's %.4f", over128, over64)
	}
}

func TestFPFormat(t *testing.T) {
	for _, bits := range []int{4, 6, 8} {
		m, err := FPFormat(bits)
		if err != nil {
			t.Fatal(err)
		}
		if m.WireFraction != float64(bits)/16 {
			t.Errorf("FP%d wire fraction %.3f", bits, m.WireFraction)
		}
		if !m.Dequant {
			t.Errorf("FP%d must pay conversion", bits)
		}
	}
	if _, err := FPFormat(5); err == nil {
		t.Error("FP5 accepted")
	}
	// FP formats compress far less than 2-bit methods (§3's point).
	fp4, _ := FPFormat(4)
	if fp4.WireFraction <= DefaultHACK().WireFraction {
		t.Error("FP4 should still transfer more than HACK")
	}
}

func newTestCM(t *testing.T, prefill Instance) *CostModel {
	t.Helper()
	cm, err := NewCostModel(model.Llama70B(), prefill, A100(), DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func TestCostModelBasics(t *testing.T) {
	cm := newTestCM(t, A10G())
	const l = 16200 // Cocktail-scale prompt

	// Wire bytes: baseline FP16 ≈ 42.5 GB for 16.2K tokens of Llama-70B
	// (full multi-head KV; see the model package's sizing note).
	base := cm.WireBytes(Baseline(), l)
	if base < 40e9 || base > 45e9 {
		t.Errorf("baseline wire bytes %.2e, want ≈42.5 GB", base)
	}
	hack := cm.WireBytes(DefaultHACK(), l)
	if r := hack / base; r < 0.10 || r > 0.17 {
		t.Errorf("HACK/baseline wire ratio %.3f", r)
	}

	// Transfer at 40 Gbps: seconds-scale for the baseline.
	tt := cm.TransferTime(Baseline(), l, cm.LinkGbps())
	if tt < 5 || tt > 20 {
		t.Errorf("baseline transfer %.1fs at 40 Gbps, want 5–20s", tt)
	}
	if cm.TransferTime(DefaultHACK(), l, cm.LinkGbps()) >= tt/5 {
		t.Error("HACK transfer should be >5x faster")
	}
	if cm.TransferTime(Baseline(), l, 0) != 0 {
		t.Error("zero-bandwidth transfer should be 0")
	}

	// Prefill: seconds-scale on 8×A10G, HACK faster than baseline.
	pBase, _ := cm.PrefillTimes(Baseline(), l)
	pHack, q := cm.PrefillTimes(DefaultHACK(), l)
	if pBase < 2 || pBase > 60 {
		t.Errorf("baseline prefill %.1fs implausible", pBase)
	}
	if pHack >= pBase {
		t.Errorf("HACK prefill %.2fs not below baseline %.2fs", pHack, pBase)
	}
	if q <= 0 || q > pBase/5 {
		t.Errorf("quant time %.3fs should be small but positive", q)
	}

	// Swap through CPU is slower than the A10G link.
	if cm.SwapTime(Baseline(), l) <= 0 {
		t.Error("swap time must be positive")
	}
	if cm.String() == "" {
		t.Error("String empty")
	}
}

// On V100 (no INT8) HACK's prefill gain disappears — the §7.2 result.
func TestV100NoPrefillGain(t *testing.T) {
	cm := newTestCM(t, V100())
	const l = 16200
	pBase, _ := cm.PrefillTimes(Baseline(), l)
	pHack, _ := cm.PrefillTimes(DefaultHACK(), l)
	if pHack < pBase*0.999 {
		t.Errorf("V100 HACK prefill %.2fs below baseline %.2fs; INT8 fallback missing", pHack, pBase)
	}
}

func TestDecodeStepShape(t *testing.T) {
	cm := newTestCM(t, A10G())
	batch := []int{16000, 16200, 16400, 16600}

	dBase, kvBase, ovBase := cm.DecodeStep(Baseline(), batch)
	if dBase <= 0 || kvBase <= 0 {
		t.Fatalf("baseline decode %v kv %v", dBase, kvBase)
	}
	if ovBase != 0 {
		t.Errorf("baseline overhead %v, want 0", ovBase)
	}

	dCG, kvCG, ovCG := cm.DecodeStep(CacheGen(), batch)
	// Quantized residency shrinks KV memory-access time, though the
	// dequantize-first methods re-read part of the materialized FP16
	// (DequantRereadFrac), so the reduction is partial.
	if kvCG >= kvBase {
		t.Errorf("CacheGen KV time %.4f not below baseline %.4f", kvCG, kvBase)
	}
	// But dequantization overhead is substantial — the paper's central
	// observation 2 (up to ~38%% of JCT).
	if ovCG <= 0 {
		t.Error("CacheGen must pay dequantization")
	}
	_ = dCG

	dHK, kvHK, ovHK := cm.DecodeStep(DefaultHACK(), batch)
	// HACK's approximation overhead is tiny relative to dequantization
	// (§7.2: 1.5–3.2%% vs 17–30%%).
	if ovHK <= 0 || ovHK > ovCG/5 {
		t.Errorf("HACK approx %.4f vs CacheGen dequant %.4f: want ≥5x cheaper", ovHK, ovCG)
	}
	if kvHK >= kvBase/4 {
		t.Errorf("HACK KV time %.4f not well below baseline", kvHK)
	}
	// HACK decode compute ≤ dequant methods' (INT8 attention).
	if dHK > dCG*1.01 {
		t.Errorf("HACK decode %.4f above CacheGen %.4f", dHK, dCG)
	}

	// Ablations: no SE and no RQE both cost extra overhead.
	_, _, ovNoSE := cm.DecodeStep(HACK(64, false, true), batch)
	if ovNoSE <= ovHK {
		t.Error("HACK/SE should pay more overhead than HACK")
	}
	_, _, ovNoRQE := cm.DecodeStep(HACK(64, true, false), batch)
	if ovNoRQE <= ovHK {
		t.Error("HACK/RQE should pay more overhead than HACK")
	}

	// Empty batch: all zero.
	if d, k, o := cm.DecodeStep(Baseline(), nil); d != 0 || k != 0 || o != 0 {
		t.Error("empty batch should cost nothing")
	}
}

func TestMemoryAccounting(t *testing.T) {
	cm := newTestCM(t, A10G())
	cap := cm.DecodeReplicaCapacityBytes()
	// Llama-70B on A100 TP4: 4×80 GiB replica.
	if cap != 4*80*float64(1<<30) {
		t.Errorf("replica capacity %.2e", cap)
	}
	// Weights alone take ~141 GB.
	empty := cm.DecodeMemoryBytes(Baseline(), nil)
	if empty < 140e9 || empty > 160e9 {
		t.Errorf("empty memory %.2e, want weights+activations ≈ 150 GB", empty)
	}
	// A 16K-token baseline request adds ≈42 GB; quantized ≈6.6 GB.
	one := cm.DecodeMemoryBytes(Baseline(), []int{16200}) - empty
	oneQ := cm.DecodeMemoryBytes(DefaultHACK(), []int{16200}) - empty
	if one < 40e9 || one > 45e9 {
		t.Errorf("per-request baseline KV %.2e", one)
	}
	if oneQ > one/5 {
		t.Errorf("quantized KV %.2e not well below baseline %.2e", oneQ, one)
	}
}

func TestNewCostModelErrors(t *testing.T) {
	if _, err := NewCostModel(model.Toy(), A10G(), A100(), DefaultCostParams()); err == nil {
		t.Error("model without TP/PP entry accepted")
	}
}

func TestMethodByName(t *testing.T) {
	for _, name := range []string{"Baseline", "cachegen", "KVQuant", "HACK",
		"hack/se", "HACK/RQE", "HACK32", "HACK128", "HACK-INT4", "FP4", "FP6", "FP8"} {
		m, err := MethodByName(name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.Name == "" {
			t.Errorf("%s: empty method", name)
		}
	}
	if _, err := MethodByName("nope"); err == nil {
		t.Error("unknown method accepted")
	}
	m, _ := MethodByName("HACK-INT4")
	if !m.INT4Compute {
		t.Error("INT4 flag lost")
	}
}

func TestINT4FasterPrefill(t *testing.T) {
	cm := newTestCM(t, A10G())
	p8, _ := cm.PrefillTimes(DefaultHACK(), 16200)
	p4, _ := cm.PrefillTimes(HACKINT4(), 16200)
	if p4 >= p8 {
		t.Errorf("INT4 prefill %.2fs not below INT8's %.2fs", p4, p8)
	}
	// On V100 neither runs on integer tensor cores: identical.
	cmV := newTestCM(t, V100())
	v8, _ := cmV.PrefillTimes(DefaultHACK(), 16200)
	v4, _ := cmV.PrefillTimes(HACKINT4(), 16200)
	if v4 != v8 {
		t.Errorf("V100 INT4 %.2fs != INT8 %.2fs; should be identical without integer cores", v4, v8)
	}
}

func TestInstancePricing(t *testing.T) {
	// §1: cheap prefill GPUs cost ~10x less than A100 instances.
	a100 := A100().PricePerHour
	for _, in := range []Instance{A10G(), T4(), L4()} {
		if in.PricePerHour <= 0 || in.PricePerHour > a100/5 {
			t.Errorf("%s price $%.2f/h out of the cheap-GPU band vs A100 $%.2f/h",
				in.GPUName, in.PricePerHour, a100)
		}
	}
}
