package cluster

import "github.com/hackkv/hack/internal/registry"

// MethodRegistry resolves serving-method profiles by name. Entries
// self-register below; adding a method is one Register call next to its
// constructor, with no switch statement to extend. Registration order is
// the paper's presentation order.
var MethodRegistry = registry.New[Method]("method")

// GPURegistry resolves cloud instances by accelerator tag.
var GPURegistry = registry.New[Instance]("GPU")

func init() {
	MethodRegistry.Register("Baseline", Baseline())
	MethodRegistry.Register("CacheGen", CacheGen())
	MethodRegistry.Register("KVQuant", KVQuant())
	MethodRegistry.Register("HACK", DefaultHACK())
	MethodRegistry.Register("HACK/SE", HACK(64, false, true))
	MethodRegistry.Register("HACK/RQE", HACK(64, true, false))
	MethodRegistry.Register("HACK32", HACK(32, true, true))
	MethodRegistry.Register("HACK128", HACK(128, true, true))
	MethodRegistry.Register("HACK-INT4", HACKINT4())
	for _, bits := range []int{4, 6, 8} {
		m, err := FPFormat(bits)
		if err != nil {
			panic(err)
		}
		MethodRegistry.Register(m.Name, m)
	}

	for _, in := range []Instance{A10G(), V100(), T4(), L4(), A100()} {
		GPURegistry.Register(in.GPUName, in)
	}
}
