package cluster

import (
	"fmt"

	"github.com/hackkv/hack/internal/model"
)

// CostParams are the calibration knobs of the analytic performance
// model. Defaults are set so the baseline's JCT decomposition matches
// the paper's Fig. 1 ratios and the quantization methods' dequantization
// share matches Figs. 2–4; see EXPERIMENTS.md for the calibration notes.
type CostParams struct {
	// ComputeEff derates peak tensor throughput to a sustained value.
	ComputeEff float64
	// MemEff derates peak HBM bandwidth.
	MemEff float64
	// KVAccessEff further derates bandwidth for KV-cache reads: paged
	// attention gathers scattered blocks, sustaining less than the
	// sequential streaming rate weights enjoy. Calibrated against the
	// paper's 16.3–33.1% KV memory-access share of JCT (§2.1).
	KVAccessEff float64
	// NetEff derates NIC bandwidth.
	NetEff float64
	// QuantOpsPerElem prices the one-time KV quantization pass in
	// vector ops per element (CacheGen's entropy coding and KVQuant's
	// grouping make this far more than a bare round; calibrated to the
	// paper's 1.25–2.91% quantization share of JCT).
	QuantOpsPerElem float64
	// VectorFrac is CUDA-core (vector) throughput as a fraction of
	// tensor throughput; element-wise work (softmax, quantization, the
	// Eq. (4) correction) runs there.
	VectorFrac float64
	// DequantTraffic scales the per-iteration KV dequantization cost as
	// a multiple of one full-bandwidth FP16 KV pass (reading codes,
	// widening, writing FP16 for the attention kernel to consume).
	// Calibrated against the paper's measured 17–38% dequantization
	// share of JCT.
	DequantTraffic float64
	// DequantRereadFrac is the fraction of the materialized FP16 KV the
	// attention kernel re-reads from HBM after dequantization. HACK
	// reads the 2-bit codes directly and pays none of this — the
	// mechanism behind its 11–34% decode-time advantage over CacheGen
	// and KVQuant (§7.2).
	DequantRereadFrac float64
	// ActivationGiB reserves per-replica GPU memory for activations.
	ActivationGiB float64
	// CPUSwapGBs is host↔GPU staging bandwidth for the §4 CPU-memory
	// swap path.
	CPUSwapGBs float64
	// PerLayerOverheadUS adds a fixed per-iteration scheduling/kernel
	// launch overhead per layer, in microseconds.
	PerLayerOverheadUS float64
	// ApproxLaunchUS adds the per-layer launch cost of HACK's
	// approximation kernels during decode, in microseconds per
	// iteration. Calibrated against the paper's 1.5–3.2% approximation
	// share of JCT.
	ApproxLaunchUS float64
	// DequantLaunchUS adds the per-layer launch cost of the baselines'
	// dequantization kernels during decode, in microseconds per
	// iteration. Together with DequantTraffic it is calibrated against
	// the paper's 17–38% dequantization share of JCT.
	DequantLaunchUS float64
	// SELaunchUS and RQELaunchUS price the extra per-layer kernel
	// launches of the two HACK ablations, charged per request per
	// iteration (the ablated passes run per sequence). The launch terms
	// dominate on short sequences (many concurrent requests), the
	// traffic terms on long ones — reproducing §7.4's asymmetry.
	SELaunchUS, RQELaunchUS float64
}

// DefaultCostParams returns the calibrated defaults.
func DefaultCostParams() CostParams {
	return CostParams{
		ComputeEff:         0.45,
		MemEff:             0.40,
		KVAccessEff:        0.5,
		NetEff:             0.80,
		QuantOpsPerElem:    80,
		VectorFrac:         1.0 / 8.0,
		DequantTraffic:     1.2,
		DequantRereadFrac:  0.2,
		ActivationGiB:      12,
		CPUSwapGBs:         16,
		PerLayerOverheadUS: 25,
		ApproxLaunchUS:     10,
		DequantLaunchUS:    60,
		SELaunchUS:         5,
		RQELaunchUS:        10,
	}
}

// CostModel prices one (model, prefill instance, decode instance)
// deployment.
type CostModel struct {
	Params  CostParams
	Spec    model.Spec
	Prefill Instance
	Decode  Instance
	// PrefillPar / DecodePar are the Table 3 parallelism degrees for
	// each side.
	PrefillPar, DecodePar Parallelism
}

// NewCostModel assembles a cost model with Table 3 parallelism looked up
// automatically.
func NewCostModel(spec model.Spec, prefill, decode Instance, p CostParams) (*CostModel, error) {
	pp, err := ParallelismFor(spec, prefill.GPUName)
	if err != nil {
		return nil, err
	}
	dp, err := ParallelismFor(spec, decode.GPUName)
	if err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &CostModel{Params: p, Spec: spec, Prefill: prefill, Decode: decode,
		PrefillPar: pp, DecodePar: dp}, nil
}

// tensorFLOPS returns a replica's sustained tensor throughput in FLOP/s
// for FP16 work. Pipeline stages process different layers; a single
// request's latency sees only TP-wide parallelism at a time, but the
// whole replica is busy across the pipeline, so throughput-style costs
// use TP×PP and latency adds a pipeline-fill term handled by callers via
// PerLayerOverheadUS.
func (c *CostModel) tensorFLOPS(in Instance, par Parallelism) float64 {
	return float64(par.TP*par.PP) * in.GPU.FP16TFLOPS * 1e12 * c.Params.ComputeEff
}

// int8OPS returns sustained INT8 throughput, or 0 when unsupported.
func (c *CostModel) int8OPS(in Instance, par Parallelism) float64 {
	return float64(par.TP*par.PP) * in.GPU.INT8TOPS * 1e12 * c.Params.ComputeEff
}

// quantOPS returns the integer-matmul throughput available to a method:
// INT8 rate normally, doubled for the INT4-compute variant (Ampere
// tensor cores run INT4 at 2x INT8), 0 when the GPU has no integer
// tensor cores at all.
func (c *CostModel) quantOPS(m Method, in Instance, par Parallelism) float64 {
	ops := c.int8OPS(in, par)
	if m.INT4Compute {
		ops *= 2
	}
	return ops
}

// vectorFLOPS returns sustained CUDA-core throughput.
func (c *CostModel) vectorFLOPS(in Instance, par Parallelism) float64 {
	return c.tensorFLOPS(in, par) * c.Params.VectorFrac
}

// memBW returns a replica's sustained aggregate HBM bandwidth in B/s.
// Only the TP group holds any one layer's data, but PP stages stream
// their own layers concurrently, so steady-state decode sees TP×PP.
func (c *CostModel) memBW(in Instance, par Parallelism) float64 {
	return float64(par.TP*par.PP) * in.GPU.MemBWGBs * 1e9 * c.Params.MemEff
}

// KVBytesFP16 returns the FP16 KV footprint of l tokens.
func (c *CostModel) KVBytesFP16(l int) float64 {
	return float64(c.Spec.KVBytesPerTokenFP16()) * float64(l)
}

// WireBytes returns the prefill→decode transfer size for method m at
// context length l.
func (c *CostModel) WireBytes(m Method, l int) float64 {
	return c.KVBytesFP16(l) * m.WireFraction
}

// ResidentKVBytes returns the decode-side cache footprint.
func (c *CostModel) ResidentKVBytes(m Method, l int) float64 {
	return c.KVBytesFP16(l) * m.ResidentFraction
}

// PrefillTimes returns the prefill computation time and the KV
// quantization time for a prompt of l tokens.
func (c *CostModel) PrefillTimes(m Method, l int) (compute, quant float64) {
	flops := c.tensorFLOPS(c.Prefill, c.PrefillPar)
	total := float64(c.Spec.PrefillFLOPs(l))
	attn := float64(c.Spec.AttnFLOPsPrefill(l)) / 2 // causal masking halves it
	linear := total - float64(c.Spec.AttnFLOPsPrefill(l))
	compute = (linear + attn) / flops

	if m.Homomorphic {
		speed := c.quantOPS(m, c.Prefill, c.PrefillPar)
		if speed > 0 {
			// KV matmuls run on INT8 tensor cores. The Eq. (4)
			// correction (9MN per block, i.e. 9/(2Π) of the matmul
			// ops) is fused into the matmul epilogue as in the
			// paper's Triton kernels, so it prices at tensor rate.
			approx := attn * 9.0 / (2.0 * float64(m.Pi))
			compute = linear/flops + (attn+approx)/speed
		}
		// Without INT8 support (V100) the quantized matmul falls back
		// to FP16 rate: no prefill gain (§7.2).
	} else if m.AttnSpeedup > 1 {
		compute = linear/flops + attn/(flops*m.AttnSpeedup)
	}

	if m.QuantizesKV {
		// One pass over the prompt's KV (and Q/P for HACK), priced per
		// element (see CostParams.QuantOpsPerElem).
		elems := c.KVBytesFP16(l) / 2
		quant = elems * c.Params.QuantOpsPerElem / c.vectorFLOPS(c.Prefill, c.PrefillPar)
	}
	// Pipeline-fill / launch overhead.
	compute += float64(c.Spec.Layers) * c.Params.PerLayerOverheadUS * 1e-6
	return compute, quant
}

// DecodeStep prices one decode iteration for a batch of requests whose
// current context lengths are given. It returns the iteration's decode
// time (weights + compute), the KV memory-access time, and the
// dequantization-or-approximation overhead — the three buckets the
// paper's JCT decomposition separates.
func (c *CostModel) DecodeStep(m Method, contextLens []int) (decode, kvMem, overhead float64) {
	return c.decodeStep(func(int) Method { return m }, contextLens)
}

// DecodeStepMixed prices one decode iteration for a batch whose
// requests may be served under different methods — SLO-aware admission
// mixes compression classes in one decode pool. methods[i] serves
// contextLens[i]; per-iteration method launch overheads are charged
// once per distinct method present, in first-appearance order. For a
// homogeneous batch the result equals DecodeStep exactly. Mismatched
// slice lengths are a programming error and panic rather than silently
// pricing a zero-cost iteration.
func (c *CostModel) DecodeStepMixed(methods []Method, contextLens []int) (decode, kvMem, overhead float64) {
	if len(methods) != len(contextLens) {
		panic(fmt.Sprintf("cluster: DecodeStepMixed with %d methods for %d requests", len(methods), len(contextLens)))
	}
	return c.decodeStep(func(i int) Method { return methods[i] }, contextLens)
}

func (c *CostModel) decodeStep(methodAt func(int) Method, contextLens []int) (decode, kvMem, overhead float64) {
	if len(contextLens) == 0 {
		return 0, 0, 0
	}
	flops := c.tensorFLOPS(c.Decode, c.DecodePar)
	bw := c.memBW(c.Decode, c.DecodePar)
	batch := float64(len(contextLens))

	// Weight streaming (once per iteration) vs dense compute for the
	// whole batch: the bigger bound wins.
	weightTime := float64(c.Spec.WeightBytesFP16()) / bw
	linear := 2 * float64(c.Spec.Params) * batch / flops
	decode = weightTime
	if linear > decode {
		decode = linear
	}
	decode += float64(c.Spec.Layers) * c.Params.PerLayerOverheadUS * 1e-6

	// quantOPS is re-derived only when the method actually changes, so
	// the dominant homogeneous-batch case computes it once.
	m := methodAt(0)
	int8 := c.quantOPS(m, c.Decode, c.DecodePar)
	for i, l := range contextLens {
		if next := methodAt(i); next.Name != m.Name {
			m = next
			int8 = c.quantOPS(m, c.Decode, c.DecodePar)
		}
		// Memory access for the KV cache read (scattered, so below the
		// streaming rate); dequantize-first methods additionally re-read
		// part of the materialized FP16 KV.
		kvBW := bw * c.Params.KVAccessEff
		kvMem += c.ResidentKVBytes(m, l) / kvBW
		if m.Dequant {
			kvMem += c.KVBytesFP16(l) * c.Params.DequantRereadFrac / kvBW
		}
		// Attention matmul compute.
		attnF := float64(c.Spec.AttnFLOPsDecode(l))
		switch {
		case m.Homomorphic && int8 > 0:
			decode += attnF / int8
		default:
			decode += attnF / (flops * m.AttnSpeedup)
		}
		// Per-iteration overhead bucket.
		switch {
		case m.Dequant:
			// Dequantizing the whole cache costs roughly one extra
			// FP16-sized pass over the KV data (see CostParams).
			overhead += c.KVBytesFP16(l) * c.Params.DequantTraffic / bw
		case m.Homomorphic:
			perHead := float64(10 * (c.Spec.HeadDim + l))
			ops := perHead * float64(c.Spec.Layers) * float64(c.Spec.Heads)
			overhead += ops / c.vectorFLOPS(c.Decode, c.DecodePar)
			if !m.SE {
				// Recomputing Σb′ re-reads the whole quantized cache
				// and sums it, with its own kernel launches — per
				// request, every iteration (§5.3's 2·d_h·L term).
				sumOps := float64(2*c.Spec.HeadDim*l) * float64(c.Spec.Layers) * float64(c.Spec.Heads)
				overhead += c.ResidentKVBytes(m, l)/bw +
					sumOps/c.vectorFLOPS(c.Decode, c.DecodePar) +
					float64(c.Spec.Layers)*c.Params.SELaunchUS*1e-6
			}
			if !m.RQE {
				// Requantizing the trailing V block: dequantize +
				// requantize ~Π/2 tokens × d_h × kv heads × layers,
				// ~8 vector ops per element plus a launch per layer,
				// per request, every iteration.
				elems := float64(m.Pi) / 2 * float64(c.Spec.HeadDim) *
					float64(c.Spec.KVHeads) * float64(c.Spec.Layers)
				overhead += elems*8/c.vectorFLOPS(c.Decode, c.DecodePar) +
					float64(c.Spec.Layers)*c.Params.RQELaunchUS*1e-6
			} else {
				// RQE's FP16 tail matmul (≤Π tokens) is priced inside
				// the attention term at FP16 rate; its share is
				// Π/(2l) of the matmul, significant only for short
				// sequences (§7.2's reduced short-sequence gains).
				tailFrac := float64(m.Pi) / 2 / float64(maxInt(l, m.Pi))
				decode += attnF * tailFrac / flops
			}
		}
	}
	// Per-iteration kernel-launch overheads of the methods' extra
	// passes (once per distinct method in the batch, not per request),
	// charged in first-appearance order. The seen list is array-backed
	// so the hot homogeneous case never heap-allocates.
	var seenArr [8]string
	seen := seenArr[:0]
charge:
	for i := range contextLens {
		m := methodAt(i)
		for _, name := range seen {
			if name == m.Name {
				continue charge
			}
		}
		seen = append(seen, m.Name)
		switch {
		case m.Dequant:
			overhead += float64(c.Spec.Layers) * c.Params.DequantLaunchUS * 1e-6
		case m.Homomorphic:
			overhead += float64(c.Spec.Layers) * c.Params.ApproxLaunchUS * 1e-6
		}
	}
	return decode, kvMem, overhead
}

// PrefillChunkTimes prices one chunked-prefill pass covering prompt
// tokens [start, end): the marginal compute over the already-processed
// start-token prefix (the chunk's attention spans the prefix, so later
// chunks cost more per token) plus the chunk's share of the KV
// quantization pass. Each pass pays its own per-layer launch overhead,
// which is what makes chunking cost slightly more in aggregate than one
// monolithic prefill. Summed over a prompt's chunks the compute equals
// PrefillTimes plus (chunks−1) extra launch overheads.
func (c *CostModel) PrefillChunkTimes(m Method, start, end int) (compute, quant float64) {
	c1, q1 := c.PrefillTimes(m, end)
	c0, q0 := c.PrefillTimes(m, start)
	launch := float64(c.Spec.Layers) * c.Params.PerLayerOverheadUS * 1e-6
	compute = c1 - c0 + launch
	if compute < launch {
		compute = launch
	}
	quant = q1 - q0
	if quant < 0 {
		quant = 0
	}
	return compute, quant
}

// DecodeMemoryBytes returns the decode replica's memory demand for a set
// of context lengths: weights + KV + activation reservation.
func (c *CostModel) DecodeMemoryBytes(m Method, contextLens []int) float64 {
	total := float64(c.Spec.WeightBytesFP16()) + c.Params.ActivationGiB*float64(1<<30)
	for _, l := range contextLens {
		total += c.ResidentKVBytes(m, l)
	}
	return total
}

// DecodeReplicaCapacityBytes returns the GPU memory available to one
// decode replica (its TP×PP share of the instance).
func (c *CostModel) DecodeReplicaCapacityBytes() float64 {
	gpus := float64(c.DecodePar.GPUsPerReplica())
	return gpus * c.Decode.GPU.MemGiB * float64(1<<30)
}

// TransferTime returns the KV transfer time at the given share of link
// bandwidth (Gbps).
func (c *CostModel) TransferTime(m Method, l int, shareGbps float64) float64 {
	if shareGbps <= 0 {
		return 0
	}
	return c.WireBytes(m, l) * 8 / (shareGbps * 1e9 * c.Params.NetEff)
}

// LinkGbps returns the bottleneck link bandwidth between the prefill and
// decode instances.
func (c *CostModel) LinkGbps() float64 {
	if c.Prefill.NetGbps < c.Decode.NetGbps {
		return c.Prefill.NetGbps
	}
	return c.Decode.NetGbps
}

// SwapTime returns the time to stage KV through CPU memory (one hop).
func (c *CostModel) SwapTime(m Method, l int) float64 {
	return c.WireBytes(m, l) / (c.Params.CPUSwapGBs * 1e9)
}

// String summarizes the deployment.
func (c *CostModel) String() string {
	return fmt.Sprintf("%s: prefill %s (TP%d,PP%d) → decode %s (TP%d,PP%d)",
		c.Spec.Name, c.Prefill.GPUName, c.PrefillPar.TP, c.PrefillPar.PP,
		c.Decode.GPUName, c.DecodePar.TP, c.DecodePar.PP)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
