package cluster

import "fmt"

// Method is the serving-method profile the cost model prices: how KV is
// represented on the wire and in cache, and which per-iteration overhead
// (dequantization vs Eq. (4) approximation) the method pays.
type Method struct {
	// Name labels experiment rows.
	Name string
	// WireFraction is transmitted KV bytes relative to FP16 (codes plus
	// metadata; CacheGen's entropy coding pushes it below raw packing).
	WireFraction float64
	// ResidentFraction is cache-resident KV bytes relative to FP16
	// (HACK adds SE sums and the FP16 V tail on top of codes+metadata).
	ResidentFraction float64
	// QuantizesKV marks methods that pay a one-time quantization pass.
	QuantizesKV bool
	// Dequant marks methods that dequantize the whole KV cache every
	// decode iteration (CacheGen, KVQuant, FP4/FP6 conversion).
	Dequant bool
	// Homomorphic marks HACK: KV matmuls run at INT8 rate where the GPU
	// supports it, and the Eq. (4) approximation is paid instead of
	// dequantization.
	Homomorphic bool
	// SE / RQE flag HACK's two optimizations (§5.3); they only matter
	// when Homomorphic is set.
	SE, RQE bool
	// Pi is HACK's partition size Π.
	Pi int
	// AttnSpeedup multiplies attention-matmul throughput for
	// lower-precision FP formats when hardware supports them (FP8 on
	// H100-class; 1 elsewhere).
	AttnSpeedup float64
	// INT4Compute marks the §8 future-work variant: quantized matmuls
	// run at INT4 tensor rate (2x INT8 on Ampere-class GPUs) instead of
	// widening the 2-bit codes to INT8 first.
	INT4Compute bool
}

// fraction helpers: 2-bit codes are 2/16 of FP16; metadata adds
// 4 bytes (FP16 min+scale) per Π-element partition.

func twoBitFraction(pi int) float64 { return 2.0/16.0 + 4.0/(float64(pi)*2.0) }

// Baseline returns the unquantized FP16 disaggregation baseline.
func Baseline() Method {
	return Method{Name: "Baseline", WireFraction: 1, ResidentFraction: 1, AttnSpeedup: 1}
}

// CacheGen returns the CacheGen-style profile: 2-bit quantization with
// entropy-coded wire format (≈86% compression, §2.2) and per-iteration
// dequantization.
func CacheGen() Method {
	return Method{Name: "CacheGen",
		WireFraction:     0.9 * twoBitFraction(96),
		ResidentFraction: twoBitFraction(96),
		QuantizesKV:      true, Dequant: true, AttnSpeedup: 1}
}

// KVQuant returns the KVQuant-style profile: raw-packed 2-bit codes and
// per-iteration dequantization.
func KVQuant() Method {
	return Method{Name: "KVQuant",
		WireFraction:     twoBitFraction(112),
		ResidentFraction: twoBitFraction(112),
		QuantizesKV:      true, Dequant: true, AttnSpeedup: 1}
}

// HACK returns the homomorphic profile with partition size pi and the SE
// / RQE optimizations toggled (both true reproduces the shipping
// configuration). Resident KV adds the SE sum cache (one byte per
// partition at Π=64, INT16 at Π=128 per the §6 alignment rule) and the
// FP16 V tail.
func HACK(pi int, se, rqe bool) Method {
	name := "HACK"
	if !se {
		name += "/SE"
	}
	if !rqe {
		name += "/RQE"
	}
	resident := twoBitFraction(pi)
	if se {
		sumBytes := 1.0
		if pi > 64 {
			sumBytes = 2.0
		}
		resident += sumBytes / (float64(pi) * 2.0)
	}
	if rqe {
		// The FP16 tail holds on average Π/2 tokens of V; its share of
		// a long sequence is negligible but accounted at a nominal 0.3%
		// (§7.4 measures 0.24–0.51%).
		resident += 0.003
	}
	return Method{Name: name,
		WireFraction:     twoBitFraction(pi),
		ResidentFraction: resident,
		QuantizesKV:      true, Homomorphic: true, SE: se, RQE: rqe, Pi: pi,
		AttnSpeedup: 1}
}

// DefaultHACK returns the paper's shipping configuration (Π=64, SE+RQE).
func DefaultHACK() Method { return HACK(64, true, true) }

// HACKINT4 returns the §8 future-work variant: the same 2-bit cache and
// wire format, but quantized matmuls execute at INT4 tensor rate (a
// native CUDA kernel instead of Triton's INT8-minimum widening).
func HACKINT4() Method {
	m := DefaultHACK()
	m.Name = "HACK-INT4"
	m.INT4Compute = true
	return m
}

// FPFormat returns the FP4/FP6/FP8 profile of §3: KV stored at the given
// bit width, converted (dequantized) to FP16 before attention on GPUs
// without native support.
func FPFormat(bits int) (Method, error) {
	if bits != 4 && bits != 6 && bits != 8 {
		return Method{}, fmt.Errorf("cluster: FP%d is not a modeled format", bits)
	}
	f := float64(bits) / 16.0
	return Method{Name: fmt.Sprintf("FP%d", bits),
		WireFraction: f, ResidentFraction: f,
		QuantizesKV: true, Dequant: true, AttnSpeedup: 1}, nil
}

// EvaluatedMethods returns the four methods of the headline figures in
// presentation order.
func EvaluatedMethods() []Method {
	return []Method{Baseline(), CacheGen(), KVQuant(), DefaultHACK()}
}

// MethodByName resolves a method profile from its CLI spelling:
// Baseline, CacheGen, KVQuant, HACK, HACK/SE, HACK/RQE, HACK32, HACK128,
// HACK-INT4, FP4, FP6, FP8 (case-insensitive, via MethodRegistry).
func MethodByName(name string) (Method, error) { return MethodRegistry.Lookup(name) }
