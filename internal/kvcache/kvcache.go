// Package kvcache implements the per-head KV caches of the systems under
// study:
//
//   - Cache: HACK's quantized cache (§5.3, §6). K is stored token-major
//     and quantized along the head dimension, so each appended token
//     forms its own partitions and old metadata never changes. V is
//     quantized along the sequence dimension; with requantization
//     elimination (RQE) the trailing partial partition lives in an FP16
//     side buffer until it fills, while the HACK/RQE ablation instead
//     requantizes the partial block on every append, accumulating error.
//   - FP16Cache: the disaggregation baseline, storing K and V in FP16.
//   - TokenQuantCache: the CacheGen/KVQuant-style cache — per-token
//     quantized K and V that must be dequantized before every use.
//
// All caches expose byte-accurate Usage accounting; the memory numbers in
// Table 5 and §7.4 derive from these.
package kvcache

import (
	"fmt"
	"math/rand"

	"github.com/hackkv/hack/internal/fp16"
	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// Usage breaks a cache's memory footprint down by component.
type Usage struct {
	// CodeBytes holds bit-packed quantized codes.
	CodeBytes int
	// MetaBytes holds FP16 min/scale pairs.
	MetaBytes int
	// SumBytes holds the summation-elimination cache (§5.3).
	SumBytes int
	// FP16Bytes holds unquantized FP16 payload: the whole cache for the
	// baseline, or just the trailing V block under RQE.
	FP16Bytes int
}

// Total returns the cache footprint in bytes.
func (u Usage) Total() int { return u.CodeBytes + u.MetaBytes + u.SumBytes + u.FP16Bytes }

func (u Usage) add(v Usage) Usage {
	return Usage{
		CodeBytes: u.CodeBytes + v.CodeBytes,
		MetaBytes: u.MetaBytes + v.MetaBytes,
		SumBytes:  u.SumBytes + v.SumBytes,
		FP16Bytes: u.FP16Bytes + v.FP16Bytes,
	}
}

// Config parameterizes a HACK cache for one attention head.
type Config struct {
	// HeadDim is d_h, the width of each K/V row.
	HeadDim int
	// Pi is the quantization partition size Π.
	Pi int
	// KVBits is the KV code width (2 in the paper's configuration).
	KVBits int
	// Rounding and RNG configure the quantizer.
	Rounding quant.Rounding
	RNG      *rand.Rand
	// KRNG and VRNG optionally split the quantizer randomness into
	// separate per-operand streams (K rows vs V partitions), each
	// falling back to RNG when nil. Prefix-shareable heads use the
	// split: under counted rounding each stream's position is then a
	// pure function of the token position it encodes, independent of
	// how much of the *other* operand has been quantized — the property
	// that lets cached pages restore bit-identically mid-stream.
	KRNG, VRNG *rand.Rand
	// RQE enables requantization elimination for the trailing V block.
	// When false the partial block is requantized on every append,
	// reproducing the HACK/RQE ablation's extra cost and error.
	RQE bool
}

func (c Config) kRNG() *rand.Rand {
	if c.KRNG != nil {
		return c.KRNG
	}
	return c.RNG
}

func (c Config) vRNG() *rand.Rand {
	if c.VRNG != nil {
		return c.VRNG
	}
	return c.RNG
}

func (c Config) quantCfg() quant.Config {
	return quant.Config{Bits: c.KVBits, Partition: c.Pi, Rounding: c.Rounding, RNG: c.RNG}
}

func (c Config) kQuantCfg() quant.Config {
	return quant.Config{Bits: c.KVBits, Partition: c.Pi, Rounding: c.Rounding, RNG: c.kRNG()}
}

func (c Config) vQuantCfg() quant.Config {
	return quant.Config{Bits: c.KVBits, Partition: c.Pi, Rounding: c.Rounding, RNG: c.vRNG()}
}

func (c Config) validate() error {
	if c.HeadDim <= 0 {
		return fmt.Errorf("kvcache: head dim %d", c.HeadDim)
	}
	if c.Pi <= 0 {
		return fmt.Errorf("kvcache: partition %d", c.Pi)
	}
	if c.KVBits < 1 || c.KVBits > 8 {
		return fmt.Errorf("kvcache: kv bits %d", c.KVBits)
	}
	stochastic := c.Rounding == quant.StochasticRounding || c.Rounding == quant.CountedStochasticRounding
	if stochastic && (c.kRNG() == nil || c.vRNG() == nil) {
		return fmt.Errorf("kvcache: stochastic rounding requires an RNG")
	}
	return nil
}

// Cache is HACK's per-head quantized KV cache.
type Cache struct {
	cfg Config
	// K holds every token's quantized key, token-major, partitioned
	// along the head dimension.
	K *quant.Tensor
	// VFull holds the quantized value rows for all *complete* partitions
	// (a multiple of Π rows), partitioned along the sequence dimension.
	VFull *quant.Tensor
	// VTail is the RQE side buffer: up to Π−1 FP16-rounded value rows
	// awaiting quantization. nil-length when empty. Only used when
	// cfg.RQE is true.
	VTail *tensor.Matrix
	// VTailQ is the HACK/RQE ablation's partial block: quantized codes
	// that get rebuilt (dequantize → extend → requantize) on every
	// append. Only used when cfg.RQE is false.
	VTailQ *quant.Tensor
	// Requants counts requantization events of the partial V block —
	// always zero with RQE enabled.
	Requants int
	// RequantOps tallies the floating-point work spent requantizing,
	// charged to the ablation's decode time.
	RequantOps int64

	// Per-append scratch, reused across tokens so the decode-time cache
	// ingest allocates only when a buffer grows past its high-water
	// mark: the FP16-rounded row copy, the single-row K quantization,
	// the completed-partition V quantization, and the dequantized tail
	// for TailMatrix in the HACK/RQE ablation.
	rowBuf    []float32
	kRowQ     *quant.Tensor
	vBlockQ   *quant.Tensor
	tailDeq   *tensor.Matrix
	emptyTail *tensor.Matrix
	// rowHdr is a reusable single-row matrix header wrapping rowBuf /
	// the incoming K row, so per-token appends allocate no headers.
	rowHdr tensor.Matrix
}

// New creates an empty HACK cache.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		cfg:   cfg,
		K:     quant.Empty(quant.AlongCols, cfg.HeadDim, cfg.KVBits, cfg.Pi),
		VFull: quant.Empty(quant.AlongRows, cfg.HeadDim, cfg.KVBits, cfg.Pi),
	}
	c.VTail = tensor.New(0, cfg.HeadDim)
	return c, nil
}

// Restore builds a cache around contents received from a prefill
// instance: the quantized K (token-major), the quantized V (complete
// partitions only), and the FP16 RQE tail. The cache takes ownership of
// all three. Every shape came off the wire, so all of them are checked
// against the configuration; only RQE caches restore (the ablation's
// requantized tail has no wire form).
func Restore(cfg Config, k, v *quant.Tensor, tail *tensor.Matrix) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if !cfg.RQE {
		return nil, fmt.Errorf("kvcache: restore requires RQE")
	}
	if k == nil || v == nil || tail == nil {
		return nil, fmt.Errorf("kvcache: restore with nil contents")
	}
	if k.Axis != quant.AlongCols || k.Cols != cfg.HeadDim || k.Bits != cfg.KVBits || k.Pi != cfg.Pi {
		return nil, fmt.Errorf("kvcache: restored K layout %v %dx%d bits=%d pi=%d vs config d_h=%d bits=%d pi=%d",
			k.Axis, k.Rows, k.Cols, k.Bits, k.Pi, cfg.HeadDim, cfg.KVBits, cfg.Pi)
	}
	if v.Axis != quant.AlongRows || v.Cols != cfg.HeadDim || v.Bits != cfg.KVBits || v.Pi != cfg.Pi {
		return nil, fmt.Errorf("kvcache: restored V layout %v %dx%d bits=%d pi=%d vs config d_h=%d bits=%d pi=%d",
			v.Axis, v.Rows, v.Cols, v.Bits, v.Pi, cfg.HeadDim, cfg.KVBits, cfg.Pi)
	}
	if v.Rows%cfg.Pi != 0 {
		return nil, fmt.Errorf("kvcache: restored V rows %d not a multiple of partition %d", v.Rows, cfg.Pi)
	}
	if tail.Cols != cfg.HeadDim || tail.Rows < 0 || tail.Rows >= cfg.Pi {
		return nil, fmt.Errorf("kvcache: restored tail %dx%d vs d_h=%d pi=%d",
			tail.Rows, tail.Cols, cfg.HeadDim, cfg.Pi)
	}
	if k.Rows != v.Rows+tail.Rows {
		return nil, fmt.Errorf("kvcache: restored token counts K %d vs V %d+%d", k.Rows, v.Rows, tail.Rows)
	}
	return &Cache{cfg: cfg, K: k, VFull: v, VTail: tail}, nil
}

// MustNew is New for configurations known to be valid.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of cached tokens.
func (c *Cache) Len() int {
	n := c.K.Rows
	return n
}

// TailLen returns the number of V rows currently outside the quantized
// cache (in the FP16 buffer under RQE, or in the partial quantized block
// otherwise).
func (c *Cache) TailLen() int {
	if c.cfg.RQE {
		return c.VTail.Rows
	}
	if c.VTailQ == nil {
		return 0
	}
	return c.VTailQ.Rows
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// AppendPrefill ingests the prompt's K and V (L×d_h each) in bulk, as the
// prefill instance produces them. Complete V partitions are quantized
// immediately; the remainder enters the tail.
func (c *Cache) AppendPrefill(k, v *tensor.Matrix) error {
	if k.Rows != v.Rows || k.Cols != c.cfg.HeadDim || v.Cols != c.cfg.HeadDim {
		return fmt.Errorf("kvcache: prefill shapes K %dx%d V %dx%d, head dim %d",
			k.Rows, k.Cols, v.Rows, v.Cols, c.cfg.HeadDim)
	}
	kq, err := quant.Quantize(k, quant.AlongCols, c.cfg.kQuantCfg())
	if err != nil {
		return err
	}
	if err := c.K.AppendRows(kq); err != nil {
		return err
	}
	for i := 0; i < v.Rows; i++ {
		if err := c.appendVRow(v.Row(i)); err != nil {
			return err
		}
	}
	return nil
}

// AppendToken ingests one decode-step token's key and value rows (length
// d_h each).
func (c *Cache) AppendToken(kRow, vRow []float32) error {
	if len(kRow) != c.cfg.HeadDim || len(vRow) != c.cfg.HeadDim {
		return fmt.Errorf("kvcache: token rows %d/%d, head dim %d", len(kRow), len(vRow), c.cfg.HeadDim)
	}
	km := c.rowMatrix(kRow)
	kq, err := quant.QuantizeInto(c.kRowQ, km, quant.AlongCols, c.cfg.kQuantCfg())
	if err != nil {
		return err
	}
	c.kRowQ = kq
	if err := c.K.AppendRows(kq); err != nil {
		return err
	}
	return c.appendVRow(vRow)
}

// appendVRow routes a value row into the tail, flushing a completed
// partition into VFull.
func (c *Cache) appendVRow(vRow []float32) error {
	if c.cfg.RQE {
		// RQE: store the row in FP16 (as vLLM would) and quantize only
		// when the partition is complete — the values are quantized
		// exactly once, from their FP16 originals.
		rounded := c.roundedRow(vRow)
		c.VTail = tensor.AppendRows(c.VTail, c.rowMatrix(rounded))
		if c.VTail.Rows == c.cfg.Pi {
			blk, err := quant.QuantizeInto(c.vBlockQ, c.VTail, quant.AlongRows, c.cfg.vQuantCfg())
			if err != nil {
				return err
			}
			c.vBlockQ = blk
			if err := c.VFull.AppendRowBlocks(blk); err != nil {
				return err
			}
			// The tail buffer's storage is kept for the next partition.
			c.VTail.Reset(0, c.cfg.HeadDim)
		}
		return nil
	}

	// HACK/RQE ablation: dequantize the partial block, extend it with
	// the new row, requantize. Quantization error accumulates with each
	// round trip, and the work is charged to RequantOps.
	var block *tensor.Matrix
	if c.VTailQ != nil && c.VTailQ.Rows > 0 {
		block = c.VTailQ.Dequantize()
		c.RequantOps += c.VTailQ.DequantOps()
		c.Requants++
	} else {
		block = tensor.New(0, c.cfg.HeadDim)
	}
	rounded := c.roundedRow(vRow)
	block = tensor.AppendRows(block, c.rowMatrix(rounded))
	bq, err := quant.Quantize(block, quant.AlongRows, c.cfg.vQuantCfg())
	if err != nil {
		return err
	}
	c.RequantOps += 2 * int64(block.Rows) * int64(block.Cols)
	if block.Rows == c.cfg.Pi {
		if err := c.VFull.AppendRowBlocks(bq); err != nil {
			return err
		}
		c.VTailQ = nil
		return nil
	}
	c.VTailQ = bq
	return nil
}

// TailMatrix returns the trailing V rows as a dense matrix for the FP16
// multiplication path: the FP16 buffer under RQE, or the dequantized
// partial block for the ablation (which instead multiplies quantized —
// callers use TailQuantized then). The returned matrix is owned by the
// cache and valid until the next append or TailMatrix call.
func (c *Cache) TailMatrix() *tensor.Matrix {
	if c.cfg.RQE {
		return c.VTail
	}
	if c.VTailQ == nil || c.VTailQ.Rows == 0 {
		if c.emptyTail == nil {
			c.emptyTail = tensor.New(0, c.cfg.HeadDim)
		}
		return c.emptyTail
	}
	if c.tailDeq == nil {
		c.tailDeq = &tensor.Matrix{}
	}
	return c.VTailQ.DequantizeInto(c.tailDeq)
}

// rowMatrix wraps row as a 1×d_h matrix in the cache's reusable header.
// The header is only valid until the next rowMatrix call.
func (c *Cache) rowMatrix(row []float32) *tensor.Matrix {
	c.rowHdr = tensor.Matrix{Rows: 1, Cols: len(row), Data: row}
	return &c.rowHdr
}

// roundedRow copies vRow into the reusable row buffer and rounds it
// through FP16, modeling the FP16 store the cache performs on ingest.
func (c *Cache) roundedRow(vRow []float32) []float32 {
	if cap(c.rowBuf) < len(vRow) {
		c.rowBuf = make([]float32, len(vRow))
	}
	rounded := c.rowBuf[:len(vRow)]
	copy(rounded, vRow)
	fp16.RoundSlice(rounded)
	return rounded
}

// Usage reports the cache's memory footprint. The SE sums of K and V are
// included (they are what §7.4 prices at 2.2–2.7% of GPU memory), as is
// the RQE FP16 tail (0.24–0.51%).
func (c *Cache) Usage() Usage {
	u := tensorUsage(c.K, true).add(tensorUsage(c.VFull, true))
	if c.cfg.RQE {
		u.FP16Bytes += fp16.Bytes(c.VTail.Rows * c.VTail.Cols)
	} else if c.VTailQ != nil {
		u = u.add(tensorUsage(c.VTailQ, true))
	}
	return u
}

// WireSize returns the bytes the prefill instance transmits for this
// cache: packed codes plus FP16 min/scale metadata (⑦ in Fig. 5). Sums
// are recomputed on the decode side, and the FP16 tail rides along for
// RQE.
func (c *Cache) WireSize() int {
	n := c.K.Size(false).Total() + c.VFull.Size(false).Total()
	if c.cfg.RQE {
		n += fp16.Bytes(c.VTail.Rows * c.VTail.Cols)
	} else if c.VTailQ != nil {
		n += c.VTailQ.Size(false).Total()
	}
	return n
}

func tensorUsage(t *quant.Tensor, withSums bool) Usage {
	if t == nil {
		return Usage{}
	}
	s := t.Size(withSums)
	return Usage{CodeBytes: s.CodeBytes, MetaBytes: s.MetaBytes, SumBytes: s.SumBytes}
}

// FP16Cache is the baseline per-head cache holding K and V in half
// precision.
type FP16Cache struct {
	HeadDim int
	K, V    *tensor.Matrix // values rounded through FP16
	// kBuf/vBuf stage the FP16 rounding of each append and hBuf the
	// intermediate binary16 image, reused across tokens so decode-time
	// ingest stops allocating.
	kBuf, vBuf *tensor.Matrix
	hBuf       []fp16.Bits
}

// NewFP16 creates an empty baseline cache.
func NewFP16(headDim int) *FP16Cache {
	return &FP16Cache{HeadDim: headDim, K: tensor.New(0, headDim), V: tensor.New(0, headDim),
		kBuf: &tensor.Matrix{}, vBuf: &tensor.Matrix{}}
}

// Append adds k and v rows (bulk for prefill, single-row for decode).
func (c *FP16Cache) Append(k, v *tensor.Matrix) error {
	if k.Rows != v.Rows || k.Cols != c.HeadDim || v.Cols != c.HeadDim {
		return fmt.Errorf("kvcache: fp16 append shapes K %dx%d V %dx%d", k.Rows, k.Cols, v.Rows, v.Cols)
	}
	kk := c.roundThrough(c.kBuf, k)
	vv := c.roundThrough(c.vBuf, v)
	c.K = tensor.AppendRows(c.K, kk)
	c.V = tensor.AppendRows(c.V, vv)
	return nil
}

// roundThrough stages m through an actual binary16 image using the bulk
// converters — the store/load pair an FP16 cache performs — landing the
// widened values in dst.
func (c *FP16Cache) roundThrough(dst *tensor.Matrix, m *tensor.Matrix) *tensor.Matrix {
	c.hBuf = fp16.FromFloat32Slice(c.hBuf, m.Data)
	dst.Data = fp16.ToFloat32Slice(dst.Data, c.hBuf)
	dst.Rows, dst.Cols = m.Rows, m.Cols
	return dst
}

// Len returns the number of cached tokens.
func (c *FP16Cache) Len() int { return c.K.Rows }

// Usage reports the FP16 footprint.
func (c *FP16Cache) Usage() Usage {
	return Usage{FP16Bytes: fp16.Bytes(len(c.K.Data) + len(c.V.Data))}
}

// WireSize returns the FP16 transfer size of the cache.
func (c *FP16Cache) WireSize() int { return c.Usage().Total() }

// TokenQuantCache is the CacheGen/KVQuant-style cache: K and V both
// quantized per token (partitions along the head dimension), so appends
// never requantize — but every use requires a full dequantization pass.
type TokenQuantCache struct {
	cfg  Config
	K, V *quant.Tensor
	// DequantOpsTotal tallies the dequantization work performed via
	// DequantizeKV, the overhead HACK eliminates.
	DequantOpsTotal int64
	// kq/vq stage each append's quantization, reused across tokens.
	kq, vq *quant.Tensor
}

// NewTokenQuant creates an empty baseline-quantization cache.
func NewTokenQuant(cfg Config) (*TokenQuantCache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &TokenQuantCache{
		cfg: cfg,
		K:   quant.Empty(quant.AlongCols, cfg.HeadDim, cfg.KVBits, cfg.Pi),
		V:   quant.Empty(quant.AlongCols, cfg.HeadDim, cfg.KVBits, cfg.Pi),
	}, nil
}

// Append quantizes and stores k and v rows.
func (c *TokenQuantCache) Append(k, v *tensor.Matrix) error {
	if k.Rows != v.Rows || k.Cols != c.cfg.HeadDim || v.Cols != c.cfg.HeadDim {
		return fmt.Errorf("kvcache: quant append shapes K %dx%d V %dx%d", k.Rows, k.Cols, v.Rows, v.Cols)
	}
	kq, err := quant.QuantizeInto(c.kq, k, quant.AlongCols, c.cfg.quantCfg())
	if err != nil {
		return err
	}
	c.kq = kq
	vq, err := quant.QuantizeInto(c.vq, v, quant.AlongCols, c.cfg.quantCfg())
	if err != nil {
		return err
	}
	c.vq = vq
	if err := c.K.AppendRows(kq); err != nil {
		return err
	}
	return c.V.AppendRows(vq)
}

// DequantizeKV materializes the full K and V in FP16 precision — the
// per-iteration step whose cost motivates HACK.
func (c *TokenQuantCache) DequantizeKV() (k, v *tensor.Matrix) {
	return c.DequantizeKVInto(&tensor.Matrix{}, &tensor.Matrix{})
}

// DequantizeKVInto is DequantizeKV into caller-owned destinations, the
// allocation-free path the dequant backends take every decode step.
func (c *TokenQuantCache) DequantizeKVInto(dk, dv *tensor.Matrix) (k, v *tensor.Matrix) {
	k = c.K.DequantizeInto(dk)
	v = c.V.DequantizeInto(dv)
	c.DequantOpsTotal += c.K.DequantOps() + c.V.DequantOps()
	return k, v
}

// Len returns the number of cached tokens.
func (c *TokenQuantCache) Len() int { return c.K.Rows }

// Usage reports the quantized footprint (no SE sums: these baselines do
// not keep them).
func (c *TokenQuantCache) Usage() Usage {
	return tensorUsage(c.K, false).add(tensorUsage(c.V, false))
}

// WireSize returns the transfer size of the quantized cache.
func (c *TokenQuantCache) WireSize() int { return c.Usage().Total() }

// EvictBlock removes quantized partition block b — Π whole tokens — from
// the cache: the V block and the matching K rows. Block granularity is
// what keeps eviction compatible with HACK's layouts (the §9 future-work
// combination): K rows are per-token partitions, and V can only drop
// aligned Π-row groups without requantizing its neighbours. The FP16
// tail is never evicted (it holds the most recent tokens).
func (c *Cache) EvictBlock(b int) error {
	if c.VFull == nil || b < 0 || b >= c.VFull.NBlocks {
		return fmt.Errorf("kvcache: evict block %d of %d", b, c.vFullBlocks())
	}
	lo := b * c.cfg.Pi
	hi := lo + c.cfg.Pi
	if err := c.VFull.RemoveRowBlock(b); err != nil {
		return err
	}
	return c.K.RemoveRows(lo, hi)
}

// TruncateTail removes the n most recently appended tokens — the K rows
// and the matching FP16 V tail rows. Only tail rows can go: quantized
// VFull partitions are closed books (dropping single rows would force a
// requantization of the block), so n must not exceed TailLen(). This is
// speculative decoding's rollback primitive; a rejected draft suffix
// never crosses a flush boundary (the verify window is clamped inside
// the open partition), so its rows are always still in the tail.
func (c *Cache) TruncateTail(n int) error {
	if n == 0 {
		return nil
	}
	if !c.cfg.RQE {
		return fmt.Errorf("kvcache: truncate requires RQE (a quantized tail cannot drop single rows)")
	}
	tailRows := 0
	if c.VTail != nil {
		tailRows = c.VTail.Rows
	}
	if n < 0 || n > tailRows {
		return fmt.Errorf("kvcache: truncate %d tokens with %d tail rows", n, tailRows)
	}
	if err := c.K.RemoveRows(c.K.Rows-n, c.K.Rows); err != nil {
		return err
	}
	c.VTail.Rows -= n
	c.VTail.Data = c.VTail.Data[:c.VTail.Rows*c.VTail.Cols]
	return nil
}

// vFullBlocks returns the number of complete quantized V blocks.
func (c *Cache) vFullBlocks() int {
	if c.VFull == nil {
		return 0
	}
	return c.VFull.NBlocks
}
