package kvcache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestAllocateRejectsNonPositive is the regression test for the
// admission bug swept in this change: Allocate used to accept zero and
// negative token counts, creating sequences that held pages forever
// (pagesFor(0) == 0 pages, but a live table entry) and corrupting the
// conservation accounting.
func TestAllocateRejectsNonPositive(t *testing.T) {
	a, err := NewPagedAllocator(1<<20, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tokens := range []int{0, -1, -100} {
		if _, err := a.Allocate(tokens); err == nil {
			t.Fatalf("Allocate(%d) accepted", tokens)
		}
		if a.CanAdmit(tokens) {
			t.Fatalf("CanAdmit(%d) true", tokens)
		}
	}
	if err := a.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

// TestPagedAllocatorConcurrent drives the allocator from many
// goroutines (run under -race) and checks page conservation at the end:
// every page accounted for exactly once across the free list and the
// page tables.
func TestPagedAllocatorConcurrent(t *testing.T) {
	a, err := NewPagedAllocator(64*16*4, 16, 4) // 64 pages
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				seq, err := a.Allocate(1 + (g+i)%40)
				if err != nil {
					continue
				}
				for j := 0; j < i%5; j++ {
					_ = a.AppendToken(seq)
				}
				if i%3 != 0 {
					if err := a.Free(seq); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if err := a.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	for _, seq := range a.Sequences() {
		if err := a.Free(seq); err != nil {
			t.Fatal(err)
		}
	}
	if a.FreePages() != a.TotalPages() {
		t.Fatalf("after freeing all: %d of %d pages free", a.FreePages(), a.TotalPages())
	}
}

// TestPageAlignmentError pins the typed misalignment error: a page
// granularity that is not a positive multiple of Π must surface as a
// PageAlignmentError through errors.As.
func TestPageAlignmentError(t *testing.T) {
	for _, pageTokens := range []int{12, 0, -8} {
		_, err := NewPrefixIndex(1<<20, pageTokens, 8, 4)
		var pe *PageAlignmentError
		if !errors.As(err, &pe) {
			t.Fatalf("pageTokens=%d: got %v, want PageAlignmentError", pageTokens, err)
		}
		if pe.PageTokens != pageTokens || pe.Pi != 8 {
			t.Fatalf("error carries (%d, %d), want (%d, 8)", pe.PageTokens, pe.Pi, pageTokens)
		}
	}
	if _, err := NewPrefixIndex(1<<20, 16, 8, 4); err != nil {
		t.Fatalf("aligned construction failed: %v", err)
	}
}

// prompt returns a deterministic synthetic prompt.
func prompt(tag, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = 1000*tag + i
	}
	return p
}

// TestPrefixIndexLookupInsert checks the basic warm-path contract:
// inserted blocks are found by prefix lookups, the longest cached
// block-aligned prefix wins, payloads come back in block order, and
// lookups never cross namespaces.
func TestPrefixIndexLookupInsert(t *testing.T) {
	ix, err := NewPrefixIndex(1<<20, 4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := prompt(1, 12)
	built := 0
	added, err := ix.Insert(7, p, 12, func(lo, hi int) (any, error) {
		built++
		return fmt.Sprintf("block[%d,%d)", lo, hi), nil
	})
	if err != nil || added != 3 || built != 3 {
		t.Fatalf("insert: added=%d built=%d err=%v", added, built, err)
	}

	// Re-inserting the same prefix builds nothing.
	added, err = ix.Insert(7, p, 12, func(lo, hi int) (any, error) {
		return nil, fmt.Errorf("rebuilt cached block [%d,%d)", lo, hi)
	})
	if err != nil || added != 0 {
		t.Fatalf("idempotent insert: added=%d err=%v", added, err)
	}

	m := ix.Lookup(7, append(append([]int(nil), p[:8]...), 9999, 9998, 9997, 9996), 12)
	if m == nil || m.Tokens != 8 {
		t.Fatalf("lookup matched %v, want 8 tokens", m)
	}
	if len(m.Payloads) != 2 || m.Payloads[0] != "block[0,4)" || m.Payloads[1] != "block[4,8)" {
		t.Fatalf("payloads %v", m.Payloads)
	}
	m.Release()
	m.Release() // idempotent

	// maxTokens caps the match below the cached depth.
	m = ix.Lookup(7, p, 5)
	if m == nil || m.Tokens != 4 {
		t.Fatalf("capped lookup matched %v, want 4 tokens", m)
	}
	m.Release()

	// Another namespace sees nothing.
	if m := ix.Lookup(8, p, 12); m != nil {
		t.Fatalf("cross-namespace lookup matched %d tokens", m.Tokens)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Inserts != 3 || st.ReusedTokens != 12 {
		t.Fatalf("stats %+v", st)
	}
	if st.BytesSaved != st.ReusedTokens*8 {
		t.Fatalf("bytes saved %d, want %d", st.BytesSaved, st.ReusedTokens*8)
	}
}

// TestPrefixIndexLRUEviction fills the budget and checks that the
// least-recently-used unpinned leaf is evicted to admit new blocks,
// while interior nodes (which would orphan deeper blocks) survive.
func TestPrefixIndexLRUEviction(t *testing.T) {
	// Budget: exactly 3 pages of 4 tokens × 8 bytes.
	ix, err := NewPrefixIndex(3*4*8, 4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	build := func(lo, hi int) (any, error) { return [2]int{lo, hi}, nil }
	a, b, c := prompt(1, 4), prompt(2, 4), prompt(3, 4)
	for _, p := range [][]int{a, b, c} {
		if _, err := ix.Insert(0, p, 4, build); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a and c so b is the LRU leaf.
	ix.Lookup(0, a, 4).Release()
	ix.Lookup(0, c, 4).Release()
	d := prompt(4, 4)
	if _, err := ix.Insert(0, d, 4, build); err != nil {
		t.Fatal(err)
	}
	if m := ix.Lookup(0, b, 4); m != nil {
		t.Fatalf("LRU block survived eviction")
	}
	for _, p := range [][]int{a, c, d} {
		m := ix.Lookup(0, p, 4)
		if m == nil {
			t.Fatalf("recently-used block evicted")
		}
		m.Release()
	}
	st := ix.Stats()
	if st.Evictions != 1 || st.Nodes != 3 {
		t.Fatalf("stats %+v, want 1 eviction and 3 nodes", st)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixIndexPinnedBlocksEviction is the ref-counting scenario: a
// block pinned by an unreleased Lookup cannot be evicted, so an insert
// that needs its page is rejected rather than freeing pages a restore
// is still reading. Releasing the match makes the block evictable.
func TestPrefixIndexPinnedBlocksEviction(t *testing.T) {
	ix, err := NewPrefixIndex(1*4*8, 4, 4, 8) // room for exactly one block
	if err != nil {
		t.Fatal(err)
	}
	build := func(lo, hi int) (any, error) { return "page", nil }
	a, b := prompt(1, 4), prompt(2, 4)
	if _, err := ix.Insert(0, a, 4, build); err != nil {
		t.Fatal(err)
	}
	m := ix.Lookup(0, a, 4)
	if m == nil {
		t.Fatal("lookup missed")
	}
	added, err := ix.Insert(0, b, 4, build)
	if err != nil || added != 0 {
		t.Fatalf("insert against a pinned full cache: added=%d err=%v", added, err)
	}
	if st := ix.Stats(); st.InsertRejected != 1 || st.Evictions != 0 {
		t.Fatalf("stats %+v, want 1 rejection and 0 evictions", st)
	}
	m.Release()
	if added, err = ix.Insert(0, b, 4, build); err != nil || added != 1 {
		t.Fatalf("insert after release: added=%d err=%v", added, err)
	}
	if m := ix.Lookup(0, a, 4); m != nil {
		t.Fatal("evicted block still resident")
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixIndexBuildErrorAborts checks that a build failure mid-insert
// frees the failed block's reservation and keeps earlier blocks.
func TestPrefixIndexBuildErrorAborts(t *testing.T) {
	ix, err := NewPrefixIndex(1<<20, 4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	p := prompt(1, 8)
	added, err := ix.Insert(0, p, 8, func(lo, hi int) (any, error) {
		if lo == 4 {
			return nil, boom
		}
		return "ok", nil
	})
	if !errors.Is(err, boom) || added != 1 {
		t.Fatalf("added=%d err=%v", added, err)
	}
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	m := ix.Lookup(0, p, 8)
	if m == nil || m.Tokens != 4 {
		t.Fatalf("surviving prefix %v, want 4 tokens", m)
	}
	m.Release()
}

// TestPrefixIndexConcurrent hammers one index from many goroutines (run
// under -race): concurrent inserts, pinned lookups and stats over a
// budget small enough to force constant eviction pressure.
func TestPrefixIndexConcurrent(t *testing.T) {
	ix, err := NewPrefixIndex(8*4*8, 4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p := prompt(g%4, 8)
				if _, err := ix.Insert(int64(g%2), p, 8, func(lo, hi int) (any, error) {
					return [2]int{lo, hi}, nil
				}); err != nil {
					t.Error(err)
					return
				}
				if m := ix.Lookup(int64(g%2), p, 8); m != nil {
					for bi, pay := range m.Payloads {
						want := [2]int{bi * 4, (bi + 1) * 4}
						if pay != any(want) {
							t.Errorf("payload %d = %v, want %v", bi, pay, want)
							break
						}
					}
					m.Release()
				}
				_ = ix.Stats()
			}
		}(g)
	}
	wg.Wait()
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixIndexLookupDuringSlowInsert is the lock-scope regression
// test for the three-phase Insert: the build callback (where the remote
// tier's wire round-trips happen) runs with no index lock held, so a
// stalled insert must not block concurrent lookups of already-cached
// prefixes — nor a concurrent insert of an unrelated prompt. Before the
// split, Insert held the lock across the wire I/O and this test
// deadlocks on the timeout.
func TestPrefixIndexLookupDuringSlowInsert(t *testing.T) {
	ix, err := NewPrefixIndex(1<<20, 4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	warm := prompt(1, 8)
	if _, err := ix.Insert(0, warm, 8, func(lo, hi int) (any, error) {
		return [2]int{lo, hi}, nil
	}); err != nil {
		t.Fatal(err)
	}

	// A slow insert of a different prompt: the build callback blocks
	// until released, simulating a remote tier's need/answer stall.
	entered := make(chan struct{})
	release := make(chan struct{})
	slowDone := make(chan error, 1)
	go func() {
		_, err := ix.Insert(0, prompt(2, 8), 8, func(lo, hi int) (any, error) {
			if lo == 0 {
				close(entered)
				<-release
			}
			return [2]int{lo, hi}, nil
		})
		slowDone <- err
	}()
	<-entered

	// With the builder stalled mid-insert, lookups and an unrelated
	// insert must complete promptly.
	ok := make(chan struct{})
	go func() {
		m := ix.Lookup(0, warm, 8)
		if m == nil || m.Tokens != 8 {
			t.Errorf("warm lookup under a stalled insert matched %v, want 8 tokens", m)
		}
		if m != nil {
			m.Release()
		}
		if _, err := ix.Insert(0, prompt(3, 4), 4, func(lo, hi int) (any, error) {
			return [2]int{lo, hi}, nil
		}); err != nil {
			t.Errorf("unrelated insert under a stalled insert: %v", err)
		}
		// The stalled prompt's own blocks are reserved (building): a
		// lookup of it must miss rather than surface a half-built node.
		if m := ix.Lookup(0, prompt(2, 8), 8); m != nil {
			t.Errorf("lookup matched %d tokens of a block still building", m.Tokens)
			m.Release()
		}
		close(ok)
	}()
	select {
	case <-ok:
	case <-time.After(5 * time.Second):
		t.Fatal("lookup/insert blocked behind a stalled insert's wire I/O")
	}

	close(release)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
	// Once released, the slow insert's blocks are visible.
	m := ix.Lookup(0, prompt(2, 8), 8)
	if m == nil || m.Tokens != 8 {
		t.Fatalf("completed insert not visible: %v", m)
	}
	m.Release()
	if err := ix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
