package kvcache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newAlloc(t *testing.T, pages int) *PagedAllocator {
	t.Helper()
	// pageTokens=64, bytesPerToken=32 → 2048-byte pages.
	a, err := NewPagedAllocator(int64(pages)*2048, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestPagedAllocatorBasics(t *testing.T) {
	a := newAlloc(t, 10)
	if a.TotalPages() != 10 || a.FreePages() != 10 || a.PageTokens() != 64 {
		t.Fatalf("pool %d/%d", a.FreePages(), a.TotalPages())
	}
	// 100 tokens → 2 pages.
	seq, err := a.Allocate(100)
	if err != nil {
		t.Fatal(err)
	}
	if a.FreePages() != 8 {
		t.Errorf("free pages %d, want 8", a.FreePages())
	}
	pt, err := a.PageTable(seq)
	if err != nil || len(pt) != 2 {
		t.Fatalf("page table %v, %v", pt, err)
	}
	if n, _ := a.SeqTokens(seq); n != 100 {
		t.Errorf("tokens %d", n)
	}
	if err := a.Free(seq); err != nil {
		t.Fatal(err)
	}
	if a.FreePages() != 10 {
		t.Errorf("free pages after free %d", a.FreePages())
	}
	if err := a.Free(seq); err == nil {
		t.Error("double free accepted")
	}
}

func TestPagedAllocatorValidation(t *testing.T) {
	if _, err := NewPagedAllocator(0, 64, 32); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewPagedAllocator(1024, 0, 32); err == nil {
		t.Error("zero page tokens accepted")
	}
	if _, err := NewPagedAllocator(100, 64, 32); err == nil {
		t.Error("sub-page capacity accepted")
	}
}

func TestAppendTokenPageBoundary(t *testing.T) {
	a := newAlloc(t, 4)
	seq, err := a.Allocate(64) // exactly one page
	if err != nil {
		t.Fatal(err)
	}
	if a.FreePages() != 3 {
		t.Fatalf("free %d", a.FreePages())
	}
	// Token 65 crosses into a second page.
	if err := a.AppendToken(seq); err != nil {
		t.Fatal(err)
	}
	if a.FreePages() != 2 {
		t.Errorf("free %d after boundary crossing, want 2", a.FreePages())
	}
	// Further tokens inside the page take no new pages.
	for i := 0; i < 62; i++ {
		if err := a.AppendToken(seq); err != nil {
			t.Fatal(err)
		}
	}
	if a.FreePages() != 2 {
		t.Errorf("free %d mid-page, want 2", a.FreePages())
	}
	if err := a.AppendToken(99); err == nil {
		t.Error("append to unknown sequence accepted")
	}
}

func TestAllocationFailure(t *testing.T) {
	a := newAlloc(t, 2)
	if !a.CanAdmit(128) || a.CanAdmit(129) {
		t.Error("CanAdmit wrong at the boundary")
	}
	if _, err := a.Allocate(129); err != nil {
		// 129 tokens need 3 pages > 2.
	} else {
		t.Error("oversized allocation accepted")
	}
	seq, _ := a.Allocate(128)
	if err := a.AppendToken(seq); err == nil {
		t.Error("append with exhausted pool accepted")
	}
}

func TestFragmentationAccounting(t *testing.T) {
	a := newAlloc(t, 10)
	// 1 token in a 64-token page → fragmentation 63/64.
	if _, err := a.Allocate(1); err != nil {
		t.Fatal(err)
	}
	if got, want := a.InternalFragmentation(), 63.0/64.0; got != want {
		t.Errorf("fragmentation %v, want %v", got, want)
	}
	if a.Utilization() != 0.1 {
		t.Errorf("utilization %v, want 0.1", a.Utilization())
	}
	if a.UsedBytes() != 2048 {
		t.Errorf("used bytes %d", a.UsedBytes())
	}
	// Empty pool: zero fragmentation by definition.
	b := newAlloc(t, 4)
	if b.InternalFragmentation() != 0 {
		t.Error("empty pool fragmentation not 0")
	}
}

func TestSequencesListing(t *testing.T) {
	a := newAlloc(t, 10)
	s1, _ := a.Allocate(10)
	s2, _ := a.Allocate(10)
	ids := a.Sequences()
	if len(ids) != 2 || ids[0] != s1 || ids[1] != s2 {
		t.Errorf("sequences %v", ids)
	}
	a.Free(s1)
	if ids := a.Sequences(); len(ids) != 1 || ids[0] != s2 {
		t.Errorf("sequences after free %v", ids)
	}
}

// Property: under any interleaving of allocate/append/free, pages are
// conserved, never double-owned, and fragmentation stays below one page
// per live sequence.
func TestPagedAllocatorProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := NewPagedAllocator(64*2048, 64, 32) // 64 pages
		if err != nil {
			return false
		}
		var live []int
		for step := 0; step < 200; step++ {
			switch r := rng.Float64(); {
			case r < 0.4:
				if id, err := a.Allocate(1 + rng.Intn(300)); err == nil {
					live = append(live, id)
				}
			case r < 0.8 && len(live) > 0:
				if err := a.AppendToken(live[rng.Intn(len(live))]); err != nil {
					// Pool exhaustion is fine; corruption is not.
					if a.FreePages() != 0 {
						return false
					}
				}
			case len(live) > 0:
				i := rng.Intn(len(live))
				if err := a.Free(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			// Conservation: free + owned == total.
			owned := 0
			seen := map[int]bool{}
			for _, id := range a.Sequences() {
				pt, err := a.PageTable(id)
				if err != nil {
					return false
				}
				for _, p := range pt {
					if seen[p] {
						return false // double-owned page
					}
					seen[p] = true
				}
				owned += len(pt)
			}
			if owned+a.FreePages() != a.TotalPages() {
				return false
			}
			// Fragmentation bound: < 1 page of slack per sequence.
			if len(live) > 0 {
				allocTokens := owned * 64
				var used int
				for _, id := range a.Sequences() {
					n, _ := a.SeqTokens(id)
					used += n
				}
				if allocTokens-used >= len(live)*64 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPagedAllocatorChurn(b *testing.B) {
	a, err := NewPagedAllocator(1<<20, 64, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, err := a.Allocate(100)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 30; j++ {
			if err := a.AppendToken(id); err != nil {
				b.Fatal(err)
			}
		}
		if err := a.Free(id); err != nil {
			b.Fatal(err)
		}
	}
}
