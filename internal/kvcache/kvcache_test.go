package kvcache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

func testCfg(rng *rand.Rand, rqe bool) Config {
	return Config{HeadDim: 16, Pi: 8, KVBits: 2, Rounding: quant.NearestRounding, RNG: rng, RQE: rqe}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{HeadDim: 0, Pi: 8, KVBits: 2},
		{HeadDim: 16, Pi: 0, KVBits: 2},
		{HeadDim: 16, Pi: 8, KVBits: 0},
		{HeadDim: 16, Pi: 8, KVBits: 2, Rounding: quant.StochasticRounding}, // no RNG
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestAppendTokenInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := MustNew(testCfg(rng, true))
	for i := 0; i < 37; i++ {
		k := tensor.RandNormal(rng, 1, 16, 1)
		v := tensor.RandNormal(rng, 1, 16, 1)
		if err := c.AppendToken(k.Row(0), v.Row(0)); err != nil {
			t.Fatal(err)
		}
		if c.Len() != i+1 {
			t.Fatalf("Len = %d after %d appends", c.Len(), i+1)
		}
		if got := c.VFull.Rows + c.TailLen(); got != i+1 {
			t.Fatalf("V rows %d != %d tokens", got, i+1)
		}
		if c.VFull.Rows%8 != 0 {
			t.Fatalf("VFull ragged: %d rows", c.VFull.Rows)
		}
		if c.TailLen() >= 8 {
			t.Fatalf("tail reached Π: %d", c.TailLen())
		}
	}
	if c.Requants != 0 {
		t.Errorf("RQE cache performed %d requants", c.Requants)
	}
}

func TestAppendPrefillMatchesTokenByToken(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := tensor.RandNormal(rng, 21, 16, 1)
	v := tensor.RandNormal(rng, 21, 16, 1)

	bulk := MustNew(testCfg(nil, true))
	if err := bulk.AppendPrefill(k, v); err != nil {
		t.Fatal(err)
	}
	single := MustNew(testCfg(nil, true))
	for i := 0; i < 21; i++ {
		if err := single.AppendToken(k.Row(i), v.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Len() != single.Len() || bulk.VFull.Rows != single.VFull.Rows {
		t.Fatalf("bulk %d/%d vs single %d/%d", bulk.Len(), bulk.VFull.Rows, single.Len(), single.VFull.Rows)
	}
	for i := range bulk.K.Codes {
		if bulk.K.Codes[i] != single.K.Codes[i] {
			t.Fatalf("K code %d differs", i)
		}
	}
	for i := range bulk.VFull.Codes {
		if bulk.VFull.Codes[i] != single.VFull.Codes[i] {
			t.Fatalf("V code %d differs", i)
		}
	}
	if d := tensor.MaxAbsDiff(bulk.VTail, single.VTail); d != 0 {
		t.Fatalf("tails differ by %v", d)
	}
}

func TestShapeErrors(t *testing.T) {
	c := MustNew(testCfg(nil, true))
	if err := c.AppendToken(make([]float32, 8), make([]float32, 16)); err == nil {
		t.Error("short K row accepted")
	}
	if err := c.AppendPrefill(tensor.New(2, 16), tensor.New(3, 16)); err == nil {
		t.Error("mismatched prefill rows accepted")
	}
}

// RQE: values quantize exactly once. Ablation: the partial block round
// trips through the quantizer on every append and error accumulates.
func TestRQEAvoidsRequantization(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := tensor.RandNormal(rng, 7, 16, 1) // never fills a Π=8 block

	rqe := MustNew(testCfg(nil, true))
	abl := MustNew(testCfg(nil, false))
	for i := 0; i < 7; i++ {
		k := make([]float32, 16)
		if err := rqe.AppendToken(k, v.Row(i)); err != nil {
			t.Fatal(err)
		}
		if err := abl.AppendToken(k, v.Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if rqe.Requants != 0 || rqe.RequantOps != 0 {
		t.Errorf("RQE cache: %d requants, %d ops", rqe.Requants, rqe.RequantOps)
	}
	if abl.Requants != 6 { // every append after the first requantizes
		t.Errorf("ablation requants = %d, want 6", abl.Requants)
	}
	if abl.RequantOps == 0 {
		t.Error("ablation charged no requant ops")
	}
	// The RQE tail is exact (modulo FP16); the ablation tail carries
	// accumulated quantization error.
	rqeErr := tensor.MaxAbsDiff(rqe.TailMatrix(), v)
	ablErr := tensor.MaxAbsDiff(abl.TailMatrix(), v)
	if rqeErr > 1e-2 {
		t.Errorf("RQE tail error %v, want ~FP16 rounding only", rqeErr)
	}
	if ablErr <= rqeErr {
		t.Errorf("ablation error %v not worse than RQE %v", ablErr, rqeErr)
	}
}

// Property: for any append sequence, token accounting stays consistent
// and VFull stays block-aligned.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(seed int64, nTok8 uint8, rqe bool) bool {
		n := int(nTok8%50) + 1
		rng := rand.New(rand.NewSource(seed))
		c := MustNew(Config{HeadDim: 8, Pi: 4, KVBits: 2,
			Rounding: quant.StochasticRounding, RNG: rng, RQE: rqe})
		for i := 0; i < n; i++ {
			k := tensor.RandNormal(rng, 1, 8, 1)
			v := tensor.RandNormal(rng, 1, 8, 1)
			if err := c.AppendToken(k.Row(0), v.Row(0)); err != nil {
				return false
			}
		}
		if c.Len() != n {
			return false
		}
		if c.VFull.Rows+c.TailLen() != n {
			return false
		}
		if c.VFull.Rows%4 != 0 {
			return false
		}
		want := (n / 4) * 4
		return c.VFull.Rows == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUsageAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := MustNew(Config{HeadDim: 128, Pi: 64, KVBits: 2,
		Rounding: quant.StochasticRounding, RNG: rng, RQE: true})
	k := tensor.RandNormal(rng, 640, 128, 1)
	v := tensor.RandNormal(rng, 640, 128, 1)
	if err := c.AppendPrefill(k, v); err != nil {
		t.Fatal(err)
	}
	u := c.Usage()
	// Codes: K 640×128 at 2 bits + V 640×128 at 2 bits (640 divides 64).
	wantCodes := 2 * 640 * 128 * 2 / 8
	if u.CodeBytes != wantCodes {
		t.Errorf("CodeBytes = %d, want %d", u.CodeBytes, wantCodes)
	}
	if u.FP16Bytes != 0 {
		t.Errorf("FP16Bytes = %d, want 0 (tail empty)", u.FP16Bytes)
	}
	if u.SumBytes == 0 || u.MetaBytes == 0 {
		t.Error("missing metadata/sum accounting")
	}
	// SE sums should be a small fraction of code bytes (§6 quotes ~5%
	// of quantized KV for INT16 sums at Π=128; Π=64 with 1-byte sums
	// lands nearby).
	frac := float64(u.SumBytes) / float64(u.CodeBytes)
	if frac > 0.10 {
		t.Errorf("sum overhead %.3f of codes, want small", frac)
	}

	// One extra token puts a row in the FP16 tail.
	if err := c.AppendToken(k.Row(0), v.Row(0)); err != nil {
		t.Fatal(err)
	}
	if got := c.Usage().FP16Bytes; got != 2*128 {
		t.Errorf("tail FP16Bytes = %d, want 256", got)
	}

	// Wire size excludes sums but includes the tail.
	ws := c.WireSize()
	if ws >= c.Usage().Total() {
		t.Errorf("wire %d should be below resident %d (sums excluded)", ws, c.Usage().Total())
	}
	if ws <= c.K.Size(false).Total() {
		t.Error("wire size missing V payload")
	}
}

func TestFP16Cache(t *testing.T) {
	c := NewFP16(8)
	rng := rand.New(rand.NewSource(5))
	k := tensor.RandNormal(rng, 10, 8, 1)
	v := tensor.RandNormal(rng, 10, 8, 1)
	if err := c.Append(k, v); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 10 {
		t.Errorf("Len = %d", c.Len())
	}
	if got, want := c.Usage().Total(), 2*2*10*8; got != want {
		t.Errorf("Usage = %d, want %d", got, want)
	}
	if c.WireSize() != c.Usage().Total() {
		t.Error("FP16 wire size should equal resident size")
	}
	// Stored values are FP16-rounded, not bit-identical floats.
	if err := c.Append(tensor.New(1, 4), tensor.New(1, 4)); err == nil {
		t.Error("wrong-width append accepted")
	}
}

func TestTokenQuantCache(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := Config{HeadDim: 16, Pi: 16, KVBits: 2, Rounding: quant.StochasticRounding, RNG: rng}
	c, err := NewTokenQuant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := tensor.RandNormal(rng, 12, 16, 1)
	v := tensor.RandNormal(rng, 12, 16, 1)
	if err := c.Append(k, v); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 12 {
		t.Errorf("Len = %d", c.Len())
	}
	dk, dv := c.DequantizeKV()
	if dk.Rows != 12 || dv.Rows != 12 {
		t.Fatalf("dequant shapes %d/%d", dk.Rows, dv.Rows)
	}
	if c.DequantOpsTotal != 2*(2*12*16) {
		t.Errorf("DequantOpsTotal = %d", c.DequantOpsTotal)
	}
	// Reconstruction is within a scale step.
	if d := tensor.MaxAbsDiff(dk, k); d > 3 {
		t.Errorf("K dequant error %v implausibly large", d)
	}
	// 2-bit cache is much smaller than FP16 would be.
	if got := c.Usage().Total(); got >= 2*2*12*16 {
		t.Errorf("quantized cache %d not smaller than FP16 %d", got, 2*2*12*16)
	}
	if _, err := NewTokenQuant(Config{HeadDim: 0}); err == nil {
		t.Error("invalid config accepted")
	}
}

// The HACK cache's extra memory over the baselines' quantized cache (SE
// sums + FP16 tail) should be the small overhead Table 5 reports
// (HACK ~0.6–2.9% above CacheGen/KVQuant).
func TestHACKOverheadSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hc := MustNew(Config{HeadDim: 128, Pi: 64, KVBits: 2,
		Rounding: quant.StochasticRounding, RNG: rng, RQE: true})
	tc, _ := NewTokenQuant(Config{HeadDim: 128, Pi: 64, KVBits: 2,
		Rounding: quant.StochasticRounding, RNG: rng})
	k := tensor.RandNormal(rng, 2048, 128, 1)
	v := tensor.RandNormal(rng, 2048, 128, 1)
	if err := hc.AppendPrefill(k, v); err != nil {
		t.Fatal(err)
	}
	if err := tc.Append(k, v); err != nil {
		t.Fatal(err)
	}
	ratio := float64(hc.Usage().Total())/float64(tc.Usage().Total()) - 1
	if ratio < 0 || ratio > 0.12 {
		t.Errorf("HACK memory overhead %.3f, want small positive", ratio)
	}
}

func BenchmarkAppendToken(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	c := MustNew(Config{HeadDim: 128, Pi: 64, KVBits: 2,
		Rounding: quant.StochasticRounding, RNG: rng, RQE: true})
	k := make([]float32, 128)
	v := make([]float32, 128)
	for i := range k {
		k[i] = float32(rng.NormFloat64())
		v[i] = float32(rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.AppendToken(k, v); err != nil {
			b.Fatal(err)
		}
	}
}
