package kvcache

import (
	"fmt"
	"sync"
)

// PageAlignmentError reports a prefix-cache page granularity that is not
// a positive multiple of the quantization partition Π. Misaligned pages
// would let quantized partitions straddle page (and therefore trie-node)
// boundaries, breaking the invariant that a cached page can be restored
// without re-quantizing its neighbours.
type PageAlignmentError struct {
	PageTokens, Pi int
}

func (e *PageAlignmentError) Error() string {
	return fmt.Sprintf("kvcache: page granularity %d tokens is not a positive multiple of partition Π=%d",
		e.PageTokens, e.Pi)
}

// PrefixIndex is the shared-prefix KV cache index: a trie over
// pageTokens-aligned token blocks whose nodes own ref-counted quantized
// KV pages backed by a PagedAllocator. Each trie edge is one whole block
// of prompt tokens (the block content is the edge key, so lookups are
// exact and collision-free), which keeps every node boundary Π-aligned
// by construction. Payloads are opaque to the index — the serving layer
// stores netsim-framed page sets — and namespaces (one per quantizer
// seed) keep streams from different seeds apart while sharing one
// allocator, budget and LRU clock.
//
// All methods are safe for concurrent use.
type PrefixIndex struct {
	mu            sync.Mutex
	pageTokens    int
	bytesPerToken int
	alloc         *PagedAllocator
	roots         map[int64]*prefixNode
	clock         int64

	hits, misses, inserts, rejected, evictions, reusedTokens int64
}

// prefixNode is one cached block. Roots (one per namespace) carry no
// payload and seq -1; every other node owns exactly one allocator
// sequence of pageTokens tokens.
type prefixNode struct {
	parent   *prefixNode
	key      string
	children map[string]*prefixNode
	payload  any
	seq      int
	refs     int
	lastUse  int64
	// building marks a reservation: the node holds its allocator sequence
	// but its payload is still being rendered outside the lock. Lookups
	// skip building nodes, concurrent inserts stop at them, and eviction
	// never considers them.
	building bool
}

// NewPrefixIndex builds an index whose resident pages are bounded by
// budgetBytes, with pages of pageTokens tokens at bytesPerToken each.
// pageTokens must be a positive multiple of pi (PageAlignmentError
// otherwise).
func NewPrefixIndex(budgetBytes int64, pageTokens, pi, bytesPerToken int) (*PrefixIndex, error) {
	if pi <= 0 {
		return nil, fmt.Errorf("kvcache: prefix index partition %d must be positive", pi)
	}
	if pageTokens <= 0 || pageTokens%pi != 0 {
		return nil, &PageAlignmentError{PageTokens: pageTokens, Pi: pi}
	}
	alloc, err := NewPagedAllocator(budgetBytes, pageTokens, bytesPerToken)
	if err != nil {
		return nil, err
	}
	return &PrefixIndex{
		pageTokens:    pageTokens,
		bytesPerToken: bytesPerToken,
		alloc:         alloc,
		roots:         map[int64]*prefixNode{},
	}, nil
}

// PageTokens returns the index's block granularity.
func (ix *PrefixIndex) PageTokens() int { return ix.pageTokens }

// blockKey encodes one block of tokens as the trie edge key. Eight bytes
// per token keeps the encoding injective over all int values, so two
// distinct blocks can never alias one edge.
func blockKey(tokens []int) string {
	b := make([]byte, 8*len(tokens))
	for i, t := range tokens {
		u := uint64(t)
		for j := 0; j < 8; j++ {
			b[i*8+j] = byte(u >> (56 - 8*j))
		}
	}
	return string(b)
}

// PrefixMatch is a pinned lookup result. Every matched node's refcount
// is held until Release, so eviction cannot free the payloads while the
// caller restores them. Release is idempotent and nil-safe.
type PrefixMatch struct {
	ix    *PrefixIndex
	nodes []*prefixNode
	// Tokens is the matched token count, a multiple of PageTokens.
	Tokens int
	// Payloads holds each matched block's payload, shallowest block
	// first (block b covers prompt tokens [b·PageTokens, (b+1)·PageTokens)).
	Payloads []any

	released bool // guarded by ix.mu
}

// Release drops the match's refcount pins.
func (m *PrefixMatch) Release() {
	if m == nil {
		return
	}
	m.ix.mu.Lock()
	defer m.ix.mu.Unlock()
	if m.released {
		return
	}
	m.released = true
	for _, nd := range m.nodes {
		nd.refs--
	}
}

// Lookup returns the longest cached block-aligned prefix of prompt in
// namespace ns, capped at maxTokens, or nil on a complete miss. The
// match is pinned; the caller must Release it.
func (ix *PrefixIndex) Lookup(ns int64, prompt []int, maxTokens int) *PrefixMatch {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := len(prompt)
	if maxTokens < n {
		n = maxTokens
	}
	nBlocks := 0
	if n > 0 {
		nBlocks = n / ix.pageTokens
	}
	cur := ix.roots[ns]
	var nodes []*prefixNode
	for b := 0; cur != nil && b < nBlocks; b++ {
		child := cur.children[blockKey(prompt[b*ix.pageTokens:(b+1)*ix.pageTokens])]
		if child == nil || child.building {
			break
		}
		nodes = append(nodes, child)
		cur = child
	}
	if len(nodes) == 0 {
		ix.misses++
		return nil
	}
	ix.hits++
	ix.reusedTokens += int64(len(nodes) * ix.pageTokens)
	m := &PrefixMatch{ix: ix, nodes: nodes, Tokens: len(nodes) * ix.pageTokens}
	for _, nd := range nodes {
		nd.refs++
		ix.clock++
		nd.lastUse = ix.clock
		m.Payloads = append(m.Payloads, nd.payload)
	}
	return m
}

// Insert caches the block-aligned prefix of prompt[:upTo] in namespace
// ns, calling build(lo, hi) once per block not already present to render
// its payload (lo/hi are token indexes into prompt). Missing blocks that
// don't fit the budget even after evicting every unpinned leaf are
// skipped (counted as rejected insertions, not errors); a build error
// aborts the insert and frees the reservations from the failed block
// down. Returns the number of blocks added.
//
// The build callbacks run *outside* the index lock: Insert first
// reserves every missing block under the lock (allocator sequence held,
// node marked building), then renders payloads unlocked, then relocks to
// attach them. Slow builds — the remote cache tier's need/answer wire
// round-trips — therefore never stall concurrent Lookups or Inserts.
// Lookups skip building nodes, and a concurrent Insert of the same
// prefix stops at one rather than double-building it.
func (ix *PrefixIndex) Insert(ns int64, prompt []int, upTo int, build func(lo, hi int) (any, error)) (int, error) {
	if upTo > len(prompt) {
		upTo = len(prompt)
	}
	nBlocks := 0
	if upTo > 0 {
		nBlocks = upTo / ix.pageTokens
	}
	if nBlocks == 0 {
		return 0, nil
	}

	// Phase 1 — reserve under the lock. Pin the descent path: evictions
	// triggered while making room for a deeper block must not free the
	// ancestors we are hanging it off (pins also protect our own pending
	// reservations, which concurrent eviction must never touch).
	type reservation struct {
		nd     *prefixNode
		lo, hi int
	}
	ix.mu.Lock()
	root := ix.roots[ns]
	if root == nil {
		root = &prefixNode{children: map[string]*prefixNode{}, seq: -1}
		ix.roots[ns] = root
	}
	var pinned []*prefixNode
	var resv []reservation
	cur := root
	for b := 0; b < nBlocks; b++ {
		lo, hi := b*ix.pageTokens, (b+1)*ix.pageTokens
		key := blockKey(prompt[lo:hi])
		child := cur.children[key]
		if child != nil && child.building {
			// A concurrent insert is rendering this block. Stop here: we
			// must not double-build it or hang children off an unbuilt node.
			break
		}
		if child == nil {
			room := true
			for !ix.alloc.CanAdmit(ix.pageTokens) {
				if !ix.evictOne() {
					room = false
					break
				}
			}
			if !room {
				ix.rejected++
				break
			}
			seq, err := ix.alloc.Allocate(ix.pageTokens)
			if err != nil {
				ix.rejected++
				break
			}
			child = &prefixNode{
				parent:   cur,
				key:      key,
				children: map[string]*prefixNode{},
				seq:      seq,
				building: true,
			}
			cur.children[key] = child
			resv = append(resv, reservation{child, lo, hi})
		}
		child.refs++
		ix.clock++
		child.lastUse = ix.clock
		pinned = append(pinned, child)
		cur = child
	}
	ix.mu.Unlock()

	// Phase 2 — render payloads with no lock held. For the remote cache
	// tier this is where the need/answer wire round-trips happen; lookups
	// and other inserts proceed concurrently.
	built := make([]any, 0, len(resv))
	var buildErr error
	for _, rv := range resv {
		payload, err := build(rv.lo, rv.hi)
		if err != nil {
			buildErr = err
			break
		}
		built = append(built, payload)
	}

	// Phase 3 — relock to attach. Reservations past a build failure are
	// unlinked and their sequences freed; the shallowest failure detaches
	// the whole reserved suffix (reservations form one chain), keeping
	// cached prefixes contiguous from the root. Nothing else can hold a
	// reference to a pending node — lookups and inserts never pinned it —
	// so unlinking here cannot strand a reader.
	ix.mu.Lock()
	added := 0
	for i, rv := range resv {
		if i < len(built) {
			rv.nd.payload = built[i]
			rv.nd.building = false
			ix.inserts++
			added++
			continue
		}
		_ = ix.alloc.Free(rv.nd.seq)
		delete(rv.nd.parent.children, rv.nd.key)
		rv.nd.parent = nil
	}
	for _, nd := range pinned {
		nd.refs--
	}
	ix.mu.Unlock()
	return added, buildErr
}

// evictOne frees the least-recently-used evictable node: a payload node
// with no children and no outstanding references. Interior nodes are
// never evicted (cached prefixes stay contiguous from the root) and
// pinned nodes never qualify, so eviction can never free pages a live
// restore is reading. Reports whether a node was evicted. Caller holds
// ix.mu.
func (ix *PrefixIndex) evictOne() bool {
	var victim *prefixNode
	var visit func(nd *prefixNode)
	visit = func(nd *prefixNode) {
		for _, c := range nd.children {
			visit(c)
		}
		if nd.seq >= 0 && nd.refs == 0 && len(nd.children) == 0 && !nd.building {
			if victim == nil || nd.lastUse < victim.lastUse {
				victim = nd
			}
		}
	}
	for _, root := range ix.roots {
		visit(root)
	}
	if victim == nil {
		return false
	}
	_ = ix.alloc.Free(victim.seq)
	delete(victim.parent.children, victim.key)
	victim.parent = nil
	ix.evictions++
	return true
}

// PrefixStats is the index's counter snapshot.
type PrefixStats struct {
	// Hits counts lookups matching at least one block; Misses the rest.
	Hits, Misses int64
	// Inserts counts blocks added; InsertRejected counts blocks skipped
	// because no room could be made; Evictions counts blocks freed.
	Inserts, InsertRejected, Evictions int64
	// ReusedTokens is the total matched token count across hits —
	// prefill work skipped. BytesSaved is its byte equivalent.
	ReusedTokens, BytesSaved int64
	// Nodes is the resident block count; BytesUsed / BytesBudget the
	// allocator occupancy.
	Nodes                  int
	BytesUsed, BytesBudget int64
}

// Stats returns the index's counters.
func (ix *PrefixIndex) Stats() PrefixStats {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	nodes := 0
	var visit func(nd *prefixNode)
	visit = func(nd *prefixNode) {
		if nd.seq >= 0 {
			nodes++
		}
		for _, c := range nd.children {
			visit(c)
		}
	}
	for _, root := range ix.roots {
		visit(root)
	}
	return PrefixStats{
		Hits: ix.hits, Misses: ix.misses,
		Inserts: ix.inserts, InsertRejected: ix.rejected, Evictions: ix.evictions,
		ReusedTokens: ix.reusedTokens,
		BytesSaved:   ix.reusedTokens * int64(ix.bytesPerToken),
		Nodes:        nodes,
		BytesUsed:    ix.alloc.UsedBytes(),
		BytesBudget:  ix.alloc.CapacityBytes(),
	}
}

// CheckInvariants verifies the structural properties the fuzz harness
// pins: allocator page conservation, one live allocator sequence of
// exactly pageTokens tokens per resident node (and none besides),
// non-negative refcounts, and parent/child link consistency.
func (ix *PrefixIndex) CheckInvariants() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := ix.alloc.CheckConservation(); err != nil {
		return err
	}
	seqs := map[int]bool{}
	var walk func(nd *prefixNode) error
	walk = func(nd *prefixNode) error {
		if nd.refs < 0 {
			return fmt.Errorf("kvcache: prefix node refcount %d", nd.refs)
		}
		if nd.seq >= 0 {
			if seqs[nd.seq] {
				return fmt.Errorf("kvcache: sequence %d owned by two nodes", nd.seq)
			}
			seqs[nd.seq] = true
			n, err := ix.alloc.SeqTokens(nd.seq)
			if err != nil {
				return fmt.Errorf("kvcache: prefix node sequence %d: %w", nd.seq, err)
			}
			if n != ix.pageTokens {
				return fmt.Errorf("kvcache: prefix node sequence %d holds %d tokens, want %d", nd.seq, n, ix.pageTokens)
			}
		}
		for key, c := range nd.children {
			if c.parent != nd || c.key != key {
				return fmt.Errorf("kvcache: prefix trie parent/child link broken")
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, root := range ix.roots {
		if root.seq != -1 || root.payload != nil {
			return fmt.Errorf("kvcache: prefix root carries a payload")
		}
		if err := walk(root); err != nil {
			return err
		}
	}
	if live := len(ix.alloc.Sequences()); live != len(seqs) {
		return fmt.Errorf("kvcache: allocator holds %d sequences, trie references %d", live, len(seqs))
	}
	return nil
}
