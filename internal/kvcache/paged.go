package kvcache

import (
	"fmt"
	"sort"
)

// PagedAllocator is the vLLM-style block allocator underneath the KV
// cache (§6: "we modified the KV cache structure of vLLM"). GPU memory
// is carved into fixed-size pages of Π tokens; each sequence owns a page
// table mapping its logical token blocks to physical pages. The
// allocator tracks free pages, per-sequence tables and fragmentation —
// the machinery that makes the Table 5 peak-memory numbers real at the
// engine level rather than assumed.
type PagedAllocator struct {
	// pageTokens is the page granularity in tokens (Π-aligned so HACK's
	// quantization partitions never straddle pages).
	pageTokens int
	// pageBytes is the byte size of one page for the configured method.
	pageBytes  int
	totalPages int
	freeList   []int
	tables     map[int][]int // sequence id -> physical page ids
	tokens     map[int]int   // sequence id -> token count
	nextSeq    int
}

// NewPagedAllocator carves capacityBytes into pages of pageTokens tokens
// at bytesPerToken each.
func NewPagedAllocator(capacityBytes int64, pageTokens int, bytesPerToken int) (*PagedAllocator, error) {
	if capacityBytes <= 0 || pageTokens <= 0 || bytesPerToken <= 0 {
		return nil, fmt.Errorf("kvcache: paged allocator params %d/%d/%d",
			capacityBytes, pageTokens, bytesPerToken)
	}
	pageBytes := pageTokens * bytesPerToken
	total := int(capacityBytes / int64(pageBytes))
	if total == 0 {
		return nil, fmt.Errorf("kvcache: capacity %d below one page (%d)", capacityBytes, pageBytes)
	}
	a := &PagedAllocator{
		pageTokens: pageTokens,
		pageBytes:  pageBytes,
		totalPages: total,
		freeList:   make([]int, 0, total),
		tables:     map[int][]int{},
		tokens:     map[int]int{},
	}
	for i := total - 1; i >= 0; i-- {
		a.freeList = append(a.freeList, i)
	}
	return a, nil
}

// PageTokens returns the page granularity.
func (a *PagedAllocator) PageTokens() int { return a.pageTokens }

// FreePages returns the number of unallocated pages.
func (a *PagedAllocator) FreePages() int { return len(a.freeList) }

// TotalPages returns the pool size.
func (a *PagedAllocator) TotalPages() int { return a.totalPages }

// pagesFor returns the number of pages n tokens occupy.
func (a *PagedAllocator) pagesFor(tokens int) int {
	return (tokens + a.pageTokens - 1) / a.pageTokens
}

// CanAdmit reports whether a sequence of the given final length fits in
// the currently free pages — the admission check the simulator's decode
// replicas perform.
func (a *PagedAllocator) CanAdmit(tokens int) bool {
	return a.pagesFor(tokens) <= len(a.freeList)
}

// Allocate creates a sequence with an initial token count (the prefilled
// prompt) and returns its id.
func (a *PagedAllocator) Allocate(tokens int) (int, error) {
	need := a.pagesFor(tokens)
	if need > len(a.freeList) {
		return 0, fmt.Errorf("kvcache: need %d pages, %d free", need, len(a.freeList))
	}
	id := a.nextSeq
	a.nextSeq++
	pages := make([]int, need)
	for i := range pages {
		pages[i] = a.freeList[len(a.freeList)-1]
		a.freeList = a.freeList[:len(a.freeList)-1]
	}
	a.tables[id] = pages
	a.tokens[id] = tokens
	return id, nil
}

// AppendToken grows a sequence by one token, taking a new page when the
// last one fills. This is the decode-step path.
func (a *PagedAllocator) AppendToken(seq int) error {
	pages, ok := a.tables[seq]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seq)
	}
	n := a.tokens[seq]
	if a.pagesFor(n+1) > len(pages) {
		if len(a.freeList) == 0 {
			return fmt.Errorf("kvcache: out of pages growing sequence %d", seq)
		}
		p := a.freeList[len(a.freeList)-1]
		a.freeList = a.freeList[:len(a.freeList)-1]
		a.tables[seq] = append(pages, p)
	}
	a.tokens[seq] = n + 1
	return nil
}

// Free releases a sequence's pages.
func (a *PagedAllocator) Free(seq int) error {
	pages, ok := a.tables[seq]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seq)
	}
	a.freeList = append(a.freeList, pages...)
	delete(a.tables, seq)
	delete(a.tokens, seq)
	return nil
}

// PageTable returns a copy of the sequence's physical page ids in
// logical order.
func (a *PagedAllocator) PageTable(seq int) ([]int, error) {
	pages, ok := a.tables[seq]
	if !ok {
		return nil, fmt.Errorf("kvcache: unknown sequence %d", seq)
	}
	return append([]int(nil), pages...), nil
}

// SeqTokens returns a sequence's token count.
func (a *PagedAllocator) SeqTokens(seq int) (int, error) {
	n, ok := a.tokens[seq]
	if !ok {
		return 0, fmt.Errorf("kvcache: unknown sequence %d", seq)
	}
	return n, nil
}

// UsedBytes returns the bytes held by allocated pages.
func (a *PagedAllocator) UsedBytes() int64 {
	return int64(a.totalPages-len(a.freeList)) * int64(a.pageBytes)
}

// InternalFragmentation returns the fraction of allocated page bytes not
// backed by tokens — the cost of page-granularity allocation that the
// paged design bounds to < one page per sequence.
func (a *PagedAllocator) InternalFragmentation() float64 {
	allocPages := a.totalPages - len(a.freeList)
	if allocPages == 0 {
		return 0
	}
	var usedTokens int
	for id := range a.tables {
		usedTokens += a.tokens[id]
	}
	allocTokens := allocPages * a.pageTokens
	return 1 - float64(usedTokens)/float64(allocTokens)
}

// Utilization returns the fraction of the pool's pages in use.
func (a *PagedAllocator) Utilization() float64 {
	return float64(a.totalPages-len(a.freeList)) / float64(a.totalPages)
}

// Sequences returns the live sequence ids in ascending order.
func (a *PagedAllocator) Sequences() []int {
	out := make([]int, 0, len(a.tables))
	for id := range a.tables {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
