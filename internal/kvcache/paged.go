package kvcache

import (
	"fmt"
	"sort"
	"sync"
)

// PagedAllocator is the vLLM-style block allocator underneath the KV
// cache (§6: "we modified the KV cache structure of vLLM"). GPU memory
// is carved into fixed-size pages of Π tokens; each sequence owns a page
// table mapping its logical token blocks to physical pages. The
// allocator tracks free pages, per-sequence tables and fragmentation —
// the machinery that makes the Table 5 peak-memory numbers real at the
// engine level rather than assumed.
//
// All methods are safe for concurrent use: the prefix-cache tier shares
// one allocator across every prefill worker, so the allocator owns its
// own mutex rather than leaning on a single-owner convention.
type PagedAllocator struct {
	mu sync.Mutex
	// pageTokens is the page granularity in tokens (Π-aligned so HACK's
	// quantization partitions never straddle pages; PrefixIndex enforces
	// the alignment at construction with a PageAlignmentError).
	pageTokens int
	// pageBytes is the byte size of one page for the configured method.
	pageBytes  int
	totalPages int
	freeList   []int
	tables     map[int][]int // sequence id -> physical page ids
	tokens     map[int]int   // sequence id -> token count
	nextSeq    int
}

// NewPagedAllocator carves capacityBytes into pages of pageTokens tokens
// at bytesPerToken each.
func NewPagedAllocator(capacityBytes int64, pageTokens int, bytesPerToken int) (*PagedAllocator, error) {
	if capacityBytes <= 0 || pageTokens <= 0 || bytesPerToken <= 0 {
		return nil, fmt.Errorf("kvcache: paged allocator params %d/%d/%d",
			capacityBytes, pageTokens, bytesPerToken)
	}
	pageBytes := pageTokens * bytesPerToken
	total := int(capacityBytes / int64(pageBytes))
	if total == 0 {
		return nil, fmt.Errorf("kvcache: capacity %d below one page (%d)", capacityBytes, pageBytes)
	}
	a := &PagedAllocator{
		pageTokens: pageTokens,
		pageBytes:  pageBytes,
		totalPages: total,
		freeList:   make([]int, 0, total),
		tables:     map[int][]int{},
		tokens:     map[int]int{},
	}
	for i := total - 1; i >= 0; i-- {
		a.freeList = append(a.freeList, i)
	}
	return a, nil
}

// PageTokens returns the page granularity.
func (a *PagedAllocator) PageTokens() int { return a.pageTokens }

// FreePages returns the number of unallocated pages.
func (a *PagedAllocator) FreePages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.freeList)
}

// TotalPages returns the pool size.
func (a *PagedAllocator) TotalPages() int { return a.totalPages }

// pagesFor returns the number of pages n tokens occupy.
func (a *PagedAllocator) pagesFor(tokens int) int {
	return (tokens + a.pageTokens - 1) / a.pageTokens
}

// CanAdmit reports whether a sequence of the given final length fits in
// the currently free pages — the admission check the simulator's decode
// replicas perform. Non-positive lengths are never admissible: they
// describe no sequence, and Allocate rejects them.
func (a *PagedAllocator) CanAdmit(tokens int) bool {
	if tokens <= 0 {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pagesFor(tokens) <= len(a.freeList)
}

// Allocate creates a sequence with an initial token count (the prefilled
// prompt) and returns its id. The count must be positive: pagesFor
// rounds a non-positive count to zero pages, which would register a
// live sequence with no backing pages and a negative token balance,
// silently corrupting InternalFragmentation and CanAdmit.
func (a *PagedAllocator) Allocate(tokens int) (int, error) {
	if tokens <= 0 {
		return 0, fmt.Errorf("kvcache: allocate %d tokens (must be positive)", tokens)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	need := a.pagesFor(tokens)
	if need > len(a.freeList) {
		return 0, fmt.Errorf("kvcache: need %d pages, %d free", need, len(a.freeList))
	}
	id := a.nextSeq
	a.nextSeq++
	pages := make([]int, need)
	for i := range pages {
		pages[i] = a.freeList[len(a.freeList)-1]
		a.freeList = a.freeList[:len(a.freeList)-1]
	}
	a.tables[id] = pages
	a.tokens[id] = tokens
	return id, nil
}

// AppendToken grows a sequence by one token, taking a new page when the
// last one fills. This is the decode-step path.
func (a *PagedAllocator) AppendToken(seq int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	pages, ok := a.tables[seq]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seq)
	}
	n := a.tokens[seq]
	if n <= 0 {
		// Allocate rejects non-positive counts, so this can only mean
		// internal corruption; fail loudly rather than compound it.
		return fmt.Errorf("kvcache: sequence %d has invalid token count %d", seq, n)
	}
	if a.pagesFor(n+1) > len(pages) {
		if len(a.freeList) == 0 {
			return fmt.Errorf("kvcache: out of pages growing sequence %d", seq)
		}
		p := a.freeList[len(a.freeList)-1]
		a.freeList = a.freeList[:len(a.freeList)-1]
		a.tables[seq] = append(pages, p)
	}
	a.tokens[seq] = n + 1
	return nil
}

// Free releases a sequence's pages.
func (a *PagedAllocator) Free(seq int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	pages, ok := a.tables[seq]
	if !ok {
		return fmt.Errorf("kvcache: unknown sequence %d", seq)
	}
	a.freeList = append(a.freeList, pages...)
	delete(a.tables, seq)
	delete(a.tokens, seq)
	return nil
}

// PageTable returns a copy of the sequence's physical page ids in
// logical order.
func (a *PagedAllocator) PageTable(seq int) ([]int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	pages, ok := a.tables[seq]
	if !ok {
		return nil, fmt.Errorf("kvcache: unknown sequence %d", seq)
	}
	return append([]int(nil), pages...), nil
}

// SeqTokens returns a sequence's token count.
func (a *PagedAllocator) SeqTokens(seq int) (int, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	n, ok := a.tokens[seq]
	if !ok {
		return 0, fmt.Errorf("kvcache: unknown sequence %d", seq)
	}
	return n, nil
}

// UsedBytes returns the bytes held by allocated pages.
func (a *PagedAllocator) UsedBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(a.totalPages-len(a.freeList)) * int64(a.pageBytes)
}

// CapacityBytes returns the pool's total byte capacity.
func (a *PagedAllocator) CapacityBytes() int64 {
	return int64(a.totalPages) * int64(a.pageBytes)
}

// InternalFragmentation returns the fraction of allocated page bytes not
// backed by tokens — the cost of page-granularity allocation that the
// paged design bounds to < one page per sequence.
func (a *PagedAllocator) InternalFragmentation() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	allocPages := a.totalPages - len(a.freeList)
	if allocPages == 0 {
		return 0
	}
	var usedTokens int
	for id := range a.tables {
		usedTokens += a.tokens[id]
	}
	allocTokens := allocPages * a.pageTokens
	return 1 - float64(usedTokens)/float64(allocTokens)
}

// Utilization returns the fraction of the pool's pages in use.
func (a *PagedAllocator) Utilization() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return float64(a.totalPages-len(a.freeList)) / float64(a.totalPages)
}

// Sequences returns the live sequence ids in ascending order.
func (a *PagedAllocator) Sequences() []int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]int, 0, len(a.tables))
	for id := range a.tables {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// CheckConservation verifies the pool's bookkeeping: every physical page
// appears exactly once (in the free list or in exactly one page table),
// token counts are positive and consistent with each table's size, and
// the page total balances. It is the property the fuzz harness pins.
func (a *PagedAllocator) CheckConservation() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	seen := make(map[int]int, a.totalPages)
	for _, p := range a.freeList {
		seen[p]++
	}
	total := len(a.freeList)
	for id, pages := range a.tables {
		total += len(pages)
		for _, p := range pages {
			seen[p]++
		}
		n, ok := a.tokens[id]
		if !ok {
			return fmt.Errorf("kvcache: sequence %d has a table but no token count", id)
		}
		if n <= 0 {
			return fmt.Errorf("kvcache: sequence %d has token count %d", id, n)
		}
		if a.pagesFor(n) != len(pages) {
			return fmt.Errorf("kvcache: sequence %d holds %d pages for %d tokens", id, len(pages), n)
		}
	}
	if len(a.tokens) != len(a.tables) {
		return fmt.Errorf("kvcache: %d token counts for %d tables", len(a.tokens), len(a.tables))
	}
	if total != a.totalPages {
		return fmt.Errorf("kvcache: %d pages accounted for, pool holds %d", total, a.totalPages)
	}
	for p, n := range seen {
		if p < 0 || p >= a.totalPages {
			return fmt.Errorf("kvcache: page id %d outside pool [0,%d)", p, a.totalPages)
		}
		if n != 1 {
			return fmt.Errorf("kvcache: page %d appears %d times", p, n)
		}
	}
	return nil
}
