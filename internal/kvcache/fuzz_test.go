package kvcache

import (
	"testing"
)

// FuzzPagedAllocator drives the allocator with an arbitrary byte script
// (each byte is one operation: allocate, append, free, admission check)
// and asserts page conservation after every step: no page lost, none
// double-owned, token accounting consistent with table sizes.
func FuzzPagedAllocator(f *testing.F) {
	f.Add([]byte{0x05, 0x21, 0x40, 0x80, 0x01})
	f.Add([]byte{0x00, 0xff, 0x41, 0x42, 0x43, 0x81})
	f.Fuzz(func(t *testing.T, script []byte) {
		a, err := NewPagedAllocator(32*8*4, 8, 4) // 32 pages of 8 tokens
		if err != nil {
			t.Fatal(err)
		}
		var seqs []int
		for _, op := range script {
			switch op >> 6 {
			case 0: // allocate 0..63 tokens (0 must be rejected, not crash)
				tokens := int(op & 0x3f)
				if seq, err := a.Allocate(tokens); err == nil {
					if tokens <= 0 {
						t.Fatalf("Allocate(%d) accepted", tokens)
					}
					seqs = append(seqs, seq)
				}
			case 1: // append one token to a live sequence
				if len(seqs) > 0 {
					_ = a.AppendToken(seqs[int(op&0x3f)%len(seqs)])
				}
			case 2: // free a live sequence
				if len(seqs) > 0 {
					i := int(op&0x3f) % len(seqs)
					if err := a.Free(seqs[i]); err != nil {
						t.Fatal(err)
					}
					seqs = append(seqs[:i], seqs[i+1:]...)
				}
			case 3: // admission probe, including degenerate counts
				_ = a.CanAdmit(int(op&0x3f) - 8)
			}
			if err := a.CheckConservation(); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// FuzzPrefixIndex drives the prefix index with an arbitrary operation
// script — inserts, pinned lookups, releases — over a budget small
// enough to exercise eviction, and asserts the structural invariants
// after every step: allocator conservation, one page sequence per
// resident node, non-negative refcounts, consistent trie links.
func FuzzPrefixIndex(f *testing.F) {
	f.Add([]byte{0x10, 0x50, 0x91, 0x12, 0xd0})
	f.Add([]byte{0x00, 0x01, 0x02, 0x40, 0x41, 0x80, 0x81, 0xc0})
	f.Fuzz(func(t *testing.T, script []byte) {
		ix, err := NewPrefixIndex(6*4*8, 4, 4, 8) // 6 blocks of 4 tokens
		if err != nil {
			t.Fatal(err)
		}
		var pinned []*PrefixMatch
		defer func() {
			for _, m := range pinned {
				m.Release()
			}
		}()
		for _, op := range script {
			ns := int64(op >> 5 & 1)     // two namespaces
			p := prompt(int(op>>2&7), 8) // eight distinct prompts
			switch op >> 6 {
			case 0: // insert up to a block boundary
				upTo := 4 * (1 + int(op&3))
				if upTo > len(p) {
					upTo = len(p)
				}
				if _, err := ix.Insert(ns, p, upTo, func(lo, hi int) (any, error) {
					return [2]int{lo, hi}, nil
				}); err != nil {
					t.Fatal(err)
				}
			case 1: // lookup and hold the pin
				if m := ix.Lookup(ns, p, len(p)); m != nil {
					if m.Tokens%4 != 0 || m.Tokens <= 0 {
						t.Fatalf("match of %d tokens", m.Tokens)
					}
					pinned = append(pinned, m)
				}
			case 2: // release an outstanding pin
				if len(pinned) > 0 {
					i := int(op&0x3f) % len(pinned)
					pinned[i].Release()
					pinned = append(pinned[:i], pinned[i+1:]...)
				}
			case 3: // stats probe
				st := ix.Stats()
				if st.BytesUsed > st.BytesBudget {
					t.Fatalf("resident %d bytes over budget %d", st.BytesUsed, st.BytesBudget)
				}
			}
			if err := ix.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	})
}
