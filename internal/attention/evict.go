package attention

// KV eviction composed with homomorphic quantization — the §9 future-work
// direction. The policy is heavy-hitter style (H2O/Scissorhands): every
// attention call accumulates each cached token's received probability
// mass; when the cache exceeds its budget, the *complete quantized block*
// (Π tokens) with the least accumulated mass is dropped. Block
// granularity is what makes eviction compose with HACK's layouts: K rows
// are per-token partitions and V can only shed aligned Π-row groups
// without requantizing the remainder; the FP16 tail (most recent tokens)
// is never evicted.

import "github.com/hackkv/hack/internal/tensor"

// accumulateScores folds one attention-probability matrix into the
// per-token mass tracker (column j of p is token j's received mass).
func (h *hackHead) accumulateScores(p *tensor.Matrix) {
	if h.cfg.EvictBudgetTokens <= 0 {
		return
	}
	for len(h.scores) < p.Cols {
		h.scores = append(h.scores, 0)
	}
	for i := 0; i < p.Rows; i++ {
		row := p.Row(i)
		for j, v := range row {
			h.scores[j] += float64(v)
		}
	}
}

// maybeEvict drops cold blocks until the cache fits its budget. Only
// complete quantized V blocks outside the protected recency window are
// candidates.
func (h *hackHead) maybeEvict() error {
	if h.cfg.EvictBudgetTokens <= 0 {
		return nil
	}
	for h.c.Len() > h.cfg.EvictBudgetTokens {
		nb := h.c.VFull.NBlocks
		candidates := nb - h.cfg.EvictProtectBlocks
		if candidates <= 0 {
			return nil // nothing evictable yet
		}
		pi := h.cfg.Pi
		best, bestMass := -1, 0.0
		for b := 0; b < candidates; b++ {
			var mass float64
			for i := b * pi; i < (b+1)*pi && i < len(h.scores); i++ {
				mass += h.scores[i]
			}
			if best < 0 || mass < bestMass {
				best, bestMass = b, mass
			}
		}
		if err := h.c.EvictBlock(best); err != nil {
			return err
		}
		h.scores = append(h.scores[:best*pi], h.scores[(best+1)*pi:]...)
		h.Evictions++
	}
	return nil
}
