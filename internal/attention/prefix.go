package attention

import (
	"fmt"
	"math/rand"

	"github.com/hackkv/hack/internal/kvcache"
	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// This file implements the shared-prefix quantization discipline
// (HACKConfig.PrefixShareable): the head machinery that makes a
// quantized Π-aligned KV page a position-addressable artifact, so a
// page produced while serving one request restores bit-identically
// into another request over the same prompt prefix and seed.
//
// Classic heads draw all quantizer randomness from one per-head stream
// in operation order — K(all rows), V(complete partitions), Q(rows),
// P(rows×nFull) — so each draw's stream position depends on the whole
// prompt's length, and a page cut from one prompt cannot match a
// different prompt's cold path. Prefix-shareable heads instead run
// counted rounding (one draw per element, unconditionally; see
// quant.CountedStochasticRounding) over four independent per-operand
// streams, making every draw position a pure function of the token
// position it encodes:
//
//	K stream:  row t uses draws [t·d_h, (t+1)·d_h)
//	V stream:  partition p uses draws [p·Π·d_h, (p+1)·Π·d_h)
//	Q stream:  prompt row t uses draws [t·d_h, (t+1)·d_h)
//	P stream:  prompt row t uses draws [t·nFull, (t+1)·nFull)
//
// Restoring a cached prefix then reduces to fast-forwarding the K and
// V streams past the restored rows and skipping the Q and P draws of
// the rows whose attention outputs are not recomputed (ResumePrefill).

// PrefixBackend is implemented by attention backends whose heads
// support the shared-prefix page discipline.
type PrefixBackend interface {
	Backend
	// PrefixLayout reports the page-relevant quantization geometry
	// (partition size Π, KV code width), or an error when the backend
	// is not configured for prefix sharing.
	PrefixLayout() (pi, kvBits int, err error)
	// RestorePrefixHead rebuilds a head over cached pages: quantized K
	// and V covering the same Π-aligned token count, with no FP16
	// tail. A subsequent ResumePrefill and Decodes are bit-identical
	// to a head that prefilled those tokens itself.
	RestorePrefixHead(headDim int, k, v *quant.Tensor) (Head, error)
}

// PrefixResumer is implemented by heads that can continue a prefill on
// top of restored shared-prefix pages.
type PrefixResumer interface {
	// ResumePrefill appends the prompt suffix's k/v rows to the
	// restored cache and attends the suffix queries over the full
	// cache, with the causal mask offset by the cached token count.
	// Outputs are bit-identical to the corresponding rows of a cold
	// Prefill over the whole prompt.
	ResumePrefill(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error)
}

// PrefixPageExporter is implemented by heads whose Π-aligned cache
// spans can be copied out as shareable pages.
type PrefixPageExporter interface {
	// ExportPrefixPages deep-copies quantized K and V rows [lo, hi) —
	// both bounds Π-aligned, hi within the fully-quantized span — as
	// standalone tensors safe to cache beyond the head's lifetime.
	ExportPrefixPages(lo, hi int) (k, v *quant.Tensor, err error)
}

// prefixStreams holds the four per-operand quantizer streams of a
// prefix-shareable head. Each stream sits behind a countingSource so the
// head always knows its absolute draw position — the state speculative
// decoding's rollback (hackHead.Truncate) rewinds to when a rejected
// draft suffix must disappear from the stream history.
type prefixStreams struct {
	k, v, q, p             *rand.Rand
	kCnt, vCnt, qCnt, pCnt *countingSource
	seed                   int64
}

// Operand tags for stream-seed derivation. Fixed constants: changing
// them (or deriveStreamSeed) invalidates every cached page.
const (
	streamOpK = 1
	streamOpV = 2
	streamOpQ = 3
	streamOpP = 4
)

// deriveStreamSeed whitens (seed, op) into a per-operand stream seed
// with a splitmix64 finalizer, so the four streams of one head stay
// decorrelated even for adjacent request seeds. Determinism is all
// correctness needs; the whitening is for statistical hygiene.
func deriveStreamSeed(seed int64, op uint64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(1+op)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

func newPrefixStreams(seed int64) *prefixStreams {
	ps := &prefixStreams{seed: seed}
	ps.k, ps.kCnt = newCountingRand(deriveStreamSeed(seed, streamOpK))
	ps.v, ps.vCnt = newCountingRand(deriveStreamSeed(seed, streamOpV))
	ps.q, ps.qCnt = newCountingRand(deriveStreamSeed(seed, streamOpQ))
	ps.p, ps.pCnt = newCountingRand(deriveStreamSeed(seed, streamOpP))
	return ps
}

// rewind re-lands one operand stream at an absolute draw position —
// O(1) on the counter-mode source; the replay fallback reseeds and
// fast-forwards. Speculation pays it when a draft suffix is rejected,
// and only for the streams whose positions moved (K, Q, P; the V
// stream draws nothing inside a clamped verify window). The state
// changes in place, never by replacing the *rand.Rand: the KV cache
// captured the K and V stream pointers at construction, so swapping in
// a fresh object would silently detach it from the stream.
func (ps *prefixStreams) rewind(op uint64, pos uint64) {
	var r *rand.Rand
	var c *countingSource
	switch op {
	case streamOpK:
		r, c = ps.k, ps.kCnt
	case streamOpV:
		r, c = ps.v, ps.vCnt
	case streamOpQ:
		r, c = ps.q, ps.qCnt
	case streamOpP:
		r, c = ps.p, ps.pCnt
	}
	if c.seek(pos) {
		return
	}
	r.Seed(deriveStreamSeed(ps.seed, op))
	c.n = 0
	for i := uint64(0); i < pos; i++ {
		r.Int63()
	}
}

// skip advances one operand stream by exactly n draws. Counted rounding
// consumes one Int63 per encoded element, so n element encodes ≡ n
// draws. Like rewind, O(1) on the counter-mode source.
func (ps *prefixStreams) skip(op uint64, n int) {
	var r *rand.Rand
	var c *countingSource
	switch op {
	case streamOpK:
		r, c = ps.k, ps.kCnt
	case streamOpV:
		r, c = ps.v, ps.vCnt
	case streamOpQ:
		r, c = ps.q, ps.qCnt
	case streamOpP:
		r, c = ps.p, ps.pCnt
	}
	if c.seek(c.n + uint64(n)) {
		return
	}
	for i := 0; i < n; i++ {
		r.Int63()
	}
}

// newPrefixHead builds a prefix-shareable head over the four derived
// operand streams; non-nil k/v restore already-cached content with the
// K and V streams fast-forwarded past it.
func (b *HACKBackend) newPrefixHead(headDim int, k, v *quant.Tensor) (Head, error) {
	pf := newPrefixStreams(b.cfg.Seed)
	cfg := kvcache.Config{
		HeadDim: headDim, Pi: b.cfg.Pi, KVBits: b.cfg.KVBits,
		Rounding: b.cfg.rounding(), KRNG: pf.k, VRNG: pf.v,
		RQE: true,
	}
	var c *kvcache.Cache
	var err error
	if k == nil {
		c, err = kvcache.New(cfg)
	} else {
		c, err = kvcache.Restore(cfg, k, v, tensor.New(0, headDim))
		if err == nil {
			// The cold path drew d_h uniforms per token per operand for
			// the restored span; land the streams just past it.
			pf.skip(streamOpK, k.Rows*headDim)
			pf.skip(streamOpV, v.Rows*headDim)
		}
	}
	if err != nil {
		return nil, err
	}
	return &hackHead{cfg: b.cfg, c: c, pf: pf,
		s: &tensor.Matrix{}, pFull: &tensor.Matrix{}, pvOut: &tensor.Matrix{},
		pTail: &tensor.Matrix{}, tailOut: &tensor.Matrix{}, out: &tensor.Matrix{}}, nil
}

// PrefixLayout implements PrefixBackend.
func (b *HACKBackend) PrefixLayout() (int, int, error) {
	if !b.cfg.PrefixShareable {
		return 0, 0, fmt.Errorf("attention: backend %q is not prefix-shareable", b.Name())
	}
	return b.cfg.Pi, b.cfg.KVBits, nil
}

// RestorePrefixHead implements PrefixBackend.
func (b *HACKBackend) RestorePrefixHead(headDim int, k, v *quant.Tensor) (Head, error) {
	if !b.cfg.PrefixShareable {
		return nil, fmt.Errorf("attention: backend %q is not prefix-shareable", b.Name())
	}
	if k == nil || v == nil {
		return nil, fmt.Errorf("attention: prefix restore with nil pages")
	}
	if k.Rows != v.Rows {
		return nil, fmt.Errorf("attention: prefix restore K %d rows vs V %d", k.Rows, v.Rows)
	}
	if k.Rows <= 0 || k.Rows%b.cfg.Pi != 0 {
		return nil, fmt.Errorf("attention: prefix restore over %d rows (need a positive multiple of Π=%d)", k.Rows, b.cfg.Pi)
	}
	return b.newPrefixHead(headDim, k, v)
}

// ResumePrefill implements PrefixResumer: q/k/v hold only the prompt
// suffix rows that follow the restored prefix.
func (h *hackHead) ResumePrefill(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error) {
	var st Stats
	if h.pf == nil {
		return nil, st, fmt.Errorf("attention: resume on a non-prefix-shareable head")
	}
	cached := h.c.Len()
	if cached <= 0 || cached%h.cfg.Pi != 0 {
		return nil, st, fmt.Errorf("attention: resume over %d cached tokens (need a positive multiple of Π=%d)", cached, h.cfg.Pi)
	}
	if q.Rows == 0 {
		return nil, st, fmt.Errorf("attention: resume with an empty suffix")
	}
	if err := h.c.AppendPrefill(k, v); err != nil {
		return nil, st, err
	}
	st.QuantOps += 2 * 2 * int64(k.Rows) * int64(k.Cols)
	h.resumeRows = cached
	defer func() { h.resumeRows = 0 }()
	// maskOffset = cached: suffix row i is global row cached+i, allowed
	// to attend positions 0..cached+i.
	out, err := h.attend(q, cached, &st)
	return out, st, err
}

// ExportPrefixPages implements PrefixPageExporter.
func (h *hackHead) ExportPrefixPages(lo, hi int) (*quant.Tensor, *quant.Tensor, error) {
	if h.pf == nil {
		return nil, nil, fmt.Errorf("attention: page export on a non-prefix-shareable head")
	}
	if lo < 0 || hi <= lo || hi > h.c.VFull.Rows || lo%h.cfg.Pi != 0 || hi%h.cfg.Pi != 0 {
		return nil, nil, fmt.Errorf("attention: page span [%d,%d) of %d quantized rows (Π=%d)",
			lo, hi, h.c.VFull.Rows, h.cfg.Pi)
	}
	k, err := h.c.K.SliceRows(lo, hi)
	if err != nil {
		return nil, nil, err
	}
	v, err := h.c.VFull.SliceRows(lo, hi)
	if err != nil {
		return nil, nil, err
	}
	return k, v, nil
}
