package attention

import (
	"testing"

	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

func prefixCfg(seed int64) HACKConfig {
	cfg := DefaultHACKConfig(seed)
	cfg.Pi = 8 // small Π keeps multi-block scenarios cheap
	cfg.PrefixShareable = true
	return cfg
}

func slice(m *tensor.Matrix, lo, hi int) *tensor.Matrix {
	out := tensor.New(hi-lo, m.Cols)
	for i := lo; i < hi; i++ {
		copy(out.Row(i-lo), m.Row(i))
	}
	return out
}

func mustEqual(t *testing.T, tag string, a, b *tensor.Matrix) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape %dx%d vs %dx%d", tag, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("%s: element %d diverged: %v vs %v", tag, i, a.Data[i], b.Data[i])
		}
	}
}

// TestPrefixWarmColdByteIdentity is the tentpole property end to end at
// the head level: export Π-aligned pages from one head, restore them
// into a fresh head, resume the prefill over the remaining suffix —
// every attention output for the suffix rows and every subsequent
// decode step must be bit-identical to a cold head that prefilled the
// whole prompt itself.
func TestPrefixWarmColdByteIdentity(t *testing.T) {
	const total, cached = 21, 16 // cached is a Π multiple; 5 suffix rows
	b, err := NewHACK(prefixCfg(99))
	if err != nil {
		t.Fatal(err)
	}
	q, k, v := randQKV(5, total)

	cold, err := b.NewHead(dh)
	if err != nil {
		t.Fatal(err)
	}
	coldOut, _, err := cold.Prefill(q.Clone(), k.Clone(), v.Clone())
	if err != nil {
		t.Fatal(err)
	}
	coldSuffix := slice(coldOut, cached, total)

	// A second cold head (same seed) donates the pages, exporting in
	// two spans to exercise multi-block assembly downstream.
	donor, err := b.NewHead(dh)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := donor.Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
		t.Fatal(err)
	}
	exp := donor.(PrefixPageExporter)
	k1, v1, err := exp.ExportPrefixPages(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	k2, v2, err := exp.ExportPrefixPages(8, cached)
	if err != nil {
		t.Fatal(err)
	}
	if err := k1.AppendRows(k2); err != nil {
		t.Fatal(err)
	}
	if err := v1.AppendRowBlocks(v2); err != nil {
		t.Fatal(err)
	}

	warm, err := b.RestorePrefixHead(dh, k1, v1)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Len() != cached {
		t.Fatalf("restored head holds %d tokens, want %d", warm.Len(), cached)
	}
	warmOut, _, err := warm.(PrefixResumer).ResumePrefill(
		slice(q, cached, total), slice(k, cached, total), slice(v, cached, total))
	if err != nil {
		t.Fatal(err)
	}
	mustEqual(t, "resumed suffix", warmOut, coldSuffix)

	// Decode steps must stay locked together.
	for step := 0; step < 6; step++ {
		dq, dk, dv := randQKV(int64(1000+step), 1)
		co, _, err := cold.Decode(dq.Clone(), dk.Clone(), dv.Clone())
		if err != nil {
			t.Fatal(err)
		}
		wo, _, err := warm.Decode(dq, dk, dv)
		if err != nil {
			t.Fatal(err)
		}
		mustEqual(t, "decode step", wo, co)
		if warm.Len() != cold.Len() {
			t.Fatalf("length diverged: %d vs %d", warm.Len(), cold.Len())
		}
	}
}

// TestPrefixSeedIsolation checks that pages are seed-specific: a head
// restored under a different seed produces different outputs than the
// donor's cold path (the serving tier namespaces its index by seed for
// exactly this reason).
func TestPrefixSeedIsolation(t *testing.T) {
	const total, cached = 20, 16
	q, k, v := randQKV(6, total)
	run := func(seed int64) *tensor.Matrix {
		b, err := NewHACK(prefixCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		h, err := b.NewHead(dh)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := h.Prefill(q.Clone(), k.Clone(), v.Clone())
		if err != nil {
			t.Fatal(err)
		}
		return out.Clone()
	}
	a, b := run(1), run(2)
	same := true
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical stochastic outputs")
	}
}

// TestPrefixGates pins the mode boundaries: prefix sharing requires RQE
// and no eviction; classic heads expose no page machinery; prefix heads
// refuse the classic single-stream wire export.
func TestPrefixGates(t *testing.T) {
	bad := prefixCfg(1)
	bad.RequantizationElimination = false
	if _, err := NewHACK(bad); err == nil {
		t.Fatal("prefix sharing without RQE accepted")
	}
	bad = prefixCfg(1)
	bad.EvictBudgetTokens = 64
	if _, err := NewHACK(bad); err == nil {
		t.Fatal("prefix sharing with eviction accepted")
	}
	bad = prefixCfg(1)
	bad.Rounding = quant.NearestRounding
	if _, err := NewHACK(bad); err != nil {
		t.Fatalf("nearest rounding (draw-free) should be shareable: %v", err)
	}

	classic, err := NewHACK(DefaultHACKConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := classic.PrefixLayout(); err == nil {
		t.Fatal("classic backend advertised a prefix layout")
	}
	if _, err := classic.RestorePrefixHead(dh, nil, nil); err == nil {
		t.Fatal("classic backend restored prefix pages")
	}

	pb, err := NewHACK(prefixCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	h, err := pb.NewHead(dh)
	if err != nil {
		t.Fatal(err)
	}
	q, k, v := randQKV(7, 16)
	if _, _, err := h.Prefill(q, k, v); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := h.(WireExporter).ExportWire(); err == nil {
		t.Fatal("prefix head exported a classic single-stream wire cache")
	}
	if _, _, err := h.(PrefixPageExporter).ExportPrefixPages(3, 11); err == nil {
		t.Fatal("misaligned page span exported")
	}
	if _, err := pb.RestorePrefixHead(dh, nil, nil); err == nil {
		t.Fatal("nil pages restored")
	}
}
