package attention

import (
	"math/rand"
	"testing"

	"github.com/hackkv/hack/internal/tensor"
)

const evictDH = 32

func newEvictingHead(t *testing.T, budget, protect int) *hackHead {
	t.Helper()
	cfg := DefaultHACKConfig(3)
	cfg.Pi = 16
	cfg.EvictBudgetTokens = budget
	cfg.EvictProtectBlocks = protect
	b, err := NewHACK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h, err := b.NewHead(evictDH)
	if err != nil {
		t.Fatal(err)
	}
	return h.(*hackHead)
}

func TestEvictionKeepsCacheWithinBudget(t *testing.T) {
	h := newEvictingHead(t, 64, 1)
	rng := rand.New(rand.NewSource(1))
	q := tensor.RandNormal(rng, 80, evictDH, 1)
	k := tensor.RandNormal(rng, 80, evictDH, 1)
	v := tensor.RandNormal(rng, 80, evictDH, 1)
	if _, _, err := h.Prefill(q, k, v); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		dq := tensor.RandNormal(rng, 1, evictDH, 1)
		dk := tensor.RandNormal(rng, 1, evictDH, 1)
		dv := tensor.RandNormal(rng, 1, evictDH, 1)
		if _, _, err := h.Decode(dq, dk, dv); err != nil {
			t.Fatal(err)
		}
		// Budget may be exceeded only by what the protected window and
		// the unevictable tail pin in place (< budget + 2Π here).
		if h.Len() > 64+2*16 {
			t.Fatalf("step %d: cache %d tokens far above budget", i, h.Len())
		}
	}
	if h.Evictions == 0 {
		t.Error("no blocks were evicted")
	}
	// K and V stay consistent after evictions.
	if h.c.K.Rows != h.c.VFull.Rows+h.c.TailLen() {
		t.Errorf("K rows %d != V rows %d + tail %d", h.c.K.Rows, h.c.VFull.Rows, h.c.TailLen())
	}
}

func TestEvictionDisabledByDefault(t *testing.T) {
	b, err := NewHACK(DefaultHACKConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	head, err := b.NewHead(evictDH)
	if err != nil {
		t.Fatal(err)
	}
	h := head.(*hackHead)
	rng := rand.New(rand.NewSource(2))
	if _, _, err := h.Prefill(tensor.RandNormal(rng, 200, evictDH, 1),
		tensor.RandNormal(rng, 200, evictDH, 1), tensor.RandNormal(rng, 200, evictDH, 1)); err != nil {
		t.Fatal(err)
	}
	one := tensor.New(1, evictDH)
	if _, _, err := h.Decode(one, one, one); err != nil {
		t.Fatal(err)
	}
	if h.Evictions != 0 || h.Len() != 201 {
		t.Errorf("eviction ran while disabled: %d evictions, %d tokens", h.Evictions, h.Len())
	}
	if h.scores != nil {
		t.Error("score tracking active while eviction disabled")
	}
}

// The policy must prefer cold blocks: tokens that received near-zero
// attention mass get evicted before heavy hitters.
func TestEvictionPrefersColdBlocks(t *testing.T) {
	h := newEvictingHead(t, 48, 0)
	rng := rand.New(rand.NewSource(5))
	// Prefill 64 tokens = 4 blocks of 16. Make block 1's keys point away
	// from every query (cold) by giving them large negative projection.
	k := tensor.RandNormal(rng, 64, evictDH, 0.3)
	for i := 16; i < 32; i++ {
		for j := 0; j < evictDH; j++ {
			k.Set(i, j, -4) // consistently anti-aligned with positive queries
		}
	}
	q := tensor.RandUniform(rng, 64, evictDH, 0.5, 1.5) // positive queries
	v := tensor.RandNormal(rng, 64, evictDH, 1)
	if _, _, err := h.Prefill(q, k, v); err != nil {
		t.Fatal(err)
	}
	// One decode step pushes 65 > 48: one block must go, and it should
	// be the cold block (index 1), leaving blocks 0,2,3.
	dq := tensor.RandUniform(rng, 1, evictDH, 0.5, 1.5)
	dk := tensor.RandNormal(rng, 1, evictDH, 0.3)
	dv := tensor.RandNormal(rng, 1, evictDH, 1)
	if _, _, err := h.Decode(dq, dk, dv); err != nil {
		t.Fatal(err)
	}
	if h.Evictions == 0 {
		t.Fatal("expected an eviction")
	}
	// The cold block's K rows were all -4; check they are gone by
	// dequantizing K and looking for any strongly negative row.
	kd := h.c.K.Dequantize()
	for i := 0; i < kd.Rows; i++ {
		if kd.At(i, 0) < -3 && kd.At(i, 1) < -3 {
			t.Fatalf("cold block survived eviction at row %d", i)
		}
	}
}

// Eviction bounds memory: with a budget, cache usage plateaus while the
// unevicted head keeps growing.
func TestEvictionBoundsMemory(t *testing.T) {
	bounded := newEvictingHead(t, 96, 1)
	unbounded := newEvictingHead(t, 0, 0)
	rng := rand.New(rand.NewSource(6))
	q := tensor.RandNormal(rng, 96, evictDH, 1)
	k := tensor.RandNormal(rng, 96, evictDH, 1)
	v := tensor.RandNormal(rng, 96, evictDH, 1)
	if _, _, err := bounded.Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := unbounded.Prefill(q, k, v); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		dq := tensor.RandNormal(rng, 1, evictDH, 1)
		dk := tensor.RandNormal(rng, 1, evictDH, 1)
		dv := tensor.RandNormal(rng, 1, evictDH, 1)
		if _, _, err := bounded.Decode(dq.Clone(), dk.Clone(), dv.Clone()); err != nil {
			t.Fatal(err)
		}
		if _, _, err := unbounded.Decode(dq, dk, dv); err != nil {
			t.Fatal(err)
		}
	}
	if bounded.CacheUsage().Total() >= unbounded.CacheUsage().Total()/2 {
		t.Errorf("bounded cache %d not well below unbounded %d",
			bounded.CacheUsage().Total(), unbounded.CacheUsage().Total())
	}
}
