// Package attention implements the self-attention backends compared in
// the paper's evaluation, all operating per head on real numbers:
//
//   - Exact: float32 attention with a float32 cache — the numeric
//     reference that accuracy is measured against.
//   - FP16: the disaggregation baseline. KV is stored and transmitted in
//     FP16; computation happens on the FP16-rounded values.
//   - Dequant: the CacheGen/KVQuant family. KV is quantized per token at
//     2 bits; every use first dequantizes the whole cache back to FP16
//     (the overhead HACK eliminates).
//   - HACK: homomorphic quantization (§5). Q and P are quantized to
//     INT8, K and V to INT2; Q·Kᵀ and P·V run directly on quantized data
//     via package hack, with summation elimination and requantization
//     elimination individually toggleable for the §7.4 ablations.
//
// Each backend mirrors the paper's fused attn_prefill / attn_decode
// kernels (§6) as a Prefill and a Decode method, and reports Stats — the
// op and byte tallies that the performance model prices.
package attention

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hackkv/hack/internal/fp16"
	"github.com/hackkv/hack/internal/hack"
	"github.com/hackkv/hack/internal/kvcache"
	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// Stats tallies the work one attention call performed. All counts are
// cumulative over the call and additive across calls.
type Stats struct {
	// FloatOps counts FP16-class floating-point operations (matmuls on
	// unquantized data, softmax, scaling, the FP16 tail of V).
	FloatOps int64
	// IntOps counts integer multiply-accumulate operations executed on
	// quantized codes (the INT8-tensor-core work).
	IntOps int64
	// QuantOps counts quantization work (performed once per token).
	QuantOps int64
	// DequantOps counts KV dequantization work (the per-iteration
	// baseline overhead).
	DequantOps int64
	// ApproxOps counts Eq. (4) approximation work (HACK only).
	ApproxOps int64
	// SumOps counts Σb′ recomputation work (HACK without SE only).
	SumOps int64
	// RequantOps counts V-tail requantization work (HACK without RQE).
	RequantOps int64
	// KVBytesRead counts bytes loaded from the KV cache.
	KVBytesRead int64
}

// Add accumulates s2 into s.
func (s *Stats) Add(s2 Stats) {
	s.FloatOps += s2.FloatOps
	s.IntOps += s2.IntOps
	s.QuantOps += s2.QuantOps
	s.DequantOps += s2.DequantOps
	s.ApproxOps += s2.ApproxOps
	s.SumOps += s2.SumOps
	s.RequantOps += s2.RequantOps
	s.KVBytesRead += s2.KVBytesRead
}

// Head is the per-sequence, per-attention-head state of a backend. Calls
// must alternate a single Prefill followed by zero or more Decodes.
//
// The matrix returned by Prefill or Decode is owned by the head and is
// only valid until the next call on the same head: the hot decode loop
// reuses one output buffer per head so that a step allocates nothing.
// Clone the result to retain it across calls.
type Head interface {
	// Prefill runs causal self-attention over the prompt's q, k, v
	// (each L×d_h), fills the KV cache, and returns the attention
	// output (L×d_h).
	Prefill(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error)
	// Decode runs one autoregressive step: q, k, v are 1×d_h; k and v
	// are appended to the cache and the output is 1×d_h.
	Decode(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error)
	// Len returns the number of cached tokens.
	Len() int
	// CacheUsage reports the cache's resident memory.
	CacheUsage() kvcache.Usage
	// WireSize reports the bytes needed to ship the cache from a
	// prefill to a decode instance.
	WireSize() int
}

// Backend constructs per-head attention state.
type Backend interface {
	// Name identifies the method in experiment output.
	Name() string
	// NewHead returns fresh per-sequence state for one head of width
	// headDim.
	NewHead(headDim int) (Head, error)
}

// scaledScoresInto computes S = q·kᵀ/√d_h in float32 into dst.
func scaledScoresInto(dst, q, k *tensor.Matrix) *tensor.Matrix {
	s := tensor.MatMulTransBInto(dst, q, k)
	return s.Scale(float32(1 / math.Sqrt(float64(q.Cols))))
}

// softmaxOps estimates the floating-point cost of a row-wise softmax
// (exp ≈ 4 ops, plus max/sum/divide passes).
func softmaxOps(rows, cols int) int64 { return 7 * int64(rows) * int64(cols) }

// ---------------------------------------------------------------------
// Exact float32 reference.

// ExactBackend computes attention in float32 with an unrounded cache. It
// is the accuracy reference: every other backend's error is measured
// against its generations.
type ExactBackend struct{}

// Name implements Backend.
func (ExactBackend) Name() string { return "Exact" }

// NewHead implements Backend.
func (ExactBackend) NewHead(headDim int) (Head, error) {
	if headDim <= 0 {
		return nil, fmt.Errorf("attention: head dim %d", headDim)
	}
	return &exactHead{k: tensor.New(0, headDim), v: tensor.New(0, headDim),
		s: &tensor.Matrix{}, out: &tensor.Matrix{}}, nil
}

type exactHead struct {
	k, v *tensor.Matrix
	// s and out are the per-call score and output buffers, reused across
	// calls so the decode loop stops allocating (see Head).
	s, out *tensor.Matrix
}

func (h *exactHead) Prefill(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error) {
	var st Stats
	h.k = tensor.AppendRows(h.k, k)
	h.v = tensor.AppendRows(h.v, v)
	s := scaledScoresInto(h.s, q, h.k)
	tensor.CausalMask(s, 0)
	tensor.Softmax(s)
	out := tensor.MatMulInto(h.out, s, h.v)
	st.FloatOps = 4*int64(q.Rows)*int64(q.Cols)*int64(h.k.Rows) + softmaxOps(s.Rows, s.Cols)
	return out, st, nil
}

func (h *exactHead) Decode(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error) {
	var st Stats
	h.k = tensor.AppendRows(h.k, k)
	h.v = tensor.AppendRows(h.v, v)
	s := scaledScoresInto(h.s, q, h.k)
	tensor.Softmax(s)
	out := tensor.MatMulInto(h.out, s, h.v)
	st.FloatOps = 4*int64(q.Cols)*int64(h.k.Rows) + softmaxOps(1, s.Cols)
	st.KVBytesRead = 4 * int64(len(h.k.Data)+len(h.v.Data))
	return out, st, nil
}

func (h *exactHead) Len() int { return h.k.Rows }

func (h *exactHead) CacheUsage() kvcache.Usage {
	return kvcache.Usage{FP16Bytes: 4 * (len(h.k.Data) + len(h.v.Data))} // float32, reported as raw bytes
}

func (h *exactHead) WireSize() int { return 4 * (len(h.k.Data) + len(h.v.Data)) }

// ---------------------------------------------------------------------
// FP16 baseline.

// FP16Backend is the disaggregated-inference baseline: FP16 KV storage
// and transmission, computation on the rounded values, no quantization.
type FP16Backend struct{}

// Name implements Backend.
func (FP16Backend) Name() string { return "Baseline" }

// NewHead implements Backend.
func (FP16Backend) NewHead(headDim int) (Head, error) {
	if headDim <= 0 {
		return nil, fmt.Errorf("attention: head dim %d", headDim)
	}
	return &fp16Head{c: kvcache.NewFP16(headDim),
		qr: &tensor.Matrix{}, s: &tensor.Matrix{}, out: &tensor.Matrix{}}, nil
}

type fp16Head struct {
	c *kvcache.FP16Cache
	// qr/s/out are reused per-call buffers (see Head).
	qr, s, out *tensor.Matrix
}

func (h *fp16Head) Prefill(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error) {
	var st Stats
	if err := h.c.Append(k, v); err != nil {
		return nil, st, err
	}
	qr := h.qr.CopyInto(q)
	fp16.RoundSlice(qr.Data)
	s := scaledScoresInto(h.s, qr, h.c.K)
	tensor.CausalMask(s, 0)
	tensor.Softmax(s)
	out := tensor.MatMulInto(h.out, s, h.c.V)
	st.FloatOps = 4*int64(q.Rows)*int64(q.Cols)*int64(h.c.Len()) + softmaxOps(s.Rows, s.Cols)
	return out, st, nil
}

func (h *fp16Head) Decode(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error) {
	var st Stats
	if err := h.c.Append(k, v); err != nil {
		return nil, st, err
	}
	qr := h.qr.CopyInto(q)
	fp16.RoundSlice(qr.Data)
	s := scaledScoresInto(h.s, qr, h.c.K)
	tensor.Softmax(s)
	out := tensor.MatMulInto(h.out, s, h.c.V)
	st.FloatOps = 4*int64(q.Cols)*int64(h.c.Len()) + softmaxOps(1, s.Cols)
	st.KVBytesRead = int64(h.c.Usage().Total())
	return out, st, nil
}

func (h *fp16Head) Len() int                  { return h.c.Len() }
func (h *fp16Head) CacheUsage() kvcache.Usage { return h.c.Usage() }
func (h *fp16Head) WireSize() int             { return h.c.WireSize() }

// ---------------------------------------------------------------------
// Dequantize-before-compute family (CacheGen / KVQuant).

// DequantConfig parameterizes a dequantize-before-compute backend. The
// two published systems are modeled as per-token 2-bit asymmetric
// quantizers with different effective group sizes (see package compress
// for the wire encodings); both pay a full KV dequantization on every
// attention call.
type DequantConfig struct {
	// MethodName labels the backend ("CacheGen", "KVQuant", ...).
	MethodName string
	// Pi is the quantization group size along the head dimension.
	Pi int
	// KVBits is the code width (2 in the paper).
	KVBits int
	// Rounding and Seed configure the quantizer; each head derives its
	// own deterministic RNG from Seed.
	Rounding quant.Rounding
	Seed     int64
	// WireFactor scales the wire size relative to raw packed codes,
	// modeling CacheGen's entropy-coded bitstream (< 1) versus plain
	// packing (1). Resident cache size is unaffected.
	WireFactor float64
}

// DequantBackend implements Backend for the dequantize family.
type DequantBackend struct{ cfg DequantConfig }

// NewDequant validates the configuration and returns the backend.
func NewDequant(cfg DequantConfig) (*DequantBackend, error) {
	if cfg.MethodName == "" {
		return nil, fmt.Errorf("attention: dequant backend needs a name")
	}
	if cfg.WireFactor <= 0 || cfg.WireFactor > 1 {
		return nil, fmt.Errorf("attention: wire factor %v out of (0,1]", cfg.WireFactor)
	}
	if cfg.Pi <= 0 || cfg.KVBits < 1 || cfg.KVBits > 8 {
		return nil, fmt.Errorf("attention: dequant pi=%d bits=%d", cfg.Pi, cfg.KVBits)
	}
	return &DequantBackend{cfg: cfg}, nil
}

// Name implements Backend.
func (b *DequantBackend) Name() string { return b.cfg.MethodName }

// NewHead implements Backend.
func (b *DequantBackend) NewHead(headDim int) (Head, error) {
	rng := rand.New(rand.NewSource(b.cfg.Seed))
	c, err := kvcache.NewTokenQuant(kvcache.Config{
		HeadDim: headDim, Pi: b.cfg.Pi, KVBits: b.cfg.KVBits,
		Rounding: b.cfg.Rounding, RNG: rng,
	})
	if err != nil {
		return nil, err
	}
	return &dequantHead{cfg: b.cfg, c: c,
		qr: &tensor.Matrix{}, dk: &tensor.Matrix{}, dv: &tensor.Matrix{},
		s: &tensor.Matrix{}, out: &tensor.Matrix{}}, nil
}

type dequantHead struct {
	cfg DequantConfig
	c   *kvcache.TokenQuantCache
	// qr/dk/dv/s/out are reused per-call buffers: the defining per-step
	// dequantization lands in dk/dv instead of fresh matrices, so its
	// cost is the compute, not the allocator (see Head).
	qr, dk, dv, s, out *tensor.Matrix
}

func (h *dequantHead) Prefill(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error) {
	var st Stats
	if err := h.c.Append(k, v); err != nil {
		return nil, st, err
	}
	st.QuantOps = 2 * int64(k.Rows) * int64(k.Cols) * 2
	dk, dv := h.c.DequantizeKVInto(h.dk, h.dv)
	st.DequantOps = 4 * int64(dk.Rows) * int64(dk.Cols)
	qr := h.qr.CopyInto(q)
	fp16.RoundSlice(qr.Data)
	s := scaledScoresInto(h.s, qr, dk)
	tensor.CausalMask(s, 0)
	tensor.Softmax(s)
	out := tensor.MatMulInto(h.out, s, dv)
	st.FloatOps = 4*int64(q.Rows)*int64(q.Cols)*int64(dk.Rows) + softmaxOps(s.Rows, s.Cols)
	return out, st, nil
}

func (h *dequantHead) Decode(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error) {
	var st Stats
	if err := h.c.Append(k, v); err != nil {
		return nil, st, err
	}
	st.QuantOps = 2 * int64(k.Cols) * 2
	// The defining cost: the whole cache is dequantized every step.
	dk, dv := h.c.DequantizeKVInto(h.dk, h.dv)
	st.DequantOps = 4 * int64(dk.Rows) * int64(dk.Cols)
	qr := h.qr.CopyInto(q)
	fp16.RoundSlice(qr.Data)
	s := scaledScoresInto(h.s, qr, dk)
	tensor.Softmax(s)
	out := tensor.MatMulInto(h.out, s, dv)
	st.FloatOps = 4*int64(q.Cols)*int64(dk.Rows) + softmaxOps(1, s.Cols)
	st.KVBytesRead = int64(h.c.Usage().Total())
	return out, st, nil
}

func (h *dequantHead) Len() int                  { return h.c.Len() }
func (h *dequantHead) CacheUsage() kvcache.Usage { return h.c.Usage() }

func (h *dequantHead) WireSize() int {
	return int(math.Ceil(float64(h.c.WireSize()) * h.cfg.WireFactor))
}

// ---------------------------------------------------------------------
// HACK.

// HACKConfig parameterizes the homomorphic backend.
type HACKConfig struct {
	// Pi is the quantization partition size Π (32/64/128 in §7.5).
	Pi int
	// QBits is the Q and P precision (8 in the paper).
	QBits int
	// KVBits is the K and V precision (2 in the paper).
	KVBits int
	// SummationElimination caches Σb′ (§5.3); disabling it yields the
	// HACK/SE ablation.
	SummationElimination bool
	// RequantizationElimination keeps the trailing V block in FP16
	// (§5.3); disabling it yields the HACK/RQE ablation.
	RequantizationElimination bool
	// Rounding and Seed configure the quantizers.
	Rounding quant.Rounding
	Seed     int64
	// NameOverride replaces the derived method name when non-empty.
	NameOverride string
	// EvictBudgetTokens enables heavy-hitter KV eviction (the §9
	// future-work combination): when the cache exceeds this many
	// tokens, the coldest complete Π-token block is dropped. 0 disables
	// eviction.
	EvictBudgetTokens int
	// EvictProtectBlocks shields the most recent N quantized V blocks
	// from eviction (the recency window).
	EvictProtectBlocks int
	// Parallelism bounds the worker goroutines the homomorphic kernels
	// may fan out per multiplication (hack.Options.Parallelism): 0 sizes
	// like the sweep pool, 1 forces serial. Outputs are bit-identical at
	// every setting.
	Parallelism int
	// PrefixShareable switches the head to the shared-prefix
	// quantization discipline: counted stochastic rounding (exactly one
	// RNG draw per element) over four independent per-operand streams
	// (K, V, Q, P) derived from Seed, so every draw's stream position
	// is a pure function of the token position it encodes rather than
	// of the whole prompt's length. Heads in this mode can export
	// Π-aligned KV pages and be restored from cached pages with
	// bit-identical downstream output (RestorePrefixHead /
	// PrefixResumer). They do not interoperate with the classic
	// single-stream wire export used by disaggregated handoff, and
	// require RQE with eviction disabled.
	PrefixShareable bool
}

// rounding returns the quantizer rounding mode the configuration
// actually runs: prefix-shareable heads promote plain stochastic
// rounding to the counted discipline (NearestRounding, being
// deterministic and draw-free, passes through).
func (c HACKConfig) rounding() quant.Rounding {
	if c.PrefixShareable && c.Rounding == quant.StochasticRounding {
		return quant.CountedStochasticRounding
	}
	return c.Rounding
}

// DefaultHACKConfig returns the paper's shipping configuration:
// Π=64, INT8 Q/P, INT2 KV, SE and RQE enabled, stochastic rounding.
func DefaultHACKConfig(seed int64) HACKConfig {
	return HACKConfig{
		Pi: 64, QBits: 8, KVBits: 2,
		SummationElimination:      true,
		RequantizationElimination: true,
		Rounding:                  quant.StochasticRounding,
		Seed:                      seed,
	}
}

// HACKBackend implements Backend using homomorphic quantization.
type HACKBackend struct{ cfg HACKConfig }

// NewHACK validates the configuration and returns the backend.
func NewHACK(cfg HACKConfig) (*HACKBackend, error) {
	if cfg.Pi <= 0 {
		return nil, fmt.Errorf("attention: hack pi %d", cfg.Pi)
	}
	if cfg.QBits < 1 || cfg.QBits > 8 || cfg.KVBits < 1 || cfg.KVBits > 8 {
		return nil, fmt.Errorf("attention: hack bits q=%d kv=%d", cfg.QBits, cfg.KVBits)
	}
	if cfg.PrefixShareable {
		if !cfg.RequantizationElimination {
			return nil, fmt.Errorf("attention: prefix sharing requires RQE (pages hold complete partitions only)")
		}
		if cfg.EvictBudgetTokens > 0 {
			return nil, fmt.Errorf("attention: prefix sharing with eviction enabled would desynchronize cached pages")
		}
	}
	return &HACKBackend{cfg: cfg}, nil
}

// Name implements Backend.
func (b *HACKBackend) Name() string {
	if b.cfg.NameOverride != "" {
		return b.cfg.NameOverride
	}
	name := "HACK"
	if !b.cfg.SummationElimination {
		name += "/SE"
	}
	if !b.cfg.RequantizationElimination {
		name += "/RQE"
	}
	return name
}

// splitmixSource is the quantizer RNG: a counter-mode generator whose
// draw i is a pure function of (seed, i) — a splitmix64 finalizer over
// the draw index. Counter mode is what makes the stream seekable: any
// absolute draw position can be reached in O(1) by setting the index,
// which speculative rollback (rewinding a rejected draft suffix out of
// the stream) and the disaggregated handoff (fast-forwarding a fresh
// source to the prefill instance's count) both depend on. A sequential
// generator would force an O(position) replay for either.
type splitmixSource struct {
	seed uint64
	i    uint64 // next draw index
}

func (s *splitmixSource) Uint64() uint64 {
	z := s.seed + 0x9e3779b97f4a7c15*(s.i+1)
	s.i++
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitmixSource) Seed(sd int64) { s.seed = uint64(sd); s.i = 0 }

// seeker is a source that can jump to an absolute draw position.
type seeker interface{ seek(pos uint64) }

func (s *splitmixSource) seek(pos uint64) { s.i = pos }

// countingSource wraps the quantizer RNG source and counts state
// advances. Every Rand method consumes exactly one source call per
// draw, so the count is the head's position in the seed's stream: a
// decode instance can fast-forward a fresh source by the same count and
// continue the stream bit-identically (the disaggregated handoff).
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(s int64) { c.src.Seed(s) }

// seek lands the stream at an absolute draw position, forward or
// backward, and reports whether the underlying source supported it.
// Safe to call directly on the source: rand.Rand buffers no state for
// the integer/float methods the quantizers use.
func (c *countingSource) seek(pos uint64) bool {
	s, ok := c.src.(seeker)
	if ok {
		s.seek(pos)
		c.n = pos
	}
	return ok
}

// newCountingRand builds the per-head quantizer RNG: the deterministic
// seekable source behind a draw counter.
func newCountingRand(seed int64) (*rand.Rand, *countingSource) {
	src := &splitmixSource{}
	src.Seed(seed)
	cnt := &countingSource{src: src}
	return rand.New(cnt), cnt
}

// NewHead implements Backend.
func (b *HACKBackend) NewHead(headDim int) (Head, error) {
	if b.cfg.PrefixShareable {
		return b.newPrefixHead(headDim, nil, nil)
	}
	rng, cnt := newCountingRand(b.cfg.Seed)
	c, err := kvcache.New(kvcache.Config{
		HeadDim: headDim, Pi: b.cfg.Pi, KVBits: b.cfg.KVBits,
		Rounding: b.cfg.Rounding, RNG: rng,
		RQE: b.cfg.RequantizationElimination,
	})
	if err != nil {
		return nil, err
	}
	return &hackHead{cfg: b.cfg, c: c, rng: rng, cnt: cnt,
		s: &tensor.Matrix{}, pFull: &tensor.Matrix{}, pvOut: &tensor.Matrix{},
		pTail: &tensor.Matrix{}, tailOut: &tensor.Matrix{}, out: &tensor.Matrix{}}, nil
}

// RestoreHead rebuilds per-sequence head state on a decode instance from
// shipped cache contents: the quantized K and V (complete partitions),
// the FP16 RQE tail, and the prefill instance's RNG draw count. The
// restored head's quantizer RNG is fast-forwarded to the shipped count,
// so subsequent Decode calls produce bit-identical output to a head that
// ran the prefill locally.
func (b *HACKBackend) RestoreHead(headDim int, k, v *quant.Tensor, tail *tensor.Matrix, rngDraws uint64) (Head, error) {
	if b.cfg.PrefixShareable {
		return nil, fmt.Errorf("attention: prefix-shareable backends restore pages (RestorePrefixHead), not the single-stream wire form")
	}
	if !b.cfg.RequantizationElimination {
		return nil, fmt.Errorf("attention: restore requires RQE (the quantized-tail ablation does not ship)")
	}
	if b.cfg.EvictBudgetTokens > 0 {
		return nil, fmt.Errorf("attention: restore with eviction enabled would lose the score state")
	}
	rng, cnt := newCountingRand(b.cfg.Seed)
	if !cnt.seek(rngDraws) {
		for i := uint64(0); i < rngDraws; i++ {
			cnt.Int63()
		}
	}
	c, err := kvcache.Restore(kvcache.Config{
		HeadDim: headDim, Pi: b.cfg.Pi, KVBits: b.cfg.KVBits,
		Rounding: b.cfg.Rounding, RNG: rng, RQE: true,
	}, k, v, tail)
	if err != nil {
		return nil, err
	}
	return &hackHead{cfg: b.cfg, c: c, rng: rng, cnt: cnt,
		s: &tensor.Matrix{}, pFull: &tensor.Matrix{}, pvOut: &tensor.Matrix{},
		pTail: &tensor.Matrix{}, tailOut: &tensor.Matrix{}, out: &tensor.Matrix{}}, nil
}

type hackHead struct {
	cfg HACKConfig
	c   *kvcache.Cache
	rng *rand.Rand
	cnt *countingSource
	// pf holds the four per-operand quantizer streams of a
	// prefix-shareable head (nil in classic mode, where rng/cnt drive a
	// single shared stream).
	pf *prefixStreams
	// resumeRows is the cached token count of an in-progress
	// ResumePrefill: attend skips that many rows' worth of Q and P
	// draws so the suffix lands on the cold path's stream positions.
	// Zero outside a resume.
	resumeRows int
	// scores accumulates each cached token's received attention mass
	// for the eviction policy; Evictions counts dropped blocks.
	scores    []float64
	Evictions int

	// Per-call scratch, reused across calls so a decode step allocates
	// nothing at steady state (see Head): the quantized Q and P tensors,
	// the score matrix, the P-slice copies, the partial products, and
	// the output accumulator.
	qq, pq       *quant.Tensor
	s, pFull     *tensor.Matrix
	pvOut, pTail *tensor.Matrix
	tailOut, out *tensor.Matrix
}

func (h *hackHead) qCfg() quant.Config {
	return quant.Config{Bits: h.cfg.QBits, Partition: h.cfg.Pi, Rounding: h.cfg.Rounding, RNG: h.rng}
}

// qCfgQ and qCfgP select the quantizer configuration for the Q and P
// operands: the dedicated per-operand stream under prefix sharing, the
// classic shared stream otherwise.
func (h *hackHead) qCfgQ() quant.Config {
	if h.pf != nil {
		return quant.Config{Bits: h.cfg.QBits, Partition: h.cfg.Pi, Rounding: h.cfg.rounding(), RNG: h.pf.q}
	}
	return h.qCfg()
}

func (h *hackHead) qCfgP() quant.Config {
	if h.pf != nil {
		return quant.Config{Bits: h.cfg.QBits, Partition: h.cfg.Pi, Rounding: h.cfg.rounding(), RNG: h.pf.p}
	}
	return h.qCfg()
}

func (h *hackHead) opts() hack.Options {
	return hack.Options{ReuseSums: h.cfg.SummationElimination, Parallelism: h.cfg.Parallelism}
}

// attend computes softmax(q·Kᵀ/√d)·V against the cache for the given
// query rows; maskOffset >= 0 applies the causal mask (prefill),
// maskOffset < 0 skips it (decode attends to everything).
func (h *hackHead) attend(q *tensor.Matrix, maskOffset int, st *Stats) (*tensor.Matrix, error) {
	dh := q.Cols
	if h.resumeRows > 0 && h.pf != nil {
		// The cold path quantized Q for every prompt row; a resumed
		// prefill only quantizes the suffix. Skip the cached rows' draws
		// so the suffix rows encode at the cold path's stream positions.
		h.pf.skip(streamOpQ, h.resumeRows*dh)
	}
	qq, err := quant.QuantizeInto(h.qq, q, quant.AlongCols, h.qCfgQ())
	if err != nil {
		return nil, err
	}
	h.qq = qq
	st.QuantOps += 2 * int64(q.Rows) * int64(dh)

	// ① homomorphic Q·Kᵀ on quantized data.
	s := h.s
	ops := hack.MatMulTransBInto(s, qq, h.c.K, h.opts())
	st.IntOps += ops.IntMACs
	st.ApproxOps += ops.ApproxFlops
	st.SumOps += ops.SumRecomputeOps
	s.Scale(float32(1 / math.Sqrt(float64(dh))))
	st.FloatOps += int64(s.Rows) * int64(s.Cols)
	if maskOffset >= 0 {
		tensor.CausalMask(s, maskOffset)
	}
	tensor.Softmax(s)
	st.FloatOps += softmaxOps(s.Rows, s.Cols)
	h.accumulateScores(s)

	// ② homomorphic P·V: quantized part against VFull, FP16 (or
	// requantized) tail separately.
	nFull := h.c.VFull.Rows
	out := h.out.Reset(q.Rows, dh)
	if nFull > 0 {
		if h.resumeRows > 0 && h.pf != nil {
			// Same skip for P: the cold path quantized one nFull-wide P
			// row per cached prompt row before reaching the suffix rows.
			h.pf.skip(streamOpP, h.resumeRows*nFull)
		}
		pFull := s.SliceColsInto(h.pFull, 0, nFull)
		pq, err := quant.QuantizeInto(h.pq, pFull, quant.AlongCols, h.qCfgP())
		if err != nil {
			return nil, err
		}
		h.pq = pq
		st.QuantOps += 2 * int64(pFull.Rows) * int64(nFull)
		ops := hack.MatMulInto(h.pvOut, pq, h.c.VFull, h.opts())
		st.IntOps += ops.IntMACs
		st.ApproxOps += ops.ApproxFlops
		st.SumOps += ops.SumRecomputeOps
		out.Add(h.pvOut)
	}
	tail := h.c.TailMatrix()
	if tail.Rows > 0 {
		pTail := s.SliceColsInto(h.pTail, nFull, nFull+tail.Rows)
		out.Add(tensor.MatMulInto(h.tailOut, pTail, tail))
		st.FloatOps += 2 * int64(q.Rows) * int64(tail.Rows) * int64(dh)
		if !h.cfg.RequantizationElimination {
			// The ablation pays a dequantization of the partial block
			// to form the matrix we just multiplied.
			st.RequantOps += 2 * int64(tail.Rows) * int64(dh)
		}
	}
	return out, nil
}

func (h *hackHead) Prefill(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error) {
	var st Stats
	if err := h.c.AppendPrefill(k, v); err != nil {
		return nil, st, err
	}
	st.QuantOps += 2 * 2 * int64(k.Rows) * int64(k.Cols) // K and V quantization
	before := h.c.RequantOps
	out, err := h.attend(q, 0, &st)
	st.RequantOps += h.c.RequantOps - before
	return out, st, err
}

func (h *hackHead) Decode(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error) {
	var st Stats
	before := h.c.RequantOps
	if err := h.c.AppendToken(k.Row(0), v.Row(0)); err != nil {
		return nil, st, err
	}
	st.QuantOps += 2 * 2 * int64(k.Cols)
	out, err := h.attend(q, -1, &st)
	st.RequantOps += h.c.RequantOps - before
	st.KVBytesRead = int64(h.c.Usage().Total())
	if err == nil {
		err = h.maybeEvict()
	}
	return out, st, err
}

func (h *hackHead) Len() int                  { return h.c.Len() }
func (h *hackHead) CacheUsage() kvcache.Usage { return h.c.Usage() }
func (h *hackHead) WireSize() int             { return h.c.WireSize() }

// WireExporter is implemented by heads whose cache state can be shipped
// to a decode instance (⑦ in Fig. 5). Only the HACK backend exports:
// the baselines ship raw FP16 (netsim prices that path analytically) and
// are not served disaggregated by this runtime.
type WireExporter interface {
	// ExportWire returns the cache contents in wire form — quantized K
	// (token-major), quantized V (complete partitions), the FP16 RQE
	// tail, and the quantizer RNG draw count a restored head must fast-
	// forward past. The tensors are owned by the head: frame them before
	// the next Decode call mutates the cache.
	ExportWire() (k, v *quant.Tensor, tail *tensor.Matrix, rngDraws uint64, err error)
}

// ExportWire implements WireExporter.
func (h *hackHead) ExportWire() (*quant.Tensor, *quant.Tensor, *tensor.Matrix, uint64, error) {
	if h.pf != nil {
		return nil, nil, nil, 0, fmt.Errorf("attention: prefix-shareable heads export pages (ExportPrefixPages), not the single-stream wire form")
	}
	if !h.cfg.RequantizationElimination {
		return nil, nil, nil, 0, fmt.Errorf("attention: export requires RQE (the quantized-tail ablation does not ship)")
	}
	if h.cfg.EvictBudgetTokens > 0 {
		return nil, nil, nil, 0, fmt.Errorf("attention: export with eviction enabled would lose the score state")
	}
	return h.c.K, h.c.VFull, h.c.VTail, h.cnt.n, nil
}
