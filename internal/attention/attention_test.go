package attention

import (
	"math/rand"
	"testing"

	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

const dh = 32

func randQKV(seed int64, n int) (q, k, v *tensor.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	return tensor.RandNormal(rng, n, dh, 1),
		tensor.RandNormal(rng, n, dh, 1),
		tensor.RandNormal(rng, n, dh, 1)
}

func allBackends(t *testing.T) []Backend {
	t.Helper()
	cg, err := NewDequant(DequantConfig{
		MethodName: "CacheGen", Pi: 24, KVBits: 2,
		Rounding: quant.StochasticRounding, Seed: 11, WireFactor: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	hk, err := NewHACK(DefaultHACKConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	return []Backend{ExactBackend{}, FP16Backend{}, cg, hk}
}

// All backends must agree with the exact reference on shapes and,
// approximately, on values: attention outputs are convex combinations of
// V rows, so quantization perturbs but cannot explode them.
func TestBackendsApproximateExact(t *testing.T) {
	q, k, v := randQKV(1, 40)
	exact, err := ExactBackend{}.NewHead(dh)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := exact.Prefill(q, k, v)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range allBackends(t)[1:] {
		h, err := b.NewHead(dh)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		out, _, err := h.Prefill(q.Clone(), k.Clone(), v.Clone())
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if out.Rows != 40 || out.Cols != dh {
			t.Fatalf("%s: output shape %dx%d", b.Name(), out.Rows, out.Cols)
		}
		rel := tensor.RelFrobenius(out, ref)
		limit := 0.6 // 2-bit KV is noisy; convexity bounds the damage
		if b.Name() == "Baseline" {
			limit = 0.01
		}
		if rel > limit {
			t.Errorf("%s: prefill relative error %.3f > %.2f", b.Name(), rel, limit)
		}
	}
}

// Decode outputs must track the reference across a long autoregressive
// run, and FP16 must be far closer than the 2-bit methods.
func TestDecodeTracksReference(t *testing.T) {
	q, k, v := randQKV(2, 24)
	backends := allBackends(t)
	heads := make([]Head, len(backends))
	for i, b := range backends {
		h, err := b.NewHead(dh)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := h.Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
			t.Fatal(err)
		}
		heads[i] = h
	}
	rng := rand.New(rand.NewSource(3))
	var relFP16, relHACK float64
	const steps = 80
	for step := 0; step < steps; step++ {
		dq := tensor.RandNormal(rng, 1, dh, 1)
		dk := tensor.RandNormal(rng, 1, dh, 1)
		dv := tensor.RandNormal(rng, 1, dh, 1)
		var ref *tensor.Matrix
		for i, h := range heads {
			out, _, err := h.Decode(dq.Clone(), dk.Clone(), dv.Clone())
			if err != nil {
				t.Fatalf("%s: %v", backends[i].Name(), err)
			}
			switch backends[i].Name() {
			case "Exact":
				ref = out
			case "Baseline":
				relFP16 += tensor.RelFrobenius(out, ref)
			case "HACK":
				relHACK += tensor.RelFrobenius(out, ref)
			}
		}
	}
	relFP16 /= steps
	relHACK /= steps
	if relFP16 > 0.01 {
		t.Errorf("FP16 decode error %.4f, want ~0", relFP16)
	}
	// Decode outputs are convex combinations of V rows, which average
	// toward small norms, so *relative* error at d_h=32 with 2-bit KV is
	// sizeable; the bound just catches blowups.
	if relHACK > 1.2 {
		t.Errorf("HACK decode error %.4f, too large", relHACK)
	}
	if relFP16 >= relHACK {
		t.Errorf("FP16 error %.4f should be below HACK %.4f", relFP16, relHACK)
	}
	// All caches agree on token count: 24 prefill + 80 decode.
	for i, h := range heads {
		if h.Len() != 104 {
			t.Errorf("%s: Len = %d, want 104", backends[i].Name(), h.Len())
		}
	}
}

// HACK must never dequantize KV; the dequant family must never use the
// homomorphic path. Stats make the distinction observable.
func TestStatsSeparateTheMethods(t *testing.T) {
	q, k, v := randQKV(4, 70)
	dq, _ := NewDequant(DequantConfig{MethodName: "KVQuant", Pi: 28, KVBits: 2,
		Rounding: quant.NearestRounding, Seed: 5, WireFactor: 1})
	hk, _ := NewHACK(DefaultHACKConfig(6))

	dh1, _ := dq.NewHead(dh)
	_, st, err := dh1.Prefill(q.Clone(), k.Clone(), v.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if st.DequantOps == 0 {
		t.Error("dequant backend reported no dequantization work")
	}
	if st.IntOps != 0 || st.ApproxOps != 0 {
		t.Error("dequant backend reported homomorphic work")
	}

	hh, _ := hk.NewHead(dh)
	_, st, err = hh.Prefill(q.Clone(), k.Clone(), v.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if st.DequantOps != 0 {
		t.Error("HACK reported dequantization work")
	}
	if st.IntOps == 0 || st.ApproxOps == 0 {
		t.Error("HACK reported no homomorphic work")
	}
	if st.SumOps != 0 {
		t.Error("HACK with SE recomputed sums")
	}

	// One decode step reads the cache.
	one := tensor.New(1, dh)
	_, st, err = hh.Decode(one.Clone(), one.Clone(), one.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if st.KVBytesRead == 0 {
		t.Error("decode reported no KV reads")
	}
}

// The SE ablation recomputes sums, the RQE ablation requantizes the V
// tail — both must show up in stats while full HACK shows neither.
func TestAblationStats(t *testing.T) {
	mk := func(se, rqe bool) Head {
		cfg := DefaultHACKConfig(7)
		cfg.SummationElimination = se
		cfg.RequantizationElimination = rqe
		b, err := NewHACK(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, err := b.NewHead(dh)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	q, k, v := randQKV(8, 70) // 70 % 64 != 0 → live tail
	run := func(h Head) Stats {
		if _, _, err := h.Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
			t.Fatal(err)
		}
		var total Stats
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 10; i++ {
			dq := tensor.RandNormal(rng, 1, dh, 1)
			_, st, err := h.Decode(dq, tensor.RandNormal(rng, 1, dh, 1), tensor.RandNormal(rng, 1, dh, 1))
			if err != nil {
				t.Fatal(err)
			}
			total.Add(st)
		}
		return total
	}
	full := run(mk(true, true))
	noSE := run(mk(false, true))
	noRQE := run(mk(true, false))
	if full.SumOps != 0 || full.RequantOps != 0 {
		t.Errorf("full HACK: sum=%d requant=%d, want 0", full.SumOps, full.RequantOps)
	}
	if noSE.SumOps == 0 {
		t.Error("HACK/SE ablation recorded no sum recomputation")
	}
	if noRQE.RequantOps == 0 {
		t.Error("HACK/RQE ablation recorded no requantization")
	}
}

func TestBackendNames(t *testing.T) {
	mk := func(se, rqe bool) string {
		cfg := DefaultHACKConfig(1)
		cfg.SummationElimination = se
		cfg.RequantizationElimination = rqe
		b, _ := NewHACK(cfg)
		return b.Name()
	}
	if mk(true, true) != "HACK" || mk(false, true) != "HACK/SE" || mk(true, false) != "HACK/RQE" {
		t.Error("derived names wrong")
	}
	cfg := DefaultHACKConfig(1)
	cfg.NameOverride = "HACK (Π=32)"
	b, _ := NewHACK(cfg)
	if b.Name() != "HACK (Π=32)" {
		t.Error("name override ignored")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewDequant(DequantConfig{MethodName: "", Pi: 8, KVBits: 2, WireFactor: 1}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := NewDequant(DequantConfig{MethodName: "x", Pi: 8, KVBits: 2, WireFactor: 0}); err == nil {
		t.Error("zero wire factor accepted")
	}
	if _, err := NewDequant(DequantConfig{MethodName: "x", Pi: 0, KVBits: 2, WireFactor: 1}); err == nil {
		t.Error("zero pi accepted")
	}
	if _, err := NewHACK(HACKConfig{Pi: 0, QBits: 8, KVBits: 2}); err == nil {
		t.Error("zero pi accepted")
	}
	if _, err := NewHACK(HACKConfig{Pi: 64, QBits: 0, KVBits: 2}); err == nil {
		t.Error("zero qbits accepted")
	}
	if _, err := (ExactBackend{}).NewHead(0); err == nil {
		t.Error("zero head dim accepted")
	}
	if _, err := (FP16Backend{}).NewHead(-1); err == nil {
		t.Error("negative head dim accepted")
	}
}

// Wire sizes: quantized methods transfer ~7x less than the baseline,
// and the CacheGen wire factor shrinks it further.
func TestWireSizes(t *testing.T) {
	q, k, v := randQKV(10, 256)
	base, _ := FP16Backend{}.NewHead(dh)
	if _, _, err := base.Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
		t.Fatal(err)
	}
	cg, _ := NewDequant(DequantConfig{MethodName: "CacheGen", Pi: 16, KVBits: 2,
		Rounding: quant.NearestRounding, Seed: 1, WireFactor: 0.9})
	cgh, _ := cg.NewHead(dh)
	if _, _, err := cgh.Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
		t.Fatal(err)
	}
	hk, _ := NewHACK(DefaultHACKConfig(2))
	hkh, _ := hk.NewHead(dh)
	if _, _, err := hkh.Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
		t.Fatal(err)
	}

	fb, cb, hb := base.WireSize(), cgh.WireSize(), hkh.WireSize()
	if ratio := float64(cb) / float64(fb); ratio > 0.25 {
		t.Errorf("CacheGen wire ratio %.3f, want deep compression", ratio)
	}
	if ratio := float64(hb) / float64(fb); ratio > 0.25 {
		t.Errorf("HACK wire ratio %.3f, want deep compression", ratio)
	}
	if cb >= int(float64(fb)*0.25) || hb >= fb {
		t.Error("compression sanity failed")
	}
}

// Π sensitivity: finer partitions give lower attention error (Table 8's
// accuracy column), averaged over stochastic trials.
func TestPartitionSizeAccuracyOrdering(t *testing.T) {
	var err32, err128 float64
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		q, k, v := randQKV(int64(20+trial), 256)
		exact, _ := ExactBackend{}.NewHead(dh)
		ref, _, _ := exact.Prefill(q.Clone(), k.Clone(), v.Clone())
		for _, pi := range []int{32, 128} {
			cfg := DefaultHACKConfig(int64(trial))
			cfg.Pi = pi
			b, _ := NewHACK(cfg)
			h, _ := b.NewHead(dh)
			out, _, err := h.Prefill(q.Clone(), k.Clone(), v.Clone())
			if err != nil {
				t.Fatal(err)
			}
			rel := tensor.RelFrobenius(out, ref)
			if pi == 32 {
				err32 += rel
			} else {
				err128 += rel
			}
		}
	}
	if err32 >= err128 {
		t.Errorf("Π=32 error %.4f not below Π=128 error %.4f", err32/trials, err128/trials)
	}
}

func BenchmarkHACKDecodeStep(b *testing.B) {
	q, k, v := randQKV(1, 1024)
	hk, _ := NewHACK(DefaultHACKConfig(1))
	h, _ := hk.NewHead(dh)
	if _, _, err := h.Prefill(q, k, v); err != nil {
		b.Fatal(err)
	}
	one := tensor.New(1, dh)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.Decode(one, one, one); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDequantDecodeStep(b *testing.B) {
	q, k, v := randQKV(1, 1024)
	dq, _ := NewDequant(DequantConfig{MethodName: "KVQuant", Pi: 32, KVBits: 2,
		Rounding: quant.NearestRounding, Seed: 1, WireFactor: 1})
	h, _ := dq.NewHead(dh)
	if _, _, err := h.Prefill(q, k, v); err != nil {
		b.Fatal(err)
	}
	one := tensor.New(1, dh)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := h.Decode(one, one, one); err != nil {
			b.Fatal(err)
		}
	}
}

// Storing KV at 4 bits rather than 2 trades compression for fidelity:
// the attention output error must drop substantially.
func TestKVBitsAccuracyTradeoff(t *testing.T) {
	q, k, v := randQKV(30, 256)
	exact, _ := ExactBackend{}.NewHead(dh)
	ref, _, _ := exact.Prefill(q.Clone(), k.Clone(), v.Clone())
	errAt := func(bits int) float64 {
		cfg := DefaultHACKConfig(9)
		cfg.KVBits = bits
		b, err := NewHACK(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h, _ := b.NewHead(dh)
		out, _, err := h.Prefill(q.Clone(), k.Clone(), v.Clone())
		if err != nil {
			t.Fatal(err)
		}
		return tensor.RelFrobenius(out, ref)
	}
	e2, e4 := errAt(2), errAt(4)
	if e4 >= e2/2 {
		t.Errorf("4-bit error %.4f not well below 2-bit %.4f", e4, e2)
	}
}

// CacheGen's entropy-coded wire factor shows up in WireSize but not in
// the resident cache.
func TestWireFactorOnlyAffectsWire(t *testing.T) {
	q, k, v := randQKV(31, 128)
	mk := func(factor float64) Head {
		b, err := NewDequant(DequantConfig{MethodName: "X", Pi: 16, KVBits: 2,
			Rounding: quant.NearestRounding, Seed: 1, WireFactor: factor})
		if err != nil {
			t.Fatal(err)
		}
		h, _ := b.NewHead(dh)
		if _, _, err := h.Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
			t.Fatal(err)
		}
		return h
	}
	full, compressed := mk(1.0), mk(0.8)
	if full.CacheUsage().Total() != compressed.CacheUsage().Total() {
		t.Error("wire factor changed resident cache size")
	}
	if compressed.WireSize() >= full.WireSize() {
		t.Errorf("wire factor 0.8 gave %d bytes >= factor 1.0's %d",
			compressed.WireSize(), full.WireSize())
	}
}
