package attention

import (
	"fmt"

	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// This file implements the head-level primitives of speculative
// decoding: verifying a window of draft tokens in one batched attention
// call (DecodeBatch), and rolling a rejected suffix back out of the
// cache and the quantizer streams (Truncate).
//
// The invariant everything below serves: a batched verify over k rows
// is token-for-token bit-identical to k sequential Decode calls. That
// holds because, inside a window clamped by VerifyWindow,
//
//   - no V-partition flush occurs, so every row sees the same quantized
//     VFull span (nFull) a sequential step would have seen, and the V
//     stream draws nothing;
//   - row i of the k×cache score matrix is the same dot products in the
//     same order as sequential step i, and the causal mask zeroes row
//     i's not-yet-appended columns through softmax (exp(-Inf) = 0), so
//     trailing masked terms cannot perturb any unmasked value;
//   - counted rounding consumes Q draws row-major (d_h per row) and P
//     draws row-major (nFull per row) — exactly the positions the
//     sequential steps would consume, because nFull is constant across
//     the window.
//
// Rolling back is then pure arithmetic: dropping the window's last
// `drop` rows removes drop·d_h draws from the K and Q streams and
// drop·nFull from the P stream, and the dropped V rows were still FP16
// tail rows (no flush happened), so the quantized cache is untouched.

// BatchVerifier is implemented by heads that can verify a window of
// draft tokens in one batched attention call and roll a rejected suffix
// back. The prefix-shareable HACK head is the only implementation: the
// rollback arithmetic requires the position-pure per-operand streams of
// the shared-prefix discipline.
type BatchVerifier interface {
	// CanBatchVerify reports whether this head actually runs the
	// prefix-shareable discipline (the same concrete type also serves
	// classic single-stream heads, which cannot batch-verify).
	CanBatchVerify() bool
	// VerifyWindow returns the largest window b <= k whose b appended
	// rows stay inside the open V partition (no flush, the bit-identity
	// precondition above), possibly 0 when the partition has no spare
	// slot — callers fall back to a plain Decode for that step.
	VerifyWindow(k int) int
	// DecodeBatch appends the b rows of k/v to the cache and attends
	// the b query rows in one causally-masked call. Row i's output is
	// bit-identical to the i-th of b sequential Decode calls. b > 1
	// must respect VerifyWindow.
	DecodeBatch(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error)
	// Truncate rolls the cache back to n tokens, dropping the most
	// recently appended rows. The dropped rows must still be FP16 tail
	// rows and must be the head's most recently attended rows — both
	// guaranteed when they were appended through a clamped verify
	// window.
	Truncate(n int) error
}

// CanBatchVerify implements BatchVerifier.
func (h *hackHead) CanBatchVerify() bool { return h.pf != nil }

// VerifyWindow implements BatchVerifier.
func (h *hackHead) VerifyWindow(k int) int {
	if h.pf == nil || k < 0 {
		return 0
	}
	if room := h.cfg.Pi - 1 - h.c.TailLen(); k > room {
		k = room
	}
	return k
}

// DecodeBatch implements BatchVerifier.
func (h *hackHead) DecodeBatch(q, k, v *tensor.Matrix) (*tensor.Matrix, Stats, error) {
	var st Stats
	if h.pf == nil {
		return nil, st, fmt.Errorf("attention: batched verify requires a prefix-shareable head")
	}
	b := q.Rows
	if b < 1 || k.Rows != b || v.Rows != b {
		return nil, st, fmt.Errorf("attention: verify window with q=%d k=%d v=%d rows", q.Rows, k.Rows, v.Rows)
	}
	if b > 1 && h.c.TailLen()+b > h.cfg.Pi-1 {
		return nil, st, fmt.Errorf("attention: verify window %d overflows the open partition (%d/%d tail rows); clamp with VerifyWindow",
			b, h.c.TailLen(), h.cfg.Pi)
	}
	lenBefore := h.c.Len()
	before := h.c.RequantOps
	for i := 0; i < b; i++ {
		if err := h.c.AppendToken(k.Row(i), v.Row(i)); err != nil {
			return nil, st, err
		}
	}
	st.QuantOps += 2 * 2 * int64(b) * int64(k.Cols)
	// maskOffset = lenBefore: window row i is global row lenBefore+i,
	// allowed to attend positions 0..lenBefore+i. For b == 1 the mask
	// allows every column, so the call degenerates to a plain Decode.
	out, err := h.attend(q, lenBefore, &st)
	st.RequantOps += h.c.RequantOps - before
	st.KVBytesRead = int64(h.c.Usage().Total())
	return out, st, err
}

// Truncate implements BatchVerifier.
func (h *hackHead) Truncate(n int) error {
	if h.pf == nil {
		return fmt.Errorf("attention: truncate on a non-prefix-shareable head")
	}
	drop := h.c.Len() - n
	if drop < 0 {
		return fmt.Errorf("attention: truncate to %d tokens with only %d cached", n, h.c.Len())
	}
	if drop == 0 {
		return nil
	}
	if err := h.c.TruncateTail(drop); err != nil {
		return err
	}
	if h.cfg.rounding() != quant.CountedStochasticRounding {
		// Nearest rounding draws nothing; there is no stream state to
		// rewind.
		return nil
	}
	dh := h.c.Config().HeadDim
	nFull := h.c.VFull.Rows
	h.pf.rewind(streamOpK, h.pf.kCnt.n-uint64(drop*dh))
	h.pf.rewind(streamOpQ, h.pf.qCnt.n-uint64(drop*dh))
	h.pf.rewind(streamOpP, h.pf.pCnt.n-uint64(drop)*uint64(nFull))
	return nil
}
