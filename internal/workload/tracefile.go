package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceFile is the on-disk trace format: a small header for provenance
// plus the request list, so experiment traces can be recorded once and
// replayed across methods or shared between machines.
type traceFile struct {
	Version  int       `json:"version"`
	Dataset  string    `json:"dataset"`
	RPS      float64   `json:"rps"`
	Seed     int64     `json:"seed"`
	Requests []Request `json:"requests"`
}

const traceVersion = 1

// SaveTrace writes a trace with its generation parameters as JSON.
func SaveTrace(w io.Writer, dataset string, rps float64, seed int64, reqs []Request) error {
	if len(reqs) == 0 {
		return fmt.Errorf("workload: empty trace")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{
		Version: traceVersion, Dataset: dataset, RPS: rps, Seed: seed, Requests: reqs,
	})
}

// LoadTrace reads a trace written by SaveTrace, validating version and
// request invariants (monotone arrivals, positive lengths).
func LoadTrace(r io.Reader) ([]Request, error) {
	var tf traceFile
	if err := json.NewDecoder(r).Decode(&tf); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	if tf.Version != traceVersion {
		return nil, fmt.Errorf("workload: trace version %d, want %d", tf.Version, traceVersion)
	}
	if len(tf.Requests) == 0 {
		return nil, fmt.Errorf("workload: trace has no requests")
	}
	prev := -1.0
	for i, q := range tf.Requests {
		if q.ArrivalS <= prev {
			return nil, fmt.Errorf("workload: request %d arrival %.3f not after %.3f", i, q.ArrivalS, prev)
		}
		if q.InputLen <= 0 || q.OutputLen <= 0 {
			return nil, fmt.Errorf("workload: request %d has lengths %d/%d", i, q.InputLen, q.OutputLen)
		}
		prev = q.ArrivalS
	}
	return tf.Requests, nil
}
