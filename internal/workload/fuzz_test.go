package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadTrace asserts the trace decoder's contract on arbitrary
// input: it may reject, but it must never panic, and anything it
// accepts must satisfy the trace invariants (strictly increasing
// arrivals, positive lengths).
func FuzzLoadTrace(f *testing.F) {
	// Seed with a valid trace...
	reqs, err := Trace(IMDb(), 1.0, 5, 42)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := SaveTrace(&valid, "IMDb", 1.0, 42, reqs); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// ...and structured corruptions of every validated field.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{"version":2,"requests":[{"id":0,"ArrivalS":1,"InputLen":1,"OutputLen":1}]}`))
	f.Add([]byte(`{"version":1,"requests":[{"ArrivalS":2,"InputLen":1,"OutputLen":1},{"ArrivalS":1,"InputLen":1,"OutputLen":1}]}`))
	f.Add([]byte(`{"version":1,"requests":[{"ArrivalS":1,"InputLen":-3,"OutputLen":1}]}`))
	f.Add([]byte(`{"version":1,"requests":[{"ArrivalS":1,"InputLen":1,"OutputLen":0}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(strings.Repeat("[", 64)))

	f.Fuzz(func(t *testing.T, data []byte) {
		reqs, err := LoadTrace(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		prev := -1.0
		for i, r := range reqs {
			if r.ArrivalS <= prev {
				t.Fatalf("accepted trace with non-increasing arrival at %d: %v after %v", i, r.ArrivalS, prev)
			}
			if r.InputLen <= 0 || r.OutputLen <= 0 {
				t.Fatalf("accepted trace with non-positive lengths at %d: %d/%d", i, r.InputLen, r.OutputLen)
			}
			prev = r.ArrivalS
		}
	})
}
