// Package workload generates the request traces of the evaluation. Each
// dataset matches Table 4's input/output length statistics (min, average,
// max); per the substitution rule, the actual text content is irrelevant
// to the JCT experiments — only the length distributions and the Poisson
// arrival process matter — while the numeric accuracy experiments use
// scaled-down lengths from the same shapes.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hackkv/hack/internal/registry"
)

// LengthDist describes a bounded skewed length distribution with a given
// mean: a log-normal shape truncated to [Min, Max], bias-corrected so the
// sample mean tracks Avg.
type LengthDist struct {
	Min, Avg, Max int
}

// Validate checks ordering.
func (d LengthDist) Validate() error {
	if d.Min <= 0 || d.Min > d.Avg || d.Avg > d.Max {
		return fmt.Errorf("workload: bad length dist %+v", d)
	}
	return nil
}

// Sample draws one length. The underlying draw is log-normal with σ
// chosen from the spread of the distribution, then truncated; repeated
// rejection keeps the sample inside [Min, Max].
func (d LengthDist) Sample(rng *rand.Rand) int {
	if d.Min == d.Max {
		return d.Min
	}
	mu := math.Log(float64(d.Avg))
	// Spread heuristic: ~95% of mass within [Min, Max].
	sigma := math.Log(float64(d.Max)/float64(d.Min)) / 4
	if sigma <= 0 {
		return d.Avg
	}
	// mean of lognormal = exp(mu + sigma²/2); correct mu so the mean
	// lands on Avg before truncation.
	mu -= sigma * sigma / 2
	for i := 0; i < 64; i++ {
		v := int(math.Exp(mu + sigma*rng.NormFloat64()))
		if v >= d.Min && v <= d.Max {
			return v
		}
	}
	return d.Avg
}

// Dataset is one evaluation workload (a Table 4 row).
type Dataset struct {
	Name string
	// Input and Output are the prompt and generation length
	// distributions.
	Input, Output LengthDist
	// LongSequence marks the datasets the paper calls long-sequence
	// (arXiv, Cocktail).
	LongSequence bool
	// Metric names the accuracy metric the paper uses for it.
	Metric string
}

// Table 4 rows.

// IMDb returns the IMDb genre-classification workload.
func IMDb() Dataset {
	return Dataset{Name: "IMDb",
		Input:  LengthDist{Min: 106, Avg: 315, Max: 821},
		Output: LengthDist{Min: 16, Avg: 37, Max: 87},
		Metric: "classification accuracy"}
}

// ArXiv returns the arXiv summarization workload.
func ArXiv() Dataset {
	return Dataset{Name: "arXiv",
		Input:        LengthDist{Min: 1600, Avg: 6300, Max: 14100},
		Output:       LengthDist{Min: 29, Avg: 243, Max: 464},
		LongSequence: true,
		Metric:       "ROUGE-1"}
}

// Cocktail returns the Cocktail IR workload — the paper's default.
func Cocktail() Dataset {
	return Dataset{Name: "Cocktail",
		Input:        LengthDist{Min: 9400, Avg: 16200, Max: 28800},
		Output:       LengthDist{Min: 44, Avg: 159, Max: 246},
		LongSequence: true,
		Metric:       "retrieval accuracy"}
}

// HumanEval returns the HumanEval code-completion workload.
func HumanEval() Dataset {
	return Dataset{Name: "HumanEval",
		Input:  LengthDist{Min: 75, Avg: 204, Max: 697},
		Output: LengthDist{Min: 11, Avg: 139, Max: 552},
		Metric: "edit similarity"}
}

// Registry resolves datasets by name (case-insensitive). Entries
// self-register in init; registration order is the paper's presentation
// order.
var Registry = registry.New[Dataset]("dataset")

func init() {
	for _, d := range []Dataset{IMDb(), ArXiv(), Cocktail(), HumanEval()} {
		Registry.Register(d.Name, d)
	}
}

// Datasets returns the four workloads in the paper's presentation order.
func Datasets() []Dataset { return Registry.Values() }

// ByName resolves a dataset through the registry.
func ByName(name string) (Dataset, error) { return Registry.Lookup(name) }

// CappedTo clamps the dataset's input lengths to a model context window
// (Falcon-180B's 2K cap in the paper).
func (d Dataset) CappedTo(maxContext int) Dataset {
	out := d
	clamp := func(v int) int {
		if v > maxContext {
			return maxContext
		}
		return v
	}
	out.Input.Min = clamp(out.Input.Min)
	out.Input.Avg = clamp(out.Input.Avg)
	out.Input.Max = clamp(out.Input.Max)
	return out
}

// Request is one inference job in a trace.
type Request struct {
	ID int
	// ArrivalS is the arrival time in seconds from trace start.
	ArrivalS float64
	// InputLen and OutputLen are the prompt and generation lengths.
	InputLen, OutputLen int
}

// Trace generates n requests with Poisson arrivals at the given rate
// (requests per second), drawing lengths from the dataset. The trace is
// deterministic in (dataset, rps, n, seed).
func Trace(d Dataset, rps float64, n int, seed int64) ([]Request, error) {
	if err := d.Input.Validate(); err != nil {
		return nil, err
	}
	if err := d.Output.Validate(); err != nil {
		return nil, err
	}
	if rps <= 0 || n <= 0 {
		return nil, fmt.Errorf("workload: rps %v n %d", rps, n)
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, n)
	t := 0.0
	for i := range reqs {
		t += rng.ExpFloat64() / rps
		reqs[i] = Request{
			ID:        i,
			ArrivalS:  t,
			InputLen:  d.Input.Sample(rng),
			OutputLen: d.Output.Sample(rng),
		}
	}
	return reqs, nil
}

// MeanInputLen returns the average prompt length of a trace.
func MeanInputLen(reqs []Request) float64 {
	if len(reqs) == 0 {
		return 0
	}
	var s float64
	for _, r := range reqs {
		s += float64(r.InputLen)
	}
	return s / float64(len(reqs))
}
