package workload

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestTable4Rows(t *testing.T) {
	ds := Datasets()
	if len(ds) != 4 {
		t.Fatalf("%d datasets, want 4", len(ds))
	}
	// Spot-check Table 4 values.
	if c := Cocktail(); c.Input.Avg != 16200 || c.Output.Avg != 159 || !c.LongSequence {
		t.Errorf("Cocktail row wrong: %+v", c)
	}
	if h := HumanEval(); h.Input.Min != 75 || h.Output.Max != 552 || h.LongSequence {
		t.Errorf("HumanEval row wrong: %+v", h)
	}
	for _, d := range ds {
		if err := d.Input.Validate(); err != nil {
			t.Errorf("%s input: %v", d.Name, err)
		}
		if err := d.Output.Validate(); err != nil {
			t.Errorf("%s output: %v", d.Name, err)
		}
		if d.Metric == "" {
			t.Errorf("%s has no metric", d.Name)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("arXiv")
	if err != nil || d.Input.Avg != 6300 {
		t.Errorf("ByName(arXiv) = %+v, %v", d, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestLengthDistValidate(t *testing.T) {
	if err := (LengthDist{Min: 0, Avg: 5, Max: 10}).Validate(); err == nil {
		t.Error("min=0 accepted")
	}
	if err := (LengthDist{Min: 6, Avg: 5, Max: 10}).Validate(); err == nil {
		t.Error("min>avg accepted")
	}
	if err := (LengthDist{Min: 1, Avg: 50, Max: 10}).Validate(); err == nil {
		t.Error("avg>max accepted")
	}
}

func TestSampleBoundsAndMean(t *testing.T) {
	for _, d := range Datasets() {
		rng := rand.New(rand.NewSource(1))
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			v := d.Input.Sample(rng)
			if v < d.Input.Min || v > d.Input.Max {
				t.Fatalf("%s: sample %d out of [%d,%d]", d.Name, v, d.Input.Min, d.Input.Max)
			}
			sum += float64(v)
		}
		mean := sum / n
		// Truncation biases the mean somewhat; stay within 20%.
		if math.Abs(mean-float64(d.Input.Avg)) > 0.2*float64(d.Input.Avg) {
			t.Errorf("%s: sample mean %.0f vs Table 4 avg %d", d.Name, mean, d.Input.Avg)
		}
	}
}

func TestSampleDegenerate(t *testing.T) {
	d := LengthDist{Min: 7, Avg: 7, Max: 7}
	if v := d.Sample(rand.New(rand.NewSource(1))); v != 7 {
		t.Errorf("degenerate sample = %d", v)
	}
}

func TestCappedTo(t *testing.T) {
	capped := Cocktail().CappedTo(2048)
	if capped.Input.Max != 2048 || capped.Input.Avg != 2048 || capped.Input.Min != 2048 {
		t.Errorf("capping wrong: %+v", capped.Input)
	}
	// Output lengths untouched.
	if capped.Output != Cocktail().Output {
		t.Error("capping altered outputs")
	}
	// No-op cap.
	if IMDb().CappedTo(100000).Input != IMDb().Input {
		t.Error("no-op cap altered inputs")
	}
}

func TestTraceDeterminism(t *testing.T) {
	a, err := Trace(Cocktail(), 0.1, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Trace(Cocktail(), 0.1, 50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace not deterministic")
		}
	}
	c, _ := Trace(Cocktail(), 0.1, 50, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical traces")
	}
}

func TestTraceArrivalsPoisson(t *testing.T) {
	const rps = 0.5
	reqs, err := Trace(IMDb(), rps, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals strictly increasing.
	for i := 1; i < len(reqs); i++ {
		if reqs[i].ArrivalS <= reqs[i-1].ArrivalS {
			t.Fatal("arrivals not increasing")
		}
	}
	// Mean inter-arrival ≈ 1/rps.
	mean := reqs[len(reqs)-1].ArrivalS / float64(len(reqs))
	if math.Abs(mean-1/rps) > 0.1/rps {
		t.Errorf("mean inter-arrival %.3f, want ≈ %.3f", mean, 1/rps)
	}
	// IDs sequential.
	if reqs[0].ID != 0 || reqs[4999].ID != 4999 {
		t.Error("IDs not sequential")
	}
}

func TestTraceErrors(t *testing.T) {
	if _, err := Trace(Cocktail(), 0, 10, 1); err == nil {
		t.Error("rps=0 accepted")
	}
	if _, err := Trace(Cocktail(), 0.1, 0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	bad := Cocktail()
	bad.Input.Min = 0
	if _, err := Trace(bad, 0.1, 10, 1); err == nil {
		t.Error("invalid dist accepted")
	}
}

func TestTraceProperty(t *testing.T) {
	f := func(seed int64, n8 uint8) bool {
		n := int(n8)%100 + 1
		reqs, err := Trace(ArXiv(), 0.2, n, seed)
		if err != nil || len(reqs) != n {
			return false
		}
		for _, r := range reqs {
			if r.InputLen < 1600 || r.InputLen > 14100 || r.OutputLen < 29 || r.OutputLen > 464 {
				return false
			}
			if r.ArrivalS <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeanInputLen(t *testing.T) {
	if MeanInputLen(nil) != 0 {
		t.Error("empty trace mean not 0")
	}
	reqs := []Request{{InputLen: 10}, {InputLen: 30}}
	if MeanInputLen(reqs) != 20 {
		t.Error("mean wrong")
	}
}

func TestTraceFileRoundTrip(t *testing.T) {
	reqs, err := Trace(ArXiv(), 0.5, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveTrace(&buf, "arXiv", 0.5, 3, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reqs) {
		t.Fatalf("round trip %d != %d requests", len(back), len(reqs))
	}
	for i := range reqs {
		if back[i] != reqs[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestTraceFileValidation(t *testing.T) {
	if err := SaveTrace(io.Discard, "x", 1, 1, nil); err == nil {
		t.Error("empty trace saved")
	}
	if _, err := LoadTrace(strings.NewReader("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := LoadTrace(strings.NewReader(`{"version":99,"requests":[{"ID":0,"ArrivalS":1,"InputLen":5,"OutputLen":5}]}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := LoadTrace(strings.NewReader(`{"version":1,"requests":[]}`)); err == nil {
		t.Error("empty request list accepted")
	}
	if _, err := LoadTrace(strings.NewReader(`{"version":1,"requests":[{"ID":0,"ArrivalS":2,"InputLen":5,"OutputLen":5},{"ID":1,"ArrivalS":1,"InputLen":5,"OutputLen":5}]}`)); err == nil {
		t.Error("non-monotone arrivals accepted")
	}
	if _, err := LoadTrace(strings.NewReader(`{"version":1,"requests":[{"ID":0,"ArrivalS":1,"InputLen":0,"OutputLen":5}]}`)); err == nil {
		t.Error("zero input length accepted")
	}
}
