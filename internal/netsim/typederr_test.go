package netsim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// The typed-corruption contract: every way a bit-flip can surface —
// message CRC, message head, KV frame head, KV frame body — must be
// matchable with errors.Is, because the router's retry classification
// (and the decode node's done-kind mapping) key on the sentinel, not
// the message text.

func encodeTestFrame(t *testing.T) []byte {
	t.Helper()
	f := KVFrame{
		RequestID: 7, Layer: 0, Head: 1, FirstToken: 11,
		Bits: 2, Pi: 4, KRows: 4, Cols: 4, VRows: 4,
		KCodes: []byte{1, 2, 3, 4}, VCodes: []byte{5, 6, 7, 8},
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFrameHeaderFlipsAreTypedCorruption flips one bit at every offset
// of the KV frame's 12-byte head (magic, version, length); each flip
// must surface as ErrFrameCorrupt, never as an untyped parse error.
func TestFrameHeaderFlipsAreTypedCorruption(t *testing.T) {
	raw := encodeTestFrame(t)
	origLen := binary.LittleEndian.Uint32(raw[8:])
	for off := 0; off < 12; off++ {
		for bit := 0; bit < 8; bit++ {
			if off >= 8 {
				// Length flips that stay under the 1 GiB bound allocate the
				// announced body before starving; exercise the small ones
				// and leave the multi-MiB ones out (same starved-reader
				// path, just slower).
				if n := origLen ^ 1<<(bit+8*(off-8)); n > 1<<20 && n <= maxFrameSize {
					continue
				}
			}
			mut := append([]byte(nil), raw...)
			mut[off] ^= 1 << bit
			var f KVFrame
			_, err := f.ReadFrom(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("offset %d bit %d: header flip accepted", off, bit)
			}
			// A length flip within bounds misframes the body: shrinking it
			// trips the body CRC, growing it starves the reader (an io
			// error the callers classify as a dead link). Everything else
			// must be a corruption sentinel.
			if !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, ErrChecksum) &&
				!errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				t.Fatalf("offset %d bit %d: untyped error %v", off, bit, err)
			}
			if off < 8 && !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("magic/version flip at offset %d bit %d surfaced as %v, want ErrFrameCorrupt", off, bit, err)
			}
		}
	}
}

// TestFrameBodyFlipIsChecksum pins the body side of the split: a flip
// inside the CRC-covered body is ErrChecksum, not ErrFrameCorrupt.
func TestFrameBodyFlipIsChecksum(t *testing.T) {
	raw := encodeTestFrame(t)
	mut := append([]byte(nil), raw...)
	mut[20] ^= 0x10 // inside the body
	var f KVFrame
	_, err := f.ReadFrom(bytes.NewReader(mut))
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("body flip surfaced as %v, want ErrChecksum", err)
	}
	if errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("body flip also matched ErrFrameCorrupt: %v", err)
	}
}

// TestMessageHeaderFlipsAreTyped flips bits across a wire message's
// 5-byte head ([type][len:4]): whichever check fires — invalid type,
// oversized length, CRC mismatch on the misframed remainder — the error
// must match one of the two corruption sentinels so the router retries.
func TestMessageHeaderFlipsAreTyped(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, MsgToken, []byte(`{"index":0,"id":42}`)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	msgLen := binary.LittleEndian.Uint32(raw[1:])
	for off := 0; off < 5; off++ {
		for bit := 0; bit < 8; bit++ {
			if off >= 1 {
				if n := msgLen ^ 1<<(bit+8*(off-1)); n > 1<<20 && n <= maxWireMessage {
					continue // see the frame test: skip the multi-MiB allocs
				}
			}
			mut := append([]byte(nil), raw...)
			mut[off] ^= 1 << bit
			_, _, err := ReadMessage(bytes.NewReader(mut))
			switch {
			case err == nil:
				t.Fatalf("offset %d bit %d: header flip accepted", off, bit)
			case errors.Is(err, ErrFrameCorrupt), errors.Is(err, ErrChecksum):
				// Typed either way: retryable link corruption.
			case errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, io.EOF):
				// A length flip can also leave the reader starved mid-body,
				// which the callers already classify as a dead link.
			default:
				t.Fatalf("offset %d bit %d: untyped error %v", off, bit, err)
			}
		}
	}

	// The oversized-length bound specifically is the header sentinel.
	var head [5]byte
	head[0] = byte(MsgFrame)
	head[1], head[2], head[3], head[4] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := ReadMessage(bytes.NewReader(head[:])); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("oversized length surfaced as %v, want ErrFrameCorrupt", err)
	}
	// So is an invalid type byte.
	mut := append([]byte(nil), raw...)
	mut[0] = 0xee
	if _, _, err := ReadMessage(bytes.NewReader(mut)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("invalid type byte surfaced as %v, want ErrFrameCorrupt", err)
	}
	// And a CRC-trailer flip is the checksum sentinel.
	mut = append([]byte(nil), raw...)
	mut[len(mut)-1] ^= 0x01
	if _, _, err := ReadMessage(bytes.NewReader(mut)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("CRC flip surfaced as %v, want ErrChecksum", err)
	}
}
