package netsim

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
)

func TestWireMessageRoundTrip(t *testing.T) {
	payloads := map[MsgType][]byte{
		MsgPrefill:     []byte(`{"request_id":1}`),
		MsgFrame:       bytes.Repeat([]byte{0xab}, 1000),
		MsgTransferEnd: nil,
		MsgPing:        nil,
	}
	var buf bytes.Buffer
	for typ, p := range payloads {
		buf.Reset()
		if err := WriteMessage(&buf, typ, p); err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		got, payload, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		if got != typ || !bytes.Equal(payload, p) {
			t.Fatalf("%v round-trip: got %v with %d bytes", typ, got, len(payload))
		}
	}
}

func TestWireMessageRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, MsgToken, []byte(`{"id":42}`)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one payload byte: the CRC trailer must catch it.
	mut := append([]byte(nil), raw...)
	mut[7] ^= 0x01
	if _, _, err := ReadMessage(bytes.NewReader(mut)); err == nil ||
		!strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt payload accepted: %v", err)
	}

	// Flip the type byte: either an unknown type or a checksum failure.
	mut = append([]byte(nil), raw...)
	mut[0] = 0xee
	if _, _, err := ReadMessage(bytes.NewReader(mut)); err == nil {
		t.Fatal("corrupt type accepted")
	}

	// Oversized length field fails before allocating.
	var head [5]byte
	head[0] = byte(MsgFrame)
	head[1], head[2], head[3], head[4] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := ReadMessage(bytes.NewReader(head[:])); err == nil ||
		!strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversized length accepted: %v", err)
	}

	// Truncation surfaces an io error, not a panic.
	if _, _, err := ReadMessage(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatal("truncated message accepted")
	}
	if _, _, err := ReadMessage(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: %v", err)
	}
}

func TestWireMessageRejectsInvalidType(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, msgTypeEnd, nil); err == nil {
		t.Fatal("sent a message past the valid type range")
	}
	if err := WriteMessage(&buf, 0, nil); err == nil {
		t.Fatal("sent message type 0")
	}
}

func TestHandshake(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	initiator := Hello{Role: "router", NodeID: "r0", Method: "hack-pi64",
		ModelSeed: 7, SpecName: "toy", Vocab: 128}
	responder := Hello{Role: "decode", NodeID: "d0", Method: "hack-pi64",
		ModelSeed: 7, SpecName: "toy", Vocab: 128, HTTPAddr: "127.0.0.1:9999"}

	done := make(chan error, 1)
	var gotPeer Hello
	go func() {
		peer, err := AcceptHandshake(server, responder, func(h Hello) error {
			if h.Method != responder.Method {
				return errors.New("method mismatch")
			}
			return nil
		})
		gotPeer = peer
		done <- err
	}()
	peer, err := Handshake(client, initiator)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if peer.Role != "decode" || peer.NodeID != "d0" || peer.HTTPAddr != "127.0.0.1:9999" {
		t.Fatalf("initiator saw peer %+v", peer)
	}
	if gotPeer.Role != "router" || gotPeer.NodeID != "r0" {
		t.Fatalf("responder saw peer %+v", gotPeer)
	}

	// Keepalive after the handshake.
	pingDone := make(chan error, 1)
	go func() {
		typ, _, err := ReadMessage(server)
		if err == nil && typ != MsgPing {
			err = errors.New("expected ping")
		}
		if err == nil {
			err = WriteMessage(server, MsgPong, nil)
		}
		pingDone <- err
	}()
	if err := Ping(client); err != nil {
		t.Fatal(err)
	}
	if err := <-pingDone; err != nil {
		t.Fatal(err)
	}
}

func TestHandshakeRejectsMismatch(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	initErr := make(chan error, 1)
	go func() {
		_, err := Handshake(client, Hello{Role: "router", Method: "fp16"})
		initErr <- err
	}()
	_, err := AcceptHandshake(server, Hello{Role: "decode", Method: "hack-pi64"},
		func(h Hello) error {
			if h.Method != "hack-pi64" {
				return errors.New("method mismatch: " + h.Method)
			}
			return nil
		})
	if err == nil || !strings.Contains(err.Error(), "method mismatch") {
		t.Fatalf("mismatched handshake accepted: %v", err)
	}
	// The initiator learns it was refused (not that the peer died), with
	// the responder's reason attached.
	if err := <-initErr; !errors.Is(err, ErrHandshakeRefused) ||
		!strings.Contains(err.Error(), "method mismatch") {
		t.Fatalf("initiator saw %v, want ErrHandshakeRefused with reason", err)
	}
}

func TestParseHelloRejectsBadVersionAndMagic(t *testing.T) {
	if _, err := ParseHello([]byte(`{"magic":1,"version":1}`)); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ParseHello([]byte(`{"magic":1212236619,"version":99}`)); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := ParseHello([]byte(`not json`)); err == nil {
		t.Fatal("non-JSON hello accepted")
	}
}

// TestFrameVersionCompat covers the v1↔v2 frame codec split: default
// frames encode as v2 carrying RNGDraws; explicit v1 frames encode the
// legacy layout and decode with RNGDraws 0; RNGDraws on a v1 frame is a
// refusal, not silent truncation.
func TestFrameVersionCompat(t *testing.T) {
	base := KVFrame{
		RequestID: 3, Layer: 1, Head: 0, FirstToken: 55,
		Bits: 2, Pi: 4, KRows: 4, Cols: 4, VRows: 4,
		KCodes: []byte{1, 2, 3, 4}, VCodes: []byte{5, 6, 7, 8},
	}

	v2 := base
	v2.RNGDraws = 123456
	var buf bytes.Buffer
	if _, err := v2.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got KVFrame
	if _, err := got.ReadFrom(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 || got.RNGDraws != 123456 {
		t.Fatalf("v2 round-trip: version %d draws %d", got.Version, got.RNGDraws)
	}

	v1 := base
	v1.Version = 1
	buf.Reset()
	if _, err := v1.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	v1bytes := append([]byte(nil), buf.Bytes()...)
	got = KVFrame{RNGDraws: 999} // stale state must be cleared by decode
	if _, err := got.ReadFrom(bytes.NewReader(v1bytes)); err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 || got.RNGDraws != 0 {
		t.Fatalf("v1 decode: version %d draws %d", got.Version, got.RNGDraws)
	}
	// A decoded v1 frame re-serializes canonically (stays v1).
	buf.Reset()
	if _, err := got.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), v1bytes) {
		t.Fatal("v1 frame did not re-serialize canonically")
	}

	bad := base
	bad.Version = 1
	bad.RNGDraws = 1
	if _, err := bad.WriteTo(io.Discard); err == nil {
		t.Fatal("v1 frame with RNG draws encoded silently")
	}
	bad = base
	bad.Version = 9
	if _, err := bad.WriteTo(io.Discard); err == nil {
		t.Fatal("unknown version encoded silently")
	}
}
