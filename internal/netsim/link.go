package netsim

import (
	"fmt"
	"math"
)

// SharedLink models a receiver NIC whose bandwidth is processor-shared
// among concurrent transfers: with n transfers in flight each progresses
// at capacity/n, which is how concurrent NCCL streams into one decode
// instance behave at the paper's scale. The discrete-event simulator
// drives it with Start / AdvanceTo / NextCompletion.
type SharedLink struct {
	capacityBps float64
	perCapBps   float64
	now         float64
	transfers   map[int]*transfer
	nextID      int
}

type transfer struct {
	remaining float64 // bytes
}

// NewSharedLink creates a link with the given aggregate capacity in
// bytes/second. Each individual transfer is additionally capped at
// perTransferCapBps (the sender's NIC); pass 0 for no per-transfer cap.
func NewSharedLink(capacityBps, perTransferCapBps float64) (*SharedLink, error) {
	if capacityBps <= 0 {
		return nil, fmt.Errorf("netsim: link capacity %v", capacityBps)
	}
	if perTransferCapBps < 0 {
		return nil, fmt.Errorf("netsim: per-transfer cap %v", perTransferCapBps)
	}
	if perTransferCapBps == 0 || perTransferCapBps > capacityBps {
		perTransferCapBps = capacityBps
	}
	return &SharedLink{capacityBps: capacityBps, perCapBps: perTransferCapBps,
		transfers: map[int]*transfer{}}, nil
}

// rate returns the current per-transfer rate: fair share, capped by the
// sender NIC.
func (l *SharedLink) rate() float64 {
	r := l.capacityBps / float64(len(l.transfers))
	if r > l.perCapBps {
		r = l.perCapBps
	}
	return r
}

// Active returns the number of in-flight transfers.
func (l *SharedLink) Active() int { return len(l.transfers) }

// Now returns the link's internal clock.
func (l *SharedLink) Now() float64 { return l.now }

// AdvanceTo moves the clock forward, progressing all transfers at their
// fair share. Completions are not removed here; callers poll
// NextCompletion and call Finish.
func (l *SharedLink) AdvanceTo(t float64) error {
	if t < l.now {
		return fmt.Errorf("netsim: time went backwards %.6f -> %.6f", l.now, t)
	}
	if len(l.transfers) > 0 {
		rate := l.rate()
		elapsed := t - l.now
		for _, tr := range l.transfers {
			tr.remaining -= rate * elapsed
			if tr.remaining < 0 {
				tr.remaining = 0
			}
		}
	}
	l.now = t
	return nil
}

// Start begins a transfer of the given size at the current clock and
// returns its handle.
func (l *SharedLink) Start(bytes float64) (int, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("netsim: negative transfer %v", bytes)
	}
	id := l.nextID
	l.nextID++
	l.transfers[id] = &transfer{remaining: bytes}
	return id, nil
}

// NextCompletion returns the id and absolute time of the next transfer
// to finish under fair sharing, assuming no further arrivals. ok is
// false when the link is idle.
func (l *SharedLink) NextCompletion() (id int, at float64, ok bool) {
	if len(l.transfers) == 0 {
		return 0, 0, false
	}
	minRemaining := math.Inf(1)
	for tid, tr := range l.transfers {
		if tr.remaining < minRemaining || (tr.remaining == minRemaining && tid < id) {
			minRemaining = tr.remaining
			id = tid
		}
	}
	return id, l.now + minRemaining/l.rate(), true
}

// Finish removes a completed (or cancelled) transfer.
func (l *SharedLink) Finish(id int) error {
	if _, ok := l.transfers[id]; !ok {
		return fmt.Errorf("netsim: unknown transfer %d", id)
	}
	delete(l.transfers, id)
	return nil
}

// Remaining reports a transfer's remaining bytes.
func (l *SharedLink) Remaining(id int) (float64, error) {
	tr, ok := l.transfers[id]
	if !ok {
		return 0, fmt.Errorf("netsim: unknown transfer %d", id)
	}
	return tr.remaining, nil
}
