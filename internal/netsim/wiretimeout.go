package netsim

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// ErrWireTimeout means a framed read or write missed its deadline — the
// peer is half-open (alive at the TCP level but not making protocol
// progress). Callers should treat the connection as dead: a frame may
// have been consumed partially, so the stream can no longer be resynced.
var ErrWireTimeout = errors.New("netsim: wire timeout")

// ReadMessageTimeout is ReadMessage with a per-frame deadline: it arms
// conn's read deadline, parses one message, and disarms the deadline
// before returning. A missed deadline surfaces as an error wrapping
// ErrWireTimeout. d <= 0 reads without a deadline.
//
// This is the half-open-peer guard: a bare ReadMessage on a peer that
// stops sending mid-frame blocks forever, wedging the goroutine that
// owns the transfer.
func ReadMessageTimeout(conn net.Conn, d time.Duration) (MsgType, []byte, error) {
	if d <= 0 {
		return ReadMessage(conn)
	}
	if err := conn.SetReadDeadline(time.Now().Add(d)); err != nil {
		return 0, nil, err
	}
	t, payload, err := ReadMessage(conn)
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil && isTimeout(err) {
		return 0, nil, fmt.Errorf("%w: read %v after %v: %v", ErrWireTimeout, t, d, err)
	}
	return t, payload, err
}

// WriteMessageTimeout is WriteMessage with a per-frame deadline; see
// ReadMessageTimeout. d <= 0 writes without a deadline.
func WriteMessageTimeout(conn net.Conn, d time.Duration, t MsgType, payload []byte) error {
	if d <= 0 {
		return WriteMessage(conn, t, payload)
	}
	if err := conn.SetWriteDeadline(time.Now().Add(d)); err != nil {
		return err
	}
	err := WriteMessage(conn, t, payload)
	_ = conn.SetWriteDeadline(time.Time{})
	if err != nil && isTimeout(err) {
		return fmt.Errorf("%w: write %v after %v: %v", ErrWireTimeout, t, d, err)
	}
	return err
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
