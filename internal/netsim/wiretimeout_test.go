package netsim

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestReadMessageTimeoutHalfOpenPeer is the half-open regression: a peer
// that sends part of a frame and then goes silent must not block the
// reader forever.
func TestReadMessageTimeoutHalfOpenPeer(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	go func() {
		// Half a header, then silence: the reader is mid-frame.
		b.Write([]byte{byte(MsgFrame), 0xff})
	}()

	start := time.Now()
	_, _, err := ReadMessageTimeout(a, 50*time.Millisecond)
	if err == nil {
		t.Fatal("read of half-open peer succeeded")
	}
	if !errors.Is(err, ErrWireTimeout) {
		t.Fatalf("error %v does not wrap ErrWireTimeout", err)
	}
	if since := time.Since(start); since < 40*time.Millisecond || since > 5*time.Second {
		t.Fatalf("timed out after %v, want ~50ms", since)
	}
}

func TestReadMessageTimeoutPassesCleanFrames(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	payload := []byte("prompt bytes")
	go func() {
		if err := WriteMessageTimeout(b, time.Second, MsgToken, payload); err != nil {
			t.Error(err)
		}
	}()
	mt, got, err := ReadMessageTimeout(a, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgToken || string(got) != string(payload) {
		t.Fatalf("got (%v, %q)", mt, got)
	}

	// After a successful framed read the deadline must be disarmed:
	// an idle wait longer than the frame deadline still succeeds.
	go func() {
		time.Sleep(80 * time.Millisecond)
		WriteMessage(b, MsgPing, nil)
	}()
	if mt, _, err = ReadMessage(a); err != nil || mt != MsgPing {
		t.Fatalf("idle read after framed read: (%v, %v) — deadline left armed?", mt, err)
	}
}

func TestWriteMessageTimeoutStalledPeer(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	// net.Pipe is unbuffered: a write with no reader stalls immediately.
	err := WriteMessageTimeout(a, 50*time.Millisecond, MsgFrame, make([]byte, 1024))
	if err == nil {
		t.Fatal("write to stalled peer succeeded")
	}
	if !errors.Is(err, ErrWireTimeout) {
		t.Fatalf("error %v does not wrap ErrWireTimeout", err)
	}
}

func TestMessageTimeoutZeroMeansNoDeadline(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	go func() {
		time.Sleep(30 * time.Millisecond)
		WriteMessage(b, MsgPong, nil)
	}()
	mt, _, err := ReadMessageTimeout(a, 0)
	if err != nil || mt != MsgPong {
		t.Fatalf("got (%v, %v)", mt, err)
	}
}
