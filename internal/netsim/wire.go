package netsim

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// The live wire protocol between disaggregated serving roles. A
// connection starts with a versioned handshake (MsgHello / MsgHelloAck
// carrying a Hello JSON payload) and then exchanges length-prefixed,
// CRC-trailed messages:
//
//	[type:1][len:4 LE][payload][crc32(type‖payload):4 LE]
//
// KV payloads (MsgFrame) embed a KVFrame's own serialized bytes, so the
// quantized-cache framing that the simulator priced is exactly what
// crosses the real TCP link.

// WireVersion is the handshake protocol version.
const WireVersion = 1

// wireMagic guards the handshake so a stray client speaking another
// protocol is rejected on the first message.
const wireMagic = 0x4841434B // "HACK"

// maxWireMessage bounds one message's payload; KV frames dominate and
// are themselves bounded by maxFrameSize.
const maxWireMessage = maxFrameSize + 1024

// MsgType identifies a wire message.
type MsgType uint8

// Wire message types. The request payloads are JSON (PrefillJob /
// DecodeJob / TokenMsg / DoneMsg below); MsgFrame carries KVFrame bytes;
// MsgPing/MsgPong are empty keepalives.
const (
	MsgHello MsgType = iota + 1
	MsgHelloAck
	MsgPrefill     // router → prefill: PrefillJob
	MsgDecode      // router → decode: DecodeJob
	MsgFrame       // KV transfer: one serialized KVFrame
	MsgTransferEnd // KV transfer complete (empty payload)
	MsgToken       // decode → router: TokenMsg
	MsgDone        // terminal: DoneMsg
	MsgPing
	MsgPong
	MsgHelloErr // responder → initiator: handshake refused; payload is the reason
	// Prefix-cache tier protocol (client = a serving runtime, server = a
	// shared cache node). Lookup: client sends MsgPrefixLookup; server
	// replies MsgPrefixHit, then streams each matched block's frames as
	// MsgFrame messages, terminated by MsgTransferEnd. Insert: client
	// sends MsgPrefixInsert; the server replies one MsgPrefixNeed per
	// block it is missing (the client answers each with that block's
	// frames + MsgTransferEnd) and closes with MsgPrefixDone.
	MsgPrefixLookup // client → cache: PrefixLookupMsg
	MsgPrefixHit    // cache → client: PrefixHitMsg, then frames
	MsgPrefixInsert // client → cache: PrefixInsertMsg
	MsgPrefixNeed   // cache → client: PrefixNeedMsg (one missing block)
	MsgPrefixDone   // cache → client: PrefixDoneMsg (insert complete)
	MsgPrefixStats  // client → cache (empty), cache → client: stats JSON
	msgTypeEnd      // sentinel: first invalid type
)

func (t MsgType) valid() bool { return t >= MsgHello && t < msgTypeEnd }

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgHelloAck:
		return "hello-ack"
	case MsgPrefill:
		return "prefill"
	case MsgDecode:
		return "decode"
	case MsgFrame:
		return "frame"
	case MsgTransferEnd:
		return "transfer-end"
	case MsgToken:
		return "token"
	case MsgDone:
		return "done"
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgHelloErr:
		return "hello-err"
	case MsgPrefixLookup:
		return "prefix-lookup"
	case MsgPrefixHit:
		return "prefix-hit"
	case MsgPrefixInsert:
		return "prefix-insert"
	case MsgPrefixNeed:
		return "prefix-need"
	case MsgPrefixDone:
		return "prefix-done"
	case MsgPrefixStats:
		return "prefix-stats"
	default:
		return fmt.Sprintf("msg(%d)", uint8(t))
	}
}

// WriteMessage frames one message onto w.
func WriteMessage(w io.Writer, t MsgType, payload []byte) error {
	if !t.valid() {
		return fmt.Errorf("netsim: cannot send message type %d", t)
	}
	if len(payload) > maxWireMessage {
		return fmt.Errorf("netsim: message payload %d exceeds limit", len(payload))
	}
	head := make([]byte, 5)
	head[0] = byte(t)
	binary.LittleEndian.PutUint32(head[1:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	_, _ = crc.Write(head[:1])
	_, _ = crc.Write(payload)
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := w.Write(head); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	_, err := w.Write(trailer[:])
	return err
}

// ReadMessage parses one message off r, verifying the type, the length
// bound, and the CRC trailer. Corrupt input errors; it never panics.
func ReadMessage(r io.Reader) (MsgType, []byte, error) {
	var head [5]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, nil, err
	}
	t := MsgType(head[0])
	if !t.valid() {
		// The type byte is covered by the CRC, but a flip that lands on an
		// invalid type is detected here first; it is the same link fault as
		// a checksum mismatch, so it carries the same typed classification.
		return 0, nil, fmt.Errorf("%w: unknown message type %d", ErrFrameCorrupt, head[0])
	}
	n := binary.LittleEndian.Uint32(head[1:])
	if n > maxWireMessage {
		// The length field sits outside the CRC: a bit-flip there is only
		// catchable by this bound (or by the misframed body failing its
		// CRC), so it must be typed as corruption, not a protocol error.
		return 0, nil, fmt.Errorf("%w: message length %d exceeds limit", ErrFrameCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	var trailer [4]byte
	if _, err := io.ReadFull(r, trailer[:]); err != nil {
		return 0, nil, err
	}
	crc := crc32.NewIEEE()
	_, _ = crc.Write(head[:1])
	_, _ = crc.Write(payload)
	if crc.Sum32() != binary.LittleEndian.Uint32(trailer[:]) {
		return 0, nil, ErrChecksum
	}
	return t, payload, nil
}

// ErrChecksum means a message arrived with a CRC mismatch — the link is
// corrupting bytes. The stream cannot be resynced (framing is lost), so
// callers must drop the connection; retrying over a fresh one can help.
var ErrChecksum = errors.New("netsim: message checksum mismatch")

// Hello is the handshake payload both ends exchange before any other
// message. The responder validates compatibility (version, model,
// method) and advertises its HTTP address so routers can poll /healthz
// without separate peer configuration.
type Hello struct {
	Magic   uint32 `json:"magic"`
	Version int    `json:"version"`
	// Role is the speaker's serving role ("router", "prefill", "decode").
	Role string `json:"role"`
	// NodeID names the node (host:port of its wire listener by default).
	NodeID string `json:"node_id"`
	// Method/ModelSeed/SpecName/Vocab describe the served deployment;
	// peers refuse mismatched configurations at connect time instead of
	// producing silently divergent streams.
	Method    string `json:"method"`
	ModelSeed int64  `json:"model_seed"`
	SpecName  string `json:"spec_name"`
	Vocab     int    `json:"vocab"`
	// HTTPAddr is the node's HTTP endpoint (metrics + health), if any.
	HTTPAddr string `json:"http_addr,omitempty"`
}

// ParseHello decodes and validates a handshake payload.
func ParseHello(payload []byte) (Hello, error) {
	var h Hello
	if err := json.Unmarshal(payload, &h); err != nil {
		return Hello{}, fmt.Errorf("netsim: handshake: %w", err)
	}
	if h.Magic != wireMagic {
		return Hello{}, errors.New("netsim: handshake magic mismatch")
	}
	if h.Version != WireVersion {
		return Hello{}, fmt.Errorf("netsim: handshake version %d, want %d", h.Version, WireVersion)
	}
	return h, nil
}

// seal stamps the magic and version before sending.
func (h Hello) seal() Hello {
	h.Magic = wireMagic
	h.Version = WireVersion
	return h
}

// ErrHandshakeRefused means the responder rejected this node's Hello —
// a protocol-level refusal (incompatible deployment), as opposed to a
// transport failure. Redialing will not help.
var ErrHandshakeRefused = errors.New("netsim: handshake refused")

// Handshake runs the initiator side: send MsgHello, await MsgHelloAck,
// and return the responder's validated identity. A MsgHelloErr reply
// surfaces as an error wrapping ErrHandshakeRefused.
func Handshake(rw io.ReadWriter, self Hello) (Hello, error) {
	payload, err := json.Marshal(self.seal())
	if err != nil {
		return Hello{}, err
	}
	if err := WriteMessage(rw, MsgHello, payload); err != nil {
		return Hello{}, err
	}
	t, ack, err := ReadMessage(rw)
	if err != nil {
		return Hello{}, err
	}
	if t == MsgHelloErr {
		return Hello{}, fmt.Errorf("%w: %s", ErrHandshakeRefused, ack)
	}
	if t != MsgHelloAck {
		return Hello{}, fmt.Errorf("netsim: handshake got %v, want %v", t, MsgHelloAck)
	}
	return ParseHello(ack)
}

// AcceptHandshake runs the responder side: await MsgHello, validate it
// (and the optional check), and reply MsgHelloAck with self.
func AcceptHandshake(rw io.ReadWriter, self Hello, check func(Hello) error) (Hello, error) {
	t, payload, err := ReadMessage(rw)
	if err != nil {
		return Hello{}, err
	}
	if t != MsgHello {
		return Hello{}, fmt.Errorf("netsim: handshake got %v, want %v", t, MsgHello)
	}
	peer, err := ParseHello(payload)
	if err != nil {
		return Hello{}, err
	}
	if check != nil {
		if err := check(peer); err != nil {
			// Tell the initiator it was refused (vs a dead peer) so it
			// doesn't redial; best-effort, the check error is what matters.
			_ = WriteMessage(rw, MsgHelloErr, []byte(err.Error()))
			return Hello{}, err
		}
	}
	ack, err := json.Marshal(self.seal())
	if err != nil {
		return Hello{}, err
	}
	if err := WriteMessage(rw, MsgHelloAck, ack); err != nil {
		return Hello{}, err
	}
	return peer, nil
}

// Ping sends a keepalive and waits for the pong.
func Ping(rw io.ReadWriter) error {
	if err := WriteMessage(rw, MsgPing, nil); err != nil {
		return err
	}
	t, _, err := ReadMessage(rw)
	if err != nil {
		return err
	}
	if t != MsgPong {
		return fmt.Errorf("netsim: ping answered with %v", t)
	}
	return nil
}
