package netsim

import (
	"bytes"
	"math"
	"math/rand"
	"net"
	"testing"
	"testing/quick"

	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

func buildFrame(t *testing.T, seed int64) *KVFrame {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cfg := quant.Config{Bits: 2, Partition: 16, Rounding: quant.StochasticRounding, RNG: rng}
	k := quant.MustQuantize(tensor.RandNormal(rng, 40, 32, 1), quant.AlongCols, cfg)
	v := quant.MustQuantize(tensor.RandNormal(rng, 32, 32, 1), quant.AlongRows, cfg)
	tail := make([]float32, 5*32)
	for i := range tail {
		tail[i] = float32(rng.NormFloat64())
	}
	f, err := FrameFromTensors(77, 3, 9, 12345, k, v, tail)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func framesEqual(a, b *KVFrame) bool {
	if a.RequestID != b.RequestID || a.Layer != b.Layer || a.Head != b.Head ||
		a.FirstToken != b.FirstToken || a.Bits != b.Bits || a.Pi != b.Pi ||
		a.KRows != b.KRows || a.Cols != b.Cols || a.VRows != b.VRows || a.TailRows != b.TailRows {
		return false
	}
	if !bytes.Equal(a.KCodes, b.KCodes) || !bytes.Equal(a.VCodes, b.VCodes) {
		return false
	}
	for i := range a.KMin {
		if a.KMin[i] != b.KMin[i] || a.KScale[i] != b.KScale[i] {
			return false
		}
	}
	for i := range a.VMin {
		if a.VMin[i] != b.VMin[i] || a.VScale[i] != b.VScale[i] {
			return false
		}
	}
	for i := range a.Tail {
		if a.Tail[i] != b.Tail[i] {
			return false
		}
	}
	return len(a.KMin) == len(b.KMin) && len(a.VMin) == len(b.VMin) && len(a.Tail) == len(b.Tail)
}

func TestFrameRoundTripBuffer(t *testing.T) {
	f := buildFrame(t, 1)
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	var g KVFrame
	m, err := g.ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Errorf("ReadFrom consumed %d bytes, want %d", m, n)
	}
	if !framesEqual(f, &g) {
		t.Error("round trip mismatch")
	}
}

// The protocol must work over a real byte stream: drive it through
// net.Pipe with a concurrent writer, as a prefill→decode connection
// would.
func TestFrameOverNetPipe(t *testing.T) {
	client, server := net.Pipe()
	f := buildFrame(t, 2)
	errc := make(chan error, 1)
	go func() {
		defer client.Close()
		_, err := f.WriteTo(client)
		errc <- err
	}()
	var g KVFrame
	if _, err := g.ReadFrom(server); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !framesEqual(f, &g) {
		t.Error("net.Pipe round trip mismatch")
	}
}

func TestFrameCorruptionDetected(t *testing.T) {
	f := buildFrame(t, 3)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), raw...)
	bad[20] ^= 0xFF
	var g KVFrame
	if _, err := g.ReadFrom(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted payload accepted")
	}

	// Bad magic.
	bad2 := append([]byte(nil), raw...)
	bad2[0] = 0
	if _, err := g.ReadFrom(bytes.NewReader(bad2)); err == nil {
		t.Error("bad magic accepted")
	}

	// Truncated stream.
	if _, err := g.ReadFrom(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestFrameFromTensorsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg2 := quant.Config{Bits: 2, Partition: 16, Rounding: quant.NearestRounding}
	cfg4 := quant.Config{Bits: 4, Partition: 16, Rounding: quant.NearestRounding}
	k := quant.MustQuantize(tensor.RandNormal(rng, 8, 16, 1), quant.AlongCols, cfg2)
	vBad := quant.MustQuantize(tensor.RandNormal(rng, 8, 16, 1), quant.AlongRows, cfg4)
	if _, err := FrameFromTensors(1, 0, 0, 0, k, vBad, nil); err == nil {
		t.Error("bit mismatch accepted")
	}
	v := quant.MustQuantize(tensor.RandNormal(rng, 8, 16, 1), quant.AlongRows, cfg2)
	if _, err := FrameFromTensors(1, 0, 0, 0, k, v, make([]float32, 3)); err == nil {
		t.Error("ragged tail accepted")
	}
}

func TestFrameWireSizeTracksQuantizedPayload(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := quant.Config{Bits: 2, Partition: 64, Rounding: quant.StochasticRounding, RNG: rng}
	const l, dh = 1024, 128
	k := quant.MustQuantize(tensor.RandNormal(rng, l, dh, 1), quant.AlongCols, cfg)
	v := quant.MustQuantize(tensor.RandNormal(rng, l, dh, 1), quant.AlongRows, cfg)
	f, err := FrameFromTensors(1, 0, 0, 0, k, v, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Wire size ≈ codes + metadata: well under FP16 (4·l·d_h bytes) and
	// only a few percent above the raw quantized payload.
	fp16Size := int64(4 * l * dh)
	payload := int64(k.Size(false).Total() + v.Size(false).Total())
	if n > fp16Size/5 {
		t.Errorf("frame %d bytes too close to FP16 %d", n, fp16Size)
	}
	if n < payload || n > payload+payload/10 {
		t.Errorf("frame %d bytes vs quantized payload %d: framing overhead out of band", n, payload)
	}
}

func TestSharedLinkSingleTransfer(t *testing.T) {
	l, err := NewSharedLink(100, 0) // 100 B/s
	if err != nil {
		t.Fatal(err)
	}
	id, err := l.Start(500)
	if err != nil {
		t.Fatal(err)
	}
	cid, at, ok := l.NextCompletion()
	if !ok || cid != id || math.Abs(at-5) > 1e-9 {
		t.Fatalf("completion %d at %v, want %d at 5", cid, at, id)
	}
	if err := l.AdvanceTo(at); err != nil {
		t.Fatal(err)
	}
	if rem, _ := l.Remaining(id); rem != 0 {
		t.Errorf("remaining %v after completion time", rem)
	}
	if err := l.Finish(id); err != nil {
		t.Fatal(err)
	}
	if l.Active() != 0 {
		t.Error("transfer not removed")
	}
}

// Two equal transfers share the link: each takes twice as long; after
// one finishes, the survivor speeds up. Classic processor sharing.
func TestSharedLinkFairSharing(t *testing.T) {
	l, _ := NewSharedLink(100, 0)
	a, _ := l.Start(300)
	if err := l.AdvanceTo(1); err != nil { // a alone for 1s: 100 B done
		t.Fatal(err)
	}
	b, _ := l.Start(300)
	// a has 200 left, b 300; shared rate 50 B/s each → a finishes at
	// t=1+4=5; then b has 300−200=100 left at full rate → t=6.
	cid, at, _ := l.NextCompletion()
	if cid != a || math.Abs(at-5) > 1e-9 {
		t.Fatalf("first completion %d at %v, want %d at 5", cid, at, a)
	}
	l.AdvanceTo(at)
	l.Finish(a)
	cid, at, _ = l.NextCompletion()
	if cid != b || math.Abs(at-6) > 1e-9 {
		t.Fatalf("second completion %d at %v, want %d at 6", cid, at, b)
	}
}

// A single transfer cannot exceed the sender cap even when it has the
// link to itself; with many transfers the aggregate capacity binds.
func TestSharedLinkPerTransferCap(t *testing.T) {
	l, err := NewSharedLink(100, 25)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := l.Start(50)
	_, at, _ := l.NextCompletion()
	if math.Abs(at-2) > 1e-9 { // 50 B at 25 B/s, not 100 B/s
		t.Fatalf("capped completion at %v, want 2", at)
	}
	// Six concurrent transfers: fair share 100/6 < cap 25.
	for i := 0; i < 5; i++ {
		l.Start(50)
	}
	_, at, _ = l.NextCompletion()
	want := 50 / (100.0 / 6.0)
	if math.Abs(at-want) > 1e-9 {
		t.Fatalf("shared completion at %v, want %v", at, want)
	}
	_ = a
}

func TestSharedLinkErrors(t *testing.T) {
	if _, err := NewSharedLink(0, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewSharedLink(10, -1); err == nil {
		t.Error("negative per-transfer cap accepted")
	}
	l, _ := NewSharedLink(10, 0)
	if _, err := l.Start(-1); err == nil {
		t.Error("negative size accepted")
	}
	if err := l.Finish(99); err == nil {
		t.Error("unknown finish accepted")
	}
	if _, err := l.Remaining(99); err == nil {
		t.Error("unknown remaining accepted")
	}
	l.AdvanceTo(5)
	if err := l.AdvanceTo(1); err == nil {
		t.Error("time reversal accepted")
	}
	if _, _, ok := l.NextCompletion(); ok {
		t.Error("idle link reported a completion")
	}
}

// Conservation property: total bytes delivered equals total bytes
// started, regardless of the arrival pattern.
func TestSharedLinkConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l, _ := NewSharedLink(1000, 0)
		var started float64
		active := map[int]bool{}
		for step := 0; step < 40; step++ {
			if rng.Float64() < 0.6 || len(active) == 0 {
				size := 10 + rng.Float64()*500
				id, err := l.Start(size)
				if err != nil {
					return false
				}
				started += size
				active[id] = true
			} else {
				id, at, ok := l.NextCompletion()
				if !ok {
					continue
				}
				if err := l.AdvanceTo(at); err != nil {
					return false
				}
				if rem, _ := l.Remaining(id); math.Abs(rem) > 1e-6 {
					return false
				}
				l.Finish(id)
				delete(active, id)
			}
		}
		// Drain.
		for len(active) > 0 {
			id, at, ok := l.NextCompletion()
			if !ok {
				return false
			}
			l.AdvanceTo(at)
			l.Finish(id)
			delete(active, id)
		}
		// Everything delivered: elapsed × capacity ≥ started (equality
		// when the link never idles; ≥ due to idle gaps).
		return l.Now()*1000 >= started-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFrameWrite(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cfg := quant.Config{Bits: 2, Partition: 64, Rounding: quant.StochasticRounding, RNG: rng}
	k := quant.MustQuantize(tensor.RandNormal(rng, 2048, 128, 1), quant.AlongCols, cfg)
	v := quant.MustQuantize(tensor.RandNormal(rng, 2048, 128, 1), quant.AlongRows, cfg)
	f, err := FrameFromTensors(1, 0, 0, 0, k, v, nil)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if _, err := f.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}
