// Package netsim provides the networking substrate of the disaggregated
// deployment: a byte-accurate wire format for shipping quantized KV
// state between prefill and decode instances (the role NCCL plays in the
// paper, §6), and a processor-sharing link model that the discrete-event
// simulator uses to price concurrent transfers.
//
// The framing codec is real — it serializes actual quantized tensors and
// round-trips over any io stream (tests drive it through net.Pipe) — so
// the byte counts fed to the transfer model are measured, not assumed.
package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/hackkv/hack/internal/fp16"
	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// Frame magic and versions for the KV transfer protocol. Version 2
// extends version 1 with a per-head RNG draw count (RNGDraws) so a
// decode instance can fast-forward its stochastic-rounding RNG to the
// prefill instance's state; version-1 frames still decode (RNGDraws 0).
const (
	frameMagic     = 0x48414B56 // "HAKV"
	frameVersionV1 = 1
	frameVersionV2 = 2
	// maxFrameSize bounds a single frame's payload (1 GiB) to fail fast
	// on corrupted length fields.
	maxFrameSize = 1 << 30
)

// KVFrame is one head's prefill→decode payload (⑦ in Fig. 5): the
// quantized codes, the FP16 min/scale metadata, the first generated
// token, and the RQE FP16 tail.
type KVFrame struct {
	// Version is the wire version the frame was decoded from (or will be
	// encoded as): 1 or 2. The zero value encodes as the current version
	// (2); ReadFrom records what it actually parsed so accepted frames
	// re-serialize canonically.
	Version uint32
	// RequestID and Layer/Head locate the payload.
	RequestID   uint64
	Layer, Head uint16
	// FirstToken is the prefill-stage output token.
	FirstToken uint32
	// RNGDraws counts the quantizer RNG draws the prefill side consumed
	// for this head, so the decode side can replay them and continue the
	// stream bit-identically (version ≥ 2 only; zero on v1 frames).
	RNGDraws uint64
	// Bits and Pi describe the quantization layout; Rows/Cols the K
	// shape (token-major).
	Bits, Pi    uint8
	KRows, Cols uint32
	// KCodes and VCodes are bit-packed quantized payloads; VRows counts
	// the quantized V rows.
	KCodes, VCodes []byte
	VRows          uint32
	// KMin/KScale/VMin/VScale are FP16-encoded metadata.
	KMin, KScale, VMin, VScale []fp16.Bits
	// Tail is the FP16 V tail (RQE), row-major, TailRows × Cols.
	TailRows uint32
	Tail     []fp16.Bits
}

func fp16Bytes(xs []fp16.Bits) []byte {
	b := make([]byte, 2*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint16(b[2*i:], uint16(x))
	}
	return b
}

func fp16FromBytes(b []byte) ([]fp16.Bits, error) {
	if len(b)%2 != 0 {
		return nil, errors.New("netsim: odd fp16 payload")
	}
	out := make([]fp16.Bits, len(b)/2)
	for i := range out {
		out[i] = fp16.Bits(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return out, nil
}

// WriteTo serializes the frame with a CRC32 trailer. It returns the
// number of payload bytes written (the wire size the transfer model
// prices).
func (f *KVFrame) WriteTo(w io.Writer) (int64, error) {
	version := f.Version
	switch version {
	case 0:
		version = frameVersionV2
	case frameVersionV1, frameVersionV2:
	default:
		return 0, fmt.Errorf("netsim: cannot encode frame version %d", version)
	}
	if version == frameVersionV1 && f.RNGDraws != 0 {
		return 0, errors.New("netsim: RNG draw count needs frame version 2")
	}
	var body []byte
	{
		hdr := make([]byte, 0, 64)
		tmp := make([]byte, 8)
		put32 := func(v uint32) {
			binary.LittleEndian.PutUint32(tmp, v)
			hdr = append(hdr, tmp[:4]...)
		}
		binary.LittleEndian.PutUint64(tmp, f.RequestID)
		hdr = append(hdr, tmp[:8]...)
		binary.LittleEndian.PutUint16(tmp, f.Layer)
		hdr = append(hdr, tmp[:2]...)
		binary.LittleEndian.PutUint16(tmp, f.Head)
		hdr = append(hdr, tmp[:2]...)
		put32(f.FirstToken)
		hdr = append(hdr, f.Bits, f.Pi)
		put32(f.KRows)
		put32(f.Cols)
		put32(f.VRows)
		put32(f.TailRows)
		if version >= frameVersionV2 {
			binary.LittleEndian.PutUint64(tmp, f.RNGDraws)
			hdr = append(hdr, tmp[:8]...)
		}
		body = hdr
	}
	for _, chunk := range [][]byte{
		f.KCodes, f.VCodes,
		fp16Bytes(f.KMin), fp16Bytes(f.KScale),
		fp16Bytes(f.VMin), fp16Bytes(f.VScale),
		fp16Bytes(f.Tail),
	} {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(chunk)))
		body = append(body, lenBuf[:]...)
		body = append(body, chunk...)
	}

	var head [12]byte
	binary.LittleEndian.PutUint32(head[0:], frameMagic)
	binary.LittleEndian.PutUint32(head[4:], version)
	binary.LittleEndian.PutUint32(head[8:], uint32(len(body)))
	if _, err := w.Write(head[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return 0, err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	if _, err := w.Write(crc[:]); err != nil {
		return 0, err
	}
	return int64(len(head) + len(body) + 4), nil
}

// ErrFrameCorrupt means a frame or message header failed to parse: a KV
// frame's 12-byte head (bad magic, unknown version, a length past the
// limit) or a wire message's 5-byte head (invalid type byte, oversized
// length). Headers are partly or wholly outside the CRC, so a bit-flip
// there surfaces here instead of as ErrChecksum; it is the same fault
// (the link is corrupting bytes) and callers must treat it the same
// way: drop the connection, retry over a fresh one.
var ErrFrameCorrupt = errors.New("netsim: frame header corrupt")

// ReadFrom parses one frame, verifying magic, version and checksum.
// Both wire versions decode: version-1 frames (no RNG draw count) yield
// RNGDraws 0. The parsed version is recorded in f.Version, so an
// accepted frame re-serializes to the exact bytes it came from.
// Head-parse failures wrap ErrFrameCorrupt; a body CRC mismatch wraps
// ErrChecksum.
func (f *KVFrame) ReadFrom(r io.Reader) (int64, error) {
	var head [12]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(head[0:]) != frameMagic {
		return 0, fmt.Errorf("%w: bad magic %#x", ErrFrameCorrupt, binary.LittleEndian.Uint32(head[0:]))
	}
	version := binary.LittleEndian.Uint32(head[4:])
	if version != frameVersionV1 && version != frameVersionV2 {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrFrameCorrupt, version)
	}
	n := binary.LittleEndian.Uint32(head[8:])
	if n > maxFrameSize {
		return 0, fmt.Errorf("%w: frame length %d exceeds limit", ErrFrameCorrupt, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, err
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return 0, err
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crc[:]) {
		return 0, fmt.Errorf("netsim: frame body: %w", ErrChecksum)
	}

	if len(body) < 34 {
		return 0, errors.New("netsim: truncated header")
	}
	f.Version = version
	f.RequestID = binary.LittleEndian.Uint64(body[0:])
	f.Layer = binary.LittleEndian.Uint16(body[8:])
	f.Head = binary.LittleEndian.Uint16(body[10:])
	f.FirstToken = binary.LittleEndian.Uint32(body[12:])
	f.Bits = body[16]
	f.Pi = body[17]
	f.KRows = binary.LittleEndian.Uint32(body[18:])
	f.Cols = binary.LittleEndian.Uint32(body[22:])
	f.VRows = binary.LittleEndian.Uint32(body[26:])
	f.TailRows = binary.LittleEndian.Uint32(body[30:])
	rest := body[34:]
	f.RNGDraws = 0
	if version >= frameVersionV2 {
		if len(rest) < 8 {
			return 0, errors.New("netsim: truncated header")
		}
		f.RNGDraws = binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
	}
	chunks := make([][]byte, 7)
	for i := range chunks {
		if len(rest) < 4 {
			return 0, errors.New("netsim: truncated chunk table")
		}
		cl := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint32(len(rest)) < cl {
			return 0, errors.New("netsim: truncated chunk")
		}
		chunks[i] = rest[:cl]
		rest = rest[cl:]
	}
	var err error
	f.KCodes = append([]byte(nil), chunks[0]...)
	f.VCodes = append([]byte(nil), chunks[1]...)
	if f.KMin, err = fp16FromBytes(chunks[2]); err != nil {
		return 0, err
	}
	if f.KScale, err = fp16FromBytes(chunks[3]); err != nil {
		return 0, err
	}
	if f.VMin, err = fp16FromBytes(chunks[4]); err != nil {
		return 0, err
	}
	if f.VScale, err = fp16FromBytes(chunks[5]); err != nil {
		return 0, err
	}
	if f.Tail, err = fp16FromBytes(chunks[6]); err != nil {
		return 0, err
	}
	return int64(12 + len(body) + 4), nil
}

// FrameFromTensors builds a frame from a head's quantized K and V plus
// the FP16 tail values.
func FrameFromTensors(reqID uint64, layer, head int, firstToken int,
	k, v *quant.Tensor, tail []float32) (*KVFrame, error) {
	if k.Bits != v.Bits || k.Pi != v.Pi || k.Cols != v.Cols {
		return nil, fmt.Errorf("netsim: K/V layout mismatch")
	}
	if k.Bits > math.MaxUint8 || k.Pi > math.MaxUint8 {
		return nil, fmt.Errorf("netsim: layout fields overflow")
	}
	toFP16 := func(xs []float32) []fp16.Bits { return fp16.FromFloat32Slice(nil, xs) }
	f := &KVFrame{
		RequestID: reqID, Layer: uint16(layer), Head: uint16(head),
		FirstToken: uint32(firstToken),
		Bits:       uint8(k.Bits), Pi: uint8(k.Pi),
		KRows: uint32(k.Rows), Cols: uint32(k.Cols), VRows: uint32(v.Rows),
		KCodes: k.PackCodes(), VCodes: v.PackCodes(),
		KMin: toFP16(k.Min), KScale: toFP16(k.Scale),
		VMin: toFP16(v.Min), VScale: toFP16(v.Scale),
	}
	if len(tail) > 0 {
		if len(tail)%k.Cols != 0 {
			return nil, fmt.Errorf("netsim: tail length %d not a multiple of d_h %d", len(tail), k.Cols)
		}
		f.TailRows = uint32(len(tail) / k.Cols)
		f.Tail = toFP16(tail)
	}
	return f, nil
}

// Tensors reconstructs the decode-side cache contents from a received
// frame: the quantized K (token-major) and V (complete partitions only)
// with their SE sums recomputed from the codes, plus the FP16 RQE tail.
// Every shape comes off the wire, so all of them are validated.
func (f *KVFrame) Tensors() (k, v *quant.Tensor, tail *tensor.Matrix, err error) {
	dh := int(f.Cols)
	if dh <= 0 {
		return nil, nil, nil, fmt.Errorf("netsim: frame head dim %d", dh)
	}
	k, err = quant.FromWire(quant.AlongCols, int(f.KRows), dh, int(f.Bits), int(f.Pi),
		f.KCodes, fp16.ToFloat32Slice(nil, f.KMin), fp16.ToFloat32Slice(nil, f.KScale))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("netsim: frame K: %w", err)
	}
	v, err = quant.FromWire(quant.AlongRows, int(f.VRows), dh, int(f.Bits), int(f.Pi),
		f.VCodes, fp16.ToFloat32Slice(nil, f.VMin), fp16.ToFloat32Slice(nil, f.VScale))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("netsim: frame V: %w", err)
	}
	if int(f.TailRows)*dh != len(f.Tail) {
		return nil, nil, nil, fmt.Errorf("netsim: frame tail %d values for %d rows of %d",
			len(f.Tail), f.TailRows, dh)
	}
	tail = tensor.New(int(f.TailRows), dh)
	copy(tail.Data, fp16.ToFloat32Slice(nil, f.Tail))
	if int(f.VRows)+tail.Rows != int(f.KRows) {
		return nil, nil, nil, fmt.Errorf("netsim: frame token counts K %d vs V %d+%d",
			f.KRows, f.VRows, f.TailRows)
	}
	return k, v, tail, nil
}
