// Package netsim provides the networking substrate of the disaggregated
// deployment: a byte-accurate wire format for shipping quantized KV
// state between prefill and decode instances (the role NCCL plays in the
// paper, §6), and a processor-sharing link model that the discrete-event
// simulator uses to price concurrent transfers.
//
// The framing codec is real — it serializes actual quantized tensors and
// round-trips over any io stream (tests drive it through net.Pipe) — so
// the byte counts fed to the transfer model are measured, not assumed.
package netsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"github.com/hackkv/hack/internal/fp16"
	"github.com/hackkv/hack/internal/quant"
)

// Frame magic and version for the KV transfer protocol.
const (
	frameMagic   = 0x48414B56 // "HAKV"
	frameVersion = 1
	// maxFrameSize bounds a single frame's payload (1 GiB) to fail fast
	// on corrupted length fields.
	maxFrameSize = 1 << 30
)

// KVFrame is one head's prefill→decode payload (⑦ in Fig. 5): the
// quantized codes, the FP16 min/scale metadata, the first generated
// token, and the RQE FP16 tail.
type KVFrame struct {
	// RequestID and Layer/Head locate the payload.
	RequestID   uint64
	Layer, Head uint16
	// FirstToken is the prefill-stage output token.
	FirstToken uint32
	// Bits and Pi describe the quantization layout; Rows/Cols the K
	// shape (token-major).
	Bits, Pi    uint8
	KRows, Cols uint32
	// KCodes and VCodes are bit-packed quantized payloads; VRows counts
	// the quantized V rows.
	KCodes, VCodes []byte
	VRows          uint32
	// KMin/KScale/VMin/VScale are FP16-encoded metadata.
	KMin, KScale, VMin, VScale []fp16.Bits
	// Tail is the FP16 V tail (RQE), row-major, TailRows × Cols.
	TailRows uint32
	Tail     []fp16.Bits
}

func fp16Bytes(xs []fp16.Bits) []byte {
	b := make([]byte, 2*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint16(b[2*i:], uint16(x))
	}
	return b
}

func fp16FromBytes(b []byte) ([]fp16.Bits, error) {
	if len(b)%2 != 0 {
		return nil, errors.New("netsim: odd fp16 payload")
	}
	out := make([]fp16.Bits, len(b)/2)
	for i := range out {
		out[i] = fp16.Bits(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return out, nil
}

// WriteTo serializes the frame with a CRC32 trailer. It returns the
// number of payload bytes written (the wire size the transfer model
// prices).
func (f *KVFrame) WriteTo(w io.Writer) (int64, error) {
	var body []byte
	{
		hdr := make([]byte, 0, 64)
		tmp := make([]byte, 8)
		put32 := func(v uint32) {
			binary.LittleEndian.PutUint32(tmp, v)
			hdr = append(hdr, tmp[:4]...)
		}
		binary.LittleEndian.PutUint64(tmp, f.RequestID)
		hdr = append(hdr, tmp[:8]...)
		binary.LittleEndian.PutUint16(tmp, f.Layer)
		hdr = append(hdr, tmp[:2]...)
		binary.LittleEndian.PutUint16(tmp, f.Head)
		hdr = append(hdr, tmp[:2]...)
		put32(f.FirstToken)
		hdr = append(hdr, f.Bits, f.Pi)
		put32(f.KRows)
		put32(f.Cols)
		put32(f.VRows)
		put32(f.TailRows)
		body = hdr
	}
	for _, chunk := range [][]byte{
		f.KCodes, f.VCodes,
		fp16Bytes(f.KMin), fp16Bytes(f.KScale),
		fp16Bytes(f.VMin), fp16Bytes(f.VScale),
		fp16Bytes(f.Tail),
	} {
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(chunk)))
		body = append(body, lenBuf[:]...)
		body = append(body, chunk...)
	}

	var head [12]byte
	binary.LittleEndian.PutUint32(head[0:], frameMagic)
	binary.LittleEndian.PutUint32(head[4:], frameVersion)
	binary.LittleEndian.PutUint32(head[8:], uint32(len(body)))
	if _, err := w.Write(head[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return 0, err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	if _, err := w.Write(crc[:]); err != nil {
		return 0, err
	}
	return int64(len(head) + len(body) + 4), nil
}

// ReadFrom parses one frame, verifying magic, version and checksum.
func (f *KVFrame) ReadFrom(r io.Reader) (int64, error) {
	var head [12]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(head[0:]) != frameMagic {
		return 0, errors.New("netsim: bad magic")
	}
	if v := binary.LittleEndian.Uint32(head[4:]); v != frameVersion {
		return 0, fmt.Errorf("netsim: unsupported version %d", v)
	}
	n := binary.LittleEndian.Uint32(head[8:])
	if n > maxFrameSize {
		return 0, fmt.Errorf("netsim: frame length %d exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, err
	}
	var crc [4]byte
	if _, err := io.ReadFull(r, crc[:]); err != nil {
		return 0, err
	}
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crc[:]) {
		return 0, errors.New("netsim: checksum mismatch")
	}

	if len(body) < 30 {
		return 0, errors.New("netsim: truncated header")
	}
	f.RequestID = binary.LittleEndian.Uint64(body[0:])
	f.Layer = binary.LittleEndian.Uint16(body[8:])
	f.Head = binary.LittleEndian.Uint16(body[10:])
	f.FirstToken = binary.LittleEndian.Uint32(body[12:])
	f.Bits = body[16]
	f.Pi = body[17]
	f.KRows = binary.LittleEndian.Uint32(body[18:])
	f.Cols = binary.LittleEndian.Uint32(body[22:])
	f.VRows = binary.LittleEndian.Uint32(body[26:])
	if len(body) < 34 {
		return 0, errors.New("netsim: truncated header")
	}
	f.TailRows = binary.LittleEndian.Uint32(body[30:])
	rest := body[34:]
	chunks := make([][]byte, 7)
	for i := range chunks {
		if len(rest) < 4 {
			return 0, errors.New("netsim: truncated chunk table")
		}
		cl := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint32(len(rest)) < cl {
			return 0, errors.New("netsim: truncated chunk")
		}
		chunks[i] = rest[:cl]
		rest = rest[cl:]
	}
	var err error
	f.KCodes = append([]byte(nil), chunks[0]...)
	f.VCodes = append([]byte(nil), chunks[1]...)
	if f.KMin, err = fp16FromBytes(chunks[2]); err != nil {
		return 0, err
	}
	if f.KScale, err = fp16FromBytes(chunks[3]); err != nil {
		return 0, err
	}
	if f.VMin, err = fp16FromBytes(chunks[4]); err != nil {
		return 0, err
	}
	if f.VScale, err = fp16FromBytes(chunks[5]); err != nil {
		return 0, err
	}
	if f.Tail, err = fp16FromBytes(chunks[6]); err != nil {
		return 0, err
	}
	return int64(12 + len(body) + 4), nil
}

// FrameFromTensors builds a frame from a head's quantized K and V plus
// the FP16 tail values.
func FrameFromTensors(reqID uint64, layer, head int, firstToken int,
	k, v *quant.Tensor, tail []float32) (*KVFrame, error) {
	if k.Bits != v.Bits || k.Pi != v.Pi || k.Cols != v.Cols {
		return nil, fmt.Errorf("netsim: K/V layout mismatch")
	}
	if k.Bits > math.MaxUint8 || k.Pi > math.MaxUint8 {
		return nil, fmt.Errorf("netsim: layout fields overflow")
	}
	toFP16 := func(xs []float32) []fp16.Bits { return fp16.FromFloat32Slice(nil, xs) }
	f := &KVFrame{
		RequestID: reqID, Layer: uint16(layer), Head: uint16(head),
		FirstToken: uint32(firstToken),
		Bits:       uint8(k.Bits), Pi: uint8(k.Pi),
		KRows: uint32(k.Rows), Cols: uint32(k.Cols), VRows: uint32(v.Rows),
		KCodes: k.PackCodes(), VCodes: v.PackCodes(),
		KMin: toFP16(k.Min), KScale: toFP16(k.Scale),
		VMin: toFP16(v.Min), VScale: toFP16(v.Scale),
	}
	if len(tail) > 0 {
		if len(tail)%k.Cols != 0 {
			return nil, fmt.Errorf("netsim: tail length %d not a multiple of d_h %d", len(tail), k.Cols)
		}
		f.TailRows = uint32(len(tail) / k.Cols)
		f.Tail = toFP16(tail)
	}
	return f, nil
}
