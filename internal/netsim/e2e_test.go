package netsim

import (
	"math/rand"
	"net"
	"testing"

	"github.com/hackkv/hack/internal/hack"
	"github.com/hackkv/hack/internal/kvcache"
	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// reconstructCache rebuilds a decode-side HACK cache from a received
// frame via the production wire path (KVFrame.Tensors → quant.FromWire),
// which recomputes the SE sums from the codes (they are not shipped —
// the decode side derives them once, §5.3) and reloads the FP16 tail.
func reconstructCache(t *testing.T, f *KVFrame) *kvcache.Cache {
	t.Helper()
	k, v, tail, err := f.Tensors()
	if err != nil {
		t.Fatal(err)
	}
	c := kvcache.MustNew(kvcache.Config{
		HeadDim: int(f.Cols), Pi: int(f.Pi), KVBits: int(f.Bits),
		Rounding: quant.NearestRounding, RQE: true,
	})
	c.K = k
	c.VFull = v
	c.VTail = tail
	return c
}

// TestEndToEndPrefillShipDecode is the full Fig. 5 pipeline: a prefill-
// side cache is quantized, framed, shipped over a real byte stream,
// reconstructed on the decode side, and produces *bit-identical*
// homomorphic attention output — including the recomputed SE sums and
// the FP16 RQE tail.
func TestEndToEndPrefillShipDecode(t *testing.T) {
	const dh, l, pi = 64, 200, 32
	rng := rand.New(rand.NewSource(42))

	// Prefill side: build the cache.
	sender := kvcache.MustNew(kvcache.Config{
		HeadDim: dh, Pi: pi, KVBits: 2,
		Rounding: quant.StochasticRounding, RNG: rng, RQE: true,
	})
	k := tensor.RandNormal(rng, l, dh, 1)
	v := tensor.RandNormal(rng, l, dh, 1)
	if err := sender.AppendPrefill(k, v); err != nil {
		t.Fatal(err)
	}

	// Frame and ship over net.Pipe.
	frame, err := FrameFromTensors(9, 1, 2, 77, sender.K, sender.VFull, sender.VTail.Data)
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	errc := make(chan error, 1)
	go func() {
		defer client.Close()
		_, err := frame.WriteTo(client)
		errc <- err
	}()
	var recv KVFrame
	if _, err := recv.ReadFrom(server); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if recv.FirstToken != 77 || recv.RequestID != 9 {
		t.Fatalf("frame metadata lost: %+v", recv)
	}

	// Decode side: reconstruct and run one homomorphic decode step.
	receiver := reconstructCache(t, &recv)
	if receiver.Len() != l {
		t.Fatalf("receiver has %d tokens, want %d", receiver.Len(), l)
	}

	q := tensor.RandNormal(rng, 1, dh, 1)
	qq := quant.MustQuantize(q, quant.AlongCols, quant.Config{
		Bits: 8, Partition: pi, Rounding: quant.NearestRounding,
	})
	opts := hack.DefaultOptions()
	sSend, _ := hack.MatMulTransB(qq, sender.K, opts)
	sRecv, _ := hack.MatMulTransB(qq, receiver.K, opts)
	if d := tensor.MaxAbsDiff(sSend, sRecv); d != 0 {
		t.Errorf("Q·Kᵀ differs across the wire by %v", d)
	}

	p := tensor.Softmax(sSend.Clone())
	nFull := sender.VFull.Rows
	pq := quant.MustQuantize(p.SliceCols(0, nFull), quant.AlongCols, quant.Config{
		Bits: 8, Partition: pi, Rounding: quant.NearestRounding,
	})
	oSend, _ := hack.MatMul(pq, sender.VFull, opts)
	oRecv, _ := hack.MatMul(pq, receiver.VFull, opts)
	if d := tensor.MaxAbsDiff(oSend, oRecv); d != 0 {
		t.Errorf("P·V differs across the wire by %v", d)
	}

	// The FP16 tails agree bit for bit too.
	if d := tensor.MaxAbsDiff(sender.VTail, receiver.VTail); d != 0 {
		t.Errorf("tails differ by %v", d)
	}

	// Recomputed SE sums match the sender's cached ones.
	for i := range sender.K.Sums {
		if sender.K.Sums[i] != receiver.K.Sums[i] {
			t.Fatalf("K sum %d differs: %d vs %d", i, sender.K.Sums[i], receiver.K.Sums[i])
		}
	}
	for i := range sender.VFull.Sums {
		if sender.VFull.Sums[i] != receiver.VFull.Sums[i] {
			t.Fatalf("V sum %d differs", i)
		}
	}
}
