package netsim

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
)

// fuzzSeedFrame serializes one real KV frame for the fuzz corpus.
func fuzzSeedFrame(f *testing.F) []byte {
	f.Helper()
	rng := rand.New(rand.NewSource(1))
	cfg := quant.Config{Bits: 2, Partition: 16, Rounding: quant.NearestRounding}
	k := quant.MustQuantize(tensor.RandNormal(rng, 24, 32, 1), quant.AlongCols, cfg)
	v := quant.MustQuantize(tensor.RandNormal(rng, 16, 32, 1), quant.AlongRows, cfg)
	tail := make([]float32, 2*32)
	for i := range tail {
		tail[i] = rng.Float32()
	}
	fr, err := FrameFromTensors(7, 1, 2, 99, k, v, tail)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := fr.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzFrameReadFrom asserts the wire decoder's contract on arbitrary
// bytes: malformed frames must error, never panic, and any frame it
// accepts must re-serialize to the exact bytes it was parsed from
// (the codec is canonical).
func FuzzFrameReadFrom(f *testing.F) {
	valid := fuzzSeedFrame(f)
	f.Add(valid)
	// Truncations and bit flips around every boundary the parser checks:
	// magic, version, length field, header, chunk table, CRC trailer.
	f.Add(valid[:4])
	f.Add(valid[:12])
	f.Add(valid[:len(valid)-4])
	for _, off := range []int{0, 4, 8, 12, 30, len(valid) - 2} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr KVFrame
		n, err := fr.ReadFrom(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		if n <= 0 || n > int64(len(data)) {
			t.Fatalf("accepted frame reports %d bytes read of %d available", n, len(data))
		}
		var out bytes.Buffer
		m, err := fr.WriteTo(&out)
		if err != nil {
			t.Fatalf("re-serializing an accepted frame failed: %v", err)
		}
		if m != n || !bytes.Equal(out.Bytes(), data[:n]) {
			t.Fatalf("accepted frame is not canonical: read %d bytes, rewrote %d different ones", n, m)
		}
	})
}

// FuzzWireReadMessage asserts the conn-framing decoder's contract on
// arbitrary bytes: malformed messages (bad type, oversized length,
// corrupt CRC, truncation) must error, never panic, and any message it
// accepts must re-frame to the exact bytes it was parsed from.
func FuzzWireReadMessage(f *testing.F) {
	var seed bytes.Buffer
	hello := Hello{Role: "prefill", NodeID: "p0", Method: "hack-pi64",
		ModelSeed: 7, SpecName: "toy", Vocab: 128, HTTPAddr: "127.0.0.1:1"}
	helloJSON, err := json.Marshal(hello.seal())
	if err != nil {
		f.Fatal(err)
	}
	if err := WriteMessage(&seed, MsgHello, helloJSON); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), seed.Bytes()...))
	frameMsg := fuzzSeedFrame(f)
	seed.Reset()
	if err := WriteMessage(&seed, MsgFrame, frameMsg); err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), seed.Bytes()...))
	seed.Reset()
	if err := WriteMessage(&seed, MsgPing, nil); err != nil {
		f.Fatal(err)
	}
	valid := append([]byte(nil), seed.Bytes()...)
	f.Add(valid)
	f.Add(valid[:3])
	for _, off := range []int{0, 1, 4, len(valid) - 1} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xff
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x07}, 32))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		typ, payload, err := ReadMessage(r)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		consumed := len(data) - r.Len()
		var out bytes.Buffer
		if err := WriteMessage(&out, typ, payload); err != nil {
			t.Fatalf("re-framing an accepted message failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("accepted message is not canonical (%d bytes consumed)", consumed)
		}
		if typ == MsgHello || typ == MsgHelloAck {
			_, _ = ParseHello(payload) // must not panic either way
		}
	})
}
