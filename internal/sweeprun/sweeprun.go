// Package sweeprun is the concurrency substrate of the batch evaluation
// layer: a bounded worker pool that executes an indexed set of
// independent jobs — sweep cells, experiment rows — with context
// cancellation and panic isolation. Callers own a results slice indexed
// by job and write each job's output to its own slot, so the aggregate
// is ordered by index regardless of completion order; that property is
// what makes concurrent sweeps byte-identical to serial ones.
package sweeprun

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// PanicError reports a job that panicked. The pool recovers the panic so
// one faulty cell cannot take down the process or the other workers.
type PanicError struct {
	// Index is the job that panicked; Value is the recovered panic value.
	Index int
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sweeprun: job %d panicked: %v", e.Index, e.Value)
}

// DefaultWorkers returns the pool width used when a caller passes
// workers <= 0: the process's GOMAXPROCS.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Map runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines and waits for the pool to drain. Behavior:
//
//   - workers <= 0 selects DefaultWorkers(); the pool never exceeds
//     min(workers, n) goroutines.
//   - The first error cancels the job feed — already-running jobs finish,
//     unstarted ones never run — and is returned after the drain.
//   - ctx cancellation stops the feed the same way and returns ctx.Err().
//   - A panicking fn is recovered into a *PanicError; the other workers
//     drain normally.
//
// Map returns only after every started job has finished, so callers may
// free or read shared per-index state immediately.
func Map(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}

	run := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				stack := make([]byte, 16<<10)
				stack = stack[:runtime.Stack(stack, false)]
				err = &PanicError{Index: i, Value: r, Stack: stack}
			}
		}()
		return fn(ctx, i)
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain the feed without starting new work
				}
				if err := run(i); err != nil {
					fail(err)
				}
			}
		}()
	}

feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// ParallelFor splits the index range [0, n) into at most `workers`
// contiguous chunks and runs fn(lo, hi) for each chunk concurrently,
// returning after every chunk has finished. It is the fork-join primitive
// behind the numeric kernels' row-tile parallelism: chunks are balanced
// (sizes differ by at most one), the final chunk runs on the calling
// goroutine, and workers <= 0 selects DefaultWorkers() — the same sizing
// the sweep pool uses. With workers == 1 (or n <= 1) fn runs inline with
// no goroutines at all.
//
// fn must not panic; unlike Map, ParallelFor performs no recovery — it is
// meant for leaf compute loops, not arbitrary jobs.
func ParallelFor(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	// Balanced split: the first `rem` chunks get size+1 elements.
	size, rem := n/workers, n%workers
	var wg sync.WaitGroup
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + size
		if w < rem {
			hi++
		}
		if w == workers-1 {
			fn(lo, hi) // run the last chunk inline
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}
