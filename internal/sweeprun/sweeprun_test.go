package sweeprun

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapRunsEveryIndexOnce(t *testing.T) {
	const n = 100
	var counts [n]int32
	if err := Map(context.Background(), n, 7, func(_ context.Context, i int) error {
		atomic.AddInt32(&counts[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestMapBoundsWorkers(t *testing.T) {
	const workers = 3
	var active, peak int32
	if err := Map(context.Background(), 50, workers, func(_ context.Context, _ int) error {
		cur := atomic.AddInt32(&active, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&active, -1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("observed %d concurrent jobs, pool width %d", peak, workers)
	}
}

func TestMapFirstErrorStopsFeed(t *testing.T) {
	sentinel := errors.New("boom")
	var started int32
	err := Map(context.Background(), 1000, 2, func(_ context.Context, i int) error {
		atomic.AddInt32(&started, 1)
		if i == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if s := atomic.LoadInt32(&started); s == 1000 {
		t.Fatalf("feed not stopped: all %d jobs started", s)
	}
}

func TestMapPanicIsolation(t *testing.T) {
	var ran int32
	err := Map(context.Background(), 8, 4, func(_ context.Context, i int) error {
		if i == 2 {
			panic("cell exploded")
		}
		atomic.AddInt32(&ran, 1)
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 2 || pe.Value != "cell exploded" {
		t.Fatalf("panic error = %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error carries no stack")
	}
	if ran == 0 {
		t.Fatal("no sibling job completed; panic was not isolated")
	}
}

// TestMapCancelDrainsPool cancels a mid-flight run and asserts both that
// Map reports the cancellation and that the pool's goroutines drain
// rather than leak.
func TestMapCancelDrainsPool(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var once sync.Once
	err := Map(ctx, 64, 4, func(ctx context.Context, i int) error {
		once.Do(cancel)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return ctx.Err()
	})
	close(release)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The pool must have drained by the time Map returns; allow the
	// runtime a moment to retire exiting goroutines before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMapParallelSpeedup pins the point of the pool: a sweep of 8 cells
// completes measurably faster at workers=4 than workers=1. The cells
// block on a timer rather than the CPU, so the assertion holds on any
// host; the slack is generous (ideal ratio is 4x, we require 1.5x).
func TestMapParallelSpeedup(t *testing.T) {
	const cells, cellDur = 8, 30 * time.Millisecond
	timeWidth := func(workers int) time.Duration {
		start := time.Now()
		if err := Map(context.Background(), cells, workers, func(context.Context, int) error {
			time.Sleep(cellDur)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	serial := timeWidth(1)
	parallel := timeWidth(4)
	if parallel > serial*2/3 {
		t.Errorf("workers=4 took %v, not measurably faster than workers=1's %v", parallel, serial)
	}
}

func TestMapParentContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int32
	err := Map(ctx, 10, 2, func(context.Context, int) error {
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d jobs ran under a dead context", ran)
	}
}

func TestMapZeroJobs(t *testing.T) {
	if err := Map(context.Background(), 0, 4, nil); err != nil {
		t.Fatal(err)
	}
}

// ParallelFor must cover [0, n) exactly once with balanced contiguous
// chunks at every worker count, including the serial and n<workers edges.
func TestParallelFor(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, workers := range []int{0, 1, 2, 3, 16, 2000} {
			var mu sync.Mutex
			seen := make([]int, n)
			chunks := 0
			ParallelFor(n, workers, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("n=%d w=%d: empty chunk [%d,%d)", n, workers, lo, hi)
				}
				mu.Lock()
				chunks++
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d: index %d covered %d times", n, workers, i, c)
				}
			}
			if want := workers; n > 0 {
				if want <= 0 {
					want = DefaultWorkers()
				}
				if want > n {
					want = n
				}
				if chunks != want {
					t.Errorf("n=%d w=%d: %d chunks, want %d", n, workers, chunks, want)
				}
			}
		}
	}
}
