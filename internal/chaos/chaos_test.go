package chaos

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// pipePair returns a connected in-memory conn pair.
func pipePair() (net.Conn, net.Conn) { return net.Pipe() }

func TestZeroPlanPassesThrough(t *testing.T) {
	in := NewInjector(1)
	a, b := pipePair()
	wrapped := in.Wrap(a, "peer")
	defer wrapped.Close()
	defer b.Close()

	msg := []byte("hello fabric")
	go func() { wrapped.Write(msg) }()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
	if st := in.Stats(); st != (Stats{}) {
		t.Fatalf("zero plan injected faults: %+v", st)
	}
}

func TestCorruptionDeterministicPerSeed(t *testing.T) {
	payload := make([]byte, 16<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	run := func(seed int64) []byte {
		in := NewInjector(seed)
		in.SetPlan("peer", Plan{CorruptEvery: 1024})
		a, b := pipePair()
		w := in.Wrap(a, "peer")
		defer w.Close()
		defer b.Close()
		go func() {
			w.Write(payload)
			w.Close()
		}()
		got, err := io.ReadAll(b)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	one, two := run(7), run(7)
	if !bytes.Equal(one, two) {
		t.Fatal("same seed produced different corruption")
	}
	if bytes.Equal(one, payload) {
		t.Fatal("no corruption injected")
	}
	diff := 0
	for i := range one {
		if one[i] != payload[i] {
			diff++
		}
	}
	if want := len(payload) / 1024; diff != want {
		t.Fatalf("corrupted %d bytes, want %d", diff, want)
	}
	other := run(8)
	if bytes.Equal(one, other) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestResetAfterBytes(t *testing.T) {
	in := NewInjector(1)
	in.SetPlan("peer", Plan{ResetAfterBytes: 64})
	a, b := pipePair()
	w := in.Wrap(a, "peer")
	defer b.Close()
	go io.Copy(io.Discard, b)

	buf := make([]byte, 32)
	var err error
	for i := 0; i < 10; i++ {
		if _, err = w.Write(buf); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("write survived the reset threshold")
	}
	var ne net.Error
	if !errors.As(err, &ne) {
		t.Fatalf("reset error %T is not a net.Error", err)
	}
	if in.Stats().ConnsReset != 1 {
		t.Fatalf("stats: %+v", in.Stats())
	}
	// The connection is dead for the peer too.
	if _, err := w.Write(buf); err == nil {
		t.Fatal("write after reset succeeded")
	}
}

func TestStallHonorsReadDeadline(t *testing.T) {
	in := NewInjector(1)
	in.SetPlan("peer", Plan{StallAfterBytes: 1})
	a, b := pipePair()
	w := in.Wrap(a, "peer")
	defer w.Close()
	defer b.Close()

	go func() { b.Write([]byte("xx")) }()
	one := make([]byte, 1)
	if _, err := io.ReadFull(w, one); err != nil {
		t.Fatal(err)
	}
	w.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	_, err := w.Read(one)
	if err == nil {
		t.Fatal("stalled read returned data")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("stall error %v is not a timeout net.Error", err)
	}
	if since := time.Since(start); since < 40*time.Millisecond || since > 2*time.Second {
		t.Fatalf("stall resolved after %v, want ~50ms", since)
	}
	if in.Stats().ReadsStalled == 0 {
		t.Fatal("stall not counted")
	}
}

func TestPartitionRefusesDialsAndSeversLiveConns(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, c)
		}
	}()
	addr := ln.Addr().String()

	in := NewInjector(1)
	dial := in.Dialer(nil)
	conn, err := dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	in.SetPlan(addr, Plan{Partition: true})
	if _, err := dial("tcp", addr, time.Second); err == nil {
		t.Fatal("partitioned dial succeeded")
	} else {
		var ne net.Error
		if !errors.As(err, &ne) {
			t.Fatalf("partition error %T is not a net.Error", err)
		}
	}
	// The live connection was severed by the partition.
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("severed conn still readable")
	}

	in.Heal()
	c2, err := dial("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("healed dial failed: %v", err)
	}
	c2.Close()

	st := in.Stats()
	if st.DialsRefused != 1 || st.ConnsSevered != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLatencyInjected(t *testing.T) {
	in := NewInjector(1)
	in.SetPlan("peer", Plan{Latency: 20 * time.Millisecond})
	a, b := pipePair()
	w := in.Wrap(a, "peer")
	defer w.Close()
	defer b.Close()
	go func() {
		buf := make([]byte, 4)
		io.ReadFull(b, buf)
	}()
	start := time.Now()
	if _, err := w.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if since := time.Since(start); since < 20*time.Millisecond {
		t.Fatalf("write returned in %v, want >= 20ms", since)
	}
	if in.Stats().OpsDelayed == 0 {
		t.Fatal("delay not counted")
	}
}

func TestInjectorPrometheus(t *testing.T) {
	in := NewInjector(1)
	in.SetPlan("x", Plan{Partition: true})
	if _, err := in.Dialer(nil)("tcp", "x", time.Second); err == nil {
		t.Fatal("expected refused dial")
	}
	var buf bytes.Buffer
	if err := in.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"chaos_dials_total 1", "chaos_dials_refused_total 1", "# TYPE chaos_bytes_corrupted_total counter"} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestBackoffBudgetAndJitterDeterminism(t *testing.T) {
	mk := func(seed int64) *Backoff {
		b := NewBackoff(10*time.Millisecond, 80*time.Millisecond, 0.2, time.Second, seed)
		return b
	}
	// Deterministic: same seed, same schedule.
	var one, two []time.Duration
	a, b := mk(3), mk(3)
	for i := 0; i < 6; i++ {
		d1, ok1 := a.Next()
		d2, ok2 := b.Next()
		if !ok1 || !ok2 {
			t.Fatal("budget exhausted unexpectedly (no sleeping happened)")
		}
		one = append(one, d1)
		two = append(two, d2)
	}
	for i := range one {
		if one[i] != two[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, one, two)
		}
	}
	// Delays are jittered around the doubling curve and capped.
	base := 10 * time.Millisecond
	for i, d := range one {
		lo := time.Duration(float64(base) * 0.9)
		hi := time.Duration(float64(base) * 1.1)
		if d < lo || d > hi {
			t.Fatalf("delay %d = %v outside [%v, %v]", i, d, lo, hi)
		}
		if base < 80*time.Millisecond {
			base *= 2
		}
	}

	// Budget: a fake clock past the budget stops the schedule.
	bo := mk(1)
	bo.now = func() time.Time { return time.Unix(0, 0) }
	if _, ok := bo.Next(); !ok {
		t.Fatal("first attempt refused")
	}
	bo.now = func() time.Time { return time.Unix(10, 0) }
	if _, ok := bo.Next(); ok {
		t.Fatal("budget not enforced")
	}
	if bo.Remaining() != 0 {
		t.Fatalf("remaining %v after exhaustion", bo.Remaining())
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(1000, 0)
	br := NewBreaker(3, time.Second)
	br.now = func() time.Time { return clock }

	if !br.Allow() {
		t.Fatal("closed breaker refused")
	}
	br.Failure()
	br.Failure()
	if br.State() != BreakerClosed {
		t.Fatalf("tripped below threshold: %v", br.State())
	}
	br.Failure() // third consecutive: trips
	if br.State() != BreakerOpen {
		t.Fatalf("state %v, want open", br.State())
	}
	if br.Allow() {
		t.Fatal("open breaker allowed traffic inside cooldown")
	}

	clock = clock.Add(2 * time.Second)
	if !br.Allow() {
		t.Fatal("half-open probe refused after cooldown")
	}
	if br.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", br.State())
	}
	if br.Allow() {
		t.Fatal("second concurrent probe allowed")
	}
	br.Failure() // probe failed: re-open immediately
	if br.State() != BreakerOpen {
		t.Fatalf("state %v, want open after failed probe", br.State())
	}

	clock = clock.Add(2 * time.Second)
	if !br.Allow() {
		t.Fatal("probe refused after second cooldown")
	}
	br.Success()
	if br.State() != BreakerClosed {
		t.Fatalf("state %v, want closed after successful probe", br.State())
	}
	if !br.Allow() {
		t.Fatal("closed breaker refused after recovery")
	}

	st := br.Status()
	if st.Trips != 2 || st.Probes != 2 || st.Refusals != 2 || st.State != "closed" {
		t.Fatalf("status: %+v", st)
	}
}

func TestBreakerConcurrentProbeSingleFlight(t *testing.T) {
	clock := time.Unix(0, 0)
	var mu sync.Mutex
	br := NewBreaker(1, time.Millisecond)
	br.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	br.Failure()
	mu.Lock()
	clock = clock.Add(time.Second)
	mu.Unlock()

	var wg sync.WaitGroup
	var allowed int64
	var amu sync.Mutex
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if br.Allow() {
				amu.Lock()
				allowed++
				amu.Unlock()
			}
		}()
	}
	wg.Wait()
	if allowed != 1 {
		t.Fatalf("%d probes allowed, want exactly 1", allowed)
	}
}

func TestScriptRegistryAndPlay(t *testing.T) {
	names := Scripts()
	want := []string{"corrupt-frame", "degrade-kv-link", "kill-decode", "partition-heal"}
	if len(names) != len(want) {
		t.Fatalf("scripts %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("scripts %v, want %v", names, want)
		}
	}
	if _, err := ScriptNamed("nope"); err == nil || !strings.Contains(err.Error(), "kill-decode") {
		t.Fatalf("unknown script error should list valid names: %v", err)
	}

	s, err := ScriptNamed("partition-heal")
	if err != nil {
		t.Fatal(err)
	}
	s = Script{Name: s.Name, Events: []Event{ // compress offsets for the test
		{At: 0, Action: Action{Kind: ActPartition, Target: 0}},
		{At: 10 * time.Millisecond, Action: Action{Kind: ActHeal}},
	}}
	var got []ActionKind
	if err := s.Play(t.Context(), func(a Action) { got = append(got, a.Kind) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != ActPartition || got[1] != ActHeal {
		t.Fatalf("played %v", got)
	}

	// Stretch scales offsets.
	st := s.Stretch(3)
	if st.Events[1].At != 30*time.Millisecond {
		t.Fatalf("stretched offset %v", st.Events[1].At)
	}
	if s.Events[1].At != 10*time.Millisecond {
		t.Fatal("stretch mutated the original")
	}
}
