package chaos

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

// The breaker states.
const (
	// BreakerClosed passes traffic; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome
	// decides between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerStatus is a snapshot for reports and metrics.
type BreakerStatus struct {
	State            string `json:"state"`
	ConsecutiveFails int    `json:"consecutive_fails"`
	Trips            int64  `json:"trips"`
	Probes           int64  `json:"probes"`
	Refusals         int64  `json:"refusals"`
}

// Breaker is a per-peer circuit breaker: it opens after Threshold
// consecutive failures, refuses traffic for Cooldown, then half-opens
// and admits a single probe whose outcome closes or re-opens it. Safe
// for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
	trips    int64
	probes   int64
	refusals int64
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and half-opens after cooldown. Non-positive arguments select
// defaults (3 failures, 500ms cooldown).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 500 * time.Millisecond
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call may proceed. In the open state it flips
// to half-open once the cooldown elapses and grants the single probe
// slot; further calls are refused until the probe resolves via Success
// or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.refusals++
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		b.probes++
		return true
	default: // half-open
		if b.probing {
			b.refusals++
			return false
		}
		b.probing = true
		b.probes++
		return true
	}
}

// Success records a successful call: it closes a half-open breaker and
// resets the failure streak.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// Cancel releases a held half-open probe slot without judging the peer
// — for callers whose attempt ended for reasons unrelated to the peer's
// health (their own cancellation, backpressure). No-op otherwise.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// Failure records a failed call: a half-open probe failure re-opens the
// breaker immediately; in the closed state the Threshold-th consecutive
// failure trips it.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.fails >= b.threshold) {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.trips++
	}
}

// State returns the current position (open flips to half-open only on
// the next Allow, so reports can show "open" during the cooldown).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Status snapshots the breaker for reports and metrics.
func (b *Breaker) Status() BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStatus{
		State:            b.state.String(),
		ConsecutiveFails: b.fails,
		Trips:            b.trips,
		Probes:           b.probes,
		Refusals:         b.refusals,
	}
}
