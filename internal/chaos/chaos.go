// Package chaos is the fault-injection and resilience substrate of the
// disaggregated runtime. The serving paper's premise is that
// prefill/decode disaggregation lives or dies on the KV transfer path;
// this package makes that path hostile on demand — and provides the
// primitives the runtime uses to survive it.
//
// Fault injection: a Conn wraps any net.Conn and applies a Plan —
// added latency, bandwidth throttling, deterministic byte corruption,
// mid-stream resets, half-open stalls, and full partitions. An Injector
// owns the live plans (global and per-address), wraps dials via a
// Dialer hook the disagg router and the remote prefix-cache client
// accept, and counts every fault it injects (exported as Prometheus
// chaos_* series). All randomness is seed-driven: the same seed injects
// the same faults at the same byte offsets.
//
// Resilience: Backoff implements jittered exponential backoff under a
// total retry budget (replacing fixed retry counts), and Breaker is a
// per-peer circuit breaker (closed → open after N consecutive failures,
// half-open single-probe recovery) whose state the router and the serve
// prefix tier export.
//
// Scenario scripts (scenario.go) name reproducible fault timelines —
// kill-decode, degrade-kv-link, partition-heal, corrupt-frame — that
// the disagg chaos suite and the hackserved -chaos-script dev flag
// replay against live deployments.
package chaos

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Dialer is the dial hook threaded through the disagg and serve
// configs; it mirrors net.DialTimeout's shape so the default is a
// direct wrap.
type Dialer func(network, addr string, timeout time.Duration) (net.Conn, error)

// Plan is one link's fault schedule. The zero Plan injects nothing.
type Plan struct {
	// Latency is added to every Read and Write call on the link.
	Latency time.Duration
	// BandwidthBps paces writes at the given byte rate (0 = unthrottled).
	BandwidthBps int64
	// CorruptEvery flips one bit in every Nth byte written (0 = off).
	// Handshakes are a few hundred bytes; a value in the KB range leaves
	// them intact and lands the corruption inside KV frames.
	CorruptEvery int64
	// ResetAfterBytes severs the connection after N total bytes have
	// been written — a peer dying mid-frame (0 = off).
	ResetAfterBytes int64
	// StallAfterBytes half-opens the connection after N total bytes have
	// been read: subsequent reads block until the read deadline fires or
	// the connection is closed, like a peer that silently went away
	// (0 = off).
	StallAfterBytes int64
	// Partition refuses new dials to the address and severs its live
	// connections when applied.
	Partition bool
}

// IsZero reports whether the plan injects no faults.
func (p Plan) IsZero() bool { return p == Plan{} }

// Stats counts the faults an Injector has delivered.
type Stats struct {
	Dials          int64 `json:"dials"`
	DialsRefused   int64 `json:"dials_refused"`
	ConnsSevered   int64 `json:"conns_severed"`
	ConnsReset     int64 `json:"conns_reset"`
	BytesCorrupted int64 `json:"bytes_corrupted"`
	ReadsStalled   int64 `json:"reads_stalled"`
	OpsDelayed     int64 `json:"ops_delayed"`
}

// Err is the typed error chaos faults surface. It implements net.Error
// so transport-level retry classification treats injected faults
// exactly like real ones.
type Err struct {
	Op        string // "dial", "read", "write"
	Fault     string // "partition", "reset", "stall"
	IsTimeout bool
}

func (e *Err) Error() string   { return fmt.Sprintf("chaos: %s %s", e.Fault, e.Op) }
func (e *Err) Timeout() bool   { return e.IsTimeout }
func (e *Err) Temporary() bool { return true }

// Injector owns the live fault plans and wraps connections. It is safe
// for concurrent use; plans may change while connections are live (a
// Conn consults the current plan on every operation, so a Heal takes
// effect immediately).
type Injector struct {
	seed int64

	mu      sync.Mutex
	def     Plan
	perAddr map[string]Plan
	conns   map[*Conn]struct{}
	nconns  int64

	dials        atomic.Int64
	dialsRefused atomic.Int64
	severed      atomic.Int64
	resets       atomic.Int64
	corrupted    atomic.Int64
	stalls       atomic.Int64
	delayed      atomic.Int64
}

// NewInjector creates an injector whose corruption randomness derives
// from seed.
func NewInjector(seed int64) *Injector {
	return &Injector{seed: seed, perAddr: map[string]Plan{}, conns: map[*Conn]struct{}{}}
}

// SetDefaultPlan installs the plan applied to addresses without a
// per-address override.
func (in *Injector) SetDefaultPlan(p Plan) {
	in.mu.Lock()
	in.def = p
	in.mu.Unlock()
	if p.Partition {
		in.Sever("")
	}
}

// SetPlan installs addr's fault plan, replacing any previous one.
func (in *Injector) SetPlan(addr string, p Plan) {
	in.mu.Lock()
	in.perAddr[addr] = p
	in.mu.Unlock()
	if p.Partition {
		in.Sever(addr)
	}
}

// Heal clears every plan — the fabric is healthy again. Stats are kept.
func (in *Injector) Heal() {
	in.mu.Lock()
	in.def = Plan{}
	in.perAddr = map[string]Plan{}
	in.mu.Unlock()
}

// PlanFor returns the live plan for addr.
func (in *Injector) PlanFor(addr string) Plan {
	in.mu.Lock()
	defer in.mu.Unlock()
	if p, ok := in.perAddr[addr]; ok {
		return p
	}
	return in.def
}

// Sever closes the live connections to addr ("" severs every live
// connection) and returns how many it closed.
func (in *Injector) Sever(addr string) int {
	in.mu.Lock()
	var victims []*Conn
	for c := range in.conns {
		if addr == "" || c.addr == addr {
			victims = append(victims, c)
		}
	}
	in.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
	in.severed.Add(int64(len(victims)))
	return len(victims)
}

// Dialer wraps base (nil means net.DialTimeout) so every dialed
// connection carries the injector's live plan for its address.
func (in *Injector) Dialer(base Dialer) Dialer {
	if base == nil {
		base = net.DialTimeout
	}
	return func(network, addr string, timeout time.Duration) (net.Conn, error) {
		in.dials.Add(1)
		if in.PlanFor(addr).Partition {
			in.dialsRefused.Add(1)
			return nil, &net.OpError{Op: "dial", Net: network, Err: &Err{Op: "dial", Fault: "partition"}}
		}
		conn, err := base(network, addr, timeout)
		if err != nil {
			return nil, err
		}
		return in.Wrap(conn, addr), nil
	}
}

// Wrap attaches the injector's live plan for addr to an existing
// connection.
func (in *Injector) Wrap(conn net.Conn, addr string) net.Conn {
	in.mu.Lock()
	idx := in.nconns
	in.nconns++
	c := &Conn{Conn: conn, in: in, addr: addr, rng: splitmix64(uint64(in.seed) ^ uint64(idx)*0x9E3779B97F4A7C15)}
	in.conns[c] = struct{}{}
	in.mu.Unlock()
	return c
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Dials:          in.dials.Load(),
		DialsRefused:   in.dialsRefused.Load(),
		ConnsSevered:   in.severed.Load(),
		ConnsReset:     in.resets.Load(),
		BytesCorrupted: in.corrupted.Load(),
		ReadsStalled:   in.stalls.Load(),
		OpsDelayed:     in.delayed.Load(),
	}
}

// WritePrometheus renders the fault counters as chaos_* series in the
// text exposition format (0.0.4).
func (in *Injector) WritePrometheus(w io.Writer) error {
	st := in.Stats()
	var err error
	emit := func(name, help string, v int64) {
		if err == nil {
			_, err = fmt.Fprintf(w,
				"# HELP chaos_%s %s\n# TYPE chaos_%s counter\nchaos_%s %d\n",
				name, help, name, name, v)
		}
	}
	emit("dials_total", "Dials attempted through the injector.", st.Dials)
	emit("dials_refused_total", "Dials refused by a partition plan.", st.DialsRefused)
	emit("conns_severed_total", "Live connections severed by partitions.", st.ConnsSevered)
	emit("conns_reset_total", "Connections reset mid-stream.", st.ConnsReset)
	emit("bytes_corrupted_total", "Written bytes with an injected bit flip.", st.BytesCorrupted)
	emit("reads_stalled_total", "Reads that hit a half-open stall.", st.ReadsStalled)
	emit("ops_delayed_total", "Read/write operations with injected latency.", st.OpsDelayed)
	return err
}

// Conn is a net.Conn with faults. Build one through Injector.Wrap or
// Injector.Dialer.
type Conn struct {
	net.Conn
	in   *Injector
	addr string
	rng  uint64

	mu           sync.Mutex
	readDeadline time.Time
	closed       bool

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
}

// splitmix64 is the per-connection corruption RNG.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (c *Conn) nextRand() uint64 {
	c.mu.Lock()
	c.rng = splitmix64(c.rng)
	r := c.rng
	c.mu.Unlock()
	return r
}

func (c *Conn) delay(p Plan) {
	if p.Latency > 0 {
		c.in.delayed.Add(1)
		time.Sleep(p.Latency)
	}
}

// Read applies the live plan: latency, then a half-open stall once the
// byte threshold is crossed (blocking until the read deadline or Close).
func (c *Conn) Read(b []byte) (int, error) {
	p := c.in.PlanFor(c.addr)
	c.delay(p)
	if p.StallAfterBytes > 0 && c.bytesRead.Load() >= p.StallAfterBytes {
		c.in.stalls.Add(1)
		return 0, c.stall()
	}
	n, err := c.Conn.Read(b)
	c.bytesRead.Add(int64(n))
	return n, err
}

// stall blocks like a silent peer: it returns only when the connection
// is closed or its read deadline fires (as a timeout net.Error).
func (c *Conn) stall() error {
	for {
		c.mu.Lock()
		closed, dl := c.closed, c.readDeadline
		c.mu.Unlock()
		if closed {
			return net.ErrClosed
		}
		if !dl.IsZero() && !time.Now().Before(dl) {
			return &Err{Op: "read", Fault: "stall", IsTimeout: true}
		}
		// Re-check the plan so a Heal un-stalls the link.
		if p := c.in.PlanFor(c.addr); p.StallAfterBytes <= 0 || c.bytesRead.Load() < p.StallAfterBytes {
			return &Err{Op: "read", Fault: "stall-interrupted", IsTimeout: true}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Write applies the live plan: latency, bandwidth pacing, deterministic
// bit flips, and mid-stream resets.
func (c *Conn) Write(b []byte) (int, error) {
	p := c.in.PlanFor(c.addr)
	c.delay(p)
	if p.BandwidthBps > 0 {
		time.Sleep(time.Duration(float64(len(b)) / float64(p.BandwidthBps) * float64(time.Second)))
	}
	written := c.bytesWritten.Load()
	if p.ResetAfterBytes > 0 && written >= p.ResetAfterBytes {
		c.in.resets.Add(1)
		c.Close()
		return 0, &Err{Op: "write", Fault: "reset"}
	}
	if p.CorruptEvery > 0 {
		// Flip one pseudo-random bit in every CorruptEvery-th byte of
		// the stream, deterministically by absolute stream offset.
		next := (written/p.CorruptEvery+1)*p.CorruptEvery - 1 // next corrupt offset >= written
		if next < written+int64(len(b)) {
			mut := append([]byte(nil), b...)
			for ; next < written+int64(len(mut)); next += p.CorruptEvery {
				mut[next-written] ^= 1 << (c.nextRand() % 8)
				c.in.corrupted.Add(1)
			}
			b = mut
		}
	}
	n, err := c.Conn.Write(b)
	c.bytesWritten.Add(int64(n))
	return n, err
}

// SetReadDeadline tracks the deadline (stalls honor it) and passes it
// through.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// SetDeadline tracks the read half and passes the call through.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// Close closes the underlying connection and deregisters from the
// injector.
func (c *Conn) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	err := c.Conn.Close()
	if !already {
		c.in.mu.Lock()
		delete(c.in.conns, c)
		c.in.mu.Unlock()
	}
	return err
}
