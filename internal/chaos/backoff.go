package chaos

import (
	"time"
)

// Backoff produces jittered exponential retry delays under a total
// budget. It replaces fixed retry counts: callers keep retrying while
// Next returns ok, and the budget — wall-clock time spent since the
// first attempt — is what bounds the storm, so fast failures (connection
// refused) get many cheap attempts while slow failures (timeouts) get
// few. Jitter is deterministic per seed, so tests replay exact
// schedules.
type Backoff struct {
	initial time.Duration
	max     time.Duration
	jitter  float64 // fraction of the delay randomized, in [0, 1]
	budget  time.Duration
	rng     uint64
	now     func() time.Time

	started time.Time
	next    time.Duration
	n       int
}

// NewBackoff builds a backoff schedule: delays start at initial and
// double up to max, each jittered by ±jitter/2 of its value; Next
// refuses once budget wall-clock time has elapsed since the first call.
// Non-positive arguments select defaults (50ms initial, 2s max, 0.2
// jitter, 5s budget).
func NewBackoff(initial, max time.Duration, jitter float64, budget time.Duration, seed int64) *Backoff {
	if initial <= 0 {
		initial = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if max < initial {
		max = initial
	}
	if jitter <= 0 || jitter > 1 {
		jitter = 0.2
	}
	if budget <= 0 {
		budget = 5 * time.Second
	}
	return &Backoff{initial: initial, max: max, jitter: jitter, budget: budget,
		rng: splitmix64(uint64(seed)), next: initial, now: time.Now}
}

// Attempts returns how many delays Next has granted.
func (b *Backoff) Attempts() int { return b.n }

// Remaining returns the budget left (0 when exhausted).
func (b *Backoff) Remaining() time.Duration {
	if b.started.IsZero() {
		return b.budget
	}
	rem := b.budget - b.now().Sub(b.started)
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Next returns the delay to sleep before the next retry, or ok=false
// when the budget is exhausted. The first call starts the budget clock.
func (b *Backoff) Next() (time.Duration, bool) {
	if b.started.IsZero() {
		b.started = b.now()
	} else if b.now().Sub(b.started) >= b.budget {
		return 0, false
	}
	d := b.next
	// Jitter: d * (1 - jitter/2 + jitter*u) for u in [0, 1).
	b.rng = splitmix64(b.rng)
	u := float64(b.rng>>11) / float64(1<<53)
	d = time.Duration(float64(d) * (1 - b.jitter/2 + b.jitter*u))
	b.next *= 2
	if b.next > b.max {
		b.next = b.max
	}
	b.n++
	return d, true
}
