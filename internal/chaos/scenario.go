package chaos

import (
	"context"
	"fmt"
	"sort"
	"time"
)

// ActionKind names one kind of scripted fault.
type ActionKind string

// The scripted fault vocabulary. Actions target decode replicas by
// ordinal (Target); -1 targets every link. How an action lands depends
// on the harness: an in-process suite can kill a DecodeNode outright,
// while a router-side injector models the same failure as a partition
// of that replica's link.
const (
	// ActKillDecode kills the target decode replica (or partitions its
	// link when the harness cannot reach the process).
	ActKillDecode ActionKind = "kill-decode"
	// ActDegradeLink applies the event's Plan (latency / bandwidth /
	// stall) to the target link.
	ActDegradeLink ActionKind = "degrade-link"
	// ActPartition refuses dials to the target and severs its live
	// connections.
	ActPartition ActionKind = "partition"
	// ActCorruptFrame flips bits in the target link's byte stream (the
	// event's Plan carries the corruption cadence).
	ActCorruptFrame ActionKind = "corrupt-frame"
	// ActHeal clears every fault.
	ActHeal ActionKind = "heal"
)

// Action is one scripted fault application.
type Action struct {
	Kind ActionKind
	// Target is the decode-replica ordinal the action aims at; -1 means
	// every link.
	Target int
	// Plan parameterizes degrade/corrupt kinds.
	Plan Plan
}

// Event schedules an action at an offset from the script's start.
type Event struct {
	At     time.Duration
	Action Action
}

// Script is a named, reproducible fault timeline.
type Script struct {
	Name        string
	Description string
	Events      []Event
}

// Stretch scales every event offset by factor (for slower deployments
// than the in-process test harness).
func (s Script) Stretch(factor float64) Script {
	if factor <= 0 || factor == 1 {
		return s
	}
	out := s
	out.Events = make([]Event, len(s.Events))
	for i, e := range s.Events {
		e.At = time.Duration(float64(e.At) * factor)
		out.Events[i] = e
	}
	return out
}

// Play executes the script: it sleeps to each event's offset and calls
// apply. It returns when every event has fired or ctx is cancelled.
func (s Script) Play(ctx context.Context, apply func(Action)) error {
	start := time.Now()
	events := append([]Event(nil), s.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, e := range events {
		if d := e.At - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		apply(e.Action)
	}
	return nil
}

// scripts is the registry of named fault timelines. Offsets are sized
// for the in-process loopback harness (requests complete in tens of
// milliseconds); Stretch them for real deployments.
var scripts = map[string]Script{
	"kill-decode": {
		Name:        "kill-decode",
		Description: "kill decode replica 0 mid-stream, heal later",
		Events: []Event{
			{At: 25 * time.Millisecond, Action: Action{Kind: ActKillDecode, Target: 0}},
			{At: 600 * time.Millisecond, Action: Action{Kind: ActHeal}},
		},
	},
	"degrade-kv-link": {
		Name:        "degrade-kv-link",
		Description: "add latency and throttle bandwidth on every KV link, then heal",
		Events: []Event{
			{At: 0, Action: Action{Kind: ActDegradeLink, Target: -1,
				Plan: Plan{Latency: 2 * time.Millisecond, BandwidthBps: 8 << 20}}},
			{At: 500 * time.Millisecond, Action: Action{Kind: ActHeal}},
		},
	},
	"partition-heal": {
		Name:        "partition-heal",
		Description: "partition decode replica 0, heal after a cooldown",
		Events: []Event{
			{At: 20 * time.Millisecond, Action: Action{Kind: ActPartition, Target: 0}},
			{At: 400 * time.Millisecond, Action: Action{Kind: ActHeal}},
		},
	},
	"corrupt-frame": {
		Name:        "corrupt-frame",
		Description: "flip bits on decode replica 0's link (CRCs catch them), then heal",
		Events: []Event{
			{At: 0, Action: Action{Kind: ActCorruptFrame, Target: 0,
				Plan: Plan{CorruptEvery: 4096}}},
			{At: 400 * time.Millisecond, Action: Action{Kind: ActHeal}},
		},
	},
}

// Scripts lists the registered script names, sorted.
func Scripts() []string {
	names := make([]string, 0, len(scripts))
	for n := range scripts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ScriptNamed resolves a script by name.
func ScriptNamed(name string) (Script, error) {
	s, ok := scripts[name]
	if !ok {
		return Script{}, fmt.Errorf("chaos: unknown script %q (valid: %v)", name, Scripts())
	}
	return s, nil
}
