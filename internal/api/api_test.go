package api_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hackkv/hack/internal/api"
	"github.com/hackkv/hack/internal/serve"
)

// fakeStream is a scripted api.Stream.
type fakeStream struct {
	tokens chan api.Token
	closed chan struct{}
	err    error
}

func (s *fakeStream) Tokens() <-chan api.Token { return s.tokens }
func (s *fakeStream) Err() error {
	<-s.closed
	return s.err
}

// fakeGen is a scripted api.Generator: it streams ids for every
// request, fails submissions with submitErr, and (optionally) holds
// the stream open until the request context is cancelled.
type fakeGen struct {
	vocab     int
	modelID   string
	draining  bool
	submitErr error
	streamErr error
	ids       []int
	hang      bool // emit ids, then wait for ctx cancellation

	mu       sync.Mutex
	lastReq  api.Request
	canceled chan struct{} // closed when a hanging stream sees ctx.Done
}

func newFakeGen(ids ...int) *fakeGen {
	return &fakeGen{vocab: 128, modelID: "Toy", ids: ids, canceled: make(chan struct{})}
}

func (g *fakeGen) Generate(ctx context.Context, req api.Request) (api.Stream, error) {
	g.mu.Lock()
	g.lastReq = req
	g.mu.Unlock()
	if g.submitErr != nil {
		return nil, g.submitErr
	}
	st := &fakeStream{tokens: make(chan api.Token, len(g.ids)), closed: make(chan struct{})}
	for i, id := range g.ids {
		st.tokens <- api.Token{Index: i, ID: id}
	}
	if g.hang {
		go func() {
			<-ctx.Done()
			close(g.canceled)
			st.err = ctx.Err()
			close(st.tokens)
			close(st.closed)
		}()
		return st, nil
	}
	st.err = g.streamErr
	close(st.tokens)
	close(st.closed)
	return st, nil
}

func (g *fakeGen) last() api.Request {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lastReq
}

func (g *fakeGen) Draining() bool   { return g.draining }
func (g *fakeGen) MetricsJSON() any { return map[string]int{"submitted": len(g.ids)} }
func (g *fakeGen) WritePrometheus(w io.Writer) error {
	_, err := fmt.Fprintf(w, "# TYPE fake_submitted_total counter\nfake_submitted_total %d\n", len(g.ids))
	return err
}
func (g *fakeGen) ModelID() string { return g.modelID }
func (g *fakeGen) Vocab() int      { return g.vocab }

// decodeEnvelope reads one error envelope body.
func decodeEnvelope(t *testing.T, r io.Reader) api.Error {
	t.Helper()
	var env struct {
		Error api.Error `json:"error"`
	}
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		t.Fatalf("error envelope: %v", err)
	}
	return env.Error
}

// TestGenerateStatusCodesPinned pins the NDJSON route's historical
// status codes through the new shared classifier: 405 on GET, 400 on
// garbage, 429 on queue-full, 503 on draining, 400 on any other
// submission failure — now all wearing the shared error envelope.
func TestGenerateStatusCodesPinned(t *testing.T) {
	cases := []struct {
		name       string
		submitErr  error
		wantStatus int
		wantCode   string
	}{
		{"queue full", serve.ErrQueueFull, http.StatusTooManyRequests, "queue_full"},
		{"draining", serve.ErrDraining, http.StatusServiceUnavailable, "draining"},
		{"engine validation", errors.New("serve: empty prompt"), http.StatusBadRequest, "bad_request"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			gen := newFakeGen(1, 2)
			gen.submitErr = c.submitErr
			ts := httptest.NewServer(api.NewHandler(gen))
			defer ts.Close()
			resp, err := http.Post(ts.URL+"/v1/generate", "application/json",
				strings.NewReader(`{"prompt":[1,2,3]}`))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, c.wantStatus)
			}
			if e := decodeEnvelope(t, resp.Body); e.Code != c.wantCode || e.Message == "" {
				t.Errorf("envelope %+v, want code %q", e, c.wantCode)
			}
		})
	}

	gen := newFakeGen(1)
	ts := httptest.NewServer(api.NewHandler(gen))
	defer ts.Close()
	if resp, err := http.Get(ts.URL + "/v1/generate"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET generate: %d, want 405", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: %d, want 400", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp.Body); e.Type != "invalid_request_error" {
		t.Errorf("bad-body envelope %+v", e)
	}
}

// TestGenerateNDJSONWireShapeUnchanged pins the NDJSON stream format:
// {"index":i,"id":t} lines and the {"done":true,"tokens":n} trailer.
func TestGenerateNDJSONWireShapeUnchanged(t *testing.T) {
	gen := newFakeGen(7, 9, 11)
	ts := httptest.NewServer(api.NewHandler(gen))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/generate", "application/json",
		strings.NewReader(`{"prompt":[1,2],"max_new_tokens":3,"seed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	want := `{"index":0,"id":7}
{"index":1,"id":9}
{"index":2,"id":11}
{"done":true,"tokens":3}
`
	if string(body) != want {
		t.Fatalf("NDJSON body:\n%s\nwant:\n%s", body, want)
	}
	if req := gen.last(); req.Seed != 5 || req.MaxNewTokens != 3 || len(req.Prompt) != 2 {
		t.Errorf("request seen by engine: %+v", req)
	}
}

// TestHealthz covers both states of the shared health route.
func TestHealthz(t *testing.T) {
	gen := newFakeGen(1)
	ts := httptest.NewServer(api.NewHandler(gen))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}
	gen.draining = true
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), `"draining"`) {
		t.Errorf("draining healthz: %d %q", resp.StatusCode, body)
	}
}

// TestMetricsNegotiation: JSON by default, Prometheus text under
// ?format= and Accept-header negotiation — one code path for every
// role.
func TestMetricsNegotiation(t *testing.T) {
	ts := httptest.NewServer(api.NewHandler(newFakeGen(1, 2, 3)))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default content type %q", ct)
	}
	if !strings.Contains(string(body), `"submitted"`) {
		t.Fatalf("JSON metrics: %q", body)
	}

	for _, build := range []func() *http.Request{
		func() *http.Request {
			r, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics?format=prometheus", nil)
			return r
		},
		func() *http.Request {
			r, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
			r.Header.Set("Accept", "text/plain")
			return r
		},
	} {
		resp, err := http.DefaultClient.Do(build())
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Fatalf("prometheus content type %q", ct)
		}
		if !strings.Contains(string(body), "fake_submitted_total 3") {
			t.Fatalf("prometheus body %q", body)
		}
	}
}

// TestClassifyUnavailable covers the adapter hook for fleet-level
// failures.
func TestClassifyUnavailable(t *testing.T) {
	err := api.Unavailable("no_replicas", errors.New("disagg: no healthy replica"))
	status, e := api.Classify(err)
	if status != http.StatusServiceUnavailable || e.Type != "service_unavailable" || e.Code != "no_replicas" {
		t.Fatalf("classified %d %+v", status, e)
	}
	status, e = api.Classify(context.Canceled)
	if status != http.StatusRequestTimeout || e.Code != "request_canceled" {
		t.Fatalf("context.Canceled classified %d %+v", status, e)
	}
}

// TestSSEClientCancelPropagates kills the client mid-stream and
// requires the request context cancellation to reach the generator —
// the engine-side ctx-cancel path the real runtime uses to stop
// decoding.
func TestSSEClientCancelPropagates(t *testing.T) {
	gen := newFakeGen(1, 2, 3)
	gen.hang = true
	ts := httptest.NewServer(api.NewHandler(gen))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/chat/completions",
		strings.NewReader(`{"messages":[{"role":"user","content":"hi"}],"stream":true}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read the first streamed chunk, then walk away.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()

	select {
	case <-gen.canceled:
	case <-time.After(10 * time.Second):
		t.Fatal("client cancellation never reached the generator")
	}
}

// TestOpenAIStreamErrorSurfacesInBand: a stream that dies mid-flight
// emits the shared envelope as an SSE event before the terminator.
func TestOpenAIStreamErrorSurfacesInBand(t *testing.T) {
	gen := newFakeGen(4)
	gen.streamErr = serve.ErrDrained
	ts := httptest.NewServer(api.NewHandler(gen))
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/completions", "application/json",
		strings.NewReader(`{"prompt":"hello","stream":true}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	s := string(body)
	if !strings.Contains(s, `"error"`) || !strings.Contains(s, "data: [DONE]") {
		t.Fatalf("stream error body:\n%s", s)
	}
	if strings.Contains(s, `"usage"`) {
		t.Errorf("failed stream must not report usage:\n%s", s)
	}
}

var _ api.Generator = (*fakeGen)(nil)
