package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/model"
)

// ChatMessage is one turn of an OpenAI chat request.
type ChatMessage struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

// ChatPromptText deterministically flattens a chat transcript into the
// prompt text the tokenizer shim encodes: one "role: content" line per
// message. Exported so tests (and clients that care about byte
// identity) can build the equivalent /v1/generate request.
func ChatPromptText(messages []ChatMessage) string {
	lines := make([]string, len(messages))
	for i, m := range messages {
		lines[i] = m.Role + ": " + m.Content
	}
	return strings.Join(lines, "\n")
}

// completionRequest is the POST /v1/completions body (the supported
// subset of the OpenAI schema).
type completionRequest struct {
	Model     string          `json:"model"`
	Prompt    json.RawMessage `json:"prompt"`
	MaxTokens int             `json:"max_tokens"`
	Stream    bool            `json:"stream"`
	Seed      int64           `json:"seed"`
	Stop      json.RawMessage `json:"stop"`
}

// chatRequest is the POST /v1/chat/completions body.
type chatRequest struct {
	Model     string          `json:"model"`
	Messages  []ChatMessage   `json:"messages"`
	MaxTokens int             `json:"max_tokens"`
	Stream    bool            `json:"stream"`
	Seed      int64           `json:"seed"`
	Stop      json.RawMessage `json:"stop"`
}

// usage is the OpenAI token-accounting block; streaming responses carry
// it in the final chunk.
type usage struct {
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
	TotalTokens      int `json:"total_tokens"`
}

// completionChoice / completionResponse are the text_completion wire
// shapes (response and streaming chunk share them; non-final chunks
// have a null finish_reason).
type completionChoice struct {
	Text         string  `json:"text"`
	Index        int     `json:"index"`
	FinishReason *string `json:"finish_reason"`
}

type completionResponse struct {
	ID      string             `json:"id"`
	Object  string             `json:"object"`
	Created int64              `json:"created"`
	Model   string             `json:"model"`
	Choices []completionChoice `json:"choices"`
	Usage   *usage             `json:"usage,omitempty"`
}

// chatDelta is a streaming chat fragment; the final chunk's delta is
// empty.
type chatDelta struct {
	Role    string  `json:"role,omitempty"`
	Content *string `json:"content,omitempty"`
}

type chatChoice struct {
	Index        int          `json:"index"`
	Delta        *chatDelta   `json:"delta,omitempty"`
	Message      *ChatMessage `json:"message,omitempty"`
	FinishReason *string      `json:"finish_reason"`
}

type chatResponse struct {
	ID      string       `json:"id"`
	Object  string       `json:"object"`
	Created int64        `json:"created"`
	Model   string       `json:"model"`
	Choices []chatChoice `json:"choices"`
	Usage   *usage       `json:"usage,omitempty"`
}

// openaiJob is one parsed OpenAI-format request, normalized to the
// engine's token-id space.
type openaiJob struct {
	id      string
	model   string
	created int64
	prompt  []int
	maxNew  int
	eos     int
	seed    int64
	stream  bool
	chat    bool
}

// handleCompletions serves POST /v1/completions: non-streaming JSON or
// "stream":true SSE, with the completion tokens produced by the exact
// same engine path as /v1/generate.
func (h *Handler) handleCompletions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, errMethodNotAllowed)
		return
	}
	var req completionRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		WriteError(w, invalidf("bad_body", "bad request body: %v", err))
		return
	}
	job, err := h.newJob(req.Model, req.MaxTokens, req.Seed, req.Stream, req.Stop, false)
	if err != nil {
		WriteError(w, err)
		return
	}
	if job.prompt, err = h.parsePrompt(req.Prompt); err != nil {
		WriteError(w, err)
		return
	}
	h.runOpenAI(w, r, job)
}

// handleChatCompletions serves POST /v1/chat/completions over the same
// engine path, with the transcript flattened by ChatPromptText.
func (h *Handler) handleChatCompletions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, errMethodNotAllowed)
		return
	}
	var req chatRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		WriteError(w, invalidf("bad_body", "bad request body: %v", err))
		return
	}
	if len(req.Messages) == 0 {
		WriteError(w, invalidf("missing_messages", "chat request needs at least one message"))
		return
	}
	job, err := h.newJob(req.Model, req.MaxTokens, req.Seed, req.Stream, req.Stop, true)
	if err != nil {
		WriteError(w, err)
		return
	}
	job.prompt = h.tok.Encode(ChatPromptText(req.Messages))
	h.runOpenAI(w, r, job)
}

// newJob validates the request fields every OpenAI route shares and
// stamps the response identity (id, created, echoed model).
func (h *Handler) newJob(modelName string, maxTokens int, seed int64, stream bool, stop json.RawMessage, chat bool) (openaiJob, error) {
	if err := h.checkModel(modelName); err != nil {
		return openaiJob{}, err
	}
	if maxTokens < 0 {
		return openaiJob{}, invalidf("bad_max_tokens", "max_tokens %d must be >= 0", maxTokens)
	}
	eos, err := h.parseStop(stop)
	if err != nil {
		return openaiJob{}, err
	}
	job := openaiJob{
		model:   modelName,
		created: h.now().Unix(),
		maxNew:  maxTokens,
		eos:     eos,
		seed:    seed,
		stream:  stream,
		chat:    chat,
	}
	if job.model == "" {
		job.model = h.gen.ModelID()
	}
	if chat {
		job.id = h.nextID("chatcmpl")
	} else {
		job.id = h.nextID("cmpl")
	}
	return job, nil
}

// checkModel accepts an empty model, the served model's id, and any
// name in the model or method registries; everything else is a 404
// model_not_found like the upstream API.
func (h *Handler) checkModel(name string) error {
	if name == "" || strings.EqualFold(name, h.gen.ModelID()) {
		return nil
	}
	if _, err := model.Registry.Lookup(name); err == nil {
		return nil
	}
	if _, err := cluster.MethodRegistry.Lookup(name); err == nil {
		return nil
	}
	return notFoundf("model_not_found", "model %q not found (served: %s; see GET /v1/models)", name, h.gen.ModelID())
}

// parsePrompt resolves the completions "prompt" field: a string is
// tokenized, an array of token ids is used verbatim, and a
// single-element string array is tokenized. Batched prompts are not
// supported.
func (h *Handler) parsePrompt(raw json.RawMessage) ([]int, error) {
	if len(raw) == 0 {
		return nil, invalidf("missing_prompt", "prompt is required")
	}
	var text string
	if err := json.Unmarshal(raw, &text); err == nil {
		return h.tok.Encode(text), nil
	}
	var ids []int
	if err := json.Unmarshal(raw, &ids); err == nil {
		return ids, nil
	}
	var texts []string
	if err := json.Unmarshal(raw, &texts); err == nil {
		if len(texts) != 1 {
			return nil, invalidf("bad_prompt", "batched prompts are not supported (got %d)", len(texts))
		}
		return h.tok.Encode(texts[0]), nil
	}
	return nil, invalidf("bad_prompt", "prompt must be a string, an array of token ids, or a single-element string array")
}

// parseStop resolves the "stop" field into the engine's EOS token: a
// stop word (or single-element array) that tokenizes to exactly one id.
// Absent or null disables the check.
func (h *Handler) parseStop(raw json.RawMessage) (int, error) {
	if len(raw) == 0 || string(raw) == "null" {
		return 0, nil
	}
	var word string
	if err := json.Unmarshal(raw, &word); err != nil {
		var words []string
		if err := json.Unmarshal(raw, &words); err != nil || len(words) != 1 {
			return 0, invalidf("bad_stop", "stop must be a string or a single-element string array")
		}
		word = words[0]
	}
	ids := h.tok.Encode(word)
	if len(ids) != 1 {
		return 0, invalidf("bad_stop", "stop %q must map to exactly one token (got %d)", word, len(ids))
	}
	return ids[0], nil
}

// runOpenAI executes one parsed job through the Generator and renders
// the response in the requested dialect.
func (h *Handler) runOpenAI(w http.ResponseWriter, r *http.Request, job openaiJob) {
	st, err := h.gen.Generate(r.Context(), Request{
		Prompt: job.prompt, MaxNewTokens: job.maxNew, EOS: job.eos, Seed: job.seed,
	})
	if err != nil {
		WriteError(w, err)
		return
	}
	if job.stream {
		h.streamOpenAI(w, job, st)
		return
	}
	h.collectOpenAI(w, job, st)
}

// finishReason reports why generation stopped: "stop" when the
// requested stop token ended the stream, "length" otherwise (the token
// budget).
func finishReason(job openaiJob, ids []int) string {
	if job.eos > 0 && len(ids) > 0 && ids[len(ids)-1] == job.eos {
		return "stop"
	}
	return "length"
}

// collectOpenAI drains the stream and writes the non-streaming JSON
// response.
func (h *Handler) collectOpenAI(w http.ResponseWriter, job openaiJob, st Stream) {
	var ids []int
	for tok := range st.Tokens() {
		ids = append(ids, tok.ID)
	}
	if err := st.Err(); err != nil {
		WriteError(w, err)
		return
	}
	fr := finishReason(job, ids)
	u := &usage{PromptTokens: len(job.prompt), CompletionTokens: len(ids), TotalTokens: len(job.prompt) + len(ids)}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if job.chat {
		_ = enc.Encode(chatResponse{
			ID: job.id, Object: "chat.completion", Created: job.created, Model: job.model,
			Choices: []chatChoice{{
				Message:      &ChatMessage{Role: "assistant", Content: h.tok.Decode(ids)},
				FinishReason: &fr,
			}},
			Usage: u,
		})
		return
	}
	_ = enc.Encode(completionResponse{
		ID: job.id, Object: "text_completion", Created: job.created, Model: job.model,
		Choices: []completionChoice{{Text: h.tok.Decode(ids), FinishReason: &fr}},
		Usage:   u,
	})
}

// streamOpenAI renders the stream as server-sent events: one data:
// chunk per token, a final chunk carrying finish_reason and usage, and
// the data: [DONE] terminator. A failed write means the client went
// away; returning cancels the request context, which propagates to the
// engine's cancellation path.
func (h *Handler) streamOpenAI(w http.ResponseWriter, job openaiJob, st Stream) {
	w.Header().Set("Content-Type", "text/event-stream; charset=utf-8")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)

	if job.chat {
		// The conventional role-announcing first chunk.
		empty := ""
		first := chatResponse{
			ID: job.id, Object: "chat.completion.chunk", Created: job.created, Model: job.model,
			Choices: []chatChoice{{Delta: &chatDelta{Role: "assistant", Content: &empty}}},
		}
		if writeSSE(w, fl, first) != nil {
			return
		}
	}

	var ids []int
	for tok := range st.Tokens() {
		delta := h.tok.Delta(tok.ID, len(ids))
		ids = append(ids, tok.ID)
		var chunk any
		if job.chat {
			chunk = chatResponse{
				ID: job.id, Object: "chat.completion.chunk", Created: job.created, Model: job.model,
				Choices: []chatChoice{{Delta: &chatDelta{Content: &delta}}},
			}
		} else {
			chunk = completionResponse{
				ID: job.id, Object: "text_completion", Created: job.created, Model: job.model,
				Choices: []completionChoice{{Text: delta}},
			}
		}
		if writeSSE(w, fl, chunk) != nil {
			return
		}
	}

	if err := st.Err(); err != nil {
		// The request failed mid-stream; surface the classified envelope
		// as an in-band event, then terminate the stream.
		_, e := Classify(err)
		_ = writeSSE(w, fl, errorEnvelope{Error: e})
		writeSSEDone(w, fl)
		return
	}

	fr := finishReason(job, ids)
	u := &usage{PromptTokens: len(job.prompt), CompletionTokens: len(ids), TotalTokens: len(job.prompt) + len(ids)}
	var final any
	if job.chat {
		final = chatResponse{
			ID: job.id, Object: "chat.completion.chunk", Created: job.created, Model: job.model,
			Choices: []chatChoice{{Delta: &chatDelta{}, FinishReason: &fr}},
			Usage:   u,
		}
	} else {
		final = completionResponse{
			ID: job.id, Object: "text_completion", Created: job.created, Model: job.model,
			Choices: []completionChoice{{FinishReason: &fr}},
			Usage:   u,
		}
	}
	if writeSSE(w, fl, final) != nil {
		return
	}
	writeSSEDone(w, fl)
}

// writeSSE frames one JSON value as a server-sent event.
func writeSSE(w http.ResponseWriter, fl http.Flusher, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
		return err
	}
	if fl != nil {
		fl.Flush()
	}
	return nil
}

// writeSSEDone emits the stream terminator.
func writeSSEDone(w http.ResponseWriter, fl http.Flusher) {
	_, _ = fmt.Fprint(w, "data: [DONE]\n\n")
	if fl != nil {
		fl.Flush()
	}
}

// modelEntry / modelList are the GET /v1/models wire shapes.
type modelEntry struct {
	ID      string `json:"id"`
	Object  string `json:"object"`
	Created int64  `json:"created"`
	OwnedBy string `json:"owned_by"`
}

type modelList struct {
	Object string       `json:"object"`
	Data   []modelEntry `json:"data"`
}

// handleModels lists the served model followed by the model and
// serving-method registries — every name a request's "model" field
// accepts. Created is 0 everywhere: registry entries have no birthday,
// and a stable value keeps the listing golden-testable.
func (h *Handler) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		WriteError(w, errMethodNotAllowed)
		return
	}
	served := h.gen.ModelID()
	list := modelList{Object: "list", Data: []modelEntry{{ID: served, Object: "model", OwnedBy: "hack"}}}
	for _, name := range model.Registry.Names() {
		if strings.EqualFold(name, served) {
			continue
		}
		list.Data = append(list.Data, modelEntry{ID: name, Object: "model", OwnedBy: "hack"})
	}
	for _, name := range cluster.MethodRegistry.Names() {
		list.Data = append(list.Data, modelEntry{ID: name, Object: "model", OwnedBy: "hack-method"})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(list)
}
