package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// WantsPrometheus reports whether a /metrics request asked for the text
// exposition format: an explicit ?format=prometheus (or "text"), or an
// Accept header preferring text/plain or OpenMetrics over JSON. This is
// the one content-negotiation helper every role's metrics endpoint
// shares.
func WantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// handleMetrics serves the role's metrics: indented JSON by default,
// Prometheus text under content negotiation — identically on every
// role.
func (h *Handler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if WantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = h.gen.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h.gen.MetricsJSON())
}

// handleHealthz answers {"status":"ok"}, or 503 {"status":"draining"}
// once shutdown has begun.
func (h *Handler) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if h.gen.Draining() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}
