package api

import (
	"hash/fnv"
	"strings"
	"unicode"
)

// The tokenizer's syllable alphabet: every canonical token word is a
// fixed-width sequence of consonant+vowel syllables, one base-80 digit
// per syllable. Both strings are sorted so word values are stable
// forever; changing them would change every served stream.
const (
	tokConsonants = "bdfghklmnprstvwz" // 16
	tokVowels     = "aeiou"            // 5
	tokBase       = len(tokConsonants) * len(tokVowels)
)

// Tokenizer deterministically maps text to the served model's token-id
// space and back. It exists because the toy models speak raw token IDs
// while the OpenAI surface speaks text; it is a shim, not a learned
// vocabulary.
//
// Decode renders each id as a canonical syllable word ("ba", "pimu",
// ...), joined by single spaces; Encode lowercases, splits on anything
// that is not a letter or digit, maps canonical words back to their
// exact id, and hashes every other word into the id space with FNV-1a.
// The round trip Encode(Decode(ids)) == ids holds for every id
// sequence, which is what makes OpenAI-format requests byte-identical
// (in emitted token ids) to the equivalent /v1/generate call.
type Tokenizer struct {
	vocab int
	nsyl  int // syllables per canonical word: smallest n with 80^n >= vocab
}

// NewTokenizer builds the shim for a vocabulary of the given size.
// Sizes below 2 (only possible with a degenerate test double; the
// serving runtime validates real specs) are clamped to 2.
func NewTokenizer(vocab int) *Tokenizer {
	if vocab < 2 {
		vocab = 2
	}
	nsyl, span := 1, tokBase
	for span < vocab {
		nsyl++
		span *= tokBase
	}
	return &Tokenizer{vocab: vocab, nsyl: nsyl}
}

// Vocab returns the tokenizer's id-space size.
func (t *Tokenizer) Vocab() int { return t.vocab }

// Word renders one token id as its canonical word. Ids outside
// [0, vocab) are first reduced into range (they cannot be produced by
// the engine; this only keeps Word total).
func (t *Tokenizer) Word(id int) string {
	id = ((id % t.vocab) + t.vocab) % t.vocab
	b := make([]byte, 2*t.nsyl)
	for i := t.nsyl - 1; i >= 0; i-- {
		d := id % tokBase
		id /= tokBase
		b[2*i] = tokConsonants[d/len(tokVowels)]
		b[2*i+1] = tokVowels[d%len(tokVowels)]
	}
	return string(b)
}

// Decode renders a token-id sequence as text: canonical words joined
// by single spaces.
func (t *Tokenizer) Decode(ids []int) string {
	var sb strings.Builder
	for i, id := range ids {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(t.Word(id))
	}
	return sb.String()
}

// Delta is the streaming text fragment for the token at the given
// sequence position: Word(id) with the joining space prepended for
// every position after the first, so concatenated deltas equal
// Decode of the full sequence.
func (t *Tokenizer) Delta(id, position int) string {
	if position == 0 {
		return t.Word(id)
	}
	return " " + t.Word(id)
}

// Encode maps text into the token-id space: words are lowercased and
// split on any rune that is not a letter or digit; a word that is a
// canonical in-range syllable word maps back to its exact id, every
// other word hashes into [0, vocab) with FNV-1a. Deterministic for all
// inputs; exact on Decode output.
func (t *Tokenizer) Encode(text string) []int {
	words := strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	if len(words) == 0 {
		return nil
	}
	ids := make([]int, len(words))
	for i, w := range words {
		ids[i] = t.wordID(w)
	}
	return ids
}

// wordID resolves one lowercased word: exact canonical parse first,
// FNV-1a fallback otherwise.
func (t *Tokenizer) wordID(w string) int {
	if id, ok := t.parseWord(w); ok {
		return id
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(w))
	return int(h.Sum64() % uint64(t.vocab))
}

// parseWord inverts Word: it succeeds only for a fixed-width canonical
// syllable word whose value is inside the vocabulary.
func (t *Tokenizer) parseWord(w string) (int, bool) {
	if len(w) != 2*t.nsyl {
		return 0, false
	}
	id := 0
	for i := 0; i < t.nsyl; i++ {
		ci := strings.IndexByte(tokConsonants, w[2*i])
		vi := strings.IndexByte(tokVowels, w[2*i+1])
		if ci < 0 || vi < 0 {
			return 0, false
		}
		id = id*tokBase + ci*len(tokVowels) + vi
	}
	if id >= t.vocab {
		return 0, false
	}
	return id, true
}
