package api_test

import (
	"strings"
	"testing"

	"github.com/hackkv/hack/internal/api"
)

// TestTokenizerRoundTrip pins the property the OpenAI surface's byte
// identity rests on: Encode(Decode(ids)) == ids for every id sequence,
// across vocabulary sizes spanning one, two, and three syllables.
func TestTokenizerRoundTrip(t *testing.T) {
	for _, vocab := range []int{2, 79, 80, 128, 6400, 6401} {
		tok := api.NewTokenizer(vocab)
		ids := make([]int, 0, 64)
		for i := 0; i < 64; i++ {
			ids = append(ids, (i*37+11)%vocab)
		}
		text := tok.Decode(ids)
		got := tok.Encode(text)
		if len(got) != len(ids) {
			t.Fatalf("vocab %d: round trip length %d, want %d", vocab, len(got), len(ids))
		}
		for i := range ids {
			if got[i] != ids[i] {
				t.Fatalf("vocab %d: round trip diverged at %d: %d != %d (text %q)",
					vocab, i, got[i], ids[i], text)
			}
		}
	}
}

// TestTokenizerWordInjective: distinct ids render distinct words, and
// deltas concatenate to Decode.
func TestTokenizerWordInjective(t *testing.T) {
	tok := api.NewTokenizer(128)
	seen := make(map[string]int, 128)
	for id := 0; id < 128; id++ {
		w := tok.Word(id)
		if prev, dup := seen[w]; dup {
			t.Fatalf("ids %d and %d share word %q", prev, id, w)
		}
		seen[w] = id
	}

	ids := []int{5, 81, 0, 127}
	var sb strings.Builder
	for i, id := range ids {
		sb.WriteString(tok.Delta(id, i))
	}
	if sb.String() != tok.Decode(ids) {
		t.Fatalf("concatenated deltas %q != Decode %q", sb.String(), tok.Decode(ids))
	}
}

// TestTokenizerEncodeFallback: arbitrary natural-language words hash
// deterministically into range, and punctuation/case are normalized.
func TestTokenizerEncodeFallback(t *testing.T) {
	tok := api.NewTokenizer(128)
	a := tok.Encode("Hello, world! How are KV caches today?")
	b := tok.Encode("hello world how are kv caches today")
	if len(a) != 7 || len(b) != 7 {
		t.Fatalf("token counts %d/%d, want 7", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("normalization diverged at %d: %v vs %v", i, a, b)
		}
		if a[i] < 0 || a[i] >= 128 {
			t.Fatalf("id %d out of range", a[i])
		}
	}
	if got := tok.Encode("   \t\n "); got != nil {
		t.Fatalf("whitespace-only text encoded to %v", got)
	}
}
