// Package api is the serving daemon's HTTP layer: one handler stack
// shared by every role that fronts requests (the local single-process
// runtime and the disaggregated router), so the two can never drift
// apart again.
//
// The surface has two dialects over the same engine:
//
//   - the bespoke NDJSON protocol the daemon has always spoken
//     (POST /v1/generate: one {"index":i,"id":t} line per token, then a
//     {"done":true,...} trailer), and
//   - an OpenAI-compatible surface (POST /v1/completions and
//     POST /v1/chat/completions, both supporting "stream":true SSE with
//     a data: [DONE] terminator and usage accounting in the final
//     chunk, plus GET /v1/models fed by the model and method
//     registries).
//
// OpenAI-format requests carry text, not token IDs, so a small
// deterministic tokenizer shim (see Tokenizer) maps text into the
// served model's token-id space and back for streaming deltas. The
// mapping round-trips exactly (Encode(Decode(ids)) == ids), which makes
// an OpenAI request's emitted token ids byte-identical to the
// equivalent /v1/generate call per (prompt, seed) — the property the
// end-to-end tests pin on both the local and router roles.
//
// Both dialects share /metrics (JSON by default, Prometheus text under
// the WantsPrometheus content negotiation), /healthz, and one
// OpenAI-style error envelope ({"error":{"type","message","code"}})
// with typed status mappings: queue-full load sheds map to 429,
// draining to 503, validation failures to 400 (see WriteError).
//
// Everything is parameterized over the narrow Generator interface, so
// the handler never knows whether tokens come from the in-process
// continuous-batching runtime or from a prefill/decode fleet across
// the KV wire.
package api

import (
	"context"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/hackkv/hack/internal/serve"
)

// Request is one generation job, shared with the serving runtime: a
// token-ID prompt, an optional per-request token budget, stop token,
// and quantizer seed.
type Request = serve.Request

// Token is one streamed generation event (sequence index + token ID).
// Its JSON form, {"index":i,"id":t}, is the NDJSON wire format.
type Token = serve.Token

// Stream delivers one request's tokens in order; Tokens() closes when
// the request finishes and Err() then reports why (nil for a natural
// finish). The local runtime's *serve.Stream satisfies it directly.
type Stream interface {
	Tokens() <-chan Token
	Err() error
}

// Generator is the narrow engine surface the HTTP layer is built over.
// Both the local serving runtime and the disaggregated router satisfy
// it (via thin adapters in the root package), so every role mounts the
// exact same handler stack.
type Generator interface {
	// Generate admits one request and returns its live token stream.
	// Cancelling ctx (the client disconnecting mid-stream) must
	// propagate to the engine's cancellation path. Typed errors map to
	// HTTP statuses via WriteError.
	Generate(ctx context.Context, req Request) (Stream, error)
	// Draining reports whether shutdown has begun (flips /healthz to
	// 503).
	Draining() bool
	// MetricsJSON returns the role's metrics document for JSON
	// /metrics.
	MetricsJSON() any
	// WritePrometheus renders the role's metrics in Prometheus text
	// exposition format.
	WritePrometheus(w io.Writer) error
	// ModelID names the served model (the default "model" echoed by the
	// OpenAI surface).
	ModelID() string
	// Vocab is the served model's vocabulary size, sizing the tokenizer
	// shim's id space.
	Vocab() int
}

// maxBodyBytes caps request bodies on every POST route.
const maxBodyBytes = 1 << 20

// Handler is the daemon's full HTTP surface over one Generator. Build
// it with NewHandler.
type Handler struct {
	gen Generator
	tok *Tokenizer
	mux *http.ServeMux
	// seq numbers completion ids ("cmpl-000001", ...) so responses are
	// deterministic per handler instance; now stamps "created" fields
	// (overridable for golden tests).
	seq atomic.Uint64
	now func() time.Time
}

// Option customizes a Handler.
type Option func(*Handler)

// WithNow replaces the clock stamping OpenAI "created" fields; tests
// pin it for golden output.
func WithNow(now func() time.Time) Option {
	return func(h *Handler) { h.now = now }
}

// NewHandler builds the daemon's HTTP surface over gen: the NDJSON
// /v1/generate route, the OpenAI-compatible /v1/completions,
// /v1/chat/completions and /v1/models routes, and the shared /metrics
// and /healthz endpoints.
func NewHandler(gen Generator, opts ...Option) *Handler {
	h := &Handler{
		gen: gen,
		tok: NewTokenizer(gen.Vocab()),
		mux: http.NewServeMux(),
		now: time.Now,
	}
	for _, o := range opts {
		o(h)
	}
	h.mux.HandleFunc("/v1/generate", h.handleGenerate)
	h.mux.HandleFunc("/v1/completions", h.handleCompletions)
	h.mux.HandleFunc("/v1/chat/completions", h.handleChatCompletions)
	h.mux.HandleFunc("/v1/models", h.handleModels)
	h.mux.HandleFunc("/metrics", h.handleMetrics)
	h.mux.HandleFunc("/healthz", h.handleHealthz)
	return h
}

// ServeHTTP dispatches to the mounted routes.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// nextID formats the next completion id with the given prefix.
func (h *Handler) nextID(prefix string) string {
	return prefix + "-" + pad6(h.seq.Add(1))
}

// pad6 renders n zero-padded to at least six digits.
func pad6(n uint64) string {
	s := make([]byte, 0, 8)
	for n > 0 {
		s = append([]byte{'0' + byte(n%10)}, s...)
		n /= 10
	}
	for len(s) < 6 {
		s = append([]byte{'0'}, s...)
	}
	return string(s)
}
