package api

import (
	"encoding/json"
	"net/http"
)

// genRequest is the POST /v1/generate body — the daemon's original
// NDJSON dialect, unchanged.
type genRequest struct {
	Prompt       []int `json:"prompt"`
	MaxNewTokens int   `json:"max_new_tokens"`
	EOS          int   `json:"eos"`
	Seed         int64 `json:"seed"`
}

// genTrailer is the stream's final NDJSON line; its wire shape is
// pinned by regression tests and must not change.
type genTrailer struct {
	Done   bool   `json:"done"`
	Tokens int    `json:"tokens"`
	Error  string `json:"error,omitempty"`
}

// handleGenerate streams one generation as NDJSON: one Token line per
// token, then a genTrailer. Pre-stream failures use the shared error
// envelope (classified like every other route); mid-stream failures
// keep the historical in-band trailer error.
func (h *Handler) handleGenerate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		WriteError(w, errMethodNotAllowed)
		return
	}
	var req genRequest
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		WriteError(w, invalidf("bad_body", "bad request body: %v", err))
		return
	}
	st, err := h.gen.Generate(r.Context(), Request{
		Prompt: req.Prompt, MaxNewTokens: req.MaxNewTokens, EOS: req.EOS, Seed: req.Seed,
	})
	if err != nil {
		WriteError(w, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	n := 0
	for tok := range st.Tokens() {
		if enc.Encode(tok) != nil {
			return // client went away; request ctx cancellation stops the stream
		}
		n++
		if fl != nil {
			fl.Flush()
		}
	}
	trailer := genTrailer{Done: true, Tokens: n}
	if err := st.Err(); err != nil {
		trailer.Error = err.Error()
	}
	_ = enc.Encode(trailer)
	if fl != nil {
		fl.Flush()
	}
}
