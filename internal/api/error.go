package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"github.com/hackkv/hack/internal/serve"
)

// Error is the OpenAI-style error body every route shares, wrapped as
// {"error":{...}} on the wire.
type Error struct {
	// Type is the coarse OpenAI-style class ("invalid_request_error",
	// "rate_limit_exceeded", "service_unavailable", ...).
	Type string `json:"type"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Code is the machine-readable cause ("queue_full", "draining",
	// "model_not_found", ...); empty when the type says it all.
	Code string `json:"code,omitempty"`
}

// errorEnvelope is the wire shape of every error response.
type errorEnvelope struct {
	Error Error `json:"error"`
}

// statusError pins an explicit HTTP status, type, and code onto an
// error so Classify maps it without knowing its origin. The request
// helpers below build them; the root package's router adapter uses
// Unavailable for fleet-level failures (no replicas, transfer failed).
type statusError struct {
	status int
	class  string
	code   string
	err    error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

// invalidf builds a 400 invalid_request_error with the given code.
func invalidf(code, format string, args ...any) error {
	return &statusError{
		status: http.StatusBadRequest, class: "invalid_request_error", code: code,
		err: fmt.Errorf(format, args...),
	}
}

// notFoundf builds a 404 invalid_request_error (unknown model).
func notFoundf(code, format string, args ...any) error {
	return &statusError{
		status: http.StatusNotFound, class: "invalid_request_error", code: code,
		err: fmt.Errorf(format, args...),
	}
}

// errMethodNotAllowed rejects non-POST calls on the generation routes.
var errMethodNotAllowed = &statusError{
	status: http.StatusMethodNotAllowed, class: "invalid_request_error",
	code: "method_not_allowed", err: errors.New("POST only"),
}

// Unavailable marks err as a 503 service_unavailable condition with
// the given code — the adapter hook for deployment-level failures the
// api package cannot name (e.g. the router's no-healthy-replica and
// transfer-failed sentinels).
func Unavailable(code string, err error) error {
	return &statusError{status: http.StatusServiceUnavailable, class: "service_unavailable", code: code, err: err}
}

// Classify maps an error onto its HTTP status and shared envelope
// body. Every route — NDJSON and OpenAI alike — goes through this one
// classifier:
//
//	queue-full load sheds    → 429 rate_limit_exceeded / queue_full
//	draining rejections      → 503 service_unavailable / draining
//	statusError (validation,
//	unknown model, adapter
//	Unavailable wraps)       → their pinned status
//	client cancellation      → 408 invalid_request_error / request_canceled
//	anything else            → 400 invalid_request_error / bad_request
//
// The 400 default pins the daemon's historical behavior: engine-side
// submission failures (empty prompt, out-of-vocab ids) have always
// been Bad Request.
func Classify(err error) (int, Error) {
	var se *statusError
	switch {
	case errors.Is(err, serve.ErrQueueFull):
		return http.StatusTooManyRequests, Error{Type: "rate_limit_exceeded", Message: err.Error(), Code: "queue_full"}
	case errors.Is(err, serve.ErrDraining):
		return http.StatusServiceUnavailable, Error{Type: "service_unavailable", Message: err.Error(), Code: "draining"}
	case errors.As(err, &se):
		return se.status, Error{Type: se.class, Message: se.err.Error(), Code: se.code}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout, Error{Type: "invalid_request_error", Message: err.Error(), Code: "request_canceled"}
	}
	return http.StatusBadRequest, Error{Type: "invalid_request_error", Message: err.Error(), Code: "bad_request"}
}

// WriteError classifies err and writes the shared envelope. It must
// only be called before the response body has started streaming.
func WriteError(w http.ResponseWriter, err error) {
	status, e := Classify(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: e})
}
