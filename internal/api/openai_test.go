package api_test

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hackkv/hack/internal/api"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedClock pins the OpenAI "created" field for golden output.
func fixedClock() time.Time { return time.Unix(1700000000, 0) }

// golden compares got against testdata/<name>, rewriting under
// -update.
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("golden %s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// TestCompletionsSSEGolden pins the full SSE byte stream for a
// streaming completion: one data: chunk per token, a final chunk with
// finish_reason and usage, and the [DONE] terminator.
func TestCompletionsSSEGolden(t *testing.T) {
	gen := newFakeGen(3, 81, 7)
	ts := httptest.NewServer(api.NewHandler(gen, api.WithNow(fixedClock)))
	defer ts.Close()

	resp, body := post(t, ts, "/v1/completions",
		`{"prompt":"hello world","max_tokens":3,"seed":7,"stream":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content type %q", ct)
	}
	golden(t, "sse_completions.golden", body)
	if req := gen.last(); req.Seed != 7 || req.MaxNewTokens != 3 || len(req.Prompt) != 2 {
		t.Errorf("engine request %+v", req)
	}
}

// TestChatSSEGolden pins the chat.completion.chunk stream: the
// role-announcing first chunk, per-token deltas, the final empty delta
// with finish_reason and usage, and [DONE].
func TestChatSSEGolden(t *testing.T) {
	gen := newFakeGen(3, 81, 7)
	ts := httptest.NewServer(api.NewHandler(gen, api.WithNow(fixedClock)))
	defer ts.Close()

	resp, body := post(t, ts, "/v1/chat/completions",
		`{"messages":[{"role":"system","content":"be brief"},{"role":"user","content":"hello"}],"max_tokens":3,"stream":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	golden(t, "sse_chat.golden", body)
}

// TestModelsGolden pins GET /v1/models: served model first, then the
// model and serving-method registries.
func TestModelsGolden(t *testing.T) {
	ts := httptest.NewServer(api.NewHandler(newFakeGen(1)))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	golden(t, "models.golden", string(b))
}

// TestCompletionsNonStreaming checks the aggregate JSON dialect: the
// decoded text round-trips to the emitted ids and usage adds up.
func TestCompletionsNonStreaming(t *testing.T) {
	gen := newFakeGen(3, 81, 7)
	ts := httptest.NewServer(api.NewHandler(gen, api.WithNow(fixedClock)))
	defer ts.Close()

	resp, body := post(t, ts, "/v1/completions", `{"prompt":[1,2,3,4],"max_tokens":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		ID      string `json:"id"`
		Object  string `json:"object"`
		Created int64  `json:"created"`
		Model   string `json:"model"`
		Choices []struct {
			Text         string  `json:"text"`
			FinishReason *string `json:"finish_reason"`
		} `json:"choices"`
		Usage struct {
			PromptTokens     int `json:"prompt_tokens"`
			CompletionTokens int `json:"completion_tokens"`
			TotalTokens      int `json:"total_tokens"`
		} `json:"usage"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if out.ID != "cmpl-000001" || out.Object != "text_completion" || out.Created != 1700000000 || out.Model != "Toy" {
		t.Errorf("identity fields: %+v", out)
	}
	tok := api.NewTokenizer(128)
	if got := tok.Encode(out.Choices[0].Text); len(got) != 3 || got[0] != 3 || got[1] != 81 || got[2] != 7 {
		t.Errorf("text %q re-encodes to %v, want [3 81 7]", out.Choices[0].Text, got)
	}
	if fr := out.Choices[0].FinishReason; fr == nil || *fr != "length" {
		t.Errorf("finish_reason %v, want length", fr)
	}
	if out.Usage.PromptTokens != 4 || out.Usage.CompletionTokens != 3 || out.Usage.TotalTokens != 7 {
		t.Errorf("usage %+v", out.Usage)
	}
}

// TestChatNonStreaming checks the aggregate chat dialect.
func TestChatNonStreaming(t *testing.T) {
	gen := newFakeGen(5, 6)
	ts := httptest.NewServer(api.NewHandler(gen, api.WithNow(fixedClock)))
	defer ts.Close()
	resp, body := post(t, ts, "/v1/chat/completions",
		`{"messages":[{"role":"user","content":"hi there"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		ID      string `json:"id"`
		Object  string `json:"object"`
		Choices []struct {
			Message struct {
				Role    string `json:"role"`
				Content string `json:"content"`
			} `json:"message"`
			FinishReason *string `json:"finish_reason"`
		} `json:"choices"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("decode: %v\n%s", err, body)
	}
	if out.ID != "chatcmpl-000001" || out.Object != "chat.completion" {
		t.Errorf("identity: %+v", out)
	}
	if out.Choices[0].Message.Role != "assistant" {
		t.Errorf("role %q", out.Choices[0].Message.Role)
	}
	// The flattened transcript must match ChatPromptText's encoding.
	want := api.NewTokenizer(128).Encode(api.ChatPromptText([]api.ChatMessage{{Role: "user", Content: "hi there"}}))
	got := gen.last().Prompt
	if len(got) != len(want) {
		t.Fatalf("prompt %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prompt %v, want %v", got, want)
		}
	}
}

// TestStopMapsToEOS: a stop word tokenizing to one id reaches the
// engine as EOS, and a stream ending on it reports finish_reason
// "stop".
func TestStopMapsToEOS(t *testing.T) {
	tok := api.NewTokenizer(128)
	stopID := 42
	gen := newFakeGen(9, stopID)
	ts := httptest.NewServer(api.NewHandler(gen))
	defer ts.Close()

	body := `{"prompt":"go","stop":"` + tok.Word(stopID) + `"}`
	resp, out := post(t, ts, "/v1/completions", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out)
	}
	if gen.last().EOS != stopID {
		t.Fatalf("engine EOS %d, want %d", gen.last().EOS, stopID)
	}
	if !strings.Contains(out, `"finish_reason":"stop"`) {
		t.Fatalf("finish_reason: %s", out)
	}
}

// TestOpenAIValidation pins the validation envelope for each rejected
// shape.
func TestOpenAIValidation(t *testing.T) {
	ts := httptest.NewServer(api.NewHandler(newFakeGen(1)))
	defer ts.Close()
	cases := []struct {
		name, path, body string
		wantStatus       int
		wantCode         string
	}{
		{"unknown model", "/v1/completions", `{"model":"gpt-4","prompt":"x"}`, 404, "model_not_found"},
		{"missing prompt", "/v1/completions", `{}`, 400, "missing_prompt"},
		{"batched prompt", "/v1/completions", `{"prompt":["a","b"]}`, 400, "bad_prompt"},
		{"negative max_tokens", "/v1/completions", `{"prompt":"x","max_tokens":-1}`, 400, "bad_max_tokens"},
		{"multi-token stop", "/v1/completions", `{"prompt":"x","stop":"two words"}`, 400, "bad_stop"},
		{"bad stop shape", "/v1/completions", `{"prompt":"x","stop":7}`, 400, "bad_stop"},
		{"no messages", "/v1/chat/completions", `{"messages":[]}`, 400, "missing_messages"},
		{"garbage body", "/v1/chat/completions", `{nope`, 400, "bad_body"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, body := post(t, ts, c.path, c.body)
			if resp.StatusCode != c.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, c.wantStatus, body)
			}
			var env struct {
				Error api.Error `json:"error"`
			}
			if err := json.Unmarshal([]byte(body), &env); err != nil {
				t.Fatalf("envelope: %v\n%s", err, body)
			}
			if env.Error.Code != c.wantCode {
				t.Errorf("code %q, want %q (%+v)", env.Error.Code, c.wantCode, env.Error)
			}
		})
	}

	// Known registry names are accepted as "model".
	resp, body := post(t, ts, "/v1/completions", `{"model":"HACK","prompt":"x"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("registry model rejected: %d %s", resp.StatusCode, body)
	}
	// GET on an OpenAI route is a 405 in the shared envelope.
	getResp, err := http.Get(ts.URL + "/v1/completions")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET completions: %d", getResp.StatusCode)
	}
}
