package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRouge1(t *testing.T) {
	cases := []struct {
		name     string
		cand, rf []int
		want     float64
	}{
		{"identical", []int{1, 2, 3}, []int{1, 2, 3}, 1},
		{"disjoint", []int{1, 2}, []int{3, 4}, 0},
		{"both empty", nil, nil, 1},
		{"cand empty", nil, []int{1}, 0},
		{"ref empty", []int{1}, nil, 0},
		// overlap 2, P=2/3, R=1 → F1 = 0.8.
		{"partial", []int{1, 2, 9}, []int{1, 2}, 0.8},
		// Clipping: candidate repeats a token more than reference has.
		{"clipped", []int{5, 5, 5}, []int{5, 6, 7}, 2.0 / 6.0 * 2 / (1.0/3.0 + 1.0/3.0) * (1.0 / 1.0)},
	}
	for _, c := range cases[:6] {
		if got := Rouge1(c.cand, c.rf); !almost(got, c.want) {
			t.Errorf("%s: Rouge1 = %v, want %v", c.name, got, c.want)
		}
	}
	// Clipped case computed directly: overlap=1, P=1/3, R=1/3, F1=1/3.
	if got := Rouge1([]int{5, 5, 5}, []int{5, 6, 7}); !almost(got, 1.0/3.0) {
		t.Errorf("clipped Rouge1 = %v, want 1/3", got)
	}
}

func TestRouge1OrderInvariant(t *testing.T) {
	// ROUGE-1 is a bag-of-tokens metric.
	a := []int{1, 2, 3, 4}
	b := []int{4, 3, 2, 1}
	if got := Rouge1(a, b); !almost(got, 1) {
		t.Errorf("permuted Rouge1 = %v, want 1", got)
	}
}

func TestEditSimilarity(t *testing.T) {
	if got := EditSimilarity([]int{1, 2, 3}, []int{1, 2, 3}); !almost(got, 1) {
		t.Errorf("identical = %v", got)
	}
	if got := EditSimilarity(nil, nil); !almost(got, 1) {
		t.Errorf("empty = %v", got)
	}
	// kitten→sitting classic: distance 3, max len 7 → 1 - 3/7.
	kitten := []int{'k', 'i', 't', 't', 'e', 'n'}
	sitting := []int{'s', 'i', 't', 't', 'i', 'n', 'g'}
	if got := EditSimilarity(kitten, sitting); !almost(got, 1-3.0/7.0) {
		t.Errorf("kitten/sitting = %v, want %v", got, 1-3.0/7.0)
	}
	if got := EditSimilarity(nil, []int{1, 2}); !almost(got, 0) {
		t.Errorf("empty vs nonempty = %v, want 0", got)
	}
}

func TestEditSimilarityProperties(t *testing.T) {
	f := func(a, b []int8) bool {
		x := make([]int, len(a))
		for i, v := range a {
			x[i] = int(v)
		}
		y := make([]int, len(b))
		for i, v := range b {
			y[i] = int(v)
		}
		s1 := EditSimilarity(x, y)
		s2 := EditSimilarity(y, x)
		return almost(s1, s2) && s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExactMatchPrefix(t *testing.T) {
	if got := ExactMatchPrefix([]int{1, 2, 3}, []int{1, 9, 3}); !almost(got, 2.0/3.0) {
		t.Errorf("prefix = %v", got)
	}
	if got := ExactMatchPrefix(nil, nil); !almost(got, 1) {
		t.Errorf("empty = %v", got)
	}
	if got := ExactMatchPrefix(nil, []int{1}); !almost(got, 0) {
		t.Errorf("empty vs nonempty = %v", got)
	}
}

func TestMeanRatio(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !almost(got, 2) {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Ratio(3, 4); !almost(got, 0.75) {
		t.Errorf("Ratio = %v", got)
	}
	if got := Ratio(3, 0); got != 0 {
		t.Errorf("Ratio by zero = %v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); !almost(got, 1) {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 1); !almost(got, 5) {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 0.5); !almost(got, 3) {
		t.Errorf("p50 = %v", got)
	}
	if got := Percentile(xs, 0.25); !almost(got, 2) {
		t.Errorf("p25 = %v", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(1))
		p1, p2 := rng.Float64(), rng.Float64()
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Percentile(xs, p1) <= Percentile(xs, p2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEditSimilarity(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]int, 300)
	y := make([]int, 300)
	for i := range x {
		x[i] = rng.Intn(100)
		y[i] = rng.Intn(100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EditSimilarity(x, y)
	}
}

func TestNearestRank(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want float64
	}{{0, 1}, {0.2, 1}, {0.5, 3}, {0.9, 5}, {0.99, 5}, {1, 5}}
	for _, c := range cases {
		if got := NearestRank(xs, c.p); got != c.want {
			t.Errorf("NearestRank(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := NearestRank(nil, 0.5); got != 0 {
		t.Errorf("NearestRank(nil) = %v, want 0", got)
	}
	// The input slice must not be reordered.
	if xs[0] != 5 || xs[4] != 3 {
		t.Errorf("NearestRank mutated its input: %v", xs)
	}
	s := Summarize(xs)
	if s.P50 != 3 || s.P90 != 5 || s.P99 != 5 {
		t.Errorf("Summarize = %+v", s)
	}
}
