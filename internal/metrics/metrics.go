// Package metrics implements the accuracy metrics of §7.1 — ROUGE-1 for
// summarization-style outputs and normalized Levenshtein edit similarity
// for code-completion-style outputs — over integer token sequences, plus
// the summary statistics the experiment tables report and the
// nearest-rank latency percentiles shared by the serving simulator and
// the live serving runtime.
package metrics

import (
	"math"
	"sort"
)

// Rouge1 returns the ROUGE-1 F1 score between a candidate and a
// reference token sequence: the harmonic mean of unigram precision and
// recall, with clipped counts. Both empty yields 1; one empty yields 0.
func Rouge1(candidate, reference []int) float64 {
	if len(candidate) == 0 && len(reference) == 0 {
		return 1
	}
	if len(candidate) == 0 || len(reference) == 0 {
		return 0
	}
	refCount := make(map[int]int, len(reference))
	for _, tok := range reference {
		refCount[tok]++
	}
	overlap := 0
	for _, tok := range candidate {
		if refCount[tok] > 0 {
			refCount[tok]--
			overlap++
		}
	}
	if overlap == 0 {
		return 0
	}
	p := float64(overlap) / float64(len(candidate))
	r := float64(overlap) / float64(len(reference))
	return 2 * p * r / (p + r)
}

// EditSimilarity returns 1 − d/max(|a|,|b|) where d is the Levenshtein
// distance — the normalized edit similarity used for HumanEval. Both
// empty yields 1.
func EditSimilarity(a, b []int) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	d := levenshtein(a, b)
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	return 1 - float64(d)/float64(n)
}

// levenshtein computes edit distance with two rolling rows.
func levenshtein(a, b []int) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitution
			if v := prev[j] + 1; v < m { // deletion
				m = v
			}
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// ExactMatchPrefix returns the fraction of positions, up to the shorter
// length, where the sequences agree — a strict generation-fidelity
// measure useful for debugging divergence points.
func ExactMatchPrefix(a, b []int) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		if len(a) == len(b) {
			return 1
		}
		return 0
	}
	match := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			match++
		}
	}
	return float64(match) / float64(n)
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Ratio returns a/b, or 0 when b is 0 — convenient for time-ratio
// columns.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// NearestRank returns the nearest-rank p-quantile (0 ≤ p ≤ 1) of xs:
// the ⌈p·n⌉-th smallest value. It sorts a copy, never the caller's
// slice, and returns 0 for an empty input. This is the serving-latency
// percentile definition shared by the simulator summaries and the live
// runtime snapshots.
func NearestRank(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// PercentileSummary is the nearest-rank p50/p90/p99 of one latency
// metric, in seconds.
type PercentileSummary struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
}

// Summarize computes the nearest-rank p50/p90/p99 summary of xs,
// sorting one copy once for all three ranks.
func Summarize(xs []float64) PercentileSummary {
	if len(xs) == 0 {
		return PercentileSummary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	at := func(p float64) float64 {
		rank := int(math.Ceil(p * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		return sorted[rank-1]
	}
	return PercentileSummary{P50: at(0.50), P90: at(0.90), P99: at(0.99)}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs by linear
// interpolation over a sorted copy; 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	insertionSort(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
