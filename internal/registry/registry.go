// Package registry provides the generic name→value registries behind
// the public hack.Methods / hack.Datasets / hack.GPUs / hack.Models
// surface. A registry maps case-insensitive names (plus optional
// aliases) to values, remembers registration order for presentation,
// and produces "unknown X, valid: ..." errors so CLIs can report the
// accepted spellings without hand-maintained lists.
//
// Registries are populated from init functions of the packages that own
// the entries — adding a serving method or dataset is one Register call
// next to its constructor, with no switch statement to extend.
package registry

import (
	"fmt"
	"strings"
	"sync"
)

// Registry maps names to values of type T.
type Registry[T any] struct {
	kind string

	mu      sync.RWMutex
	entries map[string]entry[T]
	order   []string // canonical names in registration order
	aliases []string // alias spellings in registration order
}

type entry[T any] struct {
	canonical string
	value     T
}

// New returns an empty registry. kind names the entry type in error
// messages ("method", "dataset", ...).
func New[T any](kind string) *Registry[T] {
	return &Registry[T]{kind: kind, entries: map[string]entry[T]{}}
}

// key normalizes a name for lookup.
func key(name string) string { return strings.ToLower(strings.TrimSpace(name)) }

// Register adds a value under its canonical name plus any aliases.
// Registering a duplicate name panics: entries are wired from init
// functions, so a collision is a programming error worth failing loudly.
func (r *Registry[T]) Register(name string, v T, aliases ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := entry[T]{canonical: name, value: v}
	for _, n := range append([]string{name}, aliases...) {
		k := key(n)
		if prev, dup := r.entries[k]; dup {
			panic(fmt.Sprintf("registry: duplicate %s name %q (already registered as %q)",
				r.kind, n, prev.canonical))
		}
		r.entries[k] = e
	}
	r.order = append(r.order, name)
	r.aliases = append(r.aliases, aliases...)
}

// Lookup resolves a name (case-insensitive, canonical or alias). The
// error for an unknown name lists every valid spelling.
func (r *Registry[T]) Lookup(name string) (T, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if e, ok := r.entries[key(name)]; ok {
		return e.value, nil
	}
	var zero T
	return zero, fmt.Errorf("unknown %s %q (valid: %s)", r.kind, name, strings.Join(r.allNames(), ", "))
}

// Names returns the canonical names in registration order — the
// presentation order of the paper's tables.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Values returns the registered values in registration order.
func (r *Registry[T]) Values() []T {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]T, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.entries[key(n)].value)
	}
	return out
}

// allNames returns every accepted spelling: canonical names first, then
// aliases, each in registration order. Callers hold r.mu.
func (r *Registry[T]) allNames() []string {
	return append(append([]string(nil), r.order...), r.aliases...)
}
