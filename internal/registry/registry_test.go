package registry

import (
	"strings"
	"testing"
)

func TestLookupCaseInsensitiveAndAliases(t *testing.T) {
	r := New[int]("thing")
	r.Register("Alpha", 1, "first")
	r.Register("Beta", 2)

	for _, name := range []string{"Alpha", "alpha", " ALPHA ", "first", "FIRST"} {
		v, err := r.Lookup(name)
		if err != nil || v != 1 {
			t.Errorf("Lookup(%q) = %d, %v", name, v, err)
		}
	}
	if v, _ := r.Lookup("beta"); v != 2 {
		t.Errorf("Lookup(beta) = %d", v)
	}
}

func TestUnknownErrorListsAllSpellings(t *testing.T) {
	r := New[int]("thing")
	r.Register("Alpha", 1, "first")
	r.Register("Beta", 2)
	_, err := r.Lookup("gamma")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	for _, want := range []string{`unknown thing "gamma"`, "Alpha", "Beta", "first"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestOrderPreserved(t *testing.T) {
	r := New[string]("x")
	names := []string{"C", "A", "B"}
	for _, n := range names {
		r.Register(n, strings.ToLower(n))
	}
	got := r.Names()
	if len(got) != 3 || got[0] != "C" || got[1] != "A" || got[2] != "B" {
		t.Errorf("Names() = %v, want registration order %v", got, names)
	}
	vals := r.Values()
	if len(vals) != 3 || vals[0] != "c" || vals[2] != "b" {
		t.Errorf("Values() = %v", vals)
	}
}

func TestDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r := New[int]("thing")
	r.Register("Alpha", 1)
	r.Register("ALPHA", 2)
}
