package quant

import (
	"math/rand"
	"testing"

	"github.com/hackkv/hack/internal/tensor"
)

// Growing K token-by-token must produce the identical tensor to
// quantizing the whole matrix at once: each token's partitions are
// independent along the head dimension.
func TestAppendRowsMatchesBulk(t *testing.T) {
	dh, pi := 32, 16
	cfg := cfgNearest(2, pi)
	rng := rand.New(rand.NewSource(1))
	full := tensor.RandNormal(rng, 10, dh, 1)

	bulk := MustQuantize(full, AlongCols, cfg)

	grown := Empty(AlongCols, dh, 2, pi)
	for i := 0; i < full.Rows; i++ {
		row := tensor.FromSlice(1, dh, full.Row(i))
		if err := grown.AppendRows(MustQuantize(row, AlongCols, cfg)); err != nil {
			t.Fatal(err)
		}
	}
	if grown.Rows != bulk.Rows {
		t.Fatalf("rows %d != %d", grown.Rows, bulk.Rows)
	}
	for i := range bulk.Codes {
		if grown.Codes[i] != bulk.Codes[i] {
			t.Fatalf("code %d differs", i)
		}
	}
	for i := range bulk.Min {
		if grown.Min[i] != bulk.Min[i] || grown.Scale[i] != bulk.Scale[i] || grown.Sums[i] != bulk.Sums[i] {
			t.Fatalf("metadata %d differs", i)
		}
	}
}

func TestAppendRowsErrors(t *testing.T) {
	a := Empty(AlongCols, 8, 2, 8)
	if err := a.AppendRows(Empty(AlongRows, 8, 2, 8)); err == nil {
		t.Error("axis mismatch accepted")
	}
	if err := a.AppendRows(Empty(AlongCols, 4, 2, 8)); err == nil {
		t.Error("cols mismatch accepted")
	}
	if err := a.AppendRows(Empty(AlongCols, 8, 4, 8)); err == nil {
		t.Error("bits mismatch accepted")
	}
}

// Growing V block-by-block must match quantizing the whole matrix at
// once when the row count is a multiple of Π.
func TestAppendRowBlocksMatchesBulk(t *testing.T) {
	dh, pi := 8, 4
	cfg := cfgNearest(2, pi)
	rng := rand.New(rand.NewSource(2))
	full := tensor.RandNormal(rng, 3*pi, dh, 1)

	bulk := MustQuantize(full, AlongRows, cfg)

	grown := Empty(AlongRows, dh, 2, pi)
	for b := 0; b < 3; b++ {
		blk := full.SliceRows(b*pi, (b+1)*pi)
		if err := grown.AppendRowBlocks(MustQuantize(blk, AlongRows, cfg)); err != nil {
			t.Fatal(err)
		}
	}
	if grown.Rows != bulk.Rows || grown.NBlocks != bulk.NBlocks {
		t.Fatalf("shape %d/%d vs %d/%d", grown.Rows, grown.NBlocks, bulk.Rows, bulk.NBlocks)
	}
	for i := range bulk.Codes {
		if grown.Codes[i] != bulk.Codes[i] {
			t.Fatalf("code %d differs", i)
		}
	}
	for i := range bulk.Min {
		if grown.Min[i] != bulk.Min[i] || grown.Scale[i] != bulk.Scale[i] || grown.Sums[i] != bulk.Sums[i] {
			t.Fatalf("metadata %d differs: min %v/%v scale %v/%v sum %v/%v",
				i, grown.Min[i], bulk.Min[i], grown.Scale[i], bulk.Scale[i], grown.Sums[i], bulk.Sums[i])
		}
	}
	// The grown tensor must dequantize identically too.
	if d := tensor.MaxAbsDiff(grown.Dequantize(), bulk.Dequantize()); d != 0 {
		t.Errorf("dequantized mismatch %v", d)
	}
}

func TestAppendRowBlocksRaggedRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ragged := MustQuantize(tensor.RandNormal(rng, 6, 4, 1), AlongRows, cfgNearest(2, 4))
	blk := MustQuantize(tensor.RandNormal(rng, 4, 4, 1), AlongRows, cfgNearest(2, 4))
	if err := ragged.AppendRowBlocks(blk); err == nil {
		t.Error("ragged destination accepted")
	}
	if err := blk.Clone().AppendRowBlocks(Empty(AlongCols, 4, 2, 4)); err == nil {
		t.Error("axis mismatch accepted")
	}
}

func TestEmptyGrowFromZero(t *testing.T) {
	e := Empty(AlongRows, 4, 2, 4)
	rng := rand.New(rand.NewSource(4))
	blk := MustQuantize(tensor.RandNormal(rng, 4, 4, 1), AlongRows, cfgNearest(2, 4))
	if err := e.AppendRowBlocks(blk); err != nil {
		t.Fatal(err)
	}
	if e.Rows != 4 || e.NBlocks != 1 {
		t.Errorf("grown empty = %d rows, %d blocks", e.Rows, e.NBlocks)
	}
	if d := tensor.MaxAbsDiff(e.Dequantize(), blk.Dequantize()); d != 0 {
		t.Errorf("dequantized mismatch %v", d)
	}
}
