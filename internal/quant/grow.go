package quant

import "fmt"

// AppendRows appends the rows of src to t. Both tensors must be quantized
// along columns with identical column count, bit width and partition
// size. This is how K grows during decode: each new token's partitions
// lie along the fixed head dimension, so existing metadata never changes
// (§5.3) and the new vectors simply append.
func (t *Tensor) AppendRows(src *Tensor) error {
	if t.Axis != AlongCols || src.Axis != AlongCols {
		return fmt.Errorf("quant: AppendRows requires along-cols tensors")
	}
	if t.Cols != src.Cols || t.Bits != src.Bits || t.Pi != src.Pi {
		return fmt.Errorf("quant: AppendRows layout mismatch (%d,%d,%d) vs (%d,%d,%d)",
			t.Cols, t.Bits, t.Pi, src.Cols, src.Bits, src.Pi)
	}
	if t.Rows == 0 {
		t.NBlocks = src.NBlocks
	} else if t.NBlocks != src.NBlocks {
		return fmt.Errorf("quant: AppendRows block count %d != %d", t.NBlocks, src.NBlocks)
	}
	t.Codes = append(t.Codes, src.Codes...)
	t.Min = append(t.Min, src.Min...)
	t.Scale = append(t.Scale, src.Scale...)
	t.Sums = append(t.Sums, src.Sums...)
	t.Rows += src.Rows
	return nil
}

// AppendRowBlocks appends the rows of src to t where both are quantized
// along rows (the V layout). t must currently hold a whole number of
// partitions (Rows divisible by Π) so that src's partition blocks land on
// aligned boundaries — this is exactly the state requantization
// elimination maintains: the trailing partial block lives outside the
// quantized cache until it fills. Per-column metadata is re-interleaved
// to account for the increased block count.
func (t *Tensor) AppendRowBlocks(src *Tensor) error {
	if t.Axis != AlongRows || src.Axis != AlongRows {
		return fmt.Errorf("quant: AppendRowBlocks requires along-rows tensors")
	}
	if t.Cols != src.Cols || t.Bits != src.Bits || t.Pi != src.Pi {
		return fmt.Errorf("quant: AppendRowBlocks layout mismatch")
	}
	if t.Rows%t.Pi != 0 {
		return fmt.Errorf("quant: AppendRowBlocks on ragged tensor (%d rows, Π=%d)", t.Rows, t.Pi)
	}
	oldBlocks, addBlocks := t.NBlocks, src.NBlocks
	newBlocks := oldBlocks + addBlocks
	nvec := t.Cols
	min := make([]float32, nvec*newBlocks)
	scale := make([]float32, nvec*newBlocks)
	sums := make([]int32, nvec*newBlocks)
	for v := 0; v < nvec; v++ {
		copy(min[v*newBlocks:], t.Min[v*oldBlocks:(v+1)*oldBlocks])
		copy(scale[v*newBlocks:], t.Scale[v*oldBlocks:(v+1)*oldBlocks])
		copy(sums[v*newBlocks:], t.Sums[v*oldBlocks:(v+1)*oldBlocks])
		copy(min[v*newBlocks+oldBlocks:], src.Min[v*addBlocks:(v+1)*addBlocks])
		copy(scale[v*newBlocks+oldBlocks:], src.Scale[v*addBlocks:(v+1)*addBlocks])
		copy(sums[v*newBlocks+oldBlocks:], src.Sums[v*addBlocks:(v+1)*addBlocks])
	}
	t.Min, t.Scale, t.Sums = min, scale, sums
	t.Codes = append(t.Codes, src.Codes...)
	t.Rows += src.Rows
	t.NBlocks = newBlocks
	return nil
}

// Empty returns an empty quantized tensor with the given layout, ready to
// be grown with AppendRows or AppendRowBlocks.
func Empty(axis Axis, cols, bits, pi int) *Tensor {
	return &Tensor{Cols: cols, Axis: axis, Bits: bits, Pi: pi}
}
