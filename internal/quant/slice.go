package quant

import "fmt"

// SliceRows returns a deep copy of rows [lo, hi) of t as a standalone
// tensor with the same layout, bit width and partition size. For
// along-cols tensors (K/Q) any row range works: each row carries its own
// partitions. For along-rows tensors (V) the range must be Π-aligned on
// both ends so partitions never straddle the cut — the invariant the
// shared-prefix page cache is built on. The slice shares no storage with
// t, so callers may cache it beyond t's lifetime; re-joining slices with
// AppendRows / AppendRowBlocks reproduces the original bytes exactly.
func (t *Tensor) SliceRows(lo, hi int) (*Tensor, error) {
	if lo < 0 || hi < lo || hi > t.Rows {
		return nil, fmt.Errorf("quant: SliceRows range [%d,%d) out of %d rows", lo, hi, t.Rows)
	}
	s := &Tensor{
		Rows: hi - lo, Cols: t.Cols,
		Axis: t.Axis, Bits: t.Bits, Pi: t.Pi,
	}
	s.Codes = append([]uint8(nil), t.Codes[lo*t.Cols:hi*t.Cols]...)
	if t.Axis == AlongCols {
		s.NBlocks = t.NBlocks
		s.Min = append([]float32(nil), t.Min[lo*t.NBlocks:hi*t.NBlocks]...)
		s.Scale = append([]float32(nil), t.Scale[lo*t.NBlocks:hi*t.NBlocks]...)
		s.Sums = append([]int32(nil), t.Sums[lo*t.NBlocks:hi*t.NBlocks]...)
		return s, nil
	}
	if t.Pi <= 0 || lo%t.Pi != 0 || hi%t.Pi != 0 {
		return nil, fmt.Errorf("quant: along-rows SliceRows [%d,%d) not aligned to Π=%d", lo, hi, t.Pi)
	}
	b0, b1 := lo/t.Pi, hi/t.Pi
	nb := b1 - b0
	s.NBlocks = nb
	s.Min = make([]float32, t.Cols*nb)
	s.Scale = make([]float32, t.Cols*nb)
	s.Sums = make([]int32, t.Cols*nb)
	// Per-column metadata is interleaved by block index; gather the
	// [b0,b1) window of each column into the slice's tighter layout.
	for v := 0; v < t.Cols; v++ {
		copy(s.Min[v*nb:], t.Min[v*t.NBlocks+b0:v*t.NBlocks+b1])
		copy(s.Scale[v*nb:], t.Scale[v*t.NBlocks+b0:v*t.NBlocks+b1])
		copy(s.Sums[v*nb:], t.Sums[v*t.NBlocks+b0:v*t.NBlocks+b1])
	}
	return s, nil
}
