package quant

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/hackkv/hack/internal/tensor"
)

// QuantizeInto must encode exactly like Quantize — same codes, metadata,
// sums, and (for stochastic rounding) the same RNG stream — while
// reusing the destination's storage at steady state.
func TestQuantizeIntoMatchesQuantize(t *testing.T) {
	for _, axis := range []Axis{AlongCols, AlongRows} {
		for _, rounding := range []Rounding{NearestRounding, StochasticRounding} {
			src := rand.New(rand.NewSource(42))
			m1 := tensor.RandNormal(src, 7, 96, 1)
			m2 := tensor.RandNormal(src, 7, 96, 1)
			cfg := func(rng *rand.Rand) Config {
				return Config{Bits: 4, Partition: 32, Rounding: rounding, RNG: rng}
			}

			rngA := rand.New(rand.NewSource(5))
			wantT1 := MustQuantize(m1, axis, cfg(rngA))
			wantT2 := MustQuantize(m2, axis, cfg(rngA))

			rngB := rand.New(rand.NewSource(5))
			got, err := QuantizeInto(nil, m1, axis, cfg(rngB))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, wantT1) {
				t.Errorf("axis=%v rounding=%v: first QuantizeInto differs from Quantize", axis, rounding)
			}
			codes := &got.Codes[0]
			got, err = QuantizeInto(got, m2, axis, cfg(rngB))
			if err != nil {
				t.Fatal(err)
			}
			if &got.Codes[0] != codes {
				t.Errorf("axis=%v: QuantizeInto reallocated for an identical shape", axis)
			}
			if !reflect.DeepEqual(got.Codes, wantT2.Codes) ||
				!reflect.DeepEqual(got.Min, wantT2.Min) ||
				!reflect.DeepEqual(got.Scale, wantT2.Scale) ||
				!reflect.DeepEqual(got.Sums, wantT2.Sums) {
				t.Errorf("axis=%v rounding=%v: reused QuantizeInto differs from Quantize", axis, rounding)
			}
		}
	}
}

// DequantizeInto must match Dequantize and fully overwrite a reused,
// previously larger destination.
func TestDequantizeIntoMatchesDequantize(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	dst := tensor.New(20, 50) // larger than needed, pre-filled
	for i := range dst.Data {
		dst.Data[i] = 99
	}
	for _, axis := range []Axis{AlongCols, AlongRows} {
		qt := MustQuantize(tensor.RandNormal(rng, 9, 40, 1), axis,
			Config{Bits: 3, Partition: 16, Rounding: NearestRounding})
		got := qt.DequantizeInto(dst)
		want := qt.Dequantize()
		if got.Rows != want.Rows || got.Cols != want.Cols {
			t.Fatalf("axis=%v: DequantizeInto shape %dx%d, want %dx%d",
				axis, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		if d := tensor.MaxAbsDiff(got, want); d != 0 {
			t.Errorf("axis=%v: DequantizeInto differs by %v", axis, d)
		}
	}
}

// The quantizer hot path must not allocate once its destination has
// reached steady-state capacity.
func TestQuantizeIntoSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := tensor.RandNormal(rng, 32, 128, 1)
	cfg := Config{Bits: 8, Partition: 64, Rounding: NearestRounding}
	qt, err := QuantizeInto(nil, m, AlongCols, cfg)
	if err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		if qt, err = QuantizeInto(qt, m, AlongCols, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("steady-state QuantizeInto allocates %.1f times per call, want 0", avg)
	}
}
