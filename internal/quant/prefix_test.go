package quant

import (
	"math/rand"
	"testing"

	"github.com/hackkv/hack/internal/tensor"
)

// skip advances rng by exactly n Int63 draws, mirroring how the
// prefix-sharing attention layer fast-forwards an operand stream.
func skip(rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		rng.Int63()
	}
}

// TestCountedRoundingPositionStable pins the property the shared-prefix
// tier is built on: under CountedStochasticRounding every element
// consumes exactly one RNG draw, so quantizing only a row suffix with a
// fast-forwarded stream reproduces the full quantization's codes for
// those rows — draw positions depend on element position, not on how
// much data precedes the call.
func TestCountedRoundingPositionStable(t *testing.T) {
	const rows, cols, pi, lo = 12, 16, 8, 5
	m := tensor.RandNormal(rand.New(rand.NewSource(1)), rows, cols, 1)

	cfg := Config{Bits: 2, Partition: pi, Rounding: CountedStochasticRounding,
		RNG: rand.New(rand.NewSource(42))}
	full, err := Quantize(m, AlongCols, cfg)
	if err != nil {
		t.Fatal(err)
	}

	suffix := tensor.New(rows-lo, cols)
	for i := 0; i < rows-lo; i++ {
		copy(suffix.Row(i), m.Row(lo+i))
	}
	rng := rand.New(rand.NewSource(42))
	skip(rng, lo*cols) // one draw per element in rows [0, lo)
	cfg.RNG = rng
	part, err := Quantize(suffix, AlongCols, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < part.Rows*cols; i++ {
		if part.Codes[i] != full.Codes[lo*cols+i] {
			t.Fatalf("code %d: suffix quantization %d, full %d", i, part.Codes[i], full.Codes[lo*cols+i])
		}
	}
}

// TestCountedRoundingDegenerateConsumesDraws checks that degenerate
// partitions (zero scale: all values equal) still consume one draw per
// element, keeping later draw positions aligned. Classic stochastic
// rounding skips those draws, which is exactly why it cannot share
// pages.
func TestCountedRoundingDegenerateConsumesDraws(t *testing.T) {
	const cols, pi = 8, 8
	a := tensor.New(2, cols) // row 0 constant (degenerate), row 1 varied
	b := tensor.New(2, cols) // row 0 varied, row 1 identical to a's
	for j := 0; j < cols; j++ {
		a.Row(0)[j] = 3
		b.Row(0)[j] = float32(j)
		v := float32(j)*0.25 - 1
		a.Row(1)[j] = v
		b.Row(1)[j] = v
	}
	enc := func(m *tensor.Matrix) *Tensor {
		t.Helper()
		q, err := Quantize(m, AlongCols, Config{Bits: 2, Partition: pi,
			Rounding: CountedStochasticRounding, RNG: rand.New(rand.NewSource(7))})
		if err != nil {
			t.Fatal(err)
		}
		return q
	}
	qa, qb := enc(a), enc(b)
	for j := 0; j < cols; j++ {
		if qa.Codes[cols+j] != qb.Codes[cols+j] {
			t.Fatalf("row 1 code %d diverged (%d vs %d): degenerate row 0 consumed a different draw count",
				j, qa.Codes[cols+j], qb.Codes[cols+j])
		}
	}
}

// TestSliceRowsRoundTrip checks that slicing and re-appending aligned
// row spans reconstructs the original tensor exactly, for both the K
// layout (along columns) and the V layout (along rows).
func TestSliceRowsRoundTrip(t *testing.T) {
	const rows, cols, pi, cut = 24, 16, 8, 16
	m := tensor.RandNormal(rand.New(rand.NewSource(3)), rows, cols, 1)
	for _, axis := range []Axis{AlongCols, AlongRows} {
		q, err := Quantize(m, axis, Config{Bits: 2, Partition: pi, Rounding: NearestRounding})
		if err != nil {
			t.Fatal(err)
		}
		a, err := q.SliceRows(0, cut)
		if err != nil {
			t.Fatalf("axis %v: %v", axis, err)
		}
		b, err := q.SliceRows(cut, rows)
		if err != nil {
			t.Fatalf("axis %v: %v", axis, err)
		}
		if axis == AlongCols {
			err = a.AppendRows(b)
		} else {
			err = a.AppendRowBlocks(b)
		}
		if err != nil {
			t.Fatalf("axis %v: %v", axis, err)
		}
		if a.Rows != q.Rows || a.NBlocks != q.NBlocks {
			t.Fatalf("axis %v: rejoined %d rows / %d blocks, want %d / %d", axis, a.Rows, a.NBlocks, q.Rows, q.NBlocks)
		}
		for i := range q.Codes {
			if a.Codes[i] != q.Codes[i] {
				t.Fatalf("axis %v: code %d diverged", axis, i)
			}
		}
		for i := range q.Min {
			if a.Min[i] != q.Min[i] || a.Scale[i] != q.Scale[i] {
				t.Fatalf("axis %v: meta %d diverged", axis, i)
			}
		}
	}
}

// TestSliceRowsRejectsMisaligned pins the V-layout alignment guard:
// slicing along-rows tensors off partition boundaries must fail rather
// than split a quantized partition.
func TestSliceRowsRejectsMisaligned(t *testing.T) {
	m := tensor.RandNormal(rand.New(rand.NewSource(4)), 16, 8, 1)
	q, err := Quantize(m, AlongRows, Config{Bits: 2, Partition: 8, Rounding: NearestRounding})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.SliceRows(4, 12); err == nil {
		t.Fatal("misaligned along-rows slice accepted")
	}
	if _, err := q.SliceRows(-8, 8); err == nil {
		t.Fatal("negative slice bound accepted")
	}
}
