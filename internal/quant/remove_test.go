package quant

import (
	"math/rand"
	"testing"

	"github.com/hackkv/hack/internal/tensor"
)

func TestRemoveRowsMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.RandNormal(rng, 10, 8, 1)
	full := MustQuantize(m, AlongCols, cfgNearest(2, 4))
	if err := full.RemoveRows(3, 6); err != nil {
		t.Fatal(err)
	}
	// Rebuild from the matrix with those rows deleted: must match
	// exactly (per-row partitions are independent).
	kept := tensor.New(0, 8)
	for i := 0; i < 10; i++ {
		if i >= 3 && i < 6 {
			continue
		}
		kept = tensor.AppendRows(kept, tensor.FromSlice(1, 8, m.Row(i)))
	}
	want := MustQuantize(kept, AlongCols, cfgNearest(2, 4))
	if full.Rows != 7 {
		t.Fatalf("rows %d", full.Rows)
	}
	for i := range want.Codes {
		if full.Codes[i] != want.Codes[i] {
			t.Fatalf("code %d differs", i)
		}
	}
	for i := range want.Min {
		if full.Min[i] != want.Min[i] || full.Sums[i] != want.Sums[i] {
			t.Fatalf("metadata %d differs", i)
		}
	}
}

func TestRemoveRowsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k := MustQuantize(tensor.RandNormal(rng, 4, 8, 1), AlongCols, cfgNearest(2, 4))
	if err := k.RemoveRows(2, 2); err == nil {
		t.Error("empty range accepted")
	}
	if err := k.RemoveRows(-1, 2); err == nil {
		t.Error("negative lo accepted")
	}
	if err := k.RemoveRows(0, 5); err == nil {
		t.Error("out-of-range hi accepted")
	}
	v := MustQuantize(tensor.RandNormal(rng, 4, 8, 1), AlongRows, cfgNearest(2, 4))
	if err := v.RemoveRows(0, 1); err == nil {
		t.Error("along-rows tensor accepted")
	}
}

func TestRemoveRowBlockMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := tensor.RandNormal(rng, 12, 6, 1) // 3 blocks of 4
	v := MustQuantize(m, AlongRows, cfgNearest(2, 4))
	if err := v.RemoveRowBlock(1); err != nil {
		t.Fatal(err)
	}
	// Rebuild from rows 0-3 and 8-11.
	kept := tensor.New(0, 6)
	kept = tensor.AppendRows(kept, m.SliceRows(0, 4))
	kept = tensor.AppendRows(kept, m.SliceRows(8, 12))
	want := MustQuantize(kept, AlongRows, cfgNearest(2, 4))
	if v.Rows != 8 || v.NBlocks != 2 {
		t.Fatalf("shape %d rows %d blocks", v.Rows, v.NBlocks)
	}
	for i := range want.Codes {
		if v.Codes[i] != want.Codes[i] {
			t.Fatalf("code %d differs", i)
		}
	}
	for i := range want.Min {
		if v.Min[i] != want.Min[i] || v.Scale[i] != want.Scale[i] || v.Sums[i] != want.Sums[i] {
			t.Fatalf("metadata %d differs", i)
		}
	}
	if d := tensor.MaxAbsDiff(v.Dequantize(), want.Dequantize()); d != 0 {
		t.Errorf("dequantized mismatch %v", d)
	}
}

func TestRemoveRowBlockErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := MustQuantize(tensor.RandNormal(rng, 10, 6, 1), AlongRows, cfgNearest(2, 4)) // ragged last block
	if err := v.RemoveRowBlock(2); err == nil {
		t.Error("ragged block accepted for eviction")
	}
	if err := v.RemoveRowBlock(5); err == nil {
		t.Error("out-of-range block accepted")
	}
	k := MustQuantize(tensor.RandNormal(rng, 8, 6, 1), AlongCols, cfgNearest(2, 4))
	if err := k.RemoveRowBlock(0); err == nil {
		t.Error("along-cols tensor accepted")
	}
}

// After removing a block, the homomorphic product over the survivor must
// equal the product computed on a freshly-built tensor — eviction leaves
// a fully consistent cache.
func TestRemoveThenMultiplyConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := tensor.RandNormal(rng, 12, 6, 1)
	v := MustQuantize(m, AlongRows, cfgNearest(2, 4))
	if err := v.RemoveRowBlock(0); err != nil {
		t.Fatal(err)
	}
	d := v.Dequantize()
	if d.Rows != 8 {
		t.Fatalf("dequantized rows %d", d.Rows)
	}
	// Sums invariant still holds per surviving block.
	for col := 0; col < v.Cols; col++ {
		for b := 0; b < v.NBlocks; b++ {
			lo, hi := v.BlockRange(b)
			var want int32
			for i := lo; i < hi; i++ {
				want += int32(v.Code(i, col))
			}
			if v.Sum(col, b) != want {
				t.Fatalf("sum invariant broken at col %d block %d", col, b)
			}
		}
	}
}
