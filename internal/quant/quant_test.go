package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hackkv/hack/internal/tensor"
)

func cfg2(rng *rand.Rand) Config {
	return Config{Bits: 2, Partition: 64, Rounding: StochasticRounding, RNG: rng}
}

func cfgNearest(bitsN, pi int) Config {
	return Config{Bits: bitsN, Partition: pi, Rounding: NearestRounding}
}

func TestConfigValidation(t *testing.T) {
	m := tensor.New(2, 4)
	if _, err := Quantize(m, AlongCols, Config{Bits: 0, Partition: 4, Rounding: NearestRounding}); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := Quantize(m, AlongCols, Config{Bits: 9, Partition: 4, Rounding: NearestRounding}); err == nil {
		t.Error("bits=9 accepted")
	}
	if _, err := Quantize(m, AlongCols, Config{Bits: 2, Partition: 0, Rounding: NearestRounding}); err == nil {
		t.Error("partition=0 accepted")
	}
	if _, err := Quantize(m, AlongCols, Config{Bits: 2, Partition: 4, Rounding: StochasticRounding}); err == nil {
		t.Error("stochastic without RNG accepted")
	}
}

func TestAxisString(t *testing.T) {
	if AlongCols.String() != "along-cols" || AlongRows.String() != "along-rows" {
		t.Error("Axis.String wrong")
	}
}

// Dequantized values must lie within the partition's [min, max] range and
// within one scale step of the original value.
func TestQuantizeErrorBound(t *testing.T) {
	for _, axis := range []Axis{AlongCols, AlongRows} {
		rng := rand.New(rand.NewSource(1))
		m := tensor.RandNormal(rng, 48, 48, 2)
		q := MustQuantize(m, axis, Config{Bits: 2, Partition: 16, Rounding: StochasticRounding, RNG: rng})
		d := q.Dequantize()
		for i := range m.Data {
			diff := math.Abs(float64(m.Data[i] - d.Data[i]))
			// Max error: one full scale step plus FP16 metadata rounding.
			if diff > 1.05*maxScale(q)+1e-2 {
				t.Fatalf("axis %v elem %d: err %v exceeds step %v", axis, i, diff, maxScale(q))
			}
		}
	}
}

func maxScale(q *Tensor) float64 {
	var mx float64
	for _, s := range q.Scale {
		if float64(s) > mx {
			mx = float64(s)
		}
	}
	return mx
}

// With 8-bit nearest rounding the reconstruction should be tight:
// within half a scale step.
func TestQuantize8BitNearestTight(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := tensor.RandNormal(rng, 16, 64, 1)
	q := MustQuantize(m, AlongCols, cfgNearest(8, 64))
	d := q.Dequantize()
	for i := range m.Data {
		diff := math.Abs(float64(m.Data[i] - d.Data[i]))
		if diff > 0.51*maxScale(q)+2e-3 {
			t.Fatalf("elem %d err %v vs half-step %v", i, diff, 0.5*maxScale(q))
		}
	}
}

// Stochastic rounding must be unbiased: the mean reconstruction over many
// trials converges to the original value.
func TestStochasticRoundingUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := tensor.FromSlice(1, 4, []float32{0.1, 0.37, -0.52, 0.9})
	const trials = 4000
	sum := make([]float64, 4)
	for k := 0; k < trials; k++ {
		q := MustQuantize(m, AlongCols, Config{Bits: 2, Partition: 4, Rounding: StochasticRounding, RNG: rng})
		d := q.Dequantize()
		for i, v := range d.Data {
			sum[i] += float64(v)
		}
	}
	for i, s := range sum {
		mean := s / trials
		if math.Abs(mean-float64(m.Data[i])) > 0.02 {
			t.Errorf("elem %d mean %v vs true %v (bias)", i, mean, m.Data[i])
		}
	}
}

// Property: codes never exceed 2^bits − 1 and sums equal the code totals.
func TestCodesAndSumsInvariant(t *testing.T) {
	f := func(seed int64, alongRows bool) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 2+rng.Intn(30), 2+rng.Intn(30)
		m := tensor.RandNormal(rng, rows, cols, 3)
		axis := AlongCols
		if alongRows {
			axis = AlongRows
		}
		b := 1 + rng.Intn(8)
		pi := 1 + rng.Intn(20)
		q := MustQuantize(m, axis, Config{Bits: b, Partition: pi, Rounding: StochasticRounding, RNG: rng})
		maxCode := uint8(1<<b - 1)
		for _, c := range q.Codes {
			if c > maxCode {
				return false
			}
		}
		nvec := q.Rows
		if axis == AlongRows {
			nvec = q.Cols
		}
		for v := 0; v < nvec; v++ {
			for blk := 0; blk < q.NBlocks; blk++ {
				lo, hi := q.BlockRange(blk)
				var want int32
				for k := lo; k < hi; k++ {
					if axis == AlongCols {
						want += int32(q.Code(v, k))
					} else {
						want += int32(q.Code(k, v))
					}
				}
				if q.Sum(v, blk) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConstantPartition(t *testing.T) {
	m := tensor.FromSlice(1, 4, []float32{5, 5, 5, 5})
	q := MustQuantize(m, AlongCols, cfgNearest(2, 4))
	d := q.Dequantize()
	for _, v := range d.Data {
		if v != 5 {
			t.Fatalf("constant partition reconstructed as %v", v)
		}
	}
	if _, s := q.Meta(0, 0); s != 0 {
		t.Errorf("scale for constant partition = %v, want 0", s)
	}
}

func TestPartialLastBlock(t *testing.T) {
	// 10 elements with Π=4 → blocks of 4,4,2.
	m := tensor.FromSlice(1, 10, []float32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	q := MustQuantize(m, AlongCols, cfgNearest(2, 4))
	if q.NBlocks != 3 {
		t.Fatalf("NBlocks = %d, want 3", q.NBlocks)
	}
	lo, hi := q.BlockRange(2)
	if lo != 8 || hi != 10 {
		t.Fatalf("last block range [%d,%d), want [8,10)", lo, hi)
	}
	d := q.Dequantize()
	// Last block holds {8,9}: endpoints reconstruct up to FP16 metadata
	// rounding of the scale (1/3 is inexact in half precision).
	if math.Abs(float64(d.At(0, 8))-8) > 1e-3 || math.Abs(float64(d.At(0, 9))-9) > 1e-3 {
		t.Errorf("last block dequant = %v, %v", d.At(0, 8), d.At(0, 9))
	}
}

func TestAlongRowsLayout(t *testing.T) {
	// Column 0 = {0,10}, column 1 = {5,5}: per-column metadata must differ.
	m := tensor.FromSlice(2, 2, []float32{0, 5, 10, 5})
	q := MustQuantize(m, AlongRows, cfgNearest(2, 2))
	min0, s0 := q.Meta(0, 0)
	min1, s1 := q.Meta(1, 0)
	if min0 != 0 || s0 == 0 {
		t.Errorf("col 0 meta = (%v,%v)", min0, s0)
	}
	if min1 != 5 || s1 != 0 {
		t.Errorf("col 1 meta = (%v,%v)", min1, s1)
	}
}

func TestDequantOps(t *testing.T) {
	m := tensor.New(3, 5)
	q := MustQuantize(m, AlongCols, cfgNearest(2, 4))
	if q.DequantOps() != 30 {
		t.Errorf("DequantOps = %d, want 30", q.DequantOps())
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := tensor.RandNormal(rng, 4, 8, 1)
	q := MustQuantize(m, AlongCols, cfg2(rng))
	c := q.Clone()
	c.Codes[0] ^= 1
	c.Sums[0]++
	if q.Codes[0] == c.Codes[0] || q.Sums[0] == c.Sums[0] {
		t.Error("Clone shares storage")
	}
}

func TestPackRoundTrip(t *testing.T) {
	for _, w := range []int{1, 2, 3, 4, 5, 7, 8} {
		n := 37
		codes := make([]uint8, n)
		rng := rand.New(rand.NewSource(int64(w)))
		for i := range codes {
			codes[i] = uint8(rng.Intn(1 << w))
		}
		p, err := Pack(codes, w)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != PackedBytes(n, w) {
			t.Fatalf("width %d: packed %d bytes, want %d", w, len(p), PackedBytes(n, w))
		}
		u, err := Unpack(p, n, w)
		if err != nil {
			t.Fatal(err)
		}
		for i := range codes {
			if u[i] != codes[i] {
				t.Fatalf("width %d: code %d: %d != %d", w, i, u[i], codes[i])
			}
		}
	}
}

func TestPackRoundTripProperty(t *testing.T) {
	f := func(raw []byte, w8 uint8) bool {
		w := int(w8%8) + 1
		codes := make([]uint8, len(raw))
		for i, b := range raw {
			codes[i] = b & uint8(1<<w-1)
		}
		p, err := Pack(codes, w)
		if err != nil {
			return false
		}
		u, err := Unpack(p, len(codes), w)
		if err != nil {
			return false
		}
		for i := range codes {
			if u[i] != codes[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPackErrors(t *testing.T) {
	if _, err := Pack(nil, 0); err == nil {
		t.Error("Pack width 0 accepted")
	}
	if _, err := Unpack(nil, 8, 2); err == nil {
		t.Error("Unpack short buffer accepted")
	}
}

func TestSumBits(t *testing.T) {
	// 2-bit, Π=64 → 8 bits (§5.3 example); 2-bit, Π=128 → 9 bits → INT16.
	if got := SumBits(2, 64); got != 8 {
		t.Errorf("SumBits(2,64) = %d, want 8", got)
	}
	if got := SumBits(2, 128); got != 9 {
		t.Errorf("SumBits(2,128) = %d, want 9", got)
	}
	if SumStorageBytes(2, 64) != 1 || SumStorageBytes(2, 128) != 2 {
		t.Error("SumStorageBytes alignment rule wrong")
	}
	if got := SumBits(3, 1); got != 3 {
		t.Errorf("SumBits(3,1) = %d, want 3", got)
	}
}

// The 2-bit compression rate including metadata should be near the
// paper's ≈86% for realistic shapes.
func TestCompressionRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := tensor.RandNormal(rng, 1024, 128, 1) // 1024 tokens × d_h 128
	q := MustQuantize(m, AlongCols, cfg2(rng))
	r := q.CompressionRatio()
	if r < 0.83 || r > 0.90 {
		t.Errorf("2-bit compression ratio %.3f outside [0.83, 0.90]", r)
	}
}

func TestSizeReport(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := tensor.RandNormal(rng, 128, 128, 1)
	q := MustQuantize(m, AlongCols, cfg2(rng))
	s := q.Size(true)
	if s.CodeBytes != 128*128*2/8 {
		t.Errorf("CodeBytes = %d", s.CodeBytes)
	}
	// 128 rows × 2 blocks × 4 bytes meta.
	if s.MetaBytes != 128*2*4 {
		t.Errorf("MetaBytes = %d", s.MetaBytes)
	}
	if s.SumBytes != 128*2*1 { // 2-bit Π=64 → 1 byte per sum
		t.Errorf("SumBytes = %d", s.SumBytes)
	}
	if s.Total() != s.CodeBytes+s.MetaBytes+s.SumBytes {
		t.Error("Total mismatch")
	}
	// Sums excluded on request.
	if q.Size(false).SumBytes != 0 {
		t.Error("Size(false) included sums")
	}
}

func TestPackCodesMatchesSize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := tensor.RandNormal(rng, 8, 32, 1)
	q := MustQuantize(m, AlongCols, cfg2(rng))
	if len(q.PackCodes()) != q.Size(false).CodeBytes {
		t.Error("PackCodes length disagrees with SizeReport")
	}
}

func BenchmarkQuantize2Bit(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.RandNormal(rng, 512, 128, 1)
	cfg := Config{Bits: 2, Partition: 64, Rounding: StochasticRounding, RNG: rng}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustQuantize(m, AlongCols, cfg)
	}
}

func BenchmarkDequantize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.RandNormal(rng, 512, 128, 1)
	q := MustQuantize(m, AlongCols, Config{Bits: 2, Partition: 64, Rounding: StochasticRounding, RNG: rng})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Dequantize()
	}
}

func BenchmarkPack2Bit(b *testing.B) {
	codes := make([]uint8, 512*128)
	for i := range codes {
		codes[i] = uint8(i & 3)
	}
	b.SetBytes(int64(len(codes)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pack(codes, 2); err != nil {
			b.Fatal(err)
		}
	}
}
