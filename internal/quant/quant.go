// Package quant implements the asymmetric b-bit stochastic quantizer of
// HACK (§5.2): each row (or column) of a matrix is split into partitions
// of Π elements; every partition stores its minimum m and scale
// s = (max−min)/(2^b−1) and each value x is encoded as
// round((x−m)/s) where round is unbiased stochastic rounding.
//
// The same quantizer also serves the dequantize-before-compute baselines
// (CacheGen/KVQuant style), which call Dequantize on the stored codes
// every decode iteration; HACK instead feeds the raw codes to the
// homomorphic matmul in package hack.
//
// Codes are held one-per-byte (INT8) for computation — mirroring the
// paper's Triton constraint that the GPU computes on INT8 — and can be
// bit-packed with Pack for wire transfer and cache-size accounting.
package quant

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hackkv/hack/internal/fp16"
	"github.com/hackkv/hack/internal/tensor"
)

// Axis selects which way partitions run through the matrix.
type Axis int

const (
	// AlongCols partitions each row along the column axis. Q and K use
	// this layout: their quantization partitions lie along the head
	// dimension, which is fixed, so appended tokens form new partitions
	// of their own (§5.3).
	AlongCols Axis = iota
	// AlongRows partitions each column along the row axis. V uses this
	// layout: its partitions lie along the sequence dimension, which
	// grows by one row per decode step — the reason requantization
	// elimination exists.
	AlongRows
)

func (a Axis) String() string {
	if a == AlongCols {
		return "along-cols"
	}
	return "along-rows"
}

// Rounding selects how fractional quantization steps are resolved.
type Rounding int

const (
	// StochasticRounding rounds x down with probability ⌈x⌉−x and up
	// otherwise, making the quantization error zero-mean (§5.2).
	StochasticRounding Rounding = iota
	// NearestRounding rounds to the nearest integer; deterministic,
	// used by tests and by the KVQuant-style baseline.
	NearestRounding
	// CountedStochasticRounding is stochastic rounding under a fixed
	// draw discipline: encoding consumes exactly one RNG draw per
	// element, unconditionally — including elements of degenerate
	// (zero-scale) blocks and elements whose fractional part is zero,
	// both of which plain StochasticRounding skips. The stream position
	// after encoding n elements is therefore always exactly n, making
	// the quantizer's randomness a pure function of element position.
	// This is the discipline behind shared-prefix KV reuse: a Π-aligned
	// page quantized while serving one request is bit-identical to the
	// same tokens quantized under any other request with the same
	// stream, because both draw the same uniforms at the same
	// positions.
	CountedStochasticRounding
)

// Config parameterizes a quantization pass.
type Config struct {
	// Bits per code: 2 for KV, 8 for Q and P in HACK. Must be 1..8.
	Bits int
	// Partition is Π, the number of elements per partition. The paper
	// requires a multiple of 16 for GPU efficiency; we only require >0
	// but the shipped configurations use 32/64/128.
	Partition int
	// Rounding mode; stochastic by default.
	Rounding Rounding
	// RNG drives stochastic rounding. May be nil for NearestRounding.
	RNG *rand.Rand
}

func (c Config) validate() error {
	if c.Bits < 1 || c.Bits > 8 {
		return fmt.Errorf("quant: bits %d out of range [1,8]", c.Bits)
	}
	if c.Partition <= 0 {
		return fmt.Errorf("quant: partition size %d must be positive", c.Partition)
	}
	if (c.Rounding == StochasticRounding || c.Rounding == CountedStochasticRounding) && c.RNG == nil {
		return fmt.Errorf("quant: stochastic rounding requires an RNG")
	}
	return nil
}

// Levels returns the number of representable code values, 2^bits.
func (c Config) Levels() int { return 1 << c.Bits }

// Tensor is a quantized matrix: INT8 codes plus per-partition metadata.
type Tensor struct {
	Rows, Cols int
	Axis       Axis
	Bits       int
	Pi         int
	// NBlocks is the number of partitions per vector (per row for
	// AlongCols, per column for AlongRows).
	NBlocks int
	// Codes holds one code per element in the source matrix's row-major
	// order, widened to a byte each (the INT8 compute format).
	Codes []uint8
	// Min and Scale hold the per-(vector, block) dequantization
	// metadata, already rounded through FP16 as the paper stores them.
	Min, Scale []float32
	// Sums holds Σ codes per (vector, block) — the summation-elimination
	// cache of §5.3. Kept in int32 here; the wire/cache format models
	// them as INT16 (§6).
	Sums []int32
}

// numVectors returns the number of quantization vectors.
func (t *Tensor) numVectors() int {
	if t.Axis == AlongCols {
		return t.Rows
	}
	return t.Cols
}

// axisLen returns the length of the partitioned axis.
func (t *Tensor) axisLen() int {
	if t.Axis == AlongCols {
		return t.Cols
	}
	return t.Rows
}

// metaIndex returns the index into Min/Scale/Sums for vector v, block b.
func (t *Tensor) metaIndex(v, b int) int { return v*t.NBlocks + b }

// Meta returns the (min, scale) pair for vector v, block b.
func (t *Tensor) Meta(v, b int) (min, scale float32) {
	i := t.metaIndex(v, b)
	return t.Min[i], t.Scale[i]
}

// Sum returns the cached code sum for vector v, block b.
func (t *Tensor) Sum(v, b int) int32 { return t.Sums[t.metaIndex(v, b)] }

// Code returns the code of element (i, j) in the source matrix layout.
func (t *Tensor) Code(i, j int) uint8 { return t.Codes[i*t.Cols+j] }

// BlockRange returns the element range [lo, hi) along the partitioned
// axis covered by block b.
func (t *Tensor) BlockRange(b int) (lo, hi int) {
	lo = b * t.Pi
	hi = lo + t.Pi
	if n := t.axisLen(); hi > n {
		hi = n
	}
	return lo, hi
}

// Quantize encodes m along the given axis. The returned tensor owns all
// its storage.
func Quantize(m *tensor.Matrix, axis Axis, cfg Config) (*Tensor, error) {
	return QuantizeInto(nil, m, axis, cfg)
}

// QuantizeInto encodes m like Quantize but reuses t's storage when its
// backing arrays have capacity, allocating only past the high-water
// mark. Passing nil t allocates a fresh tensor; the (possibly re-sliced)
// tensor is returned. This is the per-token path of the attention decode
// loop: quantizing the 1×d_h query into the same tensor every step costs
// no allocations at steady state.
func QuantizeInto(t *Tensor, m *tensor.Matrix, axis Axis, cfg Config) (*Tensor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	axisLen := m.Cols
	nvec := m.Rows
	if axis == AlongRows {
		axisLen = m.Rows
		nvec = m.Cols
	}
	nblocks := (axisLen + cfg.Partition - 1) / cfg.Partition
	if axisLen == 0 {
		nblocks = 0
	}
	if t == nil {
		t = &Tensor{}
	}
	t.Rows, t.Cols = m.Rows, m.Cols
	t.Axis, t.Bits, t.Pi, t.NBlocks = axis, cfg.Bits, cfg.Partition, nblocks
	t.Codes = tensor.Grow(t.Codes, m.Rows*m.Cols)
	t.Min = tensor.Grow(t.Min, nvec*nblocks)
	t.Scale = tensor.Grow(t.Scale, nvec*nblocks)
	t.Sums = tensor.Grow(t.Sums, nvec*nblocks)
	for v := 0; v < nvec; v++ {
		for b := 0; b < nblocks; b++ {
			quantizeBlock(t, m, v, b, cfg)
		}
	}
	return t, nil
}

// MustQuantize is Quantize for static configurations known to be valid;
// it panics on error.
func MustQuantize(m *tensor.Matrix, axis Axis, cfg Config) *Tensor {
	t, err := Quantize(m, axis, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// quantizeBlock encodes one (vector, block) partition. The element walk
// is a pair of direct loops per axis (no per-element closures): one
// min/max sweep to fix the block's (m, s), then one encode sweep that
// writes the codes and accumulates the SE code sum as it goes.
func quantizeBlock(t *Tensor, m *tensor.Matrix, v, b int, cfg Config) {
	lo, hi := t.BlockRange(b)
	minV := float32(math.Inf(1))
	maxV := float32(math.Inf(-1))
	if t.Axis == AlongCols {
		for _, x := range m.Row(v)[lo:hi] {
			if x < minV {
				minV = x
			}
			if x > maxV {
				maxV = x
			}
		}
	} else {
		for i := lo; i < hi; i++ {
			x := m.Data[i*t.Cols+v]
			if x < minV {
				minV = x
			}
			if x > maxV {
				maxV = x
			}
		}
	}
	levels := float32(int32(1)<<cfg.Bits) - 1
	scale := (maxV - minV) / levels
	// The paper stores m and s in FP16 (§6); round them the same way so
	// that prefill and decode instances agree bit-for-bit.
	minV = fp16.Round(minV)
	scale = fp16.Round(scale)
	mi := t.metaIndex(v, b)
	t.Min[mi] = minV
	t.Scale[mi] = scale

	var sum int32
	maxCode := float64(levels)
	if t.Axis == AlongCols {
		base := v * t.Cols
		row := m.Row(v)
		for j := lo; j < hi; j++ {
			code := encodeValue(row[j], minV, scale, maxCode, cfg)
			t.Codes[base+j] = code
			sum += int32(code)
		}
	} else {
		for i := lo; i < hi; i++ {
			code := encodeValue(m.Data[i*t.Cols+v], minV, scale, maxCode, cfg)
			t.Codes[i*t.Cols+v] = code
			sum += int32(code)
		}
	}
	t.Sums[mi] = sum
}

// encodeValue maps one value onto the block's code grid.
func encodeValue(x, minV, scale float32, maxCode float64, cfg Config) uint8 {
	if cfg.Rounding == CountedStochasticRounding {
		// Exactly one source advance per element, drawn before any early
		// return so the stream position stays a pure function of element
		// count. Int63 rather than Float64: Float64's rare resample loop
		// can consume a second draw, which would break the accounting.
		u := float64(cfg.RNG.Int63()) / (1 << 63)
		if !(scale > 0) { // degenerate or non-finite block → code 0
			return 0
		}
		q := float64(x-minV) / float64(scale)
		if q < 0 {
			q = 0
		}
		if q > maxCode {
			q = maxCode
		}
		fl := math.Floor(q)
		// Round up with probability q−⌊q⌋ (u is uniform on [0,1)), the
		// same zero-mean error law as StochasticRounding.
		if u < q-fl {
			fl++
		}
		if fl > maxCode {
			fl = maxCode
		}
		return uint8(fl)
	}
	if !(scale > 0) { // degenerate or non-finite block → code 0
		return 0
	}
	q := float64(x-minV) / float64(scale)
	if q < 0 {
		q = 0
	}
	if q > maxCode {
		q = maxCode
	}
	return roundCode(q, cfg)
}

// roundCode resolves the fractional code q per the rounding mode, then
// clamps to the code range.
func roundCode(q float64, cfg Config) uint8 {
	var r float64
	switch cfg.Rounding {
	case NearestRounding:
		r = math.Round(q)
	default:
		fl := math.Floor(q)
		frac := q - fl
		if frac > 0 && cfg.RNG.Float64() < frac {
			fl++
		}
		r = fl
	}
	max := float64(int(1)<<cfg.Bits - 1)
	if r < 0 {
		r = 0
	}
	if r > max {
		r = max
	}
	return uint8(r)
}

// Dequantize reconstructs the matrix as s·code + m per element. This is
// the operation HACK avoids and the baselines pay every decode iteration.
func (t *Tensor) Dequantize() *tensor.Matrix {
	return t.DequantizeInto(&tensor.Matrix{})
}

// DequantizeInto reconstructs the matrix into dst (reshaped as needed)
// and returns dst. The dequantize-before-compute baselines call this
// every decode step over the whole cache; reusing the destination keeps
// that overhead a compute cost rather than an allocator cost.
func (t *Tensor) DequantizeInto(dst *tensor.Matrix) *tensor.Matrix {
	dst.Reset(t.Rows, t.Cols)
	nvec := t.numVectors()
	for v := 0; v < nvec; v++ {
		for b := 0; b < t.NBlocks; b++ {
			lo, hi := t.BlockRange(b)
			mi := t.metaIndex(v, b)
			minV, scale := t.Min[mi], t.Scale[mi]
			if t.Axis == AlongCols {
				base := v * t.Cols
				row := dst.Row(v)
				for j := lo; j < hi; j++ {
					row[j] = scale*float32(t.Codes[base+j]) + minV
				}
			} else {
				for i := lo; i < hi; i++ {
					dst.Data[i*t.Cols+v] = scale*float32(t.Codes[i*t.Cols+v]) + minV
				}
			}
		}
	}
	return dst
}

// DequantOps returns the floating-point operation count of Dequantize
// (one multiply and one add per element), the 2·elements cost quoted in
// §5.3.
func (t *Tensor) DequantOps() int64 { return 2 * int64(t.Rows) * int64(t.Cols) }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := *t
	c.Codes = append([]uint8(nil), t.Codes...)
	c.Min = append([]float32(nil), t.Min...)
	c.Scale = append([]float32(nil), t.Scale...)
	c.Sums = append([]int32(nil), t.Sums...)
	return &c
}
