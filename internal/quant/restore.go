package quant

import "fmt"

// FromWire rebuilds a quantized tensor from its wire components: packed
// codes plus FP16-rounded min/scale metadata, with the summation-
// elimination sums recomputed from the codes (they are not transmitted —
// the decode instance derives them once on receipt, §5.3). All inputs
// come off the network, so every shape is validated rather than trusted.
func FromWire(axis Axis, rows, cols, bitWidth, pi int, packed []byte, min, scale []float32) (*Tensor, error) {
	// maxWireElems bounds the element count so the bit-size arithmetic
	// below cannot overflow on hostile headers (8 Gi codes ≫ any real KV
	// head).
	const maxWireElems = 1 << 33
	if rows < 0 || cols < 0 || rows > 0 && cols > 0 && rows > maxWireElems/cols {
		return nil, fmt.Errorf("quant: wire shape %dx%d", rows, cols)
	}
	if bitWidth < 1 || bitWidth > 8 {
		return nil, fmt.Errorf("quant: wire bit width %d out of [1,8]", bitWidth)
	}
	if pi <= 0 {
		return nil, fmt.Errorf("quant: wire partition %d", pi)
	}
	t := &Tensor{Rows: rows, Cols: cols, Axis: axis, Bits: bitWidth, Pi: pi}
	axisLen := t.axisLen()
	if axisLen > 0 {
		t.NBlocks = (axisLen + pi - 1) / pi
	}
	if axis == AlongRows && rows%pi != 0 {
		// Row-axis (V-style) tensors hold only complete partitions; a
		// ragged row count means the sender misframed the tail.
		return nil, fmt.Errorf("quant: wire row count %d not a multiple of partition %d", rows, pi)
	}
	nMeta := t.numVectors() * t.NBlocks
	if len(min) != nMeta || len(scale) != nMeta {
		return nil, fmt.Errorf("quant: wire metadata %d/%d entries, want %d", len(min), len(scale), nMeta)
	}
	codes, err := Unpack(packed, rows*cols, bitWidth)
	if err != nil {
		return nil, err
	}
	t.Codes = codes
	t.Min = min
	t.Scale = scale
	t.RecomputeSums()
	return t, nil
}

// RecomputeSums rebuilds the summation-elimination cache from the codes.
// The sums are redundant with the codes, so receivers recompute them
// instead of shipping them (§5.3 prices this as a one-time cost).
func (t *Tensor) RecomputeSums() {
	nvec := t.numVectors()
	t.Sums = make([]int32, nvec*t.NBlocks)
	for v := 0; v < nvec; v++ {
		for b := 0; b < t.NBlocks; b++ {
			lo, hi := t.BlockRange(b)
			var s int32
			if t.Axis == AlongCols {
				base := v * t.Cols
				for j := lo; j < hi; j++ {
					s += int32(t.Codes[base+j])
				}
			} else {
				for i := lo; i < hi; i++ {
					s += int32(t.Codes[i*t.Cols+v])
				}
			}
			t.Sums[t.metaIndex(v, b)] = s
		}
	}
}
