package quant

import "fmt"

// RemoveRows deletes rows [lo, hi) from an along-cols tensor (the K
// layout: one quantization vector per row), shifting later rows down.
// Metadata moves with its vectors; nothing is requantized. This is the
// primitive behind KV eviction (§9): dropping a token's K never disturbs
// other tokens' partitions because K partitions lie along the fixed head
// dimension.
func (t *Tensor) RemoveRows(lo, hi int) error {
	if t.Axis != AlongCols {
		return fmt.Errorf("quant: RemoveRows requires an along-cols tensor")
	}
	if lo < 0 || hi > t.Rows || lo >= hi {
		return fmt.Errorf("quant: RemoveRows range [%d,%d) of %d rows", lo, hi, t.Rows)
	}
	t.Codes = append(t.Codes[:lo*t.Cols], t.Codes[hi*t.Cols:]...)
	nb := t.NBlocks
	t.Min = append(t.Min[:lo*nb], t.Min[hi*nb:]...)
	t.Scale = append(t.Scale[:lo*nb], t.Scale[hi*nb:]...)
	t.Sums = append(t.Sums[:lo*nb], t.Sums[hi*nb:]...)
	t.Rows -= hi - lo
	return nil
}

// RemoveRowBlock deletes partition block b (Π whole rows) from an
// along-rows tensor (the V layout). Only whole-block removal keeps the
// remaining partitions aligned — the reason block granularity is the
// natural eviction unit for HACK's V cache.
func (t *Tensor) RemoveRowBlock(b int) error {
	if t.Axis != AlongRows {
		return fmt.Errorf("quant: RemoveRowBlock requires an along-rows tensor")
	}
	if b < 0 || b >= t.NBlocks {
		return fmt.Errorf("quant: block %d of %d", b, t.NBlocks)
	}
	lo, hi := t.BlockRange(b)
	if hi-lo != t.Pi {
		return fmt.Errorf("quant: block %d is ragged (%d rows); only full blocks are evictable", b, hi-lo)
	}
	t.Codes = append(t.Codes[:lo*t.Cols], t.Codes[hi*t.Cols:]...)
	oldNB := t.NBlocks
	newNB := oldNB - 1
	min := make([]float32, t.Cols*newNB)
	scale := make([]float32, t.Cols*newNB)
	sums := make([]int32, t.Cols*newNB)
	for v := 0; v < t.Cols; v++ {
		src := v * oldNB
		dst := v * newNB
		copy(min[dst:], t.Min[src:src+b])
		copy(scale[dst:], t.Scale[src:src+b])
		copy(sums[dst:], t.Sums[src:src+b])
		copy(min[dst+b:], t.Min[src+b+1:src+oldNB])
		copy(scale[dst+b:], t.Scale[src+b+1:src+oldNB])
		copy(sums[dst+b:], t.Sums[src+b+1:src+oldNB])
	}
	t.Min, t.Scale, t.Sums = min, scale, sums
	t.Rows -= t.Pi
	t.NBlocks = newNB
	return nil
}
