package quant

import (
	"fmt"
	"math/bits"
)

// Pack tightly bit-packs codes at the given width (1..8 bits per code)
// into a byte slice, little-endian within each byte. This is the wire and
// cache format; compute always happens on the widened INT8 codes (§6).
func Pack(codes []uint8, bitWidth int) ([]byte, error) {
	if bitWidth < 1 || bitWidth > 8 {
		return nil, fmt.Errorf("quant: pack width %d out of range", bitWidth)
	}
	out := make([]byte, PackedBytes(len(codes), bitWidth))
	mask := uint8(1<<bitWidth - 1)
	bitPos := 0
	for _, c := range codes {
		c &= mask
		byteIdx := bitPos >> 3
		off := bitPos & 7
		out[byteIdx] |= c << off
		if spill := off + bitWidth - 8; spill > 0 {
			out[byteIdx+1] |= c >> (bitWidth - spill)
		}
		bitPos += bitWidth
	}
	return out, nil
}

// Unpack reverses Pack, producing n codes of the given width.
func Unpack(packed []byte, n, bitWidth int) ([]uint8, error) {
	if bitWidth < 1 || bitWidth > 8 {
		return nil, fmt.Errorf("quant: unpack width %d out of range", bitWidth)
	}
	if need := PackedBytes(n, bitWidth); len(packed) < need {
		return nil, fmt.Errorf("quant: packed buffer %d bytes, need %d", len(packed), need)
	}
	out := make([]uint8, n)
	mask := uint8(1<<bitWidth - 1)
	bitPos := 0
	for i := range out {
		byteIdx := bitPos >> 3
		off := bitPos & 7
		v := packed[byteIdx] >> off
		if spill := off + bitWidth - 8; spill > 0 {
			v |= packed[byteIdx+1] << (bitWidth - spill)
		}
		out[i] = v & mask
		bitPos += bitWidth
	}
	return out, nil
}

// PackedBytes returns the number of bytes needed to pack n codes of the
// given bit width.
func PackedBytes(n, bitWidth int) int { return (n*bitWidth + 7) / 8 }

// SumBits returns the number of bits required to store a partition code
// sum for b-bit quantization with partition size pi: b + ⌈log2 Π⌉ (§5.3).
func SumBits(b, pi int) int {
	if pi <= 1 {
		return b
	}
	return b + bits.Len(uint(pi-1))
}

// SumStorageBytes returns the bytes used per stored sum after the memory
// alignment rule of §6: sums needing more than 8 bits are stored as
// INT16, otherwise one byte.
func SumStorageBytes(b, pi int) int {
	if SumBits(b, pi) > 8 {
		return 2
	}
	return 1
}

// SizeReport breaks down the storage footprint of a quantized tensor.
type SizeReport struct {
	// CodeBytes is the bit-packed code payload.
	CodeBytes int
	// MetaBytes covers the FP16 min and scale per (vector, block).
	MetaBytes int
	// SumBytes covers the summation-elimination cache (INT8/INT16 per
	// (vector, block), per the alignment rule).
	SumBytes int
}

// Total returns the full footprint in bytes.
func (s SizeReport) Total() int { return s.CodeBytes + s.MetaBytes + s.SumBytes }

// Size reports the packed storage footprint of t. withSums selects
// whether the SE cache is included (it is stored on decode instances but
// is optional on the wire, since the receiver can recompute it once).
func (t *Tensor) Size(withSums bool) SizeReport {
	r := SizeReport{
		CodeBytes: PackedBytes(len(t.Codes), t.Bits),
		MetaBytes: 2 * 2 * len(t.Min), // FP16 min + FP16 scale
	}
	if withSums {
		r.SumBytes = SumStorageBytes(t.Bits, t.Pi) * len(t.Sums)
	}
	return r
}

// CompressionRatio returns 1 − quantized/original, where original is the
// FP16 footprint of the same matrix. The paper quotes ≈86% for 2-bit
// quantization including metadata.
func (t *Tensor) CompressionRatio() float64 {
	orig := 2 * t.Rows * t.Cols
	if orig == 0 {
		return 0
	}
	return 1 - float64(t.Size(false).Total())/float64(orig)
}

// PackCodes returns t's codes in the bit-packed wire format.
func (t *Tensor) PackCodes() []byte {
	p, err := Pack(t.Codes, t.Bits)
	if err != nil {
		panic(err) // t.Bits was validated at construction
	}
	return p
}
