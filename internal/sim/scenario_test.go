package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/sweeprun"
	"github.com/hackkv/hack/internal/workload"
)

// -update regenerates the scenario goldens under testdata/sim/.
var update = flag.Bool("update", false, "rewrite golden files")

// scenario is one named serving situation the simulator must handle:
// a deployment, a trace, and the per-scenario expectations layered on
// top of the universal event-level invariants.
type scenario struct {
	name  string
	cfg   Config
	trace []workload.Request
	// expect runs scenario-specific assertions on the result.
	expect func(t *testing.T, res *Result)
	// preemptive relaxes the bucket-sum invariant: an evicted request
	// keeps the decode time of the iteration it was pulled from, so its
	// buckets may double-count that remainder.
	preemptive bool
}

// mixedTrace interleaves a short-prompt chat stream with long batch
// jobs, arrival-ordered with renumbered IDs — the bimodal mix several
// scenarios build on.
func mixedTrace(t *testing.T, chatN, batchN int, chatRPS, batchRPS float64) []workload.Request {
	t.Helper()
	chat, err := workload.Trace(workload.IMDb(), chatRPS, chatN, 7)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := workload.Trace(workload.Cocktail(), batchRPS, batchN, 11)
	if err != nil {
		t.Fatal(err)
	}
	out := append(append([]workload.Request(nil), chat...), batch...)
	// Stable merge by arrival; ties keep chat-before-batch order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].ArrivalS < out[j-1].ArrivalS; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	for i := range out {
		out[i].ID = i
	}
	return out
}

func poisson(t *testing.T, ds workload.Dataset, rps float64, n int, seed int64) []workload.Request {
	t.Helper()
	reqs, err := workload.Trace(ds, rps, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return reqs
}

// scenarios builds the named-scenario table. Every entry must complete
// all requests and satisfy the universal invariants; expect adds the
// scenario's own shape assertions.
func scenarios(t *testing.T) []scenario {
	t.Helper()
	a10g := testCM(t, cluster.A10G())
	v100 := testCM(t, cluster.V100())

	base := func(cm *cluster.CostModel, m cluster.Method) Config {
		return Config{CM: cm, Method: m, PrefillReplicas: 5, DecodeReplicas: 4,
			MaxBatch: 32, MemCapFrac: 0.95}
	}

	var scs []scenario

	// 1. Overloaded link: a 10 Gbps V100 instance serving uncompressed
	// KV — transfers dominate and the comm bucket must show it.
	{
		cfg := base(v100, cluster.Baseline())
		cfg.PrefillReplicas = 4
		scs = append(scs, scenario{
			name: "overloaded-link", cfg: cfg,
			trace: poisson(t, workload.ArXiv(), 0.25, 40, 1),
			expect: func(t *testing.T, res *Result) {
				if r := res.AvgRatios(); r.Comm < 0.2 {
					t.Errorf("comm ratio %.3f, want transfer-bound (>= 0.2)", r.Comm)
				}
			},
		})
	}

	// 2. Hot decode replica: the whole decode side is one replica, so
	// every request funnels through it and decode queueing shows up as
	// exposed comm/admission waits rather than lost requests.
	{
		cfg := base(a10g, cluster.DefaultHACK())
		cfg.DecodeReplicas = 1
		cfg.MaxBatch = 8
		scs = append(scs, scenario{
			name: "hot-decode-replica", cfg: cfg,
			trace: poisson(t, workload.ArXiv(), 0.8, 50, 2),
			expect: func(t *testing.T, res *Result) {
				if res.PeakMemFrac <= 0 {
					t.Error("hot replica never used memory")
				}
			},
		})
	}

	// 3. Mem-cap swap storm: heavy long-sequence load against the
	// baseline's FP16 cache forces the §4 CPU-swap path repeatedly.
	{
		cfg := base(a10g, cluster.Baseline())
		scs = append(scs, scenario{
			name: "memcap-swap-storm", cfg: cfg,
			trace: poisson(t, workload.Cocktail(), 0.65, 60, 3),
			expect: func(t *testing.T, res *Result) {
				if res.SwappedCount == 0 {
					t.Error("swap storm produced no swaps")
				}
			},
		})
	}

	// 4. Burst arrival: every request lands within the first 100 ms, so
	// queues absorb the whole trace at once.
	{
		trace := poisson(t, workload.ArXiv(), 1.0, 40, 4)
		for i := range trace {
			trace[i].ArrivalS = 0.001 + 0.0025*float64(i)
		}
		cfg := base(a10g, cluster.DefaultHACK())
		scs = append(scs, scenario{
			name: "burst-arrival", cfg: cfg, trace: trace,
			expect: func(t *testing.T, res *Result) {
				late := 0
				for _, r := range res.Requests {
					if r.Queue > 1 {
						late++
					}
				}
				if late == 0 {
					t.Error("a burst should queue most requests")
				}
			},
		})
	}

	// 5. Mixed-length bimodal: chat and batch share the pool under the
	// paper's shortest-queue policy.
	scs = append(scs, scenario{
		name:  "mixed-length-bimodal",
		cfg:   base(a10g, cluster.DefaultHACK()),
		trace: mixedTrace(t, 40, 10, 2.0, 0.3),
	})

	// 6. Zero-decode edge: every output is a single token, so requests
	// finish with prefill's token and the decode bucket stays empty.
	{
		trace := poisson(t, workload.IMDb(), 2.0, 30, 6)
		for i := range trace {
			trace[i].OutputLen = 1
		}
		cfg := base(a10g, cluster.DefaultHACK())
		scs = append(scs, scenario{
			name: "zero-decode-edge", cfg: cfg, trace: trace,
			expect: func(t *testing.T, res *Result) {
				for _, r := range res.Requests {
					if r.Decode != 0 || r.TBT != 0 {
						t.Errorf("req %d: single-token output accrued decode %.4f / tbt %.4f", r.ID, r.Decode, r.TBT)
					}
				}
			},
		})
	}

	// 7. Chunked prefill: 512-token passes over the bimodal mix; chat
	// prompts interleave between batch chunks, so the short-request
	// TTFT tail must beat the unchunked run's.
	{
		cfg := base(a10g, cluster.DefaultHACK())
		cfg.PrefillChunk = 512
		scs = append(scs, scenario{
			name: "chunked-prefill", cfg: cfg,
			trace: mixedTrace(t, 40, 10, 2.0, 0.3),
			expect: func(t *testing.T, res *Result) {
				multi := 0
				for _, r := range res.Requests {
					want := (r.InputLen + 511) / 512
					if r.Chunks != want {
						t.Errorf("req %d: %d chunks for %d tokens, want %d", r.ID, r.Chunks, r.InputLen, want)
					}
					if r.Chunks > 1 {
						multi++
					}
				}
				if multi == 0 {
					t.Error("no request took more than one chunk")
				}
			},
		})
	}

	// 8. Preemption pressure: a tight memory cap under heavy load with
	// preemption on — evictions must happen, every victim must still
	// complete, and nobody is evicted twice.
	{
		cfg := base(a10g, cluster.Baseline())
		cfg.DecodeReplicas = 2
		cfg.Preemption = true
		// A nonzero patience exercises the dedicated eligibility retry:
		// preemption must still fire without waiting for an unrelated
		// completion event.
		cfg.PreemptAfterS = 0.3
		scs = append(scs, scenario{
			name: "preemption-pressure", cfg: cfg, preemptive: true,
			trace: poisson(t, workload.Cocktail(), 0.6, 50, 8),
			expect: func(t *testing.T, res *Result) {
				if res.PreemptedCount == 0 {
					t.Error("pressure scenario produced no preemptions")
				}
				for _, r := range res.Requests {
					if r.Preemptions > 1 {
						t.Errorf("req %d preempted %d times; the policy caps victims at one eviction", r.ID, r.Preemptions)
					}
				}
			},
		})
	}

	// 9. Load-aware routing: the FlowKV-style scorer on the bimodal mix
	// must route everything and keep JCT in the same band as
	// shortest-queue (it optimizes placement, not magic).
	{
		cfg := base(a10g, cluster.DefaultHACK())
		cfg.Scheduler = LoadAware
		scs = append(scs, scenario{
			name: "loadaware-routing", cfg: cfg,
			trace: mixedTrace(t, 40, 10, 2.0, 0.3),
		})
	}

	// 10. SLO admission: the KVServe-style scheduler with a Baseline/
	// HACK class ladder must serve short interactive prompts at full
	// fidelity and compress the long jobs whose transfer would blow the
	// TBT target.
	{
		cfg := base(a10g, cluster.DefaultHACK())
		cfg.Scheduler = SLOAware
		cfg.SLOTTFT = 8
		cfg.SLOTBT = 0.25
		scs = append(scs, scenario{
			name: "slo-admission", cfg: cfg,
			trace: mixedTrace(t, 40, 10, 2.0, 0.3),
			expect: func(t *testing.T, res *Result) {
				byMethod := map[string]int{}
				for _, r := range res.Requests {
					byMethod[r.Method]++
				}
				if len(byMethod) < 2 {
					t.Errorf("SLO admission never split the classes: %v", byMethod)
				}
				for _, r := range res.Requests {
					if r.InputLen > 9000 && r.Method == "Baseline" {
						t.Errorf("req %d (%d tokens) served uncompressed; its transfer blows the TBT target", r.ID, r.InputLen)
					}
				}
			},
		})
	}

	// 11. Pipelined light load: transfer overlap hides most of the
	// baseline's communication when memory is plentiful.
	{
		cfg := base(a10g, cluster.Baseline())
		cfg.Pipeline = true
		scs = append(scs, scenario{
			name: "pipelined-light", cfg: cfg,
			trace: poisson(t, workload.Cocktail(), 0.1, 40, 9),
			expect: func(t *testing.T, res *Result) {
				if r := res.AvgRatios(); r.Comm > 0.35 {
					t.Errorf("pipelined light-load comm ratio %.3f, want mostly hidden", r.Comm)
				}
			},
		})
	}

	// 12. Single-replica serial: a 1x1 deployment degenerates to FIFO —
	// prefill completions must follow arrival order.
	{
		cfg := base(a10g, cluster.DefaultHACK())
		cfg.PrefillReplicas, cfg.DecodeReplicas = 1, 1
		scs = append(scs, scenario{
			name: "single-replica-serial", cfg: cfg,
			trace: poisson(t, workload.IMDb(), 1.0, 30, 10),
			expect: func(t *testing.T, res *Result) {
				// Requests are in completion order; FIFO prefill is
				// asserted in arrival (= ID) order.
				end := make(map[int]float64, len(res.Requests))
				for _, r := range res.Requests {
					end[r.ID] = r.Arrival + r.Queue + r.Prefill + r.Quant
				}
				for id := 1; id < len(res.Requests); id++ {
					if end[id] < end[id-1]-1e-9 {
						t.Errorf("req %d finished prefill at %.4f before its FIFO predecessor at %.4f", id, end[id], end[id-1])
					}
				}
			},
		})
	}

	return scs
}

// invariantProbe accumulates event-level violations while a scenario
// runs: replica oversubscription, memory-cap breaches, global and
// per-request time monotonicity, and request conservation.
type invariantProbe struct {
	cfg       Config
	lastAt    float64
	lastReqAt map[int]float64
	arrived   map[int]int
	completed map[int]int
	errs      []string
}

func newInvariantProbe(cfg Config) *invariantProbe {
	return &invariantProbe{cfg: cfg,
		lastReqAt: map[int]float64{}, arrived: map[int]int{}, completed: map[int]int{}}
}

func (p *invariantProbe) observe(e ProbeEvent) {
	fail := func(format string, args ...any) {
		if len(p.errs) < 10 {
			p.errs = append(p.errs, fmt.Sprintf(format, args...))
		}
	}
	if e.At < p.lastAt-1e-9 {
		fail("%s at %.6f before prior event at %.6f: simulation time ran backwards", e.Kind, e.At, p.lastAt)
	}
	p.lastAt = e.At
	if e.Req >= 0 {
		if e.At < p.lastReqAt[e.Req]-1e-9 {
			fail("req %d: %s at %.6f before its prior event at %.6f", e.Req, e.Kind, e.At, p.lastReqAt[e.Req])
		}
		p.lastReqAt[e.Req] = e.At
	}
	if e.Occupancy > p.cfg.MaxBatch {
		fail("%s: decode replica %d holds %d requests, max batch %d", e.Kind, e.Replica, e.Occupancy, p.cfg.MaxBatch)
	}
	if e.MemFrac > p.cfg.MemCapFrac+1e-9 && e.MemFrac > 0 {
		fail("%s: decode replica %d at %.4f memory, cap %.4f", e.Kind, e.Replica, e.MemFrac, p.cfg.MemCapFrac)
	}
	switch e.Kind {
	case "arrival":
		p.arrived[e.Req]++
	case "complete":
		p.completed[e.Req]++
	}
}

// runScenario executes one scenario with the invariant probe attached
// and asserts the universal invariants.
func runScenario(t *testing.T, sc scenario) *Result {
	t.Helper()
	probe := newInvariantProbe(sc.cfg)
	cfg := sc.cfg
	cfg.Probe = probe.observe
	res, err := Run(cfg, sc.trace)
	if err != nil {
		t.Fatalf("%s: %v", sc.name, err)
	}
	for _, msg := range probe.errs {
		t.Errorf("%s: %s", sc.name, msg)
	}

	// Conservation: every arrival completes exactly once, nothing is
	// invented or lost.
	if len(res.Requests) != len(sc.trace) {
		t.Fatalf("%s: %d of %d requests completed", sc.name, len(res.Requests), len(sc.trace))
	}
	for _, q := range sc.trace {
		if probe.arrived[q.ID] != 1 || probe.completed[q.ID] != 1 {
			t.Errorf("%s: req %d arrived %d times, completed %d times",
				sc.name, q.ID, probe.arrived[q.ID], probe.completed[q.ID])
		}
	}

	for _, r := range res.Requests {
		if r.Done <= r.Arrival {
			t.Errorf("%s: req %d done %.4f <= arrival %.4f", sc.name, r.ID, r.Done, r.Arrival)
		}
		if r.TTFT <= 0 || r.TTFT > r.JCT()+1e-9 {
			t.Errorf("%s: req %d TTFT %.4f outside (0, JCT=%.4f]", sc.name, r.ID, r.TTFT, r.JCT())
		}
		if r.Queue < 0 || r.Prefill <= 0 || r.Quant < 0 || r.Comm < -1e-9 || r.Decode < 0 || r.Overhead < 0 || r.TBT < 0 {
			t.Errorf("%s: req %d has a negative bucket: %+v", sc.name, r.ID, r)
		}
		if r.KVMem > r.Decode+1e-9 {
			t.Errorf("%s: req %d KVMem %.4f exceeds Decode %.4f", sc.name, r.ID, r.KVMem, r.Decode)
		}
		if r.Chunks < 1 {
			t.Errorf("%s: req %d took %d prefill passes", sc.name, r.ID, r.Chunks)
		}
		if !sc.preemptive {
			sum := r.Queue + r.Prefill + r.Quant + r.Comm + r.Decode + r.Overhead
			if sum > r.JCT()*1.001+1e-6 {
				t.Errorf("%s: req %d buckets %.4f exceed JCT %.4f", sc.name, r.ID, sum, r.JCT())
			}
		}
	}
	return res
}

// scenarioJSON is the deterministic serialization the goldens and the
// parallelism comparisons pin: the serving summary plus every
// per-request decomposition in completion order.
func scenarioJSON(t *testing.T, sc scenario) []byte {
	t.Helper()
	res, err := Run(sc.cfg, sc.trace)
	if err != nil {
		t.Fatalf("%s: %v", sc.name, err)
	}
	out := struct {
		Summary  Summary        `json:"summary"`
		Requests []RequestStats `json:"requests"`
	}{res.Summarize(SLO{TTFT: sc.cfg.SLOTTFT, TBT: sc.cfg.SLOTBT}), res.Requests}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestScenarioInvariants runs every named scenario under the event
// probe and asserts the universal and scenario-specific invariants.
func TestScenarioInvariants(t *testing.T) {
	for _, sc := range scenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			res := runScenario(t, sc)
			if sc.expect != nil {
				sc.expect(t, res)
			}
		})
	}
}

// TestScenarioGolden pins each scenario's full JSON against the
// committed golden under testdata/sim/ (regenerate with -update), after
// asserting two in-process runs are byte-identical. As with the sweep
// golden, the committed bytes pin amd64 float results; other
// architectures check run-to-run identity only.
func TestScenarioGolden(t *testing.T) {
	for _, sc := range scenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			got := scenarioJSON(t, sc)
			if again := scenarioJSON(t, sc); !bytes.Equal(got, again) {
				t.Fatal("two identical runs produced different JSON")
			}
			if runtime.GOARCH != "amd64" && !*update {
				t.Skipf("golden files are amd64-generated; on %s only run-to-run identity is checked", runtime.GOARCH)
			}
			golden := filepath.Join("testdata", "sim", sc.name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (regenerate with `go test -run TestScenarioGolden -update ./internal/sim`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("scenario deviates from %s (regenerate with -update if intended): got %d bytes, want %d",
					golden, len(got), len(want))
			}
		})
	}
}

// TestScenarioSweeprunParallelism replays the scenario table through
// the sweeprun pool at widths 1 and 4: per-scenario JSON must be
// byte-identical at every width — simulations don't leak state across
// goroutines.
func TestScenarioSweeprunParallelism(t *testing.T) {
	scs := scenarios(t)
	runAll := func(workers int) [][]byte {
		out := make([][]byte, len(scs))
		err := sweeprun.Map(context.Background(), len(scs), workers, func(_ context.Context, i int) error {
			res, err := Run(scs[i].cfg, scs[i].trace)
			if err != nil {
				return fmt.Errorf("%s: %w", scs[i].name, err)
			}
			b, err := json.Marshal(struct {
				Summary  Summary
				Requests []RequestStats
			}{res.Summarize(SLO{TTFT: scs[i].cfg.SLOTTFT, TBT: scs[i].cfg.SLOTBT}), res.Requests})
			if err != nil {
				return err
			}
			out[i] = b
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := runAll(1)
	parallel := runAll(4)
	for i := range scs {
		if !bytes.Equal(serial[i], parallel[i]) {
			t.Errorf("%s: results differ between workers=1 and workers=4", scs[i].name)
		}
	}
}

// TestScenarioStreamedAggregatesMatch is the streaming property for
// every scheduler: aggregates recomputed from the streamed onRequest
// values must equal the returned Result's exactly — same throughput,
// mean JCT and percentiles, same requests in the same order.
func TestScenarioStreamedAggregatesMatch(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	trace := mixedTrace(t, 30, 8, 2.0, 0.3)
	for _, sched := range AllSchedulers() {
		sched := sched
		t.Run(sched.String(), func(t *testing.T) {
			cfg := Config{CM: cm, Method: cluster.DefaultHACK(), PrefillReplicas: 5,
				DecodeReplicas: 4, MaxBatch: 32, MemCapFrac: 0.95, Scheduler: sched,
				SLOTTFT: 8, SLOTBT: 0.25}
			var streamed []RequestStats
			res, err := RunContext(context.Background(), cfg, trace, func(r RequestStats) {
				streamed = append(streamed, r)
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(streamed) != len(res.Requests) {
				t.Fatalf("streamed %d requests, result holds %d", len(streamed), len(res.Requests))
			}
			for i := range streamed {
				if streamed[i] != res.Requests[i] {
					t.Fatalf("streamed request %d differs from result:\n%+v\nvs\n%+v",
						i, streamed[i], res.Requests[i])
				}
			}
			rebuilt := &Result{Requests: streamed, PeakMemFrac: res.PeakMemFrac,
				SwappedCount: res.SwappedCount, PreemptedCount: res.PreemptedCount}
			slo := SLO{TTFT: cfg.SLOTTFT, TBT: cfg.SLOTBT}
			if got, want := rebuilt.AvgJCT(), res.AvgJCT(); got != want {
				t.Errorf("AvgJCT from stream %v != %v", got, want)
			}
			if got, want := rebuilt.P50JCT(), res.P50JCT(); got != want {
				t.Errorf("P50JCT from stream %v != %v", got, want)
			}
			if got, want := rebuilt.P99JCT(), res.P99JCT(); got != want {
				t.Errorf("P99JCT from stream %v != %v", got, want)
			}
			if got, want := rebuilt.Summarize(slo), res.Summarize(slo); got != want {
				t.Errorf("Summary from stream differs:\n%+v\nvs\n%+v", got, want)
			}
		})
	}
}

// TestScenarioSummarizeDoesNotMutate is the percentile-helper
// regression: percentiles sort copies, so summarizing must leave the
// (deliberately unsorted) Requests order untouched.
func TestScenarioSummarizeDoesNotMutate(t *testing.T) {
	res := &Result{Requests: []RequestStats{
		{ID: 3, Arrival: 0, Done: 30, TTFT: 3, TBT: 0.3, Queue: 3},
		{ID: 1, Arrival: 0, Done: 10, TTFT: 1, TBT: 0.1, Queue: 1},
		{ID: 2, Arrival: 0, Done: 20, TTFT: 2, TBT: 0.2, Queue: 2},
	}}
	before := append([]RequestStats(nil), res.Requests...)
	_ = res.Summarize(SLO{TTFT: 1.5, TBT: 0.15})
	_ = res.P50JCT()
	_ = res.P99JCT()
	_ = res.AvgJCT()
	for i := range before {
		if res.Requests[i] != before[i] {
			t.Fatalf("Requests[%d] mutated or reordered: %+v -> %+v", i, before[i], res.Requests[i])
		}
	}
	// And the percentile values themselves are nearest-rank over the
	// unsorted input: ⌈0.5·3⌉ = 2nd smallest JCT = 20.
	if got := res.P50JCT(); got != 20 {
		t.Fatalf("P50JCT over unsorted requests = %v, want 20", got)
	}
}
