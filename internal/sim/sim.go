// Package sim is the discrete-event simulator of the disaggregated
// serving cluster: prefill replicas with pluggable placement policies
// (shortest token queue, round-robin, fewest requests, FlowKV-style
// load-aware routing, KVServe-style SLO-aware admission), optional
// Sarathi-style chunked prefill, processor-shared transfer links into
// decode replicas, continuous-batching decode loops, memory-pressure
// admission with CPU swap (§4), decode-side preemption with KV
// re-transfer cost, and optional prefill/transfer pipelining (§2.1).
//
// Each simulated request records the paper's JCT decomposition — prefill,
// quantization, communication, dequantization-or-approximation, decode —
// plus the KV memory-access sub-bucket and peak decode memory, which is
// everything Figs. 1–4, 9–14 and Table 5 report, and the serving-level
// latencies (TTFT, TBT, queueing delay) SLO attainment is judged on.
package sim

import (
	"container/heap"
	"context"
	"fmt"

	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/netsim"
	"github.com/hackkv/hack/internal/workload"
)

// Config describes one simulated deployment.
type Config struct {
	// CM prices everything (model, instances, parallelism).
	CM *cluster.CostModel
	// Method is the serving method under test.
	Method cluster.Method
	// PrefillReplicas and DecodeReplicas count model replicas on each
	// side (the paper sizes pools so the sides have similar capacity).
	PrefillReplicas, DecodeReplicas int
	// MaxBatch caps a decode replica's concurrent batch.
	MaxBatch int
	// Pipeline overlaps KV transfer with prefill computation when the
	// target decode replica has memory at prefill start (§2.1).
	Pipeline bool
	// MemCapFrac is the usable fraction of decode replica memory.
	MemCapFrac float64
	// Scheduler selects the request-placement policy; the zero value is
	// the paper's shortest-token-queue scheduler.
	Scheduler Scheduler
	// PrefillChunk, when positive, splits prompts into chunks of at
	// most this many tokens; between chunks the replica round-robins
	// across its queue, so short prompts are not head-of-line blocked
	// behind long ones. Each extra pass costs one per-layer launch
	// overhead. 0 disables chunking.
	PrefillChunk int
	// Preemption lets a memory-starved swapped request evict the
	// admitted request with the most remaining decode work (at most
	// once per victim): the victim's KV — prompt plus generated tokens —
	// is swapped out and must be re-transferred before it resumes.
	Preemption bool
	// PreemptAfterS is how long an admissible swapped request waits
	// before it may preempt; 0 preempts at the first failed retry.
	PreemptAfterS float64
	// SLOTTFT and SLOTBT are the serving targets in seconds (time to
	// first token; mean time between subsequent tokens). Zero targets
	// are untracked. SLOAware admission steers against them and
	// Result.Summarize reports attainment.
	SLOTTFT, SLOTBT float64
	// MethodClasses are the fidelity-ordered candidates SLOAware
	// admission picks from (highest fidelity first). Empty defaults to
	// [Baseline, Method]. Ignored by every other scheduler.
	MethodClasses []cluster.Method
	// SpecK, when greater than 1, models speculative decoding on the
	// decode replicas: each decode step drafts up to SpecK-1 tokens and
	// verifies the window in one batched kernel call, so the effective
	// per-token decode time scales by windowCost/E[tokens]. 0 and 1
	// disable.
	SpecK int
	// SpecAcceptance is the per-token draft acceptance probability α in
	// [0, 1]. Expected tokens per verify window is the truncated
	// geometric series (1-α^K)/(1-α) — each accepted draft token lets
	// the window run one position further.
	SpecAcceptance float64
	// SpecDraftCost is one draft step's cost relative to a full decode
	// step (the draft runs a coarser compression class); 0 selects 0.25.
	// At low acceptance the model correctly predicts a slowdown: drafts
	// are paid whether or not their tokens survive verification.
	SpecDraftCost float64
	// Probe, when non-nil, observes simulator transitions (tests,
	// tracing). It must not mutate simulator state; it never affects
	// results.
	Probe func(ProbeEvent)
}

// SpecSpeedup returns the modeled speculative-decoding throughput
// factor: E[tokens emitted per window] over the window's cost in
// full-decode-step units, (K-1)·draftCost + 1 (drafting plus one
// batched verify, whose KV sweep amortizes across the window). 1 when
// speculation is off; below 1 when acceptance is too low to pay for
// the drafting.
func (c Config) SpecSpeedup() float64 {
	if c.SpecK <= 1 {
		return 1
	}
	k, a := float64(c.SpecK), c.SpecAcceptance
	expected := k
	if a < 1 {
		expected = (1 - pow(a, c.SpecK)) / (1 - a)
	}
	draftCost := c.SpecDraftCost
	if draftCost == 0 {
		draftCost = 0.25
	}
	return expected / ((k-1)*draftCost + 1)
}

// pow is x^n for small integer n (avoids importing math for one call).
func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CM == nil {
		return fmt.Errorf("sim: nil cost model")
	}
	if c.PrefillReplicas <= 0 || c.DecodeReplicas <= 0 {
		return fmt.Errorf("sim: replicas %d/%d", c.PrefillReplicas, c.DecodeReplicas)
	}
	if c.MaxBatch <= 0 {
		return fmt.Errorf("sim: max batch %d", c.MaxBatch)
	}
	if c.MemCapFrac <= 0 || c.MemCapFrac > 1 {
		return fmt.Errorf("sim: mem cap fraction %v outside (0, 1]", c.MemCapFrac)
	}
	if !c.Scheduler.valid() {
		return fmt.Errorf("sim: unknown scheduler %d (valid: %v)", c.Scheduler, SchedulerNames())
	}
	if c.PrefillChunk < 0 {
		return fmt.Errorf("sim: prefill chunk %d must be >= 0", c.PrefillChunk)
	}
	if c.PreemptAfterS < 0 {
		return fmt.Errorf("sim: preempt-after %v must be >= 0", c.PreemptAfterS)
	}
	if c.SLOTTFT < 0 || c.SLOTBT < 0 {
		return fmt.Errorf("sim: SLO targets %v/%v must be >= 0", c.SLOTTFT, c.SLOTBT)
	}
	if c.SpecK < 0 {
		return fmt.Errorf("sim: speculation window %d must be >= 0", c.SpecK)
	}
	if c.SpecAcceptance < 0 || c.SpecAcceptance > 1 {
		return fmt.Errorf("sim: speculation acceptance %v outside [0, 1]", c.SpecAcceptance)
	}
	if c.SpecDraftCost < 0 {
		return fmt.Errorf("sim: speculation draft cost %v must be >= 0", c.SpecDraftCost)
	}
	return nil
}

// RequestStats is one request's timeline decomposition. Queue + Prefill
// + Quant + Comm + Decode + Overhead ≈ JCT (up to one iteration of
// batch-join slack; a preempted request additionally double-counts the
// remainder of the decode iteration it was evicted from); KVMem is a
// sub-bucket of Decode.
type RequestStats struct {
	ID            int
	Arrival, Done float64
	Queue         float64 // prefill queue wait (including inter-chunk waits)
	Prefill       float64 // prefill computation
	Quant         float64 // KV quantization at prefill
	Comm          float64 // exposed transfer + swap + admission wait
	Overhead      float64 // dequantization (baselines) or approximation (HACK)
	Decode        float64 // decode iterations minus Overhead
	KVMem         float64 // KV memory-access share inside Decode
	TTFT          float64 // time to first token: queue + prefill + quant
	TBT           float64 // mean time between subsequent tokens (0 for single-token outputs)
	Swapped       bool    // went through the CPU-swap path
	Preemptions   int     // times the request was evicted from a decode replica
	Chunks        int     // prefill passes the prompt took (1 unless chunked)
	Method        string  // serving method (per-request under SLO-aware admission)
	InputLen      int
	OutputLen     int
}

// JCT returns the request's job completion time.
func (r RequestStats) JCT() float64 { return r.Done - r.Arrival }

// Result aggregates one simulation run.
type Result struct {
	Requests []RequestStats
	// PeakMemFrac is the highest memory utilization any decode replica
	// reached (Table 5's metric).
	PeakMemFrac float64
	// SwappedCount counts requests that took the CPU-swap path.
	SwappedCount int
	// PreemptedCount counts requests evicted from a decode replica at
	// least once.
	PreemptedCount int
}

// request tracks in-flight state.
type request struct {
	workload.Request
	stats      RequestStats
	method     cluster.Method
	generated  int
	prefilled  int     // prompt tokens already prefilled (chunked prefill)
	chunkTo    int     // prompt tokens covered once the in-flight pass ends
	estPrefill float64 // estimated prefill seconds, for load-aware scoring
	memReserve float64
	prefillEnd float64
	commMark   float64 // start of the current exposed-communication span
	queuedAt   float64 // when the request last entered a prefill queue
	readyAt    float64 // parked-in-CPU requests become admissible here
}

// decodeTokens returns how many decode iterations the request needs (the
// first output token comes from prefill).
func (r *request) decodeTokens() int {
	n := r.OutputLen - 1
	if n < 0 {
		n = 0
	}
	return n
}

type prefillReplica struct {
	queue       []*request
	busy        bool
	queuedToks  int     // un-prefilled prompt tokens assigned here
	pendingWire float64 // KV bytes this replica has yet to finish producing
	drainS      float64 // estimated prefill seconds queued here
}

type decodeReplica struct {
	batch   []*request
	pending []*request
	// admitted counts requests holding a slot on this replica — batched,
	// pending, in transfer, or in a swap/ready limbo between events —
	// from reserve until completion or preemption. pickDecode caps it at
	// MaxBatch, so the replica can never oversubscribe through the
	// windows where a request is in none of the visible sets.
	admitted int
	usedMem  float64
	link     *netsim.SharedLink
	linkVer  int
	iterBusy bool
	inflight map[int]*request
}

const (
	evArrival = iota
	evPrefillDone
	evStartTransfer
	evTransferDone
	evReady
	evIterDone
	evRetry
)

type event struct {
	at      float64
	kind    int
	seq     int
	req     *request
	replica int
	ver     int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type sim struct {
	cfg        Config
	specSpeed  float64 // modeled speculative throughput factor (1 = off)
	events     eventQueue
	rrNext     int
	seq        int
	now        float64
	prefills   []*prefillReplica
	decodes    []*decodeReplica
	classes    []cluster.Method // SLO-aware admission candidates
	prefillBps float64          // prefill NIC effective bytes/s, for load scoring
	peakMem    float64
	swapWait   []*request
	done       int
	results    []RequestStats
	onDone     func(RequestStats)
}

// Run simulates the trace and returns per-request decompositions.
func Run(cfg Config, reqs []workload.Request) (*Result, error) {
	return RunContext(context.Background(), cfg, reqs, nil)
}

// RunContext is Run with cooperative cancellation and streaming: the
// simulation aborts with ctx.Err() as soon as ctx is done, and onRequest
// (which may be nil) is invoked with each request's stats the moment the
// request completes, in completion order. The returned Result is
// identical to Run's for the same inputs.
func RunContext(ctx context.Context, cfg Config, reqs []workload.Request, onRequest func(RequestStats)) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	s := &sim{cfg: cfg, specSpeed: cfg.SpecSpeedup(), onDone: onRequest}
	s.resolveClasses()
	for i := 0; i < cfg.PrefillReplicas; i++ {
		s.prefills = append(s.prefills, &prefillReplica{})
	}
	// A decode replica's aggregate ingress is its GPU share of the
	// instance NIC; each individual transfer is additionally capped by
	// the sending prefill instance's NIC.
	decodeGPUs := cfg.CM.DecodePar.GPUsPerReplica()
	shareGbps := cfg.CM.Decode.NetGbps * float64(decodeGPUs) / float64(cfg.CM.Decode.NumGPUs)
	toBps := func(gbps float64) float64 { return gbps * 1e9 / 8 * cfg.CM.Params.NetEff }
	s.prefillBps = toBps(cfg.CM.Prefill.NetGbps)
	if s.prefillBps <= 0 {
		s.prefillBps = 1
	}
	for i := 0; i < cfg.DecodeReplicas; i++ {
		link, err := netsim.NewSharedLink(toBps(shareGbps), toBps(cfg.CM.Prefill.NetGbps))
		if err != nil {
			return nil, err
		}
		s.decodes = append(s.decodes, &decodeReplica{link: link, inflight: map[int]*request{}})
	}
	for i := range reqs {
		r := &request{Request: reqs[i]}
		r.stats = RequestStats{ID: reqs[i].ID, Arrival: reqs[i].ArrivalS,
			InputLen: reqs[i].InputLen, OutputLen: reqs[i].OutputLen}
		s.push(&event{at: reqs[i].ArrivalS, kind: evArrival, req: r})
	}

	for s.events.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e := heap.Pop(&s.events).(*event)
		if e.at < s.now-1e-9 {
			return nil, fmt.Errorf("sim: time reversal %.6f -> %.6f", s.now, e.at)
		}
		if e.at > s.now {
			s.now = e.at
		}
		switch e.kind {
		case evArrival:
			s.onArrival(e.req)
		case evPrefillDone:
			s.onPrefillDone(e.req, e.replica)
		case evStartTransfer:
			s.onStartTransfer(e.req, e.replica)
		case evTransferDone:
			s.onTransferDone(e.replica, e.ver)
		case evReady:
			s.onReady(e.req, e.replica)
		case evIterDone:
			s.onIterDone(e.replica)
		case evRetry:
			s.retrySwapped()
		}
	}
	if s.done != len(reqs) {
		return nil, fmt.Errorf("sim: %d of %d requests completed", s.done, len(reqs))
	}
	res := &Result{Requests: s.results, PeakMemFrac: s.peakMem}
	for _, r := range s.results {
		if r.Swapped {
			res.SwappedCount++
		}
		if r.Preemptions > 0 {
			res.PreemptedCount++
		}
	}
	return res, nil
}

func (s *sim) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// onArrival admits the request (SLO-aware runs pick its compression
// method here) and assigns it to a prefill replica per the configured
// scheduler.
func (s *sim) onArrival(r *request) {
	r.method = s.admitMethod(r)
	r.stats.Method = r.method.Name
	compute, quant := s.cfg.CM.PrefillTimes(r.method, r.InputLen)
	r.estPrefill = compute + quant

	best := s.pickPrefill(r)
	p := s.prefills[best]
	r.queuedAt = s.now
	p.queue = append(p.queue, r)
	p.queuedToks += r.InputLen
	p.pendingWire += s.cfg.CM.WireBytes(r.method, r.InputLen)
	p.drainS += r.estPrefill
	s.probe("arrival", r.ID, best, 0, 0)
	if !p.busy {
		s.startPrefill(best)
	}
}

// startPrefill runs the next queued request's prefill — the whole
// prompt, or its next chunk when chunked prefill is on.
func (s *sim) startPrefill(pi int) {
	p := s.prefills[pi]
	if p.busy || len(p.queue) == 0 {
		return
	}
	r := p.queue[0]
	p.queue = p.queue[1:]
	p.busy = true
	r.stats.Queue += s.now - r.queuedAt

	end := r.InputLen
	var compute, quant float64
	if s.cfg.PrefillChunk > 0 {
		end = r.prefilled + s.cfg.PrefillChunk
		if end > r.InputLen {
			end = r.InputLen
		}
		compute, quant = s.cfg.CM.PrefillChunkTimes(r.method, r.prefilled, end)
	} else {
		compute, quant = s.cfg.CM.PrefillTimes(r.method, r.InputLen)
	}
	r.chunkTo = end
	r.stats.Prefill += compute
	r.stats.Quant += quant
	r.stats.Chunks++
	finish := s.now + compute + quant
	s.probe("prefill-start", r.ID, pi, 0, 0)

	if end == r.InputLen {
		r.prefillEnd = finish
		r.commMark = finish
		if s.cfg.Pipeline {
			// Overlap transfer with prefill when a decode replica can
			// take the request right now.
			if di, ok := s.pickDecode(r); ok {
				s.reserve(r, di)
				s.onStartTransfer(r, di)
			}
		}
	}
	s.push(&event{at: finish, kind: evPrefillDone, req: r, replica: pi})
}

// pickDecode returns the decode replica with the most free memory that
// fits the request.
func (s *sim) pickDecode(r *request) (int, bool) {
	need := s.cfg.CM.ResidentKVBytes(r.method, r.InputLen+r.OutputLen)
	capB := s.cfg.CM.DecodeReplicaCapacityBytes() * s.cfg.MemCapFrac
	baseMem := s.cfg.CM.DecodeMemoryBytes(s.cfg.Method, nil)
	best, bestFree := -1, 0.0
	for i, d := range s.decodes {
		if d.admitted >= s.cfg.MaxBatch {
			continue
		}
		free := capB - baseMem - d.usedMem
		if free >= need && free > bestFree {
			best, bestFree = i, free
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// reserve claims decode memory for the request.
func (s *sim) reserve(r *request, di int) {
	d := s.decodes[di]
	r.memReserve = s.cfg.CM.ResidentKVBytes(r.method, r.InputLen+r.OutputLen)
	d.usedMem += r.memReserve
	d.admitted++
	s.noteMem(di)
}

// onStartTransfer begins the KV transfer on the replica's shared link.
// The transferred bytes cover the prompt's KV plus any tokens generated
// before a preemption (re-transfers ship the full current cache).
func (s *sim) onStartTransfer(r *request, di int) {
	d := s.decodes[di]
	if err := d.link.AdvanceTo(s.now); err != nil {
		panic(err)
	}
	id, err := d.link.Start(s.cfg.CM.WireBytes(r.method, r.InputLen+r.generated))
	if err != nil {
		panic(err)
	}
	d.inflight[id] = r
	s.probe("transfer-start", r.ID, di, s.decodeOccupancy(di), s.memFrac(di))
	s.rescheduleLink(di)
}

// rescheduleLink re-arms the next transfer-completion event after the
// link's transfer set changed.
func (s *sim) rescheduleLink(di int) {
	d := s.decodes[di]
	d.linkVer++
	if _, at, ok := d.link.NextCompletion(); ok {
		s.push(&event{at: at, kind: evTransferDone, replica: di, ver: d.linkVer})
	}
}

func (s *sim) onPrefillDone(r *request, pi int) {
	p := s.prefills[pi]
	p.busy = false
	p.queuedToks -= r.chunkTo - r.prefilled
	r.prefilled = r.chunkTo
	if r.prefilled < r.InputLen {
		// Chunked prefill: cycle to the back of the queue so later
		// arrivals interleave at chunk granularity.
		r.queuedAt = s.now
		p.queue = append(p.queue, r)
		s.startPrefill(pi)
		return
	}
	p.pendingWire -= s.cfg.CM.WireBytes(r.method, r.InputLen)
	p.drainS -= r.estPrefill
	r.stats.TTFT = r.prefillEnd - r.stats.Arrival
	s.probe("prefill-done", r.ID, pi, 0, 0)
	s.startPrefill(pi)

	if r.memReserve > 0 {
		return // pipelined: transfer in flight or complete
	}
	if di, ok := s.pickDecode(r); ok {
		s.reserve(r, di)
		s.onStartTransfer(r, di)
		return
	}
	// No decode replica has memory: swap KV to prefill CPU memory and
	// wait (§4). The swap write must finish before the request becomes
	// admissible; the read back is paid before the transfer.
	r.stats.Swapped = true
	r.readyAt = s.now + s.cfg.CM.SwapTime(r.method, r.InputLen)
	s.swapWait = append(s.swapWait, r)
	s.probe("swap-park", r.ID, -1, 0, 0)
	s.scheduleRetries(r)
}

func (s *sim) onTransferDone(di, ver int) {
	d := s.decodes[di]
	if ver != d.linkVer {
		return // stale: link membership changed since scheduling
	}
	id, at, ok := d.link.NextCompletion()
	if !ok {
		return
	}
	if at > s.now+1e-9 {
		// Floating-point slack: re-arm at the computed time.
		s.push(&event{at: at, kind: evTransferDone, replica: di, ver: ver})
		return
	}
	if err := d.link.AdvanceTo(s.now); err != nil {
		panic(err)
	}
	r := d.inflight[id]
	if err := d.link.Finish(id); err != nil {
		panic(err)
	}
	delete(d.inflight, id)

	// Exposed communication: everything between the communication
	// span's start (prefill completion, or the eviction instant for a
	// preempted request's re-transfer) and transfer completion —
	// admission waits, swap hops, the transfer itself. Pipelined
	// transfers that finish during prefill expose nothing.
	readyAt := s.now
	if readyAt < r.prefillEnd {
		readyAt = r.prefillEnd
	}
	r.stats.Comm += readyAt - r.commMark
	s.rescheduleLink(di)
	if readyAt > s.now {
		s.push(&event{at: readyAt, kind: evReady, req: r, replica: di})
		return
	}
	s.onReady(r, di)
}

// complete finalizes a request: stamps its completion time and
// serving-latency metrics, releases its decode memory, records its
// stats and streams them to the onDone callback.
func (s *sim) complete(r *request, d *decodeReplica) {
	r.stats.Done = s.now
	if n := r.decodeTokens(); n > 0 {
		r.stats.TBT = (r.stats.Done - r.prefillEnd) / float64(n)
	}
	d.usedMem -= r.memReserve
	d.admitted--
	s.results = append(s.results, r.stats)
	s.done++
	s.probe("complete", r.ID, -1, 0, 0)
	if s.onDone != nil {
		s.onDone(r.stats)
	}
}

func (s *sim) onReady(r *request, di int) {
	d := s.decodes[di]
	s.probe("ready", r.ID, di, s.decodeOccupancy(di), s.memFrac(di))
	if r.decodeTokens() == 0 {
		// Single-token outputs finish with prefill's token.
		s.complete(r, d)
		s.retrySwapped()
		return
	}
	d.pending = append(d.pending, r)
	if !d.iterBusy {
		s.startIteration(di)
	}
}

// startIteration admits pending requests and runs one decode iteration.
// The batch may mix serving methods under SLO-aware admission.
func (s *sim) startIteration(di int) {
	d := s.decodes[di]
	if len(d.pending) > 0 {
		d.batch = append(d.batch, d.pending...)
		d.pending = nil
	}
	if len(d.batch) == 0 {
		d.iterBusy = false
		return
	}
	d.iterBusy = true
	lens := make([]int, len(d.batch))
	methods := make([]cluster.Method, len(d.batch))
	for i, r := range d.batch {
		lens[i] = r.InputLen + r.generated
		methods[i] = r.method
	}
	decode, kvMem, overhead := s.cfg.CM.DecodeStepMixed(methods, lens)
	if s.specSpeed != 1 {
		// Speculative decoding: the effective per-token step time is the
		// verify window's cost spread over its expected emitted tokens.
		decode /= s.specSpeed
		kvMem /= s.specSpeed
		overhead /= s.specSpeed
	}
	iter := decode + kvMem + overhead
	for _, r := range d.batch {
		r.stats.Decode += decode + kvMem
		r.stats.KVMem += kvMem
		r.stats.Overhead += overhead
	}
	s.probe("iter-start", -1, di, s.decodeOccupancy(di), s.memFrac(di))
	s.push(&event{at: s.now + iter, kind: evIterDone, replica: di})
}

func (s *sim) onIterDone(di int) {
	d := s.decodes[di]
	remaining := d.batch[:0]
	freed := false
	for _, r := range d.batch {
		r.generated++
		if r.generated >= r.decodeTokens() {
			s.complete(r, d)
			freed = true
		} else {
			remaining = append(remaining, r)
		}
	}
	d.batch = remaining
	if freed {
		s.retrySwapped()
	}
	s.startIteration(di)
}

// retrySwapped re-attempts admission for requests parked in CPU memory
// whose swap write has completed, oldest first. The read back costs
// another swap hop before the transfer starts. With preemption enabled,
// a request that stays memory-starved past PreemptAfterS may evict an
// admitted victim instead of waiting further.
func (s *sim) retrySwapped() {
	var evicted []*request
	kept := s.swapWait[:0]
	for _, r := range s.swapWait {
		if s.now >= r.readyAt {
			if di, ok := s.pickDecode(r); ok {
				s.admitSwapped(r, di)
				continue
			}
			if s.cfg.Preemption && s.now >= r.readyAt+s.cfg.PreemptAfterS {
				if di, v := s.findVictim(r); v != nil {
					s.preempt(v, di)
					evicted = append(evicted, v)
					s.admitSwapped(r, di)
					continue
				}
			}
		}
		kept = append(kept, r)
	}
	s.swapWait = append(kept, evicted...)
}

// admitSwapped reserves decode memory for a parked request and starts
// its transfer after the CPU-read swap hop.
func (s *sim) admitSwapped(r *request, di int) {
	s.reserve(r, di)
	start := s.now + s.cfg.CM.SwapTime(r.method, r.InputLen+r.generated)
	s.push(&event{at: start, kind: evStartTransfer, req: r, replica: di})
}

// findVictim picks the preemption victim for a starved request: the
// never-preempted admitted request with the most remaining decode
// tokens whose eviction frees enough memory, scanning replicas in index
// order (deterministic tie-break: the first candidate found wins ties).
func (s *sim) findVictim(r *request) (int, *request) {
	need := s.cfg.CM.ResidentKVBytes(r.method, r.InputLen+r.OutputLen)
	capB := s.cfg.CM.DecodeReplicaCapacityBytes() * s.cfg.MemCapFrac
	baseMem := s.cfg.CM.DecodeMemoryBytes(s.cfg.Method, nil)
	bestDi, bestRem := -1, -1
	var best *request
	for di, d := range s.decodes {
		free := capB - baseMem - d.usedMem
		for _, set := range [2][]*request{d.batch, d.pending} {
			for _, v := range set {
				if v.stats.Preemptions > 0 || free+v.memReserve < need {
					continue
				}
				if rem := v.decodeTokens() - v.generated; rem > bestRem {
					bestDi, bestRem, best = di, rem, v
				}
			}
		}
	}
	return bestDi, best
}

// preempt evicts v from decode replica di: its KV (prompt + generated
// tokens) is swapped out to CPU memory, its decode memory and batch
// slot are released, and it re-enters the swap-wait pool to later pay
// the swap read and a full KV re-transfer before resuming. If an
// iteration is in flight the victim keeps the time already charged for
// it but loses the token — preemption wastes the aborted step.
func (s *sim) preempt(v *request, di int) {
	d := s.decodes[di]
	d.batch = removeReq(d.batch, v)
	d.pending = removeReq(d.pending, v)
	d.usedMem -= v.memReserve
	d.admitted--
	v.memReserve = 0
	v.stats.Preemptions++
	v.stats.Swapped = true
	v.commMark = s.now
	v.readyAt = s.now + s.cfg.CM.SwapTime(v.method, v.InputLen+v.generated)
	s.probe("preempt", v.ID, di, s.decodeOccupancy(di), s.memFrac(di))
	s.scheduleRetries(v)
}

// scheduleRetries guarantees a parked request is retried once its swap
// write completes, even if no decode completion happens in between —
// and, with a preemption delay configured, again the moment it becomes
// eligible to evict a victim, so the delay is honored rather than
// waiting for the next opportunistic retry.
func (s *sim) scheduleRetries(r *request) {
	s.push(&event{at: r.readyAt, kind: evRetry})
	if s.cfg.Preemption && s.cfg.PreemptAfterS > 0 {
		s.push(&event{at: r.readyAt + s.cfg.PreemptAfterS, kind: evRetry})
	}
}

// removeReq deletes r from the slice preserving order.
func removeReq(set []*request, r *request) []*request {
	for i, v := range set {
		if v == r {
			return append(set[:i], set[i+1:]...)
		}
	}
	return set
}

// noteMem records peak memory utilization.
func (s *sim) noteMem(di int) {
	if frac := s.memFrac(di); frac > s.peakMem {
		s.peakMem = frac
	}
}
