// Package sim is the discrete-event simulator of the disaggregated
// serving cluster: prefill replicas with shortest-queue scheduling,
// processor-shared transfer links into decode replicas, continuous-
// batching decode loops, memory-pressure admission with CPU swap (§4),
// and optional prefill/transfer pipelining (§2.1).
//
// Each simulated request records the paper's JCT decomposition — prefill,
// quantization, communication, dequantization-or-approximation, decode —
// plus the KV memory-access sub-bucket and peak decode memory, which is
// everything Figs. 1–4, 9–14 and Table 5 report.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/netsim"
	"github.com/hackkv/hack/internal/workload"
)

// Config describes one simulated deployment.
type Config struct {
	// CM prices everything (model, instances, parallelism).
	CM *cluster.CostModel
	// Method is the serving method under test.
	Method cluster.Method
	// PrefillReplicas and DecodeReplicas count model replicas on each
	// side (the paper sizes pools so the sides have similar capacity).
	PrefillReplicas, DecodeReplicas int
	// MaxBatch caps a decode replica's concurrent batch.
	MaxBatch int
	// Pipeline overlaps KV transfer with prefill computation when the
	// target decode replica has memory at prefill start (§2.1).
	Pipeline bool
	// MemCapFrac is the usable fraction of decode replica memory.
	MemCapFrac float64
	// Scheduler selects the prefill-replica assignment policy; the
	// zero value is the paper's shortest-token-queue scheduler.
	Scheduler Scheduler
}

// Scheduler is a prefill request-placement policy.
type Scheduler int

const (
	// ShortestQueue assigns each arrival to the replica with the fewest
	// queued tokens — the paper's policy (§7.1).
	ShortestQueue Scheduler = iota
	// RoundRobin cycles through replicas regardless of load.
	RoundRobin
	// FewestRequests assigns to the replica with the fewest queued
	// requests, ignoring their lengths.
	FewestRequests
)

func (s Scheduler) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case FewestRequests:
		return "fewest-requests"
	default:
		return "shortest-queue"
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CM == nil {
		return fmt.Errorf("sim: nil cost model")
	}
	if c.PrefillReplicas <= 0 || c.DecodeReplicas <= 0 {
		return fmt.Errorf("sim: replicas %d/%d", c.PrefillReplicas, c.DecodeReplicas)
	}
	if c.MaxBatch <= 0 {
		return fmt.Errorf("sim: max batch %d", c.MaxBatch)
	}
	if c.MemCapFrac <= 0 || c.MemCapFrac > 1 {
		return fmt.Errorf("sim: mem cap fraction %v outside (0, 1]", c.MemCapFrac)
	}
	return nil
}

// RequestStats is one request's timeline decomposition. Queue + Prefill
// + Quant + Comm + Decode + Overhead ≈ JCT (up to one iteration of
// batch-join slack); KVMem is a sub-bucket of Decode.
type RequestStats struct {
	ID            int
	Arrival, Done float64
	Queue         float64 // prefill queue wait
	Prefill       float64 // prefill computation
	Quant         float64 // KV quantization at prefill
	Comm          float64 // exposed transfer + swap + admission wait
	Overhead      float64 // dequantization (baselines) or approximation (HACK)
	Decode        float64 // decode iterations minus Overhead
	KVMem         float64 // KV memory-access share inside Decode
	Swapped       bool    // went through the CPU-swap path
	InputLen      int
	OutputLen     int
}

// JCT returns the request's job completion time.
func (r RequestStats) JCT() float64 { return r.Done - r.Arrival }

// Result aggregates one simulation run.
type Result struct {
	Requests []RequestStats
	// PeakMemFrac is the highest memory utilization any decode replica
	// reached (Table 5's metric).
	PeakMemFrac float64
	// SwappedCount counts requests that took the CPU-swap path.
	SwappedCount int
}

// request tracks in-flight state.
type request struct {
	workload.Request
	stats      RequestStats
	generated  int
	memReserve float64
	prefillEnd float64
	readyAt    float64 // parked-in-CPU requests become admissible here
}

// decodeTokens returns how many decode iterations the request needs (the
// first output token comes from prefill).
func (r *request) decodeTokens() int {
	n := r.OutputLen - 1
	if n < 0 {
		n = 0
	}
	return n
}

type prefillReplica struct {
	queue      []*request
	busy       bool
	queuedToks int
}

type decodeReplica struct {
	batch    []*request
	pending  []*request
	usedMem  float64
	link     *netsim.SharedLink
	linkVer  int
	iterBusy bool
	inflight map[int]*request
}

const (
	evArrival = iota
	evPrefillDone
	evStartTransfer
	evTransferDone
	evReady
	evIterDone
	evRetry
)

type event struct {
	at      float64
	kind    int
	seq     int
	req     *request
	replica int
	ver     int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type sim struct {
	cfg      Config
	events   eventQueue
	rrNext   int
	seq      int
	now      float64
	prefills []*prefillReplica
	decodes  []*decodeReplica
	peakMem  float64
	swapWait []*request
	done     int
	results  []RequestStats
	onDone   func(RequestStats)
}

// Run simulates the trace and returns per-request decompositions.
func Run(cfg Config, reqs []workload.Request) (*Result, error) {
	return RunContext(context.Background(), cfg, reqs, nil)
}

// RunContext is Run with cooperative cancellation and streaming: the
// simulation aborts with ctx.Err() as soon as ctx is done, and onRequest
// (which may be nil) is invoked with each request's stats the moment the
// request completes, in completion order. The returned Result is
// identical to Run's for the same inputs.
func RunContext(ctx context.Context, cfg Config, reqs []workload.Request, onRequest func(RequestStats)) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	s := &sim{cfg: cfg, onDone: onRequest}
	for i := 0; i < cfg.PrefillReplicas; i++ {
		s.prefills = append(s.prefills, &prefillReplica{})
	}
	// A decode replica's aggregate ingress is its GPU share of the
	// instance NIC; each individual transfer is additionally capped by
	// the sending prefill instance's NIC.
	decodeGPUs := cfg.CM.DecodePar.GPUsPerReplica()
	shareGbps := cfg.CM.Decode.NetGbps * float64(decodeGPUs) / float64(cfg.CM.Decode.NumGPUs)
	toBps := func(gbps float64) float64 { return gbps * 1e9 / 8 * cfg.CM.Params.NetEff }
	for i := 0; i < cfg.DecodeReplicas; i++ {
		link, err := netsim.NewSharedLink(toBps(shareGbps), toBps(cfg.CM.Prefill.NetGbps))
		if err != nil {
			return nil, err
		}
		s.decodes = append(s.decodes, &decodeReplica{link: link, inflight: map[int]*request{}})
	}
	for i := range reqs {
		r := &request{Request: reqs[i]}
		r.stats = RequestStats{ID: reqs[i].ID, Arrival: reqs[i].ArrivalS,
			InputLen: reqs[i].InputLen, OutputLen: reqs[i].OutputLen}
		s.push(&event{at: reqs[i].ArrivalS, kind: evArrival, req: r})
	}

	for s.events.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e := heap.Pop(&s.events).(*event)
		if e.at < s.now-1e-9 {
			return nil, fmt.Errorf("sim: time reversal %.6f -> %.6f", s.now, e.at)
		}
		if e.at > s.now {
			s.now = e.at
		}
		switch e.kind {
		case evArrival:
			s.onArrival(e.req)
		case evPrefillDone:
			s.onPrefillDone(e.req, e.replica)
		case evStartTransfer:
			s.onStartTransfer(e.req, e.replica)
		case evTransferDone:
			s.onTransferDone(e.replica, e.ver)
		case evReady:
			s.onReady(e.req, e.replica)
		case evIterDone:
			s.onIterDone(e.replica)
		case evRetry:
			s.retrySwapped()
		}
	}
	if s.done != len(reqs) {
		return nil, fmt.Errorf("sim: %d of %d requests completed", s.done, len(reqs))
	}
	res := &Result{Requests: s.results, PeakMemFrac: s.peakMem}
	for _, r := range s.results {
		if r.Swapped {
			res.SwappedCount++
		}
	}
	return res, nil
}

func (s *sim) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// onArrival assigns the request to a prefill replica per the configured
// scheduler (shortest token queue by default, the paper's policy).
func (s *sim) onArrival(r *request) {
	var best int
	switch s.cfg.Scheduler {
	case RoundRobin:
		best = s.rrNext % len(s.prefills)
		s.rrNext++
	case FewestRequests:
		bestN := math.MaxInt
		for i, p := range s.prefills {
			n := len(p.queue)
			if p.busy {
				n++
			}
			if n < bestN {
				best, bestN = i, n
			}
		}
	default:
		bestToks := math.MaxInt
		for i, p := range s.prefills {
			if p.queuedToks < bestToks {
				best, bestToks = i, p.queuedToks
			}
		}
	}
	p := s.prefills[best]
	p.queue = append(p.queue, r)
	p.queuedToks += r.InputLen
	if !p.busy {
		s.startPrefill(best)
	}
}

func (s *sim) startPrefill(pi int) {
	p := s.prefills[pi]
	if p.busy || len(p.queue) == 0 {
		return
	}
	r := p.queue[0]
	p.queue = p.queue[1:]
	p.busy = true
	r.stats.Queue = s.now - r.stats.Arrival
	compute, quant := s.cfg.CM.PrefillTimes(s.cfg.Method, r.InputLen)
	r.stats.Prefill = compute
	r.stats.Quant = quant
	r.prefillEnd = s.now + compute + quant

	if s.cfg.Pipeline {
		// Overlap transfer with prefill when a decode replica can take
		// the request right now.
		if di, ok := s.pickDecode(r); ok {
			s.reserve(r, di)
			s.onStartTransfer(r, di)
		}
	}
	s.push(&event{at: r.prefillEnd, kind: evPrefillDone, req: r, replica: pi})
}

// pickDecode returns the decode replica with the most free memory that
// fits the request.
func (s *sim) pickDecode(r *request) (int, bool) {
	need := s.cfg.CM.ResidentKVBytes(s.cfg.Method, r.InputLen+r.OutputLen)
	capB := s.cfg.CM.DecodeReplicaCapacityBytes() * s.cfg.MemCapFrac
	baseMem := s.cfg.CM.DecodeMemoryBytes(s.cfg.Method, nil)
	best, bestFree := -1, 0.0
	for i, d := range s.decodes {
		if len(d.batch)+len(d.pending)+d.link.Active() >= s.cfg.MaxBatch {
			continue
		}
		free := capB - baseMem - d.usedMem
		if free >= need && free > bestFree {
			best, bestFree = i, free
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// reserve claims decode memory for the request.
func (s *sim) reserve(r *request, di int) {
	d := s.decodes[di]
	r.memReserve = s.cfg.CM.ResidentKVBytes(s.cfg.Method, r.InputLen+r.OutputLen)
	d.usedMem += r.memReserve
	s.noteMem(di)
}

// onStartTransfer begins the KV transfer on the replica's shared link.
func (s *sim) onStartTransfer(r *request, di int) {
	d := s.decodes[di]
	if err := d.link.AdvanceTo(s.now); err != nil {
		panic(err)
	}
	id, err := d.link.Start(s.cfg.CM.WireBytes(s.cfg.Method, r.InputLen))
	if err != nil {
		panic(err)
	}
	d.inflight[id] = r
	s.rescheduleLink(di)
}

// rescheduleLink re-arms the next transfer-completion event after the
// link's transfer set changed.
func (s *sim) rescheduleLink(di int) {
	d := s.decodes[di]
	d.linkVer++
	if _, at, ok := d.link.NextCompletion(); ok {
		s.push(&event{at: at, kind: evTransferDone, replica: di, ver: d.linkVer})
	}
}

func (s *sim) onPrefillDone(r *request, pi int) {
	p := s.prefills[pi]
	p.busy = false
	p.queuedToks -= r.InputLen
	s.startPrefill(pi)

	if r.memReserve > 0 {
		return // pipelined: transfer in flight or complete
	}
	if di, ok := s.pickDecode(r); ok {
		s.reserve(r, di)
		s.onStartTransfer(r, di)
		return
	}
	// No decode replica has memory: swap KV to prefill CPU memory and
	// wait (§4). The swap write must finish before the request becomes
	// admissible; the read back is paid before the transfer.
	r.stats.Swapped = true
	r.readyAt = s.now + s.cfg.CM.SwapTime(s.cfg.Method, r.InputLen)
	s.swapWait = append(s.swapWait, r)
	// Guarantee a retry once the swap write completes, even if no
	// decode completion happens in between.
	s.push(&event{at: r.readyAt, kind: evRetry})
}

func (s *sim) onTransferDone(di, ver int) {
	d := s.decodes[di]
	if ver != d.linkVer {
		return // stale: link membership changed since scheduling
	}
	id, at, ok := d.link.NextCompletion()
	if !ok {
		return
	}
	if at > s.now+1e-9 {
		// Floating-point slack: re-arm at the computed time.
		s.push(&event{at: at, kind: evTransferDone, replica: di, ver: ver})
		return
	}
	if err := d.link.AdvanceTo(s.now); err != nil {
		panic(err)
	}
	r := d.inflight[id]
	if err := d.link.Finish(id); err != nil {
		panic(err)
	}
	delete(d.inflight, id)

	// Exposed communication: everything between prefill completion and
	// transfer completion (admission waits, swap hops, the transfer
	// itself). Pipelined transfers that finish during prefill expose
	// nothing.
	readyAt := s.now
	if readyAt < r.prefillEnd {
		readyAt = r.prefillEnd
	}
	r.stats.Comm = readyAt - r.prefillEnd
	s.rescheduleLink(di)
	if readyAt > s.now {
		s.push(&event{at: readyAt, kind: evReady, req: r, replica: di})
		return
	}
	s.onReady(r, di)
}

// complete finalizes a request: stamps its completion time, releases its
// decode memory, records its stats and streams them to the onDone
// callback.
func (s *sim) complete(r *request, d *decodeReplica) {
	r.stats.Done = s.now
	d.usedMem -= r.memReserve
	s.results = append(s.results, r.stats)
	s.done++
	if s.onDone != nil {
		s.onDone(r.stats)
	}
}

func (s *sim) onReady(r *request, di int) {
	d := s.decodes[di]
	if r.decodeTokens() == 0 {
		// Single-token outputs finish with prefill's token.
		s.complete(r, d)
		s.retrySwapped()
		return
	}
	d.pending = append(d.pending, r)
	if !d.iterBusy {
		s.startIteration(di)
	}
}

// startIteration admits pending requests and runs one decode iteration.
func (s *sim) startIteration(di int) {
	d := s.decodes[di]
	if len(d.pending) > 0 {
		d.batch = append(d.batch, d.pending...)
		d.pending = nil
	}
	if len(d.batch) == 0 {
		d.iterBusy = false
		return
	}
	d.iterBusy = true
	lens := make([]int, len(d.batch))
	for i, r := range d.batch {
		lens[i] = r.InputLen + r.generated
	}
	decode, kvMem, overhead := s.cfg.CM.DecodeStep(s.cfg.Method, lens)
	iter := decode + kvMem + overhead
	for _, r := range d.batch {
		r.stats.Decode += decode + kvMem
		r.stats.KVMem += kvMem
		r.stats.Overhead += overhead
	}
	s.push(&event{at: s.now + iter, kind: evIterDone, replica: di})
}

func (s *sim) onIterDone(di int) {
	d := s.decodes[di]
	remaining := d.batch[:0]
	freed := false
	for _, r := range d.batch {
		r.generated++
		if r.generated >= r.decodeTokens() {
			s.complete(r, d)
			freed = true
		} else {
			remaining = append(remaining, r)
		}
	}
	d.batch = remaining
	if freed {
		s.retrySwapped()
	}
	s.startIteration(di)
}

// retrySwapped re-attempts admission for requests parked in CPU memory
// whose swap write has completed, oldest first. The read back costs
// another swap hop before the transfer starts.
func (s *sim) retrySwapped() {
	kept := s.swapWait[:0]
	for _, r := range s.swapWait {
		if s.now >= r.readyAt {
			if di, ok := s.pickDecode(r); ok {
				s.reserve(r, di)
				start := s.now + s.cfg.CM.SwapTime(s.cfg.Method, r.InputLen)
				s.push(&event{at: start, kind: evStartTransfer, req: r, replica: di})
				continue
			}
		}
		kept = append(kept, r)
	}
	s.swapWait = kept
}

// noteMem records peak memory utilization.
func (s *sim) noteMem(di int) {
	d := s.decodes[di]
	used := s.cfg.CM.DecodeMemoryBytes(s.cfg.Method, nil) + d.usedMem
	frac := used / s.cfg.CM.DecodeReplicaCapacityBytes()
	if frac > s.peakMem {
		s.peakMem = frac
	}
}
