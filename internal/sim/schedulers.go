package sim

import (
	"fmt"
	"math"
	"strings"

	"github.com/hackkv/hack/internal/cluster"
)

// Scheduler is a prefill request-placement policy; LoadAware and
// SLOAware additionally change how requests are admitted.
type Scheduler int

const (
	// ShortestQueue assigns each arrival to the replica with the fewest
	// queued tokens — the paper's policy (§7.1).
	ShortestQueue Scheduler = iota
	// RoundRobin cycles through replicas regardless of load.
	RoundRobin
	// FewestRequests assigns to the replica with the fewest queued
	// requests, ignoring their lengths.
	FewestRequests
	// LoadAware scores each replica by its estimated prefill drain time
	// plus the transfer time of its pending (not yet shipped) KV bytes,
	// FlowKV-style, and assigns to the lowest score.
	LoadAware
	// SLOAware places like LoadAware and additionally picks each
	// request's compression method from Config.MethodClasses: the
	// highest-fidelity class whose estimated TTFT/TBT meet the SLO
	// targets, KVServe-style service-aware admission.
	SLOAware
)

func (s Scheduler) String() string {
	switch s {
	case RoundRobin:
		return "round-robin"
	case FewestRequests:
		return "fewest-requests"
	case LoadAware:
		return "load-aware"
	case SLOAware:
		return "slo"
	default:
		return "shortest-queue"
	}
}

// valid reports whether s is a defined policy.
func (s Scheduler) valid() bool {
	switch s {
	case ShortestQueue, RoundRobin, FewestRequests, LoadAware, SLOAware:
		return true
	}
	return false
}

// AllSchedulers returns every placement policy in definition order.
func AllSchedulers() []Scheduler {
	return []Scheduler{ShortestQueue, RoundRobin, FewestRequests, LoadAware, SLOAware}
}

// SchedulerNames returns the display names of every policy.
func SchedulerNames() []string {
	all := AllSchedulers()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.String()
	}
	return names
}

// ParseScheduler resolves a scheduler from its display name,
// case-insensitively and ignoring hyphens/underscores (so "loadaware"
// and "load-aware" both resolve). Unknown names return an error listing
// the valid spellings.
func ParseScheduler(name string) (Scheduler, error) {
	canon := func(s string) string {
		s = strings.ToLower(s)
		s = strings.ReplaceAll(s, "-", "")
		return strings.ReplaceAll(s, "_", "")
	}
	want := canon(name)
	for _, s := range AllSchedulers() {
		if canon(s.String()) == want || (s == SLOAware && want == "sloaware") {
			return s, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown scheduler %q (valid: %s)",
		name, strings.Join(SchedulerNames(), ", "))
}

// pickPrefill assigns the request to a prefill replica per the
// configured policy.
func (s *sim) pickPrefill(r *request) int {
	best := 0
	switch s.cfg.Scheduler {
	case RoundRobin:
		best = s.rrNext % len(s.prefills)
		s.rrNext++
	case FewestRequests:
		bestN := math.MaxInt
		for i, p := range s.prefills {
			n := len(p.queue)
			if p.busy {
				n++
			}
			if n < bestN {
				best, bestN = i, n
			}
		}
	case LoadAware, SLOAware:
		bestScore := math.Inf(1)
		for i, p := range s.prefills {
			score := p.drainS + p.pendingWire/s.prefillBps
			if score < bestScore {
				best, bestScore = i, score
			}
		}
	default:
		bestToks := math.MaxInt
		for i, p := range s.prefills {
			if p.queuedToks < bestToks {
				best, bestToks = i, p.queuedToks
			}
		}
	}
	return best
}

// admitMethod picks the serving method for an arriving request. Every
// policy but SLOAware serves Config.Method; SLOAware walks the
// fidelity-ordered method classes and returns the first whose estimated
// TTFT (queue drain + prefill + quantization) and TBT (per-iteration
// decode cost plus the KV transfer amortized over the output) meet the
// configured targets, falling back to the most compressed class when
// none does. Zero targets are untracked and always met, so with no SLO
// the highest-fidelity class wins.
func (s *sim) admitMethod(r *request) cluster.Method {
	if s.cfg.Scheduler != SLOAware || len(s.classes) == 1 {
		if s.cfg.Scheduler == SLOAware {
			return s.classes[0]
		}
		return s.cfg.Method
	}
	minDrain := math.Inf(1)
	for _, p := range s.prefills {
		if p.drainS < minDrain {
			minDrain = p.drainS
		}
	}
	for _, m := range s.classes {
		compute, quant := s.cfg.CM.PrefillTimes(m, r.InputLen)
		estTTFT := minDrain + compute + quant
		// The exposed KV transfer is the stall between the first and
		// second token, so a class meets the TBT target only if the
		// whole transfer fits in one inter-token budget — and so must
		// an ordinary decode iteration.
		transfer := s.cfg.CM.TransferTime(m, r.InputLen, s.cfg.CM.Prefill.NetGbps)
		dec, kv, ovh := s.cfg.CM.DecodeStep(m, []int{r.InputLen})
		estGap := dec + kv + ovh
		if transfer > estGap {
			estGap = transfer
		}
		if (s.cfg.SLOTTFT == 0 || estTTFT <= s.cfg.SLOTTFT) &&
			(s.cfg.SLOTBT == 0 || estGap <= s.cfg.SLOTBT) {
			return m
		}
	}
	return s.classes[len(s.classes)-1]
}

// resolveClasses fixes the SLO-aware admission candidates at run start:
// the configured MethodClasses, or [Baseline, Config.Method] when none
// are given (full fidelity first, the run's compressed method as the
// fallback class).
func (s *sim) resolveClasses() {
	if s.cfg.Scheduler != SLOAware {
		s.classes = []cluster.Method{s.cfg.Method}
		return
	}
	if len(s.cfg.MethodClasses) > 0 {
		s.classes = s.cfg.MethodClasses
		return
	}
	base := cluster.Baseline()
	if s.cfg.Method.Name == base.Name {
		s.classes = []cluster.Method{base}
		return
	}
	s.classes = []cluster.Method{base, s.cfg.Method}
}
