package sim

import (
	"sync"
	"testing"

	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/workload"
)

// fuzzCM builds the cost model once per process; fuzz workers share it
// read-only.
var fuzzCM = sync.OnceValue(func() *cluster.CostModel {
	cm, err := cluster.NewCostModel(model.Llama70B(), cluster.A10G(), cluster.A100(), cluster.DefaultCostParams())
	if err != nil {
		panic(err)
	}
	return cm
})

// FuzzConfigValidate asserts Validate's contract on arbitrary
// configurations: it may reject, but it must never panic, and anything
// it accepts must actually be in range.
func FuzzConfigValidate(f *testing.F) {
	f.Add(int64(5), int64(4), int64(32), int64(0), 0.95, 0.0, 0.0, 0.0, int64(0), false)
	f.Add(int64(1), int64(1), int64(1), int64(512), 1.0, 2.0, 8.0, 0.25, int64(4), false)
	f.Add(int64(0), int64(-3), int64(0), int64(-1), -0.5, -1.0, -2.0, -3.0, int64(99), true)
	f.Fuzz(func(t *testing.T, pr, dr, mb, chunk int64, memcap, preemptAfter, ttft, tbt float64, sched int64, nilCM bool) {
		cfg := Config{
			Method:          cluster.DefaultHACK(),
			PrefillReplicas: int(pr), DecodeReplicas: int(dr),
			MaxBatch: int(mb), MemCapFrac: memcap,
			Scheduler:    Scheduler(sched),
			PrefillChunk: int(chunk), PreemptAfterS: preemptAfter,
			SLOTTFT: ttft, SLOTBT: tbt,
		}
		if !nilCM {
			cfg.CM = fuzzCM()
		}
		err := cfg.Validate() // must not panic
		if err != nil {
			return
		}
		if cfg.CM == nil || cfg.PrefillReplicas <= 0 || cfg.DecodeReplicas <= 0 ||
			cfg.MaxBatch <= 0 || cfg.MemCapFrac <= 0 || cfg.MemCapFrac > 1 ||
			!cfg.Scheduler.valid() || cfg.PrefillChunk < 0 || cfg.PreemptAfterS < 0 ||
			cfg.SLOTTFT < 0 || cfg.SLOTBT < 0 {
			t.Fatalf("Validate accepted an out-of-range config: %+v", cfg)
		}
	})
}

// FuzzSimInvariants runs randomized workloads through randomized (but
// always valid) deployments and asserts the event-level invariants
// never break: no panic, every request conserved and completed, no
// replica oversubscription, monotone timestamps, TTFT ≤ JCT.
func FuzzSimInvariants(f *testing.F) {
	f.Add(int64(42), int64(10), 0.5, int64(0), int64(0), 0.95, false, false)
	f.Add(int64(7), int64(16), 1.5, int64(3), int64(512), 0.9, true, false)
	f.Add(int64(3), int64(12), 0.8, int64(4), int64(256), 0.6, true, true)
	f.Add(int64(-9), int64(20), 2.0, int64(1), int64(0), 0.55, false, true)
	f.Fuzz(func(t *testing.T, seed, n int64, rps float64, sched, chunk int64, memcap float64, preempt, pipeline bool) {
		// Clamp everything into Validate-clean, completable territory;
		// the randomness explores the scheduler space, not the
		// rejection space (FuzzConfigValidate covers that).
		nReq := int(n%24+24)%24 + 1
		if rps != rps || rps <= 0.05 || rps > 3 {
			rps = 0.5
		}
		if memcap != memcap || memcap < 0.5 || memcap > 1 {
			memcap = 0.95
		}
		datasets := []workload.Dataset{workload.IMDb(), workload.ArXiv(), workload.Cocktail(), workload.HumanEval()}
		methods := cluster.EvaluatedMethods()
		di := int(seed%4+4) % 4
		reqs, err := workload.Trace(datasets[di], rps, nReq, seed)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			CM:              fuzzCM(),
			Method:          methods[int(seed%int64(len(methods))+int64(len(methods)))%len(methods)],
			PrefillReplicas: int(seed%5+5)%5 + 1,
			DecodeReplicas:  int(seed%3+3)%3 + 1,
			MaxBatch:        int(seed%31+31)%31 + 2,
			MemCapFrac:      memcap,
			Pipeline:        pipeline,
			Scheduler:       Scheduler((sched%5 + 5) % 5),
			PrefillChunk:    int((chunk%2048+2048)%2048) &^ 1,
			Preemption:      preempt,
			PreemptAfterS:   float64((seed%4 + 4) % 4 * 2),
			SLOTTFT:         8,
			SLOTBT:          0.25,
		}
		probe := newInvariantProbe(cfg)
		cfg.Probe = probe.observe
		res, err := Run(cfg, reqs)
		if err != nil {
			// The only legitimate rejection on a clamped config would be
			// an empty trace, which the clamps rule out.
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		for _, msg := range probe.errs {
			t.Error(msg)
		}
		if len(res.Requests) != nReq {
			t.Fatalf("completed %d of %d", len(res.Requests), nReq)
		}
		for _, r := range res.Requests {
			if probe.arrived[r.ID] != 1 || probe.completed[r.ID] != 1 {
				t.Fatalf("req %d arrived %d / completed %d times", r.ID, probe.arrived[r.ID], probe.completed[r.ID])
			}
			if r.TTFT <= 0 || r.TTFT > r.JCT()+1e-9 {
				t.Fatalf("req %d TTFT %v outside (0, JCT=%v]", r.ID, r.TTFT, r.JCT())
			}
			if r.Queue < 0 || r.Prefill <= 0 || r.Comm < -1e-9 || r.Decode < 0 || r.Overhead < 0 || r.TBT < 0 {
				t.Fatalf("req %d negative bucket: %+v", r.ID, r)
			}
			if r.Preemptions > 1 {
				t.Fatalf("req %d preempted %d times", r.ID, r.Preemptions)
			}
			if r.Method != cfg.Method.Name && r.Method != "Baseline" {
				t.Fatalf("req %d served by unexpected method %q", r.ID, r.Method)
			}
		}
	})
}
