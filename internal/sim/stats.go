package sim

import (
	"math"

	"github.com/hackkv/hack/internal/metrics"
)

// Ratios is the paper's average-time-ratio presentation: for each
// component, mean over requests of component_i / JCT_i (the Fig. 1–4
// formula).
type Ratios struct {
	Queue, Prefill, Quant, Comm, Overhead, Decode, KVMem float64
}

// AvgJCT returns the mean job completion time in seconds.
func (r *Result) AvgJCT() float64 {
	xs := make([]float64, len(r.Requests))
	for i, q := range r.Requests {
		xs[i] = q.JCT()
	}
	return metrics.Mean(xs)
}

// AvgTimes returns the mean of each decomposition bucket in seconds.
func (r *Result) AvgTimes() RequestStats {
	var out RequestStats
	n := float64(len(r.Requests))
	if n == 0 {
		return out
	}
	for _, q := range r.Requests {
		out.Queue += q.Queue / n
		out.Prefill += q.Prefill / n
		out.Quant += q.Quant / n
		out.Comm += q.Comm / n
		out.Overhead += q.Overhead / n
		out.Decode += q.Decode / n
		out.KVMem += q.KVMem / n
	}
	return out
}

// AvgRatios returns the paper's average time ratios, with the prefill
// queue folded into the prefill bucket (the paper's decomposition is
// exhaustive over JCT).
func (r *Result) AvgRatios() Ratios {
	var out Ratios
	n := float64(len(r.Requests))
	if n == 0 {
		return out
	}
	for _, q := range r.Requests {
		jct := q.JCT()
		if jct <= 0 {
			continue
		}
		out.Queue += q.Queue / jct / n
		out.Prefill += (q.Prefill + q.Queue) / jct / n
		out.Quant += q.Quant / jct / n
		out.Comm += q.Comm / jct / n
		out.Overhead += q.Overhead / jct / n
		out.Decode += q.Decode / jct / n
		out.KVMem += q.KVMem / jct / n
	}
	return out
}

// percentile returns the nearest-rank p-quantile (0 ≤ p ≤ 1) of xs: the
// ⌈p·n⌉-th smallest value (metrics.NearestRank). It sorts a copy, never
// the caller's slice, and returns 0 for an empty input.
func percentile(xs []float64, p float64) float64 { return metrics.NearestRank(xs, p) }

// metricOf extracts one latency metric across the run's requests into a
// fresh slice, leaving Requests untouched.
func (r *Result) metricOf(f func(RequestStats) float64) []float64 {
	xs := make([]float64, len(r.Requests))
	for i, q := range r.Requests {
		xs[i] = f(q)
	}
	return xs
}

// P50JCT returns the median (nearest-rank) JCT.
func (r *Result) P50JCT() float64 { return r.jctPercentile(0.50) }

// P99JCT returns the 99th-percentile JCT.
func (r *Result) P99JCT() float64 { return r.jctPercentile(0.99) }

func (r *Result) jctPercentile(p float64) float64 {
	return percentile(r.metricOf(RequestStats.JCT), p)
}

// PercentileSummary is the nearest-rank p50/p90/p99 of one latency
// metric, in seconds. It is the shared metrics.PercentileSummary, so
// simulator summaries and live-runtime snapshots print identically.
type PercentileSummary = metrics.PercentileSummary

func summarizeMetric(xs []float64) PercentileSummary { return metrics.Summarize(xs) }

// SLO is a pair of serving targets in seconds: time to first token and
// mean time between subsequent tokens. Zero fields are untracked — a
// request trivially attains an untracked target.
type SLO struct {
	TTFT float64 `json:"ttft_s"`
	TBT  float64 `json:"tbt_s"`
}

// Summary aggregates one run's serving metrics: throughput, the
// latency percentile summaries (JCT, TTFT, TBT, queueing delay) and the
// fraction of requests attaining the SLO targets, plus the memory and
// eviction counters the scenario goldens pin.
type Summary struct {
	Requests       int               `json:"requests"`
	ThroughputRPS  float64           `json:"throughput_rps"`
	AvgJCT         float64           `json:"avg_jct_s"`
	JCT            PercentileSummary `json:"jct_s"`
	TTFT           PercentileSummary `json:"ttft_s"`
	TBT            PercentileSummary `json:"tbt_s"`
	Queue          PercentileSummary `json:"queue_s"`
	TTFTAttainment float64           `json:"ttft_attainment"`
	TBTAttainment  float64           `json:"tbt_attainment"`
	Attainment     float64           `json:"slo_attainment"`
	Swapped        int               `json:"swapped"`
	Preempted      int               `json:"preempted"`
	PeakMemFrac    float64           `json:"peak_mem_frac"`
}

// Summarize computes the serving summary against the given SLO. It
// reads Requests without reordering or mutating it; percentiles are
// nearest-rank over sorted copies. Throughput is completed requests
// over the span from first arrival to last completion.
func (r *Result) Summarize(slo SLO) Summary {
	out := Summary{
		Requests:    len(r.Requests),
		AvgJCT:      r.AvgJCT(),
		Swapped:     r.SwappedCount,
		Preempted:   r.PreemptedCount,
		PeakMemFrac: r.PeakMemFrac,
	}
	if len(r.Requests) == 0 {
		out.TTFTAttainment, out.TBTAttainment, out.Attainment = 1, 1, 1
		return out
	}
	firstArrival, lastDone := math.Inf(1), math.Inf(-1)
	ttftOK, tbtOK, bothOK := 0, 0, 0
	for _, q := range r.Requests {
		if q.Arrival < firstArrival {
			firstArrival = q.Arrival
		}
		if q.Done > lastDone {
			lastDone = q.Done
		}
		tOK := slo.TTFT == 0 || q.TTFT <= slo.TTFT
		bOK := slo.TBT == 0 || q.TBT <= slo.TBT
		if tOK {
			ttftOK++
		}
		if bOK {
			tbtOK++
		}
		if tOK && bOK {
			bothOK++
		}
	}
	if span := lastDone - firstArrival; span > 0 {
		out.ThroughputRPS = float64(len(r.Requests)) / span
	}
	n := float64(len(r.Requests))
	out.TTFTAttainment = float64(ttftOK) / n
	out.TBTAttainment = float64(tbtOK) / n
	out.Attainment = float64(bothOK) / n
	out.JCT = summarizeMetric(r.metricOf(RequestStats.JCT))
	out.TTFT = summarizeMetric(r.metricOf(func(q RequestStats) float64 { return q.TTFT }))
	out.TBT = summarizeMetric(r.metricOf(func(q RequestStats) float64 { return q.TBT }))
	out.Queue = summarizeMetric(r.metricOf(func(q RequestStats) float64 { return q.Queue }))
	return out
}
