package sim

import "github.com/hackkv/hack/internal/metrics"

// Ratios is the paper's average-time-ratio presentation: for each
// component, mean over requests of component_i / JCT_i (the Fig. 1–4
// formula).
type Ratios struct {
	Queue, Prefill, Quant, Comm, Overhead, Decode, KVMem float64
}

// AvgJCT returns the mean job completion time in seconds.
func (r *Result) AvgJCT() float64 {
	xs := make([]float64, len(r.Requests))
	for i, q := range r.Requests {
		xs[i] = q.JCT()
	}
	return metrics.Mean(xs)
}

// AvgTimes returns the mean of each decomposition bucket in seconds.
func (r *Result) AvgTimes() RequestStats {
	var out RequestStats
	n := float64(len(r.Requests))
	if n == 0 {
		return out
	}
	for _, q := range r.Requests {
		out.Queue += q.Queue / n
		out.Prefill += q.Prefill / n
		out.Quant += q.Quant / n
		out.Comm += q.Comm / n
		out.Overhead += q.Overhead / n
		out.Decode += q.Decode / n
		out.KVMem += q.KVMem / n
	}
	return out
}

// AvgRatios returns the paper's average time ratios, with the prefill
// queue folded into the prefill bucket (the paper's decomposition is
// exhaustive over JCT).
func (r *Result) AvgRatios() Ratios {
	var out Ratios
	n := float64(len(r.Requests))
	if n == 0 {
		return out
	}
	for _, q := range r.Requests {
		jct := q.JCT()
		if jct <= 0 {
			continue
		}
		out.Queue += q.Queue / jct / n
		out.Prefill += (q.Prefill + q.Queue) / jct / n
		out.Quant += q.Quant / jct / n
		out.Comm += q.Comm / jct / n
		out.Overhead += q.Overhead / jct / n
		out.Decode += q.Decode / jct / n
		out.KVMem += q.KVMem / jct / n
	}
	return out
}

// P50JCT and P99JCT return JCT percentiles.
func (r *Result) P50JCT() float64 { return r.jctPercentile(0.50) }

// P99JCT returns the 99th-percentile JCT.
func (r *Result) P99JCT() float64 { return r.jctPercentile(0.99) }

func (r *Result) jctPercentile(p float64) float64 {
	xs := make([]float64, len(r.Requests))
	for i, q := range r.Requests {
		xs[i] = q.JCT()
	}
	return metrics.Percentile(xs, p)
}
