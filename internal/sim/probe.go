package sim

// ProbeEvent is one observable simulator transition, delivered to
// Config.Probe in simulation order. It exposes the event-level facts
// the scenario invariants assert — replica occupancy, memory
// utilization, per-request timestamps — without affecting the
// simulation in any way.
type ProbeEvent struct {
	// At is the simulation time of the transition.
	At float64
	// Kind names the transition: arrival, prefill-start, prefill-done,
	// swap-park, transfer-start, ready, iter-start, preempt, complete.
	Kind string
	// Req is the request ID, or -1 for events not tied to one request.
	Req int
	// Replica is the replica index the event happened on (a prefill
	// index for arrival/prefill-* events, a decode index otherwise), or
	// -1 when no replica is involved.
	Replica int
	// Occupancy is the decode replica's batch + pending + in-flight
	// transfer count after the event (0 for prefill-side events).
	Occupancy int
	// MemFrac is the decode replica's memory utilization after the
	// event (0 for prefill-side events).
	MemFrac float64
}

// probe emits one event to the configured observer, if any.
func (s *sim) probe(kind string, req, replica, occupancy int, memFrac float64) {
	if s.cfg.Probe == nil {
		return
	}
	s.cfg.Probe(ProbeEvent{At: s.now, Kind: kind, Req: req, Replica: replica,
		Occupancy: occupancy, MemFrac: memFrac})
}

// decodeOccupancy returns the replica's admitted request count — the
// quantity pickDecode caps at MaxBatch, covering batched, pending,
// in-transfer and between-events requests alike.
func (s *sim) decodeOccupancy(di int) int {
	return s.decodes[di].admitted
}

// memFrac returns the decode replica's current memory utilization.
func (s *sim) memFrac(di int) float64 {
	used := s.cfg.CM.DecodeMemoryBytes(s.cfg.Method, nil) + s.decodes[di].usedMem
	return used / s.cfg.CM.DecodeReplicaCapacityBytes()
}
