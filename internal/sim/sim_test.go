package sim

import (
	"container/heap"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/workload"
)

func testCM(t *testing.T, prefill cluster.Instance) *cluster.CostModel {
	t.Helper()
	cm, err := cluster.NewCostModel(model.Llama70B(), prefill, cluster.A100(), cluster.DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func baseCfg(cm *cluster.CostModel, m cluster.Method) Config {
	return Config{CM: cm, Method: m, PrefillReplicas: 5, DecodeReplicas: 4,
		MaxBatch: 32, MemCapFrac: 0.95}
}

func run(t *testing.T, cfg Config, ds workload.Dataset, rps float64, n int) *Result {
	t.Helper()
	reqs, err := workload.Trace(ds, rps, n, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	good := baseCfg(cm, cluster.Baseline())
	bad := []Config{
		{},
		{CM: cm, PrefillReplicas: 0, DecodeReplicas: 1, MaxBatch: 1, MemCapFrac: 0.9},
		{CM: cm, PrefillReplicas: 1, DecodeReplicas: 0, MaxBatch: 1, MemCapFrac: 0.9},
		{CM: cm, PrefillReplicas: 1, DecodeReplicas: 1, MaxBatch: 0, MemCapFrac: 0.9},
		{CM: cm, PrefillReplicas: 1, DecodeReplicas: 1, MaxBatch: 1, MemCapFrac: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if _, err := Run(good, nil); err == nil {
		t.Error("empty trace accepted")
	}
}

// Negative and above-one memory fractions must be rejected explicitly,
// with the valid interval spelled out.
func TestConfigValidationMemCapBounds(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	for _, frac := range []float64{-0.5, -1e-9, 1.0001, 50} {
		c := baseCfg(cm, cluster.Baseline())
		c.MemCapFrac = frac
		err := c.Validate()
		if err == nil {
			t.Errorf("mem cap fraction %v accepted", frac)
			continue
		}
		if !strings.Contains(err.Error(), "(0, 1]") {
			t.Errorf("mem cap error %q does not state the valid interval", err)
		}
	}
}

// The event queue is a heap.Interface over `any`; it must order by time
// and break ties by insertion sequence (FIFO among simultaneous events).
func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	heap.Init(&q)
	for i, at := range []float64{3.0, 1.0, 2.0, 1.0, 1.0} {
		heap.Push(&q, &event{at: at, seq: i, kind: i})
	}
	var gotAt []float64
	var gotKind []int
	for q.Len() > 0 {
		e := heap.Pop(&q).(*event)
		gotAt = append(gotAt, e.at)
		gotKind = append(gotKind, e.kind)
	}
	wantAt := []float64{1, 1, 1, 2, 3}
	wantKind := []int{1, 3, 4, 2, 0} // FIFO among the three t=1 events
	for i := range wantAt {
		if gotAt[i] != wantAt[i] || gotKind[i] != wantKind[i] {
			t.Fatalf("pop %d = (at %v, kind %d), want (at %v, kind %d)",
				i, gotAt[i], gotKind[i], wantAt[i], wantKind[i])
		}
	}
}

func TestAllRequestsCompleteAndBucketsSum(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	res := run(t, baseCfg(cm, cluster.Baseline()), workload.Cocktail(), 0.4, 80)
	if len(res.Requests) != 80 {
		t.Fatalf("completed %d of 80", len(res.Requests))
	}
	for _, r := range res.Requests {
		if r.Done <= r.Arrival {
			t.Fatalf("req %d: done %.3f <= arrival %.3f", r.ID, r.Done, r.Arrival)
		}
		sum := r.Queue + r.Prefill + r.Quant + r.Comm + r.Decode + r.Overhead
		jct := r.JCT()
		// Buckets cover JCT up to batch-join slack (at most a couple of
		// iterations, << 10% of these multi-second JCTs).
		if sum > jct*1.001+1e-6 {
			t.Fatalf("req %d: buckets %.4f exceed JCT %.4f", r.ID, sum, jct)
		}
		if sum < jct*0.80 {
			t.Fatalf("req %d: buckets %.4f cover only %.0f%% of JCT %.4f",
				r.ID, sum, 100*sum/jct, jct)
		}
		if r.KVMem > r.Decode+1e-9 {
			t.Fatalf("req %d: KVMem %.4f exceeds Decode %.4f", r.ID, r.KVMem, r.Decode)
		}
	}
	if res.PeakMemFrac <= 0 || res.PeakMemFrac > 1 {
		t.Errorf("peak mem %.3f out of (0,1]", res.PeakMemFrac)
	}
}

func TestDeterminism(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	a := run(t, baseCfg(cm, cluster.DefaultHACK()), workload.ArXiv(), 1.0, 60)
	b := run(t, baseCfg(cm, cluster.DefaultHACK()), workload.ArXiv(), 1.0, 60)
	if a.AvgJCT() != b.AvgJCT() || a.PeakMemFrac != b.PeakMemFrac {
		t.Error("simulation not deterministic")
	}
}

// The headline result: on long-sequence workloads HACK < CacheGen ≈
// KVQuant < Baseline in average JCT (Fig. 9).
func TestMethodOrderingOnLongSequences(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	jct := map[string]float64{}
	for _, m := range cluster.EvaluatedMethods() {
		res := run(t, baseCfg(cm, m), workload.Cocktail(), 0.5, 100)
		jct[m.Name] = res.AvgJCT()
	}
	if !(jct["HACK"] < jct["CacheGen"] && jct["CacheGen"] < jct["Baseline"]) {
		t.Errorf("ordering violated: %v", jct)
	}
	if !(jct["HACK"] < jct["KVQuant"] && jct["KVQuant"] < jct["Baseline"]) {
		t.Errorf("ordering violated: %v", jct)
	}
	// HACK's improvement over the baseline should be substantial
	// (paper: 61.6% on Cocktail; the shape requirement is >25%).
	if imp := 1 - jct["HACK"]/jct["Baseline"]; imp < 0.25 {
		t.Errorf("HACK improvement over baseline only %.1f%%", 100*imp)
	}
}

// JCT decomposition shape (Figs. 1, 10): baseline has a large comm share
// on a 40 Gbps instance; quantized methods crush comm; only dequant
// methods pay overhead; HACK's overhead is far smaller.
func TestDecompositionShape(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	base := run(t, baseCfg(cm, cluster.Baseline()), workload.Cocktail(), 0.6, 100).AvgRatios()
	cg := run(t, baseCfg(cm, cluster.CacheGen()), workload.Cocktail(), 0.6, 100).AvgRatios()
	hk := run(t, baseCfg(cm, cluster.DefaultHACK()), workload.Cocktail(), 0.6, 100).AvgRatios()

	if base.Comm < 0.20 {
		t.Errorf("baseline comm ratio %.2f, want substantial on 40 Gbps", base.Comm)
	}
	if base.Overhead != 0 {
		t.Errorf("baseline overhead ratio %.3f, want 0", base.Overhead)
	}
	if cg.Comm > base.Comm/2 {
		t.Errorf("CacheGen comm %.3f not well below baseline %.3f", cg.Comm, base.Comm)
	}
	if cg.Overhead < 0.10 || cg.Overhead > 0.45 {
		t.Errorf("CacheGen dequant share %.3f outside the paper's band", cg.Overhead)
	}
	if hk.Overhead > 0.05 {
		t.Errorf("HACK approximation share %.3f, want ≤5%%", hk.Overhead)
	}
	if hk.Overhead >= cg.Overhead/3 {
		t.Errorf("HACK overhead %.3f not ≪ CacheGen %.3f", hk.Overhead, cg.Overhead)
	}
}

// Peak decode memory (Table 5): the baseline saturates its replicas
// while the quantized methods stay far below; HACK's per-request
// footprint slightly exceeds the plain 2-bit methods' (SE sums + tail),
// though faster completions can offset it at the fleet level.
func TestPeakMemoryOrdering(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	peak := map[string]float64{}
	for _, m := range cluster.EvaluatedMethods() {
		peak[m.Name] = run(t, baseCfg(cm, m), workload.Cocktail(), 0.6, 100).PeakMemFrac
	}
	if peak["Baseline"] < 0.85 {
		t.Errorf("baseline peak %.2f, want memory saturation (Table 5: 93.7%%)", peak["Baseline"])
	}
	if peak["Baseline"] < peak["CacheGen"]+0.2 {
		t.Errorf("baseline peak %.2f not well above CacheGen %.2f", peak["Baseline"], peak["CacheGen"])
	}
	if peak["HACK"] < peak["KVQuant"]*0.9 || peak["HACK"] > peak["KVQuant"]*1.1 {
		t.Errorf("HACK peak %.3f should be within 10%% of KVQuant %.3f", peak["HACK"], peak["KVQuant"])
	}
}

// V100: no INT8, 10 Gbps. HACK's edge over CacheGen shrinks (no prefill
// acceleration) but its edge over the baseline is the largest of all
// instances (§7.2 / Fig. 12).
func TestV100Behavior(t *testing.T) {
	impBase := map[string]float64{}
	impCG := map[string]float64{}
	for _, in := range []cluster.Instance{cluster.A10G(), cluster.V100()} {
		cm := testCM(t, in)
		cfg := baseCfg(cm, cluster.Baseline())
		if in.GPUName == "V100" {
			cfg.PrefillReplicas = 4
		}
		rps := 0.5
		if in.GPUName == "V100" {
			rps = 0.15 // 10 Gbps cannot sustain more
		}
		base := run(t, cfg, workload.Cocktail(), rps, 80).AvgJCT()
		cfg.Method = cluster.CacheGen()
		cg := run(t, cfg, workload.Cocktail(), rps, 80).AvgJCT()
		cfg.Method = cluster.DefaultHACK()
		hk := run(t, cfg, workload.Cocktail(), rps, 80).AvgJCT()
		impBase[in.GPUName] = 1 - hk/base
		impCG[in.GPUName] = 1 - hk/cg
	}
	if impBase["V100"] <= impBase["A10G"] {
		t.Errorf("HACK-vs-baseline improvement on V100 %.2f should exceed A10G %.2f",
			impBase["V100"], impBase["A10G"])
	}
	if impCG["V100"] >= impCG["A10G"] {
		t.Errorf("HACK-vs-CacheGen improvement on V100 %.2f should trail A10G %.2f",
			impCG["V100"], impCG["A10G"])
	}
}

// Ablations (Fig. 13): removing SE or RQE increases JCT.
func TestAblationJCT(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	full := run(t, baseCfg(cm, cluster.HACK(64, true, true)), workload.Cocktail(), 0.5, 80).AvgJCT()
	noSE := run(t, baseCfg(cm, cluster.HACK(64, false, true)), workload.Cocktail(), 0.5, 80).AvgJCT()
	noRQE := run(t, baseCfg(cm, cluster.HACK(64, true, false)), workload.Cocktail(), 0.5, 80).AvgJCT()
	if noSE <= full {
		t.Errorf("HACK/SE JCT %.2f not above HACK %.2f", noSE, full)
	}
	if noRQE < full*0.999 {
		t.Errorf("HACK/RQE JCT %.2f below HACK %.2f", noRQE, full)
	}
	// SE matters more than RQE on long sequences (§7.4).
	if noSE-full <= noRQE-full {
		t.Errorf("on long sequences SE loss (%.2f) should exceed RQE loss (%.2f)",
			noSE-full, noRQE-full)
	}

	// On short sequences the ordering flips: requantization's per-
	// iteration launches (amplified by the large concurrent batch)
	// outweigh the small Σb′ recompute (§7.4).
	fullS := run(t, baseCfg(cm, cluster.HACK(64, true, true)), workload.IMDb(), 8, 150).AvgJCT()
	noSES := run(t, baseCfg(cm, cluster.HACK(64, false, true)), workload.IMDb(), 8, 150).AvgJCT()
	noRQES := run(t, baseCfg(cm, cluster.HACK(64, true, false)), workload.IMDb(), 8, 150).AvgJCT()
	if noRQES-fullS <= noSES-fullS {
		t.Errorf("on short sequences RQE loss (%.3f) should exceed SE loss (%.3f)",
			noRQES-fullS, noSES-fullS)
	}
}

// Pipelining (Fig. 1d): at light load it hides most of the baseline's
// communication; under heavy load memory pressure forces the swap path
// and the benefit collapses.
func TestPipeliningShape(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	cfg := baseCfg(cm, cluster.Baseline())
	cfg.Pipeline = true

	light := run(t, cfg, workload.Cocktail(), 0.10, 80)
	heavy := run(t, cfg, workload.Cocktail(), 0.65, 80)
	lr, hr := light.AvgRatios(), heavy.AvgRatios()
	// At our calibration the A10G transfer takes ~1.9x the prefill
	// time, so light-load pipelining can only hide about half of it
	// (the paper's case (i)); the hidden share is asserted against the
	// unpipelined run below.
	if lr.Comm > 0.32 {
		t.Errorf("pipelined light-load comm ratio %.3f, want at least half hidden", lr.Comm)
	}
	if hr.Comm < lr.Comm {
		t.Errorf("comm ratio should grow with load: %.3f -> %.3f", lr.Comm, hr.Comm)
	}
	if heavy.SwappedCount == 0 {
		t.Error("heavy load should trigger CPU swaps")
	}

	// Without pipelining, even light load exposes the transfer.
	cfg.Pipeline = false
	noPipe := run(t, cfg, workload.Cocktail(), 0.10, 80)
	if noPipe.AvgRatios().Comm <= lr.Comm {
		t.Errorf("pipelining did not reduce comm: %.3f vs %.3f", noPipe.AvgRatios().Comm, lr.Comm)
	}
}

func TestSingleTokenOutputs(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	reqs := []workload.Request{
		{ID: 0, ArrivalS: 0.1, InputLen: 500, OutputLen: 1},
		{ID: 1, ArrivalS: 0.2, InputLen: 500, OutputLen: 2},
	}
	res, err := Run(baseCfg(cm, cluster.Baseline()), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) != 2 {
		t.Fatalf("completed %d of 2", len(res.Requests))
	}
	for _, r := range res.Requests {
		if r.ID == 0 && r.Decode != 0 {
			t.Errorf("single-token request accrued decode time %.4f", r.Decode)
		}
	}
}

// Property: any small random trace completes, buckets stay non-negative,
// and JCT ≥ pure service time.
func TestSimProperty(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	f := func(seed int64, n8, rps8 uint8) bool {
		n := int(n8)%30 + 1
		rps := 0.05 + float64(rps8%50)/50.0
		reqs, err := workload.Trace(workload.ArXiv(), rps, n, seed)
		if err != nil {
			return false
		}
		res, err := Run(baseCfg(cm, cluster.DefaultHACK()), reqs)
		if err != nil || len(res.Requests) != n {
			return false
		}
		for _, r := range res.Requests {
			if r.Queue < 0 || r.Prefill <= 0 || r.Comm < 0 || r.Decode < 0 || r.Overhead < 0 {
				return false
			}
			if r.JCT() < r.Prefill {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStatsHelpers(t *testing.T) {
	r := &Result{Requests: []RequestStats{
		{Arrival: 0, Done: 10, Queue: 1, Prefill: 2, Quant: 1, Comm: 2, Decode: 3, Overhead: 1, KVMem: 1},
		{Arrival: 0, Done: 20, Queue: 2, Prefill: 4, Quant: 2, Comm: 4, Decode: 6, Overhead: 2, KVMem: 2},
	}}
	if got := r.AvgJCT(); got != 15 {
		t.Errorf("AvgJCT = %v", got)
	}
	at := r.AvgTimes()
	if at.Prefill != 3 || at.Decode != 4.5 {
		t.Errorf("AvgTimes = %+v", at)
	}
	ra := r.AvgRatios()
	// Ratios: prefill bucket folds the queue in.
	want := (3.0/10 + 6.0/20) / 2
	if math.Abs(ra.Prefill-want) > 1e-9 {
		t.Errorf("Prefill ratio %v, want %v", ra.Prefill, want)
	}
	total := ra.Prefill + ra.Quant + ra.Comm + ra.Decode + ra.Overhead
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("ratios sum to %v, want 1", total)
	}
	// Nearest-rank percentiles: ⌈0.5·2⌉ = 1st smallest, ⌈0.99·2⌉ = 2nd.
	if r.P50JCT() != 10 || r.P99JCT() != 20 {
		t.Errorf("percentiles %v %v, want 10 20", r.P50JCT(), r.P99JCT())
	}
	empty := &Result{}
	if empty.AvgJCT() != 0 || empty.AvgRatios().Comm != 0 {
		t.Error("empty result aggregates should be zero")
	}
}

func BenchmarkSimCocktail(b *testing.B) {
	cm, err := cluster.NewCostModel(model.Llama70B(), cluster.A10G(), cluster.A100(), cluster.DefaultCostParams())
	if err != nil {
		b.Fatal(err)
	}
	reqs, err := workload.Trace(workload.Cocktail(), 0.5, 200, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{CM: cm, Method: cluster.DefaultHACK(), PrefillReplicas: 5,
		DecodeReplicas: 4, MaxBatch: 32, MemCapFrac: 0.95}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSchedulerVariants(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	jct := map[Scheduler]float64{}
	for _, sched := range []Scheduler{ShortestQueue, RoundRobin, FewestRequests} {
		cfg := baseCfg(cm, cluster.DefaultHACK())
		cfg.Scheduler = sched
		res := run(t, cfg, workload.Cocktail(), 0.6, 120)
		if len(res.Requests) != 120 {
			t.Fatalf("%v: %d completed", sched, len(res.Requests))
		}
		jct[sched] = res.AvgJCT()
	}
	// Shortest-token-queue must not lose to round-robin on a
	// heavy-tailed length distribution (the reason the paper uses it).
	if jct[ShortestQueue] > jct[RoundRobin]*1.05 {
		t.Errorf("shortest-queue %.2fs worse than round-robin %.2fs", jct[ShortestQueue], jct[RoundRobin])
	}
	if ShortestQueue.String() != "shortest-queue" || RoundRobin.String() != "round-robin" ||
		FewestRequests.String() != "fewest-requests" {
		t.Error("scheduler names wrong")
	}
}

// TestSpecSpeedupModel pins the speculation cost model's algebra: the
// expected-tokens numerator is the truncated geometric series, the cost
// denominator is (K-1)·draftCost + 1, and the boundary cases behave.
func TestSpecSpeedupModel(t *testing.T) {
	cases := []struct {
		k     int
		alpha float64
		cost  float64
		want  float64
	}{
		{0, 0.9, 0.25, 1},          // off
		{1, 0.9, 0.25, 1},          // off (window of 1 is a plain decode)
		{4, 1.0, 0.25, 4.0 / 1.75}, // perfect acceptance: K tokens per window
		{4, 0.0, 0.25, 1.0 / 1.75}, // zero acceptance: drafting is pure loss
		{2, 0.5, 0.5, 1.5 / 1.5},   // break-even
		{4, 0.9, 0.25, (1 - .9*.9*.9*.9) / .1 / 1.75},
		{8, 0.9, 0, ((1 - math.Pow(.9, 8)) / .1) / (7*0.25 + 1)}, // zero cost selects 0.25
	}
	for _, c := range cases {
		cfg := Config{SpecK: c.k, SpecAcceptance: c.alpha, SpecDraftCost: c.cost}
		if got := cfg.SpecSpeedup(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("SpecSpeedup(k=%d, α=%v, cost=%v) = %v, want %v", c.k, c.alpha, c.cost, got, c.want)
		}
	}
}

// TestSpeculationScalesDecode pins the model end to end: a high-
// acceptance speculative run finishes its decode phase faster than the
// non-speculative run of the same trace, a zero-acceptance run slower,
// and invalid speculation parameters are rejected.
func TestSpeculationScalesDecode(t *testing.T) {
	cm := testCM(t, cluster.A10G())
	base := baseCfg(cm, cluster.DefaultHACK())
	plain := run(t, base, workload.ArXiv(), 0.5, 40)

	fast := base
	fast.SpecK, fast.SpecAcceptance = 4, 0.9
	accel := run(t, fast, workload.ArXiv(), 0.5, 40)

	slow := base
	slow.SpecK, slow.SpecAcceptance = 4, 0.0
	waste := run(t, slow, workload.ArXiv(), 0.5, 40)

	var dPlain, dFast, dSlow float64
	for i := range plain.Requests {
		dPlain += plain.Requests[i].Decode
		dFast += accel.Requests[i].Decode
		dSlow += waste.Requests[i].Decode
	}
	// Faster iterations reshuffle batch membership, so the aggregate
	// ratio tracks the modeled speedup only approximately.
	f := fast.SpecSpeedup()
	if ratio := dPlain / dFast; math.Abs(ratio-f) > 0.05*f {
		t.Errorf("decode speedup %v, want ~%v (plain %v, spec %v)", ratio, f, dPlain, dFast)
	}
	if dSlow <= dPlain {
		t.Errorf("zero-acceptance speculation decode %v not slower than plain %v", dSlow, dPlain)
	}

	for _, bad := range []Config{
		{SpecK: -1}, {SpecAcceptance: -0.1}, {SpecAcceptance: 1.1}, {SpecDraftCost: -1},
	} {
		c := base
		c.SpecK, c.SpecAcceptance, c.SpecDraftCost = bad.SpecK, bad.SpecAcceptance, bad.SpecDraftCost
		if err := c.Validate(); err == nil {
			t.Errorf("invalid speculation config %+v accepted", bad)
		}
	}
}
