package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExactValues(t *testing.T) {
	cases := []struct {
		f float32
		h Bits
	}{
		{0, 0x0000},
		{1, 0x3C00},
		{-1, 0xBC00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7BFF},
		{-65504, 0xFBFF},
		{5.9604645e-08, 0x0001}, // smallest positive subnormal
		{6.1035156e-05, 0x0400}, // smallest positive normal
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.h {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
		if got := ToFloat32(c.h); got != c.f {
			t.Errorf("ToFloat32(%#04x) = %v, want %v", c.h, got, c.f)
		}
	}
}

func TestNegativeZero(t *testing.T) {
	h := FromFloat32(float32(math.Copysign(0, -1)))
	if h != 0x8000 {
		t.Fatalf("FromFloat32(-0) = %#04x, want 0x8000", h)
	}
	f := ToFloat32(h)
	if f != 0 || !math.Signbit(float64(f)) {
		t.Fatalf("ToFloat32(0x8000) = %v, want -0", f)
	}
}

func TestOverflowToInfinity(t *testing.T) {
	if got := FromFloat32(70000); got != PositiveInfinity {
		t.Errorf("FromFloat32(70000) = %#04x, want +Inf", got)
	}
	if got := FromFloat32(-70000); got != NegativeInfinity {
		t.Errorf("FromFloat32(-70000) = %#04x, want -Inf", got)
	}
	if got := ToFloat32(PositiveInfinity); !math.IsInf(float64(got), 1) {
		t.Errorf("ToFloat32(+Inf bits) = %v, want +Inf", got)
	}
}

func TestNaNRoundTrip(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if h&expMask16 != expMask16 || h&fracMask16 == 0 {
		t.Fatalf("FromFloat32(NaN) = %#04x, not a NaN encoding", h)
	}
	if f := ToFloat32(h); !math.IsNaN(float64(f)) {
		t.Fatalf("ToFloat32(NaN bits) = %v, want NaN", f)
	}
}

func TestUnderflowToZero(t *testing.T) {
	if got := FromFloat32(1e-10); got != 0 {
		t.Errorf("FromFloat32(1e-10) = %#04x, want 0", got)
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-11 is exactly halfway between 1.0 and the next half
	// (1 + 2^-10); nearest-even picks 1.0.
	f := float32(1 + math.Pow(2, -11))
	if got := Round(f); got != 1 {
		t.Errorf("Round(1+2^-11) = %v, want 1 (ties to even)", got)
	}
	// 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9; nearest-even
	// picks 1+2^-9 (even mantissa).
	f = float32(1 + 3*math.Pow(2, -11))
	want := float32(1 + math.Pow(2, -9))
	if got := Round(f); got != want {
		t.Errorf("Round(1+3*2^-11) = %v, want %v", got, want)
	}
}

// TestRoundTripAllBits exhaustively round-trips all 65536 binary16
// patterns: widening then narrowing must be the identity (modulo NaN
// payloads, which must stay NaN).
func TestRoundTripAllBits(t *testing.T) {
	for i := 0; i <= 0xFFFF; i++ {
		h := Bits(i)
		f := ToFloat32(h)
		back := FromFloat32(f)
		if math.IsNaN(float64(f)) {
			if back&expMask16 != expMask16 || back&fracMask16 == 0 {
				t.Fatalf("NaN bits %#04x round-tripped to non-NaN %#04x", h, back)
			}
			continue
		}
		if back != h {
			t.Fatalf("bits %#04x -> %v -> %#04x", h, f, back)
		}
	}
}

// TestRoundErrorBound: property test that FP16 rounding error is within
// half a ULP for in-range normal values.
func TestRoundErrorBound(t *testing.T) {
	f := func(x float32) bool {
		if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
			return true
		}
		// Clamp into the finite binary16 normal range.
		if x > maxFiniteFloat {
			x = maxFiniteFloat
		}
		if x < -maxFiniteFloat {
			x = -maxFiniteFloat
		}
		if ax := math.Abs(float64(x)); ax < 6.2e-05 {
			return true // subnormal range handled separately
		}
		r := Round(x)
		// Relative error of half-precision rounding <= 2^-11.
		return math.Abs(float64(r-x)) <= math.Abs(float64(x))*math.Pow(2, -11)+1e-30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestRoundMonotonic(t *testing.T) {
	f := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return Round(a) <= Round(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestSliceRoundTrip(t *testing.T) {
	src := []float32{0, 1, -2.5, 3.140625, 65504, -0.0009765625}
	hs := FromFloat32Slice(nil, src)
	back := ToFloat32Slice(nil, hs)
	if len(back) != len(src) {
		t.Fatalf("length mismatch: %d vs %d", len(back), len(src))
	}
	for i := range src {
		if back[i] != src[i] {
			t.Errorf("elem %d: %v -> %v", i, src[i], back[i])
		}
	}
}

func TestSliceReuse(t *testing.T) {
	dst := make([]Bits, 0, 8)
	src := []float32{1, 2, 3}
	out := FromFloat32Slice(dst, src)
	if &out[0] != &dst[:1][0] {
		t.Error("FromFloat32Slice did not reuse destination capacity")
	}
	f32 := make([]float32, 0, 8)
	back := ToFloat32Slice(f32, out)
	if &back[0] != &f32[:1][0] {
		t.Error("ToFloat32Slice did not reuse destination capacity")
	}
}

func TestRoundSliceInPlace(t *testing.T) {
	x := []float32{1.0000001, 2.0000002}
	RoundSlice(x)
	if x[0] != 1 || x[1] != 2 {
		t.Errorf("RoundSlice = %v, want [1 2]", x)
	}
}

func TestBytes(t *testing.T) {
	if Bytes(10) != 20 {
		t.Errorf("Bytes(10) = %d, want 20", Bytes(10))
	}
}

func BenchmarkFromFloat32(b *testing.B) {
	var sink Bits
	for i := 0; i < b.N; i++ {
		sink = FromFloat32(float32(i) * 0.001)
	}
	_ = sink
}

func BenchmarkToFloat32(b *testing.B) {
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = ToFloat32(Bits(i & 0x7BFF))
	}
	_ = sink
}
