// Package fp16 implements IEEE 754 binary16 (half-precision) conversion
// and slice helpers.
//
// The disaggregated-inference baseline stores and transmits KV data in
// FP16; HACK's requantization-elimination buffer (the trailing block of V)
// is also kept in FP16. This package provides the storage format used by
// those code paths, including round-to-nearest-even conversion from
// float32 and exact widening back to float32.
package fp16

import "math"

// Bits is a raw IEEE 754 binary16 value: 1 sign bit, 5 exponent bits,
// 10 mantissa bits.
type Bits uint16

const (
	signMask16     = 0x8000
	expMask16      = 0x7C00
	fracMask16     = 0x03FF
	expBias16      = 15
	expBias32      = 127
	maxFiniteFloat = 65504 // largest finite binary16 value
)

// PositiveInfinity is the binary16 encoding of +Inf.
const PositiveInfinity Bits = 0x7C00

// NegativeInfinity is the binary16 encoding of -Inf.
const NegativeInfinity Bits = 0xFC00

// FromFloat32 converts a float32 to binary16 using round-to-nearest-even,
// the rounding mode GPUs use for FP16 stores. Values whose magnitude
// exceeds the largest finite half (65504) become infinities; subnormal
// results are produced where required.
func FromFloat32(f float32) Bits {
	b := math.Float32bits(f)
	sign := Bits(b>>16) & signMask16
	exp := int32(b>>23) & 0xFF
	frac := b & 0x7FFFFF

	switch {
	case exp == 0xFF: // NaN or Inf
		if frac != 0 {
			// Preserve a quiet NaN, keeping the top mantissa bit set.
			return sign | expMask16 | 0x0200 | Bits(frac>>13)
		}
		return sign | expMask16
	case exp == 0 && frac == 0: // signed zero
		return sign
	}

	// Unbias, rebias for binary16.
	e := exp - expBias32 + expBias16
	if e >= 0x1F {
		// Overflow to infinity.
		return sign | expMask16
	}
	if e <= 0 {
		// Subnormal half or underflow to zero.
		if e < -10 {
			return sign
		}
		// Add the implicit leading 1, then shift into subnormal position.
		m := frac | 0x800000
		shift := uint32(14 - e)
		half := uint32(1) << (shift - 1)
		rounded := m + half
		// Round to nearest even.
		if rounded&(half<<1-1) == half && m&(uint32(1)<<shift) == 0 {
			rounded = m
		}
		return sign | Bits(rounded>>shift)
	}

	// Normal number: round 23-bit mantissa to 10 bits, nearest even.
	m := frac >> 13
	rem := frac & 0x1FFF
	if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
		m++
		if m == 0x400 { // mantissa overflow ripples into exponent
			m = 0
			e++
			if e >= 0x1F {
				return sign | expMask16
			}
		}
	}
	return sign | Bits(e)<<10 | Bits(m)
}

// ToFloat32 widens a binary16 value to float32 exactly (every binary16
// value is representable in binary32).
func ToFloat32(h Bits) float32 {
	sign := uint32(h&signMask16) << 16
	exp := uint32(h&expMask16) >> 10
	frac := uint32(h & fracMask16)

	switch {
	case exp == 0x1F: // Inf / NaN
		if frac == 0 {
			return math.Float32frombits(sign | 0x7F800000)
		}
		return math.Float32frombits(sign | 0x7F800000 | frac<<13 | 0x400000)
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: normalize. value = frac * 2^-24; after k left
		// shifts the leading 1 sits at bit 10 and the exponent is
		// -14-k (biased: 113-k).
		e := int32(-14 + expBias32)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= fracMask16
		return math.Float32frombits(sign | uint32(e)<<23 | frac<<13)
	}
	return math.Float32frombits(sign | (exp-expBias16+expBias32)<<23 | frac<<13)
}

// Round quantizes f through binary16 and back, returning the value an
// FP16 store/load pair would produce.
func Round(f float32) float32 { return ToFloat32(FromFloat32(f)) }

// MaxFinite returns the largest finite binary16 value as a float32.
func MaxFinite() float32 { return maxFiniteFloat }

// FromFloat32Slice converts a float32 slice to binary16 in bulk,
// reusing dst's capacity (dst may be nil) and returning the result. It
// is the batch form of FromFloat32 used by the KV wire framing and the
// FP16 cache paths in place of per-element conversion loops.
func FromFloat32Slice(dst []Bits, src []float32) []Bits {
	if cap(dst) < len(src) {
		dst = make([]Bits, len(src))
	}
	dst = dst[:len(src)]
	for i, f := range src {
		dst[i] = FromFloat32(f)
	}
	return dst
}

// ToFloat32Slice widens a binary16 slice to float32 in bulk, reusing
// dst's capacity (dst may be nil) and returning the result.
func ToFloat32Slice(dst []float32, src []Bits) []float32 {
	if cap(dst) < len(src) {
		dst = make([]float32, len(src))
	}
	dst = dst[:len(src)]
	for i, h := range src {
		dst[i] = ToFloat32(h)
	}
	return dst
}

// RoundSlice rounds every element of x through binary16 in place and
// returns x. It models storing a tensor to an FP16 KV cache.
func RoundSlice(x []float32) []float32 {
	for i, f := range x {
		x[i] = Round(f)
	}
	return x
}

// Bytes returns the number of bytes an FP16 tensor with n elements
// occupies on the wire and in cache.
func Bytes(n int) int { return 2 * n }
