// Package experiments regenerates every table and figure of the paper's
// evaluation (§2, §3, §7) from this repository's substrates: the
// discrete-event cluster simulator for the JCT/memory results and the
// numeric transformer for the accuracy results. Each runner returns a
// Table whose rows mirror what the paper plots; cmd/hackbench prints
// them and EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// ID names the paper artifact ("Fig 9", "Table 5", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Header labels the columns; Rows hold formatted cells.
	Header []string
	Rows   [][]string
	// Notes documents workload parameters and modeling caveats.
	Notes string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// pct formats a fraction as a percentage cell.
func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// secs formats seconds.
func secs(f float64) string { return fmt.Sprintf("%.1fs", f) }

// WriteMarkdown renders the table as a GitHub-flavored markdown table
// with a heading line; pipes inside cells are escaped.
func (t *Table) WriteMarkdown(w io.Writer) error {
	esc := func(s string) string { return strings.ReplaceAll(s, "|", `\|`) }
	if _, err := fmt.Fprintf(w, "### %s: %s\n\n", esc(t.ID), esc(t.Title)); err != nil {
		return err
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(sep, "|")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	if t.Notes != "" {
		if _, err := fmt.Fprintf(w, "\n_%s_\n", esc(t.Notes)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV emits the table as RFC-4180 CSV (header row first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
