package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/workload"
)

// LogitDistortion is the smooth end-to-end accuracy instrument: run the
// backend teacher-forced along the exact model's trajectory and measure
// the relative L2 distortion of its next-token logits at every step.
// Unlike token agreement (a 0/1 threshold on the argmax), distortion is
// continuous, so the per-method differences that Table 6 reports survive
// the small sample sizes a numeric reproduction can afford.
func LogitDistortion(a AccuracySettings) (*Table, error) {
	t := &Table{ID: "Table 6 (distortion)", Title: "end-to-end logit distortion vs exact reference",
		Header: []string{"Method", "IMDb", "arXiv", "Cocktail", "HumanEval"}}
	m, err := model.NewTransformer(AccuracyModelSpec(), a.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(a.Seed + 3))
	backends, err := accuracyBackends(a, a.Seed)
	if err != nil {
		return nil, err
	}
	datasets := workload.Datasets()
	// Serial prompt draws preserve the RNG stream; each (dataset, trial)
	// job then runs its reference trajectory and every backend on the
	// pool.
	prompts := make([][][]int, len(datasets))
	outLens := make([]int, len(datasets))
	for di, ds := range datasets {
		in, out := accLengths(ds, a.Scale)
		outLens[di] = out
		prompts[di] = make([][]int, a.Trials)
		for trial := 0; trial < a.Trials; trial++ {
			prompt := make([]int, in)
			for i := range prompt {
				prompt[i] = rng.Intn(m.Spec().Vocab)
			}
			prompts[di][trial] = prompt
		}
	}
	flat, err := parMap(len(datasets)*a.Trials, func(i int) ([]float64, error) {
		di, trial := i/a.Trials, i%a.Trials
		prompt := prompts[di][trial]
		refLogits, traj, err := referenceTrajectory(m, prompt, outLens[di])
		if err != nil {
			return nil, err
		}
		bs, err := accuracyBackends(a, a.Seed+int64(trial))
		if err != nil {
			return nil, err
		}
		ds := make([]float64, len(bs))
		for bi, b := range bs {
			d, err := trajectoryDistortion(m, b, prompt, traj, refLogits)
			if err != nil {
				return nil, err
			}
			ds[bi] = d
		}
		return ds, nil
	})
	if err != nil {
		return nil, err
	}
	dist := map[string]map[string]float64{}
	for _, b := range backends {
		dist[b.Name()] = map[string]float64{}
	}
	for di, ds := range datasets {
		for trial := 0; trial < a.Trials; trial++ {
			for bi, b := range backends {
				dist[b.Name()][ds.Name] += flat[di*a.Trials+trial][bi] / float64(a.Trials)
			}
		}
	}
	for _, b := range backends {
		row := []string{b.Name()}
		for _, ds := range datasets {
			row = append(row, fmt.Sprintf("%.4f", dist[b.Name()][ds.Name]))
		}
		t.AddRow(row...)
	}
	t.Notes = "relative L2 logit error, teacher-forced; lower is better. Continuous analogue of the " +
		"Table 6 accuracy column — orderings here are stable where token agreement is noise-limited"
	return t, nil
}

// referenceTrajectory runs the exact model, returning its per-step
// logits and greedy trajectory.
func referenceTrajectory(m *model.Transformer, prompt []int, steps int) ([][]float32, []int, error) {
	s, err := m.NewSession(attention.ExactBackend{})
	if err != nil {
		return nil, nil, err
	}
	lg, err := s.PrefillLogits(prompt)
	if err != nil {
		return nil, nil, err
	}
	logits := [][]float32{lg}
	traj := []int{argmax32(lg)}
	for i := 0; i < steps; i++ {
		lg, err = s.DecodeLogits(traj[len(traj)-1])
		if err != nil {
			return nil, nil, err
		}
		logits = append(logits, lg)
		traj = append(traj, argmax32(lg))
	}
	return logits, traj, nil
}

// trajectoryDistortion forces the backend along traj and returns the
// mean relative L2 distance between its logits and the reference's.
func trajectoryDistortion(m *model.Transformer, b attention.Backend,
	prompt, traj []int, refLogits [][]float32) (float64, error) {
	s, err := m.NewSession(b)
	if err != nil {
		return 0, err
	}
	lg, err := s.PrefillLogits(prompt)
	if err != nil {
		return 0, err
	}
	total := relL2(lg, refLogits[0])
	for i := 0; i+1 < len(refLogits); i++ {
		lg, err = s.DecodeLogits(traj[i])
		if err != nil {
			return 0, err
		}
		total += relL2(lg, refLogits[i+1])
	}
	return total / float64(len(refLogits)), nil
}

// relL2 returns ‖a−b‖/‖b‖.
func relL2(a, b []float32) float64 {
	var num, den float64
	for i := range a {
		d := float64(a[i] - b[i])
		num += d * d
		den += float64(b[i]) * float64(b[i])
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

func argmax32(xs []float32) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
