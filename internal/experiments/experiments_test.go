package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// parsePct reads a "12.3%" cell.
func parsePct(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

// parseSecs reads a "12.3s" cell.
func parseSecs(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "s"), 64)
	if err != nil {
		t.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func TestTablePrinting(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Header: []string{"a", "bb"}, Notes: "n"}
	tb.AddRow("1", "2")
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== X: demo ==", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPoolSizing(t *testing.T) {
	if _, err := prefillInstanceCount("H100"); err == nil {
		t.Error("unknown GPU accepted")
	}
	n, _ := prefillInstanceCount("A10G")
	if n != 10 {
		t.Errorf("A10G pool %d, want 10", n)
	}
}

// TestPooledRunnersDeterministic pins the pool refactor's contract:
// running an experiment twice yields byte-identical tables, even though
// rows are simulated concurrently — completion order must never leak
// into the output, and shared RNG streams must be drawn serially.
func TestPooledRunnersDeterministic(t *testing.T) {
	a := QuickAccuracy()
	a.Trials = 1
	render := func(tb *Table) string {
		var b bytes.Buffer
		tb.Fprint(&b)
		return b.String()
	}
	for _, tc := range []struct {
		name string
		run  func() (*Table, error)
	}{
		{"Fig1d", func() (*Table, error) { return Fig1d(Quick()) }},
		{"Fig9", func() (*Table, error) { return Fig9(Quick()) }},
		{"Table6", func() (*Table, error) { return Table6(a) }},
	} {
		first, err := tc.run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		second, err := tc.run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if render(first) != render(second) {
			t.Errorf("%s: two pooled runs rendered different tables:\n%s\nvs\n%s",
				tc.name, render(first), render(second))
		}
	}
}

func TestFig1aShape(t *testing.T) {
	tb, err := Fig1a(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(tb.Rows))
	}
	comm := map[string]float64{}
	for _, row := range tb.Rows {
		comm[row[0]] = parsePct(t, row[2])
	}
	// A100's fat NIC gives it the smallest comm share; V100's thin one
	// the largest (Fig. 1a / 1d case i).
	for gpu, c := range comm {
		if gpu == "A100" {
			continue
		}
		if comm["A100"] >= c {
			t.Errorf("A100 comm %.1f%% not below %s's %.1f%%", comm["A100"], gpu, c)
		}
	}
	if comm["V100"] <= comm["T4"] {
		t.Errorf("V100 comm %.1f%% should top T4's %.1f%%", comm["V100"], comm["T4"])
	}
}

func TestFig9Shape(t *testing.T) {
	tb, err := Fig9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		ds := row[0]
		base := parseSecs(t, row[1])
		hack := parseSecs(t, row[4])
		if hack >= base {
			t.Errorf("%s: HACK %.1fs not below baseline %.1fs", ds, hack, base)
		}
		// Long-sequence datasets see the largest improvements.
		if ds == "Cocktail" {
			if imp := 1 - hack/base; imp < 0.30 {
				t.Errorf("Cocktail improvement %.2f, want > 0.30", imp)
			}
		}
	}
}

func TestTable5Shape(t *testing.T) {
	tb, err := Table5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	var basePeak, hackPeak float64
	for _, row := range tb.Rows {
		if row[0] == "Baseline" {
			basePeak = parsePct(t, row[3]) // Cocktail column
		}
		if row[0] == "HACK" {
			hackPeak = parsePct(t, row[3])
		}
	}
	if basePeak < 80 {
		t.Errorf("baseline Cocktail peak %.1f%%, want memory saturation", basePeak)
	}
	if hackPeak > basePeak-20 {
		t.Errorf("HACK peak %.1f%% not well below baseline %.1f%%", hackPeak, basePeak)
	}
}

func TestFig12Shape(t *testing.T) {
	s := Quick()
	tb, err := Fig12(s)
	if err != nil {
		t.Fatal(err)
	}
	impBase := map[string]float64{}
	impCG := map[string]float64{}
	for _, row := range tb.Rows {
		impBase[row[0]] = parsePct(t, row[5])
		impCG[row[0]] = parsePct(t, row[6])
	}
	// V100: biggest gain over baseline, smallest over CacheGen (§7.2).
	for gpu := range impBase {
		if gpu == "V100" {
			continue
		}
		if impBase["V100"] <= impBase[gpu] {
			t.Errorf("V100 baseline gain %.1f%% not above %s's %.1f%%", impBase["V100"], gpu, impBase[gpu])
		}
		if impCG["V100"] >= impCG[gpu] {
			t.Errorf("V100 CacheGen gain %.1f%% not below %s's %.1f%%", impCG["V100"], gpu, impCG[gpu])
		}
	}
}

func TestFig13Shape(t *testing.T) {
	tb, err := Fig13(Quick())
	if err != nil {
		t.Fatal(err)
	}
	loss := map[string][2]float64{}
	for _, row := range tb.Rows {
		loss[row[0]] = [2]float64{parsePct(t, row[4]), parsePct(t, row[5])}
	}
	// Long sequences: SE loss > RQE loss. Short: RQE loss > SE loss.
	if loss["Cocktail"][0] <= loss["Cocktail"][1] {
		t.Errorf("Cocktail: SE loss %.1f%% should exceed RQE loss %.1f%%",
			loss["Cocktail"][0], loss["Cocktail"][1])
	}
	if loss["IMDb"][1] <= loss["IMDb"][0] {
		t.Errorf("IMDb: RQE loss %.1f%% should exceed SE loss %.1f%%",
			loss["IMDb"][1], loss["IMDb"][0])
	}
}

func TestFig14Shape(t *testing.T) {
	tb, err := Fig14(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(tb.Rows))
	}
	baseP1 := parseSecs(t, tb.Rows[0][1])
	baseP8 := parseSecs(t, tb.Rows[3][1])
	hackP1 := parseSecs(t, tb.Rows[0][4])
	hackP8 := parseSecs(t, tb.Rows[3][4])
	baseGrowth := baseP8/baseP1 - 1
	hackGrowth := hackP8/hackP1 - 1
	if baseGrowth < 0.30 {
		t.Errorf("baseline growth %.2f from p=1 to p=8, want large (paper: 1.27)", baseGrowth)
	}
	if hackGrowth >= baseGrowth/2 {
		t.Errorf("HACK growth %.2f should be far below baseline's %.2f", hackGrowth, baseGrowth)
	}
}

func TestFig1dShape(t *testing.T) {
	tb, err := Fig1d(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		lo := parsePct(t, row[1])
		hi := parsePct(t, row[len(row)-1])
		if hi < lo-1 { // comm ratio should not shrink with load
			t.Errorf("%s: comm ratio fell from %.1f%% to %.1f%% with load", row[0], lo, hi)
		}
	}
}

func TestFP48Shape(t *testing.T) {
	tb, err := FP48(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 15 {
		t.Fatalf("%d rows, want 15", len(tb.Rows))
	}
	// FP8 transfers twice FP4's bytes: comm ratio should not be lower
	// on the same instance.
	comm := map[string]float64{}
	for _, row := range tb.Rows {
		comm[row[0]] = parsePct(t, row[1])
	}
	if comm["FP8/V100"] < comm["FP4/V100"] {
		t.Errorf("FP8 comm %.1f%% below FP4's %.1f%% on V100", comm["FP8/V100"], comm["FP4/V100"])
	}
}

func TestFidelityLadderOrdering(t *testing.T) {
	a := QuickAccuracy()
	a.Trials = 3 // 12 probe draws
	tb, err := FidelityLadder(a)
	if err != nil {
		t.Fatal(err)
	}
	errs := map[string]float64{}
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		errs[row[0]] = v
	}
	if errs["Baseline"] > 0.01 {
		t.Errorf("baseline error %.4f, want ~0", errs["Baseline"])
	}
	if errs["HACK (Π=32)"] >= errs["HACK (Π=128)"] {
		t.Errorf("Π=32 error %.3f not below Π=128's %.3f", errs["HACK (Π=32)"], errs["HACK (Π=128)"])
	}
	// The dequant baselines sit between the extremes.
	for _, m := range []string{"CacheGen", "KVQuant"} {
		if errs[m] <= errs["HACK (Π=32)"] {
			t.Errorf("%s error %.3f below Π=32's %.3f", m, errs[m], errs["HACK (Π=32)"])
		}
	}
}

func TestTable6Runs(t *testing.T) {
	a := QuickAccuracy()
	a.Trials = 1
	tb, err := Table6(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("%d rows, want 6", len(tb.Rows))
	}
	// Baseline row must be ~perfect against the exact reference.
	if !strings.HasPrefix(tb.Rows[0][1], "100.0%") {
		t.Errorf("baseline IMDb cell %q, want 100%%", tb.Rows[0][1])
	}
}

func TestTable7Mechanism(t *testing.T) {
	a := QuickAccuracy()
	a.Trials = 1
	tb, err := Table7(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		rqe, _ := strconv.ParseFloat(row[1], 64)
		abl, _ := strconv.ParseFloat(row[2], 64)
		if abl <= rqe*5 {
			t.Errorf("%s: ablation error %.4f not well above RQE's %.4f", row[0], abl, rqe)
		}
	}
}

func TestSEMemoryBands(t *testing.T) {
	tb, err := SEMemory(QuickAccuracy())
	if err != nil {
		t.Fatal(err)
	}
	sums := parsePct(t, tb.Rows[0][2])
	if sums < 2 || sums > 8 {
		t.Errorf("SE sum fraction %.1f%%, want ~5%% of quantized KV (§6)", sums)
	}
}

func TestExtINT4Shape(t *testing.T) {
	tb, err := ExtINT4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		gain := parsePct(t, row[3])
		if gain < -1 {
			t.Errorf("%s: INT4 slower than INT8 by %.1f%%", row[0], -gain)
		}
		if gain > 40 {
			t.Errorf("%s: INT4 gain %.1f%% implausibly large", row[0], gain)
		}
	}
}

func TestCostTableShape(t *testing.T) {
	tb, err := CostTable(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		base, _ := strconv.ParseFloat(strings.TrimPrefix(row[2], "$"), 64)
		hack, _ := strconv.ParseFloat(strings.TrimPrefix(row[5], "$"), 64)
		if hack >= base {
			t.Errorf("%s: HACK cost $%.2f not below baseline $%.2f", row[0], hack, base)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow("1", "x,y") // embedded comma must be quoted
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

// The distortion instrument must order the extremes correctly even at
// tiny trial counts: baseline ≈ 0, and Π=32 below Π=128.
func TestLogitDistortionOrdering(t *testing.T) {
	a := QuickAccuracy()
	a.Trials = 2
	tb, err := LogitDistortion(a)
	if err != nil {
		t.Fatal(err)
	}
	d := map[string]float64{}
	for _, row := range tb.Rows {
		var mean float64
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatal(err)
			}
			mean += v / float64(len(row)-1)
		}
		d[row[0]] = mean
	}
	if d["Baseline"] > 0.01 {
		t.Errorf("baseline distortion %.4f, want ~0", d["Baseline"])
	}
	if d["HACK (Π=32)"] >= d["HACK (Π=128)"] {
		t.Errorf("Π=32 distortion %.3f not below Π=128's %.3f", d["HACK (Π=32)"], d["HACK (Π=128)"])
	}
	for name, v := range d {
		if name != "Baseline" && (v < 0.005 || v > 3) {
			t.Errorf("%s distortion %.4f out of plausible band", name, v)
		}
	}
}
