package experiments

import (
	"context"

	"github.com/hackkv/hack/internal/sweeprun"
)

// The experiment runners execute their scenario grids on the shared
// sweeprun worker pool instead of bespoke serial loops. Every simulated
// cell is independent and deterministic, and results land in
// index-addressed slots, so the emitted tables are identical to the old
// serial ones — rows appear in definition order, not completion order.

// parRows builds n table rows concurrently and appends them to t in
// index order.
func parRows(t *Table, n int, build func(i int) ([]string, error)) error {
	rows, err := parMap(n, build)
	if err != nil {
		return err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return nil
}

// parMap computes n values concurrently on the pool, returned in index
// order. The first error (or recovered panic) cancels the remaining
// jobs.
func parMap[T any](n int, build func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := sweeprun.Map(context.Background(), n, 0, func(_ context.Context, i int) error {
		v, err := build(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
