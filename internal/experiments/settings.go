package experiments

import (
	"fmt"

	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/sim"
	"github.com/hackkv/hack/internal/workload"
)

// Settings hold the shared experiment parameters.
type Settings struct {
	// Params is the calibrated cost model (see EXPERIMENTS.md).
	Params cluster.CostParams
	// Requests is the trace length per simulation run.
	Requests int
	// Seed fixes all randomness.
	Seed int64
	// MaxBatch caps a decode replica's concurrent batch.
	MaxBatch int
	// MemCapFrac is the usable decode-memory fraction.
	MemCapFrac float64
	// LoadFrac drives each scenario at this fraction of the baseline's
	// estimated capacity — the paper runs at "maximum processing
	// capacity", i.e. close to 1.
	LoadFrac float64
}

// Default returns the full-size settings used by cmd/hackbench.
func Default() Settings {
	return Settings{
		Params:     cluster.DefaultCostParams(),
		Requests:   200,
		Seed:       42,
		MaxBatch:   256,
		MemCapFrac: 0.95,
		LoadFrac:   0.85,
	}
}

// Quick returns reduced-size settings for tests.
func Quick() Settings {
	s := Default()
	s.Requests = 60
	return s
}

// prefillInstanceCount returns the paper's §7.1 pool size for an
// accelerator tag, carried on the GPU registry's Instance entries.
func prefillInstanceCount(gpuName string) (int, error) {
	in, err := cluster.ByGPUName(gpuName)
	if err != nil {
		return 0, err
	}
	if in.PoolInstances <= 0 {
		return 0, fmt.Errorf("experiments: no pool size for %s", gpuName)
	}
	return in.PoolInstances, nil
}

// deployment sizes a scenario: pool replica counts from the paper's
// instance counts and Table 3 parallelism.
type deployment struct {
	cm                *cluster.CostModel
	prefillN, decodeN int
}

// newDeployment builds the cost model and replica counts for a scenario.
func newDeployment(spec model.Spec, prefill cluster.Instance, s Settings) (*deployment, error) {
	cm, err := cluster.NewCostModel(spec, prefill, cluster.A100(), s.Params)
	if err != nil {
		return nil, err
	}
	nInst, err := prefillInstanceCount(prefill.GPUName)
	if err != nil {
		return nil, err
	}
	prefillGPUs := nInst * prefill.NumGPUs
	prefillN := prefillGPUs / cm.PrefillPar.GPUsPerReplica()
	if prefillN < 1 {
		prefillN = 1
	}
	// Two p4de.24xlarge for decode (§7.1).
	decodeGPUs := 2 * cluster.A100().NumGPUs
	decodeN := decodeGPUs / cm.DecodePar.GPUsPerReplica()
	if decodeN < 1 {
		decodeN = 1
	}
	return &deployment{cm: cm, prefillN: prefillN, decodeN: decodeN}, nil
}

// baselineCapacity estimates the deployment's sustainable request rate
// under the FP16 baseline: the minimum of the prefill-, decode-,
// network- and memory-bound rates at the dataset's average lengths.
func (d *deployment) baselineCapacity(ds workload.Dataset) float64 {
	m := cluster.Baseline()
	avgIn, avgOut := ds.Input.Avg, ds.Output.Avg

	pf, q := d.cm.PrefillTimes(m, avgIn)
	prefillCap := float64(d.prefillN) / (pf + q)

	// Decode: memory-limited batch per replica, then rate at that batch.
	capB := d.cm.DecodeReplicaCapacityBytes() * 0.95
	base := d.cm.DecodeMemoryBytes(m, nil)
	perReq := d.cm.ResidentKVBytes(m, avgIn+avgOut)
	slots := int((capB - base) / perReq)
	if slots < 1 {
		slots = 1
	}
	lens := make([]int, slots)
	for i := range lens {
		lens[i] = avgIn + avgOut/2
	}
	dec, kv, ov := d.cm.DecodeStep(m, lens)
	residence := float64(avgOut) * (dec + kv + ov)
	decodeCap := float64(d.decodeN) * float64(slots) / residence

	// Network: aggregate ingress vs per-request wire bytes.
	aggGbps := float64(d.prefillN) * d.cm.Prefill.NetGbps
	if total := 2 * cluster.A100().NetGbps; total < aggGbps {
		aggGbps = total
	}
	netCap := aggGbps * 1e9 / 8 * d.cm.Params.NetEff / d.cm.WireBytes(m, avgIn)

	cap := prefillCap
	if decodeCap < cap {
		cap = decodeCap
	}
	if netCap < cap {
		cap = netCap
	}
	return cap
}

// runScenario simulates one (method, dataset) point at LoadFrac of the
// baseline capacity.
func (d *deployment) runScenario(s Settings, m cluster.Method, ds workload.Dataset, pipeline bool) (*sim.Result, error) {
	rps := d.baselineCapacity(ds) * s.LoadFrac
	reqs, err := workload.Trace(ds, rps, s.Requests, s.Seed)
	if err != nil {
		return nil, err
	}
	return sim.Run(sim.Config{
		CM: d.cm, Method: m,
		PrefillReplicas: d.prefillN, DecodeReplicas: d.decodeN,
		MaxBatch: s.MaxBatch, MemCapFrac: s.MemCapFrac, Pipeline: pipeline,
	}, reqs)
}

// datasetFor pairs a model with its evaluation dataset: Cocktail, except
// Falcon-180B which is capped to 2K context and paired with arXiv (§7.1).
func datasetFor(spec model.Spec) workload.Dataset {
	if spec.ShortName == "F" {
		return workload.ArXiv().CappedTo(spec.MaxContext)
	}
	return workload.Cocktail()
}

// modelLabel renders the paper's model tags (F-arXiv for Falcon).
func modelLabel(spec model.Spec) string {
	if spec.ShortName == "F" {
		return "F-arXiv"
	}
	return spec.ShortName
}
