package experiments

import (
	"fmt"

	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/sim"
	"github.com/hackkv/hack/internal/workload"
)

// Fig1a reproduces Fig. 1(a): baseline time ratios (prefill / comm /
// decode) for Llama-3.1 70B + Cocktail across prefill instances.
func Fig1a(s Settings) (*Table, error) {
	t := &Table{ID: "Fig 1a", Title: "baseline time ratios by prefill GPU (Llama-70B, Cocktail)",
		Header: []string{"GPU", "Prefill", "Comm", "Decode", "KVMemAcc", "AvgJCT"}}
	instances := cluster.PrefillInstances()
	err := parRows(t, len(instances), func(i int) ([]string, error) {
		in := instances[i]
		d, err := newDeployment(model.Llama70B(), in, s)
		if err != nil {
			return nil, err
		}
		res, err := d.runScenario(s, cluster.Baseline(), workload.Cocktail(), false)
		if err != nil {
			return nil, err
		}
		r := res.AvgRatios()
		return []string{in.GPUName, pct(r.Prefill), pct(r.Comm), pct(r.Decode + r.Overhead + r.Quant),
			pct(r.KVMem), secs(res.AvgJCT())}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = "paper: A100 comm 3.7%, others 19.1–23.5%; prefill 19.7–41.4%; decode 43.1–82.5%"
	return t, nil
}

// Fig1b reproduces Fig. 1(b): baseline ratios across models (Cocktail;
// arXiv capped to 2K for Falcon-180B).
func Fig1b(s Settings) (*Table, error) {
	t := &Table{ID: "Fig 1b", Title: "baseline time ratios by model (A10G prefill)",
		Header: []string{"Model", "Prefill", "Comm", "Decode", "AvgJCT"}}
	catalog := model.Catalog()
	err := parRows(t, len(catalog), func(i int) ([]string, error) {
		spec := catalog[i]
		d, err := newDeployment(spec, cluster.A10G(), s)
		if err != nil {
			return nil, err
		}
		res, err := d.runScenario(s, cluster.Baseline(), datasetFor(spec), false)
		if err != nil {
			return nil, err
		}
		r := res.AvgRatios()
		return []string{modelLabel(spec), pct(r.Prefill), pct(r.Comm),
			pct(r.Decode + r.Overhead + r.Quant), secs(res.AvgJCT())}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = "paper: comm 11.8% (F-arXiv) / 18.7–25.3% (others); prefill 17.6–45.6%; decode 39.8–81.7%"
	return t, nil
}

// Fig1c reproduces Fig. 1(c): baseline ratios across datasets for
// Llama-70B on A10G.
func Fig1c(s Settings) (*Table, error) {
	t := &Table{ID: "Fig 1c", Title: "baseline time ratios by dataset (Llama-70B, A10G)",
		Header: []string{"Dataset", "Prefill", "Comm", "Decode", "AvgJCT"}}
	d, err := newDeployment(model.Llama70B(), cluster.A10G(), s)
	if err != nil {
		return nil, err
	}
	datasets := workload.Datasets()
	err = parRows(t, len(datasets), func(i int) ([]string, error) {
		ds := datasets[i]
		res, err := d.runScenario(s, cluster.Baseline(), ds, false)
		if err != nil {
			return nil, err
		}
		r := res.AvgRatios()
		return []string{ds.Name, pct(r.Prefill), pct(r.Comm), pct(r.Decode + r.Overhead + r.Quant), secs(res.AvgJCT())}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = "paper: comm 9.5–21.9%; prefill 13.6–37.1%; decode 54.8–83.3%"
	return t, nil
}

// Fig1d reproduces Fig. 1(d): average communication ratio with
// pipelining as load grows, per prefill instance. The paper sweeps
// absolute RPS 0.06–0.18 on its testbed; we sweep the same fractions of
// each deployment's baseline capacity.
func Fig1d(s Settings) (*Table, error) {
	fracs := []float64{0.4, 0.7, 1.0, 1.25}
	header := []string{"GPU"}
	for _, f := range fracs {
		header = append(header, fmt.Sprintf("load %.0f%%", 100*f))
	}
	t := &Table{ID: "Fig 1d", Title: "comm ratio with pipelining vs load (Llama-70B, Cocktail)",
		Header: header}
	instances := cluster.PrefillInstances()
	type cellKey struct{ gpu, frac int }
	cells := make([]cellKey, 0, len(instances)*len(fracs))
	for gi := range instances {
		for fi := range fracs {
			cells = append(cells, cellKey{gi, fi})
		}
	}
	vals, err := parMap(len(cells), func(i int) (string, error) {
		c := cells[i]
		d, err := newDeployment(model.Llama70B(), instances[c.gpu], s)
		if err != nil {
			return "", err
		}
		ls := s
		ls.LoadFrac = fracs[c.frac]
		res, err := d.runScenario(ls, cluster.Baseline(), workload.Cocktail(), true)
		if err != nil {
			return "", err
		}
		return pct(res.AvgRatios().Comm), nil
	})
	if err != nil {
		return nil, err
	}
	for gi, in := range instances {
		row := []string{in.GPUName}
		row = append(row, vals[gi*len(fracs):(gi+1)*len(fracs)]...)
		t.AddRow(row...)
	}
	t.Notes = "paper: V100 21.4→39.2% (case i); A10G/T4/L4 3.3–4.1→18.7–23.5% (case ii); A100 1.4→3.7%"
	return t, nil
}

// decompRow renders the Fig. 2/3/4 decomposition (prefill / comm /
// dequant / decode) for one quantization method across a dimension.
func decompRow(label string, res *sim.Result) []string {
	r := res.AvgRatios()
	return []string{label, pct(r.Prefill), pct(r.Comm), pct(r.Overhead),
		pct(r.Decode + r.Quant), secs(res.AvgJCT())}
}

// Fig2 reproduces Fig. 2: CacheGen and KVQuant decomposition across
// prefill instances (Llama-70B, Cocktail).
func Fig2(s Settings) (*Table, error) {
	t := &Table{ID: "Fig 2", Title: "KV-quantization methods across prefill instances (Llama-70B, Cocktail)",
		Header: []string{"Method/GPU", "Prefill", "Comm", "Dequant", "Decode", "AvgJCT"}}
	methods := []cluster.Method{cluster.CacheGen(), cluster.KVQuant()}
	instances := cluster.PrefillInstances()
	err := parRows(t, len(methods)*len(instances), func(i int) ([]string, error) {
		m, in := methods[i/len(instances)], instances[i%len(instances)]
		d, err := newDeployment(model.Llama70B(), in, s)
		if err != nil {
			return nil, err
		}
		res, err := d.runScenario(s, m, workload.Cocktail(), false)
		if err != nil {
			return nil, err
		}
		return decompRow(m.Name+"/"+in.GPUName, res), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = "paper: dequant 26.4–37.9% on non-A100 instances; comm reduced by 3.1–34.1 points vs Fig 1a"
	return t, nil
}

// Fig3 reproduces Fig. 3: the same decomposition across models.
func Fig3(s Settings) (*Table, error) {
	t := &Table{ID: "Fig 3", Title: "KV-quantization methods across models (A10G prefill)",
		Header: []string{"Method/Model", "Prefill", "Comm", "Dequant", "Decode", "AvgJCT"}}
	methods := []cluster.Method{cluster.CacheGen(), cluster.KVQuant()}
	catalog := model.Catalog()
	err := parRows(t, len(methods)*len(catalog), func(i int) ([]string, error) {
		m, spec := methods[i/len(catalog)], catalog[i%len(catalog)]
		d, err := newDeployment(spec, cluster.A10G(), s)
		if err != nil {
			return nil, err
		}
		res, err := d.runScenario(s, m, datasetFor(spec), false)
		if err != nil {
			return nil, err
		}
		return decompRow(m.Name+"/"+modelLabel(spec), res), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = "paper: dequant 18.2–30.8% across models"
	return t, nil
}

// Fig4 reproduces Fig. 4: the same decomposition across datasets.
func Fig4(s Settings) (*Table, error) {
	t := &Table{ID: "Fig 4", Title: "KV-quantization methods across datasets (Llama-70B, A10G)",
		Header: []string{"Method/Dataset", "Prefill", "Comm", "Dequant", "Decode", "AvgJCT"}}
	d, err := newDeployment(model.Llama70B(), cluster.A10G(), s)
	if err != nil {
		return nil, err
	}
	methods := []cluster.Method{cluster.CacheGen(), cluster.KVQuant()}
	datasets := workload.Datasets()
	err = parRows(t, len(methods)*len(datasets), func(i int) ([]string, error) {
		m, ds := methods[i/len(datasets)], datasets[i%len(datasets)]
		res, err := d.runScenario(s, m, ds, false)
		if err != nil {
			return nil, err
		}
		return decompRow(m.Name+"/"+ds.Name, res), nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = "paper: dequant 17.2–30.4%; long-sequence dequant time 12.4–24.9x the short-sequence one"
	return t, nil
}

// FP48 reproduces the §3 simulation: communication and KV memory-access
// ratios for FP4/FP6/FP8 KV formats (Llama-70B, Cocktail, per instance).
func FP48(s Settings) (*Table, error) {
	t := &Table{ID: "§3", Title: "FP4/6/8 KV formats (Llama-70B, Cocktail)",
		Header: []string{"Format/GPU", "Comm", "KVMemAcc", "AvgJCT"}}
	var methods []cluster.Method
	bits := []int{4, 6, 8}
	for _, b := range bits {
		m, err := cluster.FPFormat(b)
		if err != nil {
			return nil, err
		}
		methods = append(methods, m)
	}
	instances := cluster.PrefillInstances()
	err := parRows(t, len(methods)*len(instances), func(i int) ([]string, error) {
		bi, in := i/len(instances), instances[i%len(instances)]
		d, err := newDeployment(model.Llama70B(), in, s)
		if err != nil {
			return nil, err
		}
		res, err := d.runScenario(s, methods[bi], workload.Cocktail(), false)
		if err != nil {
			return nil, err
		}
		r := res.AvgRatios()
		return []string{fmt.Sprintf("FP%d/%s", bits[bi], in.GPUName), pct(r.Comm), pct(r.KVMem), secs(res.AvgJCT())}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = "paper: comm up to 24.3% (FP4), 32.3% (FP6), 37.5% (FP8); KV mem access 10.7–19.4%"
	return t, nil
}

// methodJCTGrid simulates every (outer, method) cell of a grid on the
// pool and returns AvgJCT keyed by method name, one map per outer item.
func methodJCTGrid(n int, methods []cluster.Method,
	run func(outer int, m cluster.Method) (*sim.Result, error)) ([]map[string]float64, error) {
	flat, err := parMap(n*len(methods), func(i int) (float64, error) {
		res, err := run(i/len(methods), methods[i%len(methods)])
		if err != nil {
			return 0, err
		}
		return res.AvgJCT(), nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]map[string]float64, n)
	for o := 0; o < n; o++ {
		out[o] = map[string]float64{}
		for mi, m := range methods {
			out[o][m.Name] = flat[o*len(methods)+mi]
		}
	}
	return out, nil
}

// Fig9 reproduces Fig. 9: average JCT of the four methods across
// datasets (Llama-70B, A10G prefill).
func Fig9(s Settings) (*Table, error) {
	t := &Table{ID: "Fig 9", Title: "average JCT by method and dataset (Llama-70B, A10G)",
		Header: []string{"Dataset", "Baseline", "CacheGen", "KVQuant", "HACK", "HACK vs Base", "HACK vs CG"}}
	d, err := newDeployment(model.Llama70B(), cluster.A10G(), s)
	if err != nil {
		return nil, err
	}
	datasets := workload.Datasets()
	jcts, err := methodJCTGrid(len(datasets), cluster.EvaluatedMethods(),
		func(o int, m cluster.Method) (*sim.Result, error) {
			return d.runScenario(s, m, datasets[o], false)
		})
	if err != nil {
		return nil, err
	}
	for di, ds := range datasets {
		jct := jcts[di]
		t.AddRow(ds.Name, secs(jct["Baseline"]), secs(jct["CacheGen"]), secs(jct["KVQuant"]), secs(jct["HACK"]),
			pct(1-jct["HACK"]/jct["Baseline"]), pct(1-jct["HACK"]/jct["CacheGen"]))
	}
	t.Notes = "paper: HACK vs baseline 38.6/55.3/61.6/40.1%; vs CacheGen 19.2/36.8/41.5/22.5% (IMDb/arXiv/Cocktail/HumanEval)"
	return t, nil
}

// Fig10 reproduces Fig. 10: the JCT decomposition behind Fig. 9.
func Fig10(s Settings) (*Table, error) {
	t := &Table{ID: "Fig 10", Title: "JCT decomposition by method and dataset (Llama-70B, A10G)",
		Header: []string{"Dataset/Method", "Prefill", "Quant", "Comm", "Dequant/Approx", "Decode", "AvgJCT"}}
	d, err := newDeployment(model.Llama70B(), cluster.A10G(), s)
	if err != nil {
		return nil, err
	}
	datasets := workload.Datasets()
	methods := cluster.EvaluatedMethods()
	err = parRows(t, len(datasets)*len(methods), func(i int) ([]string, error) {
		ds, m := datasets[i/len(methods)], methods[i%len(methods)]
		res, err := d.runScenario(s, m, ds, false)
		if err != nil {
			return nil, err
		}
		at := res.AvgTimes()
		return []string{ds.Name + "/" + m.Name, secs(at.Prefill + at.Queue), fmt.Sprintf("%.2fs", at.Quant),
			secs(at.Comm), fmt.Sprintf("%.2fs", at.Overhead), secs(at.Decode), secs(res.AvgJCT())}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = "paper: quant 1.25–2.91% of JCT; KV transfer cut 80.6–85.4%; HACK approx 1.53–3.18% vs dequant 17.2–30.4%"
	return t, nil
}

// Table5 reproduces Table 5: peak decode-instance GPU memory usage.
func Table5(s Settings) (*Table, error) {
	t := &Table{ID: "Table 5", Title: "peak decode GPU memory usage (Llama-70B, A10G prefill)",
		Header: []string{"Method", "IMDb", "arXiv", "Cocktail", "HumanEval"}}
	d, err := newDeployment(model.Llama70B(), cluster.A10G(), s)
	if err != nil {
		return nil, err
	}
	methods := cluster.EvaluatedMethods()
	datasets := workload.Datasets()
	err = parRows(t, len(methods), func(i int) ([]string, error) {
		m := methods[i]
		row := []string{m.Name}
		for _, ds := range datasets {
			res, err := d.runScenario(s, m, ds, false)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(res.PeakMemFrac))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = "paper: baseline 65.3/83.1/93.7/68.9%; CacheGen 49.6/56.2/61.3/50.8%; KVQuant ~1pt lower; HACK +0.6–2.9pt over those"
	return t, nil
}

// Fig11 reproduces Fig. 11: average JCT by method across models.
func Fig11(s Settings) (*Table, error) {
	t := &Table{ID: "Fig 11", Title: "average JCT by method and model (A10G prefill, Cocktail/arXiv)",
		Header: []string{"Model", "Baseline", "CacheGen", "KVQuant", "HACK", "HACK vs Base", "HACK vs CG"}}
	catalog := model.Catalog()
	jcts, err := methodJCTGrid(len(catalog), cluster.EvaluatedMethods(),
		func(o int, m cluster.Method) (*sim.Result, error) {
			d, err := newDeployment(catalog[o], cluster.A10G(), s)
			if err != nil {
				return nil, err
			}
			return d.runScenario(s, m, datasetFor(catalog[o]), false)
		})
	if err != nil {
		return nil, err
	}
	for ci, spec := range catalog {
		jct := jcts[ci]
		t.AddRow(modelLabel(spec), secs(jct["Baseline"]), secs(jct["CacheGen"]), secs(jct["KVQuant"]), secs(jct["HACK"]),
			pct(1-jct["HACK"]/jct["Baseline"]), pct(1-jct["HACK"]/jct["CacheGen"]))
	}
	t.Notes = "paper: HACK vs baseline 54.6/57.2/58.7/61.6/53.3%; vs CacheGen 42.4/39.1/44.8/41.5/31.7% (M/P/Y/L/F-arXiv)"
	return t, nil
}

// Fig12 reproduces Fig. 12: average JCT by method across prefill
// instances (Llama-70B, Cocktail).
func Fig12(s Settings) (*Table, error) {
	t := &Table{ID: "Fig 12", Title: "average JCT by method and prefill instance (Llama-70B, Cocktail)",
		Header: []string{"GPU", "Baseline", "CacheGen", "KVQuant", "HACK", "HACK vs Base", "HACK vs CG"}}
	instances := cluster.PrefillInstances()
	jcts, err := methodJCTGrid(len(instances), cluster.EvaluatedMethods(),
		func(o int, m cluster.Method) (*sim.Result, error) {
			d, err := newDeployment(model.Llama70B(), instances[o], s)
			if err != nil {
				return nil, err
			}
			return d.runScenario(s, m, workload.Cocktail(), false)
		})
	if err != nil {
		return nil, err
	}
	for ii, in := range instances {
		jct := jcts[ii]
		t.AddRow(in.GPUName, secs(jct["Baseline"]), secs(jct["CacheGen"]), secs(jct["KVQuant"]), secs(jct["HACK"]),
			pct(1-jct["HACK"]/jct["Baseline"]), pct(1-jct["HACK"]/jct["CacheGen"]))
	}
	t.Notes = "paper: HACK vs baseline 61.6/70.9/62.1/59.3/60.5%; vs CacheGen 41.5/37.4/43.1/45.3/48.5% (A10G/V100/T4/L4/A100); V100's CG gap is smallest (no INT8)"
	return t, nil
}

// Fig13 reproduces Fig. 13: the SE/RQE ablation JCTs across datasets.
func Fig13(s Settings) (*Table, error) {
	t := &Table{ID: "Fig 13", Title: "ablations: HACK vs HACK/SE vs HACK/RQE (Llama-70B, A10G)",
		Header: []string{"Dataset", "HACK", "HACK/SE", "HACK/RQE", "SE loss", "RQE loss"}}
	d, err := newDeployment(model.Llama70B(), cluster.A10G(), s)
	if err != nil {
		return nil, err
	}
	methods := []cluster.Method{
		cluster.HACK(64, true, true), cluster.HACK(64, false, true), cluster.HACK(64, true, false),
	}
	datasets := workload.Datasets()
	jcts, err := methodJCTGrid(len(datasets), methods,
		func(o int, m cluster.Method) (*sim.Result, error) {
			return d.runScenario(s, m, datasets[o], false)
		})
	if err != nil {
		return nil, err
	}
	for di, ds := range datasets {
		jct := jcts[di]
		t.AddRow(ds.Name, secs(jct["HACK"]), secs(jct["HACK/SE"]), secs(jct["HACK/RQE"]),
			pct(jct["HACK/SE"]/jct["HACK"]-1), pct(jct["HACK/RQE"]/jct["HACK"]-1))
	}
	t.Notes = "paper: SE loss 13.8–15.3% (short) / 22.1–25.9% (long); RQE loss 17.8–21.7% (short) / 0.09–1.2% (long)"
	return t, nil
}

// Table8JCT reproduces Table 8's JCT column: the average-JCT increase of
// Π=32 and Π=64 relative to Π=128 across datasets.
func Table8JCT(s Settings) (*Table, error) {
	t := &Table{ID: "Table 8 (JCT)", Title: "partition-size sensitivity: JCT increase vs Π=128 (Llama-70B, A10G)",
		Header: []string{"Π", "IMDb", "arXiv", "Cocktail", "HumanEval"}}
	d, err := newDeployment(model.Llama70B(), cluster.A10G(), s)
	if err != nil {
		return nil, err
	}
	datasets := workload.Datasets()
	pis := []int{128, 32, 64} // reference first
	flat, err := parMap(len(pis)*len(datasets), func(i int) (float64, error) {
		pi, ds := pis[i/len(datasets)], datasets[i%len(datasets)]
		res, err := d.runScenario(s, cluster.HACK(pi, true, true), ds, false)
		if err != nil {
			return 0, err
		}
		return res.AvgJCT(), nil
	})
	if err != nil {
		return nil, err
	}
	ref := flat[:len(datasets)]
	for pii, pi := range pis[1:] {
		row := []string{fmt.Sprintf("Π=%d", pi)}
		for di := range datasets {
			row = append(row, pct(flat[(pii+1)*len(datasets)+di]/ref[di]-1))
		}
		t.AddRow(row...)
	}
	t.Notes = "paper: Π=32 +13.8–28%; Π=64 +5.1–9.2%"
	return t, nil
}

// Fig14 reproduces Fig. 14: scalability with the prefill:decode replica
// ratio p. One decode replica (half a p4de: 4 GPUs, 200 Gbps); p prefill
// replicas on A10G; RPS = 0.02·p.
func Fig14(s Settings) (*Table, error) {
	t := &Table{ID: "Fig 14", Title: "scalability: average JCT vs p (Llama-70B, Cocktail, RPS=0.02p)",
		Header: []string{"p", "Baseline", "CacheGen", "KVQuant", "HACK"}}
	cm, err := cluster.NewCostModel(model.Llama70B(), cluster.A10G(), cluster.A100(), s.Params)
	if err != nil {
		return nil, err
	}
	ps := []int{1, 2, 4, 8}
	methods := cluster.EvaluatedMethods()
	traces := make([][]workload.Request, len(ps))
	for pi, p := range ps {
		reqs, err := workload.Trace(workload.Cocktail(), 0.02*float64(p), s.Requests, s.Seed)
		if err != nil {
			return nil, err
		}
		traces[pi] = reqs
	}
	flat, err := parMap(len(ps)*len(methods), func(i int) (string, error) {
		pi, m := i/len(methods), methods[i%len(methods)]
		res, err := sim.Run(sim.Config{
			CM: cm, Method: m, PrefillReplicas: ps[pi], DecodeReplicas: 1,
			MaxBatch: s.MaxBatch, MemCapFrac: s.MemCapFrac,
		}, traces[pi])
		if err != nil {
			return "", err
		}
		return secs(res.AvgJCT()), nil
	})
	if err != nil {
		return nil, err
	}
	for pi, p := range ps {
		row := []string{fmt.Sprintf("%d", p)}
		row = append(row, flat[pi*len(methods):(pi+1)*len(methods)]...)
		t.AddRow(row...)
	}
	t.Notes = "paper: baseline JCT grows 127% from p=1 to p=8; CacheGen/KVQuant/HACK only 31–43%"
	return t, nil
}
