package experiments

import "github.com/hackkv/hack/internal/registry"

// Experiment is one runnable regeneration of a paper table or figure.
type Experiment struct {
	// ID is the CLI spelling (fig9, table5, ...).
	ID string
	// Run produces the experiment's table; performance experiments read
	// s, accuracy experiments read a.
	Run func(s Settings, a AccuracySettings) (*Table, error)
}

// Registry resolves experiments by ID. Registration order is
// cmd/hackbench's presentation order, which follows the paper.
var Registry = registry.New[Experiment]("experiment")

// perf adapts a performance experiment to the registry signature.
func perf(fn func(Settings) (*Table, error)) func(Settings, AccuracySettings) (*Table, error) {
	return func(s Settings, _ AccuracySettings) (*Table, error) { return fn(s) }
}

// acc adapts an accuracy experiment to the registry signature.
func acc(fn func(AccuracySettings) (*Table, error)) func(Settings, AccuracySettings) (*Table, error) {
	return func(_ Settings, a AccuracySettings) (*Table, error) { return fn(a) }
}

func init() {
	for _, e := range []Experiment{
		{"fig1a", perf(Fig1a)},
		{"fig1b", perf(Fig1b)},
		{"fig1c", perf(Fig1c)},
		{"fig1d", perf(Fig1d)},
		{"fig2", perf(Fig2)},
		{"fig3", perf(Fig3)},
		{"fig4", perf(Fig4)},
		{"fp48", perf(FP48)},
		{"fig9", perf(Fig9)},
		{"fig10", perf(Fig10)},
		{"table5", perf(Table5)},
		{"fig11", perf(Fig11)},
		{"fig12", perf(Fig12)},
		{"fig13", perf(Fig13)},
		{"table8", perf(Table8JCT)},
		{"fig14", perf(Fig14)},
		{"fidelity", acc(FidelityLadder)},
		{"table6", acc(Table6)},
		{"table7", acc(Table7)},
		{"table8acc", acc(Table8Accuracy)},
		{"mem74", acc(SEMemory)},
		{"distortion", acc(LogitDistortion)},
		{"int4", perf(ExtINT4)},
		{"cost", perf(CostTable)},
	} {
		Registry.Register(e.ID, e)
	}
}
