package experiments

import (
	"fmt"
	"math/rand"

	"github.com/hackkv/hack/internal/attention"
	"github.com/hackkv/hack/internal/kvcache"
	"github.com/hackkv/hack/internal/metrics"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/quant"
	"github.com/hackkv/hack/internal/tensor"
	"github.com/hackkv/hack/internal/workload"
)

// AccuracySettings size the numeric accuracy experiments. Sequence
// lengths are the Table 4 shapes scaled ~1/25 so that hundreds of
// generations run in seconds, while keeping L ≫ Π=128 (the regime the
// paper operates in; see EXPERIMENTS.md for the finite-size discussion).
type AccuracySettings struct {
	// Trials is the number of prompts per (method, dataset) cell.
	Trials int
	// Seed fixes all randomness.
	Seed int64
	// Scale multiplies the per-dataset lengths (1 = full accuracy runs).
	Scale float64
	// KernelParallelism bounds the worker goroutines the homomorphic
	// kernels may use per multiplication (hack.Options.Parallelism).
	// 0 (and 1) run the kernels serially — the experiment runners
	// already saturate the shared pool with one job per CPU, so nested
	// fan-out would oversubscribe the host; set n > 1 explicitly to
	// allow per-multiplication fan-out. Tables are bit-identical at
	// every setting.
	KernelParallelism int
}

// DefaultAccuracy returns the full accuracy-run settings.
func DefaultAccuracy() AccuracySettings { return AccuracySettings{Trials: 12, Seed: 7, Scale: 1} }

// hackConfig derives the paper's shipping HACK attention configuration
// with the settings' kernel-parallelism knob threaded through. The
// experiment runners already saturate the shared pool with one job per
// CPU, so an unset knob means serial kernels here — nested auto fan-out
// would oversubscribe the host W× without speeding anything up.
func (a AccuracySettings) hackConfig(seed int64) attention.HACKConfig {
	cfg := attention.DefaultHACKConfig(seed)
	cfg.Parallelism = a.KernelParallelism
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	return cfg
}

// QuickAccuracy returns reduced settings for tests.
func QuickAccuracy() AccuracySettings { return AccuracySettings{Trials: 2, Seed: 7, Scale: 0.5} }

// AccuracyModelSpec is the numeric substrate for the accuracy runs: the
// paper's head geometry (d_h = 128, so Π ∈ {32, 64, 128} are the paper's
// own partition sizes) in a two-layer model.
func AccuracyModelSpec() model.Spec {
	return model.Spec{Name: "AccToy", ShortName: "T", Layers: 2, Hidden: 128,
		Heads: 1, KVHeads: 1, HeadDim: 128, MLPDim: 256, Vocab: 128, MaxContext: 1 << 20}
}

// accLengths returns the scaled (prompt, generation) lengths for a
// dataset.
func accLengths(ds workload.Dataset, scale float64) (in, out int) {
	base := map[string][2]int{
		"IMDb":      {256, 24},
		"arXiv":     {448, 40},
		"Cocktail":  {640, 40},
		"HumanEval": {192, 32},
	}
	v := base[ds.Name]
	in = int(float64(v[0]) * scale)
	out = int(float64(v[1]) * scale)
	if in < 144 {
		in = 144 // keep L above Π=128 so every method quantizes V
	}
	if out < 8 {
		out = 8
	}
	return in, out
}

// accuracyBackends returns the six Table 6 rows: baseline, HACK at the
// three partition sizes, and the two dequantize-first baselines. The
// CacheGen/KVQuant group sizes (96/112) land their quantization error
// between HACK Π=64 and Π=128 as measured in Table 6.
func accuracyBackends(a AccuracySettings, seed int64) ([]attention.Backend, error) {
	var out []attention.Backend
	out = append(out, attention.FP16Backend{})
	for _, pi := range []int{32, 64, 128} {
		cfg := a.hackConfig(seed)
		cfg.Pi = pi
		cfg.NameOverride = fmt.Sprintf("HACK (Π=%d)", pi)
		b, err := attention.NewHACK(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	cg, err := attention.NewDequant(attention.DequantConfig{
		MethodName: "CacheGen", Pi: 96, KVBits: 2,
		Rounding: quant.StochasticRounding, Seed: seed, WireFactor: 0.9,
	})
	if err != nil {
		return nil, err
	}
	kq, err := attention.NewDequant(attention.DequantConfig{
		MethodName: "KVQuant", Pi: 112, KVBits: 2,
		Rounding: quant.StochasticRounding, Seed: seed, WireFactor: 1,
	})
	if err != nil {
		return nil, err
	}
	return append(out, cg, kq), nil
}

// generationScore runs one prompt through the exact reference and the
// backend, returning (teacher-forced agreement, free-run metric) where
// the free-run metric is ROUGE-1 or edit similarity per the dataset.
func generationScore(m *model.Transformer, b attention.Backend, ds workload.Dataset,
	prompt []int, steps int) (agree, freeRun float64, err error) {
	// Reference trajectory and free-run output.
	ref, err := m.NewSession(attention.ExactBackend{})
	if err != nil {
		return 0, 0, err
	}
	tok, err := ref.Prefill(prompt)
	if err != nil {
		return 0, 0, err
	}
	refNext := []int{tok}
	traj := []int{tok}
	for i := 0; i < steps; i++ {
		tok, err = ref.Decode(traj[len(traj)-1])
		if err != nil {
			return 0, 0, err
		}
		refNext = append(refNext, tok)
		traj = append(traj, tok)
	}

	// Backend: teacher-forced along the reference trajectory.
	tf, err := m.NewSession(b)
	if err != nil {
		return 0, 0, err
	}
	match := 0
	got, err := tf.Prefill(prompt)
	if err != nil {
		return 0, 0, err
	}
	if got == refNext[0] {
		match++
	}
	free := []int{got}
	for i := 0; i < steps; i++ {
		got, err = tf.Decode(traj[i])
		if err != nil {
			return 0, 0, err
		}
		if got == refNext[i+1] {
			match++
		}
	}
	agree = float64(match) / float64(steps+1)

	// Backend: free-running generation for the text-similarity metric.
	fr, err := m.NewSession(b)
	if err != nil {
		return 0, 0, err
	}
	out, err := fr.Generate(prompt, steps+1, -1)
	if err != nil {
		return 0, 0, err
	}
	free = out
	switch ds.Metric {
	case "edit similarity":
		freeRun = metrics.EditSimilarity(free, traj)
	default:
		freeRun = metrics.Rouge1(free, traj)
	}
	return agree, freeRun, nil
}

// Table6 reproduces Table 6: generation accuracy of every method across
// datasets on the numeric model, measured against the exact-arithmetic
// reference. Two numbers per cell: teacher-forced next-token agreement
// and the dataset's free-run text metric.
func Table6(a AccuracySettings) (*Table, error) {
	t := &Table{ID: "Table 6", Title: "accuracy vs exact reference (numeric model, scaled lengths)",
		Header: []string{"Method", "IMDb", "arXiv", "Cocktail", "HumanEval"}}
	m, err := model.NewTransformer(AccuracyModelSpec(), a.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(a.Seed))
	backends, err := accuracyBackends(a, a.Seed)
	if err != nil {
		return nil, err
	}
	datasets := workload.Datasets()
	// Draw every prompt up front, in the original (dataset, trial) order,
	// so the shared RNG stream — and therefore the table — is unchanged
	// by pooled execution.
	prompts := make([][][]int, len(datasets))
	outLens := make([]int, len(datasets))
	for di, ds := range datasets {
		in, out := accLengths(ds, a.Scale)
		outLens[di] = out
		prompts[di] = make([][]int, a.Trials)
		for trial := 0; trial < a.Trials; trial++ {
			prompt := make([]int, in)
			for i := range prompt {
				prompt[i] = rng.Intn(m.Spec().Vocab)
			}
			prompts[di][trial] = prompt
		}
	}
	// One pool job per (dataset, trial): each builds its own backends, so
	// nothing stateful is shared across workers but the frozen weights.
	type cell struct{ agree, free float64 }
	flat, err := parMap(len(datasets)*a.Trials, func(i int) ([]cell, error) {
		di, trial := i/a.Trials, i%a.Trials
		bs, err := accuracyBackends(a, a.Seed+int64(trial))
		if err != nil {
			return nil, err
		}
		cells := make([]cell, len(bs))
		for bi, b := range bs {
			agree, free, err := generationScore(m, b, datasets[di], prompts[di][trial], outLens[di])
			if err != nil {
				return nil, err
			}
			cells[bi] = cell{agree: agree, free: free}
		}
		return cells, nil
	})
	if err != nil {
		return nil, err
	}
	scores := map[string]map[string]*cell{}
	for _, b := range backends {
		scores[b.Name()] = map[string]*cell{}
		for _, ds := range datasets {
			scores[b.Name()][ds.Name] = &cell{}
		}
	}
	for di, ds := range datasets {
		for trial := 0; trial < a.Trials; trial++ {
			for bi, b := range backends {
				c := scores[b.Name()][ds.Name]
				c.agree += flat[di*a.Trials+trial][bi].agree / float64(a.Trials)
				c.free += flat[di*a.Trials+trial][bi].free / float64(a.Trials)
			}
		}
	}
	for _, b := range backends {
		row := []string{b.Name()}
		for _, ds := range datasets {
			c := scores[b.Name()][ds.Name]
			row = append(row, fmt.Sprintf("%.1f%%/%.1f%%", 100*c.agree, 100*c.free))
		}
		t.AddRow(row...)
	}
	t.Notes = "cells: teacher-forced agreement / free-run text metric vs exact reference. " +
		"paper (vs ground truth): baseline 75.2–95.7%; HACK Π=32 −0.55–1.17pt, Π=64 −0.76–1.56pt, " +
		"CacheGen −1.44–2.08pt, KVQuant −1.46–2.33pt, Π=128 −1.37–2.68pt"
	return t, nil
}

// FidelityLadder measures each method's attention-output relative error
// directly (one decode step against a long context), the deterministic
// microscope behind Table 6's ordering: finer partitions give lower
// error; the dequant baselines' group sizes land between Π=64 and Π=128.
func FidelityLadder(a AccuracySettings) (*Table, error) {
	t := &Table{ID: "Table 6 (fidelity)", Title: "attention-output relative error per method (d_h=128, L=768)",
		Header: []string{"Method", "RelError", "vs Baseline"}}
	const dh, l = 128, 768
	trials := a.Trials * 4
	if trials < 4 {
		trials = 4
	}
	type probe struct {
		name string
		mk   func(seed int64) (attention.Backend, error)
	}
	probes := []probe{
		{"Baseline", func(int64) (attention.Backend, error) { return attention.FP16Backend{}, nil }},
	}
	for _, pi := range []int{32, 64, 128} {
		pi := pi
		probes = append(probes, probe{fmt.Sprintf("HACK (Π=%d)", pi), func(seed int64) (attention.Backend, error) {
			cfg := a.hackConfig(seed)
			cfg.Pi = pi
			return attention.NewHACK(cfg)
		}})
	}
	probes = append(probes,
		probe{"CacheGen", func(seed int64) (attention.Backend, error) {
			return attention.NewDequant(attention.DequantConfig{MethodName: "CacheGen", Pi: 96,
				KVBits: 2, Rounding: quant.StochasticRounding, Seed: seed, WireFactor: 0.9})
		}},
		probe{"KVQuant", func(seed int64) (attention.Backend, error) {
			return attention.NewDequant(attention.DequantConfig{MethodName: "KVQuant", Pi: 112,
				KVBits: 2, Rounding: quant.StochasticRounding, Seed: seed, WireFactor: 1})
		}},
	)

	rng := rand.New(rand.NewSource(a.Seed))
	errs := make([]float64, len(probes))
	var baseErr float64
	for trial := 0; trial < trials; trial++ {
		q := tensor.RandNormal(rng, l, dh, 1)
		k := tensor.RandNormal(rng, l, dh, 1)
		v := tensor.RandNormal(rng, l, dh, 1)
		dq := tensor.RandNormal(rng, 1, dh, 1)
		dk := tensor.RandNormal(rng, 1, dh, 1)
		dv := tensor.RandNormal(rng, 1, dh, 1)

		exact, err := attention.ExactBackend{}.NewHead(dh)
		if err != nil {
			return nil, err
		}
		if _, _, err := exact.Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
			return nil, err
		}
		ref, _, err := exact.Decode(dq.Clone(), dk.Clone(), dv.Clone())
		if err != nil {
			return nil, err
		}
		// Probes are independent given the trial's inputs; evaluate them
		// on the pool. Per-probe accumulation stays in trial order, so
		// the averages match the serial loop bit for bit.
		contrib, err := parMap(len(probes), func(i int) (float64, error) {
			b, err := probes[i].mk(a.Seed + int64(trial))
			if err != nil {
				return 0, err
			}
			h, err := b.NewHead(dh)
			if err != nil {
				return 0, err
			}
			if _, _, err := h.Prefill(q.Clone(), k.Clone(), v.Clone()); err != nil {
				return 0, err
			}
			out, _, err := h.Decode(dq.Clone(), dk.Clone(), dv.Clone())
			if err != nil {
				return 0, err
			}
			return tensor.RelFrobenius(out, ref) / float64(trials), nil
		})
		if err != nil {
			return nil, err
		}
		for i, c := range contrib {
			errs[i] += c
		}
	}
	baseErr = errs[0]
	for i, p := range probes {
		t.AddRow(p.name, fmt.Sprintf("%.4f", errs[i]), fmt.Sprintf("%+.4f", errs[i]-baseErr))
	}
	t.Notes = "expected ordering (paper Table 6): Π=32 < Π=64 < CacheGen ≈ KVQuant < Π=128 in error"
	return t, nil
}

// Table7 reproduces Table 7: the accuracy cost of disabling
// requantization elimination. Two signals per dataset: the
// deterministic cache-level V reconstruction error of the ablation
// relative to RQE (the direct mechanism — requantization error
// accumulates with every appended token), and the noisy end-to-end
// agreement delta.
func Table7(a AccuracySettings) (*Table, error) {
	t := &Table{ID: "Table 7", Title: "HACK/RQE vs HACK: V-cache error ratio and agreement delta",
		Header: []string{"Dataset", "V err (RQE)", "V err (/RQE)", "Error ratio", "Agreement Δ"}}
	m, err := model.NewTransformer(AccuracyModelSpec(), a.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(a.Seed + 1))
	for _, ds := range workload.Datasets() {
		in, out := accLengths(ds, a.Scale)

		// Deterministic mechanism measurement: feed the same V rows into
		// an RQE cache and an ablated cache, compare reconstructions.
		rqeErr, ablErr := vCacheErrors(rng, out+8)

		// Prompts come off the shared RNG serially (preserving its
		// stream); the paired generation runs fan out on the pool.
		prompts := make([][]int, a.Trials)
		for trial := range prompts {
			prompt := make([]int, in)
			for i := range prompt {
				prompt[i] = rng.Intn(m.Spec().Vocab)
			}
			prompts[trial] = prompt
		}
		contrib, err := parMap(a.Trials, func(trial int) (float64, error) {
			full := a.hackConfig(a.Seed + int64(trial))
			noRQE := full
			noRQE.RequantizationElimination = false
			fb, err := attention.NewHACK(full)
			if err != nil {
				return 0, err
			}
			nb, err := attention.NewHACK(noRQE)
			if err != nil {
				return 0, err
			}
			aFull, _, err := generationScore(m, fb, ds, prompts[trial], out)
			if err != nil {
				return 0, err
			}
			aAbl, _, err := generationScore(m, nb, ds, prompts[trial], out)
			if err != nil {
				return 0, err
			}
			return (aAbl - aFull) / float64(a.Trials), nil
		})
		if err != nil {
			return nil, err
		}
		var drop float64
		for _, c := range contrib {
			drop += c
		}
		t.AddRow(ds.Name, fmt.Sprintf("%.4f", rqeErr), fmt.Sprintf("%.4f", ablErr),
			fmt.Sprintf("%.2fx", ablErr/rqeErr), fmt.Sprintf("%+.2f%%", 100*drop))
	}
	t.Notes = "paper: agreement drops −0.14% (IMDb) to −0.29% (arXiv). The error-ratio column isolates the " +
		"mechanism deterministically; the agreement delta carries sampling noise at toy scale (see EXPERIMENTS.md)"
	return t, nil
}

// vCacheErrors appends n random V rows to an RQE cache and an ablated
// cache and returns each cache's mean reconstruction error on the
// trailing partial block.
func vCacheErrors(rng *rand.Rand, n int) (rqeErr, ablErr float64) {
	const dh = 128
	mk := func(rqe bool) *kvcache.Cache {
		return kvcache.MustNew(kvcache.Config{HeadDim: dh, Pi: 64, KVBits: 2,
			Rounding: quant.StochasticRounding, RNG: rand.New(rand.NewSource(9)), RQE: rqe})
	}
	rqeC, ablC := mk(true), mk(false)
	rows := tensor.RandNormal(rng, n, dh, 1)
	zero := make([]float32, dh)
	for i := 0; i < n; i++ {
		if err := rqeC.AppendToken(zero, rows.Row(i)); err != nil {
			panic(err)
		}
		if err := ablC.AppendToken(zero, rows.Row(i)); err != nil {
			panic(err)
		}
	}
	lo := n - rqeC.TailLen()
	ref := rows.SliceRows(lo, n)
	rqeErr = tensor.RelFrobenius(rqeC.TailMatrix(), ref)
	ablErr = tensor.RelFrobenius(ablC.TailMatrix(), ref)
	return rqeErr, ablErr
}

// Table8Accuracy reproduces Table 8's accuracy column: the agreement
// increase of Π=32 and Π=64 relative to Π=128.
func Table8Accuracy(a AccuracySettings) (*Table, error) {
	t := &Table{ID: "Table 8 (accuracy)", Title: "partition-size sensitivity: agreement increase vs Π=128",
		Header: []string{"Π", "IMDb", "arXiv", "Cocktail", "HumanEval"}}
	m, err := model.NewTransformer(AccuracyModelSpec(), a.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(a.Seed + 2))
	datasets := workload.Datasets()
	pis := []int{32, 64, 128}
	// Serial prompt draws preserve the RNG stream; the (dataset, trial)
	// generation grid runs on the pool.
	prompts := make([][][]int, len(datasets))
	outLens := make([]int, len(datasets))
	for di, ds := range datasets {
		in, out := accLengths(ds, a.Scale)
		outLens[di] = out
		prompts[di] = make([][]int, a.Trials)
		for trial := 0; trial < a.Trials; trial++ {
			prompt := make([]int, in)
			for i := range prompt {
				prompt[i] = rng.Intn(m.Spec().Vocab)
			}
			prompts[di][trial] = prompt
		}
	}
	flat, err := parMap(len(datasets)*a.Trials, func(i int) ([]float64, error) {
		di, trial := i/a.Trials, i%a.Trials
		ags := make([]float64, len(pis))
		for pii, pi := range pis {
			cfg := a.hackConfig(a.Seed + int64(trial))
			cfg.Pi = pi
			b, err := attention.NewHACK(cfg)
			if err != nil {
				return nil, err
			}
			ag, _, err := generationScore(m, b, datasets[di], prompts[di][trial], outLens[di])
			if err != nil {
				return nil, err
			}
			ags[pii] = ag
		}
		return ags, nil
	})
	if err != nil {
		return nil, err
	}
	agree := map[int]map[string]float64{32: {}, 64: {}, 128: {}}
	for di, ds := range datasets {
		for trial := 0; trial < a.Trials; trial++ {
			for pii, pi := range pis {
				agree[pi][ds.Name] += flat[di*a.Trials+trial][pii] / float64(a.Trials)
			}
		}
	}
	for _, pi := range []int{32, 64} {
		row := []string{fmt.Sprintf("Π=%d", pi)}
		for _, ds := range workload.Datasets() {
			row = append(row, fmt.Sprintf("%+.2f%%", 100*(agree[pi][ds.Name]-agree[128][ds.Name])))
		}
		t.AddRow(row...)
	}
	t.Notes = "paper: Π=32 +0.53–1.53pt; Π=64 +0.22–1.27pt. At our scaled lengths the FP16 RQE tail " +
		"covers a larger share of V for large Π, partially offsetting the granularity effect (see EXPERIMENTS.md)"
	return t, nil
}

// SEMemory reports §7.4's memory overheads measured on real caches: the
// SE sum store and the RQE FP16 tail as fractions of the quantized KV.
func SEMemory(a AccuracySettings) (*Table, error) {
	t := &Table{ID: "§7.4", Title: "SE and RQE memory overheads (measured on numeric caches)",
		Header: []string{"Component", "Bytes", "Fraction of cache"}}
	m, err := model.NewTransformer(AccuracyModelSpec(), a.Seed)
	if err != nil {
		return nil, err
	}
	hk, err := attention.NewHACK(a.hackConfig(a.Seed))
	if err != nil {
		return nil, err
	}
	sess, err := m.NewSession(hk)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(a.Seed))
	prompt := make([]int, 640)
	for i := range prompt {
		prompt[i] = rng.Intn(m.Spec().Vocab)
	}
	if _, err := sess.Generate(prompt, 24, -1); err != nil {
		return nil, err
	}
	var total, sums, tail int
	for l := 0; l < m.Spec().Layers; l++ {
		for h := 0; h < m.Spec().Heads; h++ {
			u := sess.HeadUsage(l, h)
			total += u.Total()
			sums += u.SumBytes
			tail += u.FP16Bytes
		}
	}
	t.AddRow("SE sum store", fmt.Sprintf("%d", sums), pct(float64(sums)/float64(total)))
	t.AddRow("RQE FP16 tail", fmt.Sprintf("%d", tail), pct(float64(tail)/float64(total)))
	t.Notes = "paper: sums ≈5% of quantized KV data (2.2–2.7% of GPU memory); FP16 tail 0.24–0.51% of GPU memory"
	return t, nil
}
