package experiments

import (
	"fmt"

	"github.com/hackkv/hack/internal/cluster"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/workload"
)

// Extensions beyond the paper's evaluation: the §8 future-work INT4
// compute path and the cost-effectiveness accounting that motivates
// disaggregation in §1.

// ExtINT4 compares shipping HACK (2-bit codes widened to INT8 for
// compute, the Triton constraint of §6) against the §8 future-work
// variant that runs the quantized matmuls at native INT4 rate.
func ExtINT4(s Settings) (*Table, error) {
	t := &Table{ID: "Ext INT4", Title: "HACK INT8-compute vs INT4-compute (§8 future work)",
		Header: []string{"Dataset", "HACK (INT8)", "HACK-INT4", "INT4 gain"}}
	d, err := newDeployment(model.Llama70B(), cluster.A10G(), s)
	if err != nil {
		return nil, err
	}
	datasets := workload.Datasets()
	err = parRows(t, len(datasets), func(i int) ([]string, error) {
		ds := datasets[i]
		res8, err := d.runScenario(s, cluster.DefaultHACK(), ds, false)
		if err != nil {
			return nil, err
		}
		res4, err := d.runScenario(s, cluster.HACKINT4(), ds, false)
		if err != nil {
			return nil, err
		}
		return []string{ds.Name, secs(res8.AvgJCT()), secs(res4.AvgJCT()),
			pct(1 - res4.AvgJCT()/res8.AvgJCT())}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = "INT4 doubles quantized-matmul throughput; gains concentrate in prefill-heavy long-sequence workloads"
	return t, nil
}

// CostTable reports fleet cost per 1000 completed requests for each
// method on each prefill instance type (Llama-70B, Cocktail): the
// cost-effectiveness argument behind disaggregating onto cheap prefill
// GPUs, and behind HACK's higher sustainable request rates.
func CostTable(s Settings) (*Table, error) {
	t := &Table{ID: "Cost", Title: "fleet cost per 1000 requests (Llama-70B, Cocktail)",
		Header: []string{"GPU", "Fleet $/h", "Baseline", "CacheGen", "KVQuant", "HACK"}}
	instances := cluster.PrefillInstances()
	err := parRows(t, len(instances), func(i int) ([]string, error) {
		in := instances[i]
		d, err := newDeployment(model.Llama70B(), in, s)
		if err != nil {
			return nil, err
		}
		nInst, err := prefillInstanceCount(in.GPUName)
		if err != nil {
			return nil, err
		}
		fleetPerHour := float64(nInst)*in.PricePerHour + 2*cluster.A100().PricePerHour
		row := []string{in.GPUName, fmt.Sprintf("$%.0f", fleetPerHour)}
		for _, m := range cluster.EvaluatedMethods() {
			res, err := d.runScenario(s, m, workload.Cocktail(), false)
			if err != nil {
				return nil, err
			}
			// Throughput over the run: completed requests per hour at
			// the driven rate; each method's higher speed shows up as
			// lower queueing/JCT, so we charge fleet time from first
			// arrival to last completion.
			var last float64
			for _, r := range res.Requests {
				if r.Done > last {
					last = r.Done
				}
			}
			hours := last / 3600
			costPer1K := fleetPerHour * hours / float64(len(res.Requests)) * 1000
			row = append(row, fmt.Sprintf("$%.2f", costPer1K))
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	t.Notes = "on-demand us-east-1 prices; decode pool fixed at 2x p4de.24xlarge. Faster methods finish the same trace sooner, cutting fleet-hours per request"
	return t, nil
}
