package disagg

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
	"github.com/hackkv/hack/internal/serve"
	"github.com/hackkv/hack/internal/workload"
)

// The deployment every test serves: the multi-layer Toy spec with a
// fixed model seed and token budget. Reference streams come from a
// single-process serve.Server with the same parameters — the
// disaggregated pipeline must reproduce them byte-for-byte.
const (
	testModelSeed = 11
	testMaxNew    = 12
)

func testServeConfig() serve.Config {
	return serve.Config{
		ModelSeed:      testModelSeed,
		PrefillWorkers: 1,
		MaxBatch:       4,
		QueueCap:       64,
		MaxNewTokens:   testMaxNew,
	}
}

func newReference(t *testing.T) *serve.Server {
	t.Helper()
	s, err := serve.New(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return s
}

func refTokens(t *testing.T, ref *serve.Server, req Request) []int {
	t.Helper()
	st, err := ref.Submit(context.Background(), serve.Request{
		Prompt: req.Prompt, MaxNewTokens: req.MaxNewTokens, EOS: req.EOS, Seed: req.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	for tok := range st.Tokens() {
		out = append(out, tok.ID)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func collectRouted(st *Stream) ([]int, error) {
	var out []int
	for tok := range st.Tokens() {
		if tok.Index != len(out) {
			return nil, fmt.Errorf("token index %d at position %d", tok.Index, len(out))
		}
		out = append(out, tok.ID)
	}
	return out, st.Err()
}

// cluster is one in-process loopback deployment: a router fronting one
// prefill node and n decode replicas, every tier on 127.0.0.1.
type cluster struct {
	router  *Router
	prefill *PrefillNode
	decodes []*DecodeNode
}

func newCluster(t *testing.T, nDecode int, tweak func(*RouterConfig)) *cluster {
	t.Helper()
	p, err := NewPrefillNode(PrefillConfig{
		Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", ModelSeed: testModelSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	c := &cluster{prefill: p}
	rc := RouterConfig{
		Prefills:  []string{p.Addr()},
		ModelSeed: testModelSeed,
		HTTPAddr:  "127.0.0.1:0",
		// A long poll interval by default: tests that need the monitor
		// shorten it; everything else stays deterministic.
		HealthInterval: time.Hour,
	}
	for i := 0; i < nDecode; i++ {
		d, err := NewDecodeNode(DecodeConfig{
			Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0", Serve: testServeConfig(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { d.Close() })
		c.decodes = append(c.decodes, d)
		rc.Decodes = append(rc.Decodes, d.Addr())
	}
	if tweak != nil {
		tweak(&rc)
	}
	r, err := NewRouter(rc)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	c.router = r
	return c
}

// scenarioRequests replays a simulator workload live: a deterministic
// Poisson trace drawn from one of the paper's datasets, with lengths
// folded down to the Toy model's serving range.
func scenarioRequests(t *testing.T, sc int, ds workload.Dataset, n int) []Request {
	t.Helper()
	trace, err := workload.Trace(ds, 50, n, int64(sc+1))
	if err != nil {
		t.Fatal(err)
	}
	vocab := model.Toy().Vocab
	reqs := make([]Request, n)
	for i, tr := range trace {
		inLen := tr.InputLen%14 + 2
		outLen := tr.OutputLen%(testMaxNew-2) + 2
		prompt := make([]int, inLen)
		for j := range prompt {
			prompt[j] = (sc*31 + i*7 + j*5 + 1) % vocab
		}
		reqs[i] = Request{Prompt: prompt, MaxNewTokens: outLen, Seed: int64(sc*100 + i)}
	}
	return reqs
}

// runScenario pushes every request through the router concurrently and
// requires each stream to match the single-process reference exactly.
func runScenario(t *testing.T, c *cluster, ref *serve.Server, reqs []Request) {
	t.Helper()
	want := make([][]int, len(reqs))
	for i, req := range reqs {
		want[i] = refTokens(t, ref, req)
	}
	got := make([][]int, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req Request) {
			defer wg.Done()
			st, err := c.router.Submit(context.Background(), req)
			if err != nil {
				errs[i] = err
				return
			}
			got[i], errs[i] = collectRouted(st)
		}(i, req)
	}
	wg.Wait()
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("request %d: routed %d tokens, reference %d\nrouted    %v\nreference %v",
				i, len(got[i]), len(want[i]), got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d token %d diverged: routed %d, reference %d\nrouted    %v\nreference %v",
					i, j, got[i][j], want[i][j], got[i], want[i])
			}
		}
	}
}

// TestLoopbackScenariosByteIdentical is the acceptance test: a
// router + 1 prefill + 2 decode loopback deployment replays three
// simulator workload scenarios live, plus a replica-kill chaos pass,
// and every stream matches the single-process runtime byte-for-byte.
func TestLoopbackScenariosByteIdentical(t *testing.T) {
	c := newCluster(t, 2, nil)
	ref := newReference(t)

	scenarios := []struct {
		name string
		ds   workload.Dataset
	}{
		{"imdb", workload.IMDb()},
		{"arxiv", workload.ArXiv()},
		{"cocktail", workload.Cocktail()},
	}
	for sc, s := range scenarios {
		t.Run(s.name, func(t *testing.T) {
			runScenario(t, c, ref, scenarioRequests(t, sc, s.ds, 5))
		})
	}

	// Chaos: kill one decode replica outright (connections severed, no
	// drain) and replay a scenario. The router's first attempts still
	// route to the dead replica — its health flag flips only on the
	// failed dial — so the pass exercises retry, and streams must stay
	// byte-identical.
	t.Run("replica-kill", func(t *testing.T) {
		c.decodes[0].Kill()
		runScenario(t, c, ref, scenarioRequests(t, 7, workload.IMDb(), 4))
		rep := c.router.Report()
		if rep.Retries == 0 {
			t.Fatal("replica kill triggered no retries")
		}
		if rep.Failed != 0 {
			t.Fatalf("%d requests failed after replica kill", rep.Failed)
		}
	})

	rep := c.router.Report()
	if rep.Completed != int64(3*5+4) {
		t.Fatalf("completed %d requests, want %d", rep.Completed, 3*5+4)
	}
	if len(rep.LinkKVBytes) == 0 {
		t.Fatal("no per-link KV byte accounting")
	}
	pre := "prefill→router " + c.prefill.Addr()
	if rep.LinkKVBytes[pre] == 0 {
		t.Fatalf("no KV bytes on %q: %v", pre, rep.LinkKVBytes)
	}
	dec := "router→decode " + c.decodes[1].Addr()
	if rep.LinkKVBytes[dec] == 0 {
		t.Fatalf("no KV bytes on %q: %v", dec, rep.LinkKVBytes)
	}
	if rep.TransferSeconds.P99 <= 0 {
		t.Fatalf("transfer latency summary empty: %+v", rep.TransferSeconds)
	}
}

// stubReplica speaks just enough of the wire protocol to accept one
// decode job, stream a fixed token prefix, and drop the connection —
// a replica dying mid-stream, deterministically.
func stubReplica(t *testing.T, tokens []TokenMsg) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hello := netsim.Hello{Role: "decode", NodeID: "stub", Method: "hack",
		ModelSeed: testModelSeed, SpecName: model.Toy().Name, Vocab: model.Toy().Vocab}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if _, err := netsim.AcceptHandshake(conn, hello, nil); err != nil {
					return
				}
				for {
					mt, _, err := netsim.ReadMessage(conn)
					if err != nil {
						return // the router's probe just closes
					}
					if mt == netsim.MsgTransferEnd {
						break
					}
				}
				for _, tok := range tokens {
					if err := writeJSON(conn, netsim.MsgToken, tok); err != nil {
						return
					}
				}
				// Die mid-stream: no MsgDone, just a severed connection.
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestFailoverMidStream kills a replica after it streamed a prefix of
// the response and requires the router to resume on the second replica
// with no duplicated or missing tokens — and no goroutine leak.
func TestFailoverMidStream(t *testing.T) {
	req := Request{Prompt: []int{9, 8, 7, 6, 5, 4}, MaxNewTokens: 10, Seed: 42}
	ref, err := serve.New(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := refTokens(t, ref, req)
	ref.Shutdown(context.Background())
	if len(want) < 4 {
		t.Fatalf("reference stream too short to split: %v", want)
	}

	before := runtime.NumGoroutine()

	// The stub streams the true first three tokens, then drops dead.
	prefix := []TokenMsg{{0, want[0]}, {1, want[1]}, {2, want[2]}}
	stub, stopStub := stubReplica(t, prefix)
	defer stopStub()

	func() {
		p, err := NewPrefillNode(PrefillConfig{Addr: "127.0.0.1:0", ModelSeed: testModelSeed})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		d, err := NewDecodeNode(DecodeConfig{Addr: "127.0.0.1:0", Serve: testServeConfig()})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		// The stub registers first: with equal load scores the router
		// places the first attempt on it deterministically.
		r, err := NewRouter(RouterConfig{
			Prefills: []string{p.Addr()}, Decodes: []string{stub, d.Addr()},
			ModelSeed: testModelSeed, HealthInterval: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()

		st, err := r.Submit(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := collectRouted(st)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("failover stream has %d tokens, want %d\ngot  %v\nwant %v", len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("token %d diverged after failover: got %d want %d\ngot  %v\nwant %v",
					i, got[i], want[i], got, want)
			}
		}
		rep := r.Report()
		if rep.Retries != 1 || rep.Failovers != 1 {
			t.Fatalf("retries %d failovers %d, want 1/1", rep.Retries, rep.Failovers)
		}
	}()
	stopStub()

	// Everything is closed: the deployment must not leak goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDrainAwareRemoval drains the only replica and requires the health
// monitor to pull it out of placement: new submissions fail with
// ErrNoReplicas instead of landing on a draining node.
func TestDrainAwareRemoval(t *testing.T) {
	c := newCluster(t, 1, func(rc *RouterConfig) {
		rc.HealthInterval = 20 * time.Millisecond
		rc.RetryBackoff = 5 * time.Millisecond
	})
	ref := newReference(t)

	// Healthy first: one request round-trips.
	req := Request{Prompt: []int{1, 2, 3}, MaxNewTokens: 4, Seed: 5}
	want := refTokens(t, ref, req)
	st, err := c.router.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := collectRouted(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}

	c.decodes[0].Drain()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := c.router.Report()
		if len(rep.Replicas) == 1 && rep.Replicas[0].Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("health monitor never observed the drain: %+v", rep.Replicas)
		}
		time.Sleep(10 * time.Millisecond)
	}

	st, err = c.router.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := collectRouted(st); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("draining replica still placed: %v", err)
	}

	c.router.RemoveReplica(c.decodes[0].Addr())
	if rep := c.router.Report(); len(rep.Replicas) != 0 {
		t.Fatalf("replica not removed: %+v", rep.Replicas)
	}
}

// TestMismatchRefused checks the deployment-compatibility gate: a
// router configured for a different model seed is refused by both tiers
// with a typed handshake error, not a silent divergent stream.
func TestMismatchRefused(t *testing.T) {
	p, err := NewPrefillNode(PrefillConfig{Addr: "127.0.0.1:0", ModelSeed: testModelSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	d, err := NewDecodeNode(DecodeConfig{Addr: "127.0.0.1:0", Serve: testServeConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Decode tier: refused at AddReplica.
	if _, err := NewRouter(RouterConfig{
		Prefills: []string{p.Addr()}, Decodes: []string{d.Addr()},
		ModelSeed: testModelSeed + 1, HealthInterval: time.Hour,
	}); !errors.Is(err, netsim.ErrHandshakeRefused) {
		t.Fatalf("mismatched decode replica accepted: %v", err)
	}

	// Prefill tier: refused at submission, terminally (no retry storm).
	r, err := NewRouter(RouterConfig{
		Prefills:  []string{p.Addr()},
		ModelSeed: testModelSeed + 1, HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st, err := r.Submit(context.Background(), Request{Prompt: []int{1}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := collectRouted(st); !errors.Is(err, netsim.ErrHandshakeRefused) {
		t.Fatalf("mismatched prefill accepted: %v", err)
	}
}

// TestNodeHTTPEndpoints exercises every tier's /healthz and /metrics,
// including the Prometheus content negotiation.
func TestNodeHTTPEndpoints(t *testing.T) {
	c := newCluster(t, 1, nil)
	get := func(url string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, _ := get("http://" + c.decodes[0].HTTPAddr() + "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("decode healthz: %d %q", code, body)
	}
	_, body, ct := get("http://" + c.decodes[0].HTTPAddr() + "/metrics")
	if ct != "application/json" || !strings.Contains(body, `"submitted"`) {
		t.Fatalf("decode JSON metrics: %s %q", ct, body)
	}
	_, body, ct = get("http://" + c.decodes[0].HTTPAddr() + "/metrics?format=prometheus")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") ||
		!strings.Contains(body, "hackserved_submitted_total") {
		t.Fatalf("decode Prometheus metrics: %s %q", ct, body)
	}
	_, body, _ = get("http://" + c.prefill.HTTPAddr() + "/metrics?format=prometheus")
	if !strings.Contains(body, "hackserved_prefill_prefills_total") {
		t.Fatalf("prefill Prometheus metrics: %q", body)
	}
	_, body, _ = get("http://" + c.router.HTTPAddr() + "/metrics")
	if !strings.Contains(body, `"link_kv_bytes"`) {
		t.Fatalf("router report: %q", body)
	}
	_, body, _ = get("http://" + c.router.HTTPAddr() + "/metrics?format=text")
	if !strings.Contains(body, "hackserved_router_requests_total") {
		t.Fatalf("router Prometheus metrics: %q", body)
	}
}
