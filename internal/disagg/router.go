package disagg

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hackkv/hack/internal/chaos"
	"github.com/hackkv/hack/internal/metrics"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
)

// RouterConfig parameterizes a router.
type RouterConfig struct {
	// Prefills and Decodes are the initial peer wire addresses. At least
	// one prefill is required; decode replicas may also be added and
	// removed later (AddReplica/RemoveReplica).
	Prefills []string
	Decodes  []string
	// NodeID names the router in handshakes (default "router").
	NodeID string
	// HTTPAddr serves the router's own /healthz and /metrics (the
	// DisaggReport); empty disables it.
	HTTPAddr string
	// Spec/ModelSeed/MethodName describe the deployment; they must match
	// every peer, which the handshake enforces. The zero Spec selects
	// model.Toy().
	Spec       model.Spec
	ModelSeed  int64
	MethodName string
	// DialTimeout bounds each dial+handshake (default 2s).
	DialTimeout time.Duration
	// FrameTimeout bounds each framed read/write inside a KV transfer or
	// token stream (default 10s), so a half-open peer surfaces as a
	// retryable timeout instead of wedging the request forever. Negative
	// disables the deadline.
	FrameTimeout time.Duration
	// HealthInterval is the /healthz polling period (default 500ms).
	HealthInterval time.Duration
	// Decode retries run under a wall-clock RetryBudget (default 5s)
	// with jittered exponential backoff starting at RetryBackoff
	// (default 50ms, doubling, jittered by ±RetryJitter/2 — default
	// 0.2). RetryMax additionally caps the retry count: 0 selects the
	// default cap (2, the pre-budget behavior), negative means
	// budget-only (no count cap).
	RetryMax     int
	RetryBackoff time.Duration
	RetryBudget  time.Duration
	RetryJitter  float64
	// Each decode replica sits behind a circuit breaker that opens after
	// BreakerThreshold consecutive transport failures (default 3) and
	// half-opens after BreakerCooldown (default 500ms), admitting one
	// probe. An open breaker removes the replica from placement even
	// while /healthz still answers — the half-open-link case health
	// polling cannot see.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Dialer replaces the network dialer on every link the router opens
	// (nil means the real network). Chaos, if set, is the fault injector
	// whose stats join the Report and /metrics; when Dialer is nil it
	// also provides the dialer, so every router link crosses the
	// injector's fault plans.
	Dialer chaos.Dialer
	Chaos  *chaos.Injector
}

// Request is one generation job submitted to the router.
type Request struct {
	Prompt       []int
	MaxNewTokens int
	EOS          int
	Seed         int64
}

// Stream delivers one routed request's tokens, mirroring serve.Stream:
// Tokens() yields them in order and closes when the request finishes;
// Err() reports why (nil, ErrNoPrefill, ErrNoReplicas, ErrTransferFailed,
// or the context error).
type Stream struct {
	tokens chan TokenMsg
	closed chan struct{}
	err    error
	once   sync.Once
}

// Tokens returns the ordered token channel. It is buffered to the
// request's token budget, so a slow consumer never stalls a failover.
func (s *Stream) Tokens() <-chan TokenMsg { return s.tokens }

// Err reports the request's terminal error; it blocks until the stream
// has been sealed.
func (s *Stream) Err() error {
	<-s.closed
	return s.err
}

func (s *Stream) finish(err error) {
	s.once.Do(func() {
		s.err = err
		close(s.tokens)
		close(s.closed)
	})
}

// replica tracks one decode peer's health and load. The load signals
// mirror the simulator's LoadAware scoring: pending KV bytes in flight
// to the replica plus its in-flight request count.
type replica struct {
	addr     string
	httpAddr atomic.Value // string
	healthy  atomic.Bool
	draining atomic.Bool
	breaker  *chaos.Breaker

	inflight  atomic.Int64
	pendingKV atomic.Int64
	requests  atomic.Int64
}

func (rep *replica) httpAddrStr() string {
	if v, ok := rep.httpAddr.Load().(string); ok {
		return v
	}
	return ""
}

// ReplicaStatus is one decode replica's row in a Report.
type ReplicaStatus struct {
	Addr           string              `json:"addr"`
	Healthy        bool                `json:"healthy"`
	Draining       bool                `json:"draining"`
	Inflight       int64               `json:"inflight"`
	PendingKVBytes int64               `json:"pending_kv_bytes"`
	Requests       int64               `json:"requests"`
	Breaker        chaos.BreakerStatus `json:"breaker"`
}

// Report is the router's live view of the disaggregated deployment.
type Report struct {
	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
	// LinkKVBytes counts framed KV bytes per link, keyed
	// "prefill→router <addr>" and "router→decode <addr>".
	LinkKVBytes map[string]int64 `json:"link_kv_bytes"`
	// TransferSeconds summarizes KV transfer latencies (prefill pull +
	// decode push legs as separate samples).
	TransferSeconds metrics.PercentileSummary `json:"transfer_seconds"`
	Replicas        []ReplicaStatus           `json:"replicas"`
	// Chaos is the fault injector's activity when one is attached.
	Chaos *chaos.Stats `json:"chaos,omitempty"`
}

// Router fronts N decode replicas behind one submission API: it drives
// prefill on a prefill node, buffers the KV frames (what makes failover
// possible), places the decode on the least-loaded healthy replica, and
// proxies the token stream back, deduplicating by token index across
// retries.
type Router struct {
	cfg   RouterConfig
	hello netsim.Hello

	mu       sync.Mutex
	prefills []string
	replicas []*replica
	nextPre  int

	reqID     atomic.Uint64
	requests  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	retries   atomic.Int64
	failovers atomic.Int64

	linkMu    sync.Mutex
	linkBytes map[string]int64
	transferS []float64

	http   *nodeHTTP
	hc     *http.Client
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// NewRouter validates the config, probes the initial decode replicas,
// and starts the health monitor.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Prefills) == 0 {
		return nil, errors.New("disagg: router needs at least one prefill address")
	}
	if cfg.Spec.Layers == 0 && cfg.Spec.Hidden == 0 {
		cfg.Spec = model.Toy()
	}
	if cfg.NodeID == "" {
		cfg.NodeID = "router"
	}
	if cfg.MethodName == "" {
		cfg.MethodName = "hack"
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.FrameTimeout == 0 {
		cfg.FrameTimeout = defaultFrameTimeout
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 500 * time.Millisecond
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 5 * time.Second
	}
	if cfg.Dialer == nil && cfg.Chaos != nil {
		cfg.Dialer = cfg.Chaos.Dialer(nil)
	}
	r := &Router{
		cfg:       cfg,
		prefills:  append([]string(nil), cfg.Prefills...),
		linkBytes: make(map[string]int64),
		hc:        &http.Client{Timeout: cfg.DialTimeout},
		closed:    make(chan struct{}),
	}
	r.hello = netsim.Hello{
		Role: "router", NodeID: cfg.NodeID, Method: cfg.MethodName,
		ModelSeed: cfg.ModelSeed, SpecName: cfg.Spec.Name, Vocab: cfg.Spec.Vocab,
	}
	for _, addr := range cfg.Decodes {
		if err := r.AddReplica(addr); err != nil {
			return nil, err
		}
	}
	if cfg.HTTPAddr != "" {
		h, err := newNodeHTTP(cfg.HTTPAddr, func() any { return r.Report() },
			r.writeProm, func() bool { return false })
		if err != nil {
			return nil, err
		}
		r.http = h
	}
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// HTTPAddr returns the router's metrics address ("" when disabled).
func (r *Router) HTTPAddr() string {
	if r.http == nil {
		return ""
	}
	return r.http.Addr()
}

// dial opens a link through the router's (possibly fault-injected)
// dialer and runs the handshake.
func (r *Router) dial(addr string) (net.Conn, netsim.Hello, error) {
	return dialWith(r.cfg.Dialer, addr, r.hello, r.cfg.DialTimeout)
}

// AddReplica registers a decode replica and probes it once. A peer that
// answers the handshake with mismatched deployment parameters is
// refused; one that is merely unreachable is registered unhealthy and
// picked up by the health monitor when it appears.
func (r *Router) AddReplica(addr string) error {
	rep := &replica{addr: addr,
		breaker: chaos.NewBreaker(r.cfg.BreakerThreshold, r.cfg.BreakerCooldown)}
	conn, peer, err := r.dial(addr)
	if err == nil {
		conn.Close()
		rep.healthy.Store(true)
		if peer.HTTPAddr != "" {
			rep.httpAddr.Store(peer.HTTPAddr)
		}
	} else if errors.Is(err, netsim.ErrHandshakeRefused) {
		return fmt.Errorf("disagg: replica %s: %w", addr, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.replicas {
		if have.addr == addr {
			return fmt.Errorf("disagg: replica %s already registered", addr)
		}
	}
	r.replicas = append(r.replicas, rep)
	return nil
}

// RemoveReplica deregisters a decode replica. In-flight streams on it
// are unaffected; new placements stop immediately. Pair with the decode
// node's Drain for a drain-aware removal.
func (r *Router) RemoveReplica(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, rep := range r.replicas {
		if rep.addr == addr {
			r.replicas = append(r.replicas[:i], r.replicas[i+1:]...)
			return
		}
	}
}

// isRetryable reports whether err is a transport-level failure (dial
// refused, reset, timeout, a peer dying mid-stream) where trying
// another node can help, rather than a protocol-level refusal.
func isRetryable(err error) bool {
	if errors.Is(err, netsim.ErrHandshakeRefused) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	// Wire-level garbage and missed frame deadlines: the link (or peer)
	// is broken, not the request — another node can still serve it. Frame
	// heads sit outside the frame CRC, so a bit-flip there surfaces as
	// ErrFrameCorrupt instead of ErrChecksum; both are the same link fault.
	if errors.Is(err, netsim.ErrChecksum) || errors.Is(err, netsim.ErrFrameCorrupt) ||
		errors.Is(err, netsim.ErrWireTimeout) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// Close stops the health monitor and waits for in-flight submissions.
func (r *Router) Close() error {
	r.once.Do(func() {
		r.mu.Lock() // serialize with Submit's closed-check + wg.Add
		close(r.closed)
		r.mu.Unlock()
	})
	if r.http != nil {
		r.http.Close()
	}
	r.wg.Wait()
	return nil
}

// Report snapshots the router's counters, per-link KV bytes, transfer
// latency percentiles, and per-replica occupancy.
func (r *Router) Report() Report {
	out := Report{
		Requests:  r.requests.Load(),
		Completed: r.completed.Load(),
		Failed:    r.failed.Load(),
		Retries:   r.retries.Load(),
		Failovers: r.failovers.Load(),
	}
	r.linkMu.Lock()
	out.LinkKVBytes = make(map[string]int64, len(r.linkBytes))
	for k, v := range r.linkBytes {
		out.LinkKVBytes[k] = v
	}
	samples := append([]float64(nil), r.transferS...)
	r.linkMu.Unlock()
	out.TransferSeconds = metrics.Summarize(samples)
	r.mu.Lock()
	reps := append([]*replica(nil), r.replicas...)
	r.mu.Unlock()
	for _, rep := range reps {
		out.Replicas = append(out.Replicas, ReplicaStatus{
			Addr:           rep.addr,
			Healthy:        rep.healthy.Load(),
			Draining:       rep.draining.Load(),
			Inflight:       rep.inflight.Load(),
			PendingKVBytes: rep.pendingKV.Load(),
			Requests:       rep.requests.Load(),
			Breaker:        rep.breaker.Status(),
		})
	}
	if r.cfg.Chaos != nil {
		st := r.cfg.Chaos.Stats()
		out.Chaos = &st
	}
	sort.Slice(out.Replicas, func(i, j int) bool { return out.Replicas[i].Addr < out.Replicas[j].Addr })
	return out
}

// WritePrometheus renders the router counters in Prometheus text
// format (exposition format 0.0.4).
func (r *Router) WritePrometheus(w io.Writer) error { return r.writeProm(w) }

// writeProm renders the router counters in Prometheus text format.
func (r *Router) writeProm(w io.Writer) error {
	rep := r.Report()
	var err error
	emit := func(name, help string, v int64) {
		if err == nil {
			_, err = fmt.Fprintf(w,
				"# HELP hackserved_router_%s %s\n# TYPE hackserved_router_%s counter\nhackserved_router_%s %d\n",
				name, help, name, name, v)
		}
	}
	emit("requests_total", "Requests submitted.", rep.Requests)
	emit("completed_total", "Requests completed.", rep.Completed)
	emit("failed_total", "Requests failed.", rep.Failed)
	emit("retries_total", "Decode attempts retried.", rep.Retries)
	emit("failovers_total", "Transfers failed over to another replica.", rep.Failovers)
	if err != nil {
		return err
	}

	// Per-replica breaker state (0 closed, 1 open, 2 half-open) plus
	// aggregated breaker counters.
	var trips, probes, refusals, open int64
	_, err = fmt.Fprintf(w, "# HELP breaker_state Circuit breaker position per decode replica (0=closed, 1=open, 2=half-open).\n# TYPE breaker_state gauge\n")
	for _, rs := range rep.Replicas {
		state := int64(0)
		switch rs.Breaker.State {
		case "open":
			state = 1
			open++
		case "half-open":
			state = 2
			open++
		}
		if err == nil {
			_, err = fmt.Fprintf(w, "breaker_state{replica=%q} %d\n", rs.Addr, state)
		}
		trips += rs.Breaker.Trips
		probes += rs.Breaker.Probes
		refusals += rs.Breaker.Refusals
	}
	emit2 := func(name, help string, v int64) {
		if err == nil {
			_, err = fmt.Fprintf(w,
				"# HELP breaker_%s %s\n# TYPE breaker_%s counter\nbreaker_%s %d\n",
				name, help, name, name, v)
		}
	}
	emit2("trips_total", "Breaker open transitions across replicas.", trips)
	emit2("probes_total", "Half-open probes granted across replicas.", probes)
	emit2("refusals_total", "Placements refused by open breakers.", refusals)
	if err == nil {
		_, err = fmt.Fprintf(w,
			"# HELP breaker_open Replicas currently open or half-open.\n# TYPE breaker_open gauge\nbreaker_open %d\n", open)
	}
	if err == nil && r.cfg.Chaos != nil {
		err = r.cfg.Chaos.WritePrometheus(w)
	}
	return err
}

// healthLoop polls every replica's /healthz: 200 marks it healthy, 503
// marks it draining (kept for visibility, skipped for placement), and a
// transport error marks it unhealthy. Replicas without a known HTTP
// address are probed over the wire instead.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.closed:
			return
		case <-t.C:
		}
		r.mu.Lock()
		reps := append([]*replica(nil), r.replicas...)
		r.mu.Unlock()
		for _, rep := range reps {
			r.probe(rep)
			r.probeBreaker(rep)
		}
	}
}

// probeBreaker runs the half-open probe out of band. pick only risks a
// request-carrying probe when no closed-breaker replica exists, so with
// one healthy peer absorbing all placements a tripped breaker would
// otherwise stay open forever and the healed replica never rejoin. A
// dial+handshake through the router's own dialer exercises the same
// wire path that tripped the breaker — recovery re-admits the replica
// without gambling a live request on it.
func (r *Router) probeBreaker(rep *replica) {
	if rep.breaker.State() == chaos.BreakerClosed {
		return
	}
	if !rep.breaker.Allow() {
		return // still cooling down, or a probe is already in flight
	}
	conn, _, err := r.dial(rep.addr)
	if err != nil {
		rep.breaker.Failure()
		return
	}
	conn.Close()
	rep.breaker.Success()
}

func (r *Router) probe(rep *replica) {
	if ha := rep.httpAddrStr(); ha != "" {
		resp, err := r.hc.Get("http://" + ha + "/healthz")
		if err != nil {
			rep.healthy.Store(false)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			rep.healthy.Store(true)
			rep.draining.Store(false)
		case http.StatusServiceUnavailable:
			rep.healthy.Store(true)
			rep.draining.Store(true)
		default:
			rep.healthy.Store(false)
		}
		return
	}
	conn, peer, err := r.dial(rep.addr)
	if err != nil {
		rep.healthy.Store(false)
		return
	}
	conn.Close()
	rep.healthy.Store(true)
	if peer.HTTPAddr != "" {
		rep.httpAddr.Store(peer.HTTPAddr)
	}
}

// pick returns the healthy, non-draining replica with the lowest load
// score — pending KV bytes plus an in-flight-request penalty, the wire
// analogue of the simulator's LoadAware drain estimate. Replicas with a
// tripped circuit breaker are skipped: the breaker covers the failure
// mode /healthz cannot see, a replica whose HTTP side answers while its
// wire side drops or corrupts every transfer. When every candidate's
// breaker is tripped, pick offers the half-open probe slot to one of
// them so a recovered replica can re-admit itself.
//
// avoid is the replica whose last attempt for this request just failed:
// before its breaker has accumulated enough failures to trip, load-score
// ties would otherwise re-place every retry on the same broken link
// while a clean replica sits idle. It is only a preference — when no
// other candidate exists (single replica, everyone else down), the
// failed replica is offered again.
func (r *Router) pick(avoid *replica) *replica {
	if rep := r.pickExcluding(avoid); rep != nil {
		return rep
	}
	if avoid != nil {
		return r.pickExcluding(nil)
	}
	return nil
}

func (r *Router) pickExcluding(avoid *replica) *replica {
	r.mu.Lock()
	reps := append([]*replica(nil), r.replicas...)
	r.mu.Unlock()
	const inflightPenalty = 1 << 20
	var best *replica
	var bestScore int64
	for _, rep := range reps {
		if rep == avoid || !rep.healthy.Load() || rep.draining.Load() {
			continue
		}
		if rep.breaker.State() != chaos.BreakerClosed {
			continue
		}
		score := rep.pendingKV.Load() + inflightPenalty*rep.inflight.Load()
		if best == nil || score < bestScore {
			best, bestScore = rep, score
		}
	}
	if best != nil {
		return best
	}
	for _, rep := range reps {
		if rep == avoid || !rep.healthy.Load() || rep.draining.Load() {
			continue
		}
		if rep.breaker.Allow() {
			return rep
		}
	}
	return nil
}

// Submit routes one request through the disaggregated pipeline. The
// returned stream is live immediately; prefill, transfer, placement,
// and failover all happen behind it.
func (r *Router) Submit(ctx context.Context, req Request) (*Stream, error) {
	if len(req.Prompt) == 0 {
		return nil, errors.New("disagg: empty prompt")
	}
	// The closed-check and wg.Add must be atomic with respect to Close:
	// otherwise Submit can pass the check, Close can finish wg.Wait, and
	// the late wg.Add races the waitgroup's reuse.
	r.mu.Lock()
	select {
	case <-r.closed:
		r.mu.Unlock()
		return nil, errors.New("disagg: router closed")
	default:
	}
	r.wg.Add(1)
	r.mu.Unlock()
	buf := req.MaxNewTokens
	if buf <= 0 || buf > 4096 {
		buf = 4096
	}
	st := &Stream{tokens: make(chan TokenMsg, buf+1), closed: make(chan struct{})}
	r.requests.Add(1)
	go func() {
		defer r.wg.Done()
		err := r.run(ctx, req, st)
		if err != nil {
			r.failed.Add(1)
		} else {
			r.completed.Add(1)
		}
		st.finish(err)
	}()
	return st, nil
}

func (r *Router) run(ctx context.Context, req Request, st *Stream) error {
	id := r.reqID.Add(1)
	frames, err := r.runPrefill(ctx, id, req)
	if err != nil {
		return err
	}
	return r.runDecode(ctx, id, req, frames, st)
}

// runPrefill drives the prefill leg on the first reachable prefill node
// (round-robin start) and buffers every KV frame. The buffered frames
// are the failover capital: a decode retry re-ships them without
// touching the prefill tier again.
func (r *Router) runPrefill(ctx context.Context, id uint64, req Request) ([][]byte, error) {
	r.mu.Lock()
	addrs := append([]string(nil), r.prefills...)
	start := r.nextPre
	r.nextPre = (r.nextPre + 1) % len(r.prefills)
	r.mu.Unlock()

	var lastErr error
	for i := range addrs {
		addr := addrs[(start+i)%len(addrs)]
		frames, err := r.pullPrefill(ctx, addr, id, req)
		if err == nil {
			return frames, nil
		}
		lastErr = err
		if !isRetryable(err) {
			return nil, err // protocol-level refusal: retrying elsewhere won't help
		}
	}
	return nil, fmt.Errorf("%w: %v", ErrNoPrefill, lastErr)
}

func (r *Router) pullPrefill(ctx context.Context, addr string, id uint64, req Request) ([][]byte, error) {
	conn, _, err := r.dial(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	start := time.Now()
	if err := writeJSONTimeout(conn, r.cfg.FrameTimeout, netsim.MsgPrefill, PrefillJob{RequestID: id, Prompt: req.Prompt, Seed: req.Seed}); err != nil {
		return nil, err
	}
	var frames [][]byte
	var total int64
	for {
		t, payload, err := netsim.ReadMessageTimeout(conn, r.cfg.FrameTimeout)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
		switch t {
		case netsim.MsgFrame:
			frames = append(frames, payload)
			total += int64(len(payload))
		case netsim.MsgTransferEnd:
			r.recordTransfer("prefill→router "+addr, total, time.Since(start).Seconds())
			return frames, nil
		case netsim.MsgDone:
			var d DoneMsg
			if err := jsonUnmarshal(payload, &d); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("disagg: prefill %s: %s (%s)", addr, d.Err, d.Kind)
		default:
			return nil, fmt.Errorf("disagg: unexpected %v during prefill transfer", t)
		}
	}
}

func (r *Router) recordTransfer(link string, bytes int64, seconds float64) {
	r.linkMu.Lock()
	r.linkBytes[link] += bytes
	r.transferS = append(r.transferS, seconds)
	r.linkMu.Unlock()
}

// runDecode places the buffered transfer on a replica and proxies the
// token stream, retrying on replica death under a wall-clock budget
// with jittered exponential backoff (and the optional RetryMax count
// cap). Tokens are deduplicated by index, so a stream that failed over
// mid-flight still delivers each token exactly once, in order.
func (r *Router) runDecode(ctx context.Context, id uint64, req Request, frames [][]byte, st *Stream) error {
	// Jitter is seeded per request, so concurrent failovers desynchronize
	// instead of thundering back in lockstep, yet a replayed request
	// reproduces its exact retry schedule.
	bo := chaos.NewBackoff(r.cfg.RetryBackoff, 0, r.cfg.RetryJitter, r.cfg.RetryBudget, int64(id))
	lastDelivered := -1
	var lastErr error
	var lastFailed *replica
	sawReplica := false
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if r.cfg.RetryMax >= 0 && attempt > r.cfg.RetryMax {
				break
			}
			d, ok := bo.Next()
			if !ok {
				break // retry budget exhausted
			}
			r.retries.Add(1)
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		rep := r.pick(lastFailed)
		if rep == nil {
			lastErr = ErrNoReplicas
			continue
		}
		sawReplica = true
		err, terminal := r.tryDecode(ctx, rep, id, req, frames, st, &lastDelivered)
		if err == nil {
			return nil
		}
		if terminal {
			return err
		}
		lastErr = err
		lastFailed = rep
		if lastDelivered >= 0 {
			r.failovers.Add(1) // died mid-stream; the next attempt resumes it
		}
	}
	if !sawReplica {
		return ErrNoReplicas
	}
	return fmt.Errorf("%w: %v", ErrTransferFailed, lastErr)
}

// tryDecode runs one decode attempt on one replica. The bool result
// distinguishes terminal failures (bad request, context cancellation)
// from retryable ones (replica death, drain, queue pressure).
func (r *Router) tryDecode(ctx context.Context, rep *replica, id uint64, req Request, frames [][]byte, st *Stream, lastDelivered *int) (err error, terminal bool) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	var total int64
	for _, f := range frames {
		total += int64(len(f))
	}
	rep.pendingKV.Add(total)
	defer rep.pendingKV.Add(-total)

	// Every exit resolves the breaker exactly once: transport faults feed
	// Failure, a clean stream feeds Success, and everything else (our own
	// cancellation, backpressure) releases a held half-open probe slot
	// without judging the replica.
	verdict := 0
	defer func() {
		switch {
		case verdict < 0:
			rep.breaker.Failure()
		case verdict > 0:
			rep.breaker.Success()
		default:
			rep.breaker.Cancel()
		}
	}()

	conn, _, err := r.dial(rep.addr)
	if err != nil {
		rep.healthy.Store(false)
		verdict = -1
		return err, false
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	// fail classifies a transport failure: it marks the replica down and
	// feeds its breaker, unless the real cause was our own cancellation.
	fail := func(e error) (error, bool) {
		if ctx.Err() != nil {
			return ctx.Err(), true
		}
		rep.healthy.Store(false)
		verdict = -1
		return e, false
	}

	start := time.Now()
	job := DecodeJob{RequestID: id, PromptLen: len(req.Prompt), Seed: req.Seed,
		MaxNew: req.MaxNewTokens, EOS: req.EOS}
	if err := writeJSONTimeout(conn, r.cfg.FrameTimeout, netsim.MsgDecode, job); err != nil {
		return fail(err)
	}
	for _, f := range frames {
		if err := netsim.WriteMessageTimeout(conn, r.cfg.FrameTimeout, netsim.MsgFrame, f); err != nil {
			return fail(err)
		}
	}
	if err := netsim.WriteMessageTimeout(conn, r.cfg.FrameTimeout, netsim.MsgTransferEnd, nil); err != nil {
		return fail(err)
	}
	r.recordTransfer("router→decode "+rep.addr, total, time.Since(start).Seconds())
	rep.requests.Add(1)

	for {
		t, payload, err := netsim.ReadMessageTimeout(conn, r.cfg.FrameTimeout)
		if err != nil {
			return fail(err)
		}
		switch t {
		case netsim.MsgPing:
			if err := netsim.WriteMessage(conn, netsim.MsgPong, nil); err != nil {
				return fail(err)
			}
		case netsim.MsgToken:
			var tok TokenMsg
			if err := jsonUnmarshal(payload, &tok); err != nil {
				return fail(err)
			}
			if tok.Index > *lastDelivered {
				// The buffer is sized for the request's budget, but never
				// bet the goroutine on that: a blocked send must still
				// observe cancellation.
				select {
				case st.tokens <- tok:
				case <-ctx.Done():
					return ctx.Err(), true
				}
				*lastDelivered = tok.Index
			}
		case netsim.MsgDone:
			var d DoneMsg
			if err := jsonUnmarshal(payload, &d); err != nil {
				return fail(err)
			}
			if d.Err == "" {
				verdict = 1
				return nil, false
			}
			e := fmt.Errorf("disagg: decode %s: %s (%s)", rep.addr, d.Err, d.Kind)
			switch d.Kind {
			case "draining":
				rep.draining.Store(true)
				return e, false
			case "queue_full":
				// Backpressure, not a fault: the replica is alive and
				// answering, so the breaker stays out of it.
				return e, false
			case "transfer":
				// The replica saw our transfer break (corruption, frame
				// timeout): a link fault, charged to this link's breaker
				// and retried elsewhere.
				verdict = -1
				return e, false
			default:
				return e, true
			}
		default:
			return fmt.Errorf("disagg: unexpected %v in token stream", t), true
		}
	}
}
