package disagg

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hackkv/hack/internal/metrics"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
)

// RouterConfig parameterizes a router.
type RouterConfig struct {
	// Prefills and Decodes are the initial peer wire addresses. At least
	// one prefill is required; decode replicas may also be added and
	// removed later (AddReplica/RemoveReplica).
	Prefills []string
	Decodes  []string
	// NodeID names the router in handshakes (default "router").
	NodeID string
	// HTTPAddr serves the router's own /healthz and /metrics (the
	// DisaggReport); empty disables it.
	HTTPAddr string
	// Spec/ModelSeed/MethodName describe the deployment; they must match
	// every peer, which the handshake enforces. The zero Spec selects
	// model.Toy().
	Spec       model.Spec
	ModelSeed  int64
	MethodName string
	// DialTimeout bounds each dial+handshake (default 2s).
	DialTimeout time.Duration
	// HealthInterval is the /healthz polling period (default 500ms).
	HealthInterval time.Duration
	// RetryMax is the number of decode retries after the first attempt
	// (default 2); RetryBackoff is the initial backoff, doubling per
	// retry (default 50ms).
	RetryMax     int
	RetryBackoff time.Duration
}

// Request is one generation job submitted to the router.
type Request struct {
	Prompt       []int
	MaxNewTokens int
	EOS          int
	Seed         int64
}

// Stream delivers one routed request's tokens, mirroring serve.Stream:
// Tokens() yields them in order and closes when the request finishes;
// Err() reports why (nil, ErrNoPrefill, ErrNoReplicas, ErrTransferFailed,
// or the context error).
type Stream struct {
	tokens chan TokenMsg
	closed chan struct{}
	err    error
	once   sync.Once
}

// Tokens returns the ordered token channel. It is buffered to the
// request's token budget, so a slow consumer never stalls a failover.
func (s *Stream) Tokens() <-chan TokenMsg { return s.tokens }

// Err reports the request's terminal error; it blocks until the stream
// has been sealed.
func (s *Stream) Err() error {
	<-s.closed
	return s.err
}

func (s *Stream) finish(err error) {
	s.once.Do(func() {
		s.err = err
		close(s.tokens)
		close(s.closed)
	})
}

// replica tracks one decode peer's health and load. The load signals
// mirror the simulator's LoadAware scoring: pending KV bytes in flight
// to the replica plus its in-flight request count.
type replica struct {
	addr     string
	httpAddr atomic.Value // string
	healthy  atomic.Bool
	draining atomic.Bool

	inflight  atomic.Int64
	pendingKV atomic.Int64
	requests  atomic.Int64
}

func (rep *replica) httpAddrStr() string {
	if v, ok := rep.httpAddr.Load().(string); ok {
		return v
	}
	return ""
}

// ReplicaStatus is one decode replica's row in a Report.
type ReplicaStatus struct {
	Addr           string `json:"addr"`
	Healthy        bool   `json:"healthy"`
	Draining       bool   `json:"draining"`
	Inflight       int64  `json:"inflight"`
	PendingKVBytes int64  `json:"pending_kv_bytes"`
	Requests       int64  `json:"requests"`
}

// Report is the router's live view of the disaggregated deployment.
type Report struct {
	Requests  int64 `json:"requests"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Retries   int64 `json:"retries"`
	Failovers int64 `json:"failovers"`
	// LinkKVBytes counts framed KV bytes per link, keyed
	// "prefill→router <addr>" and "router→decode <addr>".
	LinkKVBytes map[string]int64 `json:"link_kv_bytes"`
	// TransferSeconds summarizes KV transfer latencies (prefill pull +
	// decode push legs as separate samples).
	TransferSeconds metrics.PercentileSummary `json:"transfer_seconds"`
	Replicas        []ReplicaStatus           `json:"replicas"`
}

// Router fronts N decode replicas behind one submission API: it drives
// prefill on a prefill node, buffers the KV frames (what makes failover
// possible), places the decode on the least-loaded healthy replica, and
// proxies the token stream back, deduplicating by token index across
// retries.
type Router struct {
	cfg   RouterConfig
	hello netsim.Hello

	mu       sync.Mutex
	prefills []string
	replicas []*replica
	nextPre  int

	reqID     atomic.Uint64
	requests  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	retries   atomic.Int64
	failovers atomic.Int64

	linkMu    sync.Mutex
	linkBytes map[string]int64
	transferS []float64

	http   *nodeHTTP
	hc     *http.Client
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// NewRouter validates the config, probes the initial decode replicas,
// and starts the health monitor.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Prefills) == 0 {
		return nil, errors.New("disagg: router needs at least one prefill address")
	}
	if cfg.Spec.Layers == 0 && cfg.Spec.Hidden == 0 {
		cfg.Spec = model.Toy()
	}
	if cfg.NodeID == "" {
		cfg.NodeID = "router"
	}
	if cfg.MethodName == "" {
		cfg.MethodName = "hack"
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 500 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	r := &Router{
		cfg:       cfg,
		prefills:  append([]string(nil), cfg.Prefills...),
		linkBytes: make(map[string]int64),
		hc:        &http.Client{Timeout: cfg.DialTimeout},
		closed:    make(chan struct{}),
	}
	r.hello = netsim.Hello{
		Role: "router", NodeID: cfg.NodeID, Method: cfg.MethodName,
		ModelSeed: cfg.ModelSeed, SpecName: cfg.Spec.Name, Vocab: cfg.Spec.Vocab,
	}
	for _, addr := range cfg.Decodes {
		if err := r.AddReplica(addr); err != nil {
			return nil, err
		}
	}
	if cfg.HTTPAddr != "" {
		h, err := newNodeHTTP(cfg.HTTPAddr, func() any { return r.Report() },
			r.writeProm, func() bool { return false })
		if err != nil {
			return nil, err
		}
		r.http = h
	}
	r.wg.Add(1)
	go r.healthLoop()
	return r, nil
}

// HTTPAddr returns the router's metrics address ("" when disabled).
func (r *Router) HTTPAddr() string {
	if r.http == nil {
		return ""
	}
	return r.http.Addr()
}

// AddReplica registers a decode replica and probes it once. A peer that
// answers the handshake with mismatched deployment parameters is
// refused; one that is merely unreachable is registered unhealthy and
// picked up by the health monitor when it appears.
func (r *Router) AddReplica(addr string) error {
	rep := &replica{addr: addr}
	conn, peer, err := dial(addr, r.hello, r.cfg.DialTimeout)
	if err == nil {
		conn.Close()
		rep.healthy.Store(true)
		if peer.HTTPAddr != "" {
			rep.httpAddr.Store(peer.HTTPAddr)
		}
	} else if errors.Is(err, netsim.ErrHandshakeRefused) {
		return fmt.Errorf("disagg: replica %s: %w", addr, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, have := range r.replicas {
		if have.addr == addr {
			return fmt.Errorf("disagg: replica %s already registered", addr)
		}
	}
	r.replicas = append(r.replicas, rep)
	return nil
}

// RemoveReplica deregisters a decode replica. In-flight streams on it
// are unaffected; new placements stop immediately. Pair with the decode
// node's Drain for a drain-aware removal.
func (r *Router) RemoveReplica(addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, rep := range r.replicas {
		if rep.addr == addr {
			r.replicas = append(r.replicas[:i], r.replicas[i+1:]...)
			return
		}
	}
}

// isRetryable reports whether err is a transport-level failure (dial
// refused, reset, timeout, a peer dying mid-stream) where trying
// another node can help, rather than a protocol-level refusal.
func isRetryable(err error) bool {
	if errors.Is(err, netsim.ErrHandshakeRefused) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// Close stops the health monitor and waits for in-flight submissions.
func (r *Router) Close() error {
	r.once.Do(func() { close(r.closed) })
	if r.http != nil {
		r.http.Close()
	}
	r.wg.Wait()
	return nil
}

// Report snapshots the router's counters, per-link KV bytes, transfer
// latency percentiles, and per-replica occupancy.
func (r *Router) Report() Report {
	out := Report{
		Requests:  r.requests.Load(),
		Completed: r.completed.Load(),
		Failed:    r.failed.Load(),
		Retries:   r.retries.Load(),
		Failovers: r.failovers.Load(),
	}
	r.linkMu.Lock()
	out.LinkKVBytes = make(map[string]int64, len(r.linkBytes))
	for k, v := range r.linkBytes {
		out.LinkKVBytes[k] = v
	}
	samples := append([]float64(nil), r.transferS...)
	r.linkMu.Unlock()
	out.TransferSeconds = metrics.Summarize(samples)
	r.mu.Lock()
	reps := append([]*replica(nil), r.replicas...)
	r.mu.Unlock()
	for _, rep := range reps {
		out.Replicas = append(out.Replicas, ReplicaStatus{
			Addr:           rep.addr,
			Healthy:        rep.healthy.Load(),
			Draining:       rep.draining.Load(),
			Inflight:       rep.inflight.Load(),
			PendingKVBytes: rep.pendingKV.Load(),
			Requests:       rep.requests.Load(),
		})
	}
	sort.Slice(out.Replicas, func(i, j int) bool { return out.Replicas[i].Addr < out.Replicas[j].Addr })
	return out
}

// WritePrometheus renders the router counters in Prometheus text
// format (exposition format 0.0.4).
func (r *Router) WritePrometheus(w io.Writer) error { return r.writeProm(w) }

// writeProm renders the router counters in Prometheus text format.
func (r *Router) writeProm(w io.Writer) error {
	rep := r.Report()
	var err error
	emit := func(name, help string, v int64) {
		if err == nil {
			_, err = fmt.Fprintf(w,
				"# HELP hackserved_router_%s %s\n# TYPE hackserved_router_%s counter\nhackserved_router_%s %d\n",
				name, help, name, name, v)
		}
	}
	emit("requests_total", "Requests submitted.", rep.Requests)
	emit("completed_total", "Requests completed.", rep.Completed)
	emit("failed_total", "Requests failed.", rep.Failed)
	emit("retries_total", "Decode attempts retried.", rep.Retries)
	emit("failovers_total", "Transfers failed over to another replica.", rep.Failovers)
	return err
}

// healthLoop polls every replica's /healthz: 200 marks it healthy, 503
// marks it draining (kept for visibility, skipped for placement), and a
// transport error marks it unhealthy. Replicas without a known HTTP
// address are probed over the wire instead.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-r.closed:
			return
		case <-t.C:
		}
		r.mu.Lock()
		reps := append([]*replica(nil), r.replicas...)
		r.mu.Unlock()
		for _, rep := range reps {
			r.probe(rep)
		}
	}
}

func (r *Router) probe(rep *replica) {
	if ha := rep.httpAddrStr(); ha != "" {
		resp, err := r.hc.Get("http://" + ha + "/healthz")
		if err != nil {
			rep.healthy.Store(false)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK:
			rep.healthy.Store(true)
			rep.draining.Store(false)
		case http.StatusServiceUnavailable:
			rep.healthy.Store(true)
			rep.draining.Store(true)
		default:
			rep.healthy.Store(false)
		}
		return
	}
	conn, peer, err := dial(rep.addr, r.hello, r.cfg.DialTimeout)
	if err != nil {
		rep.healthy.Store(false)
		return
	}
	conn.Close()
	rep.healthy.Store(true)
	if peer.HTTPAddr != "" {
		rep.httpAddr.Store(peer.HTTPAddr)
	}
}

// pick returns the healthy, non-draining replica with the lowest load
// score — pending KV bytes plus an in-flight-request penalty, the wire
// analogue of the simulator's LoadAware drain estimate.
func (r *Router) pick() *replica {
	r.mu.Lock()
	reps := append([]*replica(nil), r.replicas...)
	r.mu.Unlock()
	const inflightPenalty = 1 << 20
	var best *replica
	var bestScore int64
	for _, rep := range reps {
		if !rep.healthy.Load() || rep.draining.Load() {
			continue
		}
		score := rep.pendingKV.Load() + inflightPenalty*rep.inflight.Load()
		if best == nil || score < bestScore {
			best, bestScore = rep, score
		}
	}
	return best
}

// Submit routes one request through the disaggregated pipeline. The
// returned stream is live immediately; prefill, transfer, placement,
// and failover all happen behind it.
func (r *Router) Submit(ctx context.Context, req Request) (*Stream, error) {
	if len(req.Prompt) == 0 {
		return nil, errors.New("disagg: empty prompt")
	}
	select {
	case <-r.closed:
		return nil, errors.New("disagg: router closed")
	default:
	}
	buf := req.MaxNewTokens
	if buf <= 0 || buf > 4096 {
		buf = 4096
	}
	st := &Stream{tokens: make(chan TokenMsg, buf+1), closed: make(chan struct{})}
	r.requests.Add(1)
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		err := r.run(ctx, req, st)
		if err != nil {
			r.failed.Add(1)
		} else {
			r.completed.Add(1)
		}
		st.finish(err)
	}()
	return st, nil
}

func (r *Router) run(ctx context.Context, req Request, st *Stream) error {
	id := r.reqID.Add(1)
	frames, err := r.runPrefill(ctx, id, req)
	if err != nil {
		return err
	}
	return r.runDecode(ctx, id, req, frames, st)
}

// runPrefill drives the prefill leg on the first reachable prefill node
// (round-robin start) and buffers every KV frame. The buffered frames
// are the failover capital: a decode retry re-ships them without
// touching the prefill tier again.
func (r *Router) runPrefill(ctx context.Context, id uint64, req Request) ([][]byte, error) {
	r.mu.Lock()
	addrs := append([]string(nil), r.prefills...)
	start := r.nextPre
	r.nextPre = (r.nextPre + 1) % len(r.prefills)
	r.mu.Unlock()

	var lastErr error
	for i := range addrs {
		addr := addrs[(start+i)%len(addrs)]
		frames, err := r.pullPrefill(ctx, addr, id, req)
		if err == nil {
			return frames, nil
		}
		lastErr = err
		if !isRetryable(err) {
			return nil, err // protocol-level refusal: retrying elsewhere won't help
		}
	}
	return nil, fmt.Errorf("%w: %v", ErrNoPrefill, lastErr)
}

func (r *Router) pullPrefill(ctx context.Context, addr string, id uint64, req Request) ([][]byte, error) {
	conn, _, err := dial(addr, r.hello, r.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	start := time.Now()
	if err := writeJSON(conn, netsim.MsgPrefill, PrefillJob{RequestID: id, Prompt: req.Prompt, Seed: req.Seed}); err != nil {
		return nil, err
	}
	var frames [][]byte
	var total int64
	for {
		t, payload, err := netsim.ReadMessage(conn)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, err
		}
		switch t {
		case netsim.MsgFrame:
			frames = append(frames, payload)
			total += int64(len(payload))
		case netsim.MsgTransferEnd:
			r.recordTransfer("prefill→router "+addr, total, time.Since(start).Seconds())
			return frames, nil
		case netsim.MsgDone:
			var d DoneMsg
			if err := jsonUnmarshal(payload, &d); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("disagg: prefill %s: %s (%s)", addr, d.Err, d.Kind)
		default:
			return nil, fmt.Errorf("disagg: unexpected %v during prefill transfer", t)
		}
	}
}

func (r *Router) recordTransfer(link string, bytes int64, seconds float64) {
	r.linkMu.Lock()
	r.linkBytes[link] += bytes
	r.transferS = append(r.transferS, seconds)
	r.linkMu.Unlock()
}

// runDecode places the buffered transfer on a replica and proxies the
// token stream, retrying with bounded exponential backoff on replica
// death. Tokens are deduplicated by index, so a stream that failed over
// mid-flight still delivers each token exactly once, in order.
func (r *Router) runDecode(ctx context.Context, id uint64, req Request, frames [][]byte, st *Stream) error {
	backoff := r.cfg.RetryBackoff
	lastDelivered := -1
	var lastErr error
	sawReplica := false
	for attempt := 0; attempt <= r.cfg.RetryMax; attempt++ {
		if attempt > 0 {
			r.retries.Add(1)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			backoff *= 2
		}
		rep := r.pick()
		if rep == nil {
			lastErr = ErrNoReplicas
			continue
		}
		sawReplica = true
		err, terminal := r.tryDecode(ctx, rep, id, req, frames, st, &lastDelivered)
		if err == nil {
			return nil
		}
		if terminal {
			return err
		}
		lastErr = err
		if lastDelivered >= 0 {
			r.failovers.Add(1) // died mid-stream; the next attempt resumes it
		}
	}
	if !sawReplica {
		return ErrNoReplicas
	}
	return fmt.Errorf("%w: %v", ErrTransferFailed, lastErr)
}

// tryDecode runs one decode attempt on one replica. The bool result
// distinguishes terminal failures (bad request, context cancellation)
// from retryable ones (replica death, drain, queue pressure).
func (r *Router) tryDecode(ctx context.Context, rep *replica, id uint64, req Request, frames [][]byte, st *Stream, lastDelivered *int) (err error, terminal bool) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	var total int64
	for _, f := range frames {
		total += int64(len(f))
	}
	rep.pendingKV.Add(total)
	defer rep.pendingKV.Add(-total)

	conn, _, err := dial(rep.addr, r.hello, r.cfg.DialTimeout)
	if err != nil {
		rep.healthy.Store(false)
		return err, false
	}
	defer conn.Close()
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	fail := func(e error) (error, bool) {
		if ctx.Err() != nil {
			return ctx.Err(), true
		}
		rep.healthy.Store(false)
		return e, false
	}

	start := time.Now()
	job := DecodeJob{RequestID: id, PromptLen: len(req.Prompt), Seed: req.Seed,
		MaxNew: req.MaxNewTokens, EOS: req.EOS}
	if err := writeJSON(conn, netsim.MsgDecode, job); err != nil {
		return fail(err)
	}
	for _, f := range frames {
		if err := netsim.WriteMessage(conn, netsim.MsgFrame, f); err != nil {
			return fail(err)
		}
	}
	if err := netsim.WriteMessage(conn, netsim.MsgTransferEnd, nil); err != nil {
		return fail(err)
	}
	r.recordTransfer("router→decode "+rep.addr, total, time.Since(start).Seconds())
	rep.requests.Add(1)

	for {
		t, payload, err := netsim.ReadMessage(conn)
		if err != nil {
			return fail(err)
		}
		switch t {
		case netsim.MsgPing:
			if err := netsim.WriteMessage(conn, netsim.MsgPong, nil); err != nil {
				return fail(err)
			}
		case netsim.MsgToken:
			var tok TokenMsg
			if err := jsonUnmarshal(payload, &tok); err != nil {
				return fail(err)
			}
			if tok.Index > *lastDelivered {
				st.tokens <- tok
				*lastDelivered = tok.Index
			}
		case netsim.MsgDone:
			var d DoneMsg
			if err := jsonUnmarshal(payload, &d); err != nil {
				return fail(err)
			}
			if d.Err == "" {
				return nil, false
			}
			e := fmt.Errorf("disagg: decode %s: %s (%s)", rep.addr, d.Err, d.Kind)
			switch d.Kind {
			case "draining":
				rep.draining.Store(true)
				return e, false
			case "queue_full":
				return e, false
			default:
				return e, true
			}
		default:
			return fmt.Errorf("disagg: unexpected %v in token stream", t), true
		}
	}
}
