package disagg

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"testing"
	"time"

	"github.com/hackkv/hack/internal/chaos"
	"github.com/hackkv/hack/internal/model"
	"github.com/hackkv/hack/internal/netsim"
	"github.com/hackkv/hack/internal/serve"
)

// The corrupt-wire suite: every role must treat a corrupted-CRC or
// truncated frame as a broken link — drop the connection, stay up, and
// (router-side) fail the attempt over — never crash, wedge, or fail the
// request terminally.

func routerTestHello() netsim.Hello {
	return netsim.Hello{Role: "router", NodeID: "test-router", Method: "hack",
		ModelSeed: testModelSeed, SpecName: model.Toy().Name, Vocab: model.Toy().Vocab}
}

// wireFrame serializes one message; corruptWireFrame breaks its CRC
// trailer so the bytes parse as a frame but fail the checksum.
func wireFrame(t *testing.T, mt netsim.MsgType, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := netsim.WriteMessage(&buf, mt, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func corruptWireFrame(t *testing.T, mt netsim.MsgType, payload []byte) []byte {
	t.Helper()
	b := wireFrame(t, mt, payload)
	b[len(b)-1] ^= 0x01
	return b
}

func dialHandshake(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := netsim.Handshake(conn, routerTestHello()); err != nil {
		conn.Close()
		t.Fatal(err)
	}
	return conn
}

// pullFramesRaw drives one prefill by hand and returns the raw KV frame
// payloads — real transfer bytes to replay against a decode node.
func pullFramesRaw(t *testing.T, addr string, job PrefillJob) [][]byte {
	t.Helper()
	conn := dialHandshake(t, addr)
	defer conn.Close()
	if err := writeJSON(conn, netsim.MsgPrefill, job); err != nil {
		t.Fatal(err)
	}
	var frames [][]byte
	for {
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		mt, payload, err := netsim.ReadMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		switch mt {
		case netsim.MsgFrame:
			frames = append(frames, payload)
		case netsim.MsgTransferEnd:
			return frames
		default:
			t.Fatalf("unexpected %v during prefill pull", mt)
		}
	}
}

// TestPrefillDropsCorruptAndTruncatedFrames feeds a prefill node a
// corrupted-CRC job frame and a truncated one: both connections must be
// dropped without executing a job, and the node must keep serving clean
// connections.
func TestPrefillDropsCorruptAndTruncatedFrames(t *testing.T) {
	p, err := NewPrefillNode(PrefillConfig{Addr: "127.0.0.1:0", ModelSeed: testModelSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	job := PrefillJob{RequestID: 1, Prompt: []int{1, 2, 3}, Seed: 9}
	raw := wireFrame(t, netsim.MsgPrefill, mustJSON(t, job))

	// Corrupted CRC: the node drops the connection without answering.
	conn := dialHandshake(t, p.Addr())
	bad := append([]byte(nil), raw...)
	bad[len(bad)-1] ^= 0x01
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if mt, _, err := netsim.ReadMessage(conn); err == nil {
		t.Fatalf("prefill answered a corrupt-CRC frame with %v", mt)
	}
	conn.Close()

	// Truncated frame then a severed peer: ditto.
	conn = dialHandshake(t, p.Addr())
	if _, err := conn.Write(raw[:7]); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// The node is not wedged: a clean job on a fresh connection
	// round-trips, and the garbage never executed a prefill.
	frames := pullFramesRaw(t, p.Addr(), job)
	if len(frames) == 0 {
		t.Fatal("clean prefill after corrupt connections produced no frames")
	}
	if st := p.Stats(); st.Prefills != 1 {
		t.Fatalf("prefills %d, want 1 (corrupt frames must not execute)", st.Prefills)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDecodeDropsCorruptAndTruncatedTransfers exercises a decode node's
// transfer path against a corrupted KV frame, a truncated one, and a
// half-open stall. Each must surface as a "transfer" fault (the typed
// kind the router retries on), free the handler within the frame
// deadline, and leave the node serving.
func TestDecodeDropsCorruptAndTruncatedTransfers(t *testing.T) {
	p, err := NewPrefillNode(PrefillConfig{Addr: "127.0.0.1:0", ModelSeed: testModelSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	d, err := NewDecodeNode(DecodeConfig{
		Addr: "127.0.0.1:0", Serve: testServeConfig(), FrameTimeout: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	req := Request{Prompt: []int{1, 2, 3}, MaxNewTokens: 4, Seed: 9}
	frames := pullFramesRaw(t, p.Addr(), PrefillJob{RequestID: 1, Prompt: req.Prompt, Seed: req.Seed})
	job := DecodeJob{RequestID: 1, PromptLen: len(req.Prompt), Seed: req.Seed, MaxNew: req.MaxNewTokens}

	// readDone expects the node's best-effort MsgDone and returns its kind.
	readDone := func(t *testing.T, conn net.Conn) string {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		mt, payload, err := netsim.ReadMessage(conn)
		if err != nil {
			t.Fatalf("reading decode's error report: %v", err)
		}
		if mt != netsim.MsgDone {
			t.Fatalf("decode answered %v, want %v", mt, netsim.MsgDone)
		}
		var done DoneMsg
		if err := jsonUnmarshal(payload, &done); err != nil {
			t.Fatal(err)
		}
		return done.Kind
	}

	t.Run("corrupt-crc", func(t *testing.T) {
		conn := dialHandshake(t, d.Addr())
		defer conn.Close()
		if err := writeJSON(conn, netsim.MsgDecode, job); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(corruptWireFrame(t, netsim.MsgFrame, frames[0])); err != nil {
			t.Fatal(err)
		}
		if kind := readDone(t, conn); kind != "transfer" {
			t.Fatalf("corrupt frame reported kind %q, want \"transfer\"", kind)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		conn := dialHandshake(t, d.Addr())
		if err := writeJSON(conn, netsim.MsgDecode, job); err != nil {
			t.Fatal(err)
		}
		full := wireFrame(t, netsim.MsgFrame, frames[0])
		if _, err := conn.Write(full[:len(full)/2]); err != nil {
			t.Fatal(err)
		}
		conn.Close() // peer dies mid-frame; the handler must just unwind
	})

	t.Run("half-open-stall", func(t *testing.T) {
		conn := dialHandshake(t, d.Addr())
		defer conn.Close()
		if err := writeJSON(conn, netsim.MsgDecode, job); err != nil {
			t.Fatal(err)
		}
		// Send nothing more: the frame deadline must free the handler and
		// report the timeout as a transfer fault.
		start := time.Now()
		if kind := readDone(t, conn); kind != "transfer" {
			t.Fatalf("stalled transfer reported kind %q, want \"transfer\"", kind)
		}
		if waited := time.Since(start); waited > 2*time.Second {
			t.Fatalf("stalled transfer held the handler %v, want ~the 250ms frame deadline", waited)
		}
	})

	// The node still serves: a clean transfer streams the same tokens the
	// single-process reference produces.
	ref, err := serve.New(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := refTokens(t, ref, req)
	ref.Shutdown(context.Background())

	conn := dialHandshake(t, d.Addr())
	defer conn.Close()
	if err := writeJSON(conn, netsim.MsgDecode, job); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := netsim.WriteMessage(conn, netsim.MsgFrame, f); err != nil {
			t.Fatal(err)
		}
	}
	if err := netsim.WriteMessage(conn, netsim.MsgTransferEnd, nil); err != nil {
		t.Fatal(err)
	}
	var got []int
	for {
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		mt, payload, err := netsim.ReadMessage(conn)
		if err != nil {
			t.Fatal(err)
		}
		if mt == netsim.MsgDone {
			var done DoneMsg
			if err := jsonUnmarshal(payload, &done); err != nil {
				t.Fatal(err)
			}
			if done.Err != "" {
				t.Fatalf("clean decode after corrupt connections failed: %s (%s)", done.Err, done.Kind)
			}
			break
		}
		if mt != netsim.MsgToken {
			t.Fatalf("unexpected %v in token stream", mt)
		}
		var tok TokenMsg
		if err := jsonUnmarshal(payload, &tok); err != nil {
			t.Fatal(err)
		}
		got = append(got, tok.ID)
	}
	if len(got) != len(want) {
		t.Fatalf("clean decode streamed %v, reference %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("clean decode diverged at %d: %v vs %v", i, got, want)
		}
	}
}

// corruptingStub is a decode replica that streams a true token prefix
// and then poisons the stream — a corrupted-CRC token frame or a
// truncated one — instead of dying silently.
func corruptingStub(t *testing.T, tokens []TokenMsg, finale func(net.Conn)) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hello := netsim.Hello{Role: "decode", NodeID: "corrupt-stub", Method: "hack",
		ModelSeed: testModelSeed, SpecName: model.Toy().Name, Vocab: model.Toy().Vocab}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if _, err := netsim.AcceptHandshake(conn, hello, nil); err != nil {
					return
				}
				for {
					mt, _, err := netsim.ReadMessage(conn)
					if err != nil {
						return // health probes just close
					}
					if mt == netsim.MsgTransferEnd {
						break
					}
				}
				for _, tok := range tokens {
					if err := writeJSON(conn, netsim.MsgToken, tok); err != nil {
						return
					}
				}
				finale(conn)
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestRouterFailsOverOnCorruptTokenStream puts a poisoning stub first in
// the placement order: after two true tokens the stub corrupts (or
// truncates) the stream, and the router must classify the garbage as
// retryable, fail over to the real replica, and deliver a byte-identical
// stream with no duplicated or dropped tokens.
func TestRouterFailsOverOnCorruptTokenStream(t *testing.T) {
	req := Request{Prompt: []int{9, 8, 7, 6, 5, 4}, MaxNewTokens: 10, Seed: 42}
	ref, err := serve.New(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := refTokens(t, ref, req)
	ref.Shutdown(context.Background())
	if len(want) < 4 {
		t.Fatalf("reference stream too short to split: %v", want)
	}
	prefix := []TokenMsg{{0, want[0]}, {1, want[1]}}

	finales := map[string]func(net.Conn){
		"corrupt-crc": func(conn net.Conn) {
			bad := corruptWireFrame(t, netsim.MsgToken, mustJSON(t, TokenMsg{Index: 2, ID: want[2]}))
			conn.Write(bad)
		},
		"truncated": func(conn net.Conn) {
			full := wireFrame(t, netsim.MsgToken, mustJSON(t, TokenMsg{Index: 2, ID: want[2]}))
			conn.Write(full[:len(full)/2])
		},
	}
	for name, finale := range finales {
		t.Run(name, func(t *testing.T) {
			stub, stopStub := corruptingStub(t, prefix, finale)
			defer stopStub()
			p, err := NewPrefillNode(PrefillConfig{Addr: "127.0.0.1:0", ModelSeed: testModelSeed})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			d, err := NewDecodeNode(DecodeConfig{Addr: "127.0.0.1:0", Serve: testServeConfig()})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			r, err := NewRouter(RouterConfig{
				Prefills: []string{p.Addr()}, Decodes: []string{stub, d.Addr()},
				ModelSeed: testModelSeed, HealthInterval: time.Hour,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()

			st, err := r.Submit(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := collectRouted(st)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("failover stream has %d tokens, want %d\ngot  %v\nwant %v", len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("token %d diverged: got %d want %d\ngot  %v\nwant %v", i, got[i], want[i], got, want)
				}
			}
			rep := r.Report()
			if rep.Retries != 1 || rep.Failovers != 1 || rep.Failed != 0 {
				t.Fatalf("retries %d failovers %d failed %d, want 1/1/0", rep.Retries, rep.Failovers, rep.Failed)
			}
		})
	}
}

// TestRouterRetriesPrefillOnCorruptTransfer puts a prefill stub that
// ships a corrupted KV frame ahead of a real prefill node: the checksum
// mismatch must be classified retryable so the router pulls the transfer
// from the next prefill instead of failing the request.
func TestRouterRetriesPrefillOnCorruptTransfer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	hello := netsim.Hello{Role: "prefill", NodeID: "corrupt-prefill", Method: "hack",
		ModelSeed: testModelSeed, SpecName: model.Toy().Name, Vocab: model.Toy().Vocab}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if _, err := netsim.AcceptHandshake(conn, hello, nil); err != nil {
					return
				}
				if _, _, err := netsim.ReadMessage(conn); err != nil {
					return
				}
				conn.Write(corruptWireFrame(t, netsim.MsgFrame, []byte("garbage payload")))
			}()
		}
	}()

	p, err := NewPrefillNode(PrefillConfig{Addr: "127.0.0.1:0", ModelSeed: testModelSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	d, err := NewDecodeNode(DecodeConfig{Addr: "127.0.0.1:0", Serve: testServeConfig()})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	req := Request{Prompt: []int{1, 2, 3}, MaxNewTokens: 4, Seed: 9}
	ref, err := serve.New(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := refTokens(t, ref, req)
	ref.Shutdown(context.Background())

	// The corrupting stub is first in round-robin order for request 1.
	r, err := NewRouter(RouterConfig{
		Prefills: []string{ln.Addr().String(), p.Addr()}, Decodes: []string{d.Addr()},
		ModelSeed: testModelSeed, HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	st, err := r.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := collectRouted(st)
	if err != nil {
		t.Fatalf("corrupt prefill transfer failed the request: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d diverged: %v vs %v", i, got, want)
		}
	}
	if rep := r.Report(); rep.Failed != 0 {
		t.Fatalf("%d requests failed", rep.Failed)
	}
}

// TestRouterRetryAvoidsFailedReplica pins the placement half of
// failover: replica 0's link corrupts every transfer and never heals,
// and the retry cap is the daemon default (bounded, small). Load-score
// ties break toward the first-registered replica, so without avoidance
// every retry would re-place the request on the same broken link and
// exhaust the cap while a clean replica sits idle; the retry must land
// on replica 1 and stream byte-identical tokens.
func TestRouterRetryAvoidsFailedReplica(t *testing.T) {
	inj := chaos.NewInjector(7)
	c, closeAll := newChaosCluster(t, 2, inj, func(rc *RouterConfig) {
		rc.HealthInterval = time.Hour
		rc.RetryMax = 2 // the default bounded attempt cap, not budget-only
	})
	defer closeAll()
	// Persistent corruption on replica 0's link: the handshake (~220B)
	// survives CorruptEvery 4096, the ~5KB KV transfer does not.
	inj.SetPlan(c.decodes[0].Addr(), chaos.Plan{CorruptEvery: 4096})

	prompt := make([]int, 16)
	for j := range prompt {
		prompt[j] = (j*3 + 1) % model.Toy().Vocab
	}
	req := Request{Prompt: prompt, MaxNewTokens: 6, Seed: 41}

	ref, err := serve.New(testServeConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Shutdown(context.Background())
	want := refTokens(t, ref, req)

	st, err := c.router.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := collectRouted(st)
	if err != nil {
		t.Fatalf("request failed with a clean replica available: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d diverged: %v vs %v", i, got, want)
		}
	}
	rep := c.router.Report()
	if rep.Failed != 0 {
		t.Fatalf("%d requests failed", rep.Failed)
	}
	if rep.Retries == 0 {
		t.Fatal("the corrupted link triggered no retry")
	}
	if st := inj.Stats(); st.BytesCorrupted == 0 {
		t.Fatal("the corruption plan never bit — the test proved nothing")
	}
}
